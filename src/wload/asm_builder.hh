/**
 * @file
 * A tiny assembler for VRISC-64: emits encoded words into a code vector
 * and resolves forward label references (branch offsets and call/jump
 * targets) at seal() time.
 */

#ifndef VCA_WLOAD_ASM_BUILDER_HH
#define VCA_WLOAD_ASM_BUILDER_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "isa/registers.hh"

namespace vca::wload {

class AsmBuilder
{
  public:
    using Label = int;

    /** Create a new, unbound label. */
    Label newLabel();

    /** Bind a label to the current position. */
    void bind(Label label);

    /** Current instruction index. */
    std::uint32_t here() const
    {
        return static_cast<std::uint32_t>(code_.size());
    }

    // Raw emitters.
    void emitR(isa::Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2);
    void emitI(isa::Opcode op, RegIndex rd, RegIndex rs1, std::int32_t imm);
    void emitWord(std::uint32_t word);

    // Convenience pseudo-ops.
    void nop();
    void halt();
    void addi(RegIndex rd, RegIndex rs1, std::int32_t imm);
    void mov(RegIndex rd, RegIndex rs1);

    /** Load an arbitrary 64-bit constant (emits 1..10 instructions). */
    void li(RegIndex rd, std::uint64_t value);

    void ld(RegIndex rd, RegIndex base, std::int32_t off);
    void st(RegIndex base, RegIndex data, std::int32_t off);
    void fld(RegIndex fd, RegIndex base, std::int32_t off);
    void fst(RegIndex base, RegIndex fdata, std::int32_t off);

    /** Conditional branch to a label (forward or backward). */
    void branch(isa::Opcode op, RegIndex rs1, RegIndex rs2, Label target);

    void jmp(Label target);
    void call(Label function);
    void ret();

    /** Resolve all fixups; panics on unbound labels. */
    std::vector<std::uint32_t> seal();

    size_t size() const { return code_.size(); }

  private:
    struct Fixup
    {
        std::uint32_t index; ///< code word needing patching
        Label label;
        bool relative;       ///< branch (imm14 offset) vs absolute (imm24)
    };

    std::vector<std::uint32_t> code_;
    std::vector<std::int64_t> labelPos_; ///< -1 while unbound
    std::vector<Fixup> fixups_;
};

} // namespace vca::wload

#endif // VCA_WLOAD_ASM_BUILDER_HH
