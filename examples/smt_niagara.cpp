/**
 * @file
 * The paper's headline demo (Sections 1 and 4.3): a Niagara-style
 * machine -- four threads AND register windows -- on just 192 physical
 * registers. Sun's Niagara needs 640 registers per core for this, and
 * a conventional out-of-order design cannot even represent the
 * architectural state (4 threads x 64 registers = 256 > 192).
 *
 * VCA runs it: thread contexts and window contexts are just base
 * pointers into the memory-mapped logical register space, and the
 * physical register file caches whatever is hot.
 */

#include <cstdio>

#include "analysis/experiment.hh"

using namespace vca;
using cpu::RenamerKind;

int
main()
{
    setQuiet(true);
    const std::vector<std::string> benches = {"crafty", "gzip_graphic",
                                              "mesa", "gap"};
    const unsigned physRegs = 192;

    std::printf("4-thread windowed workload: %s + %s + %s + %s\n",
                benches[0].c_str(), benches[1].c_str(),
                benches[2].c_str(), benches[3].c_str());
    std::printf("physical registers: %u (architectural state alone "
                "would need 4 x 64 = 256)\n\n", physRegs);

    std::vector<const isa::Program *> windowed, flat;
    for (const auto &name : benches) {
        const auto &prof = wload::profileByName(name);
        windowed.push_back(wload::cachedProgram(prof, true));
        flat.push_back(wload::cachedProgram(prof, false));
    }

    analysis::RunOptions opts;
    opts.warmupInsts = 20'000;
    opts.measureInsts = 120'000;
    opts.stopOnFirstThread = true;

    // The conventional machine cannot operate.
    const auto convResult = analysis::runTiming(
        flat, RenamerKind::Baseline, physRegs, opts);
    std::printf("conventional SMT @ %u regs: %s\n", physRegs,
                convResult.ok ? "ran (unexpected!)"
                              : "cannot operate (as expected)");

    // VCA runs it, windows included.
    const auto vcaResult = analysis::runTiming(
        windowed, RenamerKind::Vca, physRegs, opts);
    if (!vcaResult.ok)
        fatal("VCA run failed: %s", vcaResult.error.c_str());

    std::printf("VCA SMT+windows @ %u regs: IPC %.2f over %llu "
                "cycles\n", physRegs, vcaResult.ipc,
                (unsigned long long)vcaResult.cycles);
    for (size_t t = 0; t < benches.size(); ++t) {
        std::printf("  thread %zu (%-12s): %8llu insts, per-thread "
                    "CPI %.2f\n", t, benches[t].c_str(),
                    (unsigned long long)vcaResult.threadInsts[t],
                    vcaResult.threadCpi[t]);
    }

    // And the conventional machine needs twice the registers:
    const auto conv448 = analysis::runTiming(
        flat, RenamerKind::Baseline, 448, opts);
    if (conv448.ok) {
        std::printf("\nconventional SMT (no windows) needs %u regs for "
                    "IPC %.2f\n", 448, conv448.ipc);
        std::printf("VCA at %u regs reaches %.0f%% of that throughput "
                    "while also providing register windows.\n", physRegs,
                    100.0 * vcaResult.ipc / conv448.ipc);
    }
    return 0;
}
