/**
 * @file
 * Chrome trace-event (Perfetto-loadable) JSON writer.
 *
 * Buffers trace events in memory and writes a single
 * `{"traceEvents": [...]}` JSON object on finish().  Events carry the
 * standard fields (name, ph, ts, pid, tid, optional args); timestamps
 * are microseconds as doubles.  We use two timebases in one file:
 * simulated tracks map one cycle to one microsecond, host tracks use
 * real microseconds since the writer's construction — they live under
 * different pids so Perfetto renders them as separate process groups.
 *
 * finish() stable-sorts by (pid, tid, ts).  Insertion order breaks
 * ties, which is what makes nesting work: push the outer B before the
 * inner B and the inner E before the outer E and equal-timestamp
 * pairs stay properly nested.
 *
 * Thread-safe: sweep worker threads append concurrently.
 */

#ifndef VCA_TELEMETRY_CHROME_TRACE_HH
#define VCA_TELEMETRY_CHROME_TRACE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vca::telemetry {

class ChromeTraceWriter
{
  public:
    /** @param path output file, written on finish(). */
    explicit ChromeTraceWriter(std::string path);
    ~ChromeTraceWriter();

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** Begin a duration slice.  @p args, when non-empty, must be a
     *  rendered JSON object (e.g. R"({"pc":12})"). */
    void begin(int pid, int tid, const std::string &name, double ts,
               std::string args = "");
    /** End the innermost open slice on (pid, tid). */
    void end(int pid, int tid, double ts);
    /** Convenience: a complete B/E pair. */
    void slice(int pid, int tid, const std::string &name, double ts,
               double dur, std::string args = "");
    /** Thread-scoped instant event. */
    void instant(int pid, int tid, const std::string &name, double ts,
                 std::string args = "");
    /** Counter track sample; values render into the event args. */
    void counter(int pid, int tid, const std::string &name, double ts,
                 const std::vector<std::pair<std::string, double>> &values);

    void setProcessName(int pid, const std::string &name);
    void setThreadName(int pid, int tid, const std::string &name);

    /** Microseconds of host time since this writer was constructed. */
    double hostNowUs() const;

    /** Sort and write the file.  Idempotent; returns false (after a
     *  warn) if the file could not be written. */
    bool finish();

    std::uint64_t eventCount() const;
    const std::string &path() const { return path_; }

  private:
    struct Event
    {
        int pid;
        int tid;
        double ts;
        char ph;
        std::string name;
        std::string args; ///< rendered JSON object, may be empty
    };

    void push(Event ev);

    std::string path_;
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<Event> events_;
    bool finished_ = false;
};

} // namespace vca::telemetry

#endif // VCA_TELEMETRY_CHROME_TRACE_HH
