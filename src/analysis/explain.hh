/**
 * @file
 * Differential run explainer: attribute the CPI gap between two runs
 * to the hierarchical cycle-taxonomy leaves (README, Observability).
 *
 * The taxonomy partitions cpu.cycles exactly, so per-leaf CPI
 * contributions (leaf cycles / committed instructions) also partition
 * CPI exactly, and the per-leaf deltas between two runs sum to the
 * CPI gap with no residual. A report therefore attributes 100% of a
 * gap by construction whenever both runs carry the same leaf set;
 * when the sets differ (e.g. a v1 document with only the flat
 * six-bucket breakdown) both sides are coarsened onto a common
 * bucketing first and the report says so.
 *
 * Inputs come from --stats-json documents (loadRunJson) or from
 * cached sweep Measurements (explainInputFromMeasurement), so
 * `vca-explain --spec ...` rides the same on-disk result cache as the
 * benches. When both runs carry interval time series the explainer
 * also aligns them on the committed-instruction axis and reports the
 * windows where the cycle gap opens.
 */

#ifndef VCA_ANALYSIS_EXPLAIN_HH
#define VCA_ANALYSIS_EXPLAIN_HH

#include <string>
#include <vector>

#include "analysis/experiment.hh"

namespace vca::analysis {

/** One measurement interval, reduced to what alignment needs. */
struct ExplainInterval
{
    double committedCum = 0; ///< committed insts at interval end
    double cycles = 0;       ///< cycle span of this interval
    bool partial = false;    ///< final short interval (finish())
    /** Cycles per taxonomy leaf inside this interval, in the order of
     *  ExplainInput::intervalLeafNames. */
    std::vector<double> leafCycles;
};

/** One run, reduced to what attribution needs. */
struct ExplainInput
{
    std::string label;  ///< how the report names this run
    std::string config; ///< human-readable configuration summary
    double cycles = 0;
    double insts = 0;
    /** (taxonomy leaf name, cycles) — a partition of `cycles` when the
     *  producer had telemetry compiled in; may be empty otherwise. */
    std::vector<std::pair<std::string, double>> leaves;
    std::vector<std::string> intervalLeafNames;
    std::vector<ExplainInterval> intervals;

    double cpi() const { return insts > 0 ? cycles / insts : 0; }
};

/** One leaf's contribution to the CPI gap. */
struct Attribution
{
    std::string leaf;
    double cpiA = 0;  ///< leaf cycles / insts in run A
    double cpiB = 0;
    double delta = 0; ///< cpiB - cpiA (signed)
    double share = 0; ///< delta / gap, signed; 0 when gap is 0
};

/** A committed-instruction window where the cycle gap opens. */
struct IntervalHotspot
{
    double instLo = 0; ///< window start (committed instructions)
    double instHi = 0;
    double cpiA = 0;   ///< CPI inside the window, per run
    double cpiB = 0;
    double gapCycles = 0; ///< cycle gap contributed by this window
    double gapShare = 0;  ///< fraction of the total windowed gap
    std::string topLeaf;  ///< leaf with the largest delta here
};

struct ExplainReport
{
    std::string labelA, labelB;
    std::string configA, configB;
    double cyclesA = 0, cyclesB = 0;
    double instsA = 0, instsB = 0;
    double cpiA = 0, cpiB = 0;
    double gap = 0; ///< cpiB - cpiA
    /** True when the two leaf sets differed and both sides were
     *  coarsened onto the common six-way bucketing. */
    bool coarsened = false;
    /** sum of leaf deltas / gap. 1.0 (exactly, up to fp rounding) when
     *  both runs carry full partitions of their cycles. */
    double attributedFraction = 0;
    std::vector<Attribution> attributions; ///< ranked by |delta|
    std::vector<IntervalHotspot> hotspots; ///< ranked by gapCycles
};

/**
 * Parse a vca-sim --stats-json document. Accepts schema v1 (no
 * schemaVersion key), v2 and v3. Prefers the hierarchical taxonomy
 * subtree; falls back to the flat six-bucket cycle accounting when
 * the taxonomy is absent or all-zero (VCA_NTELEMETRY producer). A v3
 * non-detailed document has no cpu tree at all; its input loads with
 * an empty leaf set and explain() coarsens accordingly.
 * Throws sim::FatalError on unreadable/malformed input.
 */
ExplainInput loadRunJson(const std::string &path,
                         const std::string &label);

/**
 * Build an input from a cached sweep Measurement (coarse flat
 * breakdown only — Measurement stays frozen for cache stability).
 */
ExplainInput explainInputFromMeasurement(const std::string &label,
                                         const std::string &config,
                                         const Measurement &m);

/** Attribute the CPI gap of B relative to A. Pure and deterministic. */
ExplainReport explain(const ExplainInput &a, const ExplainInput &b);

/** Render a report for the terminal (or as a markdown document). */
std::string renderReport(const ExplainReport &r, bool markdown);

/**
 * Self-test: plant a synthetic spill-stall gap between two otherwise
 * identical runs and check the explainer attributes it to the planted
 * leaf and localizes it in the planted interval window. Returns 0 on
 * success, 1 on failure (diagnostics on stderr).
 */
int explainSelftest();

// ---------------------------------------------------------------------
// Sampling error attribution (vca-explain --sampling)
// ---------------------------------------------------------------------

/** One sample's deviation from the matched detailed run. */
struct SampleDeviation
{
    int index = 0;       ///< sample index in measurement order
    SampleRecord rec;
    double cpiError = 0; ///< rec.cpi - detailed CPI (signed)
};

/** Per-SimPoint-phase aggregation of the sample deviations. */
struct PhaseDeviation
{
    int phase = -1;
    double weight = 0;    ///< phase weight (fraction of execution)
    unsigned samples = 0;
    double meanCpi = 0;
    double meanAbsError = 0; ///< mean |cpi - detailed CPI|
};

/**
 * Sampled-vs-detailed error attribution for one configuration: which
 * samples deviate from the detailed trajectory, whether the deviation
 * correlates with how warm the transplanted microarchitectural state
 * was at switch-in, and (for SimPoint runs) which phases carry the
 * error.
 */
struct SamplingReport
{
    std::string config;       ///< human-readable configuration
    SamplingSummary summary;  ///< the sampled run's CI summary
    double sampledIpc = 0;
    double detailedCpi = 0;
    double detailedIpc = 0;
    double ipcErrorPct = 0;   ///< (sampled - detailed)/detailed * 100
    bool detailedIpcInCi = false;
    int worstSample = -1;     ///< argmax |cpiError|; -1 when no samples
    /**
     * Pearson r of |cpiError| against the transplant warmth metrics
     * across samples; 0 when degenerate (fewer than two samples or a
     * zero-variance axis). Negative r means colder transplants (lower
     * warmth) deviate more — the expected signature of insufficient
     * warm-up.
     */
    double corrTagValid = 0;
    double corrBpredOcc = 0;
    std::vector<SampleDeviation> samples; ///< measurement order
    std::vector<PhaseDeviation> phases;   ///< SimPoint runs only
};

/**
 * Attribute the sampled run's IPC error against its matched detailed
 * run. Pure and deterministic; `sampled` must carry sample records
 * (non-detailed mode), `detailed` the matched detailed measurement.
 */
SamplingReport explainSampling(const std::string &config,
                               const Measurement &sampled,
                               const Measurement &detailed);

/** Render a sampling report for the terminal (or as markdown). */
std::string renderSamplingReport(const SamplingReport &r,
                                 bool markdown);

/**
 * Self-test for the sampling error attribution: synthesize a sampled
 * measurement whose deviations are planted to correlate with cold
 * transplants and check the report recovers the error, the worst
 * sample, the correlation sign and the per-phase rollup. Returns 0 on
 * success, 1 on failure (diagnostics on stderr).
 */
int samplingSelftest();

} // namespace vca::analysis

#endif // VCA_ANALYSIS_EXPLAIN_HH
