/**
 * @file
 * Decoded basic-block cache for fast functional execution.
 *
 * The functional fast-forward path dispatches once per basic block
 * instead of once per instruction (cavatools-style find_bb/insnp):
 * look the block up by start PC, then execute its body as a
 * straight-line pointer walk over the already-decoded StaticInsts.
 *
 * Programs are immutable once finalized (there is no self-modifying
 * code in VRISC-64), so blocks never need invalidation: every
 * blockAt(pc) answer is a pure function of (program, pc). Blocks are
 * discovered lazily — querying a PC in the middle of a previously
 * discovered block simply creates a second, shorter block starting
 * there, which keeps each lookup history-independent.
 */

#ifndef VCA_ISA_BB_CACHE_HH
#define VCA_ISA_BB_CACHE_HH

#include <cstdint>
#include <unordered_map>

#include "isa/program.hh"
#include "sim/types.hh"

namespace vca::isa {

/** A run of straight-line instructions; only the last may redirect. */
struct BasicBlock
{
    Addr startPc = 0;
    std::uint32_t length = 0; ///< instruction count, >= 1
};

class BbCache
{
  public:
    /** @param prog finalized, immutable program. */
    explicit BbCache(const Program &prog);

    /**
     * Block starting at @p pc (discovered on first use). A PC outside
     * the code image yields a one-instruction block whose only
     * instruction decodes as HALT, mirroring Program::inst().
     */
    const BasicBlock &blockAt(Addr pc);

    /** Number of distinct blocks discovered so far. */
    std::size_t blockCount() const { return blocks_.size(); }

    const Program &program() const { return prog_; }

  private:
    const Program &prog_;
    std::unordered_map<Addr, BasicBlock> blocks_;
};

} // namespace vca::isa

#endif // VCA_ISA_BB_CACHE_HH
