/**
 * @file
 * Experiment harness shared by the benches, examples and tests.
 *
 * Implements the paper's measurement methodology (Section 3):
 *  - detailed simulation of a warm-up interval followed by a measured
 *    interval (scaled-down SimPoint stand-in; the synthetic programs
 *    are stationary by construction);
 *  - complete-program dynamic path lengths from functional simulation
 *    (Section 3.1), cached per benchmark and ABI;
 *  - execution-time estimates as CPI x dynamic path length, so that
 *    windowed and non-windowed binaries are comparable even though
 *    their instruction counts differ;
 *  - weighted speedup / weighted cache accesses for SMT (Section 3.2).
 */

#ifndef VCA_ANALYSIS_EXPERIMENT_HH
#define VCA_ANALYSIS_EXPERIMENT_HH

#include <string>
#include <utility>
#include <vector>

#include "cpu/ooo_cpu.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace vca::telemetry {
class ChromeTraceWriter;
}

namespace vca::analysis {

/**
 * Optional deviations from the CpuParams::preset() configuration, for
 * the ablation studies. Zero / -1 means "keep the preset value", so a
 * default-constructed instance changes nothing. Kept as a flat POD so
 * sweep points hash and serialize trivially.
 */
struct ParamOverrides
{
    unsigned vcaTableAssoc = 0;
    unsigned astqEntries = 0;
    unsigned rsidEntries = 0;
    unsigned vcaRenamePorts = 0;
    int vcaCheckpointRecovery = -1; ///< -1 preset, else 0/1
    int vcaDeadValueHints = -1;     ///< -1 preset, else 0/1

    bool
    operator==(const ParamOverrides &o) const
    {
        return vcaTableAssoc == o.vcaTableAssoc &&
               astqEntries == o.astqEntries &&
               rsidEntries == o.rsidEntries &&
               vcaRenamePorts == o.vcaRenamePorts &&
               vcaCheckpointRecovery == o.vcaCheckpointRecovery &&
               vcaDeadValueHints == o.vcaDeadValueHints;
    }
};

/**
 * How the simulated numbers are produced. Detailed runs everything
 * through the OoO core (the default; all paper figures). SimPoint and
 * Sampled fast-forward functionally (decoded-BB dispatch) and only run
 * the OoO core over representative regions, trading a bounded IPC
 * error (the accuracy test tier's ε contract) for host speed.
 */
enum class SimMode : std::uint8_t
{
    Detailed = 0,
    SimPoint = 1, ///< one BBV-clustered representative region
    Sampled = 2,  ///< SMARTS-style periodic sampling
};

/** Stable name used by CLI parsing, cache keys and JSON exports. */
const char *simModeName(SimMode mode);

/** Parse a mode name; returns false on unknown input. */
bool parseSimMode(const std::string &text, SimMode &mode);

struct RunOptions
{
    InstCount warmupInsts = 20'000;
    InstCount measureInsts = 200'000;
    unsigned dcachePorts = 2;
    unsigned numThreads = 1;
    /** Stop the measured interval when the first thread reaches the
     *  budget (the paper's SMT methodology). */
    bool stopOnFirstThread = false;
    /** Ablation deviations from the preset configuration. */
    ParamOverrides overrides;
    /**
     * Seed for the core's tie-break RNG (0 = library default). The
     * sweep runner derives it from the point's content hash, so a
     * job's randomness can never depend on which pool thread runs it
     * or in what order — the guarantee behind bit-identical parallel
     * sweeps.
     */
    std::uint64_t seed = 0;
    /**
     * Attach the register-cache telemetry analyzer (src/telemetry/)
     * for the measured interval. The shadow models are pure observers
     * — simulated numbers are bit-identical either way — but such
     * runs skip host-MIPS accounting so observation never pollutes
     * the performance trajectory scripts/perf_compare.py tracks.
     */
    bool regTelemetry = false;
    /** Execution mode. SimPoint mode interprets warmupInsts as the
     *  detailed warm-up of each representative interval; sampled mode
     *  fast-forwards warmupInsts (functionally warmed, unmeasured)
     *  before the first sample period and uses
     *  sampleDetailWarmInsts of detailed warm-up per sample. */
    SimMode mode = SimMode::Detailed;
    /** Sampled mode: per-thread instructions between sample starts
     *  (functional fast-forward plus functional warming). */
    InstCount samplePeriodInsts = 50'000;
    /** Sampled mode: detailed instructions measured per sample. */
    InstCount sampleQuantumInsts = 2'000;
    /** Non-detailed modes: 0 (default) warms the branch predictor and
     *  caches on every fast-forwarded instruction (continuous
     *  functional warming, the SMARTS discipline); N > 0 warms only
     *  the last N instructions of each fast-forward and runs the rest
     *  through the cheaper decoded-BB path, trading accuracy for
     *  fast-forward speed. */
    InstCount sampleFuncWarmInsts = 0;
    /** Sampled mode: detailed (unmeasured) warm-up per sample. */
    InstCount sampleDetailWarmInsts = 1'000;
    /**
     * Optional sample-timeline observer for the non-detailed modes:
     * when set, sampling.cc emits fast-forward spans, per-sample
     * warm-up/measure quanta and transplant instants into this writer.
     * Pure observation — never part of the point's cache identity
     * (pointKey() serializes an explicit field list) and never shipped
     * to isolated workers.
     */
    telemetry::ChromeTraceWriter *traceWriter = nullptr;
};

/**
 * One detailed sample of a non-detailed run (one SMARTS quantum, or
 * one SimPoint phase representative), as recorded by
 * analysis/sampling.cc. The per-sample CPIs feed the confidence
 * interval in SamplingSummary; the transplant summary captures how
 * warm the transplanted microarchitectural state was at switch-in.
 */
struct SampleRecord
{
    /** Dynamic instructions fast-forwarded (all threads summed)
     *  before this sample's switch-in. */
    InstCount startInst = 0;
    Cycle warmCycles = 0;      ///< detailed warm-up cycles
    InstCount warmInsts = 0;   ///< detailed warm-up instructions
    Cycle cycles = 0;          ///< measured quantum cycles
    InstCount insts = 0;       ///< measured quantum instructions
    double cpi = 0;            ///< cycles / insts of this sample
    /** Fraction of cache lines (all levels) holding a valid tag at
     *  switch-in, after the warm-model transplant. */
    double tagValidFraction = 0;
    /** Fraction of branch-predictor counters trained away from their
     *  reset value at switch-in. */
    double bpredTableOccupancy = 0;
    /** SimPoint phase id (-1 for SMARTS samples). */
    int phase = -1;
    /** Blend weight (SimPoint phase weight; 1 for SMARTS samples). */
    double weight = 1.0;

    bool
    operator==(const SampleRecord &o) const
    {
        return startInst == o.startInst && warmCycles == o.warmCycles &&
               warmInsts == o.warmInsts && cycles == o.cycles &&
               insts == o.insts && cpi == o.cpi &&
               tagValidFraction == o.tagValidFraction &&
               bpredTableOccupancy == o.bpredTableOccupancy &&
               phase == o.phase && weight == o.weight;
    }
};

/**
 * Per-run sampling statistics: weighted mean/variance of the
 * per-sample CPIs and a t-distribution 95% confidence interval (see
 * analysis/sampling.hh for the estimator and DESIGN.md 5.1 for its
 * independence assumptions). samples == 0 means "not a sampled run" —
 * the whole block is then absent from every serialization.
 */
struct SamplingSummary
{
    unsigned samples = 0;
    double meanCpi = 0;
    double cpiVariance = 0;   ///< unbiased (reliability-weighted)
    double ciLoCpi = 0;       ///< 95% CI lower bound (CPI)
    double ciHiCpi = 0;       ///< 95% CI upper bound (CPI)
    /** True when the CI is unbounded (a single sample: no variance
     *  estimate exists). ciLo/ciHi then degenerate to the mean. */
    bool ciUnbounded = false;
    double meanTagValidFraction = 0;
    double meanBpredTableOccupancy = 0;

    /** 95% CI on IPC (the reciprocal interval; hi bound from ciLo). */
    double ipcCiLo() const { return ciHiCpi > 0 ? 1.0 / ciHiCpi : 0; }
    double ipcCiHi() const { return ciLoCpi > 0 ? 1.0 / ciLoCpi : 0; }

    bool
    operator==(const SamplingSummary &o) const
    {
        return samples == o.samples && meanCpi == o.meanCpi &&
               cpiVariance == o.cpiVariance && ciLoCpi == o.ciLoCpi &&
               ciHiCpi == o.ciHiCpi && ciUnbounded == o.ciUnbounded &&
               meanTagValidFraction == o.meanTagValidFraction &&
               meanBpredTableOccupancy == o.meanBpredTableOccupancy;
    }
};

struct Measurement
{
    bool ok = false;     ///< false: configuration cannot operate
    /**
     * True when the failure is an infrastructure fault (worker crash,
     * deadline, escaped exception) rather than a property of the
     * simulated configuration. Infra failures are never cached — the
     * same point may well succeed on a retry or the next run — while
     * !ok && !infra ("No Baseline") is a legitimate, cacheable result.
     */
    bool infra = false;
    std::string error;   ///< reason when !ok ("No Baseline" cases)
    Cycle cycles = 0;
    InstCount insts = 0;
    double ipc = 0;
    double cpi = 0;
    double dcacheAccesses = 0;       ///< during the measured interval
    double dcacheAccPerInst = 0;
    std::vector<double> threadCpi;   ///< per-thread CPI
    std::vector<double> threadDcachePerInst; ///< aggregate rate copy
    std::vector<InstCount> threadInsts;
    /** Commit-stall attribution: (bucket name, fraction of cycles),
     *  from OooCpu's cycle_accounting group. Fractions sum to 1. */
    std::vector<std::pair<std::string, double>> cycleBreakdown;
    /** Named raw counters the benches drill into (e.g. the VCA
     *  rename-stall scalars). Only counters that exist on the
     *  configuration appear. */
    std::vector<std::pair<std::string, double>> counters;
    /**
     * Sampling statistics of a non-detailed run (sampling.samples == 0
     * and sampleRecords empty on detailed runs). Serialized only when
     * present, so detailed cache entries and their checksums are
     * byte-identical with and without this layer.
     */
    SamplingSummary sampling;
    std::vector<SampleRecord> sampleRecords;

    bool
    operator==(const Measurement &o) const
    {
        return ok == o.ok && infra == o.infra && error == o.error &&
               cycles == o.cycles &&
               insts == o.insts && ipc == o.ipc && cpi == o.cpi &&
               dcacheAccesses == o.dcacheAccesses &&
               dcacheAccPerInst == o.dcacheAccPerInst &&
               threadCpi == o.threadCpi &&
               threadDcachePerInst == o.threadDcachePerInst &&
               threadInsts == o.threadInsts &&
               cycleBreakdown == o.cycleBreakdown &&
               counters == o.counters && sampling == o.sampling &&
               sampleRecords == o.sampleRecords;
    }
};

/** Run a timing measurement for an arbitrary program/thread set. */
Measurement runTiming(const std::vector<const isa::Program *> &programs,
                      cpu::RenamerKind kind, unsigned physRegs,
                      const RunOptions &opts);

/** Convenience wrapper: one benchmark on one architecture. The binary
 *  ABI is implied by the architecture (baseline runs the non-windowed
 *  binary; the windowed machines run the windowed one). */
Measurement runBench(const wload::BenchProfile &profile,
                     cpu::RenamerKind kind, unsigned physRegs,
                     const RunOptions &opts);

/** Which binary ABI an architecture executes. */
bool usesWindowedBinary(cpu::RenamerKind kind);

/** Complete-program dynamic instruction count (cached). */
InstCount pathLength(const wload::BenchProfile &profile, bool windowed);

/** Complete-program load+store count (cached with pathLength). */
InstCount memOpCount(const wload::BenchProfile &profile, bool windowed);

/**
 * Execution-time estimate for a measured benchmark: CPI x the
 * complete-program path length of the binary it ran.
 */
double executionTime(const wload::BenchProfile &profile,
                     cpu::RenamerKind kind, const Measurement &m);

/**
 * Total data-cache accesses estimate: accesses-per-committed-
 * instruction x complete-program path length.
 */
double totalDcacheAccesses(const wload::BenchProfile &profile,
                           cpu::RenamerKind kind, const Measurement &m);

/** Arithmetic mean (figures average across benchmarks). */
double mean(const std::vector<double> &xs);

/**
 * Process-wide count of runTiming() invocations (thread-safe). The
 * cache tests use it to prove that a warm-cache sweep performs zero
 * detailed simulations.
 */
std::uint64_t runTimingCallCount();

} // namespace vca::analysis

#endif // VCA_ANALYSIS_EXPERIMENT_HH
