/**
 * @file
 * vca-pipeview: ASCII renderer for O3PipeView pipeline traces.
 *
 * Reads a trace produced by vca-sim --pipeview (or any gem5 O3PipeView
 * trace) and draws one timeline per instruction, one character per
 * cycle (scaled when an instruction's lifetime exceeds the terminal
 * width):
 *
 *   f = fetch   d = decode    n = rename   p = dispatch
 *   i = issue   c = complete  r = retire   . = in flight
 *
 *   [f..dn.p..i...c..r]  1204 T0 0x0040a8 lw   r4, 8(r2)
 *
 * Examples:
 *   vca-pipeview out.trace
 *   vca-sim --pipeview /dev/stdout --stats=false | vca-pipeview -
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/options.hh"
#include "trace/pipe_trace.hh"

using namespace vca;

namespace {

/** Place a stage marker, later stages winning ties on shared cells. */
void
mark(std::string &lane, Cycle start, Cycle cyclesPerChar, Cycle when,
     char c)
{
    const size_t col =
        static_cast<size_t>((when - start) / cyclesPerChar);
    if (col < lane.size())
        lane[col] = c;
}

std::string
renderLane(const trace::PipeRecord &rec, unsigned width)
{
    const Cycle span = rec.commit - rec.fetch + 1;
    const Cycle cyclesPerChar = (span + width - 1) / width;
    const size_t cols =
        static_cast<size_t>((span + cyclesPerChar - 1) / cyclesPerChar);
    std::string lane(cols, '.');
    mark(lane, rec.fetch, cyclesPerChar, rec.fetch, 'f');
    mark(lane, rec.fetch, cyclesPerChar, rec.decode, 'd');
    mark(lane, rec.fetch, cyclesPerChar, rec.rename, 'n');
    mark(lane, rec.fetch, cyclesPerChar, rec.dispatch, 'p');
    mark(lane, rec.fetch, cyclesPerChar, rec.issue, 'i');
    mark(lane, rec.fetch, cyclesPerChar, rec.complete, 'c');
    mark(lane, rec.fetch, cyclesPerChar, rec.commit, 'r');
    return lane;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    opts.add("width", "48",
             "maximum timeline width in characters (1 cycle per "
             "character until an instruction exceeds it)");
    opts.add("tid", "-1", "show only this thread (-1 = all)");
    opts.add("insts", "0", "render at most N instructions (0 = all)");
    opts.add("ticks-per-cycle", "1000",
             "tick scale of the input trace (gem5 default: 1000)");
    opts.add("help", "false", "show this help");

    if (!opts.parse(argc, argv)) {
        std::fprintf(stderr, "error: %s\n%s", opts.error().c_str(),
                     opts.usage("vca-pipeview [trace file|-]").c_str());
        return 1;
    }
    if (opts.getBool("help")) {
        std::fputs(opts.usage("vca-pipeview [trace file|-]").c_str(),
                   stdout);
        return 0;
    }

    const std::string path =
        opts.positional().empty() ? "-" : opts.positional().front();
    std::ifstream file;
    std::istream *in = &std::cin;
    if (path != "-") {
        file.open(path);
        if (!file) {
            std::fprintf(stderr, "error: cannot open '%s'\n",
                         path.c_str());
            return 1;
        }
        in = &file;
    }

    std::vector<trace::PipeRecord> records;
    std::string error;
    std::uint64_t unknownRecords = 0;
    if (!trace::parsePipeTrace(*in, records, &error,
                               opts.getU64("ticks-per-cycle"),
                               &unknownRecords)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    if (unknownRecords) {
        std::fprintf(stderr,
                     "warning: skipped %llu unknown O3PipeView record "
                     "line(s) (e.g. telemetry instants)\n",
                     (unsigned long long)unknownRecords);
    }
    if (records.empty()) {
        std::fprintf(stderr, "no O3PipeView records in input\n");
        return 1;
    }

    const unsigned width =
        std::max(1u, static_cast<unsigned>(opts.getU64("width")));
    const std::string tidOpt = opts.get("tid");
    const long long tidFilter =
        (tidOpt.empty() || tidOpt == "-1") ? -1 : std::stoll(tidOpt);
    const std::uint64_t maxInsts = opts.getU64("insts");

    std::printf("f=fetch d=decode n=rename p=dispatch i=issue "
                "c=complete r=retire (.=in flight)\n");
    std::uint64_t shown = 0;
    for (const auto &rec : records) {
        if (tidFilter >= 0 &&
            rec.tid != static_cast<unsigned>(tidFilter))
            continue;
        if (maxInsts && shown >= maxInsts)
            break;
        ++shown;
        const std::string lane = renderLane(rec, width);
        std::printf("[%-*s] %8llu T%u 0x%06llx %s%s\n", int(width),
                    lane.c_str(), (unsigned long long)rec.fetch,
                    rec.tid, (unsigned long long)rec.pc,
                    rec.disasm.c_str(),
                    rec.monotonic() ? "" : "  [NON-MONOTONIC]");
    }
    std::printf("%llu instructions rendered\n",
                (unsigned long long)shown);
    return 0;
}
