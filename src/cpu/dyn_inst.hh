/**
 * @file
 * Dynamic instruction record and its slab allocator.
 *
 * A DynInst carries one instruction's state through the pipeline:
 * prediction checkpoints, rename results (physical register indices or
 * the VCA logical-register memory addresses), execution results, and
 * the undo information squash walks need. Instances are recycled
 * through an InstPool to keep the simulator allocation-free in steady
 * state.
 */

#ifndef VCA_CPU_DYN_INST_HH
#define VCA_CPU_DYN_INST_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "bpred/bpred.hh"
#include "isa/inst.hh"
#include "sim/types.hh"

namespace vca::cpu {

struct DynInst
{
    // Identity.
    const isa::StaticInst *si = nullptr;
    Addr pc = 0;
    ThreadId tid = 0;
    std::uint64_t seq = 0; ///< global program-order sequence number

    // Fetch / prediction.
    Addr predNpc = 0;
    bool predTaken = false;
    bpred::BPredCheckpoint bpCkpt{};
    bool hasBpCkpt = false;

    // Rename results.
    PhysRegIndex srcPhys[2] = {invalidPhysReg, invalidPhysReg};
    PhysRegIndex destPhys = invalidPhysReg;

    // Conventional-renamer undo info.
    std::int32_t destLogical = -1;
    PhysRegIndex prevDestPhys = invalidPhysReg;
    std::int32_t prevDepth = -1; ///< window depth before this call/ret

    // VCA rename info.
    Addr srcAddr[2] = {invalidAddr, invalidAddr};
    Addr destAddr = invalidAddr;
    Addr prevWbp = invalidAddr;
    PhysRegIndex vcaPrevFront = invalidPhysReg;
    bool vcaCreatedEntry = false;

    // Pipeline status.
    bool renamed = false;
    bool issued = false;
    bool completed = false;
    bool squashed = false;

    // Pipeline stage timestamps (cycles), captured as the instruction
    // flows and emitted by the O3PipeView tracer at commit. Invariant:
    // fetch <= decode <= rename <= dispatch <= issue <= complete.
    Cycle fetchTick = 0;
    Cycle decodeTick = 0;
    Cycle renameTick = 0;
    Cycle dispatchTick = 0;
    Cycle issueTick = 0;
    Cycle completeTick = 0;

    // Execution.
    std::uint64_t result = 0;
    Addr effAddr = invalidAddr;
    std::uint64_t storeData = 0;
    bool effAddrValid = false;

    // Control resolution.
    Addr actualNpc = 0;
    bool actualTaken = false;
    bool mispredicted = false;

    // Queue positions.
    std::int32_t iqSlot = -1;
    std::int32_t lsqSlot = -1;

    bool isLoad() const { return si->isLoad; }
    bool isStore() const { return si->isStore; }
    bool isControl() const { return si->isControl(); }

    /** Reset for reuse from the pool. */
    void
    reset()
    {
        *this = DynInst{};
    }
};

/**
 * Slab allocator for DynInst. Pointers stay valid until release();
 * capacity grows on demand and is bounded in practice by ROB size plus
 * front-end buffering.
 */
class InstPool
{
  public:
    DynInst *
    acquire()
    {
        if (free_.empty()) {
            slabs_.push_back(std::make_unique<DynInst>());
            return slabs_.back().get();
        }
        DynInst *inst = free_.back();
        free_.pop_back();
        inst->reset();
        return inst;
    }

    void
    release(DynInst *inst)
    {
        free_.push_back(inst);
    }

    size_t allocated() const { return slabs_.size(); }

  private:
    std::vector<std::unique_ptr<DynInst>> slabs_;
    std::vector<DynInst *> free_;
};

} // namespace vca::cpu

#endif // VCA_CPU_DYN_INST_HH
