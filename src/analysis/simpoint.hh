/**
 * @file
 * SimPoint-style program phase analysis (Sherwood et al., ASPLOS '02),
 * which the paper's methodology uses to pick representative simulation
 * regions ("we generated the best single SimPoint for each binary",
 * Section 3).
 *
 * Pipeline: execute the program functionally, accumulating a basic
 * block vector (BBV) per fixed-length interval; project the BBVs to a
 * low dimension; cluster with k-means over k = 1..maxK scored by a
 * BIC-like criterion; return the member of the largest cluster nearest
 * its centroid — the "best single SimPoint".
 *
 * For the synthetic benchmarks this doubles as a stationarity check:
 * a program whose intervals collapse to one phase is faithfully
 * represented by any warm-up + measure window, which is what the bench
 * harness relies on.
 */

#ifndef VCA_ANALYSIS_SIMPOINT_HH
#define VCA_ANALYSIS_SIMPOINT_HH

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/pca.hh"
#include "isa/program.hh"

namespace vca::analysis {

/** Execution counts per basic-block leader PC, one map per interval. */
using Bbv = std::map<Addr, std::uint64_t>;

/**
 * Run the program functionally and collect per-interval basic block
 * vectors. A basic block is led by a control-flow target (or the
 * instruction after a control instruction); each executed instruction
 * is attributed to its block's leader.
 *
 * @param intervalInsts interval length in dynamic instructions
 * @param maxIntervals  stop after this many intervals (0 = run to halt)
 */
std::vector<Bbv> collectBbvs(const isa::Program &prog,
                             InstCount intervalInsts,
                             unsigned maxIntervals = 0);

/** Dense, per-interval-normalized matrix over the union of blocks. */
Matrix bbvsToMatrix(const std::vector<Bbv> &bbvs);

struct KMeansResult
{
    std::vector<unsigned> assign; ///< cluster per point
    Matrix centroids;
    double distortion = 0; ///< sum of squared distances
};

/** Deterministic k-means (farthest-point init, fixed iterations). */
KMeansResult kmeans(const Matrix &points, unsigned k,
                    unsigned iterations = 32);

struct SimPointResult
{
    size_t intervalIndex = 0;     ///< the chosen SimPoint
    unsigned numPhases = 1;       ///< chosen k
    std::vector<unsigned> phaseOf; ///< phase id per interval
    double largestPhaseWeight = 1; ///< fraction in the chosen phase
    /**
     * One representative interval per non-empty phase (the member
     * nearest its centroid) and that phase's interval fraction, in
     * ascending interval order. The phase-weighted blend of detailed
     * measurements over these intervals is the multi-phase SimPoint
     * estimate sampled simulation uses (--mode=simpoint).
     */
    std::vector<size_t> phaseRep;
    std::vector<double> phaseWeight;
};

/**
 * Choose the best single SimPoint for a program.
 * @param maxK largest phase count considered
 */
SimPointResult pickSimPoint(const isa::Program &prog,
                            InstCount intervalInsts,
                            unsigned maxK = 6,
                            unsigned maxIntervals = 64);

} // namespace vca::analysis

#endif // VCA_ANALYSIS_SIMPOINT_HH
