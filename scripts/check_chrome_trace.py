#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by vca-sim.

Checks the structural invariants any trace-event consumer (Perfetto,
chrome://tracing) relies on:

  - the file is valid JSON with a non-empty "traceEvents" array;
  - every event has name/ph/pid/tid (and ts for non-metadata events);
  - per (pid, tid) track, timestamps are non-decreasing;
  - B/E duration events balance on every track, and every E closes
    the innermost open B of the same name (proper nesting);
  - complete events (ph == "X") carry a numeric, non-negative dur;
  - metadata (ph == "M") precedes all timeline events.

Usage: check_chrome_trace.py TRACE.json [--min-events N]
Exit status: 0 valid, 1 invalid, 2 usage error.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_chrome_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def check(path, min_events):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{path}: no traceEvents array")
    if len(events) < min_events:
        return fail(f"{path}: only {len(events)} events "
                    f"(expected >= {min_events})")

    last_ts = {}
    open_names = {}  # (pid, tid) -> stack of open B-event names
    saw_timeline = False
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i}: not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                return fail(f"event {i}: missing {field!r}")
        ph = ev["ph"]
        if ph == "M":
            if saw_timeline:
                return fail(f"event {i}: metadata after timeline events")
            continue
        saw_timeline = True
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            return fail(f"event {i}: missing numeric ts")
        track = (ev["pid"], ev["tid"])
        if track in last_ts and ts < last_ts[track]:
            return fail(f"event {i}: ts {ts} < {last_ts[track]} "
                        f"on track {track}")
        last_ts[track] = ts
        if ph == "B":
            open_names.setdefault(track, []).append(ev["name"])
        elif ph == "E":
            stack = open_names.get(track, [])
            if not stack:
                return fail(f"event {i}: E without matching B "
                            f"on track {track}")
            opened = stack.pop()
            # E events may be anonymous (the writer omits the name);
            # when one is named it must close a B of the same name.
            if ev["name"] and opened != ev["name"]:
                return fail(f"event {i}: E {ev['name']!r} closes "
                            f"open B {opened!r} on track {track} "
                            f"(improper nesting)")
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f"event {i}: X event with missing or "
                            f"negative dur ({dur!r})")
    unbalanced = {t: s for t, s in open_names.items() if s}
    if unbalanced:
        return fail(f"unclosed B events on tracks: {unbalanced}")

    print(f"check_chrome_trace: OK: {path}: {len(events)} events, "
          f"{len(last_ts)} tracks")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Validate a Chrome trace-event JSON file")
    ap.add_argument("trace", help="trace JSON file to validate")
    ap.add_argument("--min-events", type=int, default=1, metavar="N",
                    help="minimum number of events (default 1)")
    args = ap.parse_args()
    return check(args.trace, args.min_events)


if __name__ == "__main__":
    sys.exit(main())
