#!/usr/bin/env python3
"""Compare simulator host throughput between two benchmark runs.

Every figure bench writes a BENCH_<name>.json next to its other outputs
(or into VCA_BENCH_JSON_DIR) containing a "host" group: wall-clock
seconds, simulated instructions/cycles, and the derived sim_mips for
every detailed simulation the bench ran. This script diffs those
numbers between two such directories -- typically a baseline checkout
and a candidate -- and fails when any bench's host-MIPS regressed by
more than the allowed threshold.

Usage:
  perf_compare.py BASELINE_DIR CANDIDATE_DIR [--threshold FRAC]

  --threshold FRAC  allowed fractional regression before the exit
                    status turns nonzero (default 0.10 = 10%; host
                    throughput is noisy, so leave headroom)
  --selftest        run against synthesized inputs and exit; used by
                    scripts/check.sh as a smoke test

When a bench regresses, the script also diffs the "cycle_taxonomy"
block the benches export (commit-stall attribution of the reference
VCA configuration, in absolute cycles) and prints the top-3 buckets
whose CPI contribution moved -- so a regression report says *why*
simulated behavior changed, or that it did not (pure host-side
slowdown). Benches written without the block degrade gracefully.

Non-detailed runs additionally export a per-point "sampling" block
(sampled IPC with a 95% confidence interval). When both sides carry
it, the script flags points whose intervals are disjoint -- a
statistically significant IPC change -- and a significantly *lower*
candidate also fails the comparison. A non-detailed document without
the block (written by an older bench) gets a one-line notice and the
CI comparison is skipped for it; only the host-MIPS diff applies.

Exit status: 0 when no bench regressed beyond the threshold, 1 on a
regression (host-MIPS or significant sampled-IPC drop), 2 on
usage/input errors.
"""

import argparse
import json
import math
import sys
from pathlib import Path


class MissingHostStats(Exception):
    """A well-formed BENCH_*.json without a usable host-stats block."""


def load_host_mips(path):
    """(mode, host.sim_mips) from one BENCH_*.json, or None if skippable.

    Unreadable/unparseable files are warned about and skipped (they are
    someone else's garbage); a file that parses but has no host-stats
    block raises MissingHostStats -- that means the bench was built
    without host accounting and the comparison would be silently empty,
    which main() turns into exit status 2.

    The mode is the bench's execution mode ("detailed" when the file
    predates the field or the run was detailed). Detailed host-MIPS and
    sampled host-MIPS measure different work per wall-clock second, so
    collect() keeps them under distinct keys instead of conflating
    them.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"warning: skipping {path}: {e}", file=sys.stderr)
        return None
    # A degraded run: some sweep points failed after retries, so the
    # host numbers cover an unknown subset of the work. Comparing them
    # would blame (or credit) the wrong code; skip with a notice.
    failures = doc.get("failures")
    if isinstance(failures, list) and failures:
        print(f"notice: skipping {path}: run recorded "
              f"{len(failures)} failed sweep point(s); host throughput "
              f"is not comparable", file=sys.stderr)
        return None
    host = doc.get("host")
    if not isinstance(host, dict):
        raise MissingHostStats(
            f"{path}: no \"host\" stats block -- the bench that wrote "
            f"this file did not record host throughput (re-run it with "
            f"host stats enabled)")
    mips = host.get("sim_mips")
    if not isinstance(mips, (int, float)) or not math.isfinite(mips):
        raise MissingHostStats(
            f"{path}: \"host\" block has no numeric sim_mips field")
    # sim_mips == 0 is a warm-cache run (zero detailed simulations):
    # nothing to compare, but not an input error.
    if mips <= 0:
        return None
    mode = doc.get("mode", "detailed")
    if not isinstance(mode, str) or not mode:
        mode = "detailed"
    return mode, float(mips)


def collect(dirpath):
    """Map comparison key -> host MIPS for every BENCH_*.json in dirpath.

    The key is the bench name for detailed runs (the historical and
    common case) and "name@mode" otherwise, so a sampled run of a bench
    never gets diffed against a detailed run of the same bench -- a
    mode switch between baseline and candidate shows up as two
    "only in one run" rows instead of a bogus speedup.
    """
    out = {}
    for path in sorted(Path(dirpath).glob("BENCH_*.json")):
        loaded = load_host_mips(path)
        if loaded is None:
            continue
        mode, mips = loaded
        name = path.stem[len("BENCH_"):]
        out[name if mode == "detailed" else f"{name}@{mode}"] = mips
    return out


def compare(base, cand, threshold):
    """Print the per-bench table; return names regressed past threshold."""
    names = sorted(set(base) | set(cand))
    if not names:
        print("no BENCH_*.json with host stats found in either directory")
        return []
    width = max(len(n) for n in names)
    print(f"{'bench':<{width}}  {'base MIPS':>10}  {'cand MIPS':>10}  "
          f"{'speedup':>8}")
    regressed = []
    speedups = []
    for name in names:
        b, c = base.get(name), cand.get(name)
        if b is None or c is None:
            side = "baseline" if b is None else "candidate"
            print(f"{name:<{width}}  -- only in one run "
                  f"(missing from {side}) --")
            continue
        ratio = c / b
        speedups.append(ratio)
        flag = ""
        if ratio < 1.0 - threshold:
            regressed.append(name)
            flag = "  REGRESSED"
        print(f"{name:<{width}}  {b:>10.3f}  {c:>10.3f}  "
              f"{ratio:>7.2f}x{flag}")
    if speedups:
        geomean = math.exp(sum(math.log(s) for s in speedups)
                           / len(speedups))
        print(f"{'geomean':<{width}}  {'':>10}  {'':>10}  "
              f"{geomean:>7.2f}x")
    return regressed


def load_sampling_points(path):
    """Map point key -> (ipc, ci_lo, ci_hi, unbounded) for one file.

    Detailed documents have no sampling block by design and return {}
    silently. A *non-detailed* document without one was written before
    the block existed (an old baseline): that is a one-line notice and
    an empty map, never a hard error -- the host-MIPS comparison still
    applies to it.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        return {}  # load_host_mips already warned about this file
    mode = doc.get("mode", "detailed")
    if not isinstance(mode, str) or mode == "detailed":
        return {}
    block = doc.get("sampling")
    if not isinstance(block, list):
        print(f"notice: {path}: non-detailed run without a sampling "
              f"block (written by an older bench?); skipping the "
              f"CI-aware IPC comparison for it", file=sys.stderr)
        return {}
    name = Path(path).stem[len("BENCH_"):]
    out = {}
    for entry in block:
        if not isinstance(entry, dict):
            continue
        try:
            key = (f"{name}:{entry['label']}/{entry['workload']}"
                   f"@{entry['phys_regs']}")
            out[key] = (float(entry["ipc"]),
                        float(entry["ipc_ci_lo"]),
                        float(entry["ipc_ci_hi"]),
                        bool(entry.get("ci_unbounded", False)))
        except (KeyError, TypeError, ValueError):
            continue
    return out


def collect_sampling(dirpath):
    """Union of load_sampling_points over every BENCH_*.json."""
    out = {}
    for path in sorted(Path(dirpath).glob("BENCH_*.json")):
        out.update(load_sampling_points(path))
    return out


def compare_sampling(base, cand):
    """Flag sampled points whose 95% CIs are disjoint between runs.

    Returns the keys whose candidate interval lies strictly *below*
    the baseline interval (a statistically significant IPC drop).
    Unbounded intervals (n=1) overlap everything by construction.
    """
    common = sorted(set(base) & set(cand))
    if not common:
        return []
    regressed = []
    significant = 0
    for key in common:
        bipc, blo, bhi, bunb = base[key]
        cipc, clo, chi, cunb = cand[key]
        if bunb or cunb:
            continue
        if chi < blo or clo > bhi:
            significant += 1
            direction = "drop" if chi < blo else "gain"
            print(f"  {key}: sampled IPC {bipc:.4f} "
                  f"[{blo:.4f}, {bhi:.4f}] -> {cipc:.4f} "
                  f"[{clo:.4f}, {chi:.4f}]  significant {direction}")
            if chi < blo:
                regressed.append(key)
    print(f"sampled IPC: {len(common)} comparable point(s), "
          f"{significant} with disjoint 95% CIs")
    return regressed


def load_taxonomy(path):
    """(cycles, insts, {leaf: cycles}) from a BENCH json, or None."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        return None
    tax = doc.get("cycle_taxonomy")
    if not isinstance(tax, dict):
        return None
    cycles = tax.get("cycles")
    insts = tax.get("insts")
    leaves = tax.get("leaves")
    if (not isinstance(cycles, (int, float)) or
            not isinstance(insts, (int, float)) or insts <= 0 or
            not isinstance(leaves, dict)):
        return None
    return (float(cycles), float(insts),
            {k: float(v) for k, v in leaves.items()
             if isinstance(v, (int, float))})


def explain_regressions(regressed, basedir, canddir):
    """Attribute each regression to the taxonomy buckets that moved.

    The buckets partition the reference run's cycles, so per-bucket
    CPI deltas sum exactly to the CPI gap; an unchanged reference CPI
    means the simulator behaves identically and the regression is
    host-side (build, toolchain, telemetry overhead).
    """
    for name in regressed:
        base = load_taxonomy(Path(basedir, f"BENCH_{name}.json"))
        cand = load_taxonomy(Path(canddir, f"BENCH_{name}.json"))
        if base is None or cand is None:
            print(f"  {name}: no cycle_taxonomy block on both sides; "
                  f"cannot attribute (re-run the benches to export it)")
            continue
        bcyc, bins, bleaf = base
        ccyc, cins, cleaf = cand
        gap = ccyc / cins - bcyc / bins
        if abs(gap) < 1e-12:
            print(f"  {name}: reference CPI unchanged -- simulated "
                  f"behavior is identical; the slowdown is host-side")
            continue
        deltas = sorted(
            ((cleaf.get(leaf, 0.0) / cins - bleaf.get(leaf, 0.0) / bins,
              leaf) for leaf in set(bleaf) | set(cleaf)),
            key=lambda t: (-abs(t[0]), t[1]))
        print(f"  {name}: reference CPI moved {gap:+.4f}; "
              f"top attributed causes:")
        for delta, leaf in deltas[:3]:
            print(f"    {leaf:<16} {delta:+.4f} cpi "
                  f"({delta / gap:+.0%} of gap)")


def selftest():
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        basedir = Path(tmp, "base")
        canddir = Path(tmp, "cand")
        basedir.mkdir()
        canddir.mkdir()

        def write(d, name, mips):
            doc = {"bench": name, "host": {"sim_mips": mips}}
            Path(d, f"BENCH_{name}.json").write_text(json.dumps(doc))

        write(basedir, "fast", 4.0)
        write(canddir, "fast", 6.0)     # 1.5x speedup
        write(basedir, "steady", 4.0)
        write(canddir, "steady", 3.8)   # -5%: inside 10% threshold
        write(basedir, "only_base", 4.0)
        Path(canddir, "BENCH_junk.json").write_text("{ not json")

        if compare(collect(basedir), collect(canddir), 0.10):
            print("selftest: FAILED (false regression)", file=sys.stderr)
            return 1

        # Valid JSON without a host block must be a hard error (exit 2
        # via MissingHostStats), not a silent skip.
        nohost = Path(canddir, "BENCH_nohost.json")
        nohost.write_text(json.dumps({"bench": "nohost"}))
        try:
            collect(canddir)
        except MissingHostStats:
            pass
        else:
            print("selftest: FAILED (missing host block not detected)",
                  file=sys.stderr)
            return 1
        nohost.write_text(json.dumps(
            {"bench": "nohost", "host": {"wall_seconds": 1.0}}))
        try:
            collect(canddir)
        except MissingHostStats:
            pass
        else:
            print("selftest: FAILED (missing sim_mips not detected)",
                  file=sys.stderr)
            return 1
        nohost.unlink()

        # A run that recorded per-point failures is skipped with a
        # notice (its host numbers cover an unknown subset of the
        # sweep), never compared and never a hard error.
        degraded = Path(canddir, "BENCH_degraded.json")
        degraded.write_text(json.dumps(
            {"bench": "degraded", "host": {"sim_mips": 4.0},
             "failures": [{"label": "crafty/vca/192",
                           "error": "worker killed by signal 9",
                           "attempts": 3}]}))
        if "degraded" in collect(canddir):
            print("selftest: FAILED (degraded run not skipped)",
                  file=sys.stderr)
            return 1
        degraded.unlink()

        # Warm-cache runs (sim_mips == 0) are skippable, not errors.
        write(canddir, "warm", 0.0)
        if "warm" in collect(canddir):
            print("selftest: FAILED (warm-cache run not skipped)",
                  file=sys.stderr)
            return 1
        Path(canddir, "BENCH_warm.json").unlink()

        # Per-mode host-MIPS: a sampled run keys as "name@sampled", so
        # flipping a bench's mode between baseline and candidate never
        # produces a bogus speedup -- the rows simply stop pairing up.
        def write_mode(d, name, mips, mode):
            doc = {"bench": name, "mode": mode,
                   "host": {"sim_mips": mips}}
            Path(d, f"BENCH_{name}.json").write_text(json.dumps(doc))

        write_mode(basedir, "modal", 4.0, "detailed")
        write_mode(canddir, "modal", 40.0, "sampled")
        base_keys = collect(basedir)
        cand_keys = collect(canddir)
        if "modal" not in base_keys or "modal@sampled" not in cand_keys:
            print("selftest: FAILED (mode not reflected in keys)",
                  file=sys.stderr)
            return 1
        if compare(base_keys, cand_keys, 0.10):
            print("selftest: FAILED (cross-mode rows compared)",
                  file=sys.stderr)
            return 1
        Path(basedir, "BENCH_modal.json").unlink()
        Path(canddir, "BENCH_modal.json").unlink()

        write(basedir, "slow", 4.0)
        write(canddir, "slow", 2.0)     # -50%: must trip
        if compare(collect(basedir), collect(canddir), 0.10) != ["slow"]:
            print("selftest: FAILED (missed regression)", file=sys.stderr)
            return 1

        # A generous threshold forgives the same 50% drop.
        if compare(collect(basedir), collect(canddir), 0.60):
            print("selftest: FAILED (threshold ignored)", file=sys.stderr)
            return 1

        # Regression attribution: plant a rename_stall CPI gap in the
        # taxonomy blocks of the regressed bench and check the report
        # names it as the top cause.
        import io
        from contextlib import redirect_stdout

        def write_tax(d, name, mips, cycles, leaves):
            doc = {"bench": name, "host": {"sim_mips": mips},
                   "cycle_taxonomy": {"arch": "vca", "bench": "crafty",
                                      "phys_regs": 192,
                                      "cycles": cycles, "insts": 1000,
                                      "leaves": leaves}}
            Path(d, f"BENCH_{name}.json").write_text(json.dumps(doc))

        write_tax(basedir, "slow", 4.0, 1500,
                  {"retiring": 1000, "mem_stall": 500,
                   "rename_stall": 0})
        write_tax(canddir, "slow", 2.0, 1900,
                  {"retiring": 1000, "mem_stall": 500,
                   "rename_stall": 400})
        out = io.StringIO()
        with redirect_stdout(out):
            explain_regressions(["slow"], basedir, canddir)
        report = out.getvalue()
        if "rename_stall" not in report.splitlines()[1]:
            print("selftest: FAILED (planted rename_stall gap not the "
                  "top attributed cause)", file=sys.stderr)
            return 1

        # Identical taxonomy on both sides: the report must call the
        # regression host-side instead of inventing a cause.
        write_tax(canddir, "slow", 2.0, 1500,
                  {"retiring": 1000, "mem_stall": 500,
                   "rename_stall": 0})
        out = io.StringIO()
        with redirect_stdout(out):
            explain_regressions(["slow"], basedir, canddir)
        if "host-side" not in out.getvalue():
            print("selftest: FAILED (unchanged CPI not reported as "
                  "host-side)", file=sys.stderr)
            return 1

        # No taxonomy block at all degrades to a notice, not a crash.
        write(canddir, "slow", 2.0)
        out = io.StringIO()
        with redirect_stdout(out):
            explain_regressions(["slow"], basedir, canddir)
        if "cannot attribute" not in out.getvalue():
            print("selftest: FAILED (missing taxonomy block not "
                  "handled)", file=sys.stderr)
            return 1
        Path(basedir, "BENCH_slow.json").unlink()
        Path(canddir, "BENCH_slow.json").unlink()

        # A non-detailed document WITHOUT the sampling block (old
        # baseline) is a one-line notice and an empty map -- never an
        # input error.
        from contextlib import redirect_stderr

        def write_sampled(d, name, points):
            doc = {"bench": name, "mode": "sampled",
                   "host": {"sim_mips": 40.0}}
            if points is not None:
                doc["sampling"] = [
                    {"label": lab, "workload": "crafty",
                     "phys_regs": regs, "samples": 20, "ipc": ipc,
                     "ipc_ci_lo": lo, "ipc_ci_hi": hi,
                     "ci_unbounded": unb, "mean_cpi": 1 / ipc,
                     "cpi_variance": 0.001,
                     "mean_tag_valid_fraction": 0.5,
                     "mean_bpred_table_occupancy": 0.2}
                    for lab, regs, ipc, lo, hi, unb in points]
            Path(d, f"BENCH_{name}.json").write_text(json.dumps(doc))

        write_sampled(basedir, "old", None)
        err = io.StringIO()
        with redirect_stderr(err):
            if load_sampling_points(Path(basedir, "BENCH_old.json")):
                print("selftest: FAILED (missing sampling block not "
                      "an empty map)", file=sys.stderr)
                return 1
        if "without a sampling block" not in err.getvalue():
            print("selftest: FAILED (missing sampling block not "
                  "noticed)", file=sys.stderr)
            return 1
        Path(basedir, "BENCH_old.json").unlink()

        # CI-aware comparison: disjoint intervals are significant (a
        # lower candidate regresses), overlapping ones are not, and
        # unbounded n=1 intervals never flag.
        write_sampled(basedir, "ci", [
            ("vca", 192, 2.00, 1.90, 2.10, False),
            ("vca", 256, 2.00, 1.90, 2.10, False),
            ("ideal", 192, 2.00, 1.90, 2.10, True),
        ])
        write_sampled(canddir, "ci", [
            ("vca", 192, 1.50, 1.40, 1.60, False),  # disjoint drop
            ("vca", 256, 1.95, 1.85, 2.05, False),  # overlaps
            ("ideal", 192, 1.00, 0.90, 1.10, False),  # base unbounded
        ])
        out = io.StringIO()
        with redirect_stdout(out):
            ipc_regressed = compare_sampling(
                collect_sampling(basedir), collect_sampling(canddir))
        if ipc_regressed != ["ci:vca/crafty@192"]:
            print(f"selftest: FAILED (CI comparison flagged "
                  f"{ipc_regressed})", file=sys.stderr)
            return 1
        if "significant drop" not in out.getvalue():
            print("selftest: FAILED (significant drop not reported)",
                  file=sys.stderr)
            return 1

    print("selftest: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Diff host-MIPS between two BENCH_*.json directories")
    ap.add_argument("baseline", nargs="?", help="directory of baseline "
                    "BENCH_*.json files")
    ap.add_argument("candidate", nargs="?", help="directory of candidate "
                    "BENCH_*.json files")
    ap.add_argument("--threshold", type=float, default=0.10,
                    metavar="FRAC",
                    help="allowed fractional regression (default 0.10)")
    ap.add_argument("--selftest", action="store_true",
                    help="exercise the comparison on synthetic inputs")
    args = ap.parse_args()

    if args.selftest:
        return selftest()
    if not args.baseline or not args.candidate:
        ap.error("baseline and candidate directories are required")
    if not 0.0 <= args.threshold < 1.0:
        ap.error("--threshold must be in [0, 1)")
    for d in (args.baseline, args.candidate):
        if not Path(d).is_dir():
            print(f"error: {d} is not a directory", file=sys.stderr)
            return 2

    try:
        base = collect(args.baseline)
        cand = collect(args.candidate)
    except MissingHostStats as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    regressed = compare(base, cand, args.threshold)
    ipc_regressed = compare_sampling(collect_sampling(args.baseline),
                                     collect_sampling(args.candidate))
    if regressed:
        print(f"FAIL: {len(regressed)} bench(es) regressed more than "
              f"{args.threshold:.0%}: {', '.join(regressed)}",
              file=sys.stderr)
        explain_regressions(regressed, args.baseline, args.candidate)
    if ipc_regressed:
        print(f"FAIL: {len(ipc_regressed)} sampled point(s) with a "
              f"statistically significant IPC drop: "
              f"{', '.join(ipc_regressed)}", file=sys.stderr)
    return 1 if regressed or ipc_regressed else 0


if __name__ == "__main__":
    sys.exit(main())
