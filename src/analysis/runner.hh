/**
 * @file
 * Parallel sweep engine with an on-disk result cache and a
 * fault-tolerant execution layer.
 *
 * Every figure/table reproduction is a set of independent timing
 * measurements — (architecture, physical-register count, workload,
 * run options) points. The SweepRunner executes a batch of such
 * points on a work-stealing thread pool and memoizes each point's
 * Measurement in a JSON file keyed by a content hash of the full point
 * configuration, the workload profiles behind it, and the simulator
 * version tag (kSimVersionTag). Re-running an unchanged sweep is pure
 * cache hits: zero detailed simulations.
 *
 * Determinism: the timing model is deterministic, and every point's
 * RunOptions::seed is derived from its own content hash (never from a
 * shared generator), so results are bit-identical regardless of the
 * worker count (VCA_JOBS) or execution order. tests/test_golden.cc
 * pins this down.
 *
 * Fault tolerance: a multi-hour sweep must degrade by points, not by
 * batches. Four layers, all opt-in or invisible on the clean path:
 *
 *  - Process isolation (RobustConfig::isolate): each simulated point
 *    runs in a forked child that reports its Measurement through a
 *    result file; a crashing or hanging point costs one point (and is
 *    retried), never the batch.
 *  - Deadlines and retries: isolate-mode points get a wall-clock
 *    deadline (SIGKILL + retry with exponential backoff); attempts
 *    that keep failing become a structured PointFailure with
 *    Measurement::infra set, never a cached result.
 *  - Crash-safe journaling: while any point is in flight, a per-batch
 *    JSONL journal under "<cache>/journal/" records started, done and
 *    failed points. After a SIGKILL mid-sweep, a RobustConfig::resume
 *    run re-simulates only the points missing from the cache and
 *    replays journaled failures without burning their retry budget.
 *    Batches that end with failures also leave a machine-readable
 *    manifest under "<cache>/manifests/".
 *  - Cache integrity: entries are checksummed end-to-end; corrupt,
 *    truncated or wrong-schema entries are quarantined to
 *    "<cache>/quarantine/" and transparently re-simulated, and write
 *    errors (ENOSPC and friends) downgrade to "run uncached" with a
 *    single warning.
 *
 * Environment:
 *   VCA_JOBS        worker threads (default hardware_concurrency)
 *   VCA_CACHE_DIR   cache directory; empty string disables the cache
 *                   (default ".vca-cache")
 *   VCA_SWEEP_STATS print a per-batch hit/miss/throughput summary to
 *                   stderr when set and non-empty
 *   VCA_CACHE_VERIFY  0 skips checksum verification on load (default 1)
 *   VCA_ISOLATE     1 forks one child per simulated point
 *   VCA_POINT_TIMEOUT  per-point deadline in seconds (isolate mode;
 *                   0 = none)
 *   VCA_RETRIES     extra attempts after a crash/timeout (default 2)
 *   VCA_RETRY_BACKOFF_MS  first retry delay, doubling per retry
 *                   (default 100)
 *   VCA_RESUME      1 replays journaled failures instead of retrying
 *   VCA_FAULT_INJECT  deterministic chaos spec (sim/fault_inject.hh)
 *
 * Bump kSimVersionTag whenever a change affects simulated numbers —
 * it invalidates every cached measurement at once.
 */

#ifndef VCA_ANALYSIS_RUNNER_HH
#define VCA_ANALYSIS_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/experiment.hh"
#include "stats/statistics.hh"

namespace vca {
class ThreadPool;
}

namespace vca::telemetry {
class ChromeTraceWriter;
}

namespace vca::analysis {

/** Cache-invalidation tag: bump on any change to simulated numbers. */
inline constexpr const char *kSimVersionTag = "vca-sim-v1";

/**
 * On-disk entry format revision. Distinct from kSimVersionTag: bumping
 * this invalidates how measurements are stored (entries with another
 * schema read as misses and are quarantined), while the version tag
 * invalidates what the simulator computes. v2 added the "sum"
 * content checksum.
 */
inline constexpr int kCacheEntrySchema = 2;

/**
 * One sweep job: a workload (one bundled benchmark name per hardware
 * thread), the architecture that runs it, and the run options.
 */
struct SweepPoint
{
    std::vector<std::string> benches; ///< registry names, one/thread
    bool windowed = false;            ///< run the windowed binaries
    cpu::RenamerKind kind = cpu::RenamerKind::Baseline;
    unsigned physRegs = 256;
    RunOptions opts;
};

/** Single-benchmark point with the ABI implied by the architecture. */
SweepPoint makePoint(const std::string &bench, cpu::RenamerKind kind,
                     unsigned physRegs, const RunOptions &opts);

/**
 * Canonical description of a point: every field of the point and of
 * each referenced workload profile, plus kSimVersionTag. Two points
 * with equal keys measure the same thing.
 */
std::string pointKey(const SweepPoint &point);

/** FNV-1a content hash of pointKey(). Names the cache file. */
std::uint64_t pointHash(const SweepPoint &point);

/** Per-point RNG seed: a splitmix64 finalization of the hash. */
std::uint64_t pointSeed(const SweepPoint &point);

/** Serialize a Measurement (lossless, including every double). */
std::string measurementToJson(const Measurement &m);

/** Inverse of measurementToJson; throws FatalError on bad input. */
Measurement measurementFromJson(const std::string &text);

/**
 * Content hash naming a batch: FNV-1a over the sorted set of unique
 * point hashes, so the same sweep resolves to the same journal and
 * manifest regardless of point order or duplicates.
 */
std::uint64_t batchHash(const std::vector<SweepPoint> &points);

/** "<cacheDir>/journal/<batch>.jsonl": the crash-safe batch journal. */
std::string journalPath(const std::string &cacheDir, std::uint64_t batch);

/** "<cacheDir>/manifests/<batch>.json": per-batch failure manifest. */
std::string manifestPath(const std::string &cacheDir,
                         std::uint64_t batch);

/**
 * Execution-robustness knobs for a SweepRunner; the defaults keep the
 * historical in-process, fail-fast behaviour. fromEnv() is what
 * SweepConfig uses, so VCA_ISOLATE=1 turns on isolation for every
 * bench and tool without code changes.
 */
struct RobustConfig
{
    /** Fork one child per simulated point (crashes cost one point). */
    bool isolate = false;
    /** Per-point wall-clock deadline in seconds; 0 disables. Only
     *  enforceable in isolate mode (a thread cannot be killed). */
    double pointTimeoutSec = 0;
    /** Extra attempts after a crash or timeout. */
    unsigned retries = 2;
    /** Delay before the first retry, doubling per further retry. */
    unsigned backoffMs = 100;
    /** Replay journaled failures instead of re-running their retry
     *  budget; also what makes an interrupted sweep cheap to redo. */
    bool resume = false;

    static RobustConfig fromEnv();
};

/**
 * One point that exhausted its attempts: the structured record that
 * lands in the batch manifest and in SweepRunner::lastFailures().
 */
struct PointFailure
{
    std::string label;       ///< human label (bench/arch/regs)
    std::uint64_t hash = 0;  ///< pointHash() of the failed point
    std::string error;       ///< last attempt's error
    unsigned attempts = 0;   ///< attempts consumed
};

/**
 * On-disk Measurement store: one "<hash>.json" file per point under
 * dir, written atomically (temp file + rename), validated on load
 * against the entry schema, the full key string and a content
 * checksum, so hash collisions, stale version tags, truncated files
 * and bit-flipped bytes all read as misses. Invalid entries are moved
 * to "<dir>/quarantine/<name>.<reason>" for post-mortem rather than
 * deleted, and the sweep re-simulates — corruption is never fatal.
 * Failed writes (ENOSPC, read-only dir, injected faults) downgrade to
 * running uncached, warning once per process. An empty dir disables
 * the cache entirely. A SIGINT/SIGTERM mid-write unlinks every
 * in-flight temp file before the process dies (default disposition
 * re-raised), so an interrupted sweep never litters the cache
 * directory.
 */
class ResultCache
{
  public:
    explicit ResultCache(std::string dir);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** True and fills out on a valid cached entry for this point. */
    bool load(const SweepPoint &point, Measurement &out) const;

    /**
     * Persist one point's measurement. False when the entry could not
     * be committed (the sweep simply stays uncached); never throws.
     */
    bool store(const SweepPoint &point, const Measurement &m) const;

    /** The cache directory from VCA_CACHE_DIR (default .vca-cache). */
    static std::string defaultDir();

    // Integrity counters for this cache instance.
    std::uint64_t quarantined() const
    {
        return quarantined_.load(std::memory_order_relaxed);
    }
    std::uint64_t writeErrors() const
    {
        return writeErrors_.load(std::memory_order_relaxed);
    }
    /** Valid-JSON-wrong-schema entries (a subset of quarantined()). */
    std::uint64_t schemaMisses() const
    {
        return schemaMisses_.load(std::memory_order_relaxed);
    }

  private:
    std::string pathFor(const SweepPoint &point) const;

    /** Move an invalid entry aside (never throws; warns once). */
    void quarantineEntry(const std::string &path,
                         const char *reason) const;

    /** Count + warn-once for a failed store. */
    void noteWriteError(const std::string &what) const;

    std::string dir_;
    bool verify_ = true; ///< checksum entries on load (VCA_CACHE_VERIFY)

    mutable std::atomic<std::uint64_t> quarantined_{0};
    mutable std::atomic<std::uint64_t> writeErrors_{0};
    mutable std::atomic<std::uint64_t> schemaMisses_{0};
    mutable std::atomic<bool> warnedQuarantine_{false};
    mutable std::atomic<bool> warnedWrite_{false};
};

struct SweepConfig
{
    /** Worker threads; 0 = the shared global pool (VCA_JOBS). */
    unsigned jobs = 0;
    /** Cache directory; empty disables. */
    std::string cacheDir = ResultCache::defaultDir();
    /** Execution-robustness knobs (seeded from the environment). */
    RobustConfig robust = RobustConfig::fromEnv();
};

/**
 * Executes batches of sweep points. Results come back in submission
 * order; duplicate points within a batch simulate once. Progress and
 * cache effectiveness are exposed as a StatGroup ("sweep") and can be
 * printed per batch with VCA_SWEEP_STATS=1.
 *
 * Failure containment: a point that crashes, hangs past its deadline
 * or lets an exception escape never tears down the batch. It is
 * retried per RobustConfig and, if still failing, reported as a
 * Measurement with ok=false and infra=true plus a PointFailure entry —
 * the remaining points complete normally.
 */
class SweepRunner : public stats::StatGroup
{
  public:
    explicit SweepRunner(const SweepConfig &config = SweepConfig());
    ~SweepRunner() override;

    /** Run every point (cache first, then the pool); blocks. */
    std::vector<Measurement> run(const std::vector<SweepPoint> &points);

    /** Convenience: one point through the cache and pool. */
    Measurement runPoint(const SweepPoint &point);

    const ResultCache &cache() const { return cache_; }

    /** Replace the robustness knobs (tools apply CLI flags here). */
    void setRobust(const RobustConfig &robust);
    RobustConfig robust() const;

    /** Structured failures from the most recent run() batch. */
    std::vector<PointFailure> lastFailures() const;

    /** Every structured failure across this runner's lifetime. */
    std::vector<PointFailure> allFailures() const;

    // Lifetime counters across every batch this runner executed.
    stats::Scalar pointsTotal;   ///< points submitted
    stats::Scalar cacheHits;     ///< served from the on-disk cache
    stats::Scalar cacheMisses;   ///< required a detailed simulation
    stats::Scalar pointsFailed;  ///< completed with !Measurement::ok
    stats::Scalar pointsInfraFailed; ///< infra failures after retries
    stats::Scalar pointsRetried; ///< extra attempts beyond the first
    stats::Scalar pointsTimedOut; ///< point deadlines that expired
    stats::Scalar sweepSeconds;  ///< wall-clock across batches
    stats::Formula pointsPerSec; ///< lifetime throughput
    stats::Formula cacheQuarantined; ///< invalid entries moved aside
    stats::Formula cacheWriteErrors; ///< cache stores that failed

    /**
     * Shared instance on the global pool with default cache config;
     * what the benches and vca-sim use so one process-wide place
     * accumulates hit/miss statistics.
     */
    static SweepRunner &global();

    /**
     * Emit host-time Chrome trace tracks for subsequent batches: one
     * lane per pool worker thread with a slice per simulated point,
     * and cache-hit slices on the submitting thread's lane. Pass
     * nullptr to stop. The writer must outlive every run() while set.
     */
    void setTraceWriter(telemetry::ChromeTraceWriter *writer);

  private:
    Measurement executePoint(const SweepPoint &point) const;

    /**
     * The full attempt loop for one point: isolation, deadline,
     * retries with backoff. Returns either a genuine Measurement
     * (cacheable, even when !ok) or an infra-failure Measurement
     * (infra=true, never cached). Reports the attempts consumed and
     * deadline expirations for the batch counters.
     */
    Measurement runPointAttempts(const SweepPoint &point,
                                 const RobustConfig &robust,
                                 unsigned &attempts,
                                 unsigned &timeouts) const;

    /**
     * One forked attempt. True when the child completed and out is
     * valid (including child-reported simulator errors, which are
     * deterministic and not retried); false on a crash or deadline
     * kill, which are retryable.
     */
    bool runIsolated(const SweepPoint &point,
                     const RobustConfig &robust, unsigned attempt,
                     Measurement &out, std::string &error,
                     bool &timedOut) const;

    /** Stable lane id for the calling thread (0 = submitting thread). */
    int hostLaneFor(telemetry::ChromeTraceWriter &writer);

    SweepConfig config_;
    ResultCache cache_;
    std::unique_ptr<ThreadPool> ownedPool_;
    ThreadPool *pool_;

    mutable std::mutex robustMutex_; ///< guards config_.robust
    mutable std::mutex failuresMutex_;
    std::vector<PointFailure> lastFailures_;
    std::vector<PointFailure> allFailures_;

    telemetry::ChromeTraceWriter *traceWriter_ = nullptr;
    std::mutex traceMutex_;
    std::map<std::thread::id, int> hostLanes_;
};

} // namespace vca::analysis

#endif // VCA_ANALYSIS_RUNNER_HH
