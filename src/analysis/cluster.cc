#include "analysis/cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace vca::analysis {

namespace {

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0;
    for (size_t i = 0; i < a.size(); ++i)
        d += (a[i] - b[i]) * (a[i] - b[i]);
    return d;
}

} // namespace

std::vector<unsigned>
averageLinkageCluster(const Matrix &points, unsigned numClusters)
{
    const size_t n = points.size();
    if (n == 0)
        return {};
    numClusters = std::max(1u, std::min<unsigned>(numClusters, n));

    // Active clusters as member lists.
    std::vector<std::vector<size_t>> clusters(n);
    for (size_t i = 0; i < n; ++i)
        clusters[i] = {i};

    // Pairwise point distances (n is a few hundred at most).
    Matrix dist(n, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j)
            dist[i][j] = dist[j][i] = sqDist(points[i], points[j]);
    }

    auto linkage = [&](const std::vector<size_t> &a,
                       const std::vector<size_t> &b) {
        double sum = 0;
        for (size_t x : a) {
            for (size_t y : b)
                sum += dist[x][y];
        }
        return sum / (static_cast<double>(a.size()) * b.size());
    };

    while (clusters.size() > numClusters) {
        size_t bi = 0, bj = 1;
        double best = std::numeric_limits<double>::max();
        for (size_t i = 0; i < clusters.size(); ++i) {
            for (size_t j = i + 1; j < clusters.size(); ++j) {
                const double d = linkage(clusters[i], clusters[j]);
                if (d < best) {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                            clusters[bj].end());
        clusters.erase(clusters.begin() +
                       static_cast<std::ptrdiff_t>(bj));
    }

    std::vector<unsigned> assign(n, 0);
    for (size_t c = 0; c < clusters.size(); ++c) {
        for (size_t m : clusters[c])
            assign[m] = static_cast<unsigned>(c);
    }
    return assign;
}

std::vector<size_t>
clusterMedoids(const Matrix &points, const std::vector<unsigned> &assign)
{
    if (points.size() != assign.size())
        panic("clusterMedoids: size mismatch");
    unsigned numClusters = 0;
    for (unsigned a : assign)
        numClusters = std::max(numClusters, a + 1);

    const size_t dims = points.empty() ? 0 : points[0].size();
    Matrix centroids(numClusters, std::vector<double>(dims, 0.0));
    std::vector<unsigned> counts(numClusters, 0);
    for (size_t i = 0; i < points.size(); ++i) {
        for (size_t d = 0; d < dims; ++d)
            centroids[assign[i]][d] += points[i][d];
        ++counts[assign[i]];
    }
    for (unsigned c = 0; c < numClusters; ++c) {
        if (counts[c] == 0)
            panic("empty cluster %u", c);
        for (size_t d = 0; d < dims; ++d)
            centroids[c][d] /= counts[c];
    }

    std::vector<size_t> medoids(numClusters, SIZE_MAX);
    std::vector<double> bestDist(numClusters,
                                 std::numeric_limits<double>::max());
    for (size_t i = 0; i < points.size(); ++i) {
        const unsigned c = assign[i];
        const double d = sqDist(points[i], centroids[c]);
        if (d < bestDist[c]) {
            bestDist[c] = d;
            medoids[c] = i;
        }
    }
    return medoids;
}

} // namespace vca::analysis
