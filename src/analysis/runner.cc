#include "analysis/runner.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "sim/logging.hh"
#include "sim/thread_pool.hh"
#include "stats/host_stats.hh"
#include "telemetry/chrome_trace.hh"
#include "trace/json.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace vca::analysis {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Point identity
// ---------------------------------------------------------------------

namespace {

/** Shortest-exact formatting so keys are stable and doubles lossless. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
appendProfile(std::ostream &os, const wload::BenchProfile &p)
{
    os << "{name=" << p.name << ";fp=" << p.isFloat
       << ";funcs=" << p.numFuncs << ";fanout=" << p.callFanout
       << ";span=" << p.callSpan << ";body=" << p.bodyOps
       << ";locals=" << p.avgLocals << ";leaf=" << fmtDouble(p.leafFrac)
       << ";trip=" << p.loopTripMean
       << ";rbr=" << fmtDouble(p.randomBranchFrac)
       << ";foot=" << p.footprintBytes
       << ";mem=" << fmtDouble(p.memOpFrac)
       << ";chase=" << fmtDouble(p.pointerChaseFrac)
       << ";fpfrac=" << fmtDouble(p.fpFrac)
       << ";target=" << p.targetDynInsts << ";seed=" << p.seed
       << ";callheavy=" << p.callHeavy << "}";
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
splitmix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

SweepPoint
makePoint(const std::string &bench, cpu::RenamerKind kind,
          unsigned physRegs, const RunOptions &opts)
{
    SweepPoint p;
    p.benches = {bench};
    p.windowed = usesWindowedBinary(kind);
    p.kind = kind;
    p.physRegs = physRegs;
    p.opts = opts;
    return p;
}

std::string
pointKey(const SweepPoint &point)
{
    std::ostringstream os;
    os << "v=" << kSimVersionTag
       << ";arch=" << cpu::renamerKindName(point.kind)
       << ";regs=" << point.physRegs << ";windowed=" << point.windowed
       << ";warmup=" << point.opts.warmupInsts
       << ";measure=" << point.opts.measureInsts
       << ";ports=" << point.opts.dcachePorts
       << ";threads=" << point.opts.numThreads
       << ";stopfirst=" << point.opts.stopOnFirstThread;
    const ParamOverrides &ov = point.opts.overrides;
    os << ";ov=" << ov.vcaTableAssoc << "," << ov.astqEntries << ","
       << ov.rsidEntries << "," << ov.vcaRenamePorts << ","
       << ov.vcaCheckpointRecovery << "," << ov.vcaDeadValueHints;
    // Appended only when set so every pre-existing key (and therefore
    // every derived seed and cached result) is byte-identical. A
    // telemetry point is a distinct cache entry: its Measurement
    // carries extra counters.
    if (point.opts.regTelemetry)
        os << ";telem=1";
    os << ";benches=";
    for (const std::string &name : point.benches)
        appendProfile(os, wload::profileByName(name));
    return os.str();
}

std::uint64_t
pointHash(const SweepPoint &point)
{
    return fnv1a(pointKey(point));
}

std::uint64_t
pointSeed(const SweepPoint &point)
{
    // Finalize with splitmix64 so seeds are well distributed even for
    // points whose keys share long prefixes; never 0 (0 means "use the
    // library default" in RunOptions).
    const std::uint64_t seed = splitmix64(pointHash(point));
    return seed ? seed : 1;
}

// ---------------------------------------------------------------------
// Measurement (de)serialization
// ---------------------------------------------------------------------

namespace {

void
writeMeasurement(trace::JsonWriter &w, const Measurement &m)
{
    w.beginObject();
    w.key("ok").boolean(m.ok);
    w.key("error").string(m.error);
    w.key("cycles").number(std::uint64_t(m.cycles));
    w.key("insts").number(std::uint64_t(m.insts));
    w.key("ipc").number(m.ipc);
    w.key("cpi").number(m.cpi);
    w.key("dcache_accesses").number(m.dcacheAccesses);
    w.key("dcache_acc_per_inst").number(m.dcacheAccPerInst);
    w.key("thread_cpi").beginArray();
    for (double v : m.threadCpi)
        w.number(v);
    w.endArray();
    w.key("thread_dcache_per_inst").beginArray();
    for (double v : m.threadDcachePerInst)
        w.number(v);
    w.endArray();
    w.key("thread_insts").beginArray();
    for (InstCount v : m.threadInsts)
        w.number(std::uint64_t(v));
    w.endArray();
    w.key("cycle_breakdown").beginObject();
    for (const auto &[name, frac] : m.cycleBreakdown)
        w.key(name).number(frac);
    w.endObject();
    w.key("counters").beginObject();
    for (const auto &[name, value] : m.counters)
        w.key(name).number(value);
    w.endObject();
    w.endObject();
}

double
numberField(const trace::JsonValue &obj, const char *name)
{
    const trace::JsonValue *v = obj.find(name);
    if (!v || !v->isNumber())
        fatal("measurement JSON: missing number '%s'", name);
    return v->asNumber();
}

Measurement
measurementFromValue(const trace::JsonValue &v)
{
    if (!v.isObject())
        fatal("measurement JSON: not an object");
    Measurement m;
    const trace::JsonValue *ok = v.find("ok");
    const trace::JsonValue *error = v.find("error");
    if (!ok || !error)
        fatal("measurement JSON: missing ok/error");
    m.ok = ok->asBool();
    m.error = error->asString();
    m.cycles = static_cast<Cycle>(numberField(v, "cycles"));
    m.insts = static_cast<InstCount>(numberField(v, "insts"));
    m.ipc = numberField(v, "ipc");
    m.cpi = numberField(v, "cpi");
    m.dcacheAccesses = numberField(v, "dcache_accesses");
    m.dcacheAccPerInst = numberField(v, "dcache_acc_per_inst");
    const auto array = [&v](const char *name) -> const trace::JsonValue & {
        const trace::JsonValue *a = v.find(name);
        if (!a || !a->isArray())
            fatal("measurement JSON: missing array '%s'", name);
        return *a;
    };
    const trace::JsonValue &tc = array("thread_cpi");
    for (size_t i = 0; i < tc.size(); ++i)
        m.threadCpi.push_back(tc.at(i).asNumber());
    const trace::JsonValue &td = array("thread_dcache_per_inst");
    for (size_t i = 0; i < td.size(); ++i)
        m.threadDcachePerInst.push_back(td.at(i).asNumber());
    const trace::JsonValue &ti = array("thread_insts");
    for (size_t i = 0; i < ti.size(); ++i)
        m.threadInsts.push_back(
            static_cast<InstCount>(ti.at(i).asNumber()));
    const auto object = [&v](const char *name) -> const trace::JsonValue & {
        const trace::JsonValue *o = v.find(name);
        if (!o || !o->isObject())
            fatal("measurement JSON: missing object '%s'", name);
        return *o;
    };
    for (const auto &[name, value] : object("cycle_breakdown").members())
        m.cycleBreakdown.emplace_back(name, value.asNumber());
    for (const auto &[name, value] : object("counters").members())
        m.counters.emplace_back(name, value.asNumber());
    return m;
}

} // namespace

std::string
measurementToJson(const Measurement &m)
{
    std::ostringstream os;
    trace::JsonWriter w(os);
    writeMeasurement(w, m);
    return os.str();
}

Measurement
measurementFromJson(const std::string &text)
{
    return measurementFromValue(trace::JsonValue::parse(text));
}

// ---------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::defaultDir()
{
    if (const char *env = std::getenv("VCA_CACHE_DIR"))
        return env; // empty string disables the cache
    return ".vca-cache";
}

std::string
ResultCache::pathFor(const SweepPoint &point) const
{
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.json",
                  static_cast<unsigned long long>(pointHash(point)));
    return dir_ + "/" + name;
}

bool
ResultCache::load(const SweepPoint &point, Measurement &out) const
{
    if (!enabled())
        return false;
    const std::string path = pathFor(point);
    std::ifstream is(path);
    if (!is)
        return false;
    std::ostringstream buf;
    buf << is.rdbuf();
    try {
        const trace::JsonValue doc = trace::JsonValue::parse(buf.str());
        const trace::JsonValue *version = doc.find("version");
        const trace::JsonValue *key = doc.find("key");
        const trace::JsonValue *meas = doc.find("measurement");
        if (!version || !key || !meas)
            fatal("missing version/key/measurement");
        if (version->asString() != kSimVersionTag)
            return false; // stale simulator version
        if (key->asString() != pointKey(point))
            return false; // hash collision
        out = measurementFromValue(*meas);
        return true;
    } catch (const FatalError &e) {
        warn("ignoring corrupt cache entry %s: %s", path.c_str(),
             e.what());
        return false;
    }
}

namespace {

// ---------------------------------------------------------------------
// Interrupt-safe temp-file cleanup.
//
// store() writes each entry to "<path>.tmp.<pid>.<tid>" and renames it
// into place. A SIGINT in the middle of the write leaves a partial
// temp file behind forever (load() never reads temp names, but a
// mid-sweep ^C across a large sweep litters the cache directory).
// Every in-flight temp path is registered in a fixed lock-free table;
// the signal handler walks it, unlink()s whatever is still armed, and
// re-raises with the default disposition so the exit status is
// unchanged. Only async-signal-safe pieces are used in the handler:
// lock-free atomic loads, unlink(), sigaction(), raise().
// ---------------------------------------------------------------------

class TmpFileRegistry
{
  public:
    static constexpr int kSlots = 64;
    static constexpr size_t kMaxPath = 512;

    /**
     * Claim a slot for an in-flight temp path. -1 when the table is
     * full or the path too long: the writer proceeds unregistered and
     * the worst case is one orphaned temp file.
     */
    int
    acquire(const std::string &path)
    {
        if (path.size() >= kMaxPath)
            return -1;
        for (int i = 0; i < kSlots; ++i) {
            bool expected = false;
            if (slots_[i].busy.compare_exchange_strong(expected, true)) {
                std::memcpy(slots_[i].path, path.c_str(),
                            path.size() + 1);
                slots_[i].armed.store(true, std::memory_order_release);
                return i;
            }
        }
        return -1;
    }

    void
    release(int slot)
    {
        if (slot < 0)
            return;
        slots_[slot].armed.store(false, std::memory_order_release);
        slots_[slot].busy.store(false, std::memory_order_release);
    }

    /** Called from the signal handler: async-signal-safe only. */
    void
    cleanupFromSignal()
    {
        for (int i = 0; i < kSlots; ++i)
            if (slots_[i].armed.load(std::memory_order_acquire))
                ::unlink(slots_[i].path);
    }

  private:
    struct Slot
    {
        std::atomic<bool> busy{false};  ///< claimed by a writer
        std::atomic<bool> armed{false}; ///< path valid; file may exist
        char path[kMaxPath];
    };
    Slot slots_[kSlots];
};

TmpFileRegistry gTmpRegistry;

void
cacheCleanupHandler(int sig)
{
    gTmpRegistry.cleanupFromSignal();
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

/**
 * Install the cleanup handler for SIGINT/SIGTERM once, on the first
 * cache write. A disposition of SIG_IGN (e.g. under nohup) is
 * respected and left alone.
 */
void
installCacheCleanupHandler()
{
    static const bool done = [] {
        for (int sig : {SIGINT, SIGTERM}) {
            struct sigaction old = {};
            if (sigaction(sig, nullptr, &old) == 0 &&
                old.sa_handler == SIG_DFL) {
                struct sigaction sa = {};
                sa.sa_handler = &cacheCleanupHandler;
                sigemptyset(&sa.sa_mask);
                sigaction(sig, &sa, nullptr);
            }
        }
        return true;
    }();
    (void)done;
}

} // namespace

void
ResultCache::store(const SweepPoint &point, const Measurement &m) const
{
    if (!enabled())
        return;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        warn("cannot create cache dir %s: %s", dir_.c_str(),
             ec.message().c_str());
        return;
    }
    const std::string path = pathFor(point);
    // Unique temp name per writer, then an atomic rename: concurrent
    // processes computing the same point cannot interleave writes.
    std::ostringstream tmpName;
    tmpName << path << ".tmp." << ::getpid() << "."
            << std::this_thread::get_id();
    const std::string tmp = tmpName.str();
    installCacheCleanupHandler();
    const int slot = gTmpRegistry.acquire(tmp);
    {
        std::ofstream os(tmp);
        if (!os) {
            warn("cannot write cache entry %s", tmp.c_str());
            gTmpRegistry.release(slot);
            return;
        }
        trace::JsonWriter w(os);
        w.beginObject();
        w.key("version").string(kSimVersionTag);
        w.key("key").string(pointKey(point));
        w.key("measurement");
        writeMeasurement(w, m);
        w.endObject();
        os << '\n';
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("cannot commit cache entry %s: %s", path.c_str(),
             ec.message().c_str());
        fs::remove(tmp, ec);
    }
    gTmpRegistry.release(slot);
}

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

SweepRunner::SweepRunner(const SweepConfig &config)
    : stats::StatGroup("sweep"),
      pointsTotal(this, "points_total", "sweep points submitted"),
      cacheHits(this, "cache_hits", "points served from the cache"),
      cacheMisses(this, "cache_misses", "points requiring simulation"),
      pointsFailed(this, "points_failed",
                   "simulated points that cannot operate"),
      sweepSeconds(this, "sweep_seconds", "wall-clock spent in run()"),
      pointsPerSec(this, "points_per_sec", "lifetime sweep throughput",
                   [this] {
                       const double s = sweepSeconds.value();
                       return s > 0 ? pointsTotal.value() / s : 0.0;
                   }),
      config_(config),
      cache_(config.cacheDir)
{
    if (config_.jobs) {
        ownedPool_ = std::make_unique<ThreadPool>(config_.jobs);
        pool_ = ownedPool_.get();
    } else {
        pool_ = &ThreadPool::global();
    }
}

namespace {
/** pid of the host-time track group in Chrome traces. */
constexpr int kHostTracePid = 100;
} // namespace

SweepRunner::~SweepRunner() = default;

SweepRunner &
SweepRunner::global()
{
    static SweepRunner runner;
    return runner;
}

void
SweepRunner::setTraceWriter(telemetry::ChromeTraceWriter *writer)
{
    std::lock_guard<std::mutex> lock(traceMutex_);
    traceWriter_ = writer;
    hostLanes_.clear();
    if (writer) {
        writer->setProcessName(kHostTracePid, "sweep host time");
        writer->setThreadName(kHostTracePid, 0, "sweep main");
    }
}

int
SweepRunner::hostLaneFor(telemetry::ChromeTraceWriter &writer)
{
    std::lock_guard<std::mutex> lock(traceMutex_);
    auto [it, inserted] = hostLanes_.emplace(
        std::this_thread::get_id(),
        static_cast<int>(hostLanes_.size()) + 1);
    if (inserted) {
        writer.setThreadName(kHostTracePid, it->second,
                             "worker " + std::to_string(it->second));
    }
    return it->second;
}

namespace {

/** Short human label for trace slices and progress reporting. */
std::string
pointLabel(const SweepPoint &point)
{
    std::string benches;
    for (const std::string &name : point.benches) {
        if (!benches.empty())
            benches += "+";
        benches += name;
    }
    return benches + "/" + cpu::renamerKindName(point.kind) + "/" +
           std::to_string(point.physRegs);
}

/**
 * Live sweep progress on stderr, opt-in via VCA_PROGRESS=1. On a TTY
 * the line rewrites in place; piped output gets occasional plain
 * lines instead. Aggregate host MIPS comes from the process-wide
 * HostStats accumulator the workers feed.
 */
struct SweepProgress
{
    bool enabled = false;
    bool tty = false;
    size_t total = 0;    ///< unique points in this batch
    size_t cached = 0;
    size_t toSimulate = 0;
    std::mutex mutex;
    size_t running = 0;
    size_t simulated = 0;
    size_t lastPrinted = SIZE_MAX;

    void
    init(size_t uniquePoints, size_t cacheHits)
    {
        const char *pv = std::getenv("VCA_PROGRESS");
        enabled = pv && *pv && std::strcmp(pv, "0") != 0;
        if (!enabled)
            return;
        tty = isatty(fileno(stderr)) != 0;
        total = uniquePoints;
        cached = cacheHits;
        toSimulate = uniquePoints - cacheHits;
        render(false);
    }

    void
    onStart()
    {
        if (!enabled)
            return;
        std::lock_guard<std::mutex> lock(mutex);
        ++running;
        if (tty)
            render(false);
    }

    void
    onFinish()
    {
        if (!enabled)
            return;
        std::lock_guard<std::mutex> lock(mutex);
        --running;
        ++simulated;
        // Piped output: only ~10 lines per batch.
        const size_t step = std::max<size_t>(1, toSimulate / 10);
        if (tty || simulated % step == 0 || simulated == toSimulate)
            render(false);
    }

    void
    finish()
    {
        if (!enabled)
            return;
        std::lock_guard<std::mutex> lock(mutex);
        render(true);
    }

    void
    render(bool final)
    {
        const size_t done = cached + simulated;
        if (!tty && !final && done == lastPrinted)
            return;
        lastPrinted = done;
        const double mips = stats::HostStats::global().simMips.value();
        std::fprintf(stderr,
                     "%ssweep: %zu/%zu done (%zu cached), %zu running, "
                     "%.1f MIPS%s",
                     tty ? "\r\x1b[K" : "", done, total, cached, running,
                     mips, tty && !final ? "" : "\n");
        std::fflush(stderr);
    }
};

} // namespace

Measurement
SweepRunner::executePoint(const SweepPoint &point) const
{
    RunOptions opts = point.opts;
    opts.seed = pointSeed(point);
    std::vector<const isa::Program *> programs;
    programs.reserve(point.benches.size());
    for (const std::string &name : point.benches) {
        programs.push_back(wload::cachedProgram(
            wload::profileByName(name), point.windowed));
    }
    return runTiming(programs, point.kind, point.physRegs, opts);
}

std::vector<Measurement>
SweepRunner::run(const std::vector<SweepPoint> &points)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<Measurement> results(points.size());

    // Coalesce identical points: simulate (or load) each config once.
    struct Work
    {
        const SweepPoint *point;
        std::vector<size_t> slots;
    };
    std::vector<Work> unique;
    {
        std::map<std::string, size_t> byKey;
        for (size_t i = 0; i < points.size(); ++i) {
            const std::string key = pointKey(points[i]);
            auto [it, inserted] = byKey.emplace(key, unique.size());
            if (inserted)
                unique.push_back(Work{&points[i], {}});
            unique[it->second].slots.push_back(i);
        }
    }
    pointsTotal += static_cast<double>(points.size());

    struct Latch
    {
        std::mutex mutex;
        std::condition_variable cv;
        size_t remaining = 0;
    } latch;
    std::uint64_t hits = 0, misses = 0, failed = 0;
    std::mutex statsMutex;

    telemetry::ChromeTraceWriter *tw;
    {
        std::lock_guard<std::mutex> lock(traceMutex_);
        tw = traceWriter_;
    }

    std::vector<const Work *> toRun;
    for (const Work &w : unique) {
        Measurement m;
        const double hitStart = tw ? tw->hostNowUs() : 0;
        if (cache_.load(*w.point, m)) {
            ++hits;
            if (tw) {
                tw->slice(kHostTracePid, 0, "hit " + pointLabel(*w.point),
                          hitStart, tw->hostNowUs() - hitStart);
            }
            for (size_t slot : w.slots)
                results[slot] = m;
        } else {
            ++misses;
            toRun.push_back(&w);
        }
    }
    latch.remaining = toRun.size();

    SweepProgress progress;
    progress.init(unique.size(), hits);

    for (const Work *w : toRun) {
        pool_->submit([this, w, &results, &latch, &statsMutex, &failed,
                       tw, &progress] {
            progress.onStart();
            const int lane = tw ? hostLaneFor(*tw) : 0;
            const double simStart = tw ? tw->hostNowUs() : 0;
            Measurement m;
            bool cacheable = true;
            try {
                m = executePoint(*w->point);
            } catch (const std::exception &e) {
                // runTiming absorbs FatalError itself; anything that
                // reaches here is a simulator bug — report it as an
                // inoperable point but never memoize it.
                m.ok = false;
                m.error = e.what();
                cacheable = false;
            }
            if (tw) {
                tw->slice(kHostTracePid, lane,
                          "sim " + pointLabel(*w->point), simStart,
                          tw->hostNowUs() - simStart);
            }
            if (cacheable)
                cache_.store(*w->point, m);
            for (size_t slot : w->slots)
                results[slot] = m;
            if (!m.ok) {
                std::lock_guard<std::mutex> lock(statsMutex);
                ++failed;
            }
            progress.onFinish();
            std::lock_guard<std::mutex> lock(latch.mutex);
            if (--latch.remaining == 0)
                latch.cv.notify_all();
        });
    }
    {
        std::unique_lock<std::mutex> lock(latch.mutex);
        latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
    }
    progress.finish();

    cacheHits += static_cast<double>(hits);
    cacheMisses += static_cast<double>(misses);
    pointsFailed += static_cast<double>(failed);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    sweepSeconds += seconds;

    const char *report = std::getenv("VCA_SWEEP_STATS");
    if (report && *report) {
        std::fprintf(stderr,
                     "sweep: %zu points (%zu unique): %llu cache hits, "
                     "%llu simulated, %llu inoperable, %.2fs (%.1f "
                     "points/s)\n",
                     points.size(), unique.size(),
                     (unsigned long long)hits, (unsigned long long)misses,
                     (unsigned long long)failed, seconds,
                     seconds > 0 ? points.size() / seconds : 0.0);
    }
    return results;
}

Measurement
SweepRunner::runPoint(const SweepPoint &point)
{
    return run({point}).front();
}

} // namespace vca::analysis
