/**
 * @file
 * Register-space-identifier (RSID) translation table (paper §2.2.1).
 *
 * The upper bits of each logical-register memory address are mapped
 * through a small fully-associative table to an RSID; the rename-table
 * tag is then only {RSID, low offset bits} instead of the full address.
 * When the table is full and a new register space arrives, a victim
 * RSID must be reclaimed, which requires flushing every physical
 * register still tagged with it. Per-RSID reference counts let unused
 * RSIDs be reclaimed without a flush.
 */

#ifndef VCA_CORE_RSID_TABLE_HH
#define VCA_CORE_RSID_TABLE_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"
#include "stats/statistics.hh"

namespace vca::core {

class RsidTable : public stats::StatGroup
{
  public:
    static constexpr int noRsid = -1;

    RsidTable(unsigned entries, unsigned offsetBits,
              stats::StatGroup *parent)
        : stats::StatGroup("rsid", parent),
          hits(this, "hits", "RSID table hits"),
          allocations(this, "allocations", "new RSIDs allocated"),
          reclaimsClean(this, "reclaims_clean",
                        "unused RSIDs reclaimed without a flush"),
          flushes(this, "flushes",
                  "RSID replacements requiring a register flush"),
          offsetBits_(offsetBits), entries_(entries)
    {
        if (entries == 0)
            fatal("RSID table needs at least one entry");
        table_.resize(entries);
    }

    std::uint64_t upperBits(Addr addr) const { return addr >> offsetBits_; }

    /** Look up the RSID for an address; noRsid on miss. */
    int
    lookup(Addr addr)
    {
        const std::uint64_t upper = upperBits(addr);
        for (unsigned i = 0; i < entries_; ++i) {
            if (table_[i].valid && table_[i].upper == upper) {
                table_[i].lru = ++stamp_;
                ++hits;
                return static_cast<int>(i);
            }
        }
        return noRsid;
    }

    /**
     * Allocate an RSID for an address.
     * @retval >=0      the new RSID (entry was free or had refCount 0)
     * @retval noRsid   every entry is in use; victim() says which RSID
     *                  must be flushed before retrying
     */
    int
    allocate(Addr addr)
    {
        const std::uint64_t upper = upperBits(addr);
        int victim = -1;
        std::uint64_t oldest = ~std::uint64_t(0);
        for (unsigned i = 0; i < entries_; ++i) {
            if (!table_[i].valid) {
                install(i, upper);
                ++allocations;
                return static_cast<int>(i);
            }
            if (table_[i].refCount == 0 && table_[i].lru < oldest) {
                oldest = table_[i].lru;
                victim = static_cast<int>(i);
            }
        }
        if (victim >= 0) {
            // Valid but unused: reclaim without flushing.
            install(static_cast<unsigned>(victim), upper);
            ++reclaimsClean;
            ++allocations;
            return victim;
        }
        return noRsid;
    }

    /** LRU in-use RSID to flush when allocate() fails. */
    int
    victim() const
    {
        int v = -1;
        std::uint64_t oldest = ~std::uint64_t(0);
        for (unsigned i = 0; i < entries_; ++i) {
            if (table_[i].valid && table_[i].lru < oldest) {
                oldest = table_[i].lru;
                v = static_cast<int>(i);
            }
        }
        return v;
    }

    /** Called when the flush of a victim RSID's registers completed. */
    void
    invalidate(int rsid)
    {
        auto &e = table_.at(rsid);
        if (e.refCount != 0)
            panic("invalidating RSID %d with refCount %u", rsid,
                  e.refCount);
        e.valid = false;
        ++flushes;
    }

    void addRef(int rsid) { ++table_.at(rsid).refCount; }

    void
    dropRef(int rsid)
    {
        auto &e = table_.at(rsid);
        if (e.refCount == 0)
            panic("RSID %d refCount underflow", rsid);
        --e.refCount;
    }

    unsigned refCount(int rsid) const { return table_.at(rsid).refCount; }
    unsigned size() const { return entries_; }

    stats::Scalar hits;
    stats::Scalar allocations;
    stats::Scalar reclaimsClean;
    stats::Scalar flushes;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t upper = 0;
        unsigned refCount = 0;
        std::uint64_t lru = 0;
    };

    void
    install(unsigned i, std::uint64_t upper)
    {
        table_[i].valid = true;
        table_[i].upper = upper;
        table_[i].refCount = 0;
        table_[i].lru = ++stamp_;
    }

    unsigned offsetBits_;
    unsigned entries_;
    std::vector<Entry> table_;
    std::uint64_t stamp_ = 0;
};

} // namespace vca::core

#endif // VCA_CORE_RSID_TABLE_HH
