#!/usr/bin/env python3
"""Gate the sampled execution modes against the detailed reference.

Runs matched vca-sim pairs -- one detailed, one sampled (and optionally
one simpoint) -- for every renamer architecture and enforces the two
halves of the sampling contract that tests/test_accuracy.cc pins down
in-process:

  accuracy  |ipc_sampled - ipc_detailed| <= eps * ipc_detailed
            (default eps 0.03; --eps)
  speed     the functional fast-forward side of each sampled run must
            reach at least --speedup (default 5.0) times the host-MIPS
            of its detailed side, read from the run's own "func:" and
            "host:" output lines

scripts/check.sh calls this after building Release; skip it there with
CHECK_ACCURACY_GATE=0.

Usage:
  accuracy_gate.py --sim PATH/TO/vca-sim [options]

  --sim PATH        the vca-sim binary to drive (required)
  --bench NAME      benchmark to measure (default crafty)
  --archs LIST      comma-separated architectures
                    (default baseline,regwindow,ideal,vca)
  --eps FRAC        allowed fractional IPC error (default 0.03)
  --speedup FACTOR  required functional-vs-detailed host-MIPS ratio
                    (default 5.0)
  --simpoint        also gate --mode=simpoint IPC (same eps)
  --selftest        exercise the output parser on synthetic text; used
                    by scripts/check.sh as a smoke test

Exit status: 0 when every architecture meets both contracts, 1 on a
violation, 2 on usage errors or unparseable simulator output.
"""

import argparse
import os
import re
import subprocess
import sys


class ParseError(Exception):
    """vca-sim output missing a line the gate depends on."""


def parse_run(text):
    """Extract {ipc, func_mips, host_mips} from one vca-sim run.

    Detailed runs have no "func:" line; func_mips is None there.
    """
    out = {}
    m = re.search(r"^cycles=\d+ insts=\d+ ipc=([0-9.]+)", text,
                  re.MULTILINE)
    if not m:
        raise ParseError("no 'cycles=... ipc=...' line in output")
    out["ipc"] = float(m.group(1))
    m = re.search(r"^func: seconds=[0-9.]+ insts=[0-9.]+ mips=([0-9.]+)",
                  text, re.MULTILINE)
    out["func_mips"] = float(m.group(1)) if m else None
    m = re.search(r"^host: seconds=[0-9.]+ mips=([0-9.]+)", text,
                  re.MULTILINE)
    if not m:
        raise ParseError("no 'host: ... mips=...' line in output")
    out["host_mips"] = float(m.group(1))
    return out


def run_sim(sim, bench, arch, mode, extra=()):
    args = [sim, f"--bench={bench}", f"--arch={arch}"]
    if mode != "detailed":
        args.append(f"--mode={mode}")
    args += list(extra)
    env = dict(os.environ, VCA_CACHE_DIR="")
    proc = subprocess.run(args, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise ParseError(
            f"{' '.join(args)} exited {proc.returncode}: "
            f"{proc.stderr.strip()}")
    return parse_run(proc.stdout)


# Matched budgets (mirroring tests/test_accuracy.cc): after a 240k
# warm-up past the cold-start transient, the sampled run takes
# 48k/2k = 24 quanta, one every 10k instructions, covering
# instructions [250k, ~490k]; the detailed reference measures exactly
# that span in one continuous run. SimPoint estimates steady-state
# whole-program behaviour, so its reference runs detailed from past
# the transient to program end.
DETAILED_ARGS = ("--warmup=250000", "--insts=240000")
SAMPLED_ARGS = ("--warmup=240000", "--sample-period=10000",
                "--sample-quantum=2000", "--sample-detail-warm=3000",
                "--insts=48000")
FULL_ARGS = ("--warmup=240000", "--insts=5000000")
SIMPOINT_ARGS = ("--warmup=20000", "--insts=60000")


def gate(sim, bench, archs, eps, speedup, simpoint):
    failures = []
    print(f"{'arch':<14} {'detailed':>9} {'sampled':>9} {'err':>7} "
          f"{'func MIPS':>10} {'sim MIPS':>9} {'ratio':>7}")
    for arch in archs:
        detailed = run_sim(sim, bench, arch, "detailed", DETAILED_ARGS)
        sampled = run_sim(sim, bench, arch, "sampled", SAMPLED_ARGS)
        if detailed["ipc"] <= 0:
            raise ParseError(f"{arch}: detailed ipc is zero")
        err = abs(sampled["ipc"] - detailed["ipc"]) / detailed["ipc"]
        if sampled["func_mips"] is None:
            raise ParseError(f"{arch}: sampled run printed no func: "
                             f"line (functional side never ran?)")
        ratio = (sampled["func_mips"] / sampled["host_mips"]
                 if sampled["host_mips"] > 0 else float("inf"))
        flags = []
        if err > eps:
            flags.append(f"ipc error {err:.1%} > {eps:.1%}")
        if ratio < speedup:
            flags.append(f"speedup {ratio:.1f}x < {speedup:.1f}x")
        print(f"{arch:<14} {detailed['ipc']:>9.4f} "
              f"{sampled['ipc']:>9.4f} {err:>6.1%} "
              f"{sampled['func_mips']:>10.3f} "
              f"{sampled['host_mips']:>9.3f} {ratio:>6.1f}x"
              + ("  FAIL: " + "; ".join(flags) if flags else ""))
        failures += [f"{arch}: {f}" for f in flags]
        if simpoint:
            full = run_sim(sim, bench, arch, "detailed", FULL_ARGS)
            sp = run_sim(sim, bench, arch, "simpoint", SIMPOINT_ARGS)
            sperr = abs(sp["ipc"] - full["ipc"]) / full["ipc"]
            line = (f"{arch + ' (simpoint)':<14} "
                    f"{full['ipc']:>9.4f} {sp['ipc']:>9.4f} "
                    f"{sperr:>6.1%}")
            if sperr > eps:
                failures.append(
                    f"{arch}: simpoint ipc error {sperr:.1%} > {eps:.1%}")
                line += "  FAIL"
            print(line)
    return failures


def selftest():
    sampled_out = """\
arch=vca regs=192 threads=1 windowed=1 mode=sampled
cycles=12000 insts=24000 ipc=2.0000 cpi=0.5000
thread 0 (crafty): insts=24000
cycle accounting: commit=61.0% mem=20.0%
func: seconds=0.050 insts=160000 mips=3.200
host: seconds=0.200 mips=0.150 cycles_per_sec=60000
"""
    detailed_out = """\
arch=vca regs=192 threads=1 windowed=1
cycles=30000 insts=60000 ipc=2.0100 cpi=0.4975
thread 0 (crafty): insts=60000
cycle accounting: commit=61.0% mem=20.0%
host: seconds=0.400 mips=0.150 cycles_per_sec=75000
"""
    s = parse_run(sampled_out)
    d = parse_run(detailed_out)
    if s != {"ipc": 2.0, "func_mips": 3.2, "host_mips": 0.15}:
        print(f"selftest: FAILED (sampled parse: {s})", file=sys.stderr)
        return 1
    if d["ipc"] != 2.01 or d["func_mips"] is not None:
        print(f"selftest: FAILED (detailed parse: {d})", file=sys.stderr)
        return 1
    err = abs(s["ipc"] - d["ipc"]) / d["ipc"]
    if not err <= 0.03:
        print("selftest: FAILED (synthetic pair outside eps)",
              file=sys.stderr)
        return 1
    if s["func_mips"] / s["host_mips"] < 5.0:
        print("selftest: FAILED (synthetic pair under speedup)",
              file=sys.stderr)
        return 1
    try:
        parse_run("no machine-readable lines here\n")
    except ParseError:
        pass
    else:
        print("selftest: FAILED (garbage input not rejected)",
              file=sys.stderr)
        return 1
    print("selftest: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Gate sampled-mode accuracy and speedup")
    ap.add_argument("--sim", help="path to the vca-sim binary")
    ap.add_argument("--bench", default="crafty")
    ap.add_argument("--archs",
                    default="baseline,regwindow,ideal,vca")
    ap.add_argument("--eps", type=float, default=0.03, metavar="FRAC")
    ap.add_argument("--speedup", type=float, default=5.0,
                    metavar="FACTOR")
    ap.add_argument("--simpoint", action="store_true")
    ap.add_argument("--selftest", action="store_true")
    args = ap.parse_args()

    if args.selftest:
        return selftest()
    if not args.sim:
        ap.error("--sim is required")
    if not os.access(args.sim, os.X_OK):
        print(f"error: {args.sim} is not executable", file=sys.stderr)
        return 2
    if not 0.0 < args.eps < 1.0:
        ap.error("--eps must be in (0, 1)")

    try:
        failures = gate(args.sim, args.bench,
                        [a for a in args.archs.split(",") if a],
                        args.eps, args.speedup, args.simpoint)
    except ParseError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if failures:
        print(f"FAIL: {len(failures)} accuracy-contract violation(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("accuracy gate: all architectures within "
          f"{args.eps:.0%} ipc error and >= {args.speedup:.1f}x "
          "functional speedup")
    return 0


if __name__ == "__main__":
    sys.exit(main())
