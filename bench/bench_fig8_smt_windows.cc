/**
 * @file
 * Figure 8 reproduction: SMT combined with register windows. VCA runs
 * the windowed binaries (its unified context support gives it windows
 * for free); the conventional baseline runs non-windowed binaries
 * (combining windows with SMT conventionally needs a multiplicative
 * register budget - the point of Section 4.3). Weighted speedups are
 * relative to single-threaded baseline execution at 256 registers.
 *
 * Also prints the Section 4.3 cache-traffic accounting at 192
 * registers: non-windowed 4T VCA uses more data-cache accesses than
 * the 448-register baseline (+24% in the paper); adding windows cuts
 * VCA's accesses (-23%), ending below the baseline (-5%).
 */

#include "bench_common.hh"

using namespace vca;
using namespace vca::bench;

int
main()
{
    setQuiet(true);
    const std::vector<unsigned> sizes = {64, 128, 192, 256, 320,
                                         384, 448};
    const analysis::RunOptions opts = defaultOptions();
    const auto workloads = benchWorkloads();

    // Single-"workload" lists for the 1T curves: each benchmark alone.
    std::vector<std::vector<std::string>> oneThread;
    for (const auto &prof : wload::regWindowProfiles())
        oneThread.push_back({prof.name});

    // The whole grid runs through the sweep runner as one parallel,
    // cache-memoized batch; every workload runs with the paper's
    // stop-on-first-thread SMT methodology (also for the 1T curves,
    // where it is equivalent).
    const std::vector<SeriesSpec> specs = {
        {"baseline 1T", cpu::RenamerKind::Baseline, false, true,
         oneThread},
        {"baseline 2T", cpu::RenamerKind::Baseline, false, true,
         workloads.twoThread},
        {"baseline 4T", cpu::RenamerKind::Baseline, false, true,
         workloads.fourThread},
        {"vca 1T", cpu::RenamerKind::Vca, true, true, oneThread},
        {"vca 2T", cpu::RenamerKind::Vca, true, true,
         workloads.twoThread},
        {"vca 4T", cpu::RenamerKind::Vca, true, true,
         workloads.fourThread},
    };
    const auto series = sweepSeries(
        specs, sizes, opts,
        [&opts](const SeriesSpec &spec,
                const std::vector<std::string> &w,
                const analysis::Measurement &m) {
            return weightedSpeedupFrom(w, spec.windowed, m, opts);
        });

    printSeries("Figure 8: SMT + register window weighted speedup "
                "(vs 1T baseline @ 256)",
                "weighted speedup", sizes, series);

    // Section 4.3 cache-access accounting on the 4T workloads: three
    // configurations per workload, again as one runner batch (the two
    // configurations shared with the Figure 8 grid are cache hits).
    std::vector<analysis::SweepPoint> acctPoints;
    for (const auto &w : workloads.fourThread) {
        acctPoints.push_back(
            smtPoint(w, cpu::RenamerKind::Vca, 192, false, opts));
        acctPoints.push_back(
            smtPoint(w, cpu::RenamerKind::Vca, 192, true, opts));
        acctPoints.push_back(
            smtPoint(w, cpu::RenamerKind::Baseline, 448, false, opts));
    }
    const auto acctResults =
        analysis::SweepRunner::global().run(acctPoints);
    std::vector<double> vcaFlat, vcaWin, base448;
    for (size_t i = 0; i < workloads.fourThread.size(); ++i) {
        const auto &w = workloads.fourThread[i];
        const double f =
            cacheAccessMetricFrom(w, false, acctResults[3 * i]);
        const double v =
            cacheAccessMetricFrom(w, true, acctResults[3 * i + 1]);
        const double b =
            cacheAccessMetricFrom(w, false, acctResults[3 * i + 2]);
        if (f > 0 && v > 0 && b > 0) {
            vcaFlat.push_back(f);
            vcaWin.push_back(v);
            base448.push_back(b);
        }
    }
    if (!vcaFlat.empty()) {
        const double f = analysis::mean(vcaFlat);
        const double v = analysis::mean(vcaWin);
        const double b = analysis::mean(base448);
        std::printf("\n== Section 4.3 cache-access accounting "
                    "(4T workloads) ==\n");
        std::printf("4T VCA @192 (no windows) vs baseline @448: %+5.1f%% "
                    "(paper: +24%%)\n", 100 * (f / b - 1));
        std::printf("adding windows to 4T VCA @192:            %+5.1f%% "
                    "(paper: -23%%)\n", 100 * (v / f - 1));
        std::printf("4T windowed VCA @192 vs baseline @448:    %+5.1f%% "
                    "(paper:  -5%%)\n", 100 * (v / b - 1));
    }
    printCycleAccounting({cpu::RenamerKind::Baseline,
                          cpu::RenamerKind::Vca}, 192, opts);
    return finishBench();
}
