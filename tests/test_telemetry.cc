/**
 * @file
 * Tests for the telemetry layer (ctest label: observability).
 *
 *  - ChromeTraceWriter: schema round-trip through the in-tree JSON
 *    parser, ordering/nesting invariants, idempotent finish.
 *  - RegCacheAnalyzer: 3C classification on synthetic probe streams
 *    (each class provoked explicitly), burst/occupancy plumbing, and
 *    the compulsory+capacity+conflict == fills invariant end-to-end
 *    on a real VCA core.
 *  - Golden telemetry counters on a tiny deterministic workload
 *    (tests/golden/telemetry.json, refresh with VCA_UPDATE_GOLDEN=1).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "cpu/ooo_cpu.hh"
#include "stats/statistics.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/pipeline_trace.hh"
#include "telemetry/reg_cache_analyzer.hh"
#include "trace/json.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace {

using namespace vca;
using telemetry::ChromeTraceWriter;
using telemetry::RegCacheAnalyzer;

// ---------------------------------------------------------------------
// ChromeTraceWriter
// ---------------------------------------------------------------------

std::string
tempTracePath(const char *name)
{
    namespace fs = std::filesystem;
    return (fs::temp_directory_path() /
            (std::string("vca_test_trace_") + name + ".json"))
        .string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(ChromeTrace, SchemaRoundTrip)
{
    const std::string path = tempTracePath("schema");
    {
        ChromeTraceWriter w(path);
        w.setProcessName(1, "sim");
        w.setThreadName(1, 100, "T0 lane 0");
        w.slice(1, 100, "addq r1, r2", 10.0, 5.0,
                R"({"seq":7,"pc":64})");
        w.begin(1, 100, "outer", 20.0);
        w.begin(1, 100, "inner", 21.0);
        w.end(1, 100, 22.0);
        w.end(1, 100, 25.0);
        w.instant(1, 100, "window overflow", 23.0);
        w.counter(1, 100, "vca transfers", 24.0,
                  {{"spills", 3.0}, {"fills", 4.0}});
        EXPECT_TRUE(w.finish());
        EXPECT_TRUE(w.finish()) << "finish must be idempotent";
    }

    const auto doc = trace::JsonValue::parse(slurp(path));
    const auto *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GT(events->size(), 0u);

    // Every event carries the required trace-event fields, timestamps
    // are non-decreasing per (pid, tid), and B/E pairs balance.
    std::map<std::pair<double, double>, double> lastTs;
    std::map<std::pair<double, double>, int> depth;
    bool sawNonMeta = false;
    for (size_t i = 0; i < events->size(); ++i) {
        const auto &ev = events->at(i);
        ASSERT_NE(ev.find("name"), nullptr);
        ASSERT_NE(ev.find("ph"), nullptr);
        ASSERT_NE(ev.find("pid"), nullptr);
        ASSERT_NE(ev.find("tid"), nullptr);
        const std::string ph = ev.find("ph")->asString();
        if (ph == "M") {
            EXPECT_FALSE(sawNonMeta)
                << "metadata events must sort before the timeline";
            continue;
        }
        sawNonMeta = true;
        ASSERT_NE(ev.find("ts"), nullptr);
        const auto key = std::make_pair(ev.find("pid")->asNumber(),
                                        ev.find("tid")->asNumber());
        const double ts = ev.find("ts")->asNumber();
        if (lastTs.count(key))
            EXPECT_GE(ts, lastTs[key]);
        lastTs[key] = ts;
        if (ph == "B") {
            ++depth[key];
        } else if (ph == "E") {
            EXPECT_GE(--depth[key], 0) << "E without matching B";
        }
    }
    for (const auto &[key, d] : depth)
        EXPECT_EQ(d, 0) << "unbalanced B/E on a track";

    std::filesystem::remove(path);
}

TEST(ChromeTrace, EqualTimestampsKeepNesting)
{
    // Outer and inner slices that share both endpoints must still
    // sort outer-B, inner-B, inner-E, outer-E (stable sort preserves
    // insertion order on ties).
    const std::string path = tempTracePath("nesting");
    {
        ChromeTraceWriter w(path);
        w.begin(1, 1, "outer", 5.0);
        w.begin(1, 1, "inner", 5.0);
        w.end(1, 1, 9.0);
        w.end(1, 1, 9.0);
        ASSERT_TRUE(w.finish());
    }
    const auto doc = trace::JsonValue::parse(slurp(path));
    const auto *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->size(), 4u);
    EXPECT_EQ(events->at(0).find("name")->asString(), "outer");
    EXPECT_EQ(events->at(0).find("ph")->asString(), "B");
    EXPECT_EQ(events->at(1).find("name")->asString(), "inner");
    EXPECT_EQ(events->at(1).find("ph")->asString(), "B");
    EXPECT_EQ(events->at(2).find("ph")->asString(), "E");
    EXPECT_EQ(events->at(3).find("ph")->asString(), "E");
    std::filesystem::remove(path);
}

TEST(ChromeTrace, UnwritablePathWarnsAndReturnsFalse)
{
    ChromeTraceWriter w("/nonexistent-dir/trace.json");
    w.instant(1, 1, "x", 0.0);
    EXPECT_FALSE(w.finish());
}

// ---------------------------------------------------------------------
// RegCacheAnalyzer: synthetic probe streams
// ---------------------------------------------------------------------

RegCacheAnalyzer::Config
tinyShadow(unsigned capacity)
{
    RegCacheAnalyzer::Config cfg;
    cfg.shadowCapacity = capacity;
    cfg.physRegs = capacity;
    cfg.numThreads = 1;
    return cfg;
}

TEST(RegCacheAnalyzer, FirstTouchIsCompulsory)
{
    stats::StatGroup root("cpu");
    RegCacheAnalyzer a(tinyShadow(4), nullptr, &root);
    a.onFill(0x100);
    a.onFill(0x108);
    a.onFill(0x110);
    EXPECT_DOUBLE_EQ(a.fillsCompulsory.value(), 3.0);
    EXPECT_DOUBLE_EQ(a.fillsCapacity.value(), 0.0);
    EXPECT_DOUBLE_EQ(a.fillsConflict.value(), 0.0);
    EXPECT_DOUBLE_EQ(a.accesses.value(), 3.0);
}

TEST(RegCacheAnalyzer, RefillWhileShadowHoldsItIsConflict)
{
    // The FA shadow still holds the line, so only the real table's
    // limited associativity can explain the miss.
    stats::StatGroup root("cpu");
    RegCacheAnalyzer a(tinyShadow(4), nullptr, &root);
    a.onFill(0x100); // compulsory
    a.onFill(0x100); // shadow holds it -> conflict
    EXPECT_DOUBLE_EQ(a.fillsCompulsory.value(), 1.0);
    EXPECT_DOUBLE_EQ(a.fillsConflict.value(), 1.0);
    EXPECT_DOUBLE_EQ(a.fillsCapacity.value(), 0.0);
}

TEST(RegCacheAnalyzer, RefillAfterShadowEvictionIsCapacity)
{
    // Capacity 2: filling a third line evicts the LRU one; touching
    // the evicted line again is a capacity miss (seen before, gone
    // from even a fully-associative cache of this size).
    stats::StatGroup root("cpu");
    RegCacheAnalyzer a(tinyShadow(2), nullptr, &root);
    a.onFill(0x100); // compulsory, LRU order: 100
    a.onFill(0x108); // compulsory, LRU order: 108,100
    a.onFill(0x110); // compulsory, evicts 100
    a.onFill(0x100); // capacity
    EXPECT_DOUBLE_EQ(a.fillsCompulsory.value(), 3.0);
    EXPECT_DOUBLE_EQ(a.fillsCapacity.value(), 1.0);
    EXPECT_DOUBLE_EQ(a.fillsConflict.value(), 0.0);
    const double sum = a.fillsCompulsory.value() +
                       a.fillsCapacity.value() +
                       a.fillsConflict.value();
    EXPECT_DOUBLE_EQ(sum, 4.0) << "3C classes must partition fills";
}

TEST(RegCacheAnalyzer, AccessesUpdateRecencyAndShadowHits)
{
    stats::StatGroup root("cpu");
    RegCacheAnalyzer a(tinyShadow(2), nullptr, &root);
    a.onFill(0x100);   // LRU: 100
    a.onFill(0x108);   // LRU: 108,100
    a.onAccess(0x100); // shadow hit, LRU: 100,108
    a.onFill(0x110);   // evicts 108 (not 100: the access refreshed it)
    a.onFill(0x100);   // still resident -> conflict
    a.onFill(0x108);   // evicted -> capacity
    // Shadow hits: the explicit access plus the conflict fill (the FA
    // shadow held the line even though the real table missed).
    EXPECT_DOUBLE_EQ(a.shadowHits.value(), 2.0);
    EXPECT_DOUBLE_EQ(a.fillsConflict.value(), 1.0);
    EXPECT_DOUBLE_EQ(a.fillsCapacity.value(), 1.0);
    EXPECT_DOUBLE_EQ(a.accesses.value(), 6.0);
}

TEST(RegCacheAnalyzer, BurstWindowsFlushIntoHistograms)
{
    stats::StatGroup root("cpu");
    auto cfg = tinyShadow(8);
    cfg.burstWindowCycles = 16;
    RegCacheAnalyzer a(cfg, nullptr, &root);
    a.onCycle(0);
    a.onFill(0x100);
    a.onFill(0x108);
    a.onSpill(0x200);
    a.onCycle(64); // crosses several windows: flush
    EXPECT_GE(a.fillBurst.totalSamples(), 1u);
    EXPECT_GE(a.spillBurst.totalSamples(), 1u);
    EXPECT_DOUBLE_EQ(a.fillBurst.maxSampled(), 2.0);
    EXPECT_DOUBLE_EQ(a.spillBurst.maxSampled(), 1.0);
}

TEST(RegCacheAnalyzer, RegistersAsStatGroupUnderParent)
{
    stats::StatGroup root("cpu");
    RegCacheAnalyzer a(tinyShadow(4), nullptr, &root);
    a.onFill(0x100);
    EXPECT_EQ(root.findPath("reg_cache.fills_compulsory"),
              static_cast<const stats::StatBase *>(&a.fillsCompulsory));
    // Stat reset clears counters but NOT the shadow models: the same
    // address misses as conflict (still resident), not compulsory.
    root.resetStats();
    EXPECT_DOUBLE_EQ(a.fillsCompulsory.value(), 0.0);
    a.onFill(0x100);
    EXPECT_DOUBLE_EQ(a.fillsConflict.value(), 1.0);
    EXPECT_DOUBLE_EQ(a.fillsCompulsory.value(), 0.0)
        << "shadow state must survive resetStats";
}

// ---------------------------------------------------------------------
// End-to-end on a real VCA core
// ---------------------------------------------------------------------

TEST(TelemetryEndToEnd, ThreeCClassesPartitionRenamerFills)
{
#ifdef VCA_NTELEMETRY
    GTEST_SKIP() << "probe hooks compiled out (-DVCA_NTELEMETRY=ON)";
#endif
    const auto &prof = wload::profileByName("crafty");
    const isa::Program *prog = wload::cachedProgram(prof, true);
    cpu::CpuParams params =
        cpu::CpuParams::preset(cpu::RenamerKind::Vca, 192);
    cpu::OooCpu cpu(params, {prog});
    auto analyzer = telemetry::attachRegCacheAnalyzer(cpu);
    ASSERT_NE(analyzer, nullptr);
    cpu.run(20'000, 2'000'000);

    const auto &group = static_cast<const stats::StatGroup &>(cpu);
    const auto *fills = dynamic_cast<const stats::Scalar *>(
        group.find("fills"));
    ASSERT_NE(fills, nullptr);
    const double sum = analyzer->fillsCompulsory.value() +
                       analyzer->fillsCapacity.value() +
                       analyzer->fillsConflict.value();
    EXPECT_DOUBLE_EQ(sum, fills->value())
        << "every fill must land in exactly one 3C class";
    EXPECT_GT(sum, 0.0);
    EXPECT_GT(analyzer->occupancyWindowed.totalSamples() +
                  analyzer->occupancyGlobal.totalSamples(),
              0u);
    // The analyzer dumps as a child group of the CPU.
    EXPECT_NE(group.findPath("reg_cache.fills_compulsory"), nullptr);
}

TEST(TelemetryEndToEnd, NonVcaRenamerHasNothingToObserve)
{
    const auto &prof = wload::profileByName("crafty");
    const isa::Program *prog = wload::cachedProgram(prof, false);
    cpu::CpuParams params =
        cpu::CpuParams::preset(cpu::RenamerKind::Baseline, 256);
    cpu::OooCpu cpu(params, {prog});
    EXPECT_EQ(telemetry::attachRegCacheAnalyzer(cpu), nullptr);
}

TEST(TelemetryEndToEnd, AttachingAnalyzerDoesNotPerturbSimulation)
{
    // The shadow models are pure observers: simulated numbers must be
    // bit-identical with and without telemetry attached.
    analysis::RunOptions opts;
    opts.warmupInsts = 1'000;
    opts.measureInsts = 10'000;
    const auto plain = analysis::runBench(
        wload::profileByName("crafty"), cpu::RenamerKind::Vca, 192, opts);
    opts.regTelemetry = true;
    const auto observed = analysis::runBench(
        wload::profileByName("crafty"), cpu::RenamerKind::Vca, 192, opts);
    ASSERT_TRUE(plain.ok);
    ASSERT_TRUE(observed.ok);
    EXPECT_EQ(plain.cycles, observed.cycles);
    EXPECT_EQ(plain.insts, observed.insts);
    EXPECT_DOUBLE_EQ(plain.ipc, observed.ipc);
    // The observed run additionally exports the fill classes.
    std::map<std::string, double> counters(observed.counters.begin(),
                                           observed.counters.end());
    EXPECT_TRUE(counters.count("fills_compulsory"));
    EXPECT_TRUE(counters.count("fills_capacity"));
    EXPECT_TRUE(counters.count("fills_conflict"));
    EXPECT_TRUE(counters.count("shadow_hits"));
    const std::map<std::string, double> plainCounters(
        plain.counters.begin(), plain.counters.end());
    EXPECT_FALSE(plainCounters.count("fills_compulsory"));
}

// ---------------------------------------------------------------------
// Golden telemetry counters (VCA_UPDATE_GOLDEN=1 refreshes)
// ---------------------------------------------------------------------

std::map<std::string, double>
goldenTelemetryCounters()
{
    analysis::RunOptions opts;
    opts.warmupInsts = 2'000;
    opts.measureInsts = 20'000;
    opts.regTelemetry = true;
    const auto m = analysis::runBench(
        wload::profileByName("crafty"), cpu::RenamerKind::Vca, 192, opts);
    EXPECT_TRUE(m.ok);
    std::map<std::string, double> out;
    for (const auto &[name, value] : m.counters)
        if (name.rfind("fills_", 0) == 0 || name == "shadow_hits")
            out[name] = value;
    return out;
}

TEST(TelemetryGolden, CountersMatchCheckedInNumbers)
{
#ifdef VCA_NTELEMETRY
    GTEST_SKIP() << "probe hooks compiled out (-DVCA_NTELEMETRY=ON)";
#endif
    const std::string path =
        std::string(VCA_GOLDEN_DIR) + "/telemetry.json";
    const auto counters = goldenTelemetryCounters();
    ASSERT_EQ(counters.size(), 4u);

    if (const char *update = std::getenv("VCA_UPDATE_GOLDEN");
        update && *update && std::string(update) != "0") {
        std::ofstream os(path);
        ASSERT_TRUE(os) << "cannot write " << path;
        trace::JsonWriter w(os);
        w.beginObject();
        w.key("bench").string("crafty");
        w.key("arch").string("vca");
        w.key("phys_regs").number(std::uint64_t(192));
        for (const auto &[name, value] : counters)
            w.key(name).number(value);
        w.endObject();
        os << '\n';
        GTEST_SKIP() << "updated " << path;
    }

    std::ifstream is(path);
    ASSERT_TRUE(is) << path
                    << " missing; run with VCA_UPDATE_GOLDEN=1 once";
    std::ostringstream text;
    text << is.rdbuf();
    const auto doc = trace::JsonValue::parse(text.str());
    for (const auto &[name, value] : counters) {
        const auto *v = doc.find(name);
        ASSERT_NE(v, nullptr) << name << " missing from " << path;
        EXPECT_DOUBLE_EQ(v->asNumber(), value)
            << name << " drifted from golden";
    }
}

// ---------------------------------------------------------------------
// Chrome sim tracer on a real core
// ---------------------------------------------------------------------

TEST(ChromeSimTracer, EmitsBalancedSlicesForTinyRun)
{
    const std::string path = tempTracePath("simtracer");
    const auto &prof = wload::profileByName("crafty");
    const isa::Program *prog = wload::cachedProgram(prof, true);
    cpu::CpuParams params =
        cpu::CpuParams::preset(cpu::RenamerKind::Vca, 192);
    {
        cpu::OooCpu cpu(params, {prog});
        ChromeTraceWriter writer(path);
        telemetry::ChromeSimTraceOptions opts;
        opts.maxInsts = 500;
        telemetry::attachChromeSimTracer(cpu, writer, opts);
        cpu.run(2'000, 200'000);
        ASSERT_TRUE(writer.finish());
        EXPECT_GT(writer.eventCount(), 0u);
    }
    const auto doc = trace::JsonValue::parse(slurp(path));
    const auto *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::map<std::pair<double, double>, int> depth;
    for (size_t i = 0; i < events->size(); ++i) {
        const auto &ev = events->at(i);
        const std::string ph = ev.find("ph")->asString();
        const auto key = std::make_pair(ev.find("pid")->asNumber(),
                                        ev.find("tid")->asNumber());
        if (ph == "B") {
            ++depth[key];
        } else if (ph == "E") {
            ASSERT_GE(--depth[key], 0);
        }
    }
    for (const auto &[key, d] : depth)
        EXPECT_EQ(d, 0);
    std::filesystem::remove(path);
}

} // namespace
