/**
 * @file
 * Minimal command-line option parsing for the simulator tools.
 *
 * Accepts --key=value and --key value forms plus boolean flags
 * (--flag / --no-flag). Unknown options are errors; a usage table is
 * generated from the registered options.
 */

#ifndef VCA_SIM_OPTIONS_HH
#define VCA_SIM_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vca {

class Options
{
  public:
    /** Register an option with a default value and help text. */
    void add(const std::string &name, const std::string &defaultValue,
             const std::string &help);

    /**
     * Parse argv. Returns false (and fills error()) on unknown options
     * or missing values. Non-option arguments land in positional().
     */
    bool parse(int argc, const char *const *argv);

    std::string get(const std::string &name) const;
    std::uint64_t getU64(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }
    const std::string &error() const { return error_; }

    /** True when the option appeared on the command line (in any
     *  form), regardless of whether it restates the default. */
    bool wasSet(const std::string &name) const;

    /** Formatted usage listing of all registered options. */
    std::string usage(const std::string &program) const;

  private:
    struct Opt
    {
        std::string value;
        std::string defaultValue;
        std::string help;
        bool set = false;
    };

    std::map<std::string, Opt> opts_;
    std::vector<std::string> positional_;
    std::string error_;
};

} // namespace vca

#endif // VCA_SIM_OPTIONS_HH
