/**
 * @file
 * Conventional renaming: a per-thread flat map table over the logical
 * register space plus a shared free list, with walk-based squash undo.
 *
 * ConvRenamer is the paper's baseline. WindowConvRenamer extends it
 * with SPARC-style register windows held *inside* the logical register
 * file: the logical space is enlarged to hold k windows (the most that
 * fit while leaving windowMinRenameRegs rename registers, Section 4.1),
 * and window overflow/underflow traps at commit: the pipeline is
 * flushed, rename stalls for windowTrapCycles, and whole-window
 * save/restore memory operations drain through the data-cache ports.
 */

#ifndef VCA_CPU_CONV_RENAMER_HH
#define VCA_CPU_CONV_RENAMER_HH

#include <deque>
#include <vector>

#include "cpu/params.hh"
#include "cpu/phys_regfile.hh"
#include "cpu/renamer.hh"
#include "isa/program.hh"
#include "stats/statistics.hh"

namespace vca::cpu {

class ConvRenamer : public Renamer
{
  public:
    /**
     * @param logicalPerThread size of each thread's logical space
     *        (64 for the baseline; globals + k*windowSlots for windows)
     */
    ConvRenamer(const CpuParams &params, PhysRegFile &regs,
                unsigned logicalPerThread, stats::StatGroup *parent);

    bool rename(DynInst &inst, Cycle now) override;
    CommitAction commitInst(DynInst &inst) override;
    void squashInst(DynInst &inst) override;
    void validate() const override;

    void switchIn(ThreadId tid, const func::ArchState &state) override;
    std::uint64_t readArchReg(ThreadId tid, isa::RegClass cls,
                              RegIndex idx) override;

    unsigned freeRegs() const { return freeList_.size(); }

    stats::Scalar renameStallsFreeList;

  protected:
    /** Logical index of an architectural register for this thread. */
    virtual std::int32_t logicalIndex(ThreadId tid, isa::RegClass cls,
                                      RegIndex idx) const;

    /** Hooks for the windowed subclass (called inside rename()). */
    virtual void preRename(DynInst &inst) { (void)inst; }
    virtual void postRename(DynInst &inst) { (void)inst; }
    virtual void undoControl(DynInst &inst) { (void)inst; }

    // Inline: one lookup per renamed operand. Construction sizes every
    // per-thread table to logicalPerThread_ and logicalIndex() only
    // produces indices inside it.
    PhysRegIndex
    ratLookup(ThreadId tid, std::int32_t logical) const
    {
        return rat_[tid][logical];
    }
    void
    ratWrite(ThreadId tid, std::int32_t logical, PhysRegIndex phys)
    {
        rat_[tid][logical] = phys;
    }
    void freePhys(PhysRegIndex phys);

    /**
     * Shared rename body. Statically bound to Derived's logicalIndex
     * and window hooks (qualified calls, no virtual dispatch): each
     * concrete renamer's rename() instantiates it with its own type,
     * which lets the per-operand path inline. Semantics are identical
     * to the previous virtual-dispatch version.
     */
    template <class Derived>
    bool
    renameImpl(DynInst &inst, Cycle now)
    {
        (void)now;
        auto *self = static_cast<Derived *>(this);
        const isa::StaticInst &si = *inst.si;

        if (si.hasDest && freeList_.empty()) {
            ++renameStallsFreeList;
            return false;
        }

        self->Derived::preRename(inst);

        for (unsigned s = 0; s < si.numSrcs; ++s) {
            if (!si.srcValid[s])
                continue;
            const std::int32_t l = self->Derived::logicalIndex(
                inst.tid, si.src[s].cls, si.src[s].idx);
            inst.srcPhys[s] = ratLookup(inst.tid, l);
        }

        if (si.hasDest) {
            const std::int32_t l = self->Derived::logicalIndex(
                inst.tid, si.dest.cls, si.dest.idx);
            const PhysRegIndex phys = freeList_.back();
            freeList_.pop_back();
            inst.destLogical = l;
            inst.prevDestPhys = ratLookup(inst.tid, l);
            inst.destPhys = phys;
            ratWrite(inst.tid, l, phys);
            regs_.setReady(phys, false);
        }

        self->Derived::postRename(inst);
        inst.renamed = true;
        return true;
    }

    const CpuParams &params_;
    PhysRegFile &regs_;
    unsigned logicalPerThread_;
    std::vector<std::vector<PhysRegIndex>> rat_; ///< per thread
    std::vector<PhysRegIndex> freeList_;
};

class WindowConvRenamer : public ConvRenamer
{
  public:
    WindowConvRenamer(const CpuParams &params, PhysRegFile &regs,
                      std::vector<mem::SparseMemory *> memories,
                      stats::StatGroup *parent);

    /** Windows that fit: max k with G + k*W + minRename <= physRegs. */
    static unsigned windowsForConfig(const CpuParams &params);

    bool
    rename(DynInst &inst, Cycle now) override
    {
        return renameImpl<WindowConvRenamer>(inst, now);
    }
    CommitAction commitInst(DynInst &inst) override;
    void performTrap(ThreadId tid) override;

    void switchIn(ThreadId tid, const func::ArchState &state) override;
    std::uint64_t readArchReg(ThreadId tid, isa::RegClass cls,
                              RegIndex idx) override;

    bool hasTransferOp() const override { return !transferQueue_.empty(); }
    TransferOp popTransferOp() override;
    void transferDone(const TransferOp &op) override;
    bool
    transfersBlockRename() const override
    {
        return outstandingTransfers_ > 0;
    }

    unsigned numWindows() const { return numWindows_; }

    stats::Scalar overflowTraps;
    stats::Scalar underflowTraps;
    stats::Scalar windowSaves;    ///< registers written out by overflows
    stats::Scalar windowRestores; ///< registers read back by underflows

  protected:
    std::int32_t logicalIndex(ThreadId tid, isa::RegClass cls,
                              RegIndex idx) const override;
    void preRename(DynInst &inst) override;
    void postRename(DynInst &inst) override;
    void undoControl(DynInst &inst) override;

  private:
    // renameImpl<WindowConvRenamer> (instantiated in the base) makes
    // qualified calls into this class's protected hooks.
    friend class ConvRenamer;

    /** Backing-memory address of window slot s at call depth d. */
    static Addr frameAddr(unsigned depth, unsigned slot);

    struct ThreadWindows
    {
        std::int32_t renameDepth = 0; ///< speculative (rename-stage)
        std::int32_t commitDepth = 0; ///< architectural
        std::int32_t oldestResident = 0;
        // Cached globalSlots + (renameDepth % numWindows) * windowSlots
        // so per-operand logicalIndex() needs no modulo; refreshed by
        // setRenameDepth() whenever renameDepth changes.
        std::int32_t windowBase = 0;
        // dirty[w][slot]: written since window copy w became current.
        std::vector<std::vector<bool>> dirty;
        enum class Trap { None, Overflow, Underflow } pendingTrap =
            Trap::None;
        // Physical register holding the *victim* window's ra value when
        // an overflowing call has already overwritten the shared RAT
        // slot (the call's previous-mapping register).
        PhysRegIndex trapOldRaPhys = invalidPhysReg;
    };

    void
    setRenameDepth(ThreadWindows &tw, std::int32_t depth)
    {
        tw.renameDepth = depth;
        tw.windowBase = static_cast<std::int32_t>(
            isa::globalSlots +
            (static_cast<unsigned>(depth) % numWindows_) *
                isa::windowSlots);
    }

    unsigned numWindows_ = 0;
    std::vector<mem::SparseMemory *> memories_;
    std::vector<ThreadWindows> threads_;
    std::deque<TransferOp> transferQueue_;
    unsigned outstandingTransfers_ = 0;
};

} // namespace vca::cpu

#endif // VCA_CPU_CONV_RENAMER_HH
