# Smoke test: the observability surface of the sampled execution mode.
# A --mode=sampled run with --stats-json and --chrome-trace must
#   - produce a schemaVersion-3 document that passes
#     scripts/check_stats_schema.py (non-detailed shape: config.mode
#     plus the sampling block with per-sample records);
#   - produce a chrome trace that passes check_chrome_trace.py
#     (balanced B/E, monotone timestamps) AND carries the sample
#     timeline lane (fast-forward / measure spans, transplant
#     instants) alongside the host lanes.
#
# Invoked by ctest (see CMakeLists.txt) with:
#   VCA_SIM         path to the vca-sim binary
#   PYTHON3         python3 interpreter
#   SCHEMA_CHECKER  scripts/check_stats_schema.py
#   TRACE_CHECKER   scripts/check_chrome_trace.py
#   OUT             scratch path prefix for the JSON outputs

execute_process(
    COMMAND "${VCA_SIM}" --bench=crafty --arch=vca --regs=192
            --mode=sampled --warmup=5000 --insts=20000
            --sample-period=10000 --sample-quantum=2000
            --stats=false
            "--stats-json=${OUT}.stats.json"
            "--chrome-trace=${OUT}.trace.json"
    RESULT_VARIABLE sim_rc)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR "sampled vca-sim run failed (rc=${sim_rc})")
endif()

execute_process(
    COMMAND "${PYTHON3}" "${SCHEMA_CHECKER}" "${OUT}.stats.json"
    RESULT_VARIABLE schema_rc)
if(NOT schema_rc EQUAL 0)
    message(FATAL_ERROR
            "sampled stats JSON failed schema validation "
            "(rc=${schema_rc})")
endif()

execute_process(
    COMMAND "${PYTHON3}" "${TRACE_CHECKER}" "${OUT}.trace.json"
    RESULT_VARIABLE trace_rc)
if(NOT trace_rc EQUAL 0)
    message(FATAL_ERROR
            "sampled chrome trace failed validation (rc=${trace_rc})")
endif()

# The sample-timeline lane must actually be present: its process name
# metadata plus at least one measure span and one transplant instant.
file(READ "${OUT}.trace.json" trace_text)
foreach(needle "sample timeline" "\"measure\"" "\"transplant\"")
    string(FIND "${trace_text}" "${needle}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
                "sampled chrome trace is missing '${needle}'")
    endif()
endforeach()

file(REMOVE "${OUT}.stats.json" "${OUT}.trace.json")
