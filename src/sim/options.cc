#include "sim/options.hh"

#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace vca {

void
Options::add(const std::string &name, const std::string &defaultValue,
             const std::string &help)
{
    opts_[name] = {defaultValue, defaultValue, help};
}

bool
Options::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);

        std::string key = arg;
        std::string value;
        bool haveValue = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            key = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            haveValue = true;
        }

        // --no-flag form.
        if (!haveValue && key.rfind("no-", 0) == 0 &&
            opts_.count(key.substr(3))) {
            opts_[key.substr(3)].value = "false";
            opts_[key.substr(3)].set = true;
            continue;
        }

        auto it = opts_.find(key);
        if (it == opts_.end()) {
            error_ = "unknown option --" + key;
            return false;
        }
        if (haveValue) {
            it->second.value = value;
            it->second.set = true;
            continue;
        }
        // Boolean flags may omit the value; otherwise take the next arg.
        if (it->second.defaultValue == "true" ||
            it->second.defaultValue == "false") {
            it->second.value = "true";
            it->second.set = true;
            continue;
        }
        if (i + 1 >= argc) {
            error_ = "option --" + key + " needs a value";
            return false;
        }
        it->second.value = argv[++i];
        it->second.set = true;
    }
    return true;
}

bool
Options::wasSet(const std::string &name) const
{
    auto it = opts_.find(name);
    if (it == opts_.end())
        panic("option '%s' was never registered", name.c_str());
    return it->second.set;
}

std::string
Options::get(const std::string &name) const
{
    auto it = opts_.find(name);
    if (it == opts_.end())
        panic("option '%s' was never registered", name.c_str());
    return it->second.value;
}

std::uint64_t
Options::getU64(const std::string &name) const
{
    return std::strtoull(get(name).c_str(), nullptr, 10);
}

double
Options::getDouble(const std::string &name) const
{
    return std::strtod(get(name).c_str(), nullptr);
}

bool
Options::getBool(const std::string &name) const
{
    const std::string v = get(name);
    return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string
Options::usage(const std::string &program) const
{
    std::ostringstream os;
    os << "usage: " << program << " [options]\n\noptions:\n";
    for (const auto &[name, opt] : opts_) {
        os << "  --" << name;
        if (opt.defaultValue != "true" && opt.defaultValue != "false")
            os << "=<value>";
        os << "  (default: " << opt.defaultValue << ")\n      "
           << opt.help << "\n";
    }
    return os.str();
}

} // namespace vca
