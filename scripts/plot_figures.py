#!/usr/bin/env python3
"""Plot the reproduced figures from the bench CSVs.

Usage:
    mkdir -p csv && VCA_CSV_DIR=csv ./build/bench/bench_fig4_regwindow_time
    ... (repeat for the other figure benches, or run them all) ...
    python3 scripts/plot_figures.py csv/

Produces one PNG per CSV next to it. Requires matplotlib.
"""

import csv
import pathlib
import sys


def plot_file(path: pathlib.Path) -> None:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    with path.open() as fh:
        rows = list(csv.reader(fh))
    header, data = rows[0], rows[1:]
    xs = [int(r[0]) for r in data]

    fig, ax = plt.subplots(figsize=(6, 4))
    for col in range(1, len(header)):
        ys, pts = [], []
        for i, r in enumerate(data):
            if r[col]:
                pts.append(xs[i])
                ys.append(float(r[col]))
        ax.plot(pts, ys, marker="o", label=header[col])
    ax.set_xlabel("physical registers")
    ax.set_title(path.stem.replace("_", " "))
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    out = path.with_suffix(".png")
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    print(f"wrote {out}")


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 1
    directory = pathlib.Path(sys.argv[1])
    files = sorted(directory.glob("*.csv"))
    if not files:
        print(f"no CSV files in {directory}")
        return 1
    for f in files:
        plot_file(f)
    return 0


if __name__ == "__main__":
    sys.exit(main())
