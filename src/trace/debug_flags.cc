#include "trace/debug_flags.hh"

#include <cstdarg>
#include <iostream>
#include <sstream>

#include "sim/logging.hh"

namespace vca::trace {

namespace detail {
bool flagsOn[numFlags] = {};
bool anyOn = false;
} // namespace detail

namespace {

std::ostream *traceStream = nullptr;
Cycle traceCycle_ = 0;

void
recomputeAnyOn()
{
    bool any = false;
    for (unsigned i = 0; i < numFlags; ++i)
        any = any || detail::flagsOn[i];
    detail::anyOn = any;
}

std::ostream &
out()
{
    return traceStream ? *traceStream : std::cerr;
}

void
emit(Flag f, int tid, const std::string &msg)
{
    std::ostringstream line;
    line << traceCycle_ << ": ";
    if (tid >= 0)
        line << "T" << tid << ": ";
    line << flagName(f) << ": " << msg << "\n";
    out() << line.str();
}

} // namespace

const std::vector<FlagInfo> &
allFlags()
{
    static const std::vector<FlagInfo> flags = {
        {Flag::Fetch, "Fetch",
         "instruction fetch, icache stalls, redirects"},
        {Flag::Rename, "Rename",
         "rename-stage mapping and structural stalls"},
        {Flag::Dispatch, "Dispatch",
         "instruction-queue insertion and wakeup"},
        {Flag::Issue, "Issue",
         "instruction selection and FU/port arbitration"},
        {Flag::Commit, "Commit",
         "in-order retirement, one line per instruction"},
        {Flag::Squash, "Squash",
         "pipeline flushes: mispredicts, traps, halts"},
        {Flag::Cache, "Cache",
         "cache misses, writebacks, MSHR rejections"},
        {Flag::VcaRename, "VcaRename",
         "VCA rename-table hits, misses, evictions"},
        {Flag::VcaCache, "VcaCache",
         "VCA spill/fill traffic through the ASTQ"},
        {Flag::WindowTrap, "WindowTrap",
         "register-window overflow/underflow traps"},
        {Flag::Interval, "Interval",
         "interval-statistics records as they close"},
    };
    return flags;
}

const char *
flagName(Flag f)
{
    const auto idx = static_cast<unsigned>(f);
    if (idx >= numFlags)
        return "?";
    return allFlags()[idx].name;
}

void
setFlag(Flag f, bool on)
{
    const auto idx = static_cast<unsigned>(f);
    if (idx >= numFlags)
        panic("setFlag: bad flag index %u", idx);
    detail::flagsOn[idx] = on;
    recomputeAnyOn();
}

bool
setFlagByName(const std::string &name, bool on)
{
    if (name == "All") {
        for (unsigned i = 0; i < numFlags; ++i)
            detail::flagsOn[i] = on;
        recomputeAnyOn();
        return true;
    }
    for (const FlagInfo &info : allFlags()) {
        if (name == info.name) {
            setFlag(info.flag, on);
            return true;
        }
    }
    return false;
}

void
setFlagsFromString(const std::string &list)
{
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        bool on = true;
        if (item[0] == '-' || item[0] == '+') {
            on = item[0] == '+';
            item.erase(0, 1);
        }
        if (!setFlagByName(item, on)) {
            fatal("unknown debug flag '%s' (see --debug-help)",
                  item.c_str());
        }
    }
}

void
clearAllFlags()
{
    for (unsigned i = 0; i < numFlags; ++i)
        detail::flagsOn[i] = false;
    detail::anyOn = false;
}

std::vector<std::string>
enabledFlagNames()
{
    std::vector<std::string> names;
    for (const FlagInfo &info : allFlags()) {
        if (detail::flagsOn[static_cast<unsigned>(info.flag)])
            names.push_back(info.name);
    }
    return names;
}

std::string
flagHelp()
{
    std::ostringstream os;
    os << "debug flags (--debug-flags=A,B or All, -Flag disables):\n";
    for (const FlagInfo &info : allFlags()) {
        os << "  " << info.name;
        for (size_t i = std::string(info.name).size(); i < 12; ++i)
            os << ' ';
        os << info.desc << "\n";
    }
    return os.str();
}

void
setTraceStream(std::ostream *os)
{
    traceStream = os;
}

void
setTraceCycle(Cycle c)
{
    traceCycle_ = c;
}

Cycle
traceCycle()
{
    return traceCycle_;
}

void
tracePrintf(Flag f, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vca::detail::vformatMessage(fmt, args);
    va_end(args);
    emit(f, -1, msg);
}

void
tracePrintfTid(Flag f, unsigned tid, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vca::detail::vformatMessage(fmt, args);
    va_end(args);
    emit(f, static_cast<int>(tid), msg);
}

} // namespace vca::trace
