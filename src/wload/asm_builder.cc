#include "wload/asm_builder.hh"

#include "sim/logging.hh"

namespace vca::wload {

using isa::Opcode;

AsmBuilder::Label
AsmBuilder::newLabel()
{
    labelPos_.push_back(-1);
    return static_cast<Label>(labelPos_.size() - 1);
}

void
AsmBuilder::bind(Label label)
{
    if (labelPos_.at(label) != -1)
        panic("label %d bound twice", label);
    labelPos_[label] = static_cast<std::int64_t>(code_.size());
}

void
AsmBuilder::emitR(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    code_.push_back(isa::encodeR(op, rd, rs1, rs2));
}

void
AsmBuilder::emitI(Opcode op, RegIndex rd, RegIndex rs1, std::int32_t imm)
{
    code_.push_back(isa::encodeI(op, rd, rs1, imm));
}

void
AsmBuilder::emitWord(std::uint32_t word)
{
    code_.push_back(word);
}

void
AsmBuilder::nop()
{
    code_.push_back(isa::encodeJ(Opcode::Nop, 0));
}

void
AsmBuilder::halt()
{
    code_.push_back(isa::encodeJ(Opcode::Halt, 0));
}

void
AsmBuilder::addi(RegIndex rd, RegIndex rs1, std::int32_t imm)
{
    emitI(Opcode::Addi, rd, rs1, imm);
}

void
AsmBuilder::mov(RegIndex rd, RegIndex rs1)
{
    emitR(Opcode::Add, rd, rs1, isa::regZero);
}

void
AsmBuilder::li(RegIndex rd, std::uint64_t value)
{
    // Build the constant 13 bits at a time (ori immediates are signed
    // 14-bit, so we use 13-bit positive chunks).
    const auto sval = static_cast<std::int64_t>(value);
    if (sval >= isa::imm14Min && sval <= isa::imm14Max) {
        addi(rd, isa::regZero, static_cast<std::int32_t>(sval));
        return;
    }
    // Find the highest 13-bit chunk.
    int chunks = 1;
    while (chunks * 13 < 64 && (value >> (chunks * 13)) != 0)
        ++chunks;
    // Emit from the top chunk down.
    const int top = chunks - 1;
    addi(rd, isa::regZero,
         static_cast<std::int32_t>((value >> (top * 13)) & 0x1fff));
    for (int c = top - 1; c >= 0; --c) {
        emitI(Opcode::Slli, rd, rd, 13);
        const auto chunk =
            static_cast<std::int32_t>((value >> (c * 13)) & 0x1fff);
        if (chunk != 0)
            emitI(Opcode::Ori, rd, rd, chunk);
    }
}

void
AsmBuilder::ld(RegIndex rd, RegIndex base, std::int32_t off)
{
    emitI(Opcode::Ld, rd, base, off);
}

void
AsmBuilder::st(RegIndex base, RegIndex data, std::int32_t off)
{
    code_.push_back(isa::encodeB(Opcode::St, base, data, off));
}

void
AsmBuilder::fld(RegIndex fd, RegIndex base, std::int32_t off)
{
    emitI(Opcode::Fld, fd, base, off);
}

void
AsmBuilder::fst(RegIndex base, RegIndex fdata, std::int32_t off)
{
    code_.push_back(isa::encodeB(Opcode::Fst, base, fdata, off));
}

void
AsmBuilder::branch(Opcode op, RegIndex rs1, RegIndex rs2, Label target)
{
    fixups_.push_back({here(), target, true});
    code_.push_back(isa::encodeB(op, rs1, rs2, 0));
}

void
AsmBuilder::jmp(Label target)
{
    fixups_.push_back({here(), target, false});
    code_.push_back(isa::encodeJ(Opcode::Jmp, 0));
}

void
AsmBuilder::call(Label function)
{
    fixups_.push_back({here(), function, false});
    code_.push_back(isa::encodeJ(Opcode::Call, 0));
}

void
AsmBuilder::ret()
{
    code_.push_back(isa::encodeJ(Opcode::Ret, 0));
}

std::vector<std::uint32_t>
AsmBuilder::seal()
{
    for (const Fixup &f : fixups_) {
        const std::int64_t pos = labelPos_.at(f.label);
        if (pos < 0)
            panic("unbound label %d referenced at %u", f.label, f.index);
        std::uint32_t &word = code_.at(f.index);
        if (f.relative) {
            const std::int64_t off =
                pos - (static_cast<std::int64_t>(f.index) + 1);
            if (off < isa::imm14Min || off > isa::imm14Max)
                panic("branch offset %lld out of range",
                      static_cast<long long>(off));
            word = (word & ~0x3fffu) |
                   (static_cast<std::uint32_t>(off) & 0x3fffu);
        } else {
            if (pos > isa::imm24Max)
                panic("jump target %lld out of range",
                      static_cast<long long>(pos));
            word = (word & ~0xffffffu) | static_cast<std::uint32_t>(pos);
        }
    }
    fixups_.clear();
    return code_;
}

} // namespace vca::wload
