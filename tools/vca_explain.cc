/**
 * @file
 * vca-explain: differential run explainer.
 *
 * Attributes the CPI gap between two runs to the hierarchical cycle
 * taxonomy (README, Observability) and localizes where the gap opens
 * along the committed-instruction axis. Runs come either from
 * vca-sim --stats-json documents or from config specs simulated
 * through the shared sweep cache:
 *
 *   vca-explain --run A.json --run B.json
 *   vca-explain --spec bench=crafty,arch=vca,regs=192 \
 *               --spec bench=crafty,arch=regwindow,regs=192
 *   vca-explain --run base.json --spec bench=crafty,arch=vca,regs=64
 *
 * Options:
 *   --markdown   render the report as a markdown document
 *   --selftest   planted-gap self test (CI); no other inputs needed
 *
 * Exit status: 0 report printed / selftest passed, 1 selftest or
 * simulation failure, 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/explain.hh"
#include "analysis/runner.hh"
#include "sim/logging.hh"

namespace {

using namespace vca;

void
usage(std::FILE *to)
{
    std::fprintf(to,
        "usage: vca-explain (--run FILE | --spec KEY=VAL[,...]) x2\n"
        "                   [--markdown]\n"
        "       vca-explain --selftest\n"
        "\n"
        "Attribute the CPI gap between two runs (A then B) to the\n"
        "cycle-taxonomy leaves and report where the gap opens.\n"
        "\n"
        "  --run FILE   a vca-sim --stats-json document\n"
        "  --spec ...   simulate a config through the sweep cache:\n"
        "               bench=NAME[+NAME2] arch=baseline|regwindow|\n"
        "               ideal|vca regs=N [insts=N] [warmup=N]\n"
        "  --markdown   emit a markdown report instead of plain text\n"
        "  --selftest   verify a planted gap is attributed correctly\n");
}

cpu::RenamerKind
parseArch(const std::string &name)
{
    if (name == "baseline")
        return cpu::RenamerKind::Baseline;
    if (name == "regwindow" || name == "conv")
        return cpu::RenamerKind::ConvWindow;
    if (name == "ideal")
        return cpu::RenamerKind::IdealWindow;
    if (name == "vca")
        return cpu::RenamerKind::Vca;
    fatal("vca-explain: unknown arch '%s' (expected baseline, "
               "regwindow, ideal or vca)", name.c_str());
}

/** Simulate one --spec through the shared on-disk sweep cache. */
analysis::ExplainInput
runSpec(const std::string &spec)
{
    std::string bench = "crafty";
    std::string arch = "vca";
    unsigned regs = 192;
    analysis::RunOptions opts;

    std::string rest = spec;
    while (!rest.empty()) {
        const size_t comma = rest.find(',');
        const std::string field = rest.substr(0, comma);
        rest = comma == std::string::npos ? ""
                                          : rest.substr(comma + 1);
        const size_t eq = field.find('=');
        if (eq == std::string::npos)
            fatal("vca-explain: bad --spec field '%s' "
                       "(expected key=value)", field.c_str());
        const std::string key = field.substr(0, eq);
        const std::string val = field.substr(eq + 1);
        if (key == "bench")
            bench = val;
        else if (key == "arch")
            arch = val;
        else if (key == "regs")
            regs = static_cast<unsigned>(std::stoul(val));
        else if (key == "insts")
            opts.measureInsts = std::stoull(val);
        else if (key == "warmup")
            opts.warmupInsts = std::stoull(val);
        else
            fatal("vca-explain: unknown --spec key '%s'",
                       key.c_str());
    }

    const cpu::RenamerKind kind = parseArch(arch);
    analysis::SweepPoint point =
        analysis::makePoint(bench, kind, regs, opts);
    // "bench=a+b" runs an SMT workload, one benchmark per thread.
    if (bench.find('+') != std::string::npos) {
        point.benches.clear();
        std::string b = bench;
        while (!b.empty()) {
            const size_t plus = b.find('+');
            point.benches.push_back(b.substr(0, plus));
            b = plus == std::string::npos ? "" : b.substr(plus + 1);
        }
        point.opts.numThreads =
            static_cast<unsigned>(point.benches.size());
    }

    const analysis::Measurement m =
        analysis::SweepRunner::global().runPoint(point);
    if (!m.ok)
        fatal("vca-explain: spec '%s' is inoperable: %s",
                   spec.c_str(), m.error.c_str());
    const std::string config =
        "bench=" + bench + " arch=" + arch +
        " regs=" + std::to_string(regs);
    return analysis::explainInputFromMeasurement(spec, config, m);
}

} // namespace

int
main(int argc, char **argv)
{
    bool markdown = false;
    bool selftest = false;
    // (kind, value) in order: kind 'r' = --run file, 's' = --spec.
    std::vector<std::pair<char, std::string>> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "vca-explain: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--run")
            inputs.emplace_back('r', value("--run"));
        else if (arg == "--spec")
            inputs.emplace_back('s', value("--spec"));
        else if (arg == "--markdown")
            markdown = true;
        else if (arg == "--selftest")
            selftest = true;
        else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "vca-explain: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (selftest) {
        if (!inputs.empty()) {
            std::fprintf(stderr, "vca-explain: --selftest takes no "
                                 "inputs\n");
            return 2;
        }
        return vca::analysis::explainSelftest();
    }
    if (inputs.size() != 2) {
        std::fprintf(stderr, "vca-explain: need exactly two inputs "
                             "(--run and/or --spec), got %zu\n",
                     inputs.size());
        usage(stderr);
        return 2;
    }

    try {
        std::vector<vca::analysis::ExplainInput> runs;
        for (const auto &[kind, value] : inputs)
            runs.push_back(kind == 'r'
                               ? vca::analysis::loadRunJson(value, "")
                               : runSpec(value));
        const vca::analysis::ExplainReport report =
            vca::analysis::explain(runs[0], runs[1]);
        std::fputs(vca::analysis::renderReport(report, markdown)
                       .c_str(),
                   stdout);
        return 0;
    } catch (const vca::FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
