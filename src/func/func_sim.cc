#include "func/func_sim.hh"

#include <bit>

#include "sim/logging.hh"

namespace vca::func {

using isa::Opcode;
using isa::RegClass;
namespace layout = isa::layout;

namespace {

double
asDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

std::uint64_t
asBits(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

/**
 * Canonicalize FP results: VRISC-64 defines every NaN result as the
 * canonical quiet NaN. (Hardware NaN payload propagation depends on
 * operand order, which compilers are free to commute, so two
 * separately compiled interpreters would otherwise disagree.)
 */
std::uint64_t
canonFp(double d)
{
    if (d != d)
        return 0x7ff8000000000000ULL;
    return std::bit_cast<std::uint64_t>(d);
}


/** Signed division with the usual simulator-safe edge cases. */
std::int64_t
safeDiv(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
        return a;
    return a / b;
}

} // namespace

void
loadProgramData(const isa::Program &prog, mem::SparseMemory &memory)
{
    for (const isa::DataSegment &seg : prog.data) {
        Addr addr = seg.base;
        for (std::uint64_t word : seg.words) {
            if (word != 0)
                memory.write(addr, word);
            addr += 8;
        }
    }
}

FuncSim::FuncSim(const isa::Program &prog, mem::SparseMemory &memory)
    : prog_(prog), mem_(memory)
{
    if (!prog.finalized())
        panic("FuncSim: program '%s' not finalized", prog.name.c_str());
    pc_ = prog.entry;
    windowed_ = prog.windowedAbi;
    wbp_ = layout::initialWindowPointer();
    loadProgramData(prog, memory);
}

std::uint64_t
FuncSim::readReg(RegClass cls, RegIndex idx) const
{
    if (cls == RegClass::Int && idx == isa::regZero)
        return 0;
    if (windowed_ && isa::isWindowed(cls, idx))
        return mem_.read(wbp_ + isa::windowSlot(cls, idx) * 8);
    return cls == RegClass::Int ? intRegs_[idx] : fpRegs_[idx];
}

void
FuncSim::writeReg(RegClass cls, RegIndex idx, std::uint64_t value)
{
    if (cls == RegClass::Int && idx == isa::regZero)
        return;
    if (windowed_ && isa::isWindowed(cls, idx)) {
        mem_.write(wbp_ + isa::windowSlot(cls, idx) * 8, value);
        return;
    }
    if (cls == RegClass::Int)
        intRegs_[idx] = value;
    else
        fpRegs_[idx] = value;
}

std::uint64_t
FuncSim::readIntReg(RegIndex idx) const
{
    return readReg(RegClass::Int, idx);
}

double
FuncSim::readFloatReg(RegIndex idx) const
{
    return asDouble(readReg(RegClass::Float, idx));
}

void
FuncSim::writeIntReg(RegIndex idx, std::uint64_t value)
{
    writeReg(RegClass::Int, idx, value);
}

bool
FuncSim::step(StepRecord &rec)
{
    rec = StepRecord{};
    if (halted_) {
        rec.halted = true;
        return false;
    }
    return execInst<true>(prog_.inst(pc_), &rec);
}

template <bool Record>
bool
FuncSim::execInst(const isa::StaticInst &si, StepRecord *rec)
{
    if constexpr (Record)
        rec->pc = pc_;
    Addr npc = pc_ + 1;

    const auto opnd = [&](unsigned i) -> std::uint64_t {
        if (i >= si.numSrcs || !si.srcValid[i])
            return 0;
        return readReg(si.src[i].cls, si.src[i].idx);
    };

    std::uint64_t result = 0;
    bool wrote = false;

    switch (si.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted_ = true;
        if constexpr (Record) {
            rec->halted = true;
            rec->npc = pc_;
        }
        return false;

      case Opcode::Add:  result = opnd(0) + opnd(1); wrote = true; break;
      case Opcode::Sub:  result = opnd(0) - opnd(1); wrote = true; break;
      case Opcode::Mul:
        result = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(opnd(0)) *
            static_cast<std::int64_t>(opnd(1)));
        wrote = true;
        break;
      case Opcode::Div:
        result = static_cast<std::uint64_t>(
            safeDiv(static_cast<std::int64_t>(opnd(0)),
                    static_cast<std::int64_t>(opnd(1))));
        wrote = true;
        break;
      case Opcode::And:  result = opnd(0) & opnd(1); wrote = true; break;
      case Opcode::Or:   result = opnd(0) | opnd(1); wrote = true; break;
      case Opcode::Xor:  result = opnd(0) ^ opnd(1); wrote = true; break;
      case Opcode::Sll:  result = opnd(0) << (opnd(1) & 63); wrote = true;
        break;
      case Opcode::Srl:  result = opnd(0) >> (opnd(1) & 63); wrote = true;
        break;
      case Opcode::Sra:
        result = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(opnd(0)) >> (opnd(1) & 63));
        wrote = true;
        break;
      case Opcode::Slt:
        result = static_cast<std::int64_t>(opnd(0)) <
                 static_cast<std::int64_t>(opnd(1));
        wrote = true;
        break;
      case Opcode::Sltu: result = opnd(0) < opnd(1); wrote = true; break;

      case Opcode::Addi: result = opnd(0) + si.imm; wrote = true; break;
      case Opcode::Andi: result = opnd(0) & si.imm; wrote = true; break;
      case Opcode::Ori:  result = opnd(0) | si.imm; wrote = true; break;
      case Opcode::Xori: result = opnd(0) ^ si.imm; wrote = true; break;
      case Opcode::Slli: result = opnd(0) << (si.imm & 63); wrote = true;
        break;
      case Opcode::Srli: result = opnd(0) >> (si.imm & 63); wrote = true;
        break;
      case Opcode::Srai:
        result = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(opnd(0)) >> (si.imm & 63));
        wrote = true;
        break;
      case Opcode::Slti:
        result = static_cast<std::int64_t>(opnd(0)) < si.imm;
        wrote = true;
        break;
      case Opcode::Lui:
        result = static_cast<std::uint64_t>(si.imm);
        wrote = true;
        break;

      case Opcode::Ld: case Opcode::Fld: {
        const Addr ea = (opnd(0) + si.imm) & ~Addr(7);
        result = mem_.read(ea);
        wrote = true;
        if constexpr (Record) {
            rec->isMem = true;
            rec->effAddr = ea;
        }
        ++stats_.loads;
        break;
      }
      case Opcode::St: case Opcode::Fst: {
        const std::uint64_t base = opnd(0);
        const std::uint64_t data = opnd(1);
        const Addr ea = (base + si.imm) & ~Addr(7);
        mem_.write(ea, data);
        if constexpr (Record) {
            rec->isMem = true;
            rec->effAddr = ea;
        }
        ++stats_.stores;
        break;
      }

      case Opcode::Fadd:
        result = canonFp(asDouble(opnd(0)) + asDouble(opnd(1)));
        wrote = true;
        break;
      case Opcode::Fsub:
        result = canonFp(asDouble(opnd(0)) - asDouble(opnd(1)));
        wrote = true;
        break;
      case Opcode::Fmul:
        result = canonFp(asDouble(opnd(0)) * asDouble(opnd(1)));
        wrote = true;
        break;
      case Opcode::Fdiv: {
        const double b = asDouble(opnd(1));
        result = canonFp(b == 0.0 ? 0.0 : asDouble(opnd(0)) / b);
        wrote = true;
        break;
      }
      case Opcode::Fneg:
        result = canonFp(-asDouble(opnd(0)));
        wrote = true;
        break;
      case Opcode::Fmov:
        result = opnd(0);
        wrote = true;
        break;
      case Opcode::Fcvtif:
        result = asBits(static_cast<double>(
            static_cast<std::int64_t>(opnd(0))));
        wrote = true;
        break;
      case Opcode::Fcvtfi: {
        const double d = asDouble(opnd(0));
        // Saturating, NaN-safe conversion.
        std::int64_t v = 0;
        if (d == d) {
            if (d >= 9.2233720368547758e18)
                v = std::numeric_limits<std::int64_t>::max();
            else if (d <= -9.2233720368547758e18)
                v = std::numeric_limits<std::int64_t>::min();
            else
                v = static_cast<std::int64_t>(d);
        }
        result = static_cast<std::uint64_t>(v);
        wrote = true;
        break;
      }
      case Opcode::Feq:
        result = asDouble(opnd(0)) == asDouble(opnd(1));
        wrote = true;
        break;
      case Opcode::Flt:
        result = asDouble(opnd(0)) < asDouble(opnd(1));
        wrote = true;
        break;

      case Opcode::Beq: case Opcode::Bne:
      case Opcode::Blt: case Opcode::Bge: {
        const auto a = static_cast<std::int64_t>(opnd(0));
        const auto b = static_cast<std::int64_t>(opnd(1));
        bool taken = false;
        switch (si.op) {
          case Opcode::Beq: taken = a == b; break;
          case Opcode::Bne: taken = a != b; break;
          case Opcode::Blt: taken = a < b; break;
          default:          taken = a >= b; break;
        }
        ++stats_.condBranches;
        if (taken) {
            ++stats_.takenCondBranches;
            npc = pc_ + 1 + si.imm;
        }
        break;
      }

      case Opcode::Jmp:
        npc = static_cast<Addr>(si.imm);
        break;

      case Opcode::Call: {
        ++stats_.calls;
        ++depth_;
        stats_.maxCallDepth = std::max(stats_.maxCallDepth, depth_);
        if (windowed_)
            wbp_ -= layout::windowFrameBytes;
        // ra is written in the callee's context.
        writeReg(RegClass::Int, isa::regRa, pc_ + 1);
        npc = static_cast<Addr>(si.imm);
        break;
      }
      case Opcode::Ret: {
        // ra is read in the callee's (current) context.
        npc = static_cast<Addr>(readReg(RegClass::Int, isa::regRa));
        if (windowed_)
            wbp_ += layout::windowFrameBytes;
        if (depth_ > 0)
            --depth_;
        break;
      }

      default:
        panic("FuncSim: unhandled opcode");
    }

    if (wrote && si.hasDest) {
        writeReg(si.dest.cls, si.dest.idx, result);
        if constexpr (Record) {
            rec->hasDest = true;
            rec->dest = si.dest;
            rec->destValue = result;
        }
    }

    pc_ = npc;
    if constexpr (Record)
        rec->npc = npc;
    ++stats_.insts;
    return true;
}

FuncSimStats
FuncSim::run(InstCount maxInsts)
{
    StepRecord rec;
    const InstCount start = stats_.insts;
    while (!halted_ && stats_.insts - start < maxInsts)
        step(rec);
    return stats_;
}

FuncSimStats
FuncSim::runFast(InstCount maxInsts)
{
    if (!bbCache_)
        bbCache_ = std::make_unique<isa::BbCache>(prog_);
    const InstCount start = stats_.insts;
    while (!halted_) {
        const InstCount done = stats_.insts - start;
        if (done >= maxInsts)
            break;
        const isa::BasicBlock &bb = bbCache_->blockAt(pc_);
        // Only the final instruction of a block can redirect, so the
        // body is a straight pointer walk over the decoded image. A
        // truncated walk leaves pc_ mid-block; the next lookup simply
        // discovers the sub-block starting there.
        std::uint32_t n = bb.length;
        const InstCount remaining = maxInsts - done;
        if (n > remaining)
            n = static_cast<std::uint32_t>(remaining);
        const isa::StaticInst *ip = &prog_.inst(bb.startPc);
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!execInst<false>(ip[i], nullptr))
                return stats_;
        }
    }
    return stats_;
}

ArchState
FuncSim::captureState() const
{
    ArchState s;
    s.pc = pc_;
    s.windowedAbi = windowed_;
    s.callDepth = depth_;
    s.windowBase = wbp_;
    for (unsigned i = 0; i < isa::numIntRegs; ++i)
        s.intRegs[i] = readReg(RegClass::Int, static_cast<RegIndex>(i));
    for (unsigned i = 0; i < isa::numFloatRegs; ++i)
        s.fpRegs[i] = readReg(RegClass::Float, static_cast<RegIndex>(i));
    return s;
}

void
FuncSim::refreshFrameCache()
{
}

} // namespace vca::func
