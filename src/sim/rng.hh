/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic element of the simulator (workload generation, tie
 * breaking) draws from an explicitly seeded Rng so that runs are exactly
 * reproducible across platforms; std::mt19937 distributions are not
 * guaranteed identical across standard libraries, so we implement our own
 * generator and derived draws.
 */

#ifndef VCA_SIM_RNG_HH
#define VCA_SIM_RNG_HH

#include <cstdint>

#include "sim/logging.hh"

namespace vca {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 expansion of the seed into 4 state words.
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            panic("Rng::below called with bound 0");
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        if (hi < lo)
            panic("Rng::range called with hi < lo");
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish draw: number of successes before failure, capped.
     * Used for call-depth and run-length distributions.
     */
    unsigned
    geometric(double p_continue, unsigned cap)
    {
        unsigned n = 0;
        while (n < cap && chance(p_continue))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace vca

#endif // VCA_SIM_RNG_HH
