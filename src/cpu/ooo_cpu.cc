#include "cpu/ooo_cpu.hh"

#include <algorithm>
#include <bit>

#include "core/vca_renamer.hh"
#include "cpu/conv_renamer.hh"
#include "func/func_sim.hh"
#include "isa/inst.hh"
#include "sim/logging.hh"
#include "trace/debug_flags.hh"

namespace vca::cpu {

using isa::Opcode;
using isa::RegClass;
namespace layout = isa::layout;

const char *
renamerKindName(RenamerKind kind)
{
    switch (kind) {
      case RenamerKind::Baseline:    return "baseline";
      case RenamerKind::ConvWindow:  return "register window";
      case RenamerKind::IdealWindow: return "ideal";
      case RenamerKind::Vca:         return "vca";
    }
    return "?";
}

TaxonomyBuckets::TaxonomyBuckets(const std::string &name,
                                 stats::StatGroup *parent)
    : stats::StatGroup(name, parent),
      frontendBound("frontend_bound", this),
      badSpeculation("bad_speculation", this),
      backendCore("backend_core", this),
      backendMemory("backend_memory", this),
      retiring(this, "retiring",
               "cycles that retired at least one instruction"),
      idle(this, "idle",
           "cycles after the thread halted (per-thread trees only)"),
      icache(&frontendBound, "icache",
             "frontend-bound cycles: fetch waiting on an icache miss"),
      fetch(&frontendBound, "fetch",
            "frontend-bound cycles: fetch/decode pipeline filling"),
      recovery(&badSpeculation, "recovery",
               "cycles rename is blocked by the mispredict-recovery "
               "commit-table walk"),
      exec(&backendCore, "exec",
           "backend-core cycles: oldest instruction waiting on "
           "functional-unit latency or operands"),
      renameFreeList(&backendCore, "rename_freelist",
                     "backend-core cycles: renamer refused (free "
                     "list / table conflicts / ports)"),
      dcache(&backendMemory, "dcache",
             "backend-memory cycles: oldest instruction is an "
             "unfinished load/store"),
      storeDrain(&backendMemory, "store_drain",
                 "backend-memory cycles: completed store stuck "
                 "behind a full store buffer"),
      fillLatency(&backendMemory, "fill_latency",
                  "backend-memory cycles: oldest instruction waiting "
                  "on an in-flight register fill"),
      spillStall(&backendMemory, "spill_stall",
                 "backend-memory cycles: renamer refused on "
                 "spill/fill (ASTQ) backpressure"),
      windowTrap(&backendMemory, "window_trap",
                 "backend-memory cycles: rename blocked by a window "
                 "overflow/underflow trap or its transfer drain")
{
    leaves_[static_cast<unsigned>(Leaf::Retiring)] = &retiring;
    leaves_[static_cast<unsigned>(Leaf::Idle)] = &idle;
    leaves_[static_cast<unsigned>(Leaf::Icache)] = &icache;
    leaves_[static_cast<unsigned>(Leaf::Fetch)] = &fetch;
    leaves_[static_cast<unsigned>(Leaf::Recovery)] = &recovery;
    leaves_[static_cast<unsigned>(Leaf::Exec)] = &exec;
    leaves_[static_cast<unsigned>(Leaf::RenameFreeList)] =
        &renameFreeList;
    leaves_[static_cast<unsigned>(Leaf::Dcache)] = &dcache;
    leaves_[static_cast<unsigned>(Leaf::StoreDrain)] = &storeDrain;
    leaves_[static_cast<unsigned>(Leaf::FillLatency)] = &fillLatency;
    leaves_[static_cast<unsigned>(Leaf::SpillStall)] = &spillStall;
    leaves_[static_cast<unsigned>(Leaf::WindowTrap)] = &windowTrap;
}

const char *
TaxonomyBuckets::leafName(Leaf leaf)
{
    switch (leaf) {
      case Leaf::Retiring:       return "retiring";
      case Leaf::Idle:           return "idle";
      case Leaf::Icache:         return "frontend_bound.icache";
      case Leaf::Fetch:          return "frontend_bound.fetch";
      case Leaf::Recovery:       return "bad_speculation.recovery";
      case Leaf::Exec:           return "backend_core.exec";
      case Leaf::RenameFreeList:
        return "backend_core.rename_freelist";
      case Leaf::Dcache:         return "backend_memory.dcache";
      case Leaf::StoreDrain:     return "backend_memory.store_drain";
      case Leaf::FillLatency:    return "backend_memory.fill_latency";
      case Leaf::SpillStall:     return "backend_memory.spill_stall";
      case Leaf::WindowTrap:     return "backend_memory.window_trap";
      case Leaf::NumLeaves:      break;
    }
    return "?";
}

double
TaxonomyBuckets::leafSum() const
{
    double sum = 0;
    for (const stats::Scalar *leaf : leaves_)
        sum += leaf->value();
    return sum;
}

CycleTaxonomy::CycleTaxonomy(unsigned numThreads,
                             stats::StatGroup *parent)
    : TaxonomyBuckets("taxonomy", parent)
{
    for (unsigned t = 0; t < numThreads; ++t) {
        perThread_.push_back(std::make_unique<TaxonomyBuckets>(
            "thread" + std::to_string(t), this));
    }
}

CycleAccounting::CycleAccounting(stats::StatGroup *parent,
                                 unsigned numThreads)
    : stats::StatGroup("cycle_accounting", parent),
      commitActive(this, "commit_active",
                   "cycles that retired at least one instruction"),
      memStall(this, "mem_stall",
               "stall cycles: oldest instruction is an unfinished "
               "load/store"),
      execStall(this, "exec_stall",
                "stall cycles: oldest instruction unfinished, "
                "non-memory"),
      renameFreeList(this, "rename_freelist",
                     "stall cycles: ROB empty, renamer refused "
                     "(free list / table conflicts / ports)"),
      windowShift(this, "window_shift",
                  "stall cycles: ROB empty, rename blocked by a "
                  "window trap or mispredict recovery walk"),
      frontendStall(this, "frontend",
                    "stall cycles: ROB empty, front end still "
                    "fetching/decoding"),
      taxonomy(numThreads, this)
{
}

OooCpu::OooCpu(const CpuParams &params,
               std::vector<const isa::Program *> programs,
               stats::StatGroup *parent)
    : stats::StatGroup("cpu", parent),
      numCycles(this, "cycles", "simulated cycles"),
      committedTotal(this, "committed_insts", "committed instructions"),
      committedLoads(this, "committed_loads", "committed loads"),
      committedStores(this, "committed_stores", "committed stores"),
      fetchedInsts(this, "fetched_insts", "fetched instructions"),
      squashedInsts(this, "squashed_insts", "squashed instructions"),
      branchesCommitted(this, "branches", "committed cond. branches"),
      mispredicts(this, "mispredicts", "mispredicted control insts"),
      loadForwards(this, "load_forwards", "loads forwarded from SQ"),
      fetchIcacheStalls(this, "fetch_icache_stalls",
                        "fetch cycles lost to icache misses"),
      renameStallCycles(this, "rename_stall_cycles",
                        "cycles rename made no progress"),
      robFullStalls(this, "rob_full_stalls", "rename stalls: ROB full"),
      iqFullStalls(this, "iq_full_stalls", "rename stalls: IQ full"),
      lsqFullStalls(this, "lsq_full_stalls", "rename stalls: LSQ full"),
      robOccupancyDist(this, "rob_occupancy",
                       "ROB occupancy sampled per cycle", 0,
                       params.robSize + 1, 16),
      iqOccupancyDist(this, "iq_occupancy",
                      "IQ occupancy sampled per cycle", 0,
                      params.iqSize + 1, 16),
      committedTotalAlias(this, "committedTotal",
                          "alias of committed_insts for tooling",
                          [this] { return committedTotal.value(); }),
      cycleAccounting(this, params.numThreads),
      params_(params),
      rng_(params.rngSeed),
      memSys_(params.memParams, this),
      bpred_(params.bpredParams, params.numThreads, this),
      regs_(params.physRegs)
{
    if (programs.size() != params_.numThreads)
        fatal("cpu: %zu programs for %u threads", programs.size(),
              params_.numThreads);

    threads_.resize(params_.numThreads);
    std::vector<mem::SparseMemory *> memories;
    for (unsigned t = 0; t < params_.numThreads; ++t) {
        ThreadState &ts = threads_[t];
        ts.program = programs[t];
        if (!ts.program->finalized())
            fatal("cpu: program '%s' not finalized",
                  ts.program->name.c_str());
        ts.memory = std::make_unique<mem::SparseMemory>();
        func::loadProgramData(*ts.program, *ts.memory);
        ts.fetchPc = ts.program->entry;
        memories.push_back(ts.memory.get());
    }

    switch (params_.renamer) {
      case RenamerKind::Baseline:
        renamer_ = std::make_unique<ConvRenamer>(params_, regs_,
                                                 isa::numArchRegs, this);
        break;
      case RenamerKind::ConvWindow:
        renamer_ = std::make_unique<WindowConvRenamer>(params_, regs_,
                                                       memories, this);
        break;
      case RenamerKind::IdealWindow:
        renamer_ = std::make_unique<core::VcaRenamer>(params_, regs_,
                                                      memories, true,
                                                      this);
        break;
      case RenamerKind::Vca:
        renamer_ = std::make_unique<core::VcaRenamer>(params_, regs_,
                                                      memories, false,
                                                      this);
        break;
    }

    for (unsigned t = 0; t < params_.numThreads; ++t) {
        renamer_->setThreadContext(static_cast<ThreadId>(t),
                                   threads_[t].program->windowedAbi);
    }

    frontendDelay_ = params_.decodeDelay + renamer_->extraFrontendCycles();
    waiters_.resize(params_.physRegs);

    // Pipeline queues: bounds come straight from the parameters the
    // pipeline already enforces before every push.
    for (ThreadState &ts : threads_) {
        ts.fetchQueue.reset(params_.width * (frontendDelay_ + 3));
        ts.rob.reset(params_.robSize);
        ts.lq.reset(params_.lqSize);
        ts.sq.reset(params_.sqSize);
    }
    storeBuffer_.reset(params_.storeBufferSize);

    // Calendar horizon: the deepest completion any single event can
    // schedule is a full miss chain (L1 + L2 + memory) plus the
    // longest FU latency and the +1 issue offset; pad for slack. The
    // overflow bucket keeps longer latencies correct regardless.
    const Cycle horizon = params_.memParams.dl1.hitLatency +
                          params_.memParams.l2.hitLatency +
                          params_.memParams.memLatency + 64;
    events_.reset(horizon);
    transferEvents_.reset(horizon);

    if (params_.statSampleInterval == 0)
        params_.statSampleInterval = 1;
    statSampleCountdown_ = params_.statSampleInterval;

    commitSnapshot_.resize(params_.numThreads, 0);
}

OooCpu::~OooCpu() = default;

mem::SparseMemory &
OooCpu::threadMemory(ThreadId tid)
{
    return *threads_.at(tid).memory;
}

void
OooCpu::switchIn(ThreadId tid, const func::ArchState &state,
                 const mem::SparseMemory &funcMem)
{
    if (now_ != 0 || committedTotal.value() != 0)
        panic("switchIn is only legal before the first simulated cycle");
    ThreadState &ts = threads_.at(tid);
    if (state.windowedAbi != ts.program->windowedAbi)
        panic("switchIn ABI mismatch for thread %u", unsigned(tid));

    // Whole-page copy, zero words included: the functional run may
    // have overwritten an initialized word with zero, so a
    // value-filtered copy would leave stale state behind.
    ts.memory->clear();
    funcMem.forEachPage([&](Addr base, const std::uint64_t *words) {
        const Addr dst = renamer_->relocateRegSpace(tid, base);
        for (unsigned i = 0; i < mem::SparseMemory::wordsPerPage; ++i)
            ts.memory->write(dst + Addr(i) * 8, words[i]);
    });

    ts.fetchPc = state.pc;
    renamer_->switchIn(tid, state);

    // Drain/transfer invariant: every architectural register the
    // detailed core would now read must match the functional golden
    // model, whatever structure the renamer keeps it in.
    for (unsigned f = 0; f < isa::numArchRegs; ++f) {
        const isa::ArchReg r = isa::fromFlatIndex(f);
        const std::uint64_t want = r.cls == isa::RegClass::Int
            ? state.intRegs[r.idx] : state.fpRegs[r.idx];
        const std::uint64_t got =
            renamer_->readArchReg(tid, r.cls, r.idx);
        if (got != want) {
            panic("switch-in invariant violated: tid %u %c%u is %llx, "
                  "functional model has %llx", unsigned(tid),
                  r.cls == isa::RegClass::Int ? 'r' : 'f',
                  unsigned(r.idx), (unsigned long long)got,
                  (unsigned long long)want);
        }
    }
}

unsigned
OooCpu::robOccupancy() const
{
    return robCount_;
}

unsigned
OooCpu::inflightCount(ThreadId tid) const
{
    const ThreadState &t = threads_.at(tid);
    return t.fetchQueue.size() + t.rob.size();
}

unsigned
OooCpu::fuLimit(isa::FuClass fu) const
{
    switch (fu) {
      case isa::FuClass::IntAlu:   return params_.fuIntAlu;
      case isa::FuClass::IntMul:   return params_.fuIntMul;
      case isa::FuClass::IntDiv:   return params_.fuIntDiv;
      case isa::FuClass::FpAlu:    return params_.fuFpAlu;
      case isa::FuClass::FpMul:    return params_.fuFpMul;
      case isa::FuClass::FpDiv:    return params_.fuFpDiv;
      case isa::FuClass::MemRead:  return params_.dcachePorts;
      case isa::FuClass::MemWrite: return params_.dcachePorts;
      case isa::FuClass::None:     return params_.issueWidth;
    }
    return 1;
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

std::uint64_t
OooCpu::readOperand(const DynInst *inst, unsigned s) const
{
    const isa::StaticInst &si = *inst->si;
    if (s >= si.numSrcs || !si.srcValid[s])
        return 0;
    return regs_.read(inst->srcPhys[s]);
}

namespace {

std::int64_t
safeDiv(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
        return a;
    return a / b;
}

double
asD(std::uint64_t b)
{
    return std::bit_cast<double>(b);
}

std::uint64_t
asB(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

/**
 * Canonicalize FP results: VRISC-64 defines every NaN result as the
 * canonical quiet NaN. (Hardware NaN payload propagation depends on
 * operand order, which compilers are free to commute, so two
 * separately compiled interpreters would otherwise disagree.)
 */
std::uint64_t
canonFp(double d)
{
    if (d != d)
        return 0x7ff8000000000000ULL;
    return std::bit_cast<std::uint64_t>(d);
}


} // namespace

void
OooCpu::executeInst(DynInst *inst)
{
    const isa::StaticInst &si = *inst->si;
    const std::uint64_t a = readOperand(inst, 0);
    const std::uint64_t b = readOperand(inst, 1);
    std::uint64_t r = 0;

    switch (si.op) {
      case Opcode::Add:  r = a + b; break;
      case Opcode::Sub:  r = a - b; break;
      case Opcode::Mul:
        r = static_cast<std::uint64_t>(static_cast<std::int64_t>(a) *
                                       static_cast<std::int64_t>(b));
        break;
      case Opcode::Div:
        r = static_cast<std::uint64_t>(
            safeDiv(static_cast<std::int64_t>(a),
                    static_cast<std::int64_t>(b)));
        break;
      case Opcode::And:  r = a & b; break;
      case Opcode::Or:   r = a | b; break;
      case Opcode::Xor:  r = a ^ b; break;
      case Opcode::Sll:  r = a << (b & 63); break;
      case Opcode::Srl:  r = a >> (b & 63); break;
      case Opcode::Sra:
        r = static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >>
                                       (b & 63));
        break;
      case Opcode::Slt:
        r = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        break;
      case Opcode::Sltu: r = a < b; break;

      case Opcode::Addi: r = a + si.imm; break;
      case Opcode::Andi: r = a & si.imm; break;
      case Opcode::Ori:  r = a | si.imm; break;
      case Opcode::Xori: r = a ^ si.imm; break;
      case Opcode::Slli: r = a << (si.imm & 63); break;
      case Opcode::Srli: r = a >> (si.imm & 63); break;
      case Opcode::Srai:
        r = static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >>
                                       (si.imm & 63));
        break;
      case Opcode::Slti:
        r = static_cast<std::int64_t>(a) < si.imm;
        break;
      case Opcode::Lui:
        r = static_cast<std::uint64_t>(si.imm);
        break;

      case Opcode::Ld: case Opcode::Fld:
        inst->effAddr = (a + si.imm) & ~Addr(7);
        inst->effAddrValid = true;
        break;
      case Opcode::St: case Opcode::Fst:
        inst->effAddr = (a + si.imm) & ~Addr(7);
        inst->effAddrValid = true;
        inst->storeData = b;
        break;

      case Opcode::Fadd: r = canonFp(asD(a) + asD(b)); break;
      case Opcode::Fsub: r = canonFp(asD(a) - asD(b)); break;
      case Opcode::Fmul: r = canonFp(asD(a) * asD(b)); break;
      case Opcode::Fdiv:
        r = canonFp(asD(b) == 0.0 ? 0.0 : asD(a) / asD(b));
        break;
      case Opcode::Fneg: r = canonFp(-asD(a)); break;
      case Opcode::Fmov: r = a; break;
      case Opcode::Fcvtif:
        r = asB(static_cast<double>(static_cast<std::int64_t>(a)));
        break;
      case Opcode::Fcvtfi: {
        const double d = asD(a);
        std::int64_t v = 0;
        if (d == d) {
            if (d >= 9.2233720368547758e18)
                v = std::numeric_limits<std::int64_t>::max();
            else if (d <= -9.2233720368547758e18)
                v = std::numeric_limits<std::int64_t>::min();
            else
                v = static_cast<std::int64_t>(d);
        }
        r = static_cast<std::uint64_t>(v);
        break;
      }
      case Opcode::Feq: r = asD(a) == asD(b); break;
      case Opcode::Flt: r = asD(a) < asD(b); break;

      case Opcode::Beq: case Opcode::Bne:
      case Opcode::Blt: case Opcode::Bge: {
        const auto sa = static_cast<std::int64_t>(a);
        const auto sb = static_cast<std::int64_t>(b);
        bool taken = false;
        switch (si.op) {
          case Opcode::Beq: taken = sa == sb; break;
          case Opcode::Bne: taken = sa != sb; break;
          case Opcode::Blt: taken = sa < sb; break;
          default:          taken = sa >= sb; break;
        }
        inst->actualTaken = taken;
        inst->actualNpc = taken ? inst->pc + 1 + si.imm : inst->pc + 1;
        break;
      }
      case Opcode::Call:
        r = inst->pc + 1; // ra
        inst->actualNpc = static_cast<Addr>(si.imm);
        break;
      case Opcode::Ret:
        inst->actualNpc = static_cast<Addr>(a);
        break;

      case Opcode::Jmp:
        inst->actualNpc = static_cast<Addr>(si.imm);
        break;
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      default:
        panic("executeInst: unhandled opcode");
    }
    inst->result = r;
}

void
OooCpu::scheduleCompletion(DynInst *inst, Cycle when)
{
    events_.schedule(when, {inst, inst->seq});
}

void
OooCpu::wakeup(PhysRegIndex reg)
{
    auto &list = waiters_[reg];
    for (auto &[inst, seq] : list) {
        if (inst->seq != seq || inst->squashed)
            continue;
        if (inst->iqSlot <= 0)
            panic("wakeup of instruction not waiting in IQ");
        --inst->iqSlot;
        if (inst->iqSlot == 0)
            readyList_.emplace_back(inst, inst->seq);
    }
    list.clear();
}

void
OooCpu::completeInst(DynInst *inst)
{
    if (inst->completed)
        return;
    inst->completed = true;
    inst->completeTick = now_;
    if (inst->si->hasDest) {
        regs_.write(inst->destPhys, inst->result);
        regs_.setReady(inst->destPhys, true);
        wakeup(inst->destPhys);
    }
    if (inst->isControl())
        resolveControl(inst);
}

void
OooCpu::resolveControl(DynInst *inst)
{
    if (inst->actualNpc == inst->predNpc)
        return;

    ++mispredicts;
    inst->mispredicted = true;
    const ThreadId tid = inst->tid;
    DPRINTFT(Squash, tid,
             "mispredict seq=%llu pc=%llu predNpc=%llu actualNpc=%llu",
             (unsigned long long)inst->seq,
             (unsigned long long)inst->pc,
             (unsigned long long)inst->predNpc,
             (unsigned long long)inst->actualNpc);

    // How far the branch sits from the ROB head determines the
    // commit-table walk length of the VCA recovery scheme.
    unsigned before = 0;
    for (const DynInst *d : threads_[tid].rob) {
        if (d->seq >= inst->seq)
            break;
        ++before;
    }

    squashThread(tid, inst->seq);

    // Repair speculative predictor state past the squash.
    if (inst->si->isBranch && inst->hasBpCkpt) {
        bpred_.repairHistory(tid, inst->bpCkpt, inst->actualTaken);
        ++bpred_.condMispredicts;
    } else if (inst->si->isRet && inst->hasBpCkpt) {
        bpred_.restore(tid, inst->bpCkpt);
        bpred::BPredCheckpoint scratch;
        bpred_.popRas(tid, scratch);
        ++bpred_.rasMispredicts;
    }

    ThreadState &ts = threads_[tid];
    ts.fetchPc = inst->actualNpc;
    ts.fetchReadyAt = std::max(ts.fetchReadyAt, now_ + 1);
    ts.fetchHalted = false;
    const unsigned recovery = renamer_->recoveryCycles(before);
    ts.renameBlockedUntil =
        std::max(ts.renameBlockedUntil, now_ + recovery);
    if (ts.renameBlockedUntil > now_)
        ts.renameBlockReason = RenameBlock::Recovery;
}

void
OooCpu::squashThread(ThreadId tid, std::uint64_t afterSeq)
{
    ThreadState &ts = threads_[tid];
    DPRINTFT(Squash, tid,
             "squash after seq=%llu (%zu frontend, %zu rob entries "
             "inspected)",
             (unsigned long long)afterSeq, ts.fetchQueue.size(),
             ts.rob.size());

    // Front-end entries are all younger than anything in the ROB:
    // undo their predictor effects youngest-first, then drop them.
    for (size_t i = ts.fetchQueue.size(); i-- > 0;) {
        DynInst *inst = ts.fetchQueue[i].inst;
        if (inst->hasBpCkpt)
            bpred_.restore(tid, inst->bpCkpt);
        inst->squashed = true;
        ++squashedInsts;
        releaseInst(inst);
    }
    ts.fetchQueue.clear();
    ts.fetchHalted = false;

    while (!ts.rob.empty() && ts.rob.back()->seq > afterSeq) {
        DynInst *inst = ts.rob.back();
        ts.rob.pop_back();
        --robCount_;
        if (inst->hasBpCkpt)
            bpred_.restore(tid, inst->bpCkpt);
        renamer_->squashInst(*inst);
        if (inst->iqSlot >= 0)
            --iqCount_;
        inst->squashed = true;
        ++squashedInsts;
        releaseInst(inst);
    }
    while (!ts.lq.empty() && ts.lq.back()->seq > afterSeq)
        ts.lq.pop_back();
    while (!ts.sq.empty() && ts.sq.back()->seq > afterSeq)
        ts.sq.pop_back();
}

void
OooCpu::releaseInst(DynInst *inst)
{
    pool_.release(inst);
}

// ---------------------------------------------------------------------
// Pipeline stages
// ---------------------------------------------------------------------

void
OooCpu::processCompletions()
{
    // Normal completions scheduled for this cycle, oldest first so a
    // mispredicting older branch squashes younger same-cycle events.
    completionScratch_.clear();
    events_.popAt(now_, completionScratch_);
    if (!completionScratch_.empty()) {
        const auto bySeq = [](const auto &x, const auto &y) {
            return x.second < y.second;
        };
        // Events usually pop already seq-ordered (issue order follows
        // seq order within a cycle); skip the sort when they do.
        if (!std::is_sorted(completionScratch_.begin(),
                            completionScratch_.end(), bySeq)) {
            std::sort(completionScratch_.begin(),
                      completionScratch_.end(), bySeq);
        }
        for (auto &[inst, seq] : completionScratch_) {
            if (inst->seq != seq || inst->squashed)
                continue;
            completeInst(inst);
        }
    }

    transferScratch_.clear();
    transferEvents_.popAt(now_, transferScratch_);
    for (const TransferOp &op : transferScratch_) {
        renamer_->transferDone(op);
        if (!op.isStore && op.reg != invalidPhysReg)
            wakeup(op.reg);
    }
}

void
OooCpu::commitStage()
{
    unsigned budget = params_.commitWidth;
    const unsigned nThreads = params_.numThreads;
    for (unsigned i = 0; i < nThreads && budget > 0; ++i) {
        const unsigned t = (commitRR_ + i) % nThreads;
        ThreadState &ts = threads_[t];
        while (budget > 0 && !ts.rob.empty()) {
            DynInst *inst = ts.rob.front();
            if (!inst->completed)
                break;

            if (inst->isStore()) {
                if (storeBuffer_.size() >= params_.storeBufferSize)
                    break;
                ts.memory->write(inst->effAddr, inst->storeData);
                storeBuffer_.push_back(
                    {inst->effAddr, static_cast<ThreadId>(t)});
                if (!ts.sq.empty() && ts.sq.front() == inst)
                    ts.sq.pop_front();
                ++committedStores;
            }
            if (inst->isLoad()) {
                if (!ts.lq.empty() && ts.lq.front() == inst)
                    ts.lq.pop_front();
                ++committedLoads;
            }

            const CommitAction action = renamer_->commitInst(*inst);

            if (inst->si->isBranch) {
                ++branchesCommitted;
                bpred_.update(static_cast<ThreadId>(t), inst->pc,
                              inst->actualTaken, inst->bpCkpt.history);
            }

            if (DTRACE(Commit)) {
                DPRINTFT(Commit, t, "commit seq=%llu pc=%llu %s%s",
                         (unsigned long long)inst->seq,
                         (unsigned long long)inst->pc,
                         isa::disassemble(*inst->si).c_str(),
                         inst->mispredicted ? " [mispredicted]" : "");
            }

            if (!commitListeners_.empty()) {
                for (const auto &listener : commitListeners_)
                    listener(*inst);
            }

            ts.rob.pop_front();
            --robCount_;
            ++ts.committed;
            ++committedTotal;
            --budget;

            const bool halted = inst->si->isHalt;
            const bool wasCall = inst->si->isCall;
            const std::uint64_t seq = inst->seq;
            // Trapping instructions are calls/returns: execution must
            // resume at their actual control-flow target.
            const Addr resumePc = inst->isControl() ? inst->actualNpc
                                                    : inst->pc + 1;
            releaseInst(inst);

            if (halted) {
                ts.done = true;
                squashThread(static_cast<ThreadId>(t), seq);
                break;
            }

            if (action.windowTrap) {
                emitSimEvent(wasCall ? SimEvent::Kind::WindowOverflow
                                     : SimEvent::Kind::WindowUnderflow,
                             static_cast<ThreadId>(t), 0);
                // Flush everything younger, run the handler, restart
                // fetch after the trapping call/return.
                squashThread(static_cast<ThreadId>(t), seq);
                renamer_->performTrap(static_cast<ThreadId>(t));
                ts.renameBlockedUntil = std::max(
                    ts.renameBlockedUntil, now_ + action.stallCycles);
                if (ts.renameBlockedUntil > now_)
                    ts.renameBlockReason = RenameBlock::Trap;
                ts.fetchPc = resumePc;
                ts.fetchReadyAt = std::max(ts.fetchReadyAt, now_ + 1);
                break;
            }
        }
    }
    commitRR_ = (commitRR_ + 1) % nThreads;
}

void
OooCpu::issueStage()
{
    unsigned issueBudget = params_.issueWidth;
    unsigned memPorts = params_.dcachePorts;
    unsigned fuUsed[9] = {};

    if (!readyList_.empty()) {
        // The leftovers from last cycle (prefix of readySortedLen_
        // entries) are already seq-sorted; only wakeups appended since
        // need sorting, then a merge if the two runs interleave. The
        // result is the same unique seq order a full sort produces.
        const auto bySeq = [](const auto &x, const auto &y) {
            return x.second < y.second;
        };
        if (readySortedLen_ < readyList_.size()) {
            const auto mid = readyList_.begin() +
                             static_cast<std::ptrdiff_t>(readySortedLen_);
            std::sort(mid, readyList_.end(), bySeq);
            if (mid != readyList_.begin() && bySeq(*mid, *(mid - 1))) {
                mergeScratch_.clear();
                std::merge(readyList_.begin(), mid, mid,
                           readyList_.end(),
                           std::back_inserter(mergeScratch_), bySeq);
                readyList_.swap(mergeScratch_);
            }
        }
        auto &remaining = readyScratch_;
        remaining.clear();

        for (auto it = readyList_.begin(); it != readyList_.end();
             ++it) {
            auto &[inst, seq] = *it;
            if (inst->seq != seq || inst->squashed || inst->issued)
                continue;
            if (issueBudget == 0) {
                // Nothing further can issue: keep the tail wholesale.
                // Stale records ride along and are filtered next cycle,
                // exactly as the per-entry scan would have done.
                remaining.insert(remaining.end(), it, readyList_.end());
                break;
            }
            const isa::FuClass fu = inst->si->fu;
            const auto fuIdx = static_cast<unsigned>(fu);
            if (fuUsed[fuIdx] >= fuLimit(fu)) {
                remaining.emplace_back(inst, seq);
                continue;
            }

            if (inst->isLoad()) {
                // Loads need a data-cache port and a disambiguated LSQ.
                if (memPorts == 0) {
                    remaining.emplace_back(inst, seq);
                    continue;
                }
                // Address generation; idempotent, so retries (LSQ not
                // disambiguated, port rejected) skip the recompute.
                if (!inst->effAddrValid)
                    executeInst(inst);
                DynInst *forwardFrom = nullptr;
                if (!loadReadyInLsq(inst, &forwardFrom)) {
                    remaining.emplace_back(inst, seq);
                    continue;
                }
                const Addr tagged = mem::MemSystem::threadTag(
                    inst->tid, inst->effAddr);
                const auto access =
                    memSys_.dataAccess(tagged, false, now_);
                if (!access.accepted) {
                    --memPorts; // the probe consumed a port
                    remaining.emplace_back(inst, seq);
                    continue;
                }
                Cycle latency = access.latency;
                std::uint64_t value;
                if (forwardFrom) {
                    ++loadForwards;
                    value = forwardFrom->storeData;
                    latency = params_.memParams.dl1.hitLatency;
                } else {
                    value =
                        threads_[inst->tid].memory->read(inst->effAddr);
                }
                inst->result = value;
                --memPorts;
                ++fuUsed[fuIdx];
                --issueBudget;
                inst->issued = true;
                inst->issueTick = now_;
                inst->iqSlot = -1;
                --iqCount_;
                DPRINTFT(Issue, inst->tid,
                         "issue load seq=%llu addr=0x%llx lat=%llu%s",
                         (unsigned long long)inst->seq,
                         (unsigned long long)inst->effAddr,
                         (unsigned long long)latency,
                         forwardFrom ? " [forwarded]" : "");
                scheduleCompletion(inst, now_ + 1 + latency);
                continue;
            }

            // Non-load: execute now, complete after the FU latency.
            executeInst(inst);
            ++fuUsed[fuIdx];
            --issueBudget;
            inst->issued = true;
            inst->issueTick = now_;
            inst->iqSlot = -1;
            --iqCount_;
            DPRINTFT(Issue, inst->tid, "issue seq=%llu pc=%llu fu=%u",
                     (unsigned long long)inst->seq,
                     (unsigned long long)inst->pc,
                     static_cast<unsigned>(inst->si->fu));
            scheduleCompletion(inst,
                               now_ + 1 + isa::fuLatency(inst->si->fu));
        }
        readyList_.swap(remaining);
    }
    // Everything still queued is in seq order; wakeups appended after
    // this point extend the unsorted suffix.
    readySortedLen_ = readyList_.size();

    // Committed stores drain through remaining ports.
    while (memPorts > 0 && !storeBuffer_.empty()) {
        const StoreBufferEntry &e = storeBuffer_.front();
        const auto access = memSys_.dataAccess(
            mem::MemSystem::threadTag(e.tid, e.addr), true, now_);
        if (!access.accepted)
            break;
        storeBuffer_.pop_front();
        --memPorts;
    }

    // Spill/fill (or window-trap) transfers get the leftover ports
    // ("the entry at the head of the ASTQ is issued to a free port").
    while (memPorts > 0 &&
           (pendingTransferValid_ || renamer_->hasTransferOp())) {
        TransferOp op = pendingTransferValid_ ? pendingTransfer_
                                              : renamer_->popTransferOp();
        pendingTransferValid_ = false;
        const auto access = memSys_.dataAccess(
            mem::MemSystem::threadTag(op.tid, op.addr), op.isStore,
            now_);
        if (!access.accepted) {
            pendingTransfer_ = op;
            pendingTransferValid_ = true;
            break;
        }
        --memPorts;
        transferEvents_.schedule(now_ + access.latency, op);
        emitSimEvent(op.isStore ? SimEvent::Kind::Spill
                                : SimEvent::Kind::Fill,
                     op.tid, op.addr);
    }
}

bool
OooCpu::loadReadyInLsq(DynInst *ld, DynInst **forwardFrom) const
{
    const ThreadState &ts = threads_[ld->tid];
    DynInst *candidate = nullptr;
    for (DynInst *st : ts.sq) {
        if (st->seq > ld->seq)
            break;
        if (!st->effAddrValid)
            return false; // conservative: wait for older store addrs
        if (st->effAddr == ld->effAddr)
            candidate = st; // youngest older match wins
    }
    *forwardFrom = candidate;
    return true;
}

void
OooCpu::insertIq(DynInst *inst)
{
    unsigned waiting = 0;
    for (unsigned s = 0; s < inst->si->numSrcs; ++s) {
        if (!inst->si->srcValid[s])
            continue;
        if (!regs_.isReady(inst->srcPhys[s])) {
            waiters_[inst->srcPhys[s]].emplace_back(inst, inst->seq);
            ++waiting;
        }
    }
    inst->iqSlot = static_cast<std::int32_t>(waiting);
    ++iqCount_;
    if (waiting == 0)
        readyList_.emplace_back(inst, inst->seq);
}

void
OooCpu::renameStage()
{
    renamerRefusedThisCycle_ = false;
    if (renamer_->transfersBlockRename()) {
        DPRINTF(Rename, "rename blocked: transfers draining");
        return;
    }

    renamer_->beginCycle(now_);

    // Rename bandwidth is shared: threads are visited round-robin and
    // a thread that stalls (fill/spill resources, table conflicts)
    // yields the remaining slots to the next thread instead of wasting
    // the cycle -- important under SMT, where one thread's register
    // pressure must not serialize the others.
    const unsigned nThreads = params_.numThreads;
    unsigned budget = params_.width;
    bool progress = false;

    for (unsigned i = 0; i < nThreads && budget > 0; ++i) {
        const unsigned t = (renameRR_ + i) % nThreads;
        ThreadState &ts = threads_[t];
        if (ts.done || ts.renameBlockedUntil > now_)
            continue;

        while (budget > 0 && !ts.fetchQueue.empty() &&
               ts.fetchQueue.front().readyAt <= now_) {
            DynInst *inst = ts.fetchQueue.front().inst;

            if (robOccupancy() >= params_.robSize) {
                ++robFullStalls;
                DPRINTFT(Rename, t, "stall: ROB full");
                budget = 0;
                break;
            }
            const bool needsIq = !inst->si->isNop &&
                                 !inst->si->isHalt && !inst->si->isJump;
            if (needsIq && iqCount_ >= params_.iqSize) {
                ++iqFullStalls;
                DPRINTFT(Rename, t, "stall: IQ full");
                budget = 0;
                break;
            }
            if (inst->isLoad() && ts.lq.size() >= params_.lqSize) {
                ++lsqFullStalls;
                DPRINTFT(Rename, t, "stall: LQ full");
                break;
            }
            if (inst->isStore() && ts.sq.size() >= params_.sqSize) {
                ++lsqFullStalls;
                DPRINTFT(Rename, t, "stall: SQ full");
                break;
            }

            if (!renamer_->rename(*inst, now_)) {
                // This thread stalls; try the next thread.
                renamerRefusedThisCycle_ = true;
                ts.renameRefused = true;
                ts.renameRefusedCause = renamer_->lastStallCause();
                DPRINTFT(Rename, t, "stall: renamer refused seq=%llu",
                         (unsigned long long)inst->seq);
                break;
            }

            inst->renameTick = now_;
            inst->dispatchTick = now_;
            inst->decodeTick = inst->fetchTick + params_.decodeDelay;
            DPRINTFT(Rename, t,
                     "rename seq=%llu pc=%llu dest p%d src p%d,p%d",
                     (unsigned long long)inst->seq,
                     (unsigned long long)inst->pc, inst->destPhys,
                     inst->srcPhys[0], inst->srcPhys[1]);
            ts.fetchQueue.pop_front();
            ts.rob.push_back(inst);
            ++robCount_;
            if (inst->isLoad())
                ts.lq.push_back(inst);
            if (inst->isStore())
                ts.sq.push_back(inst);

            if (needsIq) {
                insertIq(inst);
            } else {
                // Nops, halts and direct jumps complete immediately.
                inst->actualNpc = inst->si->isJump
                    ? static_cast<Addr>(inst->si->imm) : inst->pc + 1;
                inst->completed = true;
                inst->issueTick = now_;
                inst->completeTick = now_;
            }
            --budget;
            progress = true;
        }
    }
    renameRR_ = (renameRR_ + 1) % nThreads;
    if (!progress)
        ++renameStallCycles;
}

ThreadId
OooCpu::pickFetchThread() const
{
    int best = -1;
    unsigned bestCount = ~0u;
    for (unsigned t = 0; t < params_.numThreads; ++t) {
        const ThreadState &ts = threads_[t];
        if (ts.done || ts.fetchHalted || ts.fetchReadyAt > now_)
            continue;
        if (ts.fetchQueue.size() >=
            params_.width * (frontendDelay_ + 2)) {
            continue;
        }
        const unsigned count = inflightCount(static_cast<ThreadId>(t));
        if (count < bestCount) {
            bestCount = count;
            best = static_cast<int>(t);
        }
    }
    return best < 0 ? static_cast<ThreadId>(0xff)
                    : static_cast<ThreadId>(best);
}

void
OooCpu::fetchStage()
{
    const ThreadId tid = pickFetchThread();
    if (tid == 0xff)
        return;
    ThreadState &ts = threads_[tid];

    // One icache access per fetch cycle; a miss stalls this thread.
    const Addr lineAddr = layout::pcToAddr(ts.fetchPc);
    const auto access = memSys_.instAccess(
        mem::MemSystem::threadTag(tid, lineAddr), now_);
    if (!access.accepted) {
        DPRINTFT(Fetch, tid, "icache rejected pc=%llu (MSHRs full)",
                 (unsigned long long)ts.fetchPc);
        ts.fetchReadyAt = now_ + 1;
        return;
    }
    if (!access.hit) {
        DPRINTFT(Fetch, tid, "icache miss pc=%llu lat=%llu",
                 (unsigned long long)ts.fetchPc,
                 (unsigned long long)access.latency);
        ts.fetchReadyAt = now_ + access.latency;
        ts.icacheStallUntil = ts.fetchReadyAt;
        ++fetchIcacheStalls;
        return;
    }

    // il1.lineBytes is fatal-checked to be a power of two, so the
    // line-boundary test is a mask compare instead of two divisions.
    const Addr lineMask =
        ~static_cast<Addr>(params_.memParams.il1.lineBytes - 1);
    Addr pc = ts.fetchPc;
    for (unsigned i = 0; i < params_.width; ++i) {
        if (((layout::pcToAddr(pc) ^ lineAddr) & lineMask) != 0)
            break; // stop at the cache-line boundary

        const isa::StaticInst &si = ts.program->inst(pc);
        DynInst *inst = pool_.acquire();
        inst->si = &si;
        inst->pc = pc;
        inst->tid = tid;
        inst->seq = nextSeq_++;
        inst->fetchTick = now_;
        ++fetchedInsts;
        DPRINTFT(Fetch, tid, "fetch seq=%llu pc=%llu %s",
                 (unsigned long long)inst->seq,
                 (unsigned long long)pc,
                 isa::disassemble(si).c_str());

        Addr npc = pc + 1;
        if (si.isHalt) {
            ts.fetchHalted = true;
        } else if (si.isJump) {
            npc = static_cast<Addr>(si.imm);
        } else if (si.isCall) {
            bpred_.pushRas(tid, pc + 1, inst->bpCkpt);
            inst->hasBpCkpt = true;
            npc = static_cast<Addr>(si.imm);
        } else if (si.isRet) {
            npc = bpred_.popRas(tid, inst->bpCkpt);
            inst->hasBpCkpt = true;
        } else if (si.isBranch) {
            inst->predTaken = bpred_.predict(tid, pc, inst->bpCkpt);
            inst->hasBpCkpt = true;
            npc = inst->predTaken ? pc + 1 + si.imm : pc + 1;
        }
        inst->predNpc = npc;
        ts.fetchQueue.push_back({inst, now_ + frontendDelay_});

        pc = npc;
        if (si.isHalt)
            break;
        if (si.isControl() && npc != inst->pc + 1)
            break; // taken control flow: redirect next cycle
    }
    ts.fetchPc = pc;
}

/**
 * Attribute this cycle to one CycleAccounting bucket. Runs after every
 * stage so rename-stall state from this cycle is visible.
 */
void
OooCpu::accountCycle(double committedThisCycle)
{
    if (committedThisCycle > 0) {
        ++cycleAccounting.commitActive;
        return;
    }

    // Find the oldest ROB head across threads: the instruction the
    // machine is architecturally waiting on.
    const DynInst *oldest = nullptr;
    for (const ThreadState &ts : threads_) {
        if (ts.rob.empty())
            continue;
        const DynInst *head = ts.rob.front();
        if (!oldest || head->seq < oldest->seq)
            oldest = head;
    }

    if (oldest) {
        // A completed head that still didn't retire is a store stuck
        // behind a full store buffer: memory's fault either way.
        if (oldest->si->isMem() || oldest->completed)
            ++cycleAccounting.memStall;
        else
            ++cycleAccounting.execStall;
        return;
    }

    // ROB empty: why is the front end not delivering?
    bool trapBlocked = false;
    for (const ThreadState &ts : threads_) {
        if (!ts.done && ts.renameBlockedUntil > now_)
            trapBlocked = true;
    }
    if (trapBlocked || renamer_->transfersBlockRename())
        ++cycleAccounting.windowShift;
    else if (renamerRefusedThisCycle_)
        ++cycleAccounting.renameFreeList;
    else
        ++cycleAccounting.frontendStall;
}

/**
 * Refine a non-retiring ROB-head stall into a taxonomy leaf. The
 * predicate union per leaf pair matches accountCycle() exactly:
 * dcache + store_drain == mem_stall, exec + fill_latency == exec_stall
 * (DESIGN.md "Hierarchical cycle attribution").
 */
TaxonomyBuckets::Leaf
OooCpu::classifyHead(const DynInst *head) const
{
    using Leaf = TaxonomyBuckets::Leaf;
    // A completed head that didn't retire is a store stuck behind a
    // full store buffer (loads and ALU ops retire as soon as they
    // complete, given that commit bandwidth went unused this cycle).
    if (head->completed)
        return Leaf::StoreDrain;
    if (head->si->isMem())
        return Leaf::Dcache;
    // At the ROB head every older instruction has committed, so an
    // unready source of an unissued instruction can only be an
    // in-flight VCA register fill (non-VCA renamers always hand out
    // ready committed sources) — the fill-latency exposure of paper
    // Section 2.2.
    if (!head->issued) {
        for (unsigned s = 0; s < head->si->numSrcs; ++s) {
            if (head->si->srcValid[s] &&
                !regs_.isReady(head->srcPhys[s])) {
                return Leaf::FillLatency;
            }
        }
    }
    return Leaf::Exec;
}

/** Machine-level taxonomy leaf for this cycle (same decision tree as
 *  accountCycle(), with each flat bucket split into its leaves). */
TaxonomyBuckets::Leaf
OooCpu::classifyMachine(double committedThisCycle) const
{
    using Leaf = TaxonomyBuckets::Leaf;
    if (committedThisCycle > 0)
        return Leaf::Retiring;

    const DynInst *oldest = nullptr;
    for (const ThreadState &ts : threads_) {
        if (ts.rob.empty())
            continue;
        const DynInst *head = ts.rob.front();
        if (!oldest || head->seq < oldest->seq)
            oldest = head;
    }
    if (oldest)
        return classifyHead(oldest);

    bool trapBlocked = false;
    bool trapReason = false;
    for (const ThreadState &ts : threads_) {
        if (!ts.done && ts.renameBlockedUntil > now_) {
            trapBlocked = true;
            if (ts.renameBlockReason == RenameBlock::Trap)
                trapReason = true;
        }
    }
    const bool transferBlock = renamer_->transfersBlockRename();
    if (trapBlocked || transferBlock) {
        return (trapReason || transferBlock) ? Leaf::WindowTrap
                                             : Leaf::Recovery;
    }
    if (renamerRefusedThisCycle_) {
        return renamer_->lastStallCause() ==
                       Renamer::StallCause::TransferBackpressure
                   ? Leaf::SpillStall
                   : Leaf::RenameFreeList;
    }
    for (const ThreadState &ts : threads_) {
        if (!ts.done && ts.icacheStallUntil > now_)
            return Leaf::Icache;
    }
    return Leaf::Fetch;
}

/** Per-thread taxonomy leaf: the same rules applied to one thread's
 *  own ROB head / front-end state, plus the Idle leaf once done. */
TaxonomyBuckets::Leaf
OooCpu::classifyThread(unsigned t) const
{
    using Leaf = TaxonomyBuckets::Leaf;
    const ThreadState &ts = threads_[t];
    if (ts.committed > commitSnapshot_[t])
        return Leaf::Retiring;
    if (ts.done)
        return Leaf::Idle;
    if (!ts.rob.empty())
        return classifyHead(ts.rob.front());
    if (ts.renameBlockedUntil > now_) {
        return ts.renameBlockReason == RenameBlock::Trap
                   ? Leaf::WindowTrap
                   : Leaf::Recovery;
    }
    if (renamer_->transfersBlockRename())
        return Leaf::WindowTrap;
    if (ts.renameRefused) {
        return ts.renameRefusedCause ==
                       Renamer::StallCause::TransferBackpressure
                   ? Leaf::SpillStall
                   : Leaf::RenameFreeList;
    }
    if (ts.icacheStallUntil > now_)
        return Leaf::Icache;
    return Leaf::Fetch;
}

/**
 * Hierarchical refinement of accountCycle(): one machine-level leaf
 * and one leaf per hardware thread per cycle, so every tree in
 * cpu.cycle_accounting.taxonomy partitions cpu.cycles exactly.
 * Compiled out under VCA_NTELEMETRY (the trees stay registered but
 * all-zero).
 */
void
OooCpu::accountTaxonomy(double committedThisCycle)
{
#ifndef VCA_NTELEMETRY
    CycleTaxonomy &tax = cycleAccounting.taxonomy;
    tax.add(classifyMachine(committedThisCycle));
    for (unsigned t = 0; t < params_.numThreads; ++t) {
        tax.thread(t).add(classifyThread(t));
        threads_[t].renameRefused = false;
    }
#else
    (void)committedThisCycle;
#endif
}

void
OooCpu::tick()
{
    ++now_;
    ++numCycles;
    trace::setTraceCycle(now_);
    if (--statSampleCountdown_ == 0) {
        statSampleCountdown_ = params_.statSampleInterval;
        robOccupancyDist.sample(static_cast<double>(robCount_));
        iqOccupancyDist.sample(static_cast<double>(iqCount_));
    }
    const double committedBefore = committedTotal.value();
#ifndef VCA_NTELEMETRY
    for (unsigned t = 0; t < params_.numThreads; ++t)
        commitSnapshot_[t] = threads_[t].committed;
#endif
    processCompletions();
    commitStage();
    issueStage();
    renameStage();
    fetchStage();
    const double committedDelta =
        committedTotal.value() - committedBefore;
    accountCycle(committedDelta);
    accountTaxonomy(committedDelta);
}

RunResult
OooCpu::run(InstCount maxInstsPerThread, Cycle maxCycles,
            bool stopOnFirstThread)
{
    std::vector<InstCount> startCounts(params_.numThreads);
    for (unsigned t = 0; t < params_.numThreads; ++t)
        startCounts[t] = threads_[t].committed;
    const Cycle startCycle = now_;

    auto reached = [&](unsigned t) {
        return threads_[t].done ||
               threads_[t].committed - startCounts[t] >=
                   maxInstsPerThread;
    };

    for (;;) {
        if (maxCycles && now_ - startCycle >= maxCycles)
            break;
        bool allDone = true;
        bool anyDone = false;
        for (unsigned t = 0; t < params_.numThreads; ++t) {
            if (reached(t))
                anyDone = true;
            else
                allDone = false;
        }
        if (allDone || (stopOnFirstThread && anyDone))
            break;
        tick();
    }

    RunResult res;
    res.cycles = now_ - startCycle;
    res.threadInsts.resize(params_.numThreads);
    for (unsigned t = 0; t < params_.numThreads; ++t) {
        res.threadInsts[t] = threads_[t].committed - startCounts[t];
        res.totalInsts += res.threadInsts[t];
    }
    res.dcacheAccesses = memSys_.dcache().accesses.value();
    res.ipc = res.cycles
        ? static_cast<double>(res.totalInsts) / res.cycles : 0.0;
    return res;
}

} // namespace vca::cpu
