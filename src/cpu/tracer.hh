/**
 * @file
 * Commit-stream tracing (M5's Exec trace flavour): one line per
 * committed instruction with cycle, thread, pc, disassembly, and the
 * produced value / effective address. Tracers install through the
 * CPU's commit-listener list, so any number of them — plus
 * co-simulation checks, pipeline tracers and interval recorders —
 * can observe the same run.
 */

#ifndef VCA_CPU_TRACER_HH
#define VCA_CPU_TRACER_HH

#include <ostream>

#include "cpu/ooo_cpu.hh"
#include "trace/pipe_trace.hh"

namespace vca::cpu {

struct TraceOptions
{
    InstCount maxInsts = 0; ///< stop tracing after this many (0 = all)
    bool values = true;     ///< print destination values
    bool memAddrs = true;   ///< print load/store effective addresses
};

/**
 * Attach a commit tracer to the core (composes with other commit
 * listeners). The stream must outlive the core.
 */
void attachCommitTracer(OooCpu &cpu, std::ostream &os,
                        TraceOptions opts = {});

/** Format one committed instruction as a trace line (no newline). */
std::string formatTraceLine(const OooCpu &cpu, const DynInst &inst,
                            const TraceOptions &opts);

/** Build the pipeline-stage record of one committing instruction. */
trace::PipeRecord makePipeRecord(const OooCpu &cpu, const DynInst &inst);

/**
 * Attach an O3PipeView pipeline tracer: every committed instruction
 * emits its fetch/rename/dispatch/issue/complete/retire timestamps to
 * the stream (render with tools/vca_pipeview or gem5's
 * o3-pipeview.py). With @p instants set, telemetry marks (window
 * overflow/underflow traps, aggregated spill/fill transfer windows)
 * are interleaved as "O3PipeView:instant:<tick>:<label>" records,
 * which parsePipeTrace-based tools count and skip. The stream must
 * outlive the core.
 */
void attachPipeTracer(OooCpu &cpu, std::ostream &os,
                      InstCount maxInsts = 0, bool instants = false);

} // namespace vca::cpu

#endif // VCA_CPU_TRACER_HH
