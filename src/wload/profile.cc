#include "wload/profile.hh"

#include "sim/logging.hh"

namespace vca::wload {

namespace {

/**
 * Build the profile table.
 *
 * Calibration intuition: in the non-windowed ABI every function
 * entry/exit adds roughly 2*avgLocals + 2 instructions (save+restore of
 * each written callee-saved register plus stack-pointer adjustment), so
 * the Table-2 path-length ratio is approximately
 *     bodyWork / (bodyWork + 2*avgLocals + 2)
 * per call. Call-heavy profiles use small bodies and many saved
 * registers (vortex, perlbmk); call-light ones use large bodies (twolf,
 * ammp). Footprints are scaled so "small" fits L1 (64K), "medium"
 * stresses L2 (1M) and "large" misses to memory.
 */
std::vector<BenchProfile>
makeProfiles()
{
    std::vector<BenchProfile> v;
    auto add = [&](BenchProfile p) { v.push_back(std::move(p)); };

    // ---- SPECint-like ----
    add({.name = "gzip_graphic", .isFloat = false, .numFuncs = 18,
         .callFanout = 2, .callSpan = 3, .bodyOps = 44, .avgLocals = 6,
         .leafFrac = 0.3, .loopTripMean = 10, .randomBranchFrac = 0.15,
         .footprintBytes = 192 * 1024, .memOpFrac = 0.30,
         .pointerChaseFrac = 0.0, .fpFrac = 0.0,
         .seed = 101, .callHeavy = true});

    add({.name = "vpr_route", .isFloat = false, .numFuncs = 22,
         .callFanout = 2, .callSpan = 4, .bodyOps = 64, .avgLocals = 8,
         .leafFrac = 0.3, .loopTripMean = 6, .randomBranchFrac = 0.25,
         .footprintBytes = 384 * 1024, .memOpFrac = 0.30,
         .pointerChaseFrac = 0.05, .fpFrac = 0.10,
         .seed = 102, .callHeavy = true});

    add({.name = "gcc_expr", .isFloat = false, .numFuncs = 40,
         .callFanout = 2, .callSpan = 6, .bodyOps = 52, .avgLocals = 6,
         .leafFrac = 0.25, .loopTripMean = 4, .randomBranchFrac = 0.30,
         .footprintBytes = 512 * 1024, .memOpFrac = 0.32,
         .pointerChaseFrac = 0.05, .fpFrac = 0.0,
         .seed = 103, .callHeavy = true});

    add({.name = "mcf", .isFloat = false, .numFuncs = 10,
         .callFanout = 1, .callSpan = 2, .bodyOps = 120, .avgLocals = 4,
         .leafFrac = 0.5, .loopTripMean = 16, .randomBranchFrac = 0.25,
         .footprintBytes = 12 * 1024 * 1024, .memOpFrac = 0.38,
         .pointerChaseFrac = 0.45, .fpFrac = 0.0,
         .seed = 104, .callHeavy = false});

    add({.name = "crafty", .isFloat = false, .numFuncs = 26,
         .callFanout = 2, .callSpan = 4, .bodyOps = 62, .avgLocals = 6,
         .leafFrac = 0.3, .loopTripMean = 5, .randomBranchFrac = 0.22,
         .footprintBytes = 96 * 1024, .memOpFrac = 0.24,
         .pointerChaseFrac = 0.0, .fpFrac = 0.0,
         .seed = 105, .callHeavy = true});

    add({.name = "parser", .isFloat = false, .numFuncs = 30,
         .callFanout = 2, .callSpan = 5, .bodyOps = 58, .avgLocals = 6,
         .leafFrac = 0.4, .loopTripMean = 5, .randomBranchFrac = 0.28,
         .footprintBytes = 768 * 1024, .memOpFrac = 0.30,
         .pointerChaseFrac = 0.20, .fpFrac = 0.0,
         .seed = 106, .callHeavy = true});

    add({.name = "eon_rushmeier", .isFloat = false, .numFuncs = 28,
         .callFanout = 3, .callSpan = 5, .bodyOps = 74, .avgLocals = 7,
         .leafFrac = 0.4, .loopTripMean = 6, .randomBranchFrac = 0.12,
         .footprintBytes = 48 * 1024, .memOpFrac = 0.26,
         .pointerChaseFrac = 0.0, .fpFrac = 0.30,
         .seed = 107, .callHeavy = true});

    add({.name = "perlbmk_535", .isFloat = false, .numFuncs = 36,
         .callFanout = 3, .callSpan = 6, .bodyOps = 34, .avgLocals = 8,
         .leafFrac = 0.35, .loopTripMean = 3, .randomBranchFrac = 0.25,
         .footprintBytes = 256 * 1024, .memOpFrac = 0.30,
         .pointerChaseFrac = 0.10, .fpFrac = 0.0,
         .seed = 108, .callHeavy = true});

    add({.name = "gap", .isFloat = false, .numFuncs = 26,
         .callFanout = 2, .callSpan = 4, .bodyOps = 48, .avgLocals = 7,
         .leafFrac = 0.3, .loopTripMean = 6, .randomBranchFrac = 0.18,
         .footprintBytes = 640 * 1024, .memOpFrac = 0.30,
         .pointerChaseFrac = 0.05, .fpFrac = 0.0,
         .seed = 109, .callHeavy = true});

    add({.name = "vortex_2", .isFloat = false, .numFuncs = 40,
         .callFanout = 3, .callSpan = 6, .bodyOps = 26, .avgLocals = 9,
         .leafFrac = 0.3, .loopTripMean = 3, .randomBranchFrac = 0.15,
         .footprintBytes = 1024 * 1024, .memOpFrac = 0.34,
         .pointerChaseFrac = 0.05, .fpFrac = 0.0,
         .seed = 110, .callHeavy = true});

    add({.name = "bzip2_graphic", .isFloat = false, .numFuncs = 16,
         .callFanout = 2, .callSpan = 3, .bodyOps = 40, .avgLocals = 6,
         .leafFrac = 0.35, .loopTripMean = 7, .randomBranchFrac = 0.20,
         .footprintBytes = 1536 * 1024, .memOpFrac = 0.30,
         .pointerChaseFrac = 0.0, .fpFrac = 0.0,
         .seed = 111, .callHeavy = true});

    add({.name = "twolf", .isFloat = false, .numFuncs = 20,
         .callFanout = 2, .callSpan = 3, .bodyOps = 64, .avgLocals = 4,
         .leafFrac = 0.4, .loopTripMean = 6, .randomBranchFrac = 0.25,
         .footprintBytes = 128 * 1024, .memOpFrac = 0.26,
         .pointerChaseFrac = 0.05, .fpFrac = 0.05,
         .seed = 112, .callHeavy = true});

    // ---- SPECfp-like (gcc-compilable subset, no F90) ----
    add({.name = "wupwise", .isFloat = true, .numFuncs = 16,
         .callFanout = 2, .callSpan = 3, .bodyOps = 48, .avgLocals = 7,
         .leafFrac = 0.3, .loopTripMean = 8, .randomBranchFrac = 0.05,
         .footprintBytes = 2 * 1024 * 1024, .memOpFrac = 0.30,
         .pointerChaseFrac = 0.0, .fpFrac = 0.55,
         .seed = 113, .callHeavy = true});

    add({.name = "swim", .isFloat = true, .numFuncs = 8,
         .callFanout = 1, .callSpan = 2, .bodyOps = 200, .avgLocals = 5,
         .leafFrac = 0.6, .loopTripMean = 24, .randomBranchFrac = 0.02,
         .footprintBytes = 12 * 1024 * 1024, .memOpFrac = 0.40,
         .pointerChaseFrac = 0.0, .fpFrac = 0.60,
         .seed = 114, .callHeavy = false});

    add({.name = "mgrid", .isFloat = true, .numFuncs = 8,
         .callFanout = 1, .callSpan = 2, .bodyOps = 240, .avgLocals = 5,
         .leafFrac = 0.6, .loopTripMean = 20, .randomBranchFrac = 0.02,
         .footprintBytes = 8 * 1024 * 1024, .memOpFrac = 0.42,
         .pointerChaseFrac = 0.0, .fpFrac = 0.62,
         .seed = 115, .callHeavy = false});

    add({.name = "applu", .isFloat = true, .numFuncs = 10,
         .callFanout = 1, .callSpan = 2, .bodyOps = 220, .avgLocals = 6,
         .leafFrac = 0.55, .loopTripMean = 18, .randomBranchFrac = 0.03,
         .footprintBytes = 10 * 1024 * 1024, .memOpFrac = 0.38,
         .pointerChaseFrac = 0.0, .fpFrac = 0.58,
         .seed = 116, .callHeavy = false});

    add({.name = "mesa", .isFloat = true, .numFuncs = 26,
         .callFanout = 2, .callSpan = 4, .bodyOps = 58, .avgLocals = 7,
         .leafFrac = 0.3, .loopTripMean = 6, .randomBranchFrac = 0.10,
         .footprintBytes = 512 * 1024, .memOpFrac = 0.28,
         .pointerChaseFrac = 0.0, .fpFrac = 0.45,
         .seed = 117, .callHeavy = true});

    add({.name = "art", .isFloat = true, .numFuncs = 8,
         .callFanout = 1, .callSpan = 2, .bodyOps = 160, .avgLocals = 4,
         .leafFrac = 0.6, .loopTripMean = 30, .randomBranchFrac = 0.05,
         .footprintBytes = 4 * 1024 * 1024, .memOpFrac = 0.44,
         .pointerChaseFrac = 0.0, .fpFrac = 0.50,
         .seed = 118, .callHeavy = false});

    add({.name = "equake", .isFloat = true, .numFuncs = 14,
         .callFanout = 2, .callSpan = 3, .bodyOps = 44, .avgLocals = 6,
         .leafFrac = 0.35, .loopTripMean = 7, .randomBranchFrac = 0.06,
         .footprintBytes = 6 * 1024 * 1024, .memOpFrac = 0.36,
         .pointerChaseFrac = 0.10, .fpFrac = 0.50,
         .seed = 119, .callHeavy = true});

    add({.name = "ammp", .isFloat = true, .numFuncs = 14,
         .callFanout = 2, .callSpan = 3, .bodyOps = 52, .avgLocals = 4,
         .leafFrac = 0.4, .loopTripMean = 7, .randomBranchFrac = 0.08,
         .footprintBytes = 3 * 1024 * 1024, .memOpFrac = 0.32,
         .pointerChaseFrac = 0.10, .fpFrac = 0.55,
         .seed = 120, .callHeavy = true});

    add({.name = "sixtrack", .isFloat = true, .numFuncs = 14,
         .callFanout = 2, .callSpan = 3, .bodyOps = 130, .avgLocals = 6,
         .leafFrac = 0.5, .loopTripMean = 10, .randomBranchFrac = 0.04,
         .footprintBytes = 256 * 1024, .memOpFrac = 0.28,
         .pointerChaseFrac = 0.0, .fpFrac = 0.60,
         .seed = 121, .callHeavy = false});

    add({.name = "apsi", .isFloat = true, .numFuncs = 16,
         .callFanout = 2, .callSpan = 3, .bodyOps = 110, .avgLocals = 6,
         .leafFrac = 0.5, .loopTripMean = 9, .randomBranchFrac = 0.06,
         .footprintBytes = 1536 * 1024, .memOpFrac = 0.32,
         .pointerChaseFrac = 0.0, .fpFrac = 0.52,
         .seed = 122, .callHeavy = false});

    return v;
}

} // namespace

const std::vector<BenchProfile> &
spec2000Profiles()
{
    static const std::vector<BenchProfile> profiles = makeProfiles();
    return profiles;
}

std::vector<BenchProfile>
regWindowProfiles()
{
    std::vector<BenchProfile> out;
    for (const BenchProfile &p : spec2000Profiles()) {
        if (p.callHeavy)
            out.push_back(p);
    }
    return out;
}

const BenchProfile &
profileByName(const std::string &name)
{
    for (const BenchProfile &p : spec2000Profiles()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown benchmark profile '%s'", name.c_str());
}

} // namespace vca::wload
