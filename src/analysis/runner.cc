#include "analysis/runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/fault_inject.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"
#include "stats/host_stats.hh"
#include "telemetry/chrome_trace.hh"
#include "trace/json.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace vca::analysis {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Point identity
// ---------------------------------------------------------------------

namespace {

/** Shortest-exact formatting so keys are stable and doubles lossless. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** The 16-hex-digit spelling used for cache files and journals. */
std::string
hashHex(std::uint64_t h)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

void
appendProfile(std::ostream &os, const wload::BenchProfile &p)
{
    os << "{name=" << p.name << ";fp=" << p.isFloat
       << ";funcs=" << p.numFuncs << ";fanout=" << p.callFanout
       << ";span=" << p.callSpan << ";body=" << p.bodyOps
       << ";locals=" << p.avgLocals << ";leaf=" << fmtDouble(p.leafFrac)
       << ";trip=" << p.loopTripMean
       << ";rbr=" << fmtDouble(p.randomBranchFrac)
       << ";foot=" << p.footprintBytes
       << ";mem=" << fmtDouble(p.memOpFrac)
       << ";chase=" << fmtDouble(p.pointerChaseFrac)
       << ";fpfrac=" << fmtDouble(p.fpFrac)
       << ";target=" << p.targetDynInsts << ";seed=" << p.seed
       << ";callheavy=" << p.callHeavy << "}";
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
splitmix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v && *v && std::strcmp(v, "0") != 0;
}

} // namespace

SweepPoint
makePoint(const std::string &bench, cpu::RenamerKind kind,
          unsigned physRegs, const RunOptions &opts)
{
    SweepPoint p;
    p.benches = {bench};
    p.windowed = usesWindowedBinary(kind);
    p.kind = kind;
    p.physRegs = physRegs;
    p.opts = opts;
    return p;
}

std::string
pointKey(const SweepPoint &point)
{
    std::ostringstream os;
    os << "v=" << kSimVersionTag
       << ";arch=" << cpu::renamerKindName(point.kind)
       << ";regs=" << point.physRegs << ";windowed=" << point.windowed
       << ";warmup=" << point.opts.warmupInsts
       << ";measure=" << point.opts.measureInsts
       << ";ports=" << point.opts.dcachePorts
       << ";threads=" << point.opts.numThreads
       << ";stopfirst=" << point.opts.stopOnFirstThread;
    const ParamOverrides &ov = point.opts.overrides;
    os << ";ov=" << ov.vcaTableAssoc << "," << ov.astqEntries << ","
       << ov.rsidEntries << "," << ov.vcaRenamePorts << ","
       << ov.vcaCheckpointRecovery << "," << ov.vcaDeadValueHints;
    // Appended only when set so every pre-existing key (and therefore
    // every derived seed and cached result) is byte-identical. A
    // telemetry point is a distinct cache entry: its Measurement
    // carries extra counters.
    if (point.opts.regTelemetry)
        os << ";telem=1";
    // Same back-compat convention: detailed points keep their exact
    // historical keys; only non-detailed modes grow a mode block (the
    // sampling knobs are part of the point's identity).
    if (point.opts.mode != SimMode::Detailed) {
        os << ";mode=" << simModeName(point.opts.mode)
           << ";speriod=" << point.opts.samplePeriodInsts
           << ";squantum=" << point.opts.sampleQuantumInsts
           << ";sfwarm=" << point.opts.sampleFuncWarmInsts
           << ";sdwarm=" << point.opts.sampleDetailWarmInsts;
    }
    os << ";benches=";
    for (const std::string &name : point.benches)
        appendProfile(os, wload::profileByName(name));
    return os.str();
}

std::uint64_t
pointHash(const SweepPoint &point)
{
    return fnv1a(pointKey(point));
}

std::uint64_t
pointSeed(const SweepPoint &point)
{
    // Finalize with splitmix64 so seeds are well distributed even for
    // points whose keys share long prefixes; never 0 (0 means "use the
    // library default" in RunOptions).
    const std::uint64_t seed = splitmix64(pointHash(point));
    return seed ? seed : 1;
}

std::uint64_t
batchHash(const std::vector<SweepPoint> &points)
{
    std::vector<std::string> keys;
    keys.reserve(points.size());
    for (const SweepPoint &p : points)
        keys.push_back(hashHex(pointHash(p)));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::string all;
    for (const std::string &k : keys) {
        all += k;
        all += '\n';
    }
    return fnv1a(all);
}

std::string
journalPath(const std::string &cacheDir, std::uint64_t batch)
{
    return cacheDir + "/journal/" + hashHex(batch) + ".jsonl";
}

std::string
manifestPath(const std::string &cacheDir, std::uint64_t batch)
{
    return cacheDir + "/manifests/" + hashHex(batch) + ".json";
}

RobustConfig
RobustConfig::fromEnv()
{
    RobustConfig r;
    r.isolate = envFlag("VCA_ISOLATE");
    r.resume = envFlag("VCA_RESUME");
    if (const char *v = std::getenv("VCA_POINT_TIMEOUT"); v && *v) {
        char *rest = nullptr;
        const double t = std::strtod(v, &rest);
        if (rest && !*rest && t >= 0)
            r.pointTimeoutSec = t;
        else
            warn("ignoring VCA_POINT_TIMEOUT='%s' (want seconds >= 0)",
                 v);
    }
    if (const char *v = std::getenv("VCA_RETRIES"); v && *v) {
        char *rest = nullptr;
        const unsigned long n = std::strtoul(v, &rest, 10);
        if (rest && !*rest)
            r.retries = static_cast<unsigned>(n);
        else
            warn("ignoring VCA_RETRIES='%s' (want an integer >= 0)", v);
    }
    if (const char *v = std::getenv("VCA_RETRY_BACKOFF_MS"); v && *v) {
        char *rest = nullptr;
        const unsigned long n = std::strtoul(v, &rest, 10);
        if (rest && !*rest)
            r.backoffMs = static_cast<unsigned>(n);
        else
            warn("ignoring VCA_RETRY_BACKOFF_MS='%s' (want an integer "
                 ">= 0)", v);
    }
    return r;
}

// ---------------------------------------------------------------------
// Measurement (de)serialization
// ---------------------------------------------------------------------

namespace {

void
writeMeasurement(trace::JsonWriter &w, const Measurement &m)
{
    w.beginObject();
    w.key("ok").boolean(m.ok);
    w.key("error").string(m.error);
    w.key("cycles").number(std::uint64_t(m.cycles));
    w.key("insts").number(std::uint64_t(m.insts));
    w.key("ipc").number(m.ipc);
    w.key("cpi").number(m.cpi);
    w.key("dcache_accesses").number(m.dcacheAccesses);
    w.key("dcache_acc_per_inst").number(m.dcacheAccPerInst);
    w.key("thread_cpi").beginArray();
    for (double v : m.threadCpi)
        w.number(v);
    w.endArray();
    w.key("thread_dcache_per_inst").beginArray();
    for (double v : m.threadDcachePerInst)
        w.number(v);
    w.endArray();
    w.key("thread_insts").beginArray();
    for (InstCount v : m.threadInsts)
        w.number(std::uint64_t(v));
    w.endArray();
    w.key("cycle_breakdown").beginObject();
    for (const auto &[name, frac] : m.cycleBreakdown)
        w.key(name).number(frac);
    w.endObject();
    w.key("counters").beginObject();
    for (const auto &[name, value] : m.counters)
        w.key(name).number(value);
    w.endObject();
    // Sampling statistics exist only on non-detailed measurements.
    // Written conditionally — and parsed tolerantly below — so that
    // (a) detailed entries are byte-identical with or without this
    // layer and (b) pre-sampling cache entries still verify: the
    // content checksum covers the re-serialization of the parsed
    // measurement, which for an entry without a sampling block must
    // round-trip to an entry without one.
    if (m.sampling.samples > 0) {
        w.key("sampling").beginObject();
        w.key("samples").number(std::uint64_t(m.sampling.samples));
        w.key("mean_cpi").number(m.sampling.meanCpi);
        w.key("cpi_variance").number(m.sampling.cpiVariance);
        w.key("ci_lo_cpi").number(m.sampling.ciLoCpi);
        w.key("ci_hi_cpi").number(m.sampling.ciHiCpi);
        w.key("ci_unbounded").boolean(m.sampling.ciUnbounded);
        w.key("mean_tag_valid_fraction")
            .number(m.sampling.meanTagValidFraction);
        w.key("mean_bpred_table_occupancy")
            .number(m.sampling.meanBpredTableOccupancy);
        w.key("records").beginArray();
        for (const SampleRecord &r : m.sampleRecords) {
            w.beginObject();
            w.key("start_inst").number(std::uint64_t(r.startInst));
            w.key("warm_cycles").number(std::uint64_t(r.warmCycles));
            w.key("warm_insts").number(std::uint64_t(r.warmInsts));
            w.key("cycles").number(std::uint64_t(r.cycles));
            w.key("insts").number(std::uint64_t(r.insts));
            w.key("cpi").number(r.cpi);
            w.key("tag_valid_fraction").number(r.tagValidFraction);
            w.key("bpred_table_occupancy")
                .number(r.bpredTableOccupancy);
            w.key("phase").number(double(r.phase));
            w.key("weight").number(r.weight);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

double
numberField(const trace::JsonValue &obj, const char *name)
{
    const trace::JsonValue *v = obj.find(name);
    if (!v || !v->isNumber())
        fatal("measurement JSON: missing number '%s'", name);
    return v->asNumber();
}

Measurement
measurementFromValue(const trace::JsonValue &v)
{
    if (!v.isObject())
        fatal("measurement JSON: not an object");
    Measurement m;
    const trace::JsonValue *ok = v.find("ok");
    const trace::JsonValue *error = v.find("error");
    if (!ok || !error)
        fatal("measurement JSON: missing ok/error");
    m.ok = ok->asBool();
    m.error = error->asString();
    m.cycles = static_cast<Cycle>(numberField(v, "cycles"));
    m.insts = static_cast<InstCount>(numberField(v, "insts"));
    m.ipc = numberField(v, "ipc");
    m.cpi = numberField(v, "cpi");
    m.dcacheAccesses = numberField(v, "dcache_accesses");
    m.dcacheAccPerInst = numberField(v, "dcache_acc_per_inst");
    const auto array = [&v](const char *name) -> const trace::JsonValue & {
        const trace::JsonValue *a = v.find(name);
        if (!a || !a->isArray())
            fatal("measurement JSON: missing array '%s'", name);
        return *a;
    };
    const trace::JsonValue &tc = array("thread_cpi");
    for (size_t i = 0; i < tc.size(); ++i)
        m.threadCpi.push_back(tc.at(i).asNumber());
    const trace::JsonValue &td = array("thread_dcache_per_inst");
    for (size_t i = 0; i < td.size(); ++i)
        m.threadDcachePerInst.push_back(td.at(i).asNumber());
    const trace::JsonValue &ti = array("thread_insts");
    for (size_t i = 0; i < ti.size(); ++i)
        m.threadInsts.push_back(
            static_cast<InstCount>(ti.at(i).asNumber()));
    const auto object = [&v](const char *name) -> const trace::JsonValue & {
        const trace::JsonValue *o = v.find(name);
        if (!o || !o->isObject())
            fatal("measurement JSON: missing object '%s'", name);
        return *o;
    };
    for (const auto &[name, value] : object("cycle_breakdown").members())
        m.cycleBreakdown.emplace_back(name, value.asNumber());
    for (const auto &[name, value] : object("counters").members())
        m.counters.emplace_back(name, value.asNumber());
    // Optional: only non-detailed measurements carry it, and entries
    // written before the sampling layer existed never do.
    if (const trace::JsonValue *s = v.find("sampling");
        s && s->isObject()) {
        m.sampling.samples = static_cast<unsigned>(
            numberField(*s, "samples"));
        m.sampling.meanCpi = numberField(*s, "mean_cpi");
        m.sampling.cpiVariance = numberField(*s, "cpi_variance");
        m.sampling.ciLoCpi = numberField(*s, "ci_lo_cpi");
        m.sampling.ciHiCpi = numberField(*s, "ci_hi_cpi");
        const trace::JsonValue *unb = s->find("ci_unbounded");
        if (!unb)
            fatal("measurement JSON: missing 'ci_unbounded'");
        m.sampling.ciUnbounded = unb->asBool();
        m.sampling.meanTagValidFraction =
            numberField(*s, "mean_tag_valid_fraction");
        m.sampling.meanBpredTableOccupancy =
            numberField(*s, "mean_bpred_table_occupancy");
        const trace::JsonValue *recs = s->find("records");
        if (!recs || !recs->isArray())
            fatal("measurement JSON: missing array 'records'");
        for (size_t i = 0; i < recs->size(); ++i) {
            const trace::JsonValue &rv = recs->at(i);
            SampleRecord r;
            r.startInst = static_cast<InstCount>(
                numberField(rv, "start_inst"));
            r.warmCycles = static_cast<Cycle>(
                numberField(rv, "warm_cycles"));
            r.warmInsts = static_cast<InstCount>(
                numberField(rv, "warm_insts"));
            r.cycles = static_cast<Cycle>(numberField(rv, "cycles"));
            r.insts = static_cast<InstCount>(
                numberField(rv, "insts"));
            r.cpi = numberField(rv, "cpi");
            r.tagValidFraction =
                numberField(rv, "tag_valid_fraction");
            r.bpredTableOccupancy =
                numberField(rv, "bpred_table_occupancy");
            r.phase = static_cast<int>(numberField(rv, "phase"));
            r.weight = numberField(rv, "weight");
            m.sampleRecords.push_back(r);
        }
    }
    return m;
}

} // namespace

std::string
measurementToJson(const Measurement &m)
{
    std::ostringstream os;
    trace::JsonWriter w(os);
    writeMeasurement(w, m);
    return os.str();
}

Measurement
measurementFromJson(const std::string &text)
{
    return measurementFromValue(trace::JsonValue::parse(text));
}

// ---------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    const char *v = std::getenv("VCA_CACHE_VERIFY");
    verify_ = !(v && std::strcmp(v, "0") == 0);
}

std::string
ResultCache::defaultDir()
{
    if (const char *env = std::getenv("VCA_CACHE_DIR"))
        return env; // empty string disables the cache
    return ".vca-cache";
}

std::string
ResultCache::pathFor(const SweepPoint &point) const
{
    return dir_ + "/" + hashHex(pointHash(point)) + ".json";
}

void
ResultCache::quarantineEntry(const std::string &path,
                             const char *reason) const
{
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    const fs::path src(path);
    const fs::path qdir = fs::path(dir_) / "quarantine";
    std::error_code ec;
    fs::create_directories(qdir, ec);
    const fs::path dst =
        qdir / (src.filename().string() + "." + reason);
    fs::rename(src, dst, ec);
    if (ec) {
        // Second best: stop re-reading (and re-warning about) it.
        fs::remove(src, ec);
    }
    if (!warnedQuarantine_.exchange(true)) {
        warn("cache entry %s is invalid (%s); quarantined under %s and "
             "re-simulating. Further quarantines are silent; see the "
             "sweep.cache_quarantined stat.",
             path.c_str(), reason, qdir.string().c_str());
    }
}

void
ResultCache::noteWriteError(const std::string &what) const
{
    writeErrors_.fetch_add(1, std::memory_order_relaxed);
    if (!warnedWrite_.exchange(true)) {
        warn("%s; continuing uncached. Further cache write errors are "
             "silent; see the sweep.cache_write_errors stat.",
             what.c_str());
    }
}

bool
ResultCache::load(const SweepPoint &point, Measurement &out) const
{
    if (!enabled())
        return false;
    const std::string path = pathFor(point);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false; // never cached: the ordinary miss
    std::ostringstream buf;
    buf << is.rdbuf();
    is.close();
    std::string text = buf.str();
    if (FaultInjector::global().shouldFire(FaultSite::CacheCorruptRead,
                                           pointHash(point)) &&
        !text.empty()) {
        text[text.size() / 2] ^= 0xFF; // simulated on-disk bit rot
    }
    if (text.empty()) {
        quarantineEntry(path, "empty");
        return false;
    }
    try {
        const trace::JsonValue doc = trace::JsonValue::parse(text);
        if (!doc.isObject()) {
            quarantineEntry(path, "schema");
            return false;
        }
        // Valid JSON of the wrong shape (legacy schema, foreign file)
        // is as much a miss as a truncated entry — counted, moved
        // aside, re-simulated.
        const trace::JsonValue *schema = doc.find("schema");
        if (!schema || !schema->isNumber() ||
            schema->asNumber() != kCacheEntrySchema) {
            schemaMisses_.fetch_add(1, std::memory_order_relaxed);
            quarantineEntry(path, "schema");
            return false;
        }
        const trace::JsonValue *version = doc.find("version");
        const trace::JsonValue *key = doc.find("key");
        const trace::JsonValue *sum = doc.find("sum");
        const trace::JsonValue *meas = doc.find("measurement");
        if (!version || !key || !sum || !meas) {
            schemaMisses_.fetch_add(1, std::memory_order_relaxed);
            quarantineEntry(path, "schema");
            return false;
        }
        if (version->asString() != kSimVersionTag)
            return false; // stale simulator version: plain miss
        if (key->asString() != pointKey(point))
            return false; // hash collision: plain miss
        Measurement m = measurementFromValue(*meas);
        // The checksum covers the canonical re-serialization of the
        // parsed measurement: JsonValue preserves member order and
        // doubles round-trip losslessly, so any byte that made it
        // through the parser but differs from what store() wrote
        // changes the sum.
        if (verify_ &&
            sum->asString() != hashHex(fnv1a(measurementToJson(m)))) {
            quarantineEntry(path, "checksum");
            return false;
        }
        out = std::move(m);
        return true;
    } catch (const FatalError &) {
        quarantineEntry(path, "parse");
        return false;
    }
}

namespace {

// ---------------------------------------------------------------------
// Interrupt-safe temp-file cleanup.
//
// store() writes each entry to "<path>.tmp.<pid>.<tid>" and renames it
// into place. A SIGINT in the middle of the write leaves a partial
// temp file behind forever (load() never reads temp names, but a
// mid-sweep ^C across a large sweep litters the cache directory).
// Every in-flight temp path is registered in a fixed lock-free table;
// the signal handler walks it, unlink()s whatever is still armed, and
// re-raises with the default disposition so the exit status is
// unchanged. Only async-signal-safe pieces are used in the handler:
// lock-free atomic loads, unlink(), sigaction(), raise().
// ---------------------------------------------------------------------

class TmpFileRegistry
{
  public:
    static constexpr int kSlots = 64;
    static constexpr size_t kMaxPath = 512;

    /**
     * Claim a slot for an in-flight temp path. -1 when the table is
     * full or the path too long: the writer proceeds unregistered and
     * the worst case is one orphaned temp file.
     */
    int
    acquire(const std::string &path)
    {
        if (path.size() >= kMaxPath)
            return -1;
        for (int i = 0; i < kSlots; ++i) {
            bool expected = false;
            if (slots_[i].busy.compare_exchange_strong(expected, true)) {
                std::memcpy(slots_[i].path, path.c_str(),
                            path.size() + 1);
                slots_[i].armed.store(true, std::memory_order_release);
                return i;
            }
        }
        return -1;
    }

    void
    release(int slot)
    {
        if (slot < 0)
            return;
        slots_[slot].armed.store(false, std::memory_order_release);
        slots_[slot].busy.store(false, std::memory_order_release);
    }

    /** Called from the signal handler: async-signal-safe only. */
    void
    cleanupFromSignal()
    {
        for (int i = 0; i < kSlots; ++i)
            if (slots_[i].armed.load(std::memory_order_acquire))
                ::unlink(slots_[i].path);
    }

  private:
    struct Slot
    {
        std::atomic<bool> busy{false};  ///< claimed by a writer
        std::atomic<bool> armed{false}; ///< path valid; file may exist
        char path[kMaxPath];
    };
    Slot slots_[kSlots];
};

TmpFileRegistry gTmpRegistry;

void
cacheCleanupHandler(int sig)
{
    gTmpRegistry.cleanupFromSignal();
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

/**
 * Install the cleanup handler for SIGINT/SIGTERM once, on the first
 * cache write. A disposition of SIG_IGN (e.g. under nohup) is
 * respected and left alone.
 */
void
installCacheCleanupHandler()
{
    static const bool done = [] {
        for (int sig : {SIGINT, SIGTERM}) {
            struct sigaction old = {};
            if (sigaction(sig, nullptr, &old) == 0 &&
                old.sa_handler == SIG_DFL) {
                struct sigaction sa = {};
                sa.sa_handler = &cacheCleanupHandler;
                sigemptyset(&sa.sa_mask);
                sigaction(sig, &sa, nullptr);
            }
        }
        return true;
    }();
    (void)done;
}

} // namespace

bool
ResultCache::store(const SweepPoint &point, const Measurement &m) const
{
    if (!enabled())
        return false;
    if (FaultInjector::global().shouldFire(FaultSite::CacheWriteFail,
                                           pointHash(point))) {
        noteWriteError("cache write failed (injected fault)");
        return false;
    }
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        noteWriteError("cannot create cache dir " + dir_ + ": " +
                       ec.message());
        return false;
    }
    const std::string path = pathFor(point);
    // Unique temp name per writer, then an atomic rename: concurrent
    // processes computing the same point cannot interleave writes.
    std::ostringstream tmpName;
    tmpName << path << ".tmp." << ::getpid() << "."
            << std::this_thread::get_id();
    const std::string tmp = tmpName.str();
    installCacheCleanupHandler();
    const int slot = gTmpRegistry.acquire(tmp);
    bool written = false;
    {
        std::ofstream os(tmp);
        if (!os) {
            noteWriteError("cannot write cache entry " + tmp);
            gTmpRegistry.release(slot);
            return false;
        }
        trace::JsonWriter w(os);
        w.beginObject();
        w.key("schema").number(std::uint64_t(kCacheEntrySchema));
        w.key("version").string(kSimVersionTag);
        w.key("key").string(pointKey(point));
        w.key("sum").string(hashHex(fnv1a(measurementToJson(m))));
        w.key("measurement");
        writeMeasurement(w, m);
        w.endObject();
        os << '\n';
        os.flush();
        // A full disk (ENOSPC) surfaces here as a failed stream, not
        // an exception: detect it before the rename would publish a
        // short entry.
        written = static_cast<bool>(os);
    }
    if (!written) {
        fs::remove(tmp, ec);
        gTmpRegistry.release(slot);
        noteWriteError("short write on cache entry " + tmp);
        return false;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        gTmpRegistry.release(slot);
        noteWriteError("cannot commit cache entry " + path + ": " +
                       ec.message());
        return false;
    }
    gTmpRegistry.release(slot);
    return true;
}

// ---------------------------------------------------------------------
// Batch journal and failure manifest
// ---------------------------------------------------------------------

namespace {

/**
 * JsonWriter output flattened to one physical line. Lossless: any
 * newline inside a string value is escaped by the writer, so raw
 * newlines (and their following indentation) are pure formatting.
 */
std::string
oneLine(const std::string &pretty)
{
    std::string out;
    out.reserve(pretty.size());
    for (size_t i = 0; i < pretty.size(); ++i) {
        if (pretty[i] == '\n') {
            while (i + 1 < pretty.size() && pretty[i + 1] == ' ')
                ++i;
            continue;
        }
        out += pretty[i];
    }
    return out;
}

/**
 * Crash-safe record of one batch's progress: a JSONL file under the
 * cache directory, one flushed line per event, so the tail after a
 * SIGKILL is at worst one torn line (which the loader skips). The
 * journal only exists while a batch has points in flight; a batch
 * that ends clean removes it.
 */
class SweepJournal
{
  public:
    SweepJournal(std::string path, std::uint64_t batch)
        : path_(std::move(path))
    {
        std::error_code ec;
        fs::create_directories(fs::path(path_).parent_path(), ec);
        os_.open(path_, std::ios::trunc);
        if (!os_) {
            warn("cannot write sweep journal %s; an interrupted sweep "
                 "will re-run its failed points", path_.c_str());
            return;
        }
        std::ostringstream line;
        trace::JsonWriter w(line);
        w.beginObject();
        w.key("journal").number(std::uint64_t(1));
        w.key("batch").string(hashHex(batch));
        w.key("version").string(kSimVersionTag);
        w.endObject();
        append(oneLine(line.str()));
    }

    void
    start(std::uint64_t point)
    {
        event(point, "start");
    }

    void
    done(std::uint64_t point)
    {
        event(point, "done");
    }

    void
    failed(const PointFailure &f)
    {
        std::ostringstream line;
        trace::JsonWriter w(line);
        w.beginObject();
        w.key("point").string(hashHex(f.hash));
        w.key("status").string("failed");
        w.key("label").string(f.label);
        w.key("error").string(f.error);
        w.key("attempts").number(std::uint64_t(f.attempts));
        w.endObject();
        append(oneLine(line.str()));
    }

  private:
    void
    event(std::uint64_t point, const char *status)
    {
        std::ostringstream line;
        trace::JsonWriter w(line);
        w.beginObject();
        w.key("point").string(hashHex(point));
        w.key("status").string(status);
        w.endObject();
        append(oneLine(line.str()));
    }

    void
    append(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!os_)
            return;
        os_ << line << '\n';
        os_.flush(); // each event survives a SIGKILL right after it
    }

    std::string path_;
    std::ofstream os_;
    std::mutex mutex_;
};

/**
 * Failures recorded by a prior run's journal, keyed by point hash. A
 * later "start"/"done" for the same point supersedes the failure (the
 * point was retried). Torn tail lines — the expected state after a
 * crash — are skipped.
 */
std::map<std::uint64_t, PointFailure>
loadJournalFailures(const std::string &path)
{
    std::map<std::uint64_t, PointFailure> failures;
    std::ifstream is(path);
    if (!is)
        return failures;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        try {
            const trace::JsonValue doc = trace::JsonValue::parse(line);
            if (!doc.isObject())
                continue;
            const trace::JsonValue *point = doc.find("point");
            const trace::JsonValue *status = doc.find("status");
            if (!point || !status)
                continue;
            const std::uint64_t hash = std::strtoull(
                point->asString().c_str(), nullptr, 16);
            if (status->asString() == "failed") {
                PointFailure f;
                f.hash = hash;
                if (const trace::JsonValue *l = doc.find("label"))
                    f.label = l->asString();
                if (const trace::JsonValue *e = doc.find("error"))
                    f.error = e->asString();
                if (const trace::JsonValue *a = doc.find("attempts"))
                    f.attempts = static_cast<unsigned>(a->asNumber());
                failures[hash] = f;
            } else {
                failures.erase(hash);
            }
        } catch (const std::exception &) {
            continue; // torn line from the interruption
        }
    }
    return failures;
}

void
writeFailureManifest(const std::string &path, std::uint64_t batch,
                     size_t points,
                     const std::vector<PointFailure> &failures)
{
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        warn("cannot write failure manifest %s", path.c_str());
        return;
    }
    trace::JsonWriter w(os);
    w.beginObject();
    w.key("schema").number(std::uint64_t(1));
    w.key("batch").string(hashHex(batch));
    w.key("points").number(std::uint64_t(points));
    w.key("failures").beginArray();
    for (const PointFailure &f : failures) {
        w.beginObject();
        w.key("point").string(hashHex(f.hash));
        w.key("label").string(f.label);
        w.key("error").string(f.error);
        w.key("attempts").number(std::uint64_t(f.attempts));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

SweepRunner::SweepRunner(const SweepConfig &config)
    : stats::StatGroup("sweep"),
      pointsTotal(this, "points_total", "sweep points submitted"),
      cacheHits(this, "cache_hits", "points served from the cache"),
      cacheMisses(this, "cache_misses", "points requiring simulation"),
      pointsFailed(this, "points_failed",
                   "simulated points that cannot operate"),
      pointsInfraFailed(this, "points_infra_failed",
                        "points lost to crashes/timeouts after retries"),
      pointsRetried(this, "points_retried",
                    "extra point attempts beyond the first"),
      pointsTimedOut(this, "points_timed_out",
                     "point deadlines that expired"),
      sweepSeconds(this, "sweep_seconds", "wall-clock spent in run()"),
      pointsPerSec(this, "points_per_sec", "lifetime sweep throughput",
                   [this] {
                       const double s = sweepSeconds.value();
                       return s > 0 ? pointsTotal.value() / s : 0.0;
                   }),
      cacheQuarantined(this, "cache_quarantined",
                       "invalid cache entries moved to quarantine",
                       [this] {
                           return static_cast<double>(
                               cache_.quarantined());
                       }),
      cacheWriteErrors(this, "cache_write_errors",
                       "cache stores that failed (entry not written)",
                       [this] {
                           return static_cast<double>(
                               cache_.writeErrors());
                       }),
      config_(config),
      cache_(config.cacheDir)
{
    if (config_.jobs) {
        ownedPool_ = std::make_unique<ThreadPool>(config_.jobs);
        pool_ = ownedPool_.get();
    } else {
        pool_ = &ThreadPool::global();
    }
}

namespace {
/** pid of the host-time track group in Chrome traces. */
constexpr int kHostTracePid = 100;
} // namespace

SweepRunner::~SweepRunner() = default;

SweepRunner &
SweepRunner::global()
{
    static SweepRunner runner;
    return runner;
}

void
SweepRunner::setRobust(const RobustConfig &robust)
{
    std::lock_guard<std::mutex> lock(robustMutex_);
    config_.robust = robust;
}

RobustConfig
SweepRunner::robust() const
{
    std::lock_guard<std::mutex> lock(robustMutex_);
    return config_.robust;
}

std::vector<PointFailure>
SweepRunner::lastFailures() const
{
    std::lock_guard<std::mutex> lock(failuresMutex_);
    return lastFailures_;
}

std::vector<PointFailure>
SweepRunner::allFailures() const
{
    std::lock_guard<std::mutex> lock(failuresMutex_);
    return allFailures_;
}

void
SweepRunner::setTraceWriter(telemetry::ChromeTraceWriter *writer)
{
    std::lock_guard<std::mutex> lock(traceMutex_);
    traceWriter_ = writer;
    hostLanes_.clear();
    if (writer) {
        writer->setProcessName(kHostTracePid, "sweep host time");
        writer->setThreadName(kHostTracePid, 0, "sweep main");
    }
}

int
SweepRunner::hostLaneFor(telemetry::ChromeTraceWriter &writer)
{
    std::lock_guard<std::mutex> lock(traceMutex_);
    auto [it, inserted] = hostLanes_.emplace(
        std::this_thread::get_id(),
        static_cast<int>(hostLanes_.size()) + 1);
    if (inserted) {
        writer.setThreadName(kHostTracePid, it->second,
                             "worker " + std::to_string(it->second));
    }
    return it->second;
}

namespace {

/** Short human label for trace slices and progress reporting. */
std::string
pointLabel(const SweepPoint &point)
{
    std::string benches;
    for (const std::string &name : point.benches) {
        if (!benches.empty())
            benches += "+";
        benches += name;
    }
    return benches + "/" + cpu::renamerKindName(point.kind) + "/" +
           std::to_string(point.physRegs);
}

/** Atomic tmp+rename write of a child's result document. */
bool
writeChildResult(const std::string &path, const std::string &doc)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        os << doc << '\n';
        os.flush();
        if (!os)
            return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    return !ec;
}

/**
 * Live sweep progress on stderr, opt-in via VCA_PROGRESS=1. On a TTY
 * the line rewrites in place; piped output gets occasional plain
 * lines instead. Aggregate host MIPS comes from the process-wide
 * HostStats accumulator the workers feed.
 */
struct SweepProgress
{
    bool enabled = false;
    bool tty = false;
    size_t total = 0;    ///< unique points in this batch
    size_t cached = 0;
    size_t toSimulate = 0;
    std::mutex mutex;
    size_t running = 0;
    size_t simulated = 0;
    size_t lastPrinted = SIZE_MAX;

    void
    init(size_t uniquePoints, size_t cacheHits)
    {
        const char *pv = std::getenv("VCA_PROGRESS");
        enabled = pv && *pv && std::strcmp(pv, "0") != 0;
        if (!enabled)
            return;
        tty = isatty(fileno(stderr)) != 0;
        total = uniquePoints;
        cached = cacheHits;
        toSimulate = uniquePoints - cacheHits;
        render(false);
    }

    void
    onStart()
    {
        if (!enabled)
            return;
        std::lock_guard<std::mutex> lock(mutex);
        ++running;
        if (tty)
            render(false);
    }

    void
    onFinish()
    {
        if (!enabled)
            return;
        std::lock_guard<std::mutex> lock(mutex);
        --running;
        ++simulated;
        // Piped output: only ~10 lines per batch.
        const size_t step = std::max<size_t>(1, toSimulate / 10);
        if (tty || simulated % step == 0 || simulated == toSimulate)
            render(false);
    }

    void
    finish()
    {
        if (!enabled)
            return;
        std::lock_guard<std::mutex> lock(mutex);
        render(true);
    }

    void
    render(bool final)
    {
        const size_t done = cached + simulated;
        if (!tty && !final && done == lastPrinted)
            return;
        lastPrinted = done;
        const double mips = stats::HostStats::global().simMips.value();
        std::fprintf(stderr,
                     "%ssweep: %zu/%zu done (%zu cached), %zu running, "
                     "%.1f MIPS%s",
                     tty ? "\r\x1b[K" : "", done, total, cached, running,
                     mips, tty && !final ? "" : "\n");
        std::fflush(stderr);
    }
};

} // namespace

Measurement
SweepRunner::executePoint(const SweepPoint &point) const
{
    RunOptions opts = point.opts;
    opts.seed = pointSeed(point);
    std::vector<const isa::Program *> programs;
    programs.reserve(point.benches.size());
    for (const std::string &name : point.benches) {
        programs.push_back(wload::cachedProgram(
            wload::profileByName(name), point.windowed));
    }
    return runTiming(programs, point.kind, point.physRegs, opts);
}

bool
SweepRunner::runIsolated(const SweepPoint &point,
                         const RobustConfig &robust, unsigned attempt,
                         Measurement &out, std::string &error,
                         bool &timedOut) const
{
    timedOut = false;
    const std::uint64_t hash = pointHash(point);
    std::ostringstream name;
    name << "vca-point-" << hashHex(hash) << "." << ::getpid() << "."
         << attempt << ".json";
    std::error_code ec;
    const std::string resultPath =
        (fs::temp_directory_path(ec) / name.str()).string();
    if (ec) {
        // No usable temp dir: isolation is impossible, fall through to
        // the in-process path (the retry loop treats this as success).
        out = executePoint(point);
        return true;
    }

    // Buffered stdio written before the fork must not be flushed twice
    // (once by each process) after it.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
        static std::atomic<bool> warnedFork{false};
        if (!warnedFork.exchange(true)) {
            warn("fork failed (%s); running sweep points in-process",
                 std::strerror(errno));
        }
        out = executePoint(point);
        return true;
    }
    if (pid == 0) {
        // Child. Only _exit() from here: exit() would run the parent's
        // atexit handlers and flush its inherited streams.
        const FaultInjector &fi = FaultInjector::global();
        if (fi.shouldFire(FaultSite::WorkerCrash, hash, attempt))
            ::_exit(113);
        if (fi.shouldFire(FaultSite::WorkerHang, hash, attempt)) {
            for (;;)
                ::pause();
        }
        int code = 0;
        try {
            // Host-time deltas around the simulation travel back in
            // the result file so isolation does not lose MIPS
            // accounting.
            const stats::HostStats &hs = stats::HostStats::global();
            const double sec0 = hs.simSeconds.value();
            const double insts0 = hs.simInsts.value();
            const double cycles0 = hs.simCycles.value();
            const double fsec0 = hs.funcSeconds.value();
            const double finsts0 = hs.funcInsts.value();
            const Measurement m = executePoint(point);
            std::ostringstream doc;
            trace::JsonWriter w(doc);
            w.beginObject();
            w.key("exec_ok").boolean(true);
            w.key("host").beginObject();
            w.key("seconds").number(hs.simSeconds.value() - sec0);
            w.key("insts").number(hs.simInsts.value() - insts0);
            w.key("cycles").number(hs.simCycles.value() - cycles0);
            w.endObject();
            w.key("func").beginObject();
            w.key("seconds").number(hs.funcSeconds.value() - fsec0);
            w.key("insts").number(hs.funcInsts.value() - finsts0);
            w.endObject();
            w.key("measurement");
            writeMeasurement(w, m);
            w.endObject();
            code = writeChildResult(resultPath, doc.str()) ? 0 : 112;
        } catch (const std::exception &e) {
            std::ostringstream doc;
            trace::JsonWriter w(doc);
            w.beginObject();
            w.key("exec_ok").boolean(false);
            w.key("error").string(e.what());
            w.endObject();
            code = writeChildResult(resultPath, doc.str()) ? 0 : 112;
        } catch (...) {
            code = 111;
        }
        ::_exit(code);
    }

    // Parent: reap with the optional deadline.
    const bool hasDeadline = robust.pointTimeoutSec > 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                hasDeadline ? robust.pointTimeoutSec : 0));
    int status = 0;
    for (;;) {
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid)
            break;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            error = std::string("waitpid failed: ") +
                    std::strerror(errno);
            ::kill(pid, SIGKILL);
            ::waitpid(pid, &status, 0);
            fs::remove(resultPath, ec);
            return false;
        }
        if (hasDeadline && std::chrono::steady_clock::now() >= deadline) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, &status, 0);
            timedOut = true;
            std::ostringstream msg;
            msg << "worker exceeded the " << robust.pointTimeoutSec
                << "s point deadline";
            error = msg.str();
            fs::remove(resultPath, ec);
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::ostringstream msg;
        if (WIFSIGNALED(status))
            msg << "worker killed by signal " << WTERMSIG(status);
        else
            msg << "worker exited with status " << WEXITSTATUS(status);
        error = msg.str();
        fs::remove(resultPath, ec);
        return false;
    }

    std::string text;
    {
        std::ifstream is(resultPath, std::ios::binary);
        if (!is) {
            error = "worker exited cleanly but left no result file";
            return false;
        }
        std::ostringstream buf;
        buf << is.rdbuf();
        text = buf.str();
    }
    fs::remove(resultPath, ec);
    try {
        const trace::JsonValue doc = trace::JsonValue::parse(text);
        const trace::JsonValue *execOk = doc.find("exec_ok");
        if (!execOk)
            fatal("missing exec_ok");
        if (!execOk->asBool()) {
            // The child caught a simulator exception. That path is
            // deterministic — a retry would fail identically — so
            // report it as a completed infra failure, not a retryable
            // crash.
            const trace::JsonValue *e = doc.find("error");
            out = Measurement{};
            out.ok = false;
            out.infra = true;
            out.error = e ? e->asString() : "unknown worker error";
            return true;
        }
        if (const trace::JsonValue *host = doc.find("host")) {
            const trace::JsonValue *sec = host->find("seconds");
            const trace::JsonValue *insts = host->find("insts");
            const trace::JsonValue *cycles = host->find("cycles");
            if (sec && insts && cycles && sec->asNumber() > 0) {
                stats::HostStats::global().record(sec->asNumber(),
                                                  insts->asNumber(),
                                                  cycles->asNumber());
            }
        }
        if (const trace::JsonValue *func = doc.find("func")) {
            const trace::JsonValue *sec = func->find("seconds");
            const trace::JsonValue *insts = func->find("insts");
            if (sec && insts && sec->asNumber() > 0) {
                stats::HostStats::global().recordFunctional(
                    sec->asNumber(), insts->asNumber());
            }
        }
        const trace::JsonValue *meas = doc.find("measurement");
        if (!meas)
            fatal("missing measurement");
        out = measurementFromValue(*meas);
        return true;
    } catch (const std::exception &e) {
        error = std::string("worker result unreadable: ") + e.what();
        return false;
    }
}

Measurement
SweepRunner::runPointAttempts(const SweepPoint &point,
                              const RobustConfig &robust,
                              unsigned &attempts,
                              unsigned &timeouts) const
{
    const unsigned maxAttempts = robust.retries + 1;
    std::string lastError = "point failed";
    attempts = 0;
    timeouts = 0;
    for (unsigned attempt = 0; attempt < maxAttempts; ++attempt) {
        attempts = attempt + 1;
        if (attempt > 0 && robust.backoffMs > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::uint64_t(robust.backoffMs) << (attempt - 1)));
        }
        if (robust.isolate) {
            Measurement m;
            std::string error;
            bool timedOut = false;
            if (runIsolated(point, robust, attempt, m, error, timedOut))
                return m;
            if (timedOut)
                ++timeouts;
            lastError = error;
            continue; // crash or deadline kill: retryable
        }
        try {
            return executePoint(point);
        } catch (const std::exception &e) {
            // runTiming absorbs FatalError itself; anything that
            // reaches here is a simulator bug. It is deterministic, so
            // an in-process retry would fail identically: fail the
            // point immediately, never the batch.
            Measurement m;
            m.ok = false;
            m.infra = true;
            m.error = e.what();
            return m;
        } catch (...) {
            Measurement m;
            m.ok = false;
            m.infra = true;
            m.error = "non-standard exception escaped the simulation";
            return m;
        }
    }
    Measurement m;
    m.ok = false;
    m.infra = true;
    m.error = lastError;
    return m;
}

std::vector<Measurement>
SweepRunner::run(const std::vector<SweepPoint> &points)
{
    const auto start = std::chrono::steady_clock::now();
    const RobustConfig robustCfg = robust();
    std::vector<Measurement> results(points.size());

    // Coalesce identical points: simulate (or load) each config once.
    struct Work
    {
        const SweepPoint *point;
        std::uint64_t hash;
        std::vector<size_t> slots;
    };
    std::vector<Work> unique;
    {
        std::map<std::string, size_t> byKey;
        for (size_t i = 0; i < points.size(); ++i) {
            std::string key = pointKey(points[i]);
            const std::uint64_t hash = fnv1a(key);
            auto [it, inserted] =
                byKey.emplace(std::move(key), unique.size());
            if (inserted)
                unique.push_back(Work{&points[i], hash, {}});
            unique[it->second].slots.push_back(i);
        }
    }
    pointsTotal += static_cast<double>(points.size());

    // The batch identity for journal/manifest names: FNV-1a over the
    // sorted unique point hashes (same value batchHash() computes,
    // without re-deriving every key).
    std::uint64_t batch = 0;
    {
        std::vector<std::string> hashes;
        hashes.reserve(unique.size());
        for (const Work &w : unique)
            hashes.push_back(hashHex(w.hash));
        std::sort(hashes.begin(), hashes.end());
        std::string all;
        for (const std::string &h : hashes) {
            all += h;
            all += '\n';
        }
        batch = fnv1a(all);
    }

    struct Latch
    {
        std::mutex mutex;
        std::condition_variable cv;
        size_t remaining = 0;
    } latch;
    std::uint64_t hits = 0, misses = 0, failed = 0;
    std::uint64_t infraFailed = 0, retried = 0, timedOut = 0;
    std::uint64_t replayed = 0;
    std::vector<PointFailure> failures;
    std::mutex statsMutex;

    telemetry::ChromeTraceWriter *tw;
    {
        std::lock_guard<std::mutex> lock(traceMutex_);
        tw = traceWriter_;
    }

    // Under --resume, failures a prior interrupted run already burned
    // a full retry budget on are replayed from the journal instead of
    // re-simulated. Must be read before the journal is recreated.
    std::map<std::uint64_t, PointFailure> priorFailed;
    if (cache_.enabled() && robustCfg.resume) {
        priorFailed =
            loadJournalFailures(journalPath(cache_.dir(), batch));
    }

    std::vector<const Work *> toRun;
    for (const Work &w : unique) {
        Measurement m;
        const double hitStart = tw ? tw->hostNowUs() : 0;
        if (cache_.load(*w.point, m)) {
            ++hits;
            if (tw) {
                tw->slice(kHostTracePid, 0, "hit " + pointLabel(*w.point),
                          hitStart, tw->hostNowUs() - hitStart);
            }
            for (size_t slot : w.slots)
                results[slot] = m;
        } else if (auto it = priorFailed.find(w.hash);
                   it != priorFailed.end()) {
            Measurement fm;
            fm.ok = false;
            fm.infra = true;
            fm.error = it->second.error;
            for (size_t slot : w.slots)
                results[slot] = fm;
            failures.push_back(it->second);
            ++replayed;
            ++infraFailed;
            ++failed;
        } else {
            ++misses;
            toRun.push_back(&w);
        }
    }
    latch.remaining = toRun.size();

    if (!toRun.empty() && robustCfg.pointTimeoutSec > 0 &&
        !robustCfg.isolate) {
        static std::atomic<bool> warnedTimeout{false};
        if (!warnedTimeout.exchange(true)) {
            warn("VCA_POINT_TIMEOUT has no effect without isolation "
                 "(an in-process worker thread cannot be killed "
                 "safely); set VCA_ISOLATE=1 to enforce deadlines");
        }
    }

    // The journal exists only while points are in flight, so a fully
    // warm batch costs nothing and leaves nothing behind.
    std::unique_ptr<SweepJournal> journal;
    if (cache_.enabled() && !toRun.empty()) {
        journal = std::make_unique<SweepJournal>(
            journalPath(cache_.dir(), batch), batch);
        // Replayed failures must survive into the fresh journal or a
        // second --resume would re-simulate them.
        for (const PointFailure &f : failures)
            journal->failed(f);
    }

    SweepProgress progress;
    progress.init(unique.size(), hits + replayed);

    for (const Work *w : toRun) {
        pool_->submit([this, w, &results, &latch, &statsMutex, &failed,
                       &infraFailed, &retried, &timedOut, &failures,
                       &journal, &robustCfg, tw, &progress] {
            progress.onStart();
            if (journal)
                journal->start(w->hash);
            const int lane = tw ? hostLaneFor(*tw) : 0;
            const double simStart = tw ? tw->hostNowUs() : 0;
            unsigned attempts = 1, pointTimeouts = 0;
            const Measurement m = runPointAttempts(
                *w->point, robustCfg, attempts, pointTimeouts);
            if (tw) {
                tw->slice(kHostTracePid, lane,
                          "sim " + pointLabel(*w->point), simStart,
                          tw->hostNowUs() - simStart);
            }
            // Infra failures are transient by definition — never
            // memoize one, or a crash would poison every later run.
            if (!m.infra)
                cache_.store(*w->point, m);
            for (size_t slot : w->slots)
                results[slot] = m;
            if (journal) {
                if (m.infra) {
                    journal->failed(PointFailure{pointLabel(*w->point),
                                                 w->hash, m.error,
                                                 attempts});
                } else {
                    journal->done(w->hash);
                }
            }
            {
                std::lock_guard<std::mutex> lock(statsMutex);
                if (!m.ok)
                    ++failed;
                if (m.infra) {
                    ++infraFailed;
                    failures.push_back(
                        PointFailure{pointLabel(*w->point), w->hash,
                                     m.error, attempts});
                }
                retried += attempts - 1;
                timedOut += pointTimeouts;
            }
            progress.onFinish();
            std::lock_guard<std::mutex> lock(latch.mutex);
            if (--latch.remaining == 0)
                latch.cv.notify_all();
        });
    }
    {
        std::unique_lock<std::mutex> lock(latch.mutex);
        latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
    }
    progress.finish();

    // Deterministic order for manifests, reports and tests regardless
    // of worker scheduling.
    std::sort(failures.begin(), failures.end(),
              [](const PointFailure &a, const PointFailure &b) {
                  return a.label != b.label ? a.label < b.label
                                            : a.hash < b.hash;
              });

    journal.reset(); // close before deciding its fate
    if (cache_.enabled()) {
        std::error_code ec;
        if (failures.empty()) {
            // Clean batch: nothing to resume, nothing to report. The
            // parent directories go too once empty, so a healthy
            // cache looks exactly as it did before journaling existed.
            const fs::path jpath = journalPath(cache_.dir(), batch);
            const fs::path mpath = manifestPath(cache_.dir(), batch);
            fs::remove(jpath, ec);
            fs::remove(jpath.parent_path(), ec); // rmdir, if empty
            fs::remove(mpath, ec);
            fs::remove(mpath.parent_path(), ec);
        } else {
            writeFailureManifest(manifestPath(cache_.dir(), batch),
                                 batch, points.size(), failures);
        }
    }

    {
        std::lock_guard<std::mutex> lock(failuresMutex_);
        lastFailures_ = failures;
        allFailures_.insert(allFailures_.end(), failures.begin(),
                            failures.end());
    }

    cacheHits += static_cast<double>(hits);
    cacheMisses += static_cast<double>(misses);
    pointsFailed += static_cast<double>(failed);
    pointsInfraFailed += static_cast<double>(infraFailed);
    pointsRetried += static_cast<double>(retried);
    pointsTimedOut += static_cast<double>(timedOut);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    sweepSeconds += seconds;

    const char *report = std::getenv("VCA_SWEEP_STATS");
    if (report && *report) {
        // Robustness columns appear only when nonzero, so the clean
        // path's report stays byte-identical to what it always was.
        std::string extra;
        char buf[96];
        if (infraFailed) {
            std::snprintf(buf, sizeof buf, ", %llu infra-failed",
                          (unsigned long long)infraFailed);
            extra += buf;
        }
        if (replayed) {
            std::snprintf(buf, sizeof buf, ", %llu replayed",
                          (unsigned long long)replayed);
            extra += buf;
        }
        if (retried) {
            std::snprintf(buf, sizeof buf, ", %llu retried",
                          (unsigned long long)retried);
            extra += buf;
        }
        std::fprintf(stderr,
                     "sweep: %zu points (%zu unique): %llu cache hits, "
                     "%llu simulated, %llu inoperable%s, %.2fs (%.1f "
                     "points/s)\n",
                     points.size(), unique.size(),
                     (unsigned long long)hits, (unsigned long long)misses,
                     (unsigned long long)failed, extra.c_str(), seconds,
                     seconds > 0 ? points.size() / seconds : 0.0);
    }
    return results;
}

Measurement
SweepRunner::runPoint(const SweepPoint &point)
{
    return run({point}).front();
}

} // namespace vca::analysis
