#include "stats/host_stats.hh"

namespace vca::stats {

HostStats::HostStats(StatGroup *parent)
    : StatGroup("host", parent),
      simSeconds(this, "sim_seconds",
                 "wall-clock seconds spent in detailed simulation"),
      simInsts(this, "sim_insts",
               "instructions committed by detailed simulation"),
      simCycles(this, "sim_cycles", "cycles simulated in detail"),
      simRuns(this, "sim_runs", "detailed simulations contributing"),
      simMips(this, "sim_mips",
              "simulated million instructions per host second",
              [this] {
                  const double s = simSeconds.value();
                  return s > 0 ? simInsts.value() / s / 1e6 : 0.0;
              }),
      cyclesPerSec(this, "sim_cycles_per_sec",
                   "simulated cycles per host second",
                   [this] {
                       const double s = simSeconds.value();
                       return s > 0 ? simCycles.value() / s : 0.0;
                   }),
      funcSeconds(this, "func_seconds",
                  "wall-clock seconds spent in functional simulation"),
      funcInsts(this, "func_insts",
                "instructions executed by the functional core"),
      funcRuns(this, "func_runs", "functional intervals contributing"),
      funcMips(this, "func_mips",
               "functional million instructions per host second",
               [this] {
                   const double s = funcSeconds.value();
                   return s > 0 ? funcInsts.value() / s / 1e6 : 0.0;
               })
{
}

void
HostStats::record(double seconds, double insts, double cycles)
{
    std::lock_guard<std::mutex> lock(mutex_);
    simSeconds += seconds;
    simInsts += insts;
    simCycles += cycles;
    ++simRuns;
}

void
HostStats::recordFunctional(double seconds, double insts)
{
    std::lock_guard<std::mutex> lock(mutex_);
    funcSeconds += seconds;
    funcInsts += insts;
    ++funcRuns;
}

HostStats &
HostStats::global()
{
    static HostStats stats;
    return stats;
}

} // namespace vca::stats
