/**
 * @file
 * Architectural state transfer queue (paper §2.2.2).
 *
 * A small FIFO holding spill and fill operations. Spills and fills
 * bypass the instruction queue and load/store queue: they need no
 * effective-address calculation, no memory disambiguation against
 * program loads/stores, and no data dependences on regular
 * instructions. Entries issue to data-cache ports left free by program
 * memory operations. At most writesPerCycle operations may be inserted
 * per cycle (Table 1: two), and the queue holds `entries` operations
 * (Table 1: four); rename stalls when either limit is hit.
 */

#ifndef VCA_CORE_ASTQ_HH
#define VCA_CORE_ASTQ_HH

#include <deque>

#include "cpu/renamer.hh"
#include "sim/types.hh"
#include "stats/statistics.hh"

namespace vca::core {

class Astq : public stats::StatGroup
{
  public:
    Astq(unsigned entries, unsigned writesPerCycle,
         stats::StatGroup *parent)
        : stats::StatGroup("astq", parent),
          spillsEnqueued(this, "spills", "spill operations enqueued"),
          fillsEnqueued(this, "fills", "fill operations enqueued"),
          fullStalls(this, "full_stalls",
                     "enqueue attempts rejected: queue full"),
          writeLimitStalls(this, "write_limit_stalls",
                           "enqueue attempts rejected: per-cycle limit"),
          occupancy(this, "occupancy", "queue occupancy when issuing",
                    0, entries + 1, entries + 1),
          entries_(entries), writesPerCycle_(writesPerCycle)
    {
    }

    void beginCycle() { writesThisCycle_ = 0; }

    /** Can `n` more operations be enqueued this cycle? */
    bool
    canEnqueue(unsigned n) const
    {
        return queue_.size() + n <= entries_ &&
               writesThisCycle_ + n <= writesPerCycle_;
    }

    /** Record why an enqueue could not happen (stat bookkeeping). */
    void
    noteRejected(unsigned n)
    {
        if (queue_.size() + n > entries_)
            ++fullStalls;
        else
            ++writeLimitStalls;
    }

    void
    enqueue(const cpu::TransferOp &op)
    {
        if (!canEnqueue(1))
            panic("ASTQ enqueue past limits");
        queue_.push_back(op);
        ++writesThisCycle_;
        if (op.isStore)
            ++spillsEnqueued;
        else
            ++fillsEnqueued;
    }

    /**
     * Enqueue bypassing the capacity and per-cycle limits. Used only
     * for RSID-replacement flushes (rare, and architecturally a
     * multi-cycle hardware sequence); the ops still drain through
     * data-cache ports at the normal rate.
     */
    void
    enqueueForce(const cpu::TransferOp &op)
    {
        queue_.push_back(op);
        if (op.isStore)
            ++spillsEnqueued;
        else
            ++fillsEnqueued;
    }

    bool empty() const { return queue_.empty(); }
    size_t size() const { return queue_.size(); }

    cpu::TransferOp
    pop()
    {
        if (queue_.empty())
            panic("ASTQ pop on empty queue");
        occupancy.sample(static_cast<double>(queue_.size()));
        cpu::TransferOp op = queue_.front();
        queue_.pop_front();
        return op;
    }

    stats::Scalar spillsEnqueued;
    stats::Scalar fillsEnqueued;
    stats::Scalar fullStalls;
    stats::Scalar writeLimitStalls;
    stats::Distribution occupancy;

  private:
    std::deque<cpu::TransferOp> queue_;
    unsigned entries_;
    unsigned writesPerCycle_;
    unsigned writesThisCycle_ = 0;
};

} // namespace vca::core

#endif // VCA_CORE_ASTQ_HH
