#include "cpu/tracer.hh"

#include <iomanip>
#include <memory>
#include <sstream>

namespace vca::cpu {

std::string
formatTraceLine(const OooCpu &cpu, const DynInst &inst,
                const TraceOptions &opts)
{
    std::ostringstream os;
    os << std::setw(10) << cpu.currentCycle() << ": T" << int(inst.tid)
       << " " << std::setw(7) << inst.pc << ": "
       << std::left << std::setw(24) << isa::disassemble(*inst.si)
       << std::right;
    if (opts.values && inst.si->hasDest) {
        os << " D=0x" << std::hex << inst.result << std::dec;
    }
    if (opts.memAddrs && inst.si->isMem() && inst.effAddrValid) {
        os << " A=0x" << std::hex << inst.effAddr << std::dec;
    }
    if (inst.mispredicted)
        os << " [mispredicted]";
    return os.str();
}

void
attachCommitTracer(OooCpu &cpu, std::ostream &os, TraceOptions opts)
{
    auto count = std::make_shared<InstCount>(0);
    cpu.setCommitHook([&cpu, &os, opts, count](const DynInst &inst) {
        if (opts.maxInsts && *count >= opts.maxInsts)
            return;
        ++*count;
        os << formatTraceLine(cpu, inst, opts) << '\n';
    });
}

} // namespace vca::cpu
