/**
 * @file
 * VRISC-64 architectural register definitions and ABI partition.
 *
 * VRISC-64 is the Alpha-like ISA this reproduction uses in place of the
 * paper's Alpha variant. It has 32 integer and 32 floating-point
 * registers. Following Section 3.1 of the paper, registers that
 * communicate values across a function call (stack pointer, argument and
 * return-value registers, the zero register) are *non-windowed*
 * ("global"); all others are *windowed* and change identity on
 * call/return when the program uses the windowed ABI.
 *
 * Integer ABI:
 *   r0        zero            global
 *   r1        ra              windowed (written into the callee's window)
 *   r2        sp              global
 *   r3        gp              global
 *   r4..r9    a0..a5 / rv=a0  global
 *   r10..r31  t/s registers   windowed
 * FP ABI:
 *   f0..f7    fa0..fa7        global
 *   f8..f31   ft/fs registers windowed
 */

#ifndef VCA_ISA_REGISTERS_HH
#define VCA_ISA_REGISTERS_HH

#include <cstdint>

#include "sim/types.hh"

namespace vca::isa {

/** Register class: integer or floating point. */
enum class RegClass : std::uint8_t { Int = 0, Float = 1 };

/** Number of architectural registers per class. */
constexpr unsigned numIntRegs = 32;
constexpr unsigned numFloatRegs = 32;
constexpr unsigned numArchRegs = numIntRegs + numFloatRegs;

/** Well-known integer registers. */
constexpr RegIndex regZero = 0;
constexpr RegIndex regRa = 1;
constexpr RegIndex regSp = 2;
constexpr RegIndex regGp = 3;
constexpr RegIndex regArg0 = 4;
constexpr RegIndex regArg5 = 9;
constexpr RegIndex regRv = 4;
constexpr RegIndex firstIntTemp = 10;

/** A (class, index) pair naming one architectural register. */
struct ArchReg
{
    RegClass cls = RegClass::Int;
    RegIndex idx = 0;

    bool operator==(const ArchReg &) const = default;
};

/** True if the register is windowed under the windowed ABI. */
constexpr bool
isWindowed(RegClass cls, RegIndex idx)
{
    if (cls == RegClass::Int)
        return idx == regRa || idx >= firstIntTemp;
    return idx >= 8;
}

/** Number of windowed registers in one window frame. */
constexpr unsigned numWindowedInt = 1 + (numIntRegs - firstIntTemp); // 23
constexpr unsigned numWindowedFloat = numFloatRegs - 8;              // 24
constexpr unsigned windowSlots = numWindowedInt + numWindowedFloat;  // 47

/** Number of global (non-windowed) registers. */
constexpr unsigned numGlobalInt = numIntRegs - numWindowedInt;   // 9
constexpr unsigned numGlobalFloat = numFloatRegs - numWindowedFloat; // 8
constexpr unsigned globalSlots = numGlobalInt + numGlobalFloat;  // 17

/**
 * Dense slot index of a register within its partition.
 *
 * Windowed registers get offsets 0..windowSlots-1 within a window frame;
 * global registers get offsets 0..globalSlots-1 within the global frame.
 * The mapping is a compile-time bijection used both by the VCA address
 * generation and by the conventional-window logical register file.
 */
constexpr unsigned
windowSlot(RegClass cls, RegIndex idx)
{
    if (cls == RegClass::Int)
        return idx == regRa ? 0u : 1u + (idx - firstIntTemp);
    return numWindowedInt + (idx - 8);
}

constexpr unsigned
globalSlot(RegClass cls, RegIndex idx)
{
    // Int globals are r0 and r2..r9 (r1 is windowed), packed densely.
    if (cls == RegClass::Int)
        return idx == 0 ? 0u : idx - 1;
    return numGlobalInt + idx; // f0..f7
}

/** Flat architectural index in [0, numArchRegs): ints then floats. */
constexpr unsigned
flatIndex(RegClass cls, RegIndex idx)
{
    return (cls == RegClass::Int ? 0u : numIntRegs) + idx;
}

constexpr ArchReg
fromFlatIndex(unsigned flat)
{
    if (flat < numIntRegs)
        return {RegClass::Int, static_cast<RegIndex>(flat)};
    return {RegClass::Float, static_cast<RegIndex>(flat - numIntRegs)};
}

} // namespace vca::isa

#endif // VCA_ISA_REGISTERS_HH
