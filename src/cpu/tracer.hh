/**
 * @file
 * Commit-stream tracing (M5's Exec trace flavour): one line per
 * committed instruction with cycle, thread, pc, disassembly, and the
 * produced value / effective address. Installed through the CPU's
 * commit hook, so it composes with nothing else using that hook.
 */

#ifndef VCA_CPU_TRACER_HH
#define VCA_CPU_TRACER_HH

#include <ostream>

#include "cpu/ooo_cpu.hh"

namespace vca::cpu {

struct TraceOptions
{
    InstCount maxInsts = 0; ///< stop tracing after this many (0 = all)
    bool values = true;     ///< print destination values
    bool memAddrs = true;   ///< print load/store effective addresses
};

/**
 * Attach a commit tracer to the core. Replaces any existing commit
 * hook. The stream must outlive the core.
 */
void attachCommitTracer(OooCpu &cpu, std::ostream &os,
                        TraceOptions opts = {});

/** Format one committed instruction as a trace line (no newline). */
std::string formatTraceLine(const OooCpu &cpu, const DynInst &inst,
                            const TraceOptions &opts);

} // namespace vca::cpu

#endif // VCA_CPU_TRACER_HH
