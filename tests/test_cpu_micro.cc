/**
 * @file
 * Targeted microarchitecture tests: store-to-load forwarding and
 * memory disambiguation, the post-commit store buffer, SMT fetch
 * fairness (ICOUNT), window-renamer depth bookkeeping, and latency
 * plumbing (cache hit latency visible in execution time).
 */

#include <gtest/gtest.h>

#include "cpu/conv_renamer.hh"
#include "cpu/ooo_cpu.hh"
#include "wload/asm_builder.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace {

using namespace vca;
using namespace vca::cpu;
using wload::AsmBuilder;

isa::Program
fromBuilder(AsmBuilder &b, bool windowed = false)
{
    isa::Program p;
    p.name = "micro";
    p.windowedAbi = windowed;
    p.code = b.seal();
    p.finalize();
    return p;
}

CpuParams
basicParams(RenamerKind kind = RenamerKind::Baseline,
            unsigned regs = 256, unsigned threads = 1)
{
    return CpuParams::preset(kind, regs, threads);
}

/** Run to halt and return the final value of r20 (via commit hook). */
std::uint64_t
runForR20(const isa::Program &prog, const CpuParams &params)
{
    OooCpu cpu(params, {&prog});
    std::uint64_t last = 0;
    cpu.addCommitListener([&](const DynInst &inst) {
        if (inst.si->hasDest && inst.si->dest.cls == isa::RegClass::Int &&
            inst.si->dest.idx == 20) {
            last = inst.result;
        }
    });
    cpu.run(1'000'000, 2'000'000);
    EXPECT_TRUE(cpu.threadDone(0));
    return last;
}

// ---------------------------------------------------------------------
// Store-to-load forwarding / disambiguation
// ---------------------------------------------------------------------

TEST(LsqMicro, LoadSeesInFlightStore)
{
    // The load issues while the store is still in the SQ: forwarding
    // must deliver the new value, not memory's stale one.
    AsmBuilder b;
    b.li(2, 0x2000'0000);
    b.addi(10, isa::regZero, 1111);
    b.st(2, 10, 0);
    b.ld(20, 2, 0); // must forward 1111
    b.halt();
    isa::Program p = fromBuilder(b);
    EXPECT_EQ(runForR20(p, basicParams()), 1111u);
}

TEST(LsqMicro, YoungestOlderStoreWins)
{
    AsmBuilder b;
    b.li(2, 0x2000'0000);
    b.addi(10, isa::regZero, 1);
    b.addi(11, isa::regZero, 2);
    b.st(2, 10, 0);
    b.st(2, 11, 0); // younger store, same address
    b.ld(20, 2, 0); // must see 2
    b.halt();
    isa::Program p = fromBuilder(b);
    EXPECT_EQ(runForR20(p, basicParams()), 2u);
}

TEST(LsqMicro, LoadWaitsForUnresolvedStoreAddress)
{
    // The store's address depends on a long-latency chain (divs); a
    // younger load to that address must still get the stored value.
    AsmBuilder b;
    b.li(2, 0x2000'0000);
    b.addi(10, isa::regZero, 4096);
    b.addi(11, isa::regZero, 2);
    b.emitR(isa::Opcode::Div, 12, 10, 11);  // 2048
    b.emitR(isa::Opcode::Div, 12, 12, 11);  // 1024
    b.emitR(isa::Opcode::Add, 13, 2, 12);   // late-known address
    b.addi(14, isa::regZero, 777);
    b.st(13, 14, 0);                        // store @ base+1024
    b.ld(20, 2, 1024);                      // same address, load early
    b.halt();
    isa::Program p = fromBuilder(b);
    EXPECT_EQ(runForR20(p, basicParams()), 777u);
}

TEST(LsqMicro, ForwardingCountsAsDcacheAccessAndStat)
{
    AsmBuilder b;
    b.li(2, 0x2000'0000);
    b.addi(10, isa::regZero, 5);
    auto loop = b.newLabel();
    b.addi(13, isa::regZero, 50);
    b.bind(loop);
    b.st(2, 10, 0);
    b.ld(20, 2, 0);
    b.addi(13, 13, -1);
    b.branch(isa::Opcode::Bne, 13, isa::regZero, loop);
    b.halt();
    isa::Program p = fromBuilder(b);
    OooCpu cpu(basicParams(), {&p});
    cpu.run(1'000'000, 1'000'000);
    EXPECT_GT(cpu.loadForwards.value(), 10.0);
    // Forwarded loads still probe the cache (they consume a port and
    // are counted, as on real hardware).
    EXPECT_GE(cpu.memSystem().dcache().accesses.value(),
              cpu.loadForwards.value());
}

// ---------------------------------------------------------------------
// Store buffer
// ---------------------------------------------------------------------

TEST(StoreBuffer, CommitStallsWhenFull)
{
    // A burst of stores with a tiny store buffer must still complete
    // correctly (commit throttles on the buffer).
    AsmBuilder b;
    b.li(2, 0x2000'0000);
    for (int i = 0; i < 48; ++i)
        b.st(2, 2, 8 * (i % 16));
    b.addi(20, isa::regZero, 99);
    b.halt();
    isa::Program p = fromBuilder(b);
    CpuParams params = basicParams();
    params.storeBufferSize = 2;
    EXPECT_EQ(runForR20(p, params), 99u);
}

// ---------------------------------------------------------------------
// SMT fetch fairness
// ---------------------------------------------------------------------

TEST(SmtMicro, IcountKeepsThreadsBalanced)
{
    const isa::Program *a = wload::cachedProgram(
        wload::profileByName("crafty"), false);
    const isa::Program *bprog = wload::cachedProgram(
        wload::profileByName("gzip_graphic"), false);
    OooCpu cpu(basicParams(RenamerKind::Baseline, 320, 2), {a, bprog});
    auto res = cpu.run(40'000, 2'000'000, true);
    // Integer workloads of comparable weight: ICOUNT must keep both
    // threads progressing (no starvation), within a factor of ~4.
    const double r = double(res.threadInsts[0]) /
                     double(std::max<InstCount>(1, res.threadInsts[1]));
    EXPECT_GT(r, 0.25);
    EXPECT_LT(r, 4.0);
}

TEST(SmtMicro, HaltedThreadFreesBandwidth)
{
    // Thread 0 halts immediately; thread 1 must still make progress.
    AsmBuilder b;
    b.halt();
    isa::Program tiny = fromBuilder(b);
    const isa::Program *big = wload::cachedProgram(
        wload::profileByName("crafty"), false);
    OooCpu cpu(basicParams(RenamerKind::Baseline, 320, 2),
               {&tiny, big});
    auto res = cpu.run(20'000, 2'000'000);
    EXPECT_TRUE(cpu.threadDone(0));
    EXPECT_GE(res.threadInsts[1], 20'000u);
}

// ---------------------------------------------------------------------
// Cache latency plumbing
// ---------------------------------------------------------------------

TEST(LatencyMicro, DependentLoadChainSeesHitLatency)
{
    // A pointer-chase over an L1-resident cycle: per-iteration time
    // must be at least the 3-cycle hit latency (plus AGU).
    AsmBuilder b;
    b.li(2, 0x2000'0000);
    // Build a 2-node pointer cycle in memory via stores.
    b.li(10, 0x2000'0040);
    b.st(2, 10, 0);   // [base] -> base+0x40
    b.st(10, 2, 0);   // [base+0x40] -> base
    b.mov(12, 2);
    b.addi(13, isa::regZero, 200);
    auto loop = b.newLabel();
    b.bind(loop);
    b.ld(12, 12, 0); // serialized chase
    b.addi(13, 13, -1);
    b.branch(isa::Opcode::Bne, 13, isa::regZero, loop);
    b.mov(20, 12);
    b.halt();
    isa::Program p = fromBuilder(b);
    OooCpu cpu(basicParams(), {&p});
    auto res = cpu.run(1'000'000, 1'000'000);
    ASSERT_TRUE(cpu.threadDone(0));
    // 200 serialized loads at >= 4 cycles each.
    EXPECT_GT(res.cycles, 200u * 4);
}

// ---------------------------------------------------------------------
// Conventional window renamer bookkeeping
// ---------------------------------------------------------------------

TEST(WindowMicro, TrapCountsScaleWithDepthBeyondCapacity)
{
    // A recursion of depth D on a k-window machine overflow-traps
    // (D - k) times on the way down and underflow-traps (D - k) times
    // on the way back up, once per complete descent.
    AsmBuilder b;
    auto fn = b.newLabel();
    b.addi(4, isa::regZero, 8); // depth 8
    b.call(fn);
    b.halt();
    b.bind(fn);
    auto done = b.newLabel();
    b.addi(5, isa::regZero, 1);
    b.branch(isa::Opcode::Blt, 4, 5, done);
    b.addi(10, 4, 0);  // touch a windowed local (dirty)
    b.addi(4, 4, -1);
    b.call(fn);
    b.mov(4, 10);
    b.bind(done);
    b.ret();
    isa::Program p = fromBuilder(b, true);

    CpuParams params = basicParams(RenamerKind::ConvWindow, 192);
    // (192 - 17 - 64) / 47 = 2 windows.
    OooCpu cpu(params, {&p});
    cpu.run(1'000'000, 1'000'000);
    ASSERT_TRUE(cpu.threadDone(0));
    auto *wr = dynamic_cast<WindowConvRenamer *>(&cpu.renamer());
    ASSERT_NE(wr, nullptr);
    ASSERT_EQ(wr->numWindows(), 2u);
    // Frames: main + fn(n=8..0) = 10 live frames on 2 windows:
    // 8 overflows on the way down, 8 underflows unwinding.
    EXPECT_DOUBLE_EQ(wr->overflowTraps.value(), 8.0);
    EXPECT_DOUBLE_EQ(wr->underflowTraps.value(), 8.0);
    // Underflows restore whole windows (47 registers each).
    EXPECT_DOUBLE_EQ(wr->windowRestores.value(),
                     8.0 * isa::windowSlots);
    // Overflows save only dirty registers: far fewer.
    EXPECT_LT(wr->windowSaves.value(), wr->windowRestores.value());
    EXPECT_GT(wr->windowSaves.value(), 0.0);
}

TEST(WindowMicro, RenamerValidateAfterTrapStorm)
{
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("perlbmk_535"), true);
    CpuParams params = basicParams(RenamerKind::ConvWindow, 128);
    OooCpu cpu(params, {prog});
    cpu.run(30'000, 4'000'000);
    auto *wr = dynamic_cast<WindowConvRenamer *>(&cpu.renamer());
    ASSERT_NE(wr, nullptr);
    EXPECT_EQ(wr->numWindows(), 1u) << "128 regs fit exactly one window";
    EXPECT_GT(wr->overflowTraps.value(), 100.0)
        << "k=1 must thrash on a call-heavy benchmark";
    cpu.renamer().validate();
}

// ---------------------------------------------------------------------
// Occupancy statistics
// ---------------------------------------------------------------------

TEST(OccupancyStats, SampledEveryCycle)
{
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("crafty"), false);
    OooCpu cpu(basicParams(), {prog});
    auto res = cpu.run(20'000, 1'000'000);
    EXPECT_EQ(cpu.robOccupancyDist.totalSamples(),
              static_cast<std::uint64_t>(res.cycles));
    EXPECT_GT(cpu.robOccupancyDist.mean(), 1.0);
    EXPECT_LE(cpu.robOccupancyDist.maxSampled(), 192.0);
    EXPECT_LE(cpu.iqOccupancyDist.maxSampled(), 128.0);
}

} // namespace
