#include "telemetry/chrome_trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "sim/logging.hh"

namespace vca::telemetry {

namespace {

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
renderNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    // Timestamps are integral microseconds in practice; keep them
    // compact but preserve sub-microsecond precision when present.
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(std::string path)
    : path_(std::move(path)), epoch_(std::chrono::steady_clock::now())
{
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    finish();
}

void
ChromeTraceWriter::push(Event ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        return;
    events_.push_back(std::move(ev));
}

void
ChromeTraceWriter::begin(int pid, int tid, const std::string &name,
                         double ts, std::string args)
{
    push({pid, tid, ts, 'B', name, std::move(args)});
}

void
ChromeTraceWriter::end(int pid, int tid, double ts)
{
    push({pid, tid, ts, 'E', "", ""});
}

void
ChromeTraceWriter::slice(int pid, int tid, const std::string &name,
                         double ts, double dur, std::string args)
{
    begin(pid, tid, name, ts, std::move(args));
    end(pid, tid, ts + (dur < 0 ? 0 : dur));
}

void
ChromeTraceWriter::instant(int pid, int tid, const std::string &name,
                           double ts, std::string args)
{
    push({pid, tid, ts, 'i', name, std::move(args)});
}

void
ChromeTraceWriter::counter(int pid, int tid, const std::string &name,
                           double ts,
                           const std::vector<std::pair<std::string, double>>
                               &values)
{
    std::string args = "{";
    bool first = true;
    for (const auto &[k, v] : values) {
        if (!first)
            args += ",";
        first = false;
        args += "\"" + escapeJson(k) + "\":" + renderNumber(v);
    }
    args += "}";
    push({pid, tid, ts, 'C', name, std::move(args)});
}

void
ChromeTraceWriter::setProcessName(int pid, const std::string &name)
{
    push({pid, 0, 0.0, 'M', "process_name",
          "{\"name\":\"" + escapeJson(name) + "\"}"});
}

void
ChromeTraceWriter::setThreadName(int pid, int tid, const std::string &name)
{
    push({pid, tid, 0.0, 'M', "thread_name",
          "{\"name\":\"" + escapeJson(name) + "\"}"});
}

double
ChromeTraceWriter::hostNowUs() const
{
    using namespace std::chrono;
    return static_cast<double>(
        duration_cast<microseconds>(steady_clock::now() - epoch_).count());
}

std::uint64_t
ChromeTraceWriter::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

bool
ChromeTraceWriter::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        return true;
    finished_ = true;

    // Metadata first, then (pid, tid, ts); stable so same-timestamp
    // B/E pairs keep insertion order and nest correctly.
    std::stable_sort(events_.begin(), events_.end(),
                     [](const Event &a, const Event &b) {
                         const bool am = a.ph == 'M';
                         const bool bm = b.ph == 'M';
                         if (am != bm)
                             return am;
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.ts < b.ts;
                     });

    std::ofstream os(path_, std::ios::binary);
    if (!os) {
        warn("chrome-trace: cannot open '%s' for writing", path_.c_str());
        return false;
    }
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    for (const Event &ev : events_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"" << escapeJson(ev.name) << "\",\"ph\":\""
           << ev.ph << "\",\"ts\":" << renderNumber(ev.ts)
           << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
        if (ev.ph == 'i')
            os << ",\"s\":\"t\"";
        if (!ev.args.empty())
            os << ",\"args\":" << ev.args;
        os << "}";
    }
    os << "\n]}\n";
    os.flush();
    if (!os) {
        warn("chrome-trace: write to '%s' failed", path_.c_str());
        return false;
    }
    return true;
}

} // namespace vca::telemetry
