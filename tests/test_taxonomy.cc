/**
 * @file
 * Partition invariants of the hierarchical cycle taxonomy (ctest
 * label: observability).
 *
 * The contract behind vca-explain's exact attribution: on every
 * architecture and thread count, the machine-level taxonomy leaves
 * sum exactly to cpu.cycles, every per-thread subtree independently
 * sums exactly to cpu.cycles, and each tree leaf refines exactly one
 * flat commit-stall bucket (the six equalities documented on
 * CycleAccounting). All of it must survive a stat reset.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cpu/ooo_cpu.hh"
#include "cpu/params.hh"
#include "sim/logging.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace {

using namespace vca;
using cpu::RenamerKind;

struct Config
{
    const char *name;
    RenamerKind kind;
    unsigned physRegs;
    unsigned threads;
};

// The conventional register-window renamer needs more physical
// registers than the 128 logical ones, hence the larger files.
const Config kConfigs[] = {
    {"baseline/256/1t", RenamerKind::Baseline, 256, 1},
    {"ideal/192/1t", RenamerKind::IdealWindow, 192, 1},
    {"regwindow/192/1t", RenamerKind::ConvWindow, 192, 1},
    {"vca/192/1t", RenamerKind::Vca, 192, 1},
    {"baseline/320/2t", RenamerKind::Baseline, 320, 2},
    {"ideal/256/2t", RenamerKind::IdealWindow, 256, 2},
    {"vca/192/2t", RenamerKind::Vca, 192, 2},
};

bool
windowedBinary(RenamerKind kind)
{
    return kind != RenamerKind::Baseline;
}

std::unique_ptr<cpu::OooCpu>
makeCpu(const Config &config)
{
    static const char *benches[] = {"crafty", "mesa"};
    std::vector<const isa::Program *> programs;
    for (unsigned t = 0; t < config.threads; ++t)
        programs.push_back(wload::cachedProgram(
            wload::profileByName(benches[t]),
            windowedBinary(config.kind)));
    cpu::CpuParams params = cpu::CpuParams::preset(
        config.kind, config.physRegs, config.threads);
    return std::make_unique<cpu::OooCpu>(params, programs);
}

void
expectPartition(const cpu::OooCpu &cpu, const std::string &where)
{
    const double cycles = cpu.numCycles.value();
    const auto &ca = cpu.cycleAccounting;
    const auto &tax = ca.taxonomy;

    EXPECT_GT(cycles, 0.0) << where;
    EXPECT_DOUBLE_EQ(tax.leafSum(), cycles)
        << where << ": machine taxonomy must partition cpu.cycles";
    for (unsigned t = 0; t < tax.numThreads(); ++t)
        EXPECT_DOUBLE_EQ(tax.thread(t).leafSum(), cycles)
            << where << ": thread" << t
            << " taxonomy must partition cpu.cycles";

    // Each tree leaf refines exactly one flat bucket.
    EXPECT_DOUBLE_EQ(tax.retiring.value(), ca.commitActive.value())
        << where;
    EXPECT_DOUBLE_EQ(tax.icache.value() + tax.fetch.value(),
                     ca.frontendStall.value())
        << where;
    EXPECT_DOUBLE_EQ(tax.recovery.value() + tax.windowTrap.value(),
                     ca.windowShift.value())
        << where;
    EXPECT_DOUBLE_EQ(tax.exec.value() + tax.fillLatency.value(),
                     ca.execStall.value())
        << where;
    EXPECT_DOUBLE_EQ(tax.dcache.value() + tax.storeDrain.value(),
                     ca.memStall.value())
        << where;
    EXPECT_DOUBLE_EQ(tax.spillStall.value() +
                         tax.renameFreeList.value(),
                     ca.renameFreeList.value())
        << where;
    // The machine-level tree has no idle: some thread always owns
    // the cycle's classification while the simulation is running.
    EXPECT_DOUBLE_EQ(tax.idle.value(), 0.0) << where;
}

TEST(CycleTaxonomy, LeavesPartitionCyclesOnEveryArchitecture)
{
#ifdef VCA_NTELEMETRY
    GTEST_SKIP() << "taxonomy updates compiled out "
                    "(-DVCA_NTELEMETRY=ON)";
#endif
    for (const Config &config : kConfigs) {
        SCOPED_TRACE(config.name);
        auto cpu = makeCpu(config);
        cpu->run(20'000, 2'000'000);
        expectPartition(*cpu, config.name);
    }
}

TEST(CycleTaxonomy, TwoThreadConvWindowsStayInoperable)
{
    // The conventional register-window machine cannot run SMT at any
    // register-file size: its logical space (globals + every window,
    // per thread) grows with the physical file, so the "more physical
    // than logical registers" requirement is unsatisfiable -- the
    // paper's "No Baseline" cases. Pin that down so the taxonomy
    // matrix above documents why it has no regwindow/2t row.
    for (unsigned regs : {192u, 384u, 640u})
        EXPECT_THROW(makeCpu({"regwindow/2t", RenamerKind::ConvWindow,
                              regs, 2}),
                     FatalError);
}

TEST(CycleTaxonomy, PartitionSurvivesStatReset)
{
#ifdef VCA_NTELEMETRY
    GTEST_SKIP() << "taxonomy updates compiled out "
                    "(-DVCA_NTELEMETRY=ON)";
#endif
    for (const Config &config : {kConfigs[2], kConfigs[3]}) {
        SCOPED_TRACE(config.name);
        auto cpu = makeCpu(config);
        cpu->run(5'000, 500'000);
        cpu->resetStats();

        EXPECT_DOUBLE_EQ(cpu->cycleAccounting.taxonomy.leafSum(), 0.0)
            << "reset must zero the whole taxonomy subtree";
        for (unsigned t = 0;
             t < cpu->cycleAccounting.taxonomy.numThreads(); ++t)
            EXPECT_DOUBLE_EQ(
                cpu->cycleAccounting.taxonomy.thread(t).leafSum(),
                0.0);

        // The measured interval after the reset re-establishes the
        // partition from a clean slate (the vca-sim warmup pattern).
        cpu->run(15'000, 1'500'000);
        expectPartition(*cpu, std::string(config.name) +
                                  " after reset");
    }
}

TEST(CycleTaxonomy, VcaActivatesItsSpecificLeaves)
{
#ifdef VCA_NTELEMETRY
    GTEST_SKIP() << "taxonomy updates compiled out "
                    "(-DVCA_NTELEMETRY=ON)";
#endif
    // Under heavy register pressure the VCA-specific leaves must see
    // traffic: fill latency at the ROB head is a renamer-architecture
    // effect no generic top-down taxonomy would expose.
    Config config{"vca/40/1t", RenamerKind::Vca, 40, 1};
    auto cpu = makeCpu(config);
    cpu->run(30'000, 3'000'000);
    expectPartition(*cpu, config.name);
    EXPECT_GT(cpu->cycleAccounting.taxonomy.fillLatency.value(), 0.0)
        << "a 40-register VCA file must stall on in-flight fills";
}

} // namespace
