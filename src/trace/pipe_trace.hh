/**
 * @file
 * Per-instruction pipeline event traces in gem5's O3PipeView format.
 *
 * Each committed instruction emits one record of stage timestamps:
 *
 *   O3PipeView:fetch:<tick>:0x<pc>:<tid>:<seq>:<disasm>
 *   O3PipeView:decode:<tick>
 *   O3PipeView:rename:<tick>
 *   O3PipeView:dispatch:<tick>
 *   O3PipeView:issue:<tick>
 *   O3PipeView:complete:<tick>
 *   O3PipeView:retire:<tick>:store:<store-writeback-tick>
 *
 * Ticks are cycles scaled by ticksPerCycle (default 1000, matching
 * gem5's picosecond ticks at 1 GHz) so the traces feed gem5's
 * o3-pipeview.py as well as the bundled tools/vca_pipeview renderer.
 * Records appear in commit order; squashed instructions never retire
 * and are not recorded.
 */

#ifndef VCA_TRACE_PIPE_TRACE_HH
#define VCA_TRACE_PIPE_TRACE_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace vca::trace {

/** Stage timestamps (in cycles) of one committed instruction. */
struct PipeRecord
{
    std::uint64_t seq = 0;
    unsigned tid = 0;
    Addr pc = 0;
    Cycle fetch = 0;
    Cycle decode = 0;
    Cycle rename = 0;
    Cycle dispatch = 0;
    Cycle issue = 0;
    Cycle complete = 0;
    Cycle commit = 0;
    bool isStore = false;
    Cycle storeComplete = 0; ///< store-buffer writeback (0 = n/a)
    std::string disasm;

    /** Stage timestamps must be non-decreasing through the pipe. */
    bool
    monotonic() const
    {
        return fetch <= decode && decode <= rename &&
               rename <= dispatch && dispatch <= issue &&
               issue <= complete && complete <= commit;
    }
};

/** Streams PipeRecords as O3PipeView text. */
class PipeTraceWriter
{
  public:
    explicit PipeTraceWriter(std::ostream &os,
                             Cycle ticksPerCycle = 1000)
        : os_(os), scale_(ticksPerCycle) {}

    void write(const PipeRecord &rec);

    /**
     * Emit a standalone instant record between instruction records:
     *
     *   O3PipeView:instant:<tick>:<label>
     *
     * Used for telemetry marks (window traps, spill/fill bursts).
     * parsePipeTrace counts and skips these — like any record type it
     * does not know — so the traces stay loadable by older tools.
     */
    void instant(const std::string &label, Cycle when);

    std::uint64_t recordsWritten() const { return written_; }
    std::uint64_t instantsWritten() const { return instants_; }

  private:
    std::ostream &os_;
    Cycle scale_;
    std::uint64_t written_ = 0;
    std::uint64_t instants_ = 0;
};

/**
 * Parse an O3PipeView trace back into records (tools, tests).
 * Unrelated lines are skipped; a malformed record sets *error and
 * returns false. Ticks are divided by ticksPerCycle. O3PipeView lines
 * of unknown record type (e.g. "instant" telemetry marks) are skipped
 * and counted into *unknownRecords when given.
 */
bool parsePipeTrace(std::istream &is, std::vector<PipeRecord> &out,
                    std::string *error = nullptr,
                    Cycle ticksPerCycle = 1000,
                    std::uint64_t *unknownRecords = nullptr);

} // namespace vca::trace

#endif // VCA_TRACE_PIPE_TRACE_HH
