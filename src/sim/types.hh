/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef VCA_SIM_TYPES_HH
#define VCA_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace vca {

/** A memory address in the simulated machine (byte granularity). */
using Addr = std::uint64_t;

/** A simulated clock cycle count. */
using Cycle = std::uint64_t;

/** A count of dynamic instructions. */
using InstCount = std::uint64_t;

/** An architectural (logical) register index within its class. */
using RegIndex = std::uint16_t;

/** A physical register index. */
using PhysRegIndex = std::int32_t;

/** A hardware thread identifier. */
using ThreadId = std::uint8_t;

/** Sentinel physical register meaning "no register". */
constexpr PhysRegIndex invalidPhysReg = -1;

/** Sentinel address used for "no address". */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Maximum number of hardware threads any structure must support. */
constexpr unsigned maxThreads = 8;

} // namespace vca

#endif // VCA_SIM_TYPES_HH
