/**
 * @file
 * Performance-harness regression tests (ctest label: perf).
 *
 * These pin down the plumbing the simulated-MIPS trajectory depends
 * on, not absolute speed (wall-clock assertions on shared CI hardware
 * only produce flakes):
 *  - runTiming() feeds the process-wide host StatGroup, and the
 *    instrumentation does not perturb simulated results (a scaled-down
 *    sim run twice is bit-identical);
 *  - a warm sweep is pure cache hits: zero detailed simulations, zero
 *    new host-stat intervals (runTimingCallCount() is the witness);
 *  - the host group round-trips through the stats JSON export with
 *    internally consistent derived values, which is the contract
 *    scripts/perf_compare.py reads from BENCH_*.json.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "analysis/runner.hh"
#include "sim/logging.hh"
#include "stats/host_stats.hh"
#include "trace/json.hh"
#include "trace/stats_json.hh"
#include "wload/profile.hh"

namespace {

using namespace vca;
using namespace vca::analysis;

RunOptions
smallOptions()
{
    RunOptions opts;
    opts.warmupInsts = 1'000;
    opts.measureInsts = 20'000;
    return opts;
}

TEST(PerfHarness, HostStatsAccumulatePerDetailedSim)
{
    setQuiet(true);
    auto &host = stats::HostStats::global();
    const double runsBefore = host.simRuns.value();
    const double secondsBefore = host.simSeconds.value();
    const double instsBefore = host.simInsts.value();

    const auto first = runBench(wload::profileByName("crafty"),
                                cpu::RenamerKind::Vca, 160,
                                smallOptions());
    ASSERT_TRUE(first.ok);
    EXPECT_EQ(host.simRuns.value(), runsBefore + 1);
    EXPECT_GT(host.simSeconds.value(), secondsBefore);
    // Warmup + measured interval both count.
    EXPECT_GE(host.simInsts.value() - instsBefore, 21'000.0);

    // The host-side timing must not leak into simulated numbers.
    const auto second = runBench(wload::profileByName("crafty"),
                                 cpu::RenamerKind::Vca, 160,
                                 smallOptions());
    EXPECT_TRUE(first == second)
        << "host instrumentation perturbed a deterministic sim";
    EXPECT_EQ(host.simRuns.value(), runsBefore + 2);
}

TEST(PerfHarness, WarmSweepRunsZeroDetailedSims)
{
    setQuiet(true);
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "vca_perf_test_cache";
    fs::remove_all(dir);

    SweepConfig config;
    config.jobs = 2;
    config.cacheDir = dir.string();
    std::vector<SweepPoint> points;
    for (unsigned regs : {128u, 160u, 192u})
        points.push_back(makePoint("crafty", cpu::RenamerKind::Vca,
                                   regs, smallOptions()));

    SweepRunner cold(config);
    const auto first = cold.run(points);
    EXPECT_EQ(cold.cacheMisses.value(), double(points.size()));

    // The whole point of the result cache: repeating a sweep costs no
    // detailed simulation — and therefore no host-stat intervals.
    const std::uint64_t simsBefore = runTimingCallCount();
    const double hostRunsBefore =
        stats::HostStats::global().simRuns.value();
    SweepRunner warm(config);
    const auto second = warm.run(points);
    EXPECT_EQ(runTimingCallCount(), simsBefore)
        << "warm sweep must be pure cache hits";
    EXPECT_EQ(stats::HostStats::global().simRuns.value(),
              hostRunsBefore)
        << "cache hits must not fabricate host-throughput intervals";
    EXPECT_EQ(warm.cacheHits.value(), double(points.size()));
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_TRUE(first[i] == second[i]) << "point " << i;
    fs::remove_all(dir);
}

TEST(PerfHarness, HostStatsExportToJson)
{
    stats::HostStats host;
    host.record(0.5, 2'000'000, 4'000'000);
    host.record(0.5, 1'000'000, 2'000'000);

    std::ostringstream os;
    {
        trace::JsonWriter w(os);
        w.beginObject();
        trace::writeJsonGroup(host, w);
        w.endObject();
    }
    const trace::JsonValue doc = trace::JsonValue::parse(os.str());
    const trace::JsonValue *group = doc.find("host");
    ASSERT_NE(group, nullptr) << os.str();

    const auto num = [&](const char *name) {
        const trace::JsonValue *v = group->find(name);
        EXPECT_NE(v, nullptr) << "missing host." << name;
        return v ? v->asNumber() : -1.0;
    };
    EXPECT_DOUBLE_EQ(num("sim_seconds"), 1.0);
    EXPECT_DOUBLE_EQ(num("sim_insts"), 3'000'000.0);
    EXPECT_DOUBLE_EQ(num("sim_cycles"), 6'000'000.0);
    EXPECT_DOUBLE_EQ(num("sim_runs"), 2.0);
    // Derived values stay consistent with their inputs after export:
    // this is what perf_compare.py consumes.
    EXPECT_DOUBLE_EQ(num("sim_mips"), 3.0);
    EXPECT_DOUBLE_EQ(num("sim_cycles_per_sec"), 6'000'000.0);
}

} // namespace
