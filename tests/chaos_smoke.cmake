# End-to-end chaos smoke: the same vca-sim sweep, run clean and run
# under heavy deterministic fault injection (half of first worker
# attempts crash, every cache read corrupts, half of cache writes
# fail), must print byte-identical results. A second chaos pass over
# the now-populated (and constantly corrupted) cache must too. Only
# the "host: ..." line — wall-clock, by construction different every
# run — is stripped before comparison.
#
# Invoked by ctest (see CMakeLists.txt) with:
#   VCA_SIM   path to the vca-sim binary
#   WORK      scratch directory for the two sweep sides

set(sweep_args
    --bench=crafty --arch=vca --sweep-regs=64,96,128,160,192,256
    --warmup=2000 --insts=20000)

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}/clean" "${WORK}/chaos")

# Runs one sweep side and returns its host-line-stripped stdout.
function(run_sweep side out_var)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
            VCA_CACHE_DIR=cache VCA_SWEEP_STATS= ${ARGN}
            "${VCA_SIM}" ${sweep_args}
        WORKING_DIRECTORY "${WORK}/${side}"
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "${side} sweep failed (rc=${rc}):\n${out}\n${err}")
    endif()
    string(REGEX REPLACE "host: [^\n]*\n" "" out "${out}")
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_sweep(clean clean_out
    VCA_FAULT_INJECT= VCA_ISOLATE=0)

set(chaos_env
    "VCA_FAULT_INJECT=seed=101,crash=0.5,corrupt=1,writefail=0.5,attempts=1"
    VCA_ISOLATE=1 VCA_RETRIES=3 VCA_RETRY_BACKOFF_MS=1
    VCA_POINT_TIMEOUT=120)

run_sweep(chaos chaos_cold_out ${chaos_env})
if(NOT chaos_cold_out STREQUAL clean_out)
    message(FATAL_ERROR "chaos sweep diverged from the clean sweep:\n"
            "--- clean ---\n${clean_out}\n"
            "--- chaos ---\n${chaos_cold_out}")
endif()

# Warm pass: every read of the now-populated cache is corrupted, so
# every point quarantines and re-simulates — still byte-identical
# (including the hit/miss line: corrupted entries count as misses).
run_sweep(chaos chaos_warm_out ${chaos_env})
if(NOT chaos_warm_out STREQUAL clean_out)
    message(FATAL_ERROR
            "warm chaos sweep diverged from the clean sweep:\n"
            "--- clean ---\n${clean_out}\n"
            "--- chaos ---\n${chaos_warm_out}")
endif()

file(REMOVE_RECURSE "${WORK}")
