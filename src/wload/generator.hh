/**
 * @file
 * Synthetic benchmark program generation.
 *
 * A BenchProfile is first *planned* into a deterministic call-DAG of
 * functions whose bodies are sequences of plan segments (compute runs,
 * branch diamonds, counted loops, call sites, memory streams and pointer
 * chases). The plan fixes every structural and random choice. The plan
 * is then *emitted* under either ABI:
 *
 *  - non-windowed: classic callee-save convention; every function saves
 *    and restores each windowed register it writes (plus the return
 *    address if it makes calls) with explicit stores/loads, adjusting
 *    the stack pointer;
 *  - windowed: calls and returns shift the register window, so the
 *    save/restore code vanishes.
 *
 * Because both emissions come from the same plan, the two binaries
 * execute the same dynamic work and differ exactly by the spill/fill
 * instructions -- which is how the paper's Table 2 path-length ratios
 * arise from recompilation.
 */

#ifndef VCA_WLOAD_GENERATOR_HH
#define VCA_WLOAD_GENERATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/program.hh"
#include "wload/profile.hh"

namespace vca::wload {

/** Generate the program for a profile under the given ABI. */
isa::Program generateProgram(const BenchProfile &profile, bool windowedAbi);

/**
 * Process-wide cache of generated programs (generation is deterministic,
 * so sharing is safe). Returns a stable pointer.
 */
const isa::Program *cachedProgram(const BenchProfile &profile,
                                  bool windowedAbi);

} // namespace vca::wload

#endif // VCA_WLOAD_GENERATOR_HH
