#include "trace/stats_json.hh"

#include <sstream>

namespace vca::trace {

namespace {

/** StatVisitor that streams every group/stat into a JsonWriter. */
class JsonExportVisitor : public stats::StatVisitor
{
  public:
    explicit JsonExportVisitor(JsonWriter &w) : w_(w) {}

    void
    beginGroup(const stats::StatGroup &group) override
    {
        w_.key(group.groupName()).beginObject();
    }

    void
    endGroup(const stats::StatGroup &group) override
    {
        (void)group;
        w_.endObject();
    }

    void
    visitScalar(const stats::Scalar &s) override
    {
        w_.key(s.name()).number(s.value());
    }

    void
    visitFormula(const stats::Formula &f) override
    {
        w_.key(f.name()).number(f.value());
    }

    void
    visitAverage(const stats::Average &a) override
    {
        w_.key(a.name()).beginObject();
        w_.key("mean").number(a.mean());
        w_.key("count").number(static_cast<std::uint64_t>(a.count()));
        w_.endObject();
    }

    void
    visitDistribution(const stats::Distribution &d) override
    {
        w_.key(d.name()).beginObject();
        w_.key("samples").number(
            static_cast<std::uint64_t>(d.totalSamples()));
        w_.key("mean").number(d.mean());
        w_.key("min").number(d.minSampled());
        w_.key("max").number(d.maxSampled());
        w_.key("underflow").number(
            static_cast<std::uint64_t>(d.underflows()));
        w_.key("overflow").number(
            static_cast<std::uint64_t>(d.overflows()));
        w_.key("buckets").beginArray();
        for (unsigned i = 0; i < d.numBuckets(); ++i) {
            if (d.bucketCount(i) == 0)
                continue; // sparse: empty buckets are implicit
            w_.beginObject();
            w_.key("lo").number(d.bucketMin() + d.bucketSize() * i);
            w_.key("count").number(
                static_cast<std::uint64_t>(d.bucketCount(i)));
            w_.endObject();
        }
        w_.endArray();
        w_.endObject();
    }

  private:
    JsonWriter &w_;
};

} // namespace

void
writeJsonGroup(const stats::StatGroup &group, JsonWriter &w)
{
    JsonExportVisitor visitor(w);
    group.visit(visitor);
}

void
dumpJson(const stats::StatGroup &group, std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    writeJsonGroup(group, w);
    w.endObject();
}

std::string
dumpJsonString(const stats::StatGroup &group)
{
    std::ostringstream os;
    dumpJson(group, os);
    return os.str();
}

} // namespace vca::trace
