#include "isa/bb_cache.hh"

#include "sim/logging.hh"

namespace vca::isa {

BbCache::BbCache(const Program &prog) : prog_(prog)
{
    if (!prog.finalized())
        panic("BbCache: program '%s' not finalized", prog.name.c_str());
}

const BasicBlock &
BbCache::blockAt(Addr pc)
{
    auto it = blocks_.find(pc);
    if (it != blocks_.end())
        return it->second;

    BasicBlock bb;
    bb.startPc = pc;
    if (pc >= prog_.size()) {
        // Off the image: Program::inst() decodes this as HALT.
        bb.length = 1;
    } else {
        Addr p = pc;
        for (;;) {
            const StaticInst &si = prog_.inst(p);
            ++bb.length;
            ++p;
            if (si.isControl() || si.isHalt || p >= prog_.size())
                break;
        }
    }
    return blocks_.emplace(pc, bb).first->second;
}

} // namespace vca::isa
