/**
 * @file
 * Parallel sweep engine with an on-disk result cache.
 *
 * Every figure/table reproduction is a set of independent timing
 * measurements — (architecture, physical-register count, workload,
 * run options) points. The SweepRunner executes a batch of such
 * points on a work-stealing thread pool and memoizes each point's
 * Measurement in a JSON file keyed by a content hash of the full point
 * configuration, the workload profiles behind it, and the simulator
 * version tag (kSimVersionTag). Re-running an unchanged sweep is pure
 * cache hits: zero detailed simulations.
 *
 * Determinism: the timing model is deterministic, and every point's
 * RunOptions::seed is derived from its own content hash (never from a
 * shared generator), so results are bit-identical regardless of the
 * worker count (VCA_JOBS) or execution order. tests/test_golden.cc
 * pins this down.
 *
 * Environment:
 *   VCA_JOBS        worker threads (default hardware_concurrency)
 *   VCA_CACHE_DIR   cache directory; empty string disables the cache
 *                   (default ".vca-cache")
 *   VCA_SWEEP_STATS print a per-batch hit/miss/throughput summary to
 *                   stderr when set and non-empty
 *
 * Bump kSimVersionTag whenever a change affects simulated numbers —
 * it invalidates every cached measurement at once.
 */

#ifndef VCA_ANALYSIS_RUNNER_HH
#define VCA_ANALYSIS_RUNNER_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/experiment.hh"
#include "stats/statistics.hh"

namespace vca {
class ThreadPool;
}

namespace vca::telemetry {
class ChromeTraceWriter;
}

namespace vca::analysis {

/** Cache-invalidation tag: bump on any change to simulated numbers. */
inline constexpr const char *kSimVersionTag = "vca-sim-v1";

/**
 * One sweep job: a workload (one bundled benchmark name per hardware
 * thread), the architecture that runs it, and the run options.
 */
struct SweepPoint
{
    std::vector<std::string> benches; ///< registry names, one/thread
    bool windowed = false;            ///< run the windowed binaries
    cpu::RenamerKind kind = cpu::RenamerKind::Baseline;
    unsigned physRegs = 256;
    RunOptions opts;
};

/** Single-benchmark point with the ABI implied by the architecture. */
SweepPoint makePoint(const std::string &bench, cpu::RenamerKind kind,
                     unsigned physRegs, const RunOptions &opts);

/**
 * Canonical description of a point: every field of the point and of
 * each referenced workload profile, plus kSimVersionTag. Two points
 * with equal keys measure the same thing.
 */
std::string pointKey(const SweepPoint &point);

/** FNV-1a content hash of pointKey(). Names the cache file. */
std::uint64_t pointHash(const SweepPoint &point);

/** Per-point RNG seed: a splitmix64 finalization of the hash. */
std::uint64_t pointSeed(const SweepPoint &point);

/** Serialize a Measurement (lossless, including every double). */
std::string measurementToJson(const Measurement &m);

/** Inverse of measurementToJson; throws FatalError on bad input. */
Measurement measurementFromJson(const std::string &text);

/**
 * On-disk Measurement store: one "<hash>.json" file per point under
 * dir, written atomically (temp file + rename), validated on load
 * against the full key string so hash collisions, stale version tags
 * and truncated files all read as misses. An empty dir disables the
 * cache entirely. A SIGINT/SIGTERM mid-write unlinks every in-flight
 * temp file before the process dies (default disposition re-raised),
 * so an interrupted sweep never litters the cache directory.
 */
class ResultCache
{
  public:
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** True and fills out on a valid cached entry for this point. */
    bool load(const SweepPoint &point, Measurement &out) const;

    /** Persist one point's measurement (best-effort; warns on I/O). */
    void store(const SweepPoint &point, const Measurement &m) const;

    /** The cache directory from VCA_CACHE_DIR (default .vca-cache). */
    static std::string defaultDir();

  private:
    std::string pathFor(const SweepPoint &point) const;

    std::string dir_;
};

struct SweepConfig
{
    /** Worker threads; 0 = the shared global pool (VCA_JOBS). */
    unsigned jobs = 0;
    /** Cache directory; empty disables. */
    std::string cacheDir = ResultCache::defaultDir();
};

/**
 * Executes batches of sweep points. Results come back in submission
 * order; duplicate points within a batch simulate once. Progress and
 * cache effectiveness are exposed as a StatGroup ("sweep") and can be
 * printed per batch with VCA_SWEEP_STATS=1.
 */
class SweepRunner : public stats::StatGroup
{
  public:
    explicit SweepRunner(const SweepConfig &config = SweepConfig());
    ~SweepRunner() override;

    /** Run every point (cache first, then the pool); blocks. */
    std::vector<Measurement> run(const std::vector<SweepPoint> &points);

    /** Convenience: one point through the cache and pool. */
    Measurement runPoint(const SweepPoint &point);

    const ResultCache &cache() const { return cache_; }

    // Lifetime counters across every batch this runner executed.
    stats::Scalar pointsTotal;   ///< points submitted
    stats::Scalar cacheHits;     ///< served from the on-disk cache
    stats::Scalar cacheMisses;   ///< required a detailed simulation
    stats::Scalar pointsFailed;  ///< completed with !Measurement::ok
    stats::Scalar sweepSeconds;  ///< wall-clock across batches
    stats::Formula pointsPerSec; ///< lifetime throughput

    /**
     * Shared instance on the global pool with default cache config;
     * what the benches and vca-sim use so one process-wide place
     * accumulates hit/miss statistics.
     */
    static SweepRunner &global();

    /**
     * Emit host-time Chrome trace tracks for subsequent batches: one
     * lane per pool worker thread with a slice per simulated point,
     * and cache-hit slices on the submitting thread's lane. Pass
     * nullptr to stop. The writer must outlive every run() while set.
     */
    void setTraceWriter(telemetry::ChromeTraceWriter *writer);

  private:
    Measurement executePoint(const SweepPoint &point) const;

    /** Stable lane id for the calling thread (0 = submitting thread). */
    int hostLaneFor(telemetry::ChromeTraceWriter &writer);

    SweepConfig config_;
    ResultCache cache_;
    std::unique_ptr<ThreadPool> ownedPool_;
    ThreadPool *pool_;

    telemetry::ChromeTraceWriter *traceWriter_ = nullptr;
    std::mutex traceMutex_;
    std::map<std::thread::id, int> hostLanes_;
};

} // namespace vca::analysis

#endif // VCA_ANALYSIS_RUNNER_HH
