#include "isa/inst.hh"

#include <array>

#include "sim/logging.hh"

namespace vca::isa {

namespace {

constexpr std::uint32_t opShift = 24;
constexpr std::uint32_t rdShift = 19;
constexpr std::uint32_t rs1Shift = 14;
constexpr std::uint32_t rs2Shift = 9;
constexpr std::uint32_t regMask = 0x1f;
constexpr std::uint32_t imm14Mask = 0x3fff;
constexpr std::uint32_t imm24Mask = 0xffffff;

std::int64_t
signExtend14(std::uint32_t v)
{
    std::int64_t x = static_cast<std::int64_t>(v & imm14Mask);
    if (x & (1 << 13))
        x -= (1 << 14);
    return x;
}

void
checkReg(RegIndex r)
{
    if (r >= numIntRegs)
        panic("register index %u out of range", unsigned(r));
}

void
checkImm14(std::int32_t imm)
{
    if (imm < imm14Min || imm > imm14Max)
        panic("imm14 %d out of range", imm);
}

struct OpInfo
{
    const char *mnemonic;
    FuClass fu;
};

const OpInfo &
opInfo(Opcode op)
{
    static const std::array<OpInfo,
        static_cast<size_t>(Opcode::NumOpcodes)> table = {{
        {"nop", FuClass::None},
        {"halt", FuClass::None},
        {"add", FuClass::IntAlu}, {"sub", FuClass::IntAlu},
        {"mul", FuClass::IntMul}, {"div", FuClass::IntDiv},
        {"and", FuClass::IntAlu}, {"or", FuClass::IntAlu},
        {"xor", FuClass::IntAlu}, {"sll", FuClass::IntAlu},
        {"srl", FuClass::IntAlu}, {"sra", FuClass::IntAlu},
        {"slt", FuClass::IntAlu}, {"sltu", FuClass::IntAlu},
        {"addi", FuClass::IntAlu}, {"andi", FuClass::IntAlu},
        {"ori", FuClass::IntAlu}, {"xori", FuClass::IntAlu},
        {"slli", FuClass::IntAlu}, {"srli", FuClass::IntAlu},
        {"srai", FuClass::IntAlu}, {"slti", FuClass::IntAlu},
        {"lui", FuClass::IntAlu},
        {"ld", FuClass::MemRead}, {"st", FuClass::MemWrite},
        {"fld", FuClass::MemRead}, {"fst", FuClass::MemWrite},
        {"fadd", FuClass::FpAlu}, {"fsub", FuClass::FpAlu},
        {"fmul", FuClass::FpMul}, {"fdiv", FuClass::FpDiv},
        {"fneg", FuClass::FpAlu}, {"fmov", FuClass::FpAlu},
        {"fcvtif", FuClass::FpAlu}, {"fcvtfi", FuClass::FpAlu},
        {"feq", FuClass::FpAlu}, {"flt", FuClass::FpAlu},
        {"beq", FuClass::IntAlu}, {"bne", FuClass::IntAlu},
        {"blt", FuClass::IntAlu}, {"bge", FuClass::IntAlu},
        {"jmp", FuClass::None},
        {"call", FuClass::IntAlu},
        {"ret", FuClass::IntAlu},
    }};
    return table.at(static_cast<size_t>(op));
}

} // namespace

std::uint32_t
encodeR(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    checkReg(rd);
    checkReg(rs1);
    checkReg(rs2);
    return (static_cast<std::uint32_t>(op) << opShift) |
           (static_cast<std::uint32_t>(rd) << rdShift) |
           (static_cast<std::uint32_t>(rs1) << rs1Shift) |
           (static_cast<std::uint32_t>(rs2) << rs2Shift);
}

std::uint32_t
encodeI(Opcode op, RegIndex rd, RegIndex rs1, std::int32_t imm14)
{
    checkReg(rd);
    checkReg(rs1);
    checkImm14(imm14);
    return (static_cast<std::uint32_t>(op) << opShift) |
           (static_cast<std::uint32_t>(rd) << rdShift) |
           (static_cast<std::uint32_t>(rs1) << rs1Shift) |
           (static_cast<std::uint32_t>(imm14) & imm14Mask);
}

std::uint32_t
encodeB(Opcode op, RegIndex rs1, RegIndex rs2, std::int32_t imm14)
{
    checkReg(rs1);
    checkReg(rs2);
    checkImm14(imm14);
    return (static_cast<std::uint32_t>(op) << opShift) |
           (static_cast<std::uint32_t>(rs1) << rdShift) |
           (static_cast<std::uint32_t>(rs2) << rs1Shift) |
           (static_cast<std::uint32_t>(imm14) & imm14Mask);
}

std::uint32_t
encodeJ(Opcode op, std::uint32_t target24)
{
    if (target24 > imm24Max)
        panic("jump target %u out of range", target24);
    return (static_cast<std::uint32_t>(op) << opShift) |
           (target24 & imm24Mask);
}

StaticInst
decode(std::uint32_t word)
{
    StaticInst inst;
    auto opRaw = static_cast<std::uint8_t>(word >> opShift);
    if (opRaw >= static_cast<std::uint8_t>(Opcode::NumOpcodes))
        opRaw = static_cast<std::uint8_t>(Opcode::Halt);
    const auto op = static_cast<Opcode>(opRaw);
    inst.op = op;
    inst.fu = opInfo(op).fu;

    const auto rd = static_cast<RegIndex>((word >> rdShift) & regMask);
    const auto rs1 = static_cast<RegIndex>((word >> rs1Shift) & regMask);
    const auto rs2 = static_cast<RegIndex>((word >> rs2Shift) & regMask);

    auto setDest = [&](RegClass cls, RegIndex idx) {
        // Writes to the integer zero register are architectural no-ops;
        // drop the destination so rename never allocates for them.
        if (cls == RegClass::Int && idx == regZero)
            return;
        inst.dest = {cls, idx};
        inst.hasDest = true;
    };
    auto addSrc = [&](RegClass cls, RegIndex idx) {
        const unsigned slot = inst.numSrcs++;
        inst.src[slot] = {cls, idx};
        // Reads of integer r0 are constant zero and need no rename
        // (f0 is a normal register).
        inst.srcValid[slot] = !(cls == RegClass::Int && idx == regZero);
    };

    switch (op) {
      case Opcode::Nop:
        inst.isNop = true;
        break;
      case Opcode::Halt:
        inst.isHalt = true;
        break;

      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::And: case Opcode::Or:
      case Opcode::Xor: case Opcode::Sll: case Opcode::Srl:
      case Opcode::Sra: case Opcode::Slt: case Opcode::Sltu:
        setDest(RegClass::Int, rd);
        addSrc(RegClass::Int, rs1);
        addSrc(RegClass::Int, rs2);
        break;

      case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
      case Opcode::Xori: case Opcode::Slli: case Opcode::Srli:
      case Opcode::Srai: case Opcode::Slti:
        setDest(RegClass::Int, rd);
        addSrc(RegClass::Int, rs1);
        inst.imm = signExtend14(word);
        break;

      case Opcode::Lui:
        setDest(RegClass::Int, rd);
        inst.imm = signExtend14(word) << 18;
        break;

      case Opcode::Ld:
        setDest(RegClass::Int, rd);
        addSrc(RegClass::Int, rs1);
        inst.imm = signExtend14(word);
        inst.isLoad = true;
        break;
      case Opcode::Fld:
        setDest(RegClass::Float, rd);
        addSrc(RegClass::Int, rs1);
        inst.imm = signExtend14(word);
        inst.isLoad = true;
        inst.isFloat = true;
        break;

      case Opcode::St: {
        // B format: rs1 (base) in rd field, rs2 (data) in rs1 field.
        const auto base = rd;
        const auto data = rs1;
        addSrc(RegClass::Int, base);
        addSrc(RegClass::Int, data);
        inst.imm = signExtend14(word);
        inst.isStore = true;
        break;
      }
      case Opcode::Fst: {
        const auto base = rd;
        const auto data = rs1;
        addSrc(RegClass::Int, base);
        addSrc(RegClass::Float, data);
        inst.imm = signExtend14(word);
        inst.isStore = true;
        inst.isFloat = true;
        break;
      }

      case Opcode::Fadd: case Opcode::Fsub: case Opcode::Fmul:
      case Opcode::Fdiv:
        setDest(RegClass::Float, rd);
        addSrc(RegClass::Float, rs1);
        addSrc(RegClass::Float, rs2);
        inst.isFloat = true;
        break;
      case Opcode::Fneg: case Opcode::Fmov:
        setDest(RegClass::Float, rd);
        addSrc(RegClass::Float, rs1);
        inst.isFloat = true;
        break;
      case Opcode::Fcvtif:
        setDest(RegClass::Float, rd);
        addSrc(RegClass::Int, rs1);
        inst.isFloat = true;
        break;
      case Opcode::Fcvtfi:
        setDest(RegClass::Int, rd);
        addSrc(RegClass::Float, rs1);
        inst.isFloat = true;
        break;
      case Opcode::Feq: case Opcode::Flt:
        setDest(RegClass::Int, rd);
        addSrc(RegClass::Float, rs1);
        addSrc(RegClass::Float, rs2);
        inst.isFloat = true;
        break;

      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge:
        addSrc(RegClass::Int, rd);   // B format: rs1 lives in rd field
        addSrc(RegClass::Int, rs1);
        inst.imm = signExtend14(word);
        inst.isBranch = true;
        break;

      case Opcode::Jmp:
        inst.imm = static_cast<std::int64_t>(word & imm24Mask);
        inst.isJump = true;
        break;
      case Opcode::Call:
        inst.imm = static_cast<std::int64_t>(word & imm24Mask);
        setDest(RegClass::Int, regRa);
        inst.isCall = true;
        break;
      case Opcode::Ret:
        addSrc(RegClass::Int, regRa);
        inst.isRet = true;
        break;

      default:
        panic("decode: unhandled opcode %u", unsigned(opRaw));
    }
    return inst;
}

std::string
disassemble(const StaticInst &inst)
{
    std::string s = opInfo(inst.op).mnemonic;
    auto regName = [](const ArchReg &r) {
        return std::string(r.cls == RegClass::Int ? "r" : "f") +
               std::to_string(r.idx);
    };
    if (inst.hasDest)
        s += " " + regName(inst.dest);
    for (unsigned i = 0; i < inst.numSrcs; ++i) {
        s += std::string(i == 0 && !inst.hasDest ? " " : ", ");
        s += inst.srcValid[i] ? regName(inst.src[i]) : std::string("r0");
    }
    if (inst.imm != 0 || inst.isJump || inst.isCall || inst.isBranch ||
        inst.op == Opcode::Ld || inst.op == Opcode::St ||
        inst.op == Opcode::Fld || inst.op == Opcode::Fst ||
        inst.op == Opcode::Addi || inst.op == Opcode::Lui) {
        s += (inst.hasDest || inst.numSrcs) ? ", " : " ";
        s += std::to_string(inst.imm);
    }
    return s;
}

std::string
disassemble(std::uint32_t word)
{
    return disassemble(decode(word));
}

unsigned
fuLatency(FuClass fu)
{
    switch (fu) {
      case FuClass::IntAlu:   return 1;
      case FuClass::IntMul:   return 3;
      case FuClass::IntDiv:   return 12;
      case FuClass::FpAlu:    return 4;
      case FuClass::FpMul:    return 4;
      case FuClass::FpDiv:    return 12;
      case FuClass::MemRead:  return 1; // address generation; cache adds more
      case FuClass::MemWrite: return 1;
      case FuClass::None:     return 1;
    }
    return 1;
}

} // namespace vca::isa
