/**
 * @file
 * Register-cache telemetry: shadow-model miss classification,
 * occupancy time series, and spill/fill burst histograms.
 *
 * The paper's framing is that the physical register file *is* a cache
 * of the memory-mapped logical-register space.  This analyzer takes
 * that framing literally and applies the classic 3C taxonomy to every
 * fill the renamer performs, using two shadow models driven by the
 * same access stream the real rename table sees:
 *
 *  - an *infinite-register* shadow (a seen-set): a fill whose address
 *    has never been touched is a **compulsory** miss — no register
 *    file of any size or organization could have held it;
 *  - a *fully-associative* shadow with exact LRU replacement, sized
 *    to the machine's register capacity: a fill that the FA shadow
 *    still holds is a **conflict** miss (limited associativity of the
 *    real rename table evicted it), while one the FA shadow also lost
 *    is a **capacity** miss (too few physical registers, period).
 *
 * fills_compulsory + fills_capacity + fills_conflict always equals
 * the renamer's `fills` scalar over the same interval.
 *
 * Determinism: both shadows are pure functions of the probe stream,
 * which is itself a pure function of the simulated execution — the
 * analyzer reads no clocks, no host state, and perturbs nothing, so
 * attaching it never changes simulated numbers and its counters are
 * bit-identical across runs and job counts.
 */

#ifndef VCA_TELEMETRY_REG_CACHE_ANALYZER_HH
#define VCA_TELEMETRY_REG_CACHE_ANALYZER_HH

#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/reg_cache_probe.hh"
#include "core/reg_state.hh"
#include "sim/types.hh"
#include "stats/statistics.hh"

namespace vca::cpu {
class OooCpu;
} // namespace vca::cpu

namespace vca::telemetry {

class RegCacheAnalyzer : public stats::StatGroup, public core::RegCacheProbe
{
  public:
    struct Config
    {
        /** Entries in the fully-associative shadow: the machine's
         *  effective register capacity, min(physRegs, table slots). */
        unsigned shadowCapacity = 0;
        unsigned physRegs = 0;
        unsigned numThreads = 1;
        /** Cycles between physical-register occupancy samples. */
        unsigned occupancySampleInterval = 128;
        /** Width of the spill/fill burst-bandwidth window. */
        unsigned burstWindowCycles = 64;
    };

    /** @param regState the renamer's physical-register state array,
     *  scanned (read-only) when sampling occupancy; may be null to
     *  disable occupancy sampling (probe-driven unit tests). */
    RegCacheAnalyzer(const Config &cfg, const core::RegStateArray *regState,
                     stats::StatGroup *parent);
    ~RegCacheAnalyzer() override;

    // RegCacheProbe
    void onAccess(Addr addr) override;
    void onFill(Addr addr) override;
    void onSpill(Addr addr) override;
    void onCycle(Cycle now) override;

    /** Called by the dtor so the renamer never holds a dangling
     *  probe pointer (set by attachRegCacheAnalyzer). */
    void setDetach(std::function<void()> detach);

    const Config &config() const { return cfg_; }

    // 3C fill classification (sum tracks the renamer's `fills`).
    stats::Scalar fillsCompulsory;
    stats::Scalar fillsCapacity;
    stats::Scalar fillsConflict;
    /** Accesses that hit in the FA shadow (upper bound on what a
     *  fully-associative register cache of this size would achieve). */
    stats::Scalar shadowHits;
    /** All register-cache accesses observed (hits + fills). */
    stats::Scalar accesses;

    // Occupancy time series: committed/allocated physical registers,
    // sampled every occupancySampleInterval rename cycles.
    std::vector<std::unique_ptr<stats::Distribution>> occupancyPerThread;
    stats::Distribution occupancyWindowed;
    stats::Distribution occupancyGlobal;

    // Spill/fill burst bandwidth: transfers per burst window.
    stats::Distribution fillBurst;
    stats::Distribution spillBurst;

  private:
    /** Fold an access into the shadows (seen-set + FA-LRU touch). */
    void touch(Addr addr);
    void sampleOccupancy();

    Config cfg_;
    const core::RegStateArray *regState_;
    std::function<void()> detach_;

    // Infinite-register shadow.
    std::unordered_set<Addr> seen_;
    // Fully-associative exact-LRU shadow: MRU at front.
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> lruMap_;

    Cycle burstEnd_ = 0;
    unsigned fillsInWindow_ = 0;
    unsigned spillsInWindow_ = 0;
    Cycle nextOccupancySample_ = 0;
};

/**
 * Attach a RegCacheAnalyzer to @p cpu's renamer.  Returns null when
 * the CPU is not using the VCA renamer (nothing to observe).  The
 * analyzer registers itself as a "reg_cache" stat group under the CPU
 * so it flows through dump(), --stats-json, and resetStats() with
 * everything else; shadow-model state intentionally survives stat
 * resets (compulsory misses are defined over the whole execution).
 */
std::unique_ptr<RegCacheAnalyzer> attachRegCacheAnalyzer(cpu::OooCpu &cpu);

} // namespace vca::telemetry

#endif // VCA_TELEMETRY_REG_CACHE_ANALYZER_HH
