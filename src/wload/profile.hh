/**
 * @file
 * Benchmark personality profiles.
 *
 * The paper evaluates on SPEC CPU2000. We cannot ship SPEC, so each
 * benchmark is replaced by a synthetic program generated from a profile
 * that captures the characteristics that matter to the paper's
 * experiments: function-call frequency and depth, number of callee-saved
 * registers per frame (this drives the windowed/non-windowed path-length
 * ratio of Table 2), memory footprint and access pattern (cache
 * behaviour), branch predictability, FP mix, and ILP.
 *
 * The names mirror the SPEC benchmarks (with the input the paper
 * selected, e.g. "bzip2_graphic"). The generated program for a profile
 * is deterministic given the profile's seed.
 */

#ifndef VCA_WLOAD_PROFILE_HH
#define VCA_WLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vca::wload {

struct BenchProfile
{
    std::string name;
    bool isFloat = false;       ///< FP benchmark (SPECfp)

    // Call behaviour.
    unsigned numFuncs = 24;     ///< functions in the call DAG
    unsigned callFanout = 2;    ///< calls a non-leaf function makes
    unsigned callSpan = 4;      ///< children chosen within [id+1, id+span]
    unsigned bodyOps = 60;      ///< compute ops per function body
    unsigned avgLocals = 6;     ///< callee-saved registers written / frame
    double leafFrac = 0.45;     ///< fraction of functions that are leaves

    // Loop / branch behaviour.
    unsigned loopTripMean = 8;  ///< inner-loop iterations
    double randomBranchFrac = 0.2; ///< data-dependent (hard) branches

    // Memory behaviour.
    std::uint64_t footprintBytes = 64 * 1024;
    double memOpFrac = 0.28;    ///< fraction of body ops touching memory
    double pointerChaseFrac = 0.0; ///< dependent-load chains (mcf-like)

    // FP behaviour.
    double fpFrac = 0.0;        ///< fraction of compute that is FP

    // Scale: the planner sizes the outer loop so the non-windowed
    // binary executes roughly this many dynamic instructions.
    std::uint64_t targetDynInsts = 1'200'000;

    std::uint64_t seed = 1;

    /** True if this benchmark belongs to the paper's Table 2 subset
     *  (calls at least once every 500 instructions). */
    bool callHeavy = true;
};

/** All 22 SPEC CPU2000-like profiles (12 int + 10 FP, F90 excluded). */
const std::vector<BenchProfile> &spec2000Profiles();

/** The 15 call-heavy profiles used in the register-window experiments
 *  (paper Table 2 / Figures 4-6). */
std::vector<BenchProfile> regWindowProfiles();

/** Look up a profile by name (fatal if unknown). */
const BenchProfile &profileByName(const std::string &name);

} // namespace vca::wload

#endif // VCA_WLOAD_PROFILE_HH
