/**
 * @file
 * Fast-forward + sampled simulation modes (the non-detailed arms of
 * RunOptions::mode).
 *
 * Both modes interleave the functional core (FuncSim's decoded-BB fast
 * path) with the detailed OoO core:
 *
 *  - SimPoint: cluster BBV intervals into phases (analysis/
 *    simpoint.hh), detail-simulate one representative interval per
 *    phase, and report the phase-weighted IPC blend as the
 *    whole-program estimate.
 *  - Sampled: SMARTS-style periodic sampling — every samplePeriodInsts
 *    per thread, switch the architectural state into a fresh detailed
 *    core, run sampleDetailWarmInsts of detailed warm-up, and measure
 *    a sampleQuantumInsts quantum; aggregate quanta until measureInsts
 *    instructions have been measured or the program ends.
 *
 * Long-lived microarchitectural state (cache tags, predictor tables)
 * lives in a persistent warm model that every fast-forwarded
 * instruction updates (continuous functional warming; see
 * RunOptions::sampleFuncWarmInsts for the tail-only compromise) and
 * that each sample's fresh core adopts via copyStateFrom before
 * switch-in — without it, every sample would restart with cold caches
 * and the sampled estimate would be biased far below the detailed
 * reference.
 *
 * The hand-off obeys the switch-in invariant (OooCpu::switchIn): after
 * transfer, every architectural register the detailed core would read
 * is checked against the functional golden model. Host time spent on
 * the functional side is accounted to HostStats func_* (the accuracy
 * tier's >=5x speedup contract); detailed quanta accumulate into the
 * usual sim_* trajectory.
 */

#ifndef VCA_ANALYSIS_SAMPLING_HH
#define VCA_ANALYSIS_SAMPLING_HH

#include "analysis/experiment.hh"

namespace vca::analysis {

/**
 * Run a non-detailed timing measurement (opts.mode is SimPoint or
 * Sampled). Called by runTiming() after it builds the CpuParams, so
 * ablation overrides and seeding behave identically across modes.
 */
Measurement runSampledTiming(
    const std::vector<const isa::Program *> &programs,
    cpu::RenamerKind kind, unsigned physRegs, const RunOptions &opts,
    const cpu::CpuParams &params);

} // namespace vca::analysis

#endif // VCA_ANALYSIS_SAMPLING_HH
