/**
 * @file
 * Golden-number regression suite (ctest label: golden).
 *
 * Runs a scaled-down but fully deterministic sweep — every renamer
 * kind over a few register-file sizes, plus two SMT mixes — through
 * the SweepRunner with the on-disk cache disabled, and asserts the
 * exact committed-instruction and cycle counts against the checked-in
 * numbers in tests/golden/sweep.json. Any change to simulated numbers
 * (intended or not) trips these tests.
 *
 * Refreshing the goldens after an intended change:
 *
 *     VCA_UPDATE_GOLDEN=1 ctest -L golden        # or run vca_golden_tests
 *     git diff tests/golden/                     # inspect, then commit
 *
 * The update path rewrites tests/golden/sweep.json in the source tree
 * (the build knows its location via the VCA_GOLDEN_DIR compile
 * definition). Remember to bump analysis::kSimVersionTag in the same
 * change so stale sweep caches are invalidated too; the golden file
 * records the tag and these tests refuse to compare across versions.
 *
 * The Determinism test reruns the same sweep at 1 and at 8 worker
 * threads and requires bit-identical Measurements — the guarantee that
 * makes VCA_JOBS a pure performance knob.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/runner.hh"
#include "trace/json.hh"

using namespace vca;

namespace {

std::string
goldenPath()
{
    return std::string(VCA_GOLDEN_DIR) + "/sweep.json";
}

/**
 * The golden sweep: small instruction budgets (the numbers only need
 * to be deterministic, not representative), every architecture, and a
 * size below the baseline's floor so an inoperable point stays golden
 * too (baseline @ 64 regs cannot rename 64 logical registers).
 */
std::vector<analysis::SweepPoint>
goldenPoints()
{
    analysis::RunOptions opts;
    opts.warmupInsts = 2'000;
    opts.measureInsts = 20'000;

    std::vector<analysis::SweepPoint> points;
    for (cpu::RenamerKind kind :
         {cpu::RenamerKind::Baseline, cpu::RenamerKind::ConvWindow,
          cpu::RenamerKind::IdealWindow, cpu::RenamerKind::Vca}) {
        for (unsigned regs : {64u, 128u, 192u})
            points.push_back(
                analysis::makePoint("crafty", kind, regs, opts));
    }

    analysis::RunOptions smt = opts;
    smt.numThreads = 2;
    smt.stopOnFirstThread = true;
    for (cpu::RenamerKind kind :
         {cpu::RenamerKind::Baseline, cpu::RenamerKind::Vca}) {
        analysis::SweepPoint p;
        p.benches = {"crafty", "mesa"};
        p.windowed = false;
        p.kind = kind;
        p.physRegs = 192;
        p.opts = smt;
        points.push_back(p);
    }
    return points;
}

/** Fresh simulations only: no cache, shared global pool. */
std::vector<analysis::Measurement>
runGoldenSweep(unsigned jobs = 0)
{
    analysis::SweepConfig config;
    config.jobs = jobs;
    config.cacheDir.clear();
    analysis::SweepRunner runner(config);
    return runner.run(goldenPoints());
}

void
writeGoldens(const std::vector<analysis::SweepPoint> &points,
             const std::vector<analysis::Measurement> &results)
{
    std::ofstream os(goldenPath());
    ASSERT_TRUE(os) << "cannot write " << goldenPath();
    trace::JsonWriter w(os);
    w.beginObject();
    w.key("version").string(analysis::kSimVersionTag);
    w.key("points").beginArray();
    for (size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        const auto &m = results[i];
        w.beginObject();
        w.key("arch").string(cpu::renamerKindName(p.kind));
        w.key("regs").number(std::uint64_t(p.physRegs));
        w.key("benches").beginArray();
        for (const std::string &b : p.benches)
            w.string(b);
        w.endArray();
        w.key("ok").boolean(m.ok);
        w.key("cycles").number(std::uint64_t(m.cycles));
        w.key("insts").number(std::uint64_t(m.insts));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace

TEST(Golden, SweepNumbers)
{
    setQuiet(true);
    const auto points = goldenPoints();
    const auto results = runGoldenSweep();
    ASSERT_EQ(results.size(), points.size());

    if (const char *update = std::getenv("VCA_UPDATE_GOLDEN");
        update && *update) {
        writeGoldens(points, results);
        GTEST_LOG_(INFO) << "updated " << goldenPath();
        return;
    }

    std::ifstream is(goldenPath());
    ASSERT_TRUE(is) << goldenPath()
                    << " missing - run VCA_UPDATE_GOLDEN=1 ctest -L "
                       "golden and commit the result";
    std::ostringstream buf;
    buf << is.rdbuf();
    const trace::JsonValue doc = trace::JsonValue::parse(buf.str());
    ASSERT_TRUE(doc.isObject());
    ASSERT_EQ(doc.find("version")->asString(), analysis::kSimVersionTag)
        << "golden file was recorded for a different simulator version "
           "- refresh with VCA_UPDATE_GOLDEN=1";
    const trace::JsonValue *golden = doc.find("points");
    ASSERT_TRUE(golden && golden->isArray());
    ASSERT_EQ(golden->size(), points.size())
        << "golden point list out of date - refresh with "
           "VCA_UPDATE_GOLDEN=1";

    for (size_t i = 0; i < points.size(); ++i) {
        const trace::JsonValue &g = golden->at(i);
        const auto &p = points[i];
        const auto &m = results[i];
        std::ostringstream label;
        label << cpu::renamerKindName(p.kind) << " @ " << p.physRegs
              << " regs, " << p.benches.size() << " thread(s)";
        EXPECT_EQ(g.find("arch")->asString(),
                  cpu::renamerKindName(p.kind))
            << label.str();
        EXPECT_EQ(g.find("regs")->asNumber(), double(p.physRegs))
            << label.str();
        EXPECT_EQ(g.find("ok")->asBool(), m.ok) << label.str();
        EXPECT_EQ(static_cast<std::uint64_t>(
                      g.find("cycles")->asNumber()),
                  static_cast<std::uint64_t>(m.cycles))
            << label.str();
        EXPECT_EQ(static_cast<std::uint64_t>(
                      g.find("insts")->asNumber()),
                  static_cast<std::uint64_t>(m.insts))
            << label.str();
    }
}

TEST(Golden, BaselineAt64IsInoperable)
{
    // Guards the "inoperable points are golden too" property: the
    // conventional renamer cannot operate with physRegs == logical
    // registers, and that must surface as ok=false, not a crash.
    setQuiet(true);
    const auto points = goldenPoints();
    const auto results = runGoldenSweep();
    ASSERT_EQ(points[0].kind, cpu::RenamerKind::Baseline);
    ASSERT_EQ(points[0].physRegs, 64u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_FALSE(results[0].error.empty());
}

TEST(Determinism, SameNumbersAtAnyJobCount)
{
    // The acceptance bar for the parallel runner: VCA_JOBS only
    // changes wall-clock, never numbers. Run the golden sweep on one
    // worker and on eight and require bit-identical Measurements
    // (compared through the lossless JSON form so a failure prints
    // the differing fields).
    setQuiet(true);
    const auto serial = runGoldenSweep(1);
    const auto parallel = runGoldenSweep(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(analysis::measurementToJson(serial[i]),
                  analysis::measurementToJson(parallel[i]))
            << "point " << i << " differs between 1 and 8 workers";
        EXPECT_TRUE(serial[i] == parallel[i]);
    }
}
