#include "sim/thread_pool.hh"

#include <atomic>
#include <cstdlib>

#include "sim/logging.hh"

namespace vca {

namespace {

/** Which worker (if any) the calling thread is; -1 off-pool. */
thread_local int tlsWorkerIndex = -1;
thread_local const ThreadPool *tlsWorkerPool = nullptr;

/** Exceptions swallowed at job boundaries, across every pool. */
std::atomic<std::uint64_t> gJobExceptions{0};

} // namespace

std::uint64_t
ThreadPool::jobExceptions()
{
    return gJobExceptions.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned numThreads)
{
    const unsigned n = numThreads ? numThreads : defaultThreads();
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("VCA_JOBS")) {
        const unsigned long v = std::strtoul(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
        warn("ignoring VCA_JOBS='%s' (want an integer >= 1)", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::JobId
ThreadPool::submit(Job job)
{
    JobId id;
    unsigned target;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        id = nextId_++;
        // A worker submitting new work keeps it local (it will pop it
        // next); everyone else deals round-robin across the queues.
        if (tlsWorkerPool == this && tlsWorkerIndex >= 0)
            target = static_cast<unsigned>(tlsWorkerIndex);
        else
            target = static_cast<unsigned>(submitCursor_++ %
                                           workers_.size());
        ++pending_;
        ++outstanding_;
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->queue.push_back({id, std::move(job)});
    }
    wakeCv_.notify_one();
    return id;
}

bool
ThreadPool::cancel(JobId id)
{
    for (auto &worker : workers_) {
        std::lock_guard<std::mutex> lock(worker->mutex);
        for (auto it = worker->queue.begin(); it != worker->queue.end();
             ++it) {
            if (it->id != id)
                continue;
            worker->queue.erase(it);
            bool drained;
            {
                std::lock_guard<std::mutex> glock(mutex_);
                --pending_;
                --outstanding_;
                drained = outstanding_ == 0;
            }
            if (drained)
                idleCv_.notify_all();
            return true;
        }
    }
    return false;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return outstanding_ == 0; });
}

bool
ThreadPool::takeJob(unsigned self, QueuedJob &out)
{
    // Own queue first (front: newest local work stays cache-warm for
    // the owner), then steal from the back of the others.
    {
        Worker &w = *workers_[self];
        std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.queue.empty()) {
            out = std::move(w.queue.front());
            w.queue.pop_front();
            return true;
        }
    }
    for (size_t off = 1; off < workers_.size(); ++off) {
        Worker &w = *workers_[(self + off) % workers_.size()];
        std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.queue.empty()) {
            out = std::move(w.queue.back());
            w.queue.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    tlsWorkerIndex = static_cast<int>(self);
    tlsWorkerPool = this;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeCv_.wait(lock,
                         [this] { return stop_ || pending_ > 0; });
            if (stop_ && pending_ == 0)
                return;
        }
        QueuedJob job;
        if (!takeJob(self, job))
            continue; // someone else grabbed it; go back to sleep
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
        }
        // A job that lets an exception escape must cost one job, not
        // the whole pool (std::thread would std::terminate the
        // process). Swallow, count, and keep draining the queue; the
        // sweep runner additionally catches at the point boundary so
        // callers see a structured per-point failure, and this is the
        // backstop for everything else.
        try {
            job.fn();
        } catch (const std::exception &e) {
            gJobExceptions.fetch_add(1, std::memory_order_relaxed);
            warn("thread-pool job raised '%s'; worker continues",
                 e.what());
        } catch (...) {
            gJobExceptions.fetch_add(1, std::memory_order_relaxed);
            warn("thread-pool job raised a non-standard exception; "
                 "worker continues");
        }
        bool drained;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --outstanding_;
            drained = outstanding_ == 0;
        }
        if (drained)
            idleCv_.notify_all();
    }
}

} // namespace vca
