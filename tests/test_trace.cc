/**
 * @file
 * Tests for the observability layer: debug flags and DPRINTF gating,
 * O3PipeView trace writing/parsing and its ordering invariants on a
 * real pipeline run, and interval statistics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/ooo_cpu.hh"
#include "cpu/tracer.hh"
#include "trace/debug_flags.hh"
#include "trace/interval_stats.hh"
#include "trace/pipe_trace.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace {

using namespace vca;

/** Resets flag and stream state around every test. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::clearAllFlags();
        trace::setTraceStream(&captured_);
    }
    void
    TearDown() override
    {
        trace::clearAllFlags();
        trace::setTraceStream(nullptr);
    }
    std::string text() const { return captured_.str(); }

    std::ostringstream captured_;
};

// ---------------------------------------------------------------------
// Flag registry / parsing
// ---------------------------------------------------------------------

TEST_F(TraceTest, FlagsStartDisabled)
{
    EXPECT_FALSE(trace::anyFlagEnabled());
    for (const auto &info : trace::allFlags())
        EXPECT_FALSE(trace::flagEnabled(info.flag)) << info.name;
}

TEST_F(TraceTest, SetFlagsFromCommaList)
{
    trace::setFlagsFromString("Rename,Commit");
    EXPECT_TRUE(trace::flagEnabled(trace::Flag::Rename));
    EXPECT_TRUE(trace::flagEnabled(trace::Flag::Commit));
    EXPECT_FALSE(trace::flagEnabled(trace::Flag::Fetch));
    const auto names = trace::enabledFlagNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "Rename");
    EXPECT_EQ(names[1], "Commit");
}

TEST_F(TraceTest, AllFansOutAndMinusSubtracts)
{
    trace::setFlagsFromString("All,-Cache");
    EXPECT_TRUE(trace::flagEnabled(trace::Flag::Fetch));
    EXPECT_TRUE(trace::flagEnabled(trace::Flag::VcaCache));
    EXPECT_FALSE(trace::flagEnabled(trace::Flag::Cache));
    trace::clearAllFlags();
    EXPECT_FALSE(trace::anyFlagEnabled());
}

TEST_F(TraceTest, UnknownFlagIsFatal)
{
    EXPECT_THROW(trace::setFlagsFromString("Commit,Bogus"),
                 FatalError);
    EXPECT_FALSE(trace::setFlagByName("Bogus", true));
}

TEST_F(TraceTest, FlagHelpListsEveryFlag)
{
    const std::string help = trace::flagHelp();
    for (const auto &info : trace::allFlags())
        EXPECT_NE(help.find(info.name), std::string::npos) << info.name;
}

// ---------------------------------------------------------------------
// DPRINTF gating and formatting (compiled out under VCA_NTRACE)
// ---------------------------------------------------------------------

#ifndef VCA_NTRACE

TEST_F(TraceTest, DprintfIsGatedByItsFlag)
{
    DPRINTF(Commit, "must not appear %d", 1);
    EXPECT_TRUE(text().empty());

    trace::setFlag(trace::Flag::Commit, true);
    trace::setTraceCycle(42);
    DPRINTF(Commit, "retired %d", 7);
    DPRINTF(Fetch, "still disabled");
    EXPECT_EQ(text(), "42: Commit: retired 7\n");
}

TEST_F(TraceTest, DprintfDoesNotEvaluateArgsWhenDisabled)
{
    int evals = 0;
    auto bump = [&evals] { return ++evals; };
    DPRINTF(Rename, "%d", bump());
    EXPECT_EQ(evals, 0);
    trace::setFlag(trace::Flag::Rename, true);
    DPRINTF(Rename, "%d", bump());
    EXPECT_EQ(evals, 1);
}

TEST_F(TraceTest, DprintftStampsThread)
{
    trace::setFlag(trace::Flag::Squash, true);
    trace::setTraceCycle(9);
    DPRINTFT(Squash, 3, "flush after seq=%d", 17);
    EXPECT_EQ(text(), "9: T3: Squash: flush after seq=17\n");
}

#endif // !VCA_NTRACE

// ---------------------------------------------------------------------
// O3PipeView records
// ---------------------------------------------------------------------

trace::PipeRecord
sampleRecord()
{
    trace::PipeRecord rec;
    rec.seq = 12;
    rec.tid = 1;
    rec.pc = 0x40;
    rec.fetch = 100;
    rec.decode = 103;
    rec.rename = 104;
    rec.dispatch = 104;
    rec.issue = 106;
    rec.complete = 108;
    rec.commit = 110;
    rec.isStore = true;
    rec.storeComplete = 110;
    rec.disasm = "st r2, 8(r3)";
    return rec;
}

TEST_F(TraceTest, PipeTraceWriterEmitsO3PipeViewFormat)
{
    std::ostringstream os;
    trace::PipeTraceWriter writer(os);
    writer.write(sampleRecord());
    EXPECT_EQ(writer.recordsWritten(), 1u);
    const std::string out = os.str();
    EXPECT_NE(out.find("O3PipeView:fetch:100000:0x"), std::string::npos);
    EXPECT_NE(out.find(":1:12:st r2, 8(r3)"), std::string::npos);
    EXPECT_NE(out.find("O3PipeView:retire:110000:store:110000"),
              std::string::npos);
}

TEST_F(TraceTest, PipeTraceRoundTrips)
{
    std::ostringstream os;
    trace::PipeTraceWriter writer(os);
    writer.write(sampleRecord());

    std::istringstream is("unrelated line\n" + os.str());
    std::vector<trace::PipeRecord> parsed;
    std::string error;
    ASSERT_TRUE(trace::parsePipeTrace(is, parsed, &error)) << error;
    ASSERT_EQ(parsed.size(), 1u);
    const trace::PipeRecord &rec = parsed[0];
    EXPECT_EQ(rec.seq, 12u);
    EXPECT_EQ(rec.tid, 1u);
    EXPECT_EQ(rec.pc, 0x40u);
    EXPECT_EQ(rec.fetch, 100u);
    EXPECT_EQ(rec.issue, 106u);
    EXPECT_EQ(rec.commit, 110u);
    EXPECT_TRUE(rec.isStore);
    EXPECT_EQ(rec.storeComplete, 110u);
    EXPECT_EQ(rec.disasm, "st r2, 8(r3)");
    EXPECT_TRUE(rec.monotonic());
}

TEST_F(TraceTest, InstantRecordsAreCountedAndSkipped)
{
    std::ostringstream os;
    trace::PipeTraceWriter writer(os);
    writer.instant("window_overflow", 95);
    writer.write(sampleRecord());
    writer.instant("transfers spills=3 fills=2", 120);
    EXPECT_EQ(writer.instantsWritten(), 2u);
    EXPECT_NE(os.str().find("O3PipeView:instant:95000:window_overflow"),
              std::string::npos);

    std::istringstream is(os.str());
    std::vector<trace::PipeRecord> parsed;
    std::string error;
    std::uint64_t unknown = 0;
    ASSERT_TRUE(trace::parsePipeTrace(is, parsed, &error, 1000,
                                      &unknown))
        << error;
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(unknown, 2u) << "instants count as unknown record types";
    EXPECT_EQ(parsed[0].seq, 12u);
}

TEST_F(TraceTest, MonotonicRejectsReorderedStages)
{
    trace::PipeRecord rec = sampleRecord();
    EXPECT_TRUE(rec.monotonic());
    rec.issue = rec.complete + 1;
    EXPECT_FALSE(rec.monotonic());
}

// ---------------------------------------------------------------------
// Pipeline-order invariants on a real run
// ---------------------------------------------------------------------

TEST_F(TraceTest, RealRunSatisfiesStageOrderInvariants)
{
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("crafty"), false);
    cpu::CpuParams params =
        cpu::CpuParams::preset(cpu::RenamerKind::Baseline, 256, 1);
    cpu::OooCpu cpu(params, {prog});

    std::ostringstream os;
    cpu::attachPipeTracer(cpu, os);
    cpu.run(5'000, 1'000'000);

    std::istringstream is(os.str());
    std::vector<trace::PipeRecord> records;
    std::string error;
    ASSERT_TRUE(trace::parsePipeTrace(is, records, &error)) << error;
    ASSERT_GE(records.size(), 5'000u);

    Cycle lastCommit = 0;
    std::uint64_t lastSeq = 0;
    for (const auto &rec : records) {
        // fetch <= decode <= rename <= dispatch <= issue <= complete
        // <= retire, for every committed instruction.
        EXPECT_TRUE(rec.monotonic())
            << "seq " << rec.seq << ": " << rec.disasm;
        // Records appear in commit order.
        EXPECT_GE(rec.commit, lastCommit);
        EXPECT_GT(rec.seq, lastSeq);
        lastCommit = rec.commit;
        lastSeq = rec.seq;
        if (rec.isStore)
            EXPECT_GE(rec.storeComplete, rec.commit);
    }
}

TEST_F(TraceTest, VcaRunSatisfiesStageOrderInvariants)
{
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("crafty"), true);
    cpu::CpuParams params =
        cpu::CpuParams::preset(cpu::RenamerKind::Vca, 128, 1);
    cpu::OooCpu cpu(params, {prog});

    std::ostringstream os;
    cpu::attachPipeTracer(cpu, os, 3'000);
    cpu.run(5'000, 1'000'000);

    std::istringstream is(os.str());
    std::vector<trace::PipeRecord> records;
    ASSERT_TRUE(trace::parsePipeTrace(is, records));
    ASSERT_EQ(records.size(), 3'000u) << "maxInsts cap";
    for (const auto &rec : records)
        EXPECT_TRUE(rec.monotonic()) << "seq " << rec.seq;
}

// ---------------------------------------------------------------------
// Interval statistics
// ---------------------------------------------------------------------

TEST_F(TraceTest, IntervalRecorderClosesEveryN)
{
    trace::IntervalRecorder rec(10);
    double probeValue = 0;
    rec.addProbe("probe", [&probeValue] { return probeValue; });

    Cycle now = 100;
    for (int i = 0; i < 25; ++i) {
        probeValue += 2;
        rec.onCommit(now);
        now += 3;
    }
    rec.finish(now);

    ASSERT_EQ(rec.records().size(), 3u);
    const auto &r0 = rec.records()[0];
    EXPECT_EQ(r0.index, 0u);
    EXPECT_EQ(r0.committed, 10u);
    EXPECT_EQ(r0.committedCum, 10u);
    EXPECT_GT(r0.ipc, 0.0);
    ASSERT_EQ(r0.probes.size(), 1u);
    // First commit anchors the window: 9 further commits at +2 each.
    EXPECT_DOUBLE_EQ(r0.probes[0], 18.0);

    const auto &r1 = rec.records()[1];
    EXPECT_EQ(r1.committed, 10u);
    EXPECT_EQ(r1.committedCum, 20u);
    EXPECT_DOUBLE_EQ(r1.probes[0], 20.0);

    // finish() closes the 5-commit partial interval and flags it so
    // consumers do not weight it like a full interval.
    const auto &r2 = rec.records()[2];
    EXPECT_EQ(r2.committed, 5u);
    EXPECT_EQ(r2.committedCum, 25u);
    EXPECT_FALSE(r0.partial);
    EXPECT_FALSE(r1.partial);
    EXPECT_TRUE(r2.partial);
}

TEST_F(TraceTest, IntervalRecorderExactBoundaryIsNotPartial)
{
    trace::IntervalRecorder rec(10);
    Cycle now = 0;
    for (int i = 0; i < 20; ++i) {
        rec.onCommit(now);
        now += 2;
    }
    rec.finish(now);

    // The run ends exactly on an interval boundary: finish() must not
    // add an empty record, and no record is partial.
    ASSERT_EQ(rec.records().size(), 2u);
    for (const auto &r : rec.records())
        EXPECT_FALSE(r.partial);
}

TEST_F(TraceTest, IntervalRecorderOnRealCpu)
{
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("crafty"), false);
    cpu::CpuParams params =
        cpu::CpuParams::preset(cpu::RenamerKind::Baseline, 256, 1);
    cpu::OooCpu cpu(params, {prog});

    trace::IntervalRecorder rec(1'000);
    rec.addProbe("dcache_accesses", [&cpu] {
        return cpu.memSystem().dcache().accesses.value();
    });
    cpu.addCommitListener([&cpu, &rec](const cpu::DynInst &) {
        rec.onCommit(cpu.currentCycle());
    });
    auto res = cpu.run(10'500, 1'000'000);
    rec.finish(cpu.currentCycle());

    ASSERT_GE(rec.records().size(), 10u);
    std::uint64_t cum = 0;
    Cycle lastEnd = 0;
    for (const auto &r : rec.records()) {
        cum += r.committed;
        EXPECT_EQ(r.committedCum, cum);
        EXPECT_GE(r.startCycle, lastEnd);
        EXPECT_GT(r.endCycle, r.startCycle);
        const double ipc = double(r.committed) /
                           double(r.endCycle - r.startCycle);
        EXPECT_NEAR(r.ipc, ipc, 1e-9);
        EXPECT_GE(r.probes.at(0), 0.0);
        lastEnd = r.endCycle;
    }
    EXPECT_EQ(cum, res.totalInsts);
}

TEST_F(TraceTest, IntervalRecorderRejectsZeroLength)
{
    EXPECT_THROW(trace::IntervalRecorder(0), FatalError);
}

} // namespace
