/**
 * @file
 * Figure 6 reproduction: execution time with a single data-cache port,
 * normalized to the DUAL-port baseline with 256 physical registers.
 *
 * Expected shape (paper Section 4.1): VCA's cache-traffic reduction is
 * worth a port - single-port VCA at 256 registers performs within
 * ~0.5% of the dual-port baseline, and beats the single-port baseline
 * by ~7%.
 */

#include "bench_common.hh"

using namespace vca;
using namespace vca::bench;

int
main()
{
    setQuiet(true);
    const std::vector<unsigned> sizes = {64, 128, 192, 256};
    analysis::RunOptions opts = defaultOptions();
    opts.dcachePorts = 1;
    // Normalization reference stays the dual-port baseline @ 256.
    const auto series = regWindowSweep(sizes, opts,
                                       /*metricIsDcache=*/false,
                                       /*normalizePorts=*/2);
    printSeries("Figure 6: Single cache port execution time "
                "(normalized to dual-port baseline @ 256)",
                "norm. execution time", sizes, series);
    printCycleAccounting(regWindowArchs(), 192, opts);
    return finishBench();
}
