/**
 * @file
 * vca-explain: differential run explainer.
 *
 * Attributes the CPI gap between two runs to the hierarchical cycle
 * taxonomy (README, Observability) and localizes where the gap opens
 * along the committed-instruction axis. Runs come either from
 * vca-sim --stats-json documents or from config specs simulated
 * through the shared sweep cache:
 *
 *   vca-explain --run A.json --run B.json
 *   vca-explain --spec bench=crafty,arch=vca,regs=192 \
 *               --spec bench=crafty,arch=regwindow,regs=192
 *   vca-explain --run base.json --spec bench=crafty,arch=vca,regs=64
 *
 * A second report mode attributes sampled-vs-detailed IPC error: give
 * --sampling one non-detailed spec and the tool simulates both it and
 * the matched detailed configuration through the sweep cache, then
 * reports per-sample deviation, transplant-warmth correlation and the
 * per-SimPoint-phase error rollup:
 *
 *   vca-explain --sampling \
 *               --spec bench=crafty,arch=vca,regs=192,mode=sampled
 *
 * Options:
 *   --markdown   render the report as a markdown document
 *   --sampling   sampled-vs-detailed error attribution (one spec)
 *   --selftest   planted-gap + sampling self tests (CI); no inputs
 *
 * Exit status: 0 report printed / selftest passed, 1 selftest or
 * simulation failure, 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/explain.hh"
#include "analysis/runner.hh"
#include "sim/logging.hh"

namespace {

using namespace vca;

void
usage(std::FILE *to)
{
    std::fprintf(to,
        "usage: vca-explain (--run FILE | --spec KEY=VAL[,...]) x2\n"
        "                   [--markdown]\n"
        "       vca-explain --sampling --spec KEY=VAL[,...]\n"
        "       vca-explain --selftest\n"
        "\n"
        "Attribute the CPI gap between two runs (A then B) to the\n"
        "cycle-taxonomy leaves and report where the gap opens; or,\n"
        "with --sampling, attribute one non-detailed spec's IPC error\n"
        "against its matched detailed run (per sample, per SimPoint\n"
        "phase, and against transplant warmth).\n"
        "\n"
        "  --run FILE   a vca-sim --stats-json document\n"
        "  --spec ...   simulate a config through the sweep cache:\n"
        "               bench=NAME[+NAME2] arch=baseline|regwindow|\n"
        "               ideal|vca regs=N [insts=N] [warmup=N]\n"
        "               [mode=detailed|sampled|simpoint] [period=N]\n"
        "               [quantum=N] [fwarm=N] [dwarm=N]\n"
        "  --markdown   emit a markdown report instead of plain text\n"
        "  --sampling   sampled-vs-detailed error attribution; takes\n"
        "               exactly one --spec with a non-detailed mode\n"
        "  --selftest   verify planted gaps/errors are attributed\n"
        "               correctly\n");
}

cpu::RenamerKind
parseArch(const std::string &name)
{
    if (name == "baseline")
        return cpu::RenamerKind::Baseline;
    if (name == "regwindow" || name == "conv")
        return cpu::RenamerKind::ConvWindow;
    if (name == "ideal")
        return cpu::RenamerKind::IdealWindow;
    if (name == "vca")
        return cpu::RenamerKind::Vca;
    fatal("vca-explain: unknown arch '%s' (expected baseline, "
               "regwindow, ideal or vca)", name.c_str());
}

/** Parse one --spec into a sweep point + readable config string. */
analysis::SweepPoint
parseSpecPoint(const std::string &spec, std::string &config)
{
    std::string bench = "crafty";
    std::string arch = "vca";
    unsigned regs = 192;
    analysis::RunOptions opts;

    std::string rest = spec;
    while (!rest.empty()) {
        const size_t comma = rest.find(',');
        const std::string field = rest.substr(0, comma);
        rest = comma == std::string::npos ? ""
                                          : rest.substr(comma + 1);
        const size_t eq = field.find('=');
        if (eq == std::string::npos)
            fatal("vca-explain: bad --spec field '%s' "
                       "(expected key=value)", field.c_str());
        const std::string key = field.substr(0, eq);
        const std::string val = field.substr(eq + 1);
        if (key == "bench")
            bench = val;
        else if (key == "arch")
            arch = val;
        else if (key == "regs")
            regs = static_cast<unsigned>(std::stoul(val));
        else if (key == "insts")
            opts.measureInsts = std::stoull(val);
        else if (key == "warmup")
            opts.warmupInsts = std::stoull(val);
        else if (key == "mode") {
            if (!analysis::parseSimMode(val, opts.mode))
                fatal("vca-explain: unknown mode '%s' "
                           "(detailed|simpoint|sampled)", val.c_str());
        } else if (key == "period")
            opts.samplePeriodInsts = std::stoull(val);
        else if (key == "quantum")
            opts.sampleQuantumInsts = std::stoull(val);
        else if (key == "fwarm")
            opts.sampleFuncWarmInsts = std::stoull(val);
        else if (key == "dwarm")
            opts.sampleDetailWarmInsts = std::stoull(val);
        else
            fatal("vca-explain: unknown --spec key '%s'",
                       key.c_str());
    }

    const cpu::RenamerKind kind = parseArch(arch);
    analysis::SweepPoint point =
        analysis::makePoint(bench, kind, regs, opts);
    // "bench=a+b" runs an SMT workload, one benchmark per thread.
    if (bench.find('+') != std::string::npos) {
        point.benches.clear();
        std::string b = bench;
        while (!b.empty()) {
            const size_t plus = b.find('+');
            point.benches.push_back(b.substr(0, plus));
            b = plus == std::string::npos ? "" : b.substr(plus + 1);
        }
        point.opts.numThreads =
            static_cast<unsigned>(point.benches.size());
    }

    config = "bench=" + bench + " arch=" + arch +
             " regs=" + std::to_string(regs);
    if (opts.mode != analysis::SimMode::Detailed)
        config += std::string(" mode=") +
                  analysis::simModeName(opts.mode);
    return point;
}

/** Simulate one --spec through the shared on-disk sweep cache. */
analysis::ExplainInput
runSpec(const std::string &spec)
{
    std::string config;
    const analysis::SweepPoint point = parseSpecPoint(spec, config);
    const analysis::Measurement m =
        analysis::SweepRunner::global().runPoint(point);
    if (!m.ok)
        fatal("vca-explain: spec '%s' is inoperable: %s",
                   spec.c_str(), m.error.c_str());
    return analysis::explainInputFromMeasurement(spec, config, m);
}

/**
 * --sampling: run the spec in its non-detailed mode and the matched
 * detailed configuration, then attribute the sampled IPC error.
 */
int
runSamplingReport(const std::string &spec, bool markdown)
{
    std::string config;
    analysis::SweepPoint point = parseSpecPoint(spec, config);
    if (point.opts.mode == analysis::SimMode::Detailed)
        fatal("vca-explain: --sampling needs a non-detailed spec "
                   "(add mode=sampled or mode=simpoint)");

    analysis::SweepPoint detailedPoint = point;
    detailedPoint.opts.mode = analysis::SimMode::Detailed;

    const analysis::Measurement sampled =
        analysis::SweepRunner::global().runPoint(point);
    if (!sampled.ok)
        fatal("vca-explain: spec '%s' is inoperable: %s",
                   spec.c_str(), sampled.error.c_str());
    const analysis::Measurement detailed =
        analysis::SweepRunner::global().runPoint(detailedPoint);
    if (!detailed.ok)
        fatal("vca-explain: matched detailed run for '%s' is "
                   "inoperable: %s", spec.c_str(),
                   detailed.error.c_str());

    const analysis::SamplingReport report =
        analysis::explainSampling(config, sampled, detailed);
    std::fputs(analysis::renderSamplingReport(report, markdown)
                   .c_str(),
               stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool markdown = false;
    bool selftest = false;
    bool sampling = false;
    // (kind, value) in order: kind 'r' = --run file, 's' = --spec.
    std::vector<std::pair<char, std::string>> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "vca-explain: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--run")
            inputs.emplace_back('r', value("--run"));
        else if (arg == "--spec")
            inputs.emplace_back('s', value("--spec"));
        else if (arg == "--markdown")
            markdown = true;
        else if (arg == "--sampling")
            sampling = true;
        else if (arg == "--selftest")
            selftest = true;
        else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "vca-explain: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (selftest) {
        if (!inputs.empty()) {
            std::fprintf(stderr, "vca-explain: --selftest takes no "
                                 "inputs\n");
            return 2;
        }
        const int gap = vca::analysis::explainSelftest();
        const int samp = vca::analysis::samplingSelftest();
        return (gap == 0 && samp == 0) ? 0 : 1;
    }
    if (sampling) {
        if (inputs.size() != 1 || inputs[0].first != 's') {
            std::fprintf(stderr, "vca-explain: --sampling takes "
                                 "exactly one --spec input\n");
            return 2;
        }
        try {
            return runSamplingReport(inputs[0].second, markdown);
        } catch (const vca::FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }
    if (inputs.size() != 2) {
        std::fprintf(stderr, "vca-explain: need exactly two inputs "
                             "(--run and/or --spec), got %zu\n",
                     inputs.size());
        usage(stderr);
        return 2;
    }

    try {
        std::vector<vca::analysis::ExplainInput> runs;
        for (const auto &[kind, value] : inputs)
            runs.push_back(kind == 'r'
                               ? vca::analysis::loadRunJson(value, "")
                               : runSpec(value));
        const vca::analysis::ExplainReport report =
            vca::analysis::explain(runs[0], runs[1]);
        std::fputs(vca::analysis::renderReport(report, markdown)
                       .c_str(),
                   stdout);
        return 0;
    } catch (const vca::FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
