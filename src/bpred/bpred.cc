#include "bpred/bpred.hh"

#include "sim/logging.hh"

namespace vca::bpred {

BranchPredictor::BranchPredictor(const BPredParams &params,
                                 unsigned numThreads,
                                 stats::StatGroup *parent)
    : stats::StatGroup("bpred", parent),
      lookups(this, "lookups", "conditional branch predictions"),
      condMispredicts(this, "cond_mispredicts",
                      "mispredicted conditional branches"),
      rasMispredicts(this, "ras_mispredicts", "mispredicted RET targets"),
      params_(params)
{
    bimodal_.assign(size_t(1) << params_.bimodalBits, 1);
    gshare_.assign(size_t(1) << params_.gshareBits, 1);
    chooser_.assign(size_t(1) << params_.chooserBits, 2);
    threads_.resize(numThreads);
    for (auto &t : threads_)
        t.ras.assign(params_.rasEntries, 0);
}

bool
BranchPredictor::predict(ThreadId tid, Addr pc, BPredCheckpoint &ckpt)
{
    ++lookups;
    ThreadState &ts = threads_.at(tid);
    ckpt = snapshot(tid);

    const std::uint64_t mask = (std::uint64_t(1) << params_.historyBits) - 1;
    const bool bim = taken(bimodal_[bimodalIndex(pc)]);
    const bool gsh = taken(gshare_[gshareIndex(pc, ts.history & mask)]);
    const bool useGshare = taken(chooser_[bimodalIndex(pc)]);
    const bool pred = useGshare ? gsh : bim;

    ts.history = ((ts.history << 1) | (pred ? 1 : 0)) & mask;
    return pred;
}

void
BranchPredictor::pushRas(ThreadId tid, Addr returnPc, BPredCheckpoint &ckpt)
{
    ThreadState &ts = threads_.at(tid);
    ckpt = snapshot(tid);
    ts.ras[ts.rasTop % params_.rasEntries] = returnPc;
    ts.rasTop = (ts.rasTop + 1) % (2 * params_.rasEntries);
}

Addr
BranchPredictor::popRas(ThreadId tid, BPredCheckpoint &ckpt)
{
    ThreadState &ts = threads_.at(tid);
    ckpt = snapshot(tid);
    ts.rasTop = (ts.rasTop + 2 * params_.rasEntries - 1) %
                (2 * params_.rasEntries);
    return ts.ras[ts.rasTop % params_.rasEntries];
}

BPredCheckpoint
BranchPredictor::snapshot(ThreadId tid) const
{
    const ThreadState &ts = threads_.at(tid);
    BPredCheckpoint ckpt;
    ckpt.history = ts.history;
    ckpt.rasTop = ts.rasTop;
    const unsigned prev = (ts.rasTop + 2 * params_.rasEntries - 1) %
                          (2 * params_.rasEntries);
    ckpt.rasTopValue = ts.ras[prev % params_.rasEntries];
    return ckpt;
}

void
BranchPredictor::restore(ThreadId tid, const BPredCheckpoint &ckpt)
{
    ThreadState &ts = threads_.at(tid);
    ts.history = ckpt.history;
    ts.rasTop = ckpt.rasTop;
    const unsigned prev = (ts.rasTop + 2 * params_.rasEntries - 1) %
                          (2 * params_.rasEntries);
    ts.ras[prev % params_.rasEntries] = ckpt.rasTopValue;
}

void
BranchPredictor::repairHistory(ThreadId tid, const BPredCheckpoint &ckpt,
                               bool actualTaken)
{
    restore(tid, ckpt);
    ThreadState &ts = threads_.at(tid);
    const std::uint64_t mask = (std::uint64_t(1) << params_.historyBits) - 1;
    ts.history = ((ts.history << 1) | (actualTaken ? 1 : 0)) & mask;
}

void
BranchPredictor::update(ThreadId tid, Addr pc, bool actualTaken,
                        std::uint64_t historyAtPredict)
{
    (void)tid;
    const std::uint64_t mask = (std::uint64_t(1) << params_.historyBits) - 1;
    Counter &bim = bimodal_[bimodalIndex(pc)];
    Counter &gsh = gshare_[gshareIndex(pc, historyAtPredict & mask)];
    Counter &cho = chooser_[bimodalIndex(pc)];

    const bool bimCorrect = taken(bim) == actualTaken;
    const bool gshCorrect = taken(gsh) == actualTaken;
    if (bimCorrect != gshCorrect)
        train(cho, gshCorrect);

    train(bim, actualTaken);
    train(gsh, actualTaken);
}

void
BranchPredictor::copyStateFrom(const BranchPredictor &other)
{
    if (other.bimodal_.size() != bimodal_.size() ||
        other.gshare_.size() != gshare_.size() ||
        other.chooser_.size() != chooser_.size() ||
        other.threads_.size() != threads_.size()) {
        panic("bpred: copyStateFrom across different geometries");
    }
    bimodal_ = other.bimodal_;
    gshare_ = other.gshare_;
    chooser_ = other.chooser_;
    threads_ = other.threads_;
}

} // namespace vca::bpred
