/**
 * @file
 * Bridges the CPU's observation hooks onto the Chrome trace writer.
 *
 * Simulated-time tracks reuse the same commit-listener data the
 * O3PipeView tracer consumes: every committed instruction becomes a
 * nested slice stack (outer = lifetime fetch->retire, inner = one
 * slice per pipeline phase) on a per-thread pool of lanes, so
 * overlapping in-flight instructions render side by side in Perfetto
 * exactly like a pipeline diagram.  Window overflow/underflow traps
 * become instant events and VCA spill/fill traffic becomes a counter
 * track with burst instants.
 *
 * One simulated cycle maps to one microsecond of trace time.
 */

#ifndef VCA_TELEMETRY_PIPELINE_TRACE_HH
#define VCA_TELEMETRY_PIPELINE_TRACE_HH

#include "sim/types.hh"
#include "telemetry/chrome_trace.hh"

namespace vca::cpu {
class OooCpu;
} // namespace vca::cpu

namespace vca::telemetry {

struct ChromeSimTraceOptions
{
    /** Stop emitting per-instruction slices after this many committed
     *  instructions (0 = no cap).  Instants and counters continue. */
    InstCount maxInsts = 0;
    /** Aggregation window for the spill/fill counter track. */
    unsigned burstWindowCycles = 64;
    /** Transfers within one window that qualify as a burst instant. */
    unsigned burstInstantThreshold = 8;
    /** pid of the simulated-time process group in the trace. */
    int pid = 1;
    /** Lanes per simulated thread before slices double up. */
    unsigned maxLanesPerThread = 32;
};

/**
 * Attach simulated-time Chrome tracks to @p cpu.  The writer must
 * outlive the CPU.  Composes with other commit listeners (pipeview,
 * interval stats, co-simulation).
 */
void attachChromeSimTracer(cpu::OooCpu &cpu, ChromeTraceWriter &writer,
                           ChromeSimTraceOptions opts = {});

} // namespace vca::telemetry

#endif // VCA_TELEMETRY_PIPELINE_TRACE_HH
