/**
 * @file
 * Machine-readable statistics export.
 *
 * dumpJson() walks a StatGroup tree with a StatVisitor and emits one
 * nested JSON object per group:
 *
 *   { "cpu": {
 *       "cycles": 1234,
 *       "rob_occupancy": { "samples": ..., "mean": ...,
 *                          "buckets": [ {"lo": 0, "count": 7}, ... ] },
 *       "mem": { "dcache": { "accesses": ... } } } }
 *
 * Scalars and formulas export as numbers; averages as {mean, count};
 * distributions as an object with summary fields and a sparse bucket
 * array. The schema is documented in README.md (Observability).
 */

#ifndef VCA_TRACE_STATS_JSON_HH
#define VCA_TRACE_STATS_JSON_HH

#include <ostream>
#include <string>

#include "stats/statistics.hh"
#include "trace/json.hh"

namespace vca::trace {

/**
 * Version of the stats-JSON document vca-sim writes with --stats-json
 * (the "schemaVersion" root key). scripts/check_stats_schema.py
 * validates documents against it. History:
 *   1  implicit (no schemaVersion key): config/summary/cpu/host roots,
 *      optional intervals array
 *   2  adds schemaVersion, the cpu.cycle_accounting.taxonomy subtree,
 *      per-interval "partial" flags and "tax.*" leaf probes
 *   3  adds config.mode and the non-detailed document shape: a
 *      "sampling" block (per-sample records plus the mean/variance/
 *      95%-CI summary) instead of the cpu tree, which only a detailed
 *      run's single long-lived core can produce
 */
inline constexpr unsigned kStatsJsonSchemaVersion = 3;

/**
 * Export a statistics tree as JSON. The group itself becomes the
 * single key of the top-level object.
 */
void dumpJson(const stats::StatGroup &group, std::ostream &os);

/**
 * Export a statistics tree into an already-open JsonWriter object
 * scope: emits `"<group name>": {...}` so callers can wrap the stats
 * with their own metadata (run config, intervals, ...).
 */
void writeJsonGroup(const stats::StatGroup &group, JsonWriter &w);

/** Convenience: dumpJson into a string. */
std::string dumpJsonString(const stats::StatGroup &group);

} // namespace vca::trace

#endif // VCA_TRACE_STATS_JSON_HH
