#include "telemetry/pipeline_trace.hh"

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cpu/ooo_cpu.hh"
#include "cpu/tracer.hh"
#include "trace/pipe_trace.hh"

namespace vca::telemetry {

namespace {

// Lane tids group per simulated thread: thread t owns [t*100, t*100+90].
constexpr int kLanesPerThreadBase = 100;
constexpr int kEventLane = 90;

struct SimTracerState
{
    ChromeTraceWriter &writer;
    ChromeSimTraceOptions opts;
    InstCount traced = 0;
    // Per simulated thread: the retire time of the last slice on each
    // lane; a committing instruction takes the first lane that was
    // free at its fetch time.
    std::vector<std::vector<Cycle>> laneEnd;
    std::unordered_set<int> namedTids;
    // Spill/fill aggregation (global across threads).
    Cycle windowStart = 0;
    Cycle windowEnd = 0;
    unsigned spills = 0;
    unsigned fills = 0;
    bool lastWindowEmpty = true;

    SimTracerState(ChromeTraceWriter &w, const ChromeSimTraceOptions &o)
        : writer(w), opts(o) {}

    int
    laneTid(unsigned tid, unsigned lane)
    {
        const int t = static_cast<int>(tid) * kLanesPerThreadBase +
                      static_cast<int>(lane);
        if (namedTids.insert(t).second) {
            writer.setThreadName(opts.pid, t,
                                 "T" + std::to_string(tid) + " lane " +
                                     std::to_string(lane));
        }
        return t;
    }

    int
    eventTid(unsigned tid)
    {
        const int t = static_cast<int>(tid) * kLanesPerThreadBase +
                      kEventLane;
        if (namedTids.insert(t).second) {
            writer.setThreadName(opts.pid, t,
                                 "T" + std::to_string(tid) + " events");
        }
        return t;
    }

    void
    flushWindow()
    {
        const bool empty = spills == 0 && fills == 0;
        if (!empty || !lastWindowEmpty) {
            writer.counter(opts.pid, 0, "vca transfers",
                           static_cast<double>(windowStart),
                           {{"spills", double(spills)},
                            {"fills", double(fills)}});
        }
        if (!empty && spills + fills >= opts.burstInstantThreshold) {
            writer.instant(opts.pid, eventTid(0), "transfer burst",
                           static_cast<double>(windowStart),
                           "{\"spills\":" + std::to_string(spills) +
                               ",\"fills\":" + std::to_string(fills) +
                               "}");
        }
        lastWindowEmpty = empty;
        spills = 0;
        fills = 0;
    }

    void
    onTransfer(Cycle cycle, bool isStore)
    {
        if (windowEnd == 0) {
            windowStart = cycle;
            windowEnd = cycle + opts.burstWindowCycles;
        }
        while (cycle >= windowEnd) {
            flushWindow();
            windowStart = windowEnd;
            windowEnd += opts.burstWindowCycles;
        }
        if (isStore)
            ++spills;
        else
            ++fills;
    }

    void
    onCommit(const trace::PipeRecord &rec)
    {
        if (opts.maxInsts && traced >= opts.maxInsts)
            return;
        ++traced;

        const unsigned tid = rec.tid;
        if (tid >= laneEnd.size())
            laneEnd.resize(tid + 1);
        auto &lanes = laneEnd[tid];
        unsigned lane = 0;
        for (; lane < lanes.size(); ++lane) {
            if (lanes[lane] <= rec.fetch)
                break;
        }
        if (lane == lanes.size()) {
            if (lanes.size() < opts.maxLanesPerThread) {
                lanes.push_back(0);
            } else {
                // All lanes busy at fetch time: double up on the one
                // that frees first (rare; rendering-only compromise).
                lane = 0;
                for (unsigned i = 1; i < lanes.size(); ++i)
                    if (lanes[i] < lanes[lane])
                        lane = i;
            }
        }
        const int t = laneTid(tid, lane);
        const double retire = static_cast<double>(rec.commit) + 1;
        lanes[lane] = rec.commit + 1;

        writer.begin(opts.pid, t, rec.disasm,
                     static_cast<double>(rec.fetch),
                     "{\"seq\":" + std::to_string(rec.seq) +
                         ",\"pc\":" + std::to_string(rec.pc) + "}");
        const struct
        {
            const char *name;
            Cycle from, to;
        } phases[] = {
            {"fetch", rec.fetch, rec.decode},
            {"decode", rec.decode, rec.rename},
            {"rename", rec.rename, rec.dispatch},
            {"dispatch", rec.dispatch, rec.issue},
            {"issue", rec.issue, rec.complete},
            {"complete", rec.complete, rec.commit},
        };
        for (const auto &p : phases) {
            if (p.to > p.from)
                writer.slice(opts.pid, t, p.name,
                             static_cast<double>(p.from),
                             static_cast<double>(p.to - p.from));
        }
        writer.slice(opts.pid, t, "retire",
                     static_cast<double>(rec.commit), 1);
        writer.end(opts.pid, t, retire);
    }
};

} // namespace

void
attachChromeSimTracer(cpu::OooCpu &cpu, ChromeTraceWriter &writer,
                      ChromeSimTraceOptions opts)
{
    auto state = std::make_shared<SimTracerState>(writer, opts);
    writer.setProcessName(opts.pid, "simulated time (1 cycle = 1us)");

    cpu.addCommitListener(
        [state, &cpu](const cpu::DynInst &inst) {
            state->onCommit(cpu::makePipeRecord(cpu, inst));
        });

    cpu.addSimEventListener([state](const cpu::OooCpu::SimEvent &ev) {
        using Kind = cpu::OooCpu::SimEvent::Kind;
        switch (ev.kind) {
          case Kind::WindowOverflow:
            state->writer.instant(state->opts.pid, state->eventTid(ev.tid),
                                  "window overflow",
                                  static_cast<double>(ev.cycle));
            break;
          case Kind::WindowUnderflow:
            state->writer.instant(state->opts.pid, state->eventTid(ev.tid),
                                  "window underflow",
                                  static_cast<double>(ev.cycle));
            break;
          case Kind::Spill:
            state->onTransfer(ev.cycle, true);
            break;
          case Kind::Fill:
            state->onTransfer(ev.cycle, false);
            break;
        }
    });
}

} // namespace vca::telemetry
