#include "stats/statistics.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace vca::stats {

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (!parent)
        panic("stat '%s' created without a parent group", name_.c_str());
    parent->addStat(this);
}

namespace {

void
printLine(std::ostream &os, const std::string &name, double value,
          const std::string &desc)
{
    os << std::left << std::setw(40) << name << " "
       << std::right << std::setw(16) << std::setprecision(6) << value
       << "  # " << desc << "\n";
}

} // namespace

void
Scalar::print(std::ostream &os) const
{
    printLine(os, name(), value_, desc());
}

void
Average::print(std::ostream &os) const
{
    printLine(os, name() + ".mean", mean(), desc());
    printLine(os, name() + ".count", static_cast<double>(count_), desc());
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, double min, double max,
                           unsigned buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      min_(min), max_(max)
{
    if (max <= min)
        panic("Distribution '%s': max <= min", this->name().c_str());
    if (buckets == 0)
        panic("Distribution '%s': zero buckets", this->name().c_str());
    bucketSize_ = (max - min) / buckets;
    counts_.assign(buckets, 0);
}

void
Distribution::print(std::ostream &os) const
{
    printLine(os, name() + ".samples", static_cast<double>(samples_), desc());
    printLine(os, name() + ".mean", mean(), desc());
    printLine(os, name() + ".min", minSampled_, desc());
    printLine(os, name() + ".max", maxSampled_, desc());
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        double lo = min_ + bucketSize_ * static_cast<double>(i);
        os << std::left << std::setw(40)
           << (name() + "[" + std::to_string(lo) + "]") << " "
           << std::right << std::setw(16) << counts_[i] << "\n";
    }
}

void
Distribution::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0;
    minSampled_ = 0;
    maxSampled_ = 0;
}

void
Formula::print(std::ostream &os) const
{
    printLine(os, name(), value(), desc());
}

void
Scalar::accept(StatVisitor &v) const
{
    v.visitScalar(*this);
}

void
Average::accept(StatVisitor &v) const
{
    v.visitAverage(*this);
}

void
Distribution::accept(StatVisitor &v) const
{
    v.visitDistribution(*this);
}

void
Formula::accept(StatVisitor &v) const
{
    v.visitFormula(*this);
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->removeChild(this);
}

std::string
StatGroup::path() const
{
    if (!parent_ || parent_->name_.empty())
        return name_;
    return parent_->path() + "." + name_;
}

void
StatGroup::addStat(StatBase *stat)
{
    stats_.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::removeChild(StatGroup *child)
{
    auto it = std::find(children_.begin(), children_.end(), child);
    if (it != children_.end())
        children_.erase(it);
}

void
StatGroup::dump(std::ostream &os) const
{
    std::vector<StatBase *> sorted = stats_;
    std::sort(sorted.begin(), sorted.end(),
              [](const StatBase *a, const StatBase *b) {
                  return a->name() < b->name();
              });
    std::string prefix = path();
    for (const StatBase *s : sorted) {
        // Temporarily prepend the group path when printing.
        std::ostringstream line;
        s->print(line);
        std::string text = line.str();
        // Prefix every line with the group path.
        size_t pos = 0;
        while (pos < text.size()) {
            size_t end = text.find('\n', pos);
            if (end == std::string::npos)
                end = text.size();
            if (!prefix.empty())
                os << prefix << ".";
            os << text.substr(pos, end - pos) << "\n";
            pos = end + 1;
        }
    }
    for (const StatGroup *child : children_)
        child->dump(os);
}

void
StatGroup::resetStats()
{
    for (StatBase *s : stats_)
        s->reset();
    for (StatGroup *child : children_)
        child->resetStats();
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const StatBase *s : stats_) {
        if (s->name() == name)
            return s;
    }
    return nullptr;
}

const StatGroup *
StatGroup::childGroup(const std::string &name) const
{
    for (const StatGroup *child : children_) {
        if (child->name_ == name)
            return child;
    }
    return nullptr;
}

namespace {

/** Split "a.b.c" into components; empty components are dropped. */
std::vector<std::string>
splitPath(const std::string &dotted)
{
    std::vector<std::string> parts;
    size_t pos = 0;
    while (pos <= dotted.size()) {
        size_t dot = dotted.find('.', pos);
        if (dot == std::string::npos)
            dot = dotted.size();
        if (dot > pos)
            parts.push_back(dotted.substr(pos, dot - pos));
        pos = dot + 1;
    }
    return parts;
}

} // namespace

const StatBase *
StatGroup::findPath(const std::string &dotted) const
{
    std::vector<std::string> parts = splitPath(dotted);
    if (parts.empty())
        return nullptr;
    size_t i = 0;
    if (parts.size() > 1 && parts[0] == name_)
        i = 1;
    const StatGroup *group = this;
    for (; i + 1 < parts.size(); ++i) {
        group = group->childGroup(parts[i]);
        if (!group)
            return nullptr;
    }
    return group->find(parts[i]);
}

const StatGroup *
StatGroup::findGroup(const std::string &dotted) const
{
    std::vector<std::string> parts = splitPath(dotted);
    size_t i = 0;
    if (!parts.empty() && parts[0] == name_)
        i = 1;
    const StatGroup *group = this;
    for (; i < parts.size(); ++i) {
        group = group->childGroup(parts[i]);
        if (!group)
            return nullptr;
    }
    return group;
}

void
StatGroup::visit(StatVisitor &v) const
{
    v.beginGroup(*this);
    std::vector<StatBase *> sorted = stats_;
    std::sort(sorted.begin(), sorted.end(),
              [](const StatBase *a, const StatBase *b) {
                  return a->name() < b->name();
              });
    for (const StatBase *s : sorted)
        s->accept(v);
    for (const StatGroup *child : children_)
        child->visit(v);
    v.endGroup(*this);
}

} // namespace vca::stats
