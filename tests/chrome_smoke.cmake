# Smoke test: vca-sim --chrome-trace on a tiny workload must produce a
# trace that passes scripts/check_chrome_trace.py (valid trace-event
# JSON, monotone per-track timestamps, balanced B/E slices).
#
# Invoked by ctest (see CMakeLists.txt) with:
#   VCA_SIM   path to the vca-sim binary
#   PYTHON3   python3 interpreter
#   CHECKER   scripts/check_chrome_trace.py
#   OUT       scratch path for the trace JSON

execute_process(
    COMMAND "${VCA_SIM}" --bench=crafty --arch=vca --regs=192
            --warmup=2000 --insts=20000 --stats=false
            --reg-telemetry=true "--chrome-trace=${OUT}"
    RESULT_VARIABLE sim_rc)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR "vca-sim --chrome-trace failed (rc=${sim_rc})")
endif()

execute_process(
    COMMAND "${PYTHON3}" "${CHECKER}" "${OUT}" --min-events 100
    RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
            "chrome trace failed validation (rc=${check_rc})")
endif()

file(REMOVE "${OUT}")
