/**
 * @file
 * Building your own workload: define a BenchProfile, generate both ABI
 * binaries, validate them functionally, and measure the VCA benefit.
 *
 * This is the path a user takes to study their own workload shape
 * (e.g. "my workload calls every 80 instructions with 10 live locals
 * per frame - what does VCA buy me?").
 */

#include <cstdio>

#include "analysis/experiment.hh"
#include "func/func_sim.hh"
#include "wload/generator.hh"

using namespace vca;
using cpu::RenamerKind;

int
main()
{
    setQuiet(true);

    // A very call-heavy, deeply recursive profile: small bodies, many
    // saved registers - the best case for register windows.
    wload::BenchProfile prof;
    prof.name = "callstorm";
    prof.numFuncs = 32;
    prof.callFanout = 3;
    prof.callSpan = 4;
    prof.bodyOps = 24;
    prof.avgLocals = 10;
    prof.leafFrac = 0.3;
    prof.loopTripMean = 3;
    prof.randomBranchFrac = 0.2;
    prof.footprintBytes = 128 * 1024;
    prof.memOpFrac = 0.25;
    prof.fpFrac = 0.0;
    prof.targetDynInsts = 1'000'000;
    prof.seed = 2026;

    // Generate both ABIs and sanity-check them functionally.
    const isa::Program *windowed = wload::cachedProgram(prof, true);
    const isa::Program *flat = wload::cachedProgram(prof, false);

    mem::SparseMemory mw, mf;
    func::FuncSim fw(*windowed, mw), ff(*flat, mf);
    const auto sw = fw.run(500'000'000);
    const auto sf = ff.run(500'000'000);
    std::printf("generated '%s': %zu/%zu static insts "
                "(windowed/baseline)\n",
                prof.name.c_str(), windowed->size(), flat->size());
    std::printf("dynamic: %llu vs %llu insts -> path ratio %.3f, "
                "%.0f insts/call, max depth %u\n\n",
                (unsigned long long)sw.insts,
                (unsigned long long)sf.insts,
                double(sw.insts) / double(sf.insts),
                double(sf.insts) / double(sf.calls), sf.maxCallDepth);

    analysis::RunOptions opts;
    opts.warmupInsts = 15'000;
    opts.measureInsts = 150'000;

    std::printf("%-12s %10s %14s\n", "arch", "exec time",
                "dcache accesses");
    double base = 0, baseAcc = 0;
    for (RenamerKind kind :
         {RenamerKind::Baseline, RenamerKind::ConvWindow,
          RenamerKind::Vca}) {
        const auto m = analysis::runBench(prof, kind, 192, opts);
        if (!m.ok) {
            std::printf("%-12s cannot operate\n",
                        cpu::renamerKindName(kind));
            continue;
        }
        const double t = analysis::executionTime(prof, kind, m);
        const double a = analysis::totalDcacheAccesses(prof, kind, m);
        if (kind == RenamerKind::Baseline) {
            base = t;
            baseAcc = a;
            std::printf("%-12s %9.2fM %13.2fM\n",
                        cpu::renamerKindName(kind), t / 1e6, a / 1e6);
        } else {
            std::printf("%-12s %9.2fM %13.2fM  (%.0f%% time, %.0f%% "
                        "accesses vs baseline)\n",
                        cpu::renamerKindName(kind), t / 1e6, a / 1e6,
                        100 * t / base, 100 * a / baseAcc);
        }
    }
    return 0;
}
