/**
 * @file
 * Methodology walkthrough: SimPoint-style phase analysis and commit
 * tracing.
 *
 * The paper simulates "the best single SimPoint" of each benchmark
 * (Section 3). This example runs the phase pipeline on a bundled
 * benchmark — basic-block vectors per interval, k-means over the
 * projected BBVs, representative-interval selection — then shows a
 * short commit trace from a detailed simulation, the tooling you would
 * use to inspect any configuration by eye.
 */

#include <cstdio>
#include <iostream>

#include "analysis/simpoint.hh"
#include "cpu/ooo_cpu.hh"
#include "cpu/tracer.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

using namespace vca;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const char *benchName = argc > 1 ? argv[1] : "gcc_expr";
    const auto &prof = wload::profileByName(benchName);
    const isa::Program *prog = wload::cachedProgram(prof, false);

    // ---- Phase analysis ----
    const InstCount interval = 50'000;
    const auto result = analysis::pickSimPoint(*prog, interval, 5, 24);

    std::printf("phase analysis of %s (%llu-instruction intervals):\n",
                prof.name.c_str(),
                (unsigned long long)interval);
    std::printf("  phases found      : %u\n", result.numPhases);
    std::printf("  dominant phase    : %.0f%% of intervals\n",
                100 * result.largestPhaseWeight);
    std::printf("  chosen SimPoint   : interval %zu (instructions "
                "%llu..%llu)\n",
                result.intervalIndex,
                (unsigned long long)(result.intervalIndex * interval),
                (unsigned long long)((result.intervalIndex + 1) *
                                     interval));
    std::printf("  phase per interval:");
    for (unsigned p : result.phaseOf)
        std::printf(" %u", p);
    std::printf("\n\n");

    // ---- Commit trace around steady state ----
    std::printf("commit trace (VCA @ 160 registers, 12 instructions "
                "after warm-up):\n");
    cpu::CpuParams params =
        cpu::CpuParams::preset(cpu::RenamerKind::Vca, 160);
    cpu::OooCpu cpu(params, {wload::cachedProgram(prof, true)});
    cpu.run(5'000, 1'000'000); // warm up untraced
    cpu::TraceOptions topts;
    topts.maxInsts = 12;
    cpu::attachCommitTracer(cpu, std::cout, topts);
    cpu.run(2'000, 1'000'000);
    return 0;
}
