/**
 * @file
 * Quickstart: assemble a tiny windowed program, run it on a VCA core,
 * and print what the virtual context architecture did.
 *
 * The program computes fib(14) with deep recursion. Every call frame
 * keeps its locals in *windowed* registers with no save/restore code at
 * all: the VCA renamer maps each frame's registers to distinct
 * logical-register memory addresses and lets the physical register
 * file cache the hot subset, spilling and filling single registers on
 * demand through the ASTQ.
 */

#include <cstdio>
#include <sstream>

#include "cpu/ooo_cpu.hh"
#include "wload/asm_builder.hh"

using namespace vca;
using wload::AsmBuilder;

namespace {

isa::Program
buildFib(unsigned n)
{
    AsmBuilder b;
    const auto fib = b.newLabel();

    // main: a0 = n; call fib; halt (result stays in a0).
    b.addi(isa::regArg0, isa::regZero, static_cast<std::int32_t>(n));
    b.call(fib);
    b.halt();

    // fib(n): n < 2 -> return n; else fib(n-1) + fib(n-2).
    // r10/r11 are windowed locals: every recursion level gets its own.
    b.bind(fib);
    const auto recurse = b.newLabel();
    const auto out = b.newLabel();
    b.addi(5, isa::regZero, 2);
    b.branch(isa::Opcode::Bge, isa::regArg0, 5, recurse);
    b.jmp(out);
    b.bind(recurse);
    b.mov(10, isa::regArg0);           // local: n
    b.addi(isa::regArg0, 10, -1);
    b.call(fib);                       // fib(n-1)
    b.mov(11, isa::regArg0);           // local: partial sum
    b.addi(isa::regArg0, 10, -2);
    b.call(fib);                       // fib(n-2)
    b.emitR(isa::Opcode::Add, isa::regArg0, isa::regArg0, 11);
    b.bind(out);
    b.ret();

    isa::Program p;
    p.name = "fib";
    p.windowedAbi = true; // calls/returns shift the register window
    p.code = b.seal();
    p.finalize();
    return p;
}

} // namespace

int
main()
{
    setQuiet(true);
    isa::Program prog = buildFib(14);

    std::printf("program: %zu static instructions, windowed ABI\n",
                prog.size());
    for (Addr pc = 0; pc < 8; ++pc)
        std::printf("  %2llu: %s\n", (unsigned long long)pc,
                    isa::disassemble(prog.inst(pc)).c_str());
    std::printf("  ...\n\n");

    // A Table-1 baseline core, but with the VCA renamer and a physical
    // register file *smaller* than one architectural context.
    cpu::CpuParams params =
        cpu::CpuParams::preset(cpu::RenamerKind::Vca, 56);
    cpu::OooCpu cpu(params, {&prog});
    const auto res = cpu.run(10'000'000, 50'000'000);

    std::printf("ran to completion on a VCA core with %u physical "
                "registers\n", params.physRegs);
    std::printf("  committed insts : %llu\n",
                (unsigned long long)res.totalInsts);
    std::printf("  cycles          : %llu\n",
                (unsigned long long)res.cycles);
    std::printf("  IPC             : %.3f\n", res.ipc);

    // fib(14) = 377 sits in the physical register currently mapped to
    // a0. The easiest architectural view: ask the renamer.
    std::printf("\nVCA activity:\n");
    std::ostringstream os;
    cpu.dump(os);
    std::string line;
    std::istringstream is(os.str());
    while (std::getline(is, line)) {
        if (line.find("fills ") != std::string::npos ||
            line.find("spills ") != std::string::npos ||
            line.find("overwrite_frees") != std::string::npos)
            std::printf("  %s\n", line.c_str());
    }
    std::printf("\nNote: 56 physical registers < 64 architectural "
                "registers.\nA conventional machine cannot run at all "
                "in this configuration;\nVCA treats the register file "
                "as a cache and keeps going.\n");
    return 0;
}
