/**
 * @file
 * VCA physical-register state (paper §2.1.2, Figure 2).
 *
 * Each physical register carries: the logical-register memory address
 * it caches (if any), a reference count (pinning), the committed and
 * dirty bits, an in-flight-overwriter count (registers about to be
 * overwritten get lowest replacement priority), an LRU stamp, and a
 * fill-pending marker. A register is *free* exactly when it has no
 * logical address.
 */

#ifndef VCA_CORE_REG_STATE_HH
#define VCA_CORE_REG_STATE_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace vca::core {

struct PhysState
{
    Addr addr = invalidAddr;   ///< logical address; invalidAddr = free
    std::uint32_t refCount = 0;
    std::uint32_t overwriters = 0;
    bool committed = false;
    bool dirty = false;
    bool fillPending = false;
    /**
     * Overwritten while an orphaned fill (its consumers were squashed)
     * is still in flight: the register is detached from the table and
     * freed when the fill completes.
     */
    bool zombie = false;
    std::uint64_t lru = 0;

    bool free() const { return addr == invalidAddr; }
    bool pinned() const { return refCount > 0; }

    /** Eligible to be reallocated to a different logical register. */
    bool
    evictable() const
    {
        return !free() && !pinned() && committed && !fillPending;
    }

    void
    clear()
    {
        *this = PhysState{};
    }
};

/**
 * The full register-state array plus the free list and a clock-hand
 * LRU-approximating victim scanner.
 */
class RegStateArray
{
  public:
    explicit RegStateArray(unsigned numRegs) : state_(numRegs)
    {
        for (unsigned p = 0; p < numRegs; ++p)
            freeList_.push_back(static_cast<PhysRegIndex>(p));
    }

    PhysState &operator[](PhysRegIndex p) { return state_[check(p)]; }
    const PhysState &
    operator[](PhysRegIndex p) const
    {
        return state_[check(p)];
    }

    unsigned numRegs() const { return state_.size(); }
    bool hasFree() const { return !freeList_.empty(); }
    unsigned numFree() const { return freeList_.size(); }

    PhysRegIndex
    popFree()
    {
        if (freeList_.empty())
            panic("popFree on empty free list");
        PhysRegIndex p = freeList_.back();
        freeList_.pop_back();
        return p;
    }

    void
    pushFree(PhysRegIndex p)
    {
        state_[check(p)].clear();
        freeList_.push_back(p);
    }

    void touch(PhysRegIndex p) { state_[check(p)].lru = ++stamp_; }

    /**
     * Pick a replacement victim approximating LRU with a clock hand.
     * Registers with a dispatched overwriting instruction are skipped
     * in the first pass ("lowest priority for replacement", §2.1.2);
     * if requireClean is set, dirty registers are also skipped (used
     * when no spill can be enqueued this cycle).
     *
     * @return invalidPhysReg if no eligible victim exists
     */
    PhysRegIndex
    findVictim(bool requireClean)
    {
        PhysRegIndex best = invalidPhysReg;
        std::uint64_t bestLru = ~std::uint64_t(0);
        PhysRegIndex fallback = invalidPhysReg;
        std::uint64_t fallbackLru = ~std::uint64_t(0);
        const unsigned n = state_.size();
        // Exact LRU over the (small) register file: the replacement
        // quality directly sets the fill rate, which Figures 5 and 7
        // are sensitive to.
        for (unsigned i = 0; i < n; ++i) {
            const PhysState &s = state_[i];
            if (!s.evictable())
                continue;
            if (requireClean && s.dirty)
                continue;
            if (s.overwriters == 0) {
                if (s.lru < bestLru) {
                    bestLru = s.lru;
                    best = static_cast<PhysRegIndex>(i);
                }
            } else if (s.lru < fallbackLru) {
                fallbackLru = s.lru;
                fallback = static_cast<PhysRegIndex>(i);
            }
        }
        return best != invalidPhysReg ? best : fallback;
    }

    /** All registers whose address maps through the given predicate. */
    template <typename Pred>
    std::vector<PhysRegIndex>
    collect(Pred pred) const
    {
        std::vector<PhysRegIndex> out;
        for (unsigned i = 0; i < state_.size(); ++i) {
            if (!state_[i].free() && pred(state_[i]))
                out.push_back(static_cast<PhysRegIndex>(i));
        }
        return out;
    }

  private:
    size_t
    check(PhysRegIndex p) const
    {
        if (p < 0 || static_cast<size_t>(p) >= state_.size())
            panic("invalid physical register index");
        return static_cast<size_t>(p);
    }

    std::vector<PhysState> state_;
    std::vector<PhysRegIndex> freeList_;
    std::uint64_t stamp_ = 0;
};

} // namespace vca::core

#endif // VCA_CORE_REG_STATE_HH
