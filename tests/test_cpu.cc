/**
 * @file
 * Out-of-order CPU tests: hand-written program execution on every
 * renamer architecture, co-simulation against the functional golden
 * model, window-trap behaviour, and SMT sanity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cpu/conv_renamer.hh"
#include "cpu/ooo_cpu.hh"
#include "func/func_sim.hh"
#include "wload/asm_builder.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace {

using namespace vca;
using namespace vca::cpu;
using wload::AsmBuilder;

isa::Program
makeProgram(AsmBuilder &b, bool windowed)
{
    isa::Program p;
    p.name = "t";
    p.windowedAbi = windowed;
    p.code = b.seal();
    p.finalize();
    return p;
}

/** Fibonacci with windowed locals (works under both ABIs when the
 *  clobbered registers are saved appropriately; here we rely on windows
 *  for the windowed machines and use explicit saves for the baseline). */
isa::Program
fibProgram(bool windowed)
{
    AsmBuilder b;
    auto fib = b.newLabel();
    b.addi(4, isa::regZero, 11);
    b.call(fib);
    b.mov(10, 4);
    b.halt();

    b.bind(fib);
    auto recurse = b.newLabel();
    auto done = b.newLabel();
    // The comparison constant lives in a caller-saved argument register
    // so it works identically under both ABIs.
    b.addi(5, isa::regZero, 2);
    b.branch(isa::Opcode::Bge, 4, 5, recurse);
    b.jmp(done);
    b.bind(recurse);
    if (!windowed) {
        // Baseline ABI: explicit callee saves.
        b.addi(2, 2, -24);
        b.st(2, 10, 0);
        b.st(2, 11, 8);
        b.st(2, 1, 16);
    }
    b.mov(10, 4);
    b.addi(4, 10, -1);
    b.call(fib);
    b.mov(11, 4);
    b.addi(4, 10, -2);
    b.call(fib);
    b.emitR(isa::Opcode::Add, 4, 4, 11);
    if (!windowed) {
        b.ld(10, 2, 0);
        b.ld(11, 2, 8);
        b.ld(1, 2, 16);
        b.addi(2, 2, 24);
    }
    b.bind(done);
    b.ret();

    isa::Program p;
    p.name = windowed ? "fib_w" : "fib_nw";
    p.windowedAbi = windowed;
    p.code = b.seal();
    p.finalize();
    return p;
}

CpuParams
paramsFor(RenamerKind kind, unsigned physRegs = 256,
          unsigned threads = 1)
{
    CpuParams p = CpuParams::preset(kind, physRegs, threads);
    return p;
}

// ---------------------------------------------------------------------
// Basic execution on each architecture
// ---------------------------------------------------------------------

struct ArchCase
{
    RenamerKind kind;
    bool windowedAbi;
    const char *name;
};

class ArchExecTest : public ::testing::TestWithParam<ArchCase>
{
};

TEST_P(ArchExecTest, FibonacciCommitsCorrectResult)
{
    const ArchCase &ac = GetParam();
    isa::Program prog = fibProgram(ac.windowedAbi);
    OooCpu cpu(paramsFor(ac.kind), {&prog});
    auto res = cpu.run(2'000'000, 4'000'000);
    ASSERT_TRUE(cpu.threadDone(0)) << ac.name;
    EXPECT_GT(res.totalInsts, 100u);
    cpu.renamer().validate();

    // The functional model is the oracle for the final value.
    mem::SparseMemory refMem;
    func::FuncSim ref(prog, refMem);
    ref.run();
    // fib(11) = 89 lands in r4/a0 and is copied to r10 by main.
    EXPECT_EQ(ref.readIntReg(4), 89u);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, ArchExecTest,
    ::testing::Values(
        ArchCase{RenamerKind::Baseline, false, "baseline"},
        ArchCase{RenamerKind::ConvWindow, true, "convwindow"},
        ArchCase{RenamerKind::IdealWindow, true, "ideal"},
        ArchCase{RenamerKind::Vca, true, "vca"},
        ArchCase{RenamerKind::Vca, false, "vca_flat"}),
    [](const auto &info) { return info.param.name; });

// ---------------------------------------------------------------------
// Co-simulation: the timing core's commit stream must match the
// functional simulator instruction for instruction.
// ---------------------------------------------------------------------

void
cosimCheck(const isa::Program &prog, const CpuParams &params,
           InstCount maxInsts)
{
    OooCpu cpu(params, {&prog});
    mem::SparseMemory refMem;
    func::FuncSim ref(prog, refMem);

    InstCount checked = 0;
    bool mismatch = false;
    cpu.addCommitListener([&](const DynInst &inst) {
        if (mismatch)
            return;
        func::StepRecord rec;
        ref.step(rec);
        ++checked;
        if (rec.pc != inst.pc) {
            ADD_FAILURE() << "pc mismatch at inst " << checked << ": ref "
                          << rec.pc << " vs cpu " << inst.pc;
            mismatch = true;
            return;
        }
        if (inst.si->hasDest && !inst.si->isCall &&
            rec.destValue != inst.result) {
            ADD_FAILURE() << "value mismatch at pc " << inst.pc
                          << " (inst " << checked << "): ref "
                          << rec.destValue << " vs cpu " << inst.result;
            mismatch = true;
            return;
        }
        if (inst.si->isMem() && rec.effAddr != inst.effAddr) {
            ADD_FAILURE() << "address mismatch at pc " << inst.pc
                          << ": ref " << rec.effAddr << " vs cpu "
                          << inst.effAddr;
            mismatch = true;
        }
    });

    cpu.run(maxInsts, maxInsts * 40 + 100'000);
    EXPECT_GT(checked, maxInsts / 2) << "too few instructions committed";
    EXPECT_FALSE(mismatch);
    cpu.renamer().validate();
}

struct CosimCase
{
    RenamerKind kind;
    const char *bench;
    unsigned physRegs;
    const char *name;
};

class CosimTest : public ::testing::TestWithParam<CosimCase>
{
};

TEST_P(CosimTest, CommitStreamMatchesFunctionalModel)
{
    const CosimCase &cc = GetParam();
    const bool windowed = cc.kind != RenamerKind::Baseline;
    const isa::Program *prog =
        wload::cachedProgram(wload::profileByName(cc.bench), windowed);
    cosimCheck(*prog, paramsFor(cc.kind, cc.physRegs), 60'000);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CosimTest,
    ::testing::Values(
        CosimCase{RenamerKind::Baseline, "crafty", 256, "baseline_crafty"},
        CosimCase{RenamerKind::Baseline, "equake", 128, "baseline_equake"},
        CosimCase{RenamerKind::ConvWindow, "crafty", 256, "convw_crafty"},
        CosimCase{RenamerKind::ConvWindow, "perlbmk_535", 128,
                  "convw_perl_small"},
        CosimCase{RenamerKind::ConvWindow, "mesa", 192, "convw_mesa"},
        CosimCase{RenamerKind::IdealWindow, "crafty", 64, "ideal_crafty"},
        CosimCase{RenamerKind::IdealWindow, "vortex_2", 128,
                  "ideal_vortex"},
        CosimCase{RenamerKind::Vca, "crafty", 256, "vca_crafty"},
        CosimCase{RenamerKind::Vca, "crafty", 64, "vca_crafty_64"},
        CosimCase{RenamerKind::Vca, "perlbmk_535", 96, "vca_perl_96"},
        CosimCase{RenamerKind::Vca, "vortex_2", 128, "vca_vortex"},
        CosimCase{RenamerKind::Vca, "equake", 192, "vca_equake"},
        CosimCase{RenamerKind::Vca, "twolf", 160, "vca_twolf"}),
    [](const auto &info) { return info.param.name; });

TEST(CosimVcaFlat, NonWindowedBinaryOnVca)
{
    // Figure 7 configuration: VCA managing plain thread contexts.
    const isa::Program *prog =
        wload::cachedProgram(wload::profileByName("crafty"), false);
    cosimCheck(*prog, paramsFor(RenamerKind::Vca, 128), 60'000);
}

// ---------------------------------------------------------------------
// Window traps
// ---------------------------------------------------------------------

TEST(WindowTraps, DeepRecursionTriggersOverflowAndUnderflow)
{
    isa::Program prog = fibProgram(true);
    CpuParams params = paramsFor(RenamerKind::ConvWindow, 192);
    OooCpu cpu(params, {&prog});
    auto *wr = dynamic_cast<WindowConvRenamer *>(&cpu.renamer());
    ASSERT_NE(wr, nullptr);
    EXPECT_EQ(wr->numWindows(),
              WindowConvRenamer::windowsForConfig(params));
    cpu.run(2'000'000, 4'000'000);
    ASSERT_TRUE(cpu.threadDone(0));
    // fib(11) recurses ~11 deep; with (192-17-64)/47 = 2 windows there
    // must be both overflow and underflow traps.
    EXPECT_GT(wr->overflowTraps.value(), 0.0);
    EXPECT_GT(wr->underflowTraps.value(), 0.0);
    EXPECT_GT(wr->windowSaves.value(), 0.0);
    EXPECT_GT(wr->windowRestores.value(), 0.0);
}

TEST(WindowTraps, WindowCountFormula)
{
    CpuParams p = paramsFor(RenamerKind::ConvWindow, 256);
    // (256 - 17 - 64) / 47 = 3
    EXPECT_EQ(WindowConvRenamer::windowsForConfig(p), 3u);
    p.physRegs = 128;
    EXPECT_EQ(WindowConvRenamer::windowsForConfig(p), 1u);
    p.physRegs = 448;
    EXPECT_EQ(WindowConvRenamer::windowsForConfig(p), 7u);
}

TEST(Baseline, CannotRunWithoutRenameRegisters)
{
    // Paper Section 4.1/4.2: the conventional architecture needs
    // strictly more physical than architectural registers.
    isa::Program prog = fibProgram(false);
    EXPECT_THROW(OooCpu(paramsFor(RenamerKind::Baseline, 64), {&prog}),
                 FatalError);
    EXPECT_THROW(
        OooCpu(paramsFor(RenamerKind::Baseline, 128, 2),
               {&prog, &prog}),
        FatalError);
}

TEST(Vca, RunsWithFewerPhysicalThanArchitecturalRegisters)
{
    // The headline capability: 4 threads x 64 arch regs on fewer
    // physical registers than one architectural set.
    isa::Program prog = fibProgram(true);
    OooCpu cpu(paramsFor(RenamerKind::Vca, 56), {&prog});
    auto res = cpu.run(200'000, 3'000'000);
    EXPECT_TRUE(cpu.threadDone(0));
    EXPECT_GT(res.totalInsts, 100u);
    cpu.renamer().validate();
}

// ---------------------------------------------------------------------
// SMT
// ---------------------------------------------------------------------

TEST(Smt, TwoThreadsBothProgress)
{
    const isa::Program *a =
        wload::cachedProgram(wload::profileByName("crafty"), false);
    const isa::Program *b =
        wload::cachedProgram(wload::profileByName("gzip_graphic"), false);
    OooCpu cpu(paramsFor(RenamerKind::Baseline, 320, 2), {a, b});
    auto res = cpu.run(30'000, 2'000'000, /*stopOnFirstThread=*/true);
    EXPECT_GE(res.threadInsts[0] + res.threadInsts[1], 30'000u);
    EXPECT_GT(res.threadInsts[0], 1000u);
    EXPECT_GT(res.threadInsts[1], 1000u);
    cpu.renamer().validate();
}

TEST(Smt, VcaSharedRenameTableKeepsThreadsSeparate)
{
    const isa::Program *a =
        wload::cachedProgram(wload::profileByName("crafty"), true);
    const isa::Program *b =
        wload::cachedProgram(wload::profileByName("mesa"), true);
    CpuParams params = paramsFor(RenamerKind::Vca, 192, 2);
    OooCpu cpu(params, {a, b});

    // Co-sim both threads simultaneously against separate oracles.
    mem::SparseMemory ma, mb;
    func::FuncSim refA(*a, ma), refB(*b, mb);
    bool mismatch = false;
    cpu.addCommitListener([&](const DynInst &inst) {
        if (mismatch)
            return;
        func::FuncSim &ref = inst.tid == 0 ? refA : refB;
        func::StepRecord rec;
        ref.step(rec);
        if (rec.pc != inst.pc ||
            (inst.si->hasDest && !inst.si->isCall &&
             rec.destValue != inst.result)) {
            ADD_FAILURE() << "thread " << int(inst.tid)
                          << " diverged at pc " << inst.pc;
            mismatch = true;
        }
    });
    cpu.run(25'000, 2'000'000, true);
    EXPECT_FALSE(mismatch);
    cpu.renamer().validate();
}

TEST(Smt, FourThreadVcaOn192Registers)
{
    // Niagara-style: 4 threads + windows on 192 registers (paper §4.3).
    std::vector<const isa::Program *> progs = {
        wload::cachedProgram(wload::profileByName("crafty"), true),
        wload::cachedProgram(wload::profileByName("gzip_graphic"), true),
        wload::cachedProgram(wload::profileByName("mesa"), true),
        wload::cachedProgram(wload::profileByName("gap"), true),
    };
    OooCpu cpu(paramsFor(RenamerKind::Vca, 192, 4), progs);
    auto res = cpu.run(8'000, 1'500'000, true);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_GT(res.threadInsts[t], 500u) << "thread " << t;
    cpu.renamer().validate();
}

// ---------------------------------------------------------------------
// Timing sanity
// ---------------------------------------------------------------------

TEST(Timing, IpcInPlausibleRange)
{
    const isa::Program *prog =
        wload::cachedProgram(wload::profileByName("crafty"), false);
    OooCpu cpu(paramsFor(RenamerKind::Baseline, 256), {prog});
    auto res = cpu.run(100'000, 2'000'000);
    EXPECT_GT(res.ipc, 0.3);
    EXPECT_LE(res.ipc, 4.0);
}

TEST(Timing, VcaExtraRenameStageLengthensPipeline)
{
    // The same binary on ideal (no extra stage) vs VCA with plentiful
    // registers: VCA must not be faster.
    const isa::Program *prog =
        wload::cachedProgram(wload::profileByName("crafty"), true);
    OooCpu ideal(paramsFor(RenamerKind::IdealWindow, 256), {prog});
    OooCpu vcap(paramsFor(RenamerKind::Vca, 256), {prog});
    auto ri = ideal.run(60'000, 2'000'000);
    auto rv = vcap.run(60'000, 2'000'000);
    EXPECT_LE(rv.ipc, ri.ipc * 1.005);
}

TEST(Timing, FewerRegistersNeverHelpVca)
{
    const isa::Program *prog =
        wload::cachedProgram(wload::profileByName("perlbmk_535"), true);
    OooCpu big(paramsFor(RenamerKind::Vca, 256), {prog});
    OooCpu small(paramsFor(RenamerKind::Vca, 80), {prog});
    auto rb = big.run(60'000, 2'000'000);
    auto rs = small.run(60'000, 4'000'000);
    EXPECT_LT(rs.ipc, rb.ipc * 1.02);
}

TEST(Timing, SingleDcachePortIsSlower)
{
    const isa::Program *prog =
        wload::cachedProgram(wload::profileByName("vortex_2"), false);
    CpuParams two = paramsFor(RenamerKind::Baseline, 256);
    CpuParams one = paramsFor(RenamerKind::Baseline, 256);
    one.dcachePorts = 1;
    OooCpu cpu2(two, {prog});
    OooCpu cpu1(one, {prog});
    auto r2 = cpu2.run(60'000, 2'000'000);
    auto r1 = cpu1.run(60'000, 4'000'000);
    EXPECT_LT(r1.ipc, r2.ipc);
}

// ---------------------------------------------------------------------
// Switch-in: functional fast-forward of N instructions followed by
// state transfer must leave the detailed core on the exact
// architectural path — its commit stream from that point is
// byte-identical to a pure detailed run's stream from instruction N.
// ---------------------------------------------------------------------

struct CommitRec
{
    Addr pc = 0;
    std::uint64_t value = 0;
    Addr addr = 0;

    bool
    operator==(const CommitRec &o) const
    {
        return pc == o.pc && value == o.value && addr == o.addr;
    }
};

void
attachRecorder(OooCpu &cpu, std::vector<std::vector<CommitRec>> &out)
{
    cpu.addCommitListener([&out](const DynInst &inst) {
        CommitRec r;
        r.pc = inst.pc;
        if (inst.si->hasDest && !inst.si->isCall)
            r.value = inst.result;
        if (inst.si->isMem())
            r.addr = inst.effAddr;
        out[inst.tid].push_back(r);
    });
}

void
switchInEquivalence(const std::vector<const isa::Program *> &progs,
                    RenamerKind kind, unsigned physRegs,
                    InstCount ffInsts, InstCount runInsts)
{
    const auto n = progs.size();
    const CpuParams params =
        CpuParams::preset(kind, physRegs, unsigned(n));

    // Reference: one detailed run from reset covering both spans.
    std::vector<std::vector<CommitRec>> ref(n);
    {
        OooCpu cpu(params, progs);
        attachRecorder(cpu, ref);
        cpu.run(ffInsts + runInsts,
                (ffInsts + runInsts) * 200 + 100'000);
    }

    // Candidate: fast-forward each thread functionally, switch in,
    // then run the detailed core.
    std::vector<std::unique_ptr<mem::SparseMemory>> fmem;
    std::vector<std::unique_ptr<func::FuncSim>> fsim;
    for (size_t t = 0; t < n; ++t) {
        fmem.push_back(std::make_unique<mem::SparseMemory>());
        fsim.push_back(
            std::make_unique<func::FuncSim>(*progs[t], *fmem[t]));
        fsim[t]->runFast(ffInsts);
        ASSERT_FALSE(fsim[t]->halted())
            << "thread " << t << " too short for the fast-forward";
    }
    OooCpu cpu(params, progs);
    std::vector<std::vector<CommitRec>> got(n);
    attachRecorder(cpu, got);
    for (size_t t = 0; t < n; ++t)
        cpu.switchIn(ThreadId(t), fsim[t]->captureState(), *fmem[t]);
    cpu.run(runInsts, runInsts * 200 + 100'000);

    for (size_t t = 0; t < n; ++t) {
        ASSERT_GT(ref[t].size(), size_t(ffInsts))
            << "thread " << t << " reference run too short";
        ASSERT_FALSE(got[t].empty()) << "thread " << t;
        const size_t overlap = std::min(got[t].size(),
                                        ref[t].size() - size_t(ffInsts));
        ASSERT_GE(overlap, size_t(runInsts) / 2) << "thread " << t;
        for (size_t i = 0; i < overlap; ++i) {
            const CommitRec &want = ref[t][size_t(ffInsts) + i];
            const CommitRec &have = got[t][i];
            ASSERT_TRUE(have == want)
                << "thread " << t << " diverged at commit " << i
                << ": ref pc=" << want.pc << " val=" << want.value
                << " addr=" << want.addr << " vs pc=" << have.pc
                << " val=" << have.value << " addr=" << have.addr;
        }
    }
    cpu.renamer().validate();
}

TEST(SwitchIn, BaselineNonWindowed)
{
    switchInEquivalence(
        {wload::cachedProgram(wload::profileByName("crafty"), false)},
        RenamerKind::Baseline, 256, 3'000, 4'000);
}

TEST(SwitchIn, ConvWindowWindowed)
{
    switchInEquivalence(
        {wload::cachedProgram(wload::profileByName("crafty"), true)},
        RenamerKind::ConvWindow, 256, 3'000, 4'000);
}

TEST(SwitchIn, IdealWindowWindowed)
{
    switchInEquivalence(
        {wload::cachedProgram(wload::profileByName("crafty"), true)},
        RenamerKind::IdealWindow, 256, 3'000, 4'000);
}

TEST(SwitchIn, VcaWindowed)
{
    switchInEquivalence(
        {wload::cachedProgram(wload::profileByName("crafty"), true)},
        RenamerKind::Vca, 192, 3'000, 4'000);
}

TEST(SwitchIn, VcaNonWindowedBinary)
{
    switchInEquivalence(
        {wload::cachedProgram(wload::profileByName("crafty"), false)},
        RenamerKind::Vca, 192, 3'000, 4'000);
}

TEST(SwitchIn, CallHeavyDeepWindowStack)
{
    // A call-heavy binary fast-forwarded mid-recursion exercises the
    // multi-frame window reconstruction in the conventional-window
    // renamer and the wbp rebasing in the VCA renamer.
    for (RenamerKind kind :
         {RenamerKind::ConvWindow, RenamerKind::Vca}) {
        switchInEquivalence(
            {wload::cachedProgram(wload::profileByName("perlbmk_535"),
                                  true)},
            kind, 256, 5'000, 4'000);
    }
}

TEST(SwitchIn, SmtTwoThreadsVca)
{
    switchInEquivalence(
        {wload::cachedProgram(wload::profileByName("crafty"), true),
         wload::cachedProgram(wload::profileByName("mesa"), true)},
        RenamerKind::Vca, 192, 2'000, 3'000);
}

TEST(SwitchIn, SmtTwoThreadsBaseline)
{
    switchInEquivalence(
        {wload::cachedProgram(wload::profileByName("crafty"), false),
         wload::cachedProgram(wload::profileByName("mesa"), false)},
        RenamerKind::Baseline, 256, 2'000, 3'000);
}

TEST(SwitchIn, AbiMismatchPanics)
{
    const isa::Program *windowed =
        wload::cachedProgram(wload::profileByName("crafty"), true);
    const isa::Program *flat =
        wload::cachedProgram(wload::profileByName("crafty"), false);
    mem::SparseMemory fm;
    func::FuncSim sim(*flat, fm);
    sim.runFast(100);
    OooCpu cpu(paramsFor(RenamerKind::Vca, 192), {windowed});
    EXPECT_THROW(cpu.switchIn(0, sim.captureState(), fm), PanicError);
}

TEST(SwitchIn, OnlyLegalBeforeFirstCycle)
{
    const isa::Program *prog =
        wload::cachedProgram(wload::profileByName("crafty"), false);
    mem::SparseMemory fm;
    func::FuncSim sim(*prog, fm);
    sim.runFast(100);
    OooCpu cpu(paramsFor(RenamerKind::Baseline, 256), {prog});
    cpu.run(50, 100'000);
    EXPECT_THROW(cpu.switchIn(0, sim.captureState(), fm), PanicError);
}

} // namespace
