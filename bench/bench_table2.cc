/**
 * @file
 * Table 2 reproduction: path-length ratio (register-window binary to
 * baseline binary) for the call-heavy benchmark set, measured by
 * running both binaries to completion on the functional simulator,
 * exactly as Section 3.1 describes. Paper average: 0.92.
 */

#include <cstdio>

#include "bench_common.hh"
#include "func/func_sim.hh"

using namespace vca;

int
main()
{
    setQuiet(true);
    std::printf("== Table 2: Path length ratio "
                "(register window to baseline) ==\n");
    std::printf("%-16s %12s %12s %8s %10s\n", "Benchmark", "baseline",
                "windowed", "Ratio", "insts/call");

    std::vector<double> ratios;
    for (const auto &prof : wload::regWindowProfiles()) {
        const InstCount nw = analysis::pathLength(prof, false);
        const InstCount w = analysis::pathLength(prof, true);
        const double ratio = double(w) / double(nw);
        ratios.push_back(ratio);

        // Call frequency (paper admits only benchmarks calling at
        // least once every 500 instructions).
        mem::SparseMemory memory;
        func::FuncSim sim(*wload::cachedProgram(prof, false), memory);
        const auto stats = sim.run(5'000'000);
        const double instsPerCall =
            stats.calls ? double(stats.insts) / stats.calls : -1;

        std::printf("%-16s %12llu %12llu %8.2f %10.0f\n",
                    prof.name.c_str(), (unsigned long long)nw,
                    (unsigned long long)w, ratio, instsPerCall);
    }
    std::printf("%-16s %12s %12s %8.2f   (paper: 0.92)\n", "Average", "",
                "", analysis::mean(ratios));
    bench::printCycleAccounting(bench::regWindowArchs(), 192,
                                bench::defaultOptions());
    return bench::finishBench();
}
