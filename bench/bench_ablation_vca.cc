/**
 * @file
 * Ablation benches for the VCA design choices DESIGN.md calls out:
 *
 *  - rename-table associativity (paper Section 2.1.1 argues 4-way-like
 *    behaviour is enough; Section 3 sizes 3/5/6 ways by thread count);
 *  - ASTQ depth (Section 2.2.2: "only four entries are required");
 *  - RSID translation-table size (Section 2.2.1);
 *  - branch recovery scheme: P4-style commit-table walk vs (infeasible
 *    in hardware, but a useful bound) instant checkpointing.
 *
 * Each sweep runs the call-heavy windowed benchmarks on VCA at 192
 * physical registers and reports execution-time impact plus the stall
 * counters that explain it.
 */

#include "bench_common.hh"

using namespace vca;
using namespace vca::bench;

namespace {

struct AblationResult
{
    double ipc = 0;
    double stalls = 0;
    double extra = 0;
};

AblationResult
runConfig(const cpu::CpuParams &params)
{
    const analysis::RunOptions opts = defaultOptions();
    double cycles = 0, insts = 0, stalls = 0, extra = 0;
    for (const auto &prof : wload::regWindowProfiles()) {
        cpu::CpuParams p = params;
        cpu::OooCpu cpu(p, {wload::cachedProgram(prof, true)});
        cpu.run(opts.warmupInsts, opts.warmupInsts * 200 + 100'000);
        cpu.resetStats();
        auto res = cpu.run(opts.measureInsts,
                           opts.measureInsts * 200 + 100'000);
        cycles += static_cast<double>(res.cycles);
        insts += static_cast<double>(res.totalInsts);
        const auto *group = static_cast<const stats::StatGroup *>(&cpu);
        if (const auto *s = dynamic_cast<const stats::Scalar *>(
                group->find("stalls_table_conflict")))
            stalls += s->value();
        if (const auto *s = dynamic_cast<const stats::Scalar *>(
                group->find("stalls_astq")))
            extra += s->value();
    }
    return {insts / cycles, stalls / insts * 1000, extra / insts * 1000};
}

} // namespace

int
main()
{
    setQuiet(true);
    const auto base = [] {
        cpu::CpuParams p =
            cpu::CpuParams::preset(cpu::RenamerKind::Vca, 192);
        return p;
    };

    std::printf("== Ablation: VCA rename-table associativity "
                "(192 phys regs, 64 sets) ==\n");
    std::printf("%6s %8s %16s\n", "assoc", "IPC", "conflicts/kinst");
    for (unsigned assoc : {1u, 2u, 3u, 4u, 6u, 8u}) {
        cpu::CpuParams p = base();
        p.vcaTableAssoc = assoc;
        const auto r = runConfig(p);
        std::printf("%6u %8.3f %16.2f\n", assoc, r.ipc, r.stalls);
    }

    std::printf("\n== Ablation: ASTQ depth ==\n");
    std::printf("%6s %8s %16s\n", "depth", "IPC", "astq-stalls/kinst");
    for (unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
        cpu::CpuParams p = base();
        p.astqEntries = depth;
        const auto r = runConfig(p);
        std::printf("%6u %8.3f %16.2f\n", depth, r.ipc, r.extra);
    }

    std::printf("\n== Ablation: RSID table entries ==\n");
    std::printf("%6s %8s\n", "rsids", "IPC");
    for (unsigned rsids : {2u, 4u, 8u, 16u, 32u}) {
        cpu::CpuParams p = base();
        p.rsidEntries = rsids;
        const auto r = runConfig(p);
        std::printf("%6u %8.3f\n", rsids, r.ipc);
    }

    std::printf("\n== Ablation: misprediction recovery scheme ==\n");
    for (bool checkpoint : {false, true}) {
        cpu::CpuParams p = base();
        p.vcaCheckpointRecovery = checkpoint;
        const auto r = runConfig(p);
        std::printf("%-24s IPC %8.3f\n",
                    checkpoint ? "checkpoint (idealized)"
                               : "commit-table walk (P4)",
                    r.ipc);
    }

    std::printf("\n== Extension: dead-value hints "
                "(paper future work, Secs. 5-6) ==\n");
    for (bool hints : {false, true}) {
        cpu::CpuParams p = base();
        p.physRegs = 112; // small file: spills matter
        p.vcaDeadValueHints = hints;
        const auto r = runConfig(p);
        std::printf("%-24s IPC %8.3f\n",
                    hints ? "hints on" : "hints off", r.ipc);
    }

    std::printf("\n== Ablation: rename ports ==\n");
    std::printf("%6s %8s\n", "ports", "IPC");
    for (unsigned ports : {4u, 6u, 8u, 12u}) {
        cpu::CpuParams p = base();
        p.vcaRenamePorts = ports;
        const auto r = runConfig(p);
        std::printf("%6u %8.3f\n", ports, r.ipc);
    }
    printCycleAccounting({cpu::RenamerKind::Vca}, 192, defaultOptions());
    return 0;
}
