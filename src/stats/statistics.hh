/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Statistics are registered with a StatGroup by name and description and
 * can be dumped as formatted text. Supported kinds:
 *  - Scalar: a monotonically updated counter / value.
 *  - Average: running mean of samples.
 *  - Distribution: bucketed histogram with min/max/mean.
 *  - Formula: a derived value computed from other stats at dump time.
 */

#ifndef VCA_STATS_STATISTICS_HH
#define VCA_STATS_STATISTICS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace vca::stats {

class StatGroup;
class StatVisitor;

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Write one or more formatted lines describing this stat. */
    virtual void print(std::ostream &os) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

    /** Double-dispatch entry for visitors (exporters, checkers). */
    virtual void accept(StatVisitor &v) const = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A plain accumulating counter. */
class Scalar : public StatBase
{
  public:
    Scalar(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc)) {}

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    void print(std::ostream &os) const override;
    void reset() override { value_ = 0; }
    void accept(StatVisitor &v) const override;

  private:
    double value_ = 0;
};

/** Running mean over explicit samples. */
class Average : public StatBase
{
  public:
    Average(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc)) {}

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }

    void print(std::ostream &os) const override;
    void accept(StatVisitor &v) const override;

    void
    reset() override
    {
        sum_ = 0;
        count_ = 0;
    }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [min, max). */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double min, double max, unsigned buckets);

    // Inline: sampled every statSampleInterval cycles from the CPU's
    // tick() hot path.
    void
    sample(double v, std::uint64_t n = 1)
    {
        if (samples_ == 0) {
            minSampled_ = v;
            maxSampled_ = v;
        } else {
            minSampled_ = std::min(minSampled_, v);
            maxSampled_ = std::max(maxSampled_, v);
        }
        samples_ += n;
        sum_ += v * n;

        if (v < min_) {
            underflow_ += n;
        } else if (v >= max_) {
            overflow_ += n;
        } else {
            auto idx = static_cast<size_t>((v - min_) / bucketSize_);
            idx = std::min(idx, counts_.size() - 1);
            counts_[idx] += n;
        }
    }

    std::uint64_t totalSamples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }
    double minSampled() const { return minSampled_; }
    double maxSampled() const { return maxSampled_; }
    std::uint64_t bucketCount(unsigned i) const { return counts_.at(i); }
    std::uint64_t underflows() const { return underflow_; }
    std::uint64_t overflows() const { return overflow_; }

    void print(std::ostream &os) const override;
    void reset() override;
    void accept(StatVisitor &v) const override;

    double bucketMin() const { return min_; }
    double bucketMax() const { return max_; }
    double bucketSize() const { return bucketSize_; }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(counts_.size());
    }

  private:
    double min_;
    double max_;
    double bucketSize_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0;
    double minSampled_ = 0;
    double maxSampled_ = 0;
};

/** A value computed on demand from other statistics. */
class Formula : public StatBase
{
  public:
    using Func = std::function<double()>;

    Formula(StatGroup *parent, std::string name, std::string desc, Func f)
        : StatBase(parent, std::move(name), std::move(desc)),
          func_(std::move(f)) {}

    double value() const { return func_ ? func_() : 0.0; }

    void print(std::ostream &os) const override;
    void reset() override {}
    void accept(StatVisitor &v) const override;

  private:
    Func func_;
};

/**
 * Visitor over a statistics tree. dumpJson() and the interval
 * exporter are built on this; checks and new output formats get the
 * full tree without the stats package knowing about them.
 *
 * StatGroup::visit() calls beginGroup/endGroup around each group and
 * accept()s every stat (sorted by name) in between.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    virtual void beginGroup(const StatGroup &group) { (void)group; }
    virtual void endGroup(const StatGroup &group) { (void)group; }

    virtual void visitScalar(const Scalar &s) { (void)s; }
    virtual void visitAverage(const Average &a) { (void)a; }
    virtual void visitDistribution(const Distribution &d) { (void)d; }
    virtual void visitFormula(const Formula &f) { (void)f; }
};

/**
 * A named collection of statistics. Groups may nest; names are dotted
 * paths at dump time (e.g. "cpu.dcache.accesses").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &groupName() const { return name_; }

    /** Dotted path from the root group. */
    std::string path() const;

    /** Print all stats in this group and children, sorted by name. */
    void dump(std::ostream &os) const;

    /** Reset all stats in this group and children. */
    void resetStats();

    /** Find a stat by name within this group only (nullptr if absent). */
    const StatBase *find(const std::string &name) const;

    /**
     * Resolve a dotted path to a stat anywhere below this group, e.g.
     * findPath("dcache.accesses"). The leading component may name this
     * group itself ("cpu.dcache.accesses" on the "cpu" group), so full
     * dump paths resolve from the group they start at. nullptr when
     * any component is missing.
     */
    const StatBase *findPath(const std::string &dotted) const;

    /** Resolve a dotted path to a child group (same root rule). */
    const StatGroup *findGroup(const std::string &dotted) const;

    /** Immediate child group by name (nullptr if absent). */
    const StatGroup *childGroup(const std::string &name) const;

    /**
     * Walk this group and every descendant with a visitor: beginGroup,
     * stats sorted by name, child groups, endGroup.
     */
    void visit(StatVisitor &v) const;

  private:
    friend class StatBase;
    void addStat(StatBase *stat);
    void addChild(StatGroup *child);
    void removeChild(StatGroup *child);

    std::string name_;
    StatGroup *parent_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace vca::stats

#endif // VCA_STATS_STATISTICS_HH
