#include "trace/pipe_trace.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vca::trace {

void
PipeTraceWriter::write(const PipeRecord &rec)
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "O3PipeView:fetch:%llu:0x%08llx:%u:%llu:",
                  (unsigned long long)(rec.fetch * scale_),
                  (unsigned long long)rec.pc, rec.tid,
                  (unsigned long long)rec.seq);
    os_ << buf << rec.disasm << "\n";

    const auto stage = [&](const char *name, Cycle c) {
        os_ << "O3PipeView:" << name << ":" << c * scale_ << "\n";
    };
    stage("decode", rec.decode);
    stage("rename", rec.rename);
    stage("dispatch", rec.dispatch);
    stage("issue", rec.issue);
    stage("complete", rec.complete);
    os_ << "O3PipeView:retire:" << rec.commit * scale_ << ":store:"
        << (rec.isStore ? rec.storeComplete * scale_ : 0) << "\n";
    ++written_;
}

void
PipeTraceWriter::instant(const std::string &label, Cycle when)
{
    os_ << "O3PipeView:instant:" << when * scale_ << ":" << label
        << "\n";
    ++instants_;
}

namespace {

/** Split a line on ':' into at most maxParts fields (last keeps ':'). */
std::vector<std::string>
splitColon(const std::string &line, size_t maxParts)
{
    std::vector<std::string> parts;
    size_t pos = 0;
    while (parts.size() + 1 < maxParts) {
        size_t c = line.find(':', pos);
        if (c == std::string::npos)
            break;
        parts.push_back(line.substr(pos, c - pos));
        pos = c + 1;
    }
    parts.push_back(line.substr(pos));
    return parts;
}

std::uint64_t
toU64(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 0);
}

} // namespace

bool
parsePipeTrace(std::istream &is, std::vector<PipeRecord> &out,
               std::string *error, Cycle ticksPerCycle,
               std::uint64_t *unknownRecords)
{
    const Cycle scale = ticksPerCycle ? ticksPerCycle : 1;
    PipeRecord cur;
    bool open = false;
    std::string line;
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    while (std::getline(is, line)) {
        if (line.rfind("O3PipeView:", 0) != 0)
            continue;
        const std::string body = line.substr(std::strlen("O3PipeView:"));

        if (body.rfind("fetch:", 0) == 0) {
            if (open)
                return fail("fetch record opened before prior retired");
            // fetch:<tick>:<pc>:<upc>:<seq>:<disasm>
            const auto parts = splitColon(body, 6);
            if (parts.size() != 6)
                return fail("malformed fetch line: " + line);
            cur = PipeRecord{};
            cur.fetch = toU64(parts[1]) / scale;
            cur.pc = toU64(parts[2]);
            cur.tid = static_cast<unsigned>(toU64(parts[3]));
            cur.seq = toU64(parts[4]);
            cur.disasm = parts[5];
            open = true;
            continue;
        }
        const auto parts = splitColon(body, 4);
        const std::string &stage = parts[0];
        const bool known =
            stage == "decode" || stage == "rename" ||
            stage == "dispatch" || stage == "issue" ||
            stage == "complete" || stage == "retire";
        if (!known) {
            // Newer writers interleave extra record types (e.g.
            // "instant:<tick>:<label>" telemetry marks, which may fall
            // between records): count and skip so old traces and new
            // ones parse alike.
            if (unknownRecords)
                ++*unknownRecords;
            continue;
        }
        if (!open)
            return fail("stage line outside a record: " + line);

        const Cycle tick = parts.size() > 1 ? toU64(parts[1]) / scale : 0;
        if (stage == "decode") {
            cur.decode = tick;
        } else if (stage == "rename") {
            cur.rename = tick;
        } else if (stage == "dispatch") {
            cur.dispatch = tick;
        } else if (stage == "issue") {
            cur.issue = tick;
        } else if (stage == "complete") {
            cur.complete = tick;
        } else if (stage == "retire") {
            cur.commit = tick;
            if (parts.size() == 4 && parts[2] == "store") {
                cur.storeComplete = toU64(parts[3]) / scale;
                cur.isStore = cur.storeComplete != 0;
            }
            out.push_back(cur);
            open = false;
        }
    }
    if (open)
        return fail("trace ends inside a record");
    return true;
}

} // namespace vca::trace
