#include "analysis/explain.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "analysis/sampling.hh"
#include "sim/logging.hh"
#include "trace/json.hh"

namespace vca::analysis {

namespace {

/**
 * The common coarse bucketing both run formats can be projected onto:
 * the six flat commit-stall buckets plus idle. Used whenever the two
 * runs do not carry the same leaf set (e.g. a schema-v1 document or a
 * Measurement-derived input against a full taxonomy).
 */
const char *
coarseNameFor(const std::string &leaf)
{
    static const std::map<std::string, const char *> kMap = {
        {"retiring", "retiring"},
        {"idle", "idle"},
        {"frontend_bound.icache", "frontend_bound"},
        {"frontend_bound.fetch", "frontend_bound"},
        {"bad_speculation.recovery", "window_shift"},
        {"backend_memory.window_trap", "window_shift"},
        {"backend_core.exec", "exec_stall"},
        {"backend_memory.fill_latency", "exec_stall"},
        {"backend_core.rename_freelist", "rename_stall"},
        {"backend_memory.spill_stall", "rename_stall"},
        {"backend_memory.dcache", "mem_stall"},
        {"backend_memory.store_drain", "mem_stall"},
    };
    auto it = kMap.find(leaf);
    return it == kMap.end() ? leaf.c_str() : it->second;
}

std::vector<std::pair<std::string, double>>
coarsen(const std::vector<std::pair<std::string, double>> &leaves)
{
    std::map<std::string, double> sums;
    std::vector<std::string> order;
    for (const auto &[name, cycles] : leaves) {
        const std::string coarse = coarseNameFor(name);
        if (!sums.count(coarse))
            order.push_back(coarse);
        sums[coarse] += cycles;
    }
    std::vector<std::pair<std::string, double>> out;
    for (const std::string &name : order)
        out.emplace_back(name, sums[name]);
    return out;
}

std::set<std::string>
nameSet(const std::vector<std::pair<std::string, double>> &leaves)
{
    std::set<std::string> names;
    for (const auto &[name, cycles] : leaves)
        names.insert(name);
    return names;
}

double
numberAt(const trace::JsonValue &obj, const char *key,
         const std::string &path)
{
    const trace::JsonValue *v = obj.find(key);
    if (!v || !v->isNumber())
        fatal("stats-json %s: missing number '%s'", path.c_str(),
                   key);
    return v->asNumber();
}

/** Collect every scalar under a taxonomy group as dotted leaf names,
 *  skipping the per-thread subtrees (the machine-level partition is
 *  what attribution uses). */
void
collectLeaves(const trace::JsonValue &group, const std::string &prefix,
              std::vector<std::pair<std::string, double>> &out)
{
    for (const auto &[name, value] : group.members()) {
        if (name.rfind("thread", 0) == 0)
            continue;
        const std::string dotted =
            prefix.empty() ? name : prefix + "." + name;
        if (value.isNumber())
            out.emplace_back(dotted, value.asNumber());
        else if (value.isObject())
            collectLeaves(value, dotted, out);
    }
}

/** Linear interpolation of a cumulative series at instruction n. */
double
interpCum(const std::vector<double> &inst,
          const std::vector<double> &cum, double n)
{
    if (inst.empty())
        return 0;
    if (n <= inst.front())
        return cum.front();
    if (n >= inst.back())
        return cum.back();
    size_t hi = 1;
    while (hi < inst.size() && inst[hi] < n)
        ++hi;
    const double x0 = inst[hi - 1], x1 = inst[hi];
    const double y0 = cum[hi - 1], y1 = cum[hi];
    if (x1 <= x0)
        return y1;
    return y0 + (y1 - y0) * (n - x0) / (x1 - x0);
}

/** Cumulative view of one run's interval series (instruction axis). */
struct CumSeries
{
    std::vector<double> inst;   ///< committed insts at record ends
    std::vector<double> cycles; ///< cumulative cycles
    std::map<std::string, std::vector<double>> leaf; ///< per leaf

    explicit CumSeries(const ExplainInput &in, bool coarse)
    {
        inst.push_back(0);
        cycles.push_back(0);
        std::map<std::string, double> run;
        std::vector<std::string> names;
        for (const std::string &raw : in.intervalLeafNames) {
            const std::string name =
                coarse ? coarseNameFor(raw) : raw;
            names.push_back(name);
            run.emplace(name, 0);
        }
        for (const auto &[name, total] : run)
            leaf[name].push_back(0);
        double cyc = 0;
        for (const ExplainInterval &rec : in.intervals) {
            cyc += rec.cycles;
            inst.push_back(rec.committedCum);
            cycles.push_back(cyc);
            for (size_t i = 0; i < names.size() &&
                     i < rec.leafCycles.size(); ++i)
                run[names[i]] += rec.leafCycles[i];
            for (auto &[name, series] : leaf)
                series.push_back(run[name]);
        }
    }

    double cyclesAt(double n) const { return interpCum(inst, cycles, n); }

    double
    leafAt(const std::string &name, double n) const
    {
        auto it = leaf.find(name);
        return it == leaf.end() ? 0 : interpCum(inst, it->second, n);
    }
};

std::vector<IntervalHotspot>
alignIntervals(const ExplainInput &a, const ExplainInput &b,
               bool coarse)
{
    std::vector<IntervalHotspot> hotspots;
    if (a.intervals.size() < 2 || b.intervals.size() < 2)
        return hotspots;

    const CumSeries ca(a, coarse), cb(b, coarse);
    const double lastA = ca.inst.back(), lastB = cb.inst.back();
    const double n = std::min(lastA, lastB);
    if (n <= 0)
        return hotspots;

    const size_t bins = std::min<size_t>(
        10, std::min(a.intervals.size(), b.intervals.size()));
    std::set<std::string> leafNames;
    for (const auto &[name, series] : ca.leaf)
        leafNames.insert(name);
    for (const auto &[name, series] : cb.leaf)
        leafNames.insert(name);

    double totalGap = 0;
    std::vector<IntervalHotspot> all;
    for (size_t k = 0; k < bins; ++k) {
        const double n0 = n * static_cast<double>(k) / bins;
        const double n1 = n * static_cast<double>(k + 1) / bins;
        IntervalHotspot h;
        h.instLo = n0;
        h.instHi = n1;
        const double cycA = ca.cyclesAt(n1) - ca.cyclesAt(n0);
        const double cycB = cb.cyclesAt(n1) - cb.cyclesAt(n0);
        const double dn = n1 - n0;
        h.cpiA = dn > 0 ? cycA / dn : 0;
        h.cpiB = dn > 0 ? cycB / dn : 0;
        h.gapCycles = cycB - cycA;
        totalGap += h.gapCycles;
        double best = -1;
        for (const std::string &name : leafNames) {
            const double dl =
                (cb.leafAt(name, n1) - cb.leafAt(name, n0)) -
                (ca.leafAt(name, n1) - ca.leafAt(name, n0));
            if (std::fabs(dl) > best) {
                best = std::fabs(dl);
                h.topLeaf = name;
            }
        }
        all.push_back(std::move(h));
    }
    for (IntervalHotspot &h : all)
        h.gapShare = totalGap != 0 ? h.gapCycles / totalGap : 0;
    std::stable_sort(all.begin(), all.end(),
                     [](const IntervalHotspot &x,
                        const IntervalHotspot &y) {
                         return x.gapCycles > y.gapCycles;
                     });
    if (all.size() > 3)
        all.resize(3);
    return all;
}

std::string
formatDouble(const char *fmt, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
}

} // namespace

ExplainInput
loadRunJson(const std::string &path, const std::string &label)
{
    std::ifstream is(path);
    if (!is)
        fatal("vca-explain: cannot open '%s'", path.c_str());
    std::stringstream ss;
    ss << is.rdbuf();
    const trace::JsonValue doc = trace::JsonValue::parse(ss.str());
    if (!doc.isObject())
        fatal("stats-json %s: not an object", path.c_str());

    ExplainInput in;
    in.label = label.empty() ? path : label;

    if (const trace::JsonValue *cfg = doc.find("config")) {
        std::ostringstream os;
        bool first = true;
        for (const auto &[name, value] : cfg->members()) {
            if (!first)
                os << " ";
            first = false;
            os << name << "=";
            if (value.isNumber())
                os << trace::jsonNumber(value.asNumber());
            else if (value.kind() == trace::JsonValue::Kind::String)
                os << value.asString();
            else if (value.kind() == trace::JsonValue::Kind::Bool)
                os << (value.asBool() ? "true" : "false");
        }
        in.config = os.str();
    }

    const trace::JsonValue *summary = doc.find("summary");
    if (!summary || !summary->isObject())
        fatal("stats-json %s: missing summary", path.c_str());
    in.cycles = numberAt(*summary, "cycles", path);
    in.insts = numberAt(*summary, "insts", path);

    // Prefer the hierarchical taxonomy; a VCA_NTELEMETRY producer
    // registers it all-zero, in which case the flat six-bucket
    // accounting (always maintained) is the best available partition.
    double taxSum = 0;
    if (const trace::JsonValue *tax =
            doc.findPath("cpu.cycle_accounting.taxonomy")) {
        collectLeaves(*tax, "", in.leaves);
        for (const auto &[name, cycles] : in.leaves)
            taxSum += cycles;
    }
    if (taxSum <= 0) {
        in.leaves.clear();
        if (const trace::JsonValue *flat =
                doc.findPath("cpu.cycle_accounting")) {
            static const std::pair<const char *, const char *>
                kFlat[] = {
                    {"commit_active", "retiring"},
                    {"frontend", "frontend_bound"},
                    {"window_shift", "window_shift"},
                    {"exec_stall", "exec_stall"},
                    {"rename_freelist", "rename_stall"},
                    {"mem_stall", "mem_stall"},
                };
            for (const auto &[json, coarse] : kFlat)
                if (const trace::JsonValue *v = flat->find(json))
                    if (v->isNumber())
                        in.leaves.emplace_back(coarse, v->asNumber());
        }
    }

    if (const trace::JsonValue *intervals = doc.find("intervals")) {
        if (intervals->isArray() && intervals->size() > 0) {
            for (const auto &[name, value] :
                     intervals->at(0).members())
                if (name.rfind("tax.", 0) == 0)
                    in.intervalLeafNames.push_back(name.substr(4));
            for (size_t i = 0; i < intervals->size(); ++i) {
                const trace::JsonValue &rec = intervals->at(i);
                ExplainInterval iv;
                iv.committedCum =
                    numberAt(rec, "committed_cum", path);
                iv.cycles = numberAt(rec, "end_cycle", path) -
                            numberAt(rec, "start_cycle", path);
                if (const trace::JsonValue *p = rec.find("partial"))
                    iv.partial = p->asBool();
                for (const std::string &leaf : in.intervalLeafNames) {
                    const trace::JsonValue *v =
                        rec.find("tax." + leaf);
                    iv.leafCycles.push_back(
                        v && v->isNumber() ? v->asNumber() : 0);
                }
                in.intervals.push_back(std::move(iv));
            }
        }
    }
    return in;
}

ExplainInput
explainInputFromMeasurement(const std::string &label,
                            const std::string &config,
                            const Measurement &m)
{
    ExplainInput in;
    in.label = label;
    in.config = config;
    if (!m.ok) {
        in.config += " (inoperable: " + m.error + ")";
        return in;
    }
    in.cycles = static_cast<double>(m.cycles);
    in.insts = static_cast<double>(m.insts);
    // Measurement carries only the flat six-bucket fractions (the
    // struct is frozen for sweep-cache stability), so project them
    // onto the coarse bucket names loadRunJson's fallback also uses.
    static const std::pair<const char *, const char *> kCoarse[] = {
        {"commit", "retiring"},  {"frontend", "frontend_bound"},
        {"window", "window_shift"}, {"exec", "exec_stall"},
        {"rename", "rename_stall"}, {"mem", "mem_stall"},
    };
    for (const auto &[name, fraction] : m.cycleBreakdown)
        for (const auto &[from, to] : kCoarse)
            if (name == from)
                in.leaves.emplace_back(to, fraction * in.cycles);
    return in;
}

ExplainReport
explain(const ExplainInput &a, const ExplainInput &b)
{
    ExplainReport r;
    r.labelA = a.label;
    r.labelB = b.label;
    r.configA = a.config;
    r.configB = b.config;
    r.cyclesA = a.cycles;
    r.cyclesB = b.cycles;
    r.instsA = a.insts;
    r.instsB = b.insts;
    r.cpiA = a.cpi();
    r.cpiB = b.cpi();
    r.gap = r.cpiB - r.cpiA;

    std::vector<std::pair<std::string, double>> leavesA = a.leaves;
    std::vector<std::pair<std::string, double>> leavesB = b.leaves;
    if (nameSet(leavesA) != nameSet(leavesB)) {
        leavesA = coarsen(leavesA);
        leavesB = coarsen(leavesB);
        r.coarsened = true;
    }

    std::map<std::string, double> cycA, cycB;
    for (const auto &[name, cycles] : leavesA)
        cycA[name] += cycles;
    for (const auto &[name, cycles] : leavesB)
        cycB[name] += cycles;
    std::set<std::string> names;
    for (const auto &[name, cycles] : cycA)
        names.insert(name);
    for (const auto &[name, cycles] : cycB)
        names.insert(name);

    double attributed = 0;
    for (const std::string &name : names) {
        Attribution att;
        att.leaf = name;
        att.cpiA = a.insts > 0 ? cycA[name] / a.insts : 0;
        att.cpiB = b.insts > 0 ? cycB[name] / b.insts : 0;
        att.delta = att.cpiB - att.cpiA;
        att.share = r.gap != 0 ? att.delta / r.gap : 0;
        attributed += att.delta;
        r.attributions.push_back(std::move(att));
    }
    std::stable_sort(r.attributions.begin(), r.attributions.end(),
                     [](const Attribution &x, const Attribution &y) {
                         const double ax = std::fabs(x.delta);
                         const double ay = std::fabs(y.delta);
                         if (ax != ay)
                             return ax > ay;
                         return x.leaf < y.leaf;
                     });
    r.attributedFraction =
        r.gap != 0 ? attributed / r.gap
                   : (r.attributions.empty() ? 0 : 1.0);

    r.hotspots = alignIntervals(a, b, r.coarsened);
    return r;
}

std::string
renderReport(const ExplainReport &r, bool markdown)
{
    std::ostringstream os;
    const char *hl = markdown ? "**" : "";

    if (markdown)
        os << "# vca-explain: " << r.labelA << " vs " << r.labelB
           << "\n\n";
    else
        os << "vca-explain: " << r.labelA << " vs " << r.labelB
           << "\n";

    auto runLine = [&](const char *tag, const std::string &label,
                       const std::string &config, double cpi,
                       double cycles, double insts) {
        if (markdown)
            os << "- " << hl << tag << hl << " " << label;
        else
            os << "  " << tag << ": " << label;
        if (!config.empty())
            os << " [" << config << "]";
        os << "  cpi=" << formatDouble("%.4f", cpi)
           << " (cycles=" << trace::jsonNumber(cycles)
           << ", insts=" << trace::jsonNumber(insts) << ")\n";
    };
    runLine("A", r.labelA, r.configA, r.cpiA, r.cyclesA, r.instsA);
    runLine("B", r.labelB, r.configB, r.cpiB, r.cyclesB, r.instsB);

    os << (markdown ? "\n" : "  ") << hl << "CPI gap: "
       << formatDouble("%+.4f", r.gap);
    if (r.cpiA > 0)
        os << " (" << formatDouble("%+.1f", 100 * r.gap / r.cpiA)
           << "% vs A)";
    os << hl << "  attributed: "
       << formatDouble("%.1f", 100 * r.attributedFraction) << "%";
    if (r.coarsened)
        os << "  (leaf sets differ; coarsened to six-way buckets)";
    os << "\n\n";

    if (markdown) {
        os << "| rank | leaf | cpi A | cpi B | delta | share |\n";
        os << "|-----:|------|------:|------:|------:|------:|\n";
        int rank = 1;
        for (const Attribution &att : r.attributions)
            os << "| " << rank++ << " | `" << att.leaf << "` | "
               << formatDouble("%.4f", att.cpiA) << " | "
               << formatDouble("%.4f", att.cpiB) << " | "
               << formatDouble("%+.4f", att.delta) << " | "
               << formatDouble("%.1f", 100 * att.share) << "% |\n";
    } else {
        os << "  rank  leaf                              "
           << "cpi A     cpi B      delta   share\n";
        int rank = 1;
        for (const Attribution &att : r.attributions) {
            char line[160];
            std::snprintf(line, sizeof(line),
                          "  %4d  %-32s %8.4f  %8.4f  %+9.4f  %5.1f%%\n",
                          rank++, att.leaf.c_str(), att.cpiA,
                          att.cpiB, att.delta, 100 * att.share);
            os << line;
        }
    }

    if (!r.hotspots.empty()) {
        os << (markdown
                   ? "\n## Where the gap opens\n\n"
                   : "\n  where the gap opens "
                     "(committed-instruction windows):\n");
        int rank = 1;
        for (const IntervalHotspot &h : r.hotspots) {
            if (markdown) {
                os << rank++ << ". insts ["
                   << trace::jsonNumber(h.instLo) << ", "
                   << trace::jsonNumber(h.instHi) << "): cpi "
                   << formatDouble("%.3f", h.cpiA) << " -> "
                   << formatDouble("%.3f", h.cpiB) << ", "
                   << formatDouble("%.1f", 100 * h.gapShare)
                   << "% of gap, top leaf `" << h.topLeaf << "`\n";
            } else {
                char line[200];
                std::snprintf(
                    line, sizeof(line),
                    "  %4d  insts [%.0f, %.0f)  cpi %.3f -> %.3f"
                    "  %5.1f%% of gap  top leaf: %s\n",
                    rank++, h.instLo, h.instHi, h.cpiA, h.cpiB,
                    100 * h.gapShare, h.topLeaf.c_str());
                os << line;
            }
        }
    }
    return os.str();
}

int
explainSelftest()
{
    // Two synthetic runs over 100k committed instructions. B plants a
    // 40k-cycle spill-stall gap confined to the second half of the
    // run; everything else is identical.
    ExplainInput a;
    a.label = "base";
    a.config = "synthetic";
    a.insts = 100'000;
    a.cycles = 150'000;
    a.leaves = {
        {"retiring", 100'000},
        {"backend_core.exec", 30'000},
        {"backend_memory.dcache", 20'000},
        {"backend_memory.spill_stall", 0},
    };
    a.intervalLeafNames = {"retiring", "backend_core.exec",
                           "backend_memory.dcache",
                           "backend_memory.spill_stall"};
    ExplainInput b = a;
    b.label = "spilly";
    b.cycles = 190'000;
    b.leaves.back().second = 40'000; // the planted spill-stall gap

    for (int i = 0; i < 10; ++i) {
        ExplainInterval iv;
        iv.committedCum = (i + 1) * 10'000.0;
        iv.cycles = 15'000;
        iv.leafCycles = {10'000, 3'000, 2'000, 0};
        a.intervals.push_back(iv);
        if (i >= 5) {
            iv.cycles = 23'000;
            iv.leafCycles = {10'000, 3'000, 2'000, 8'000};
        }
        b.intervals.push_back(iv);
    }

    const ExplainReport r = explain(a, b);
    int failures = 0;
    auto check = [&](bool ok, const char *what) {
        if (!ok) {
            std::fprintf(stderr,
                         "vca-explain selftest FAILED: %s\n", what);
            ++failures;
        }
    };

    check(std::fabs(r.gap - 0.4) < 1e-9, "CPI gap is the planted 0.4");
    check(!r.coarsened, "identical leaf sets are not coarsened");
    check(std::fabs(r.attributedFraction - 1.0) < 1e-9,
          "full partitions attribute 100% of the gap");
    check(!r.attributions.empty() &&
              r.attributions[0].leaf == "backend_memory.spill_stall",
          "top attribution is the planted spill-stall leaf");
    check(!r.attributions.empty() &&
              std::fabs(r.attributions[0].delta - 0.4) < 1e-9,
          "planted leaf carries the whole delta");
    check(!r.hotspots.empty() && r.hotspots[0].instLo >= 50'000 - 1,
          "top hotspot lies in the planted second half");
    check(!r.hotspots.empty() &&
              r.hotspots[0].topLeaf == "backend_memory.spill_stall",
          "top hotspot blames the planted leaf");

    // Coarsening path: strip B down to a flat-style coarse input and
    // make sure attribution still lands on the rename/spill bucket.
    ExplainInput bc;
    bc.label = "coarse";
    bc.insts = b.insts;
    bc.cycles = b.cycles;
    bc.leaves = {
        {"retiring", 100'000},
        {"exec_stall", 30'000},
        {"mem_stall", 20'000},
        {"rename_stall", 40'000},
    };
    const ExplainReport rc = explain(a, bc);
    check(rc.coarsened, "mixed leaf sets trigger coarsening");
    check(std::fabs(rc.attributedFraction - 1.0) < 1e-9,
          "coarsened partitions still attribute 100%");
    check(!rc.attributions.empty() &&
              rc.attributions[0].leaf == "rename_stall",
          "coarsened top attribution is the rename/spill bucket");

    const std::string text = renderReport(r, false);
    const std::string md = renderReport(r, true);
    check(text.find("backend_memory.spill_stall") != std::string::npos,
          "terminal report names the planted leaf");
    check(md.find("| 1 | `backend_memory.spill_stall`") !=
              std::string::npos,
          "markdown report ranks the planted leaf first");

    if (failures == 0)
        std::fprintf(stderr, "vca-explain selftest: all checks "
                             "passed\n");
    return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------
// Sampling error attribution
// ---------------------------------------------------------------------

namespace {

/** Pearson r; 0 when either axis is (near-)constant or n < 2. */
double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    const size_t n = xs.size();
    if (n < 2 || ys.size() != n)
        return 0;
    double mx = 0, my = 0;
    for (size_t i = 0; i < n; ++i) {
        mx += xs[i];
        my += ys[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0, sxx = 0, syy = 0;
    for (size_t i = 0; i < n; ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
        syy += (ys[i] - my) * (ys[i] - my);
    }
    if (sxx <= 1e-12 || syy <= 1e-12)
        return 0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace

SamplingReport
explainSampling(const std::string &config, const Measurement &sampled,
                const Measurement &detailed)
{
    SamplingReport r;
    r.config = config;
    r.summary = sampled.sampling;
    r.sampledIpc =
        r.summary.meanCpi > 0 ? 1.0 / r.summary.meanCpi : 0;
    r.detailedCpi = detailed.insts > 0
        ? static_cast<double>(detailed.cycles) /
          static_cast<double>(detailed.insts)
        : 0;
    r.detailedIpc = r.detailedCpi > 0 ? 1.0 / r.detailedCpi : 0;
    if (r.detailedIpc > 0)
        r.ipcErrorPct =
            100.0 * (r.sampledIpc - r.detailedIpc) / r.detailedIpc;
    r.detailedIpcInCi = r.summary.samples > 0 &&
        (r.summary.ciUnbounded ||
         (r.detailedIpc >= r.summary.ipcCiLo() &&
          r.detailedIpc <= r.summary.ipcCiHi()));

    std::vector<double> absErr, tagValid, bpredOcc;
    std::map<int, PhaseDeviation> phases;
    double worstAbs = -1;
    int idx = 0;
    for (const SampleRecord &rec : sampled.sampleRecords) {
        SampleDeviation d;
        d.index = idx++;
        d.rec = rec;
        d.cpiError = rec.cpi - r.detailedCpi;
        if (std::fabs(d.cpiError) > worstAbs) {
            worstAbs = std::fabs(d.cpiError);
            r.worstSample = d.index;
        }
        absErr.push_back(std::fabs(d.cpiError));
        tagValid.push_back(rec.tagValidFraction);
        bpredOcc.push_back(rec.bpredTableOccupancy);
        if (rec.phase >= 0) {
            PhaseDeviation &p = phases[rec.phase];
            p.phase = rec.phase;
            p.weight = rec.weight;
            ++p.samples;
            p.meanCpi += rec.cpi;
            p.meanAbsError += std::fabs(d.cpiError);
        }
        r.samples.push_back(std::move(d));
    }
    r.corrTagValid = pearson(tagValid, absErr);
    r.corrBpredOcc = pearson(bpredOcc, absErr);
    for (auto &[phase, p] : phases) {
        p.meanCpi /= p.samples;
        p.meanAbsError /= p.samples;
        r.phases.push_back(p);
    }
    return r;
}

std::string
renderSamplingReport(const SamplingReport &r, bool markdown)
{
    std::ostringstream os;
    const char *hl = markdown ? "**" : "";

    if (markdown)
        os << "# vca-explain --sampling: " << r.config << "\n\n";
    else
        os << "vca-explain --sampling: " << r.config << "\n";

    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s  sampled:  IPC %.4f (CPI %.4f), 95%% CI "
                  "[%.4f, %.4f] over %u sample%s%s\n",
                  markdown ? "-" : "", r.sampledIpc, r.summary.meanCpi,
                  r.summary.ipcCiLo(), r.summary.ipcCiHi(),
                  r.summary.samples, r.summary.samples == 1 ? "" : "s",
                  r.summary.ciUnbounded ? " (CI unbounded: n=1)" : "");
    os << line;
    std::snprintf(line, sizeof(line),
                  "%s  detailed: IPC %.4f (CPI %.4f)\n",
                  markdown ? "-" : "", r.detailedIpc, r.detailedCpi);
    os << line;
    std::snprintf(line, sizeof(line),
                  "%s  %sIPC error %+.2f%%%s; detailed IPC %s the "
                  "95%% CI\n",
                  markdown ? "-" : "", hl, r.ipcErrorPct, hl,
                  r.detailedIpcInCi ? "inside" : "OUTSIDE");
    os << line;

    if (!r.samples.empty()) {
        os << (markdown
                   ? "\n## Per-sample deviation\n\n"
                     "| idx | start inst | cpi | error | tag valid |"
                     " bpred occ | phase |\n"
                     "|----:|-----------:|----:|------:|----------:|"
                     "----------:|------:|\n"
                   : "\n  per-sample deviation (cpi - detailed cpi; "
                     "worst marked *):\n"
                     "   idx  start_inst       cpi     error  "
                     "tag_valid  bpred_occ  phase\n");
        for (const SampleDeviation &d : r.samples) {
            if (markdown) {
                std::snprintf(line, sizeof(line),
                              "| %d | %llu | %.4f | %+.4f | %.4f |"
                              " %.4f | %s |\n",
                              d.index,
                              static_cast<unsigned long long>(
                                  d.rec.startInst),
                              d.rec.cpi, d.cpiError,
                              d.rec.tagValidFraction,
                              d.rec.bpredTableOccupancy,
                              d.rec.phase < 0
                                  ? "-"
                                  : std::to_string(d.rec.phase)
                                        .c_str());
            } else {
                std::snprintf(line, sizeof(line),
                              "  %c%3d  %10llu  %8.4f  %+8.4f     "
                              "%.4f     %.4f  %5s\n",
                              d.index == r.worstSample ? '*' : ' ',
                              d.index,
                              static_cast<unsigned long long>(
                                  d.rec.startInst),
                              d.rec.cpi, d.cpiError,
                              d.rec.tagValidFraction,
                              d.rec.bpredTableOccupancy,
                              d.rec.phase < 0
                                  ? "-"
                                  : std::to_string(d.rec.phase)
                                        .c_str());
            }
            os << line;
        }

        os << (markdown
                   ? "\n## Warmth correlation\n\n"
                   : "\n  warmth correlation (Pearson r of |error| "
                     "vs transplant warmth):\n");
        std::snprintf(line, sizeof(line),
                      "%s  cache-tag valid fraction: %+.2f\n"
                      "%s  bpred table occupancy:    %+.2f\n",
                      markdown ? "-" : "", r.corrTagValid,
                      markdown ? "-" : "", r.corrBpredOcc);
        os << line
           << (markdown ? "" : "  ")
           << "  (negative r: colder transplants deviate more)\n";
    }

    if (!r.phases.empty()) {
        os << (markdown
                   ? "\n## Per-phase (SimPoint)\n\n"
                     "| phase | weight | samples | mean cpi |"
                     " mean abs error |\n"
                     "|------:|-------:|--------:|---------:|"
                     "---------------:|\n"
                   : "\n  per-phase (SimPoint):\n"
                     "  phase  weight  samples  mean_cpi  "
                     "mean|error|\n");
        for (const PhaseDeviation &p : r.phases) {
            if (markdown)
                std::snprintf(line, sizeof(line),
                              "| %d | %.4f | %u | %.4f | %.4f |\n",
                              p.phase, p.weight, p.samples, p.meanCpi,
                              p.meanAbsError);
            else
                std::snprintf(line, sizeof(line),
                              "  %5d  %6.4f  %7u  %8.4f     %8.4f\n",
                              p.phase, p.weight, p.samples, p.meanCpi,
                              p.meanAbsError);
            os << line;
        }
    }
    return os.str();
}

int
samplingSelftest()
{
    // A synthetic sampled run against a detailed CPI of 1.0: sample 2
    // is planted cold (low warmth) with a large deviation, so the
    // worst-sample pick and the warmth correlation sign are known.
    Measurement detailed;
    detailed.ok = true;
    detailed.cycles = 100'000;
    detailed.insts = 100'000;

    Measurement sampled;
    sampled.ok = true;
    auto mkRec = [](InstCount start, double cpi, double tag,
                    double bp, int phase, double weight) {
        SampleRecord rec;
        rec.startInst = start;
        rec.cycles = static_cast<Cycle>(cpi * 1000);
        rec.insts = 1000;
        rec.cpi = cpi;
        rec.tagValidFraction = tag;
        rec.bpredTableOccupancy = bp;
        rec.phase = phase;
        rec.weight = weight;
        return rec;
    };
    sampled.sampleRecords = {
        mkRec(10'000, 1.02, 0.90, 0.80, 0, 0.5),
        mkRec(30'000, 0.98, 0.85, 0.75, 0, 0.5),
        mkRec(50'000, 1.40, 0.10, 0.05, 1, 0.3),
        mkRec(70'000, 1.05, 0.70, 0.60, 2, 0.2),
    };
    sampled.sampling = computeSamplingSummary(sampled.sampleRecords);

    const SamplingReport r =
        explainSampling("synthetic", sampled, detailed);

    int failures = 0;
    auto check = [&](bool ok, const char *what) {
        if (!ok) {
            std::fprintf(stderr,
                         "vca-explain sampling selftest FAILED: %s\n",
                         what);
            ++failures;
        }
    };

    check(std::fabs(r.detailedCpi - 1.0) < 1e-12,
          "detailed CPI is the planted 1.0");
    check(r.worstSample == 2, "worst sample is the planted cold one");
    check(r.samples.size() == 4 &&
              std::fabs(r.samples[2].cpiError - 0.40) < 1e-9,
          "planted deviation is recovered per sample");
    check(r.corrTagValid < -0.5,
          "error anti-correlates with cache-tag warmth");
    check(r.corrBpredOcc < -0.5,
          "error anti-correlates with bpred warmth");
    check(r.phases.size() == 3, "three SimPoint phases aggregate");
    check(!r.phases.empty() && r.phases[0].samples == 2,
          "phase 0 rolls up both of its samples");
    bool phase1Worst = false;
    for (const PhaseDeviation &p : r.phases)
        if (p.phase == 1)
            phase1Worst = p.meanAbsError > 0.35;
    check(phase1Worst, "phase 1 carries the planted error");

    // Degenerate: a single sample must flag an unbounded CI and the
    // containment check must not reject it.
    Measurement one;
    one.ok = true;
    one.sampleRecords = {mkRec(10'000, 1.20, 0.5, 0.5, -1, 1.0)};
    one.sampling = computeSamplingSummary(one.sampleRecords);
    const SamplingReport r1 =
        explainSampling("synthetic-n1", one, detailed);
    check(r1.summary.ciUnbounded, "n=1 flags an unbounded CI");
    check(r1.detailedIpcInCi,
          "unbounded CI contains the detailed IPC by definition");

    const std::string text = renderSamplingReport(r, false);
    const std::string md = renderSamplingReport(r, true);
    check(text.find("per-phase (SimPoint)") != std::string::npos,
          "terminal report includes the per-phase table");
    check(text.find("warmth correlation") != std::string::npos,
          "terminal report includes the warmth correlation");
    check(md.find("## Per-sample deviation") != std::string::npos,
          "markdown report includes the per-sample table");

    if (failures == 0)
        std::fprintf(stderr, "vca-explain sampling selftest: all "
                             "checks passed\n");
    return failures == 0 ? 0 : 1;
}

} // namespace vca::analysis
