/**
 * @file
 * Interval statistics: an IPC/stall time-series over a run.
 *
 * The recorder is fed one onCommit() call per committed instruction
 * (wired through OooCpu::addCommitListener) and closes an interval
 * every `every` commits, capturing the cycle window and any extra
 * probe values (dcache accesses, stall counters) the caller
 * registered. Closed intervals are kept in memory for the JSON
 * export and optionally announced through DPRINTF(Interval, ...).
 */

#ifndef VCA_TRACE_INTERVAL_STATS_HH
#define VCA_TRACE_INTERVAL_STATS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"
#include "trace/json.hh"

namespace vca::trace {

/** One closed measurement interval. */
struct IntervalRecord
{
    std::uint64_t index = 0;      ///< 0-based interval number
    Cycle startCycle = 0;
    Cycle endCycle = 0;
    std::uint64_t committed = 0;  ///< instructions in this interval
    std::uint64_t committedCum = 0; ///< cumulative at interval end
    double ipc = 0;
    /** True for a final interval closed by finish() before reaching
     *  the full `every` commits; alignment/IPC consumers must not
     *  weight it like a full interval. */
    bool partial = false;
    /** Probe deltas over the interval, in registration order. */
    std::vector<double> probes;
};

class IntervalRecorder
{
  public:
    /** @param every interval length in committed instructions (>0) */
    explicit IntervalRecorder(InstCount every);

    /**
     * Register a named probe sampled at interval boundaries; the
     * recorded value is the delta across the interval (suits
     * monotonic counters like cache accesses or stall cycles).
     */
    void addProbe(std::string name, std::function<double()> sample);

    /** Feed one committed instruction at the given cycle. */
    void onCommit(Cycle now);

    /** Close a final interval (no-op when empty). An interval shorter
     *  than `every` commits is flagged IntervalRecord::partial. */
    void finish(Cycle now);

    const std::vector<IntervalRecord> &records() const
    {
        return records_;
    }
    const std::vector<std::string> &probeNames() const
    {
        return probeNames_;
    }
    InstCount intervalLength() const { return every_; }

    /** Emit `"intervals": [...]`-style array into an open object. */
    void writeJson(JsonWriter &w, const char *key = "intervals") const;

  private:
    void closeInterval(Cycle now, bool partial = false);

    InstCount every_;
    std::uint64_t committed_ = 0;      ///< total commits seen
    std::uint64_t intervalStartInsts_ = 0;
    Cycle intervalStartCycle_ = 0;
    bool started_ = false;
    std::vector<std::string> probeNames_;
    std::vector<std::function<double()>> probeFns_;
    std::vector<double> probeStart_;
    std::vector<IntervalRecord> records_;
};

} // namespace vca::trace

#endif // VCA_TRACE_INTERVAL_STATS_HH
