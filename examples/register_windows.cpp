/**
 * @file
 * Register-window scenario (the paper's Section 4.1 motivation, as a
 * runnable demo): the same call-heavy benchmark compiled for both
 * ABIs, executed on all four register-management architectures, with
 * the execution-time and data-cache methodology of the paper applied.
 *
 * Shows, for one benchmark at one register-file size, the full story:
 * the windowed binary is shorter (path-length ratio), conventional
 * windows pay bursty whole-window traps, and VCA gets near-ideal time
 * at a fraction of the cache traffic.
 */

#include <cstdio>

#include "analysis/experiment.hh"

using namespace vca;
using cpu::RenamerKind;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const char *benchName = argc > 1 ? argv[1] : "perlbmk_535";
    const unsigned physRegs =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 192;

    const auto &prof = wload::profileByName(benchName);
    std::printf("benchmark %s, %u physical registers\n\n",
                prof.name.c_str(), physRegs);

    const InstCount lenNw = analysis::pathLength(prof, false);
    const InstCount lenW = analysis::pathLength(prof, true);
    std::printf("dynamic path length: %llu (baseline ABI) vs %llu "
                "(windowed ABI) -> ratio %.2f\n\n",
                (unsigned long long)lenNw, (unsigned long long)lenW,
                double(lenW) / double(lenNw));

    analysis::RunOptions opts;
    opts.warmupInsts = 20'000;
    opts.measureInsts = 200'000;

    std::printf("%-12s %8s %10s %14s %16s\n", "arch", "CPI",
                "exec time", "dcache/inst", "dcache (total)");

    double baseTime = 0;
    for (RenamerKind kind :
         {RenamerKind::Baseline, RenamerKind::ConvWindow,
          RenamerKind::IdealWindow, RenamerKind::Vca}) {
        const auto m = analysis::runBench(prof, kind, physRegs, opts);
        if (!m.ok) {
            std::printf("%-12s cannot operate: %s\n",
                        cpu::renamerKindName(kind), m.error.c_str());
            continue;
        }
        const double time = analysis::executionTime(prof, kind, m);
        const double dacc = analysis::totalDcacheAccesses(prof, kind, m);
        if (kind == RenamerKind::Baseline)
            baseTime = time;
        std::printf("%-12s %8.3f %9.2fM %14.3f %15.2fM%s\n",
                    cpu::renamerKindName(kind), m.cpi, time / 1e6,
                    m.dcacheAccPerInst, dacc / 1e6,
                    baseTime > 0 && kind != RenamerKind::Baseline
                        ? "" : "");
    }

    std::printf("\n(execution time = CPI x complete-program path "
                "length, Section 3.1)\n");
    return 0;
}
