/**
 * @file
 * Error / status reporting in the gem5 idiom.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - questionable but survivable condition.
 * inform() - plain status output.
 */

#ifndef VCA_SIM_LOGGING_HH
#define VCA_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace vca {

/** Exception thrown by panic() so tests can assert on invariants. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal() for user-level configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {
std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
std::string vformatMessage(const char *fmt, va_list args);
} // namespace detail

/**
 * Report an internal simulator bug and throw PanicError.
 * Use for conditions that can never happen regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and throw FatalError.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr (never stops simulation). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (benches use this). */
void setQuiet(bool quiet);

} // namespace vca

#endif // VCA_SIM_LOGGING_HH
