#include "analysis/sampling.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>

#include "analysis/simpoint.hh"
#include "func/func_sim.hh"
#include "sim/logging.hh"
#include "stats/host_stats.hh"
#include "telemetry/chrome_trace.hh"

namespace vca::analysis {

namespace {

/**
 * Sample-timeline lane for --chrome-trace in the non-detailed modes:
 * fast-forward spans, per-sample warm-up/measure quanta and transplant
 * instants, in host time (the fast-forward/detail split is a host-cost
 * story; simulated time is discontinuous across samples anyway). Lives
 * on its own pid so Perfetto renders it as a separate process group
 * from the sweep-runner host lanes (pid 100).
 */
constexpr int kSampleTracePid = 1;

class SampleTracer
{
  public:
    explicit SampleTracer(telemetry::ChromeTraceWriter *w) : w_(w)
    {
        if (!w_)
            return;
        w_->setProcessName(kSampleTracePid, "sample timeline");
        w_->setThreadName(kSampleTracePid, 0, "samples");
    }

    /** RAII span; no-op without a writer. */
    class Span
    {
      public:
        Span(SampleTracer &tr, std::string name, std::string args = "")
            : tr_(tr)
        {
            if (tr_.w_)
                tr_.w_->begin(kSampleTracePid, 0, name,
                              tr_.w_->hostNowUs(), std::move(args));
        }
        ~Span()
        {
            if (tr_.w_)
                tr_.w_->end(kSampleTracePid, 0, tr_.w_->hostNowUs());
        }

      private:
        SampleTracer &tr_;
    };

    void
    transplant(const SampleRecord &rec)
    {
        if (!w_)
            return;
        std::ostringstream args;
        args << "{\"start_inst\":" << rec.startInst
             << ",\"tag_valid\":" << rec.tagValidFraction
             << ",\"bpred_occupancy\":" << rec.bpredTableOccupancy
             << "}";
        w_->instant(kSampleTracePid, 0, "transplant", w_->hostNowUs(),
                    args.str());
    }

  private:
    telemetry::ChromeTraceWriter *w_;
};

/** Accumulate wall-clock seconds into a bucket while in scope. */
class ScopedSeconds
{
  public:
    explicit ScopedSeconds(double &acc)
        : acc_(acc), start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedSeconds()
    {
        const std::chrono::duration<double> d =
            std::chrono::steady_clock::now() - start_;
        acc_ += d.count();
    }

  private:
    double &acc_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Persistent functional-warming state. Microarchitectural history
 * (cache tags, LRU order, predictor tables) accumulates here across
 * the entire fast-forwarded region and is transplanted into each
 * sample's fresh core via copyStateFrom — the SMARTS requirement that
 * long-lived state is continuously warmed, never restarted per sample.
 */
struct WarmModel
{
    mem::MemSystem mem;
    bpred::BranchPredictor bpred;
    Cycle now = 0;

    WarmModel(const cpu::CpuParams &params, unsigned numThreads)
        : mem(params.memParams),
          bpred(params.bpredParams, numThreads, nullptr)
    {
    }
};

/**
 * Execute one functional instruction and feed its outcome to the warm
 * model's branch predictor and caches, mirroring what the pipeline
 * itself does per instruction (predict / commit-update /
 * redirect-repair; RAS push on call, pop on ret; icache access per
 * fetch, dcache access per memory op).
 *
 * Warming runs on its own clock: stepping it by more than the worst
 * miss chain per instruction guarantees in-flight fills always retire
 * before the next access, so the MSHRs can never saturate and reject
 * warming traffic. The clock never leaks into a measured run —
 * copyStateFrom transfers tags and LRU order (which use an internal
 * access counter) but no in-flight timestamps.
 */
constexpr Cycle kWarmCyclesPerInst = 300;

void
warmStep(WarmModel &warm, const cpu::Renamer &renamer,
         func::FuncSim &sim, const isa::Program &prog, ThreadId tid)
{
    const isa::StaticInst &si = prog.inst(sim.pc());
    func::StepRecord rec;
    if (!sim.step(rec))
        return;

    warm.mem.instAccess(
        mem::MemSystem::threadTag(tid, isa::layout::pcToAddr(rec.pc)),
        warm.now);
    if (rec.isMem) {
        const Addr a = renamer.relocateRegSpace(tid, rec.effAddr);
        warm.mem.dataAccess(mem::MemSystem::threadTag(tid, a),
                            si.isStore, warm.now);
    }

    auto &bp = warm.bpred;
    if (si.isBranch) {
        bpred::BPredCheckpoint ckpt;
        const bool taken = rec.npc != rec.pc + 1;
        const bool pred = bp.predict(tid, rec.pc, ckpt);
        bp.update(tid, rec.pc, taken, ckpt.history);
        if (pred != taken)
            bp.repairHistory(tid, ckpt, taken);
    } else if (si.isCall) {
        bpred::BPredCheckpoint ckpt;
        bp.pushRas(tid, rec.pc + 1, ckpt);
    } else if (si.isRet) {
        bpred::BPredCheckpoint ckpt;
        bp.popRas(tid, ckpt);
    }
    warm.now += kWarmCyclesPerInst;
}

/**
 * Advance one functional master by @p len instructions. With
 * sampleFuncWarmInsts == 0 (the default) every instruction feeds the
 * warm model — continuous functional warming; otherwise only the last
 * sampleFuncWarmInsts do, and the rest run through the decoded-BB
 * fast path (cheaper fast-forward, less accumulated warmth).
 */
void
advance(WarmModel &warm, const cpu::Renamer &renamer,
        func::FuncSim &sim, const isa::Program &prog, ThreadId tid,
        InstCount len, InstCount warmTail)
{
    const InstCount tail =
        warmTail == 0 ? len : std::min(warmTail, len);
    sim.runFast(len - tail);
    for (InstCount i = 0; i < tail && !sim.halted(); ++i)
        warmStep(warm, renamer, sim, prog, tid);
}

/** Raw counters mirrored from runTiming(), in the same order. */
constexpr const char *kCounterNames[] = {"stalls_table_conflict",
                                         "stalls_astq"};
constexpr unsigned kNumCounters = 2;

/** Sums measured quanta across samples into one Measurement. */
struct Agg
{
    Cycle cycles = 0;
    InstCount insts = 0;
    double dcacheAccesses = 0;
    std::vector<InstCount> threadInsts;
    double breakdown[6] = {};
    double counterVals[kNumCounters] = {};
    bool counterPresent[kNumCounters] = {};
    unsigned samples = 0;

    void
    add(const cpu::OooCpu &cpu, const cpu::RunResult &res)
    {
        cycles += res.cycles;
        insts += res.totalInsts;
        dcacheAccesses += res.dcacheAccesses;
        if (threadInsts.size() < res.threadInsts.size())
            threadInsts.resize(res.threadInsts.size(), 0);
        for (size_t i = 0; i < res.threadInsts.size(); ++i)
            threadInsts[i] += res.threadInsts[i];
        const auto &ca = cpu.cycleAccounting;
        breakdown[0] += ca.commitActive.value();
        breakdown[1] += ca.memStall.value();
        breakdown[2] += ca.execStall.value();
        breakdown[3] += ca.renameFreeList.value();
        breakdown[4] += ca.windowShift.value();
        breakdown[5] += ca.frontendStall.value();
        const auto *group = static_cast<const stats::StatGroup *>(&cpu);
        for (unsigned i = 0; i < kNumCounters; ++i) {
            if (const auto *s = dynamic_cast<const stats::Scalar *>(
                    group->find(kCounterNames[i]))) {
                counterVals[i] += s->value();
                counterPresent[i] = true;
            }
        }
        ++samples;
    }

    void
    fill(Measurement &m) const
    {
        m.ok = true;
        m.cycles = cycles;
        m.insts = insts;
        m.ipc = cycles ? double(insts) / double(cycles) : 0.0;
        m.cpi = insts ? double(cycles) / double(insts) : 0.0;
        m.dcacheAccesses = dcacheAccesses;
        m.dcacheAccPerInst =
            insts ? dcacheAccesses / double(insts) : 0.0;
        m.threadInsts = threadInsts;
        for (InstCount ti : threadInsts) {
            m.threadCpi.push_back(ti ? double(cycles) / double(ti)
                                     : 0.0);
            m.threadDcachePerInst.push_back(m.dcacheAccPerInst);
        }
        const double cyc = std::max(1.0, double(cycles));
        m.cycleBreakdown = {
            {"commit", breakdown[0] / cyc},
            {"mem", breakdown[1] / cyc},
            {"exec", breakdown[2] / cyc},
            {"rename", breakdown[3] / cyc},
            {"window", breakdown[4] / cyc},
            {"frontend", breakdown[5] / cyc},
        };
        for (unsigned i = 0; i < kNumCounters; ++i) {
            if (counterPresent[i])
                m.counters.emplace_back(kCounterNames[i],
                                        counterVals[i]);
        }
    }
};

/** Host accounting shared by both modes. */
struct HostSplit
{
    double funcSeconds = 0;
    double simSeconds = 0;
    double simInsts = 0;
    double simCycles = 0;

    void
    publish(double funcInsts) const
    {
        if (simSeconds > 0 || simInsts > 0)
            stats::HostStats::global().record(simSeconds, simInsts,
                                              simCycles);
        if (funcSeconds > 0 || funcInsts > 0)
            stats::HostStats::global().recordFunctional(funcSeconds,
                                                        funcInsts);
    }
};

void
runSmarts(const std::vector<const isa::Program *> &programs,
          const cpu::CpuParams &params, const RunOptions &opts,
          Measurement &m)
{
    if (!opts.samplePeriodInsts || !opts.sampleQuantumInsts)
        fatal("sampled mode requires a nonzero sample period and "
              "quantum");
    if (opts.samplePeriodInsts <=
        opts.sampleDetailWarmInsts + opts.sampleQuantumInsts)
        fatal("sample period (%llu insts) must exceed detail warm-up "
              "plus quantum (%llu insts)",
              (unsigned long long)opts.samplePeriodInsts,
              (unsigned long long)(opts.sampleDetailWarmInsts +
                                   opts.sampleQuantumInsts));
    const unsigned n = static_cast<unsigned>(programs.size());

    // Per-thread functional golden models, each on its own memory
    // image (the detailed core's per-thread memories are rebuilt from
    // these at every switch-in).
    std::vector<std::unique_ptr<mem::SparseMemory>> fmem;
    std::vector<std::unique_ptr<func::FuncSim>> fsim;
    for (unsigned t = 0; t < n; ++t) {
        fmem.push_back(std::make_unique<mem::SparseMemory>());
        fsim.push_back(
            std::make_unique<func::FuncSim>(*programs[t], *fmem[t]));
    }
    const auto anyHalted = [&] {
        for (unsigned t = 0; t < n; ++t)
            if (fsim[t]->halted())
                return true;
        return false;
    };

    WarmModel warm(params, n);
    Agg agg;
    HostSplit host;
    SampleTracer tracer(opts.traceWriter);

    // Pre-sampling warm-up: fast-forward warmupInsts (functionally
    // warmed, unmeasured) before the first period, so sampling can be
    // aimed past a program's cold-start transient — functional
    // warming sees no wrong-path accesses, so the transient is the
    // one region it cannot reproduce faithfully.
    if (opts.warmupInsts) {
        cpu::OooCpu reloc(params, programs);
        SampleTracer::Span span(tracer, "fast-forward (warm-up)");
        ScopedSeconds tm(host.funcSeconds);
        for (unsigned t = 0; t < n; ++t)
            advance(warm, reloc.renamer(), *fsim[t], *programs[t],
                    ThreadId(t), opts.warmupInsts,
                    opts.sampleFuncWarmInsts);
    }

    // Instructions each thread has already covered inside the current
    // period (detail warm-up + quantum of the previous sample), so
    // consecutive samples start exactly samplePeriodInsts apart.
    std::vector<InstCount> coveredInPeriod(n, 0);
    while (agg.insts < opts.measureInsts && !anyHalted()) {
        // A fresh core per sample: all transient state (queues, ROB,
        // rename tables) starts cold, as SMARTS intends; the
        // long-lived state is transplanted from the warm model below.
        cpu::OooCpu cpu(params, programs);
        std::vector<InstCount> committed(n, 0);
        cpu.addCommitListener([&committed](const cpu::DynInst &inst) {
            ++committed[inst.tid];
        });

        {
            SampleTracer::Span span(tracer, "fast-forward");
            ScopedSeconds tm(host.funcSeconds);
            for (unsigned t = 0; t < n; ++t) {
                const InstCount gap =
                    opts.samplePeriodInsts > coveredInPeriod[t]
                        ? opts.samplePeriodInsts - coveredInPeriod[t]
                        : 0;
                advance(warm, cpu.renamer(), *fsim[t], *programs[t],
                        ThreadId(t), gap, opts.sampleFuncWarmInsts);
            }
        }
        if (anyHalted())
            break;

        cpu.memSystem().copyStateFrom(warm.mem);
        cpu.branchPredictor().copyStateFrom(warm.bpred);
        for (unsigned t = 0; t < n; ++t)
            cpu.switchIn(ThreadId(t), fsim[t]->captureState(),
                         *fmem[t]);

        SampleRecord rec;
        for (unsigned t = 0; t < n; ++t)
            rec.startInst += fsim[t]->stats().insts;
        rec.tagValidFraction = cpu.memSystem().tagValidFraction();
        rec.bpredTableOccupancy =
            cpu.branchPredictor().tableOccupancy();
        tracer.transplant(rec);

        {
            ScopedSeconds tm(host.simSeconds);
            {
                SampleTracer::Span span(tracer, "detail warm-up");
                const auto warmRes = cpu.run(
                    opts.sampleDetailWarmInsts,
                    opts.sampleDetailWarmInsts * 200 + 100'000,
                    opts.stopOnFirstThread);
                rec.warmCycles = warmRes.cycles;
                rec.warmInsts = warmRes.totalInsts;
            }
            cpu.resetStats();
            SampleTracer::Span span(tracer, "measure");
            const auto res = cpu.run(
                opts.sampleQuantumInsts,
                opts.sampleQuantumInsts * 200 + 100'000,
                opts.stopOnFirstThread);
            agg.add(cpu, res);
            rec.cycles = res.cycles;
            rec.insts = res.totalInsts;
            if (res.totalInsts) {
                rec.cpi =
                    double(res.cycles) / double(res.totalInsts);
                m.sampleRecords.push_back(rec);
            }
            host.simCycles += double(cpu.currentCycle());
        }
        for (InstCount c : committed)
            host.simInsts += double(c);

        // The detailed sample continued warming the transplanted
        // state; adopt its final tags/tables so nothing the sample
        // touched is forgotten, then re-advance the functional
        // masters by exactly what the core committed. Those
        // instructions' microarchitectural effects are already in the
        // warm model, so the resync is a pure fast-forward.
        warm.mem.copyStateFrom(cpu.memSystem());
        warm.bpred.copyStateFrom(cpu.branchPredictor());
        {
            ScopedSeconds tm(host.funcSeconds);
            for (unsigned t = 0; t < n; ++t)
                fsim[t]->runFast(committed[t]);
        }
        coveredInPeriod = committed;
    }

    if (!agg.samples)
        fatal("sampled mode took no samples: program ends within one "
              "sample period (%llu insts)",
              (unsigned long long)opts.samplePeriodInsts);

    agg.fill(m);
    double funcInsts = 0;
    for (unsigned t = 0; t < n; ++t)
        funcInsts += double(fsim[t]->stats().insts);
    host.publish(funcInsts);
}

void
runSimPoint(const std::vector<const isa::Program *> &programs,
            const cpu::CpuParams &params, const RunOptions &opts,
            Measurement &m)
{
    if (programs.size() != 1)
        fatal("simpoint mode supports exactly one thread "
              "(use --mode=sampled for SMT)");
    if (!opts.measureInsts)
        fatal("simpoint mode requires a nonzero measured interval");
    const isa::Program &prog = *programs[0];

    HostSplit host;
    SampleTracer tracer(opts.traceWriter);
    // The interval length is the measured interval, so each phase's
    // representative interval is exactly what gets simulated in
    // detail. BBV collection executes the program functionally once
    // (bounded by pickSimPoint's maxIntervals); charge it to the
    // functional side.
    SimPointResult sp;
    {
        SampleTracer::Span span(tracer, "bbv collection");
        ScopedSeconds tm(host.funcSeconds);
        sp = pickSimPoint(prog, opts.measureInsts);
    }
    double funcInsts =
        double(sp.phaseOf.size()) * double(opts.measureInsts);

    mem::SparseMemory fmem;
    func::FuncSim fsim(prog, fmem);
    WarmModel warm(params, 1);
    Agg agg;
    // One representative interval per phase (nearest its centroid),
    // weighted by the fraction of intervals the phase covers. The
    // whole-program estimate blends the representatives' CPI — equal
    // instruction intervals make program IPC the harmonic mean of
    // interval IPCs, so time (CPI), not rate, is what weights add
    // over. A single dominant interval would misrepresent any
    // phase-changing program.
    double weightedCpi = 0;
    double weightUsed = 0;
    InstCount pos = 0; ///< master's position in dynamic insts
    for (size_t r = 0; r < sp.phaseRep.size(); ++r) {
        const InstCount target =
            InstCount(sp.phaseRep[r]) * opts.measureInsts;
        // Switch in warmupInsts before the interval so the detailed
        // warm-up runs through the instructions preceding it and the
        // measured region is the representative interval itself.
        const InstCount switchAt =
            target > opts.warmupInsts ? target - opts.warmupInsts : 0;

        cpu::OooCpu cpu(params, programs);
        InstCount committed = 0;
        cpu.addCommitListener(
            [&committed](const cpu::DynInst &) { ++committed; });
        {
            SampleTracer::Span span(tracer, "fast-forward");
            ScopedSeconds tm(host.funcSeconds);
            advance(warm, cpu.renamer(), fsim, prog, 0,
                    switchAt > pos ? switchAt - pos : 0,
                    opts.sampleFuncWarmInsts);
            pos = std::max(pos, switchAt);
        }
        if (fsim.halted())
            fatal("simpoint mode: program halted during "
                  "fast-forward");

        cpu.memSystem().copyStateFrom(warm.mem);
        cpu.branchPredictor().copyStateFrom(warm.bpred);
        cpu.switchIn(0, fsim.captureState(), fmem);

        SampleRecord rec;
        rec.startInst = fsim.stats().insts;
        rec.tagValidFraction = cpu.memSystem().tagValidFraction();
        rec.bpredTableOccupancy =
            cpu.branchPredictor().tableOccupancy();
        rec.phase = static_cast<int>(r);
        rec.weight = sp.phaseWeight[r];
        tracer.transplant(rec);

        {
            ScopedSeconds tm(host.simSeconds);
            {
                SampleTracer::Span span(tracer, "detail warm-up");
                const auto warmRes =
                    cpu.run(opts.warmupInsts,
                            opts.warmupInsts * 200 + 100'000,
                            opts.stopOnFirstThread);
                rec.warmCycles = warmRes.cycles;
                rec.warmInsts = warmRes.totalInsts;
            }
            cpu.resetStats();
            SampleTracer::Span span(tracer, "measure");
            const auto res =
                cpu.run(opts.measureInsts,
                        opts.measureInsts * 200 + 100'000,
                        opts.stopOnFirstThread);
            agg.add(cpu, res);
            if (res.totalInsts) {
                weightedCpi += sp.phaseWeight[r] *
                               double(res.cycles) /
                               double(res.totalInsts);
                weightUsed += sp.phaseWeight[r];
                rec.cycles = res.cycles;
                rec.insts = res.totalInsts;
                rec.cpi =
                    double(res.cycles) / double(res.totalInsts);
                m.sampleRecords.push_back(rec);
            }
            host.simInsts += double(committed);
            host.simCycles += double(cpu.currentCycle());
        }

        warm.mem.copyStateFrom(cpu.memSystem());
        warm.bpred.copyStateFrom(cpu.branchPredictor());
        {
            ScopedSeconds tm(host.funcSeconds);
            fsim.runFast(committed);
            pos += committed;
        }
    }

    agg.fill(m);
    // The headline IPC/CPI is the weighted whole-program estimate;
    // cycles/insts stay raw sums over the representatives (so
    // m.ipc != m.insts/m.cycles in general, unlike detailed mode).
    if (weightUsed > 0) {
        m.cpi = weightedCpi / weightUsed;
        m.ipc = m.cpi > 0 ? 1.0 / m.cpi : 0.0;
    }
    funcInsts += double(fsim.stats().insts);
    host.publish(funcInsts);
}

} // namespace

Measurement
runSampledTiming(const std::vector<const isa::Program *> &programs,
                 cpu::RenamerKind kind, unsigned physRegs,
                 const RunOptions &opts, const cpu::CpuParams &params)
{
    (void)kind;
    (void)physRegs;
    Measurement m;
    try {
        if (opts.regTelemetry)
            fatal("register telemetry requires --mode=detailed");
        if (opts.mode == SimMode::SimPoint)
            runSimPoint(programs, params, opts, m);
        else
            runSmarts(programs, params, opts, m);
        m.sampling = computeSamplingSummary(m.sampleRecords);
    } catch (const FatalError &e) {
        m.ok = false;
        m.error = e.what();
        m.sampleRecords.clear();
        m.sampling = SamplingSummary{};
    }
    return m;
}

// ---------------------------------------------------------------------
// Confidence-interval estimator
// ---------------------------------------------------------------------

double
weightedMean(const std::vector<double> &xs,
             const std::vector<double> &w)
{
    double sw = 0, sx = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sw += w[i];
        sx += w[i] * xs[i];
    }
    return sw > 0 ? sx / sw : 0.0;
}

double
weightedVariance(const std::vector<double> &xs,
                 const std::vector<double> &w)
{
    double sw = 0, sw2 = 0;
    for (double wi : w) {
        sw += wi;
        sw2 += wi * wi;
    }
    // The reliability-weight denominator (sw - sw2/sw) is zero for a
    // single (or single effective) sample: no variance estimate.
    if (sw <= 0 || sw * sw <= sw2)
        return 0.0;
    const double mean = weightedMean(xs, w);
    double ss = 0;
    for (size_t i = 0; i < xs.size(); ++i)
        ss += w[i] * (xs[i] - mean) * (xs[i] - mean);
    return ss / (sw - sw2 / sw);
}

double
effectiveSampleCount(const std::vector<double> &w)
{
    double sw = 0, sw2 = 0;
    for (double wi : w) {
        sw += wi;
        sw2 += wi * wi;
    }
    return sw2 > 0 ? (sw * sw) / sw2 : 0.0;
}

double
tCritical95(double dof)
{
    // Two-sided 95% critical values of Student's t, dof 1..30.
    static constexpr double kTable[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (dof < 1)
        return kTable[0];
    if (dof <= 30) {
        // Floor fractional dof (Kish effective sizes): the smaller
        // dof has the larger critical value, so this is conservative.
        return kTable[static_cast<size_t>(dof) - 1];
    }
    // Cornish-Fisher-style tail correction t ~ z + (z^3 + z)/(4 dof);
    // continuous with the table at dof 30 and -> 1.96 as dof -> inf.
    constexpr double z = 1.959964;
    return z + (z * z * z + z) / (4.0 * dof);
}

SamplingSummary
computeSamplingSummary(const std::vector<SampleRecord> &records)
{
    SamplingSummary s;
    if (records.empty())
        return s;
    std::vector<double> cpis, weights;
    for (const SampleRecord &r : records) {
        cpis.push_back(r.cpi);
        weights.push_back(r.weight > 0 ? r.weight : 1.0);
        s.meanTagValidFraction += r.tagValidFraction;
        s.meanBpredTableOccupancy += r.bpredTableOccupancy;
    }
    s.samples = static_cast<unsigned>(records.size());
    s.meanTagValidFraction /= double(records.size());
    s.meanBpredTableOccupancy /= double(records.size());
    s.meanCpi = weightedMean(cpis, weights);
    if (records.size() < 2) {
        // One sample: the variance of the estimator is unknowable, so
        // the 95% interval is unbounded. Flag it and collapse the
        // bounds to the point estimate instead of serializing
        // infinities (JSON has none).
        s.ciUnbounded = true;
        s.ciLoCpi = s.ciHiCpi = s.meanCpi;
        return s;
    }
    s.cpiVariance = weightedVariance(cpis, weights);
    const double nEff = effectiveSampleCount(weights);
    const double halfWidth =
        tCritical95(nEff - 1.0) * std::sqrt(s.cpiVariance / nEff);
    s.ciLoCpi = std::max(0.0, s.meanCpi - halfWidth);
    s.ciHiCpi = s.meanCpi + halfWidth;
    return s;
}

// ---------------------------------------------------------------------
// sampling.* statistics group
// ---------------------------------------------------------------------

SamplingStats::SamplingStats(stats::StatGroup *parent)
    : stats::StatGroup("sampling", parent),
      samples(this, "samples", "detailed samples measured"),
      meanCpi(this, "mean_cpi", "weighted mean of per-sample CPIs"),
      cpiVariance(this, "cpi_variance",
                  "unbiased variance of per-sample CPIs"),
      ciLoCpi(this, "ci_lo_cpi", "95% confidence interval low (CPI)"),
      ciHiCpi(this, "ci_hi_cpi", "95% confidence interval high (CPI)"),
      ciUnbounded(this, "ci_unbounded",
                  "1 when the interval is unbounded (single sample)"),
      ipcCiLo(this, "ipc_ci_lo", "95% confidence interval low (IPC)"),
      ipcCiHi(this, "ipc_ci_hi", "95% confidence interval high (IPC)"),
      meanTagValidFraction(this, "mean_tag_valid_fraction",
                           "mean cache-tag valid fraction at "
                           "switch-in"),
      meanBpredTableOccupancy(this, "mean_bpred_table_occupancy",
                              "mean predictor-table occupancy at "
                              "switch-in")
{
}

void
SamplingStats::populate(const Measurement &m)
{
    samples = m.sampling.samples;
    meanCpi = m.sampling.meanCpi;
    cpiVariance = m.sampling.cpiVariance;
    ciLoCpi = m.sampling.ciLoCpi;
    ciHiCpi = m.sampling.ciHiCpi;
    ciUnbounded = m.sampling.ciUnbounded ? 1 : 0;
    ipcCiLo = m.sampling.ipcCiLo();
    ipcCiHi = m.sampling.ipcCiHi();
    meanTagValidFraction = m.sampling.meanTagValidFraction;
    meanBpredTableOccupancy = m.sampling.meanBpredTableOccupancy;
}

const char *
simModeName(SimMode mode)
{
    switch (mode) {
      case SimMode::Detailed: return "detailed";
      case SimMode::SimPoint: return "simpoint";
      case SimMode::Sampled:  return "sampled";
    }
    return "unknown";
}

bool
parseSimMode(const std::string &text, SimMode &mode)
{
    if (text == "detailed") {
        mode = SimMode::Detailed;
        return true;
    }
    if (text == "simpoint") {
        mode = SimMode::SimPoint;
        return true;
    }
    if (text == "sampled") {
        mode = SimMode::Sampled;
        return true;
    }
    return false;
}

} // namespace vca::analysis
