/**
 * @file
 * Direct unit tests for the conventional renamer: initial-state
 * accounting, free-list behaviour, squash undo, commit freeing, and
 * the validate() invariant checker.
 */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/conv_renamer.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/phys_regfile.hh"

namespace {

using namespace vca;
using namespace vca::cpu;

class ConvRenamerTest : public ::testing::Test
{
  protected:
    ConvRenamerTest()
        : root_("t"),
          params_(CpuParams::preset(RenamerKind::Baseline, 80)),
          regs_(params_.physRegs),
          renamer_(params_, regs_, isa::numArchRegs, &root_)
    {
    }

    DynInst *
    makeInst(isa::Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
    {
        insts_.push_back(isa::decode(isa::encodeR(op, rd, rs1, rs2)));
        auto *inst = pool_.acquire();
        inst->si = &insts_.back();
        inst->tid = 0;
        inst->seq = ++seq_;
        return inst;
    }

    stats::StatGroup root_;
    CpuParams params_;
    PhysRegFile regs_;
    ConvRenamer renamer_;
    InstPool pool_;
    std::deque<isa::StaticInst> insts_;
    std::uint64_t seq_ = 0;
};

TEST_F(ConvRenamerTest, InitialStateMapsAllLogicals)
{
    // 80 physical - 64 architectural = 16 free rename registers.
    EXPECT_EQ(renamer_.freeRegs(), 16u);
    renamer_.validate();
    // Initial values are zero and ready.
    auto *inst = makeInst(isa::Opcode::Add, 10, 11, 12);
    ASSERT_TRUE(renamer_.rename(*inst, 1));
    EXPECT_TRUE(regs_.isReady(inst->srcPhys[0]));
    EXPECT_EQ(regs_.read(inst->srcPhys[0]), 0u);
    EXPECT_FALSE(regs_.isReady(inst->destPhys))
        << "new destination must await its producer";
}

TEST_F(ConvRenamerTest, DependencyChainLinksPhys)
{
    auto *a = makeInst(isa::Opcode::Add, 10, 11, 12);
    auto *b = makeInst(isa::Opcode::Add, 13, 10, 10);
    ASSERT_TRUE(renamer_.rename(*a, 1));
    ASSERT_TRUE(renamer_.rename(*b, 1));
    EXPECT_EQ(b->srcPhys[0], a->destPhys);
    EXPECT_EQ(b->srcPhys[1], a->destPhys);
    renamer_.validate();
}

TEST_F(ConvRenamerTest, CommitFreesPreviousMapping)
{
    auto *a = makeInst(isa::Opcode::Add, 10, 11, 12);
    ASSERT_TRUE(renamer_.rename(*a, 1));
    const unsigned freeAfterRename = renamer_.freeRegs();
    renamer_.commitInst(*a);
    EXPECT_EQ(renamer_.freeRegs(), freeAfterRename + 1)
        << "the overwritten mapping returns to the free list";
    renamer_.validate();
}

TEST_F(ConvRenamerTest, SquashRestoresMappingAndFreesReg)
{
    auto *a = makeInst(isa::Opcode::Add, 10, 11, 12);
    ASSERT_TRUE(renamer_.rename(*a, 1));
    const unsigned freeAfter = renamer_.freeRegs();

    renamer_.squashInst(*a);
    EXPECT_EQ(renamer_.freeRegs(), freeAfter + 1);

    // A later reader sees the original (pre-a) mapping again.
    auto *b = makeInst(isa::Opcode::Add, 13, 10, 10);
    ASSERT_TRUE(renamer_.rename(*b, 2));
    EXPECT_EQ(b->srcPhys[0], a->prevDestPhys);
    renamer_.validate();
}

TEST_F(ConvRenamerTest, FreeListExhaustionStalls)
{
    // 16 rename registers: the 17th in-flight destination must stall.
    std::vector<DynInst *> inflight;
    for (int i = 0; i < 16; ++i) {
        auto *inst = makeInst(isa::Opcode::Add, 10, 11, 12);
        ASSERT_TRUE(renamer_.rename(*inst, 1)) << "inst " << i;
        inflight.push_back(inst);
    }
    auto *blocked = makeInst(isa::Opcode::Add, 10, 11, 12);
    EXPECT_FALSE(renamer_.rename(*blocked, 1));
    EXPECT_GE(renamer_.renameStallsFreeList.value(), 1.0);

    // Committing the oldest in-flight producer frees a register.
    renamer_.commitInst(*inflight.front());
    EXPECT_TRUE(renamer_.rename(*blocked, 2));
    renamer_.validate();
}

TEST_F(ConvRenamerTest, NoDestInstructionsNeverStall)
{
    // Drain the free list entirely...
    for (int i = 0; i < 16; ++i) {
        auto *inst = makeInst(isa::Opcode::Add, 10, 11, 12);
        ASSERT_TRUE(renamer_.rename(*inst, 1));
    }
    // ...then a store (no destination) still renames.
    insts_.push_back(isa::decode(isa::encodeB(isa::Opcode::St, 2, 10,
                                              0)));
    auto *st = pool_.acquire();
    st->si = &insts_.back();
    st->tid = 0;
    st->seq = ++seq_;
    EXPECT_TRUE(renamer_.rename(*st, 1));
}

TEST(ConvRenamerSmt, ThreadsHaveIndependentMaps)
{
    stats::StatGroup root("t");
    CpuParams params = CpuParams::preset(RenamerKind::Baseline, 160, 2);
    PhysRegFile regs(params.physRegs);
    ConvRenamer renamer(params, regs, isa::numArchRegs, &root);
    InstPool pool;
    std::deque<isa::StaticInst> insts;

    insts.push_back(isa::decode(isa::encodeR(isa::Opcode::Add, 10, 11,
                                             12)));
    auto *a = pool.acquire();
    a->si = &insts.back();
    a->tid = 0;
    a->seq = 1;
    auto *b = pool.acquire();
    b->si = &insts.back();
    b->tid = 1;
    b->seq = 2;
    ASSERT_TRUE(renamer.rename(*a, 1));
    ASSERT_TRUE(renamer.rename(*b, 1));
    EXPECT_NE(a->destPhys, b->destPhys);
    EXPECT_NE(a->srcPhys[0], b->srcPhys[0])
        << "thread 1's r11 is a different physical register";
    renamer.validate();
}

} // namespace
