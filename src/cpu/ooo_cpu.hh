/**
 * @file
 * Execution-driven out-of-order superscalar CPU with SMT.
 *
 * The pipeline models paper Table 1: 4-wide fetch/rename/issue/commit,
 * a 128-entry instruction queue, 192-entry reorder buffer, 8-cycle
 * fetch-to-execute depth (9 with VCA's extra rename stage), hybrid
 * branch prediction with a return-address stack, ICOUNT SMT fetch, a
 * per-thread load/store queue with store-to-load forwarding and
 * conservative memory disambiguation, and a 2-port L1 data cache shared
 * by loads, stores, and the renamer's spill/fill traffic.
 *
 * Values flow through the physical register file (execute-at-execute,
 * M5 O3 style), so wrong-path instructions really execute and pollute
 * the caches - the misspeculation effects visible in the paper's
 * Figure 5 - while stores update architectural memory only at commit.
 */

#ifndef VCA_CPU_OOO_CPU_HH
#define VCA_CPU_OOO_CPU_HH

#include <functional>
#include <memory>
#include <vector>

#include "bpred/bpred.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/params.hh"
#include "cpu/phys_regfile.hh"
#include "cpu/renamer.hh"
#include "isa/program.hh"
#include "mem/cache.hh"
#include "mem/sparse_memory.hh"
#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/rng.hh"
#include "stats/statistics.hh"

namespace vca::cpu {

/** Results of a measurement interval. */
struct RunResult
{
    Cycle cycles = 0;
    InstCount totalInsts = 0;
    std::vector<InstCount> threadInsts;
    double dcacheAccesses = 0;
    double ipc = 0;
};

/**
 * One hierarchical cycle-taxonomy tree (top-down style): five
 * categories with renamer-specific leaves, each leaf a Scalar. The
 * twelve leaves partition whatever cycle stream is attributed into the
 * tree — the machine-level tree partitions `cpu.cycles` exactly, and
 * so does each per-hardware-thread tree (see CycleTaxonomy).
 *
 *   retiring                      >=1 instruction retired
 *   idle                          thread finished (per-thread trees)
 *   frontend_bound/{icache,fetch} ROB empty, front end filling
 *   bad_speculation/{recovery}    ROB empty, mispredict-recovery walk
 *   backend_core/{exec,rename_freelist}
 *   backend_memory/{dcache,store_drain,fill_latency,spill_stall,
 *                   window_trap}
 */
class TaxonomyBuckets : public stats::StatGroup
{
  public:
    TaxonomyBuckets(const std::string &name, stats::StatGroup *parent);

    /** Leaf identifiers in a fixed order (probe/export order). */
    enum class Leaf : unsigned
    {
        Retiring,
        Idle,
        Icache,
        Fetch,
        Recovery,
        Exec,
        RenameFreeList,
        Dcache,
        StoreDrain,
        FillLatency,
        SpillStall,
        WindowTrap,
        NumLeaves
    };
    static constexpr unsigned numLeaves =
        static_cast<unsigned>(Leaf::NumLeaves);

    /** Dotted leaf name relative to this tree, e.g.
     *  "backend_memory.dcache". */
    static const char *leafName(Leaf leaf);

    void add(Leaf leaf) { ++*leaves_[static_cast<unsigned>(leaf)]; }

    double
    leafValue(Leaf leaf) const
    {
        return leaves_[static_cast<unsigned>(leaf)]->value();
    }

    /** Sum over all leaves (== attributed cycles). */
    double leafSum() const;

    // Category subgroups (declared before the scalars they parent).
    stats::StatGroup frontendBound;
    stats::StatGroup badSpeculation;
    stats::StatGroup backendCore;
    stats::StatGroup backendMemory;

    stats::Scalar retiring;
    stats::Scalar idle;
    stats::Scalar icache;         ///< frontend_bound.icache
    stats::Scalar fetch;          ///< frontend_bound.fetch
    stats::Scalar recovery;       ///< bad_speculation.recovery
    stats::Scalar exec;           ///< backend_core.exec
    stats::Scalar renameFreeList; ///< backend_core.rename_freelist
    stats::Scalar dcache;         ///< backend_memory.dcache
    stats::Scalar storeDrain;     ///< backend_memory.store_drain
    stats::Scalar fillLatency;    ///< backend_memory.fill_latency
    stats::Scalar spillStall;     ///< backend_memory.spill_stall
    stats::Scalar windowTrap;     ///< backend_memory.window_trap

  private:
    stats::Scalar *leaves_[numLeaves];
};

/**
 * The full taxonomy subtree under cpu.cycle_accounting: one
 * machine-level tree (the group's own leaves) plus one "threadN"
 * subtree per hardware thread. Every simulated cycle adds exactly one
 * machine-level leaf and exactly one leaf per thread tree, so each
 * tree independently partitions `cpu.cycles`. Updated only when
 * telemetry is compiled in (VCA_NTELEMETRY leaves the group present
 * but all-zero, which keeps the stats-JSON schema stable).
 */
class CycleTaxonomy : public TaxonomyBuckets
{
  public:
    CycleTaxonomy(unsigned numThreads, stats::StatGroup *parent);

    TaxonomyBuckets &thread(unsigned t) { return *perThread_.at(t); }
    const TaxonomyBuckets &
    thread(unsigned t) const
    {
        return *perThread_.at(t);
    }
    unsigned
    numThreads() const
    {
        return static_cast<unsigned>(perThread_.size());
    }

  private:
    std::vector<std::unique_ptr<TaxonomyBuckets>> perThread_;
};

/**
 * Commit-stall attribution: every simulated cycle lands in exactly one
 * bucket, so the buckets sum to `cpu.cycles`. Attribution is
 * commit-centric (gem5's methodology): a cycle that retires nothing is
 * blamed on whatever the oldest unretired instruction is waiting for,
 * or — with an empty ROB — on why the front end is not delivering.
 *
 * The six flat scalars are the original coarse partition (benches and
 * the Measurement cycleBreakdown read them); the `taxonomy` child
 * refines them per DESIGN.md "Hierarchical cycle attribution":
 *   commit_active   == taxonomy.retiring
 *   frontend        == icache + fetch
 *   window_shift    == recovery + window_trap
 *   exec_stall      == exec + fill_latency
 *   mem_stall       == dcache + store_drain
 *   rename_freelist == spill_stall + rename_freelist (leaf)
 */
class CycleAccounting : public stats::StatGroup
{
  public:
    CycleAccounting(stats::StatGroup *parent, unsigned numThreads);

    stats::Scalar commitActive;   ///< >=1 instruction retired
    stats::Scalar memStall;       ///< ROB head is an unfinished mem op
    stats::Scalar execStall;      ///< ROB head unfinished, non-memory
    stats::Scalar renameFreeList; ///< ROB empty, renamer refused
    stats::Scalar windowShift;    ///< ROB empty, trap/recovery stall
    stats::Scalar frontendStall;  ///< ROB empty, fetch/decode filling
    CycleTaxonomy taxonomy;       ///< hierarchical refinement
};

class OooCpu : public stats::StatGroup
{
  public:
    /**
     * Build a core running one program per hardware thread.
     * @param programs one finalized program per thread (size sets the
     *                 thread count; must match params.numThreads)
     */
    OooCpu(const CpuParams &params,
           std::vector<const isa::Program *> programs,
           stats::StatGroup *parent = nullptr);
    ~OooCpu() override;

    /**
     * Run until every thread commits maxInstsPerThread (or halts), one
     * thread commits that many (stopOnFirstThread), or maxCycles pass.
     */
    RunResult run(InstCount maxInstsPerThread,
                  Cycle maxCycles = 0,
                  bool stopOnFirstThread = false);

    /** Advance one cycle (exposed for fine-grained tests). */
    void tick();

    /**
     * Install functionally fast-forwarded state for one thread. Only
     * legal before the first simulated cycle: copies the functional
     * memory image wholesale (relocating register-space pages for
     * renamers that give each thread its own register region),
     * redirects fetch, and hands the register state to the renamer.
     * Panics if any architectural register afterwards disagrees with
     * the functional golden model (the transfer invariant).
     */
    void switchIn(ThreadId tid, const func::ArchState &state,
                  const mem::SparseMemory &funcMem);

    bool threadDone(ThreadId tid) const { return threads_.at(tid).done; }
    InstCount
    committedInsts(ThreadId tid) const
    {
        return threads_.at(tid).committed;
    }
    Cycle currentCycle() const { return now_; }

    /**
     * The core's designated randomness source, seeded from
     * CpuParams::rngSeed. Every stochastic tie-break a component might
     * add must draw from here (never from shared or ambient state):
     * the sweep runner seeds it per point, which is what keeps
     * parallel sweeps bit-identical to serial ones.
     */
    Rng &rng() { return rng_; }

    Renamer &renamer() { return *renamer_; }
    mem::MemSystem &memSystem() { return memSys_; }
    bpred::BranchPredictor &branchPredictor() { return bpred_; }
    PhysRegFile &physRegs() { return regs_; }
    mem::SparseMemory &threadMemory(ThreadId tid);

    /**
     * Register a commit listener (called in commit order, in
     * registration order). Listeners compose: co-simulation checks,
     * the exec tracer, the pipeline tracer and interval statistics can
     * all observe the same run.
     */
    void addCommitListener(std::function<void(const DynInst &)> listener)
    {
        commitListeners_.push_back(std::move(listener));
    }

    /**
     * Rare pipeline events observable by telemetry listeners: window
     * overflow/underflow traps at commit and accepted spill/fill
     * transfer issues. Deliberately NOT per-instruction — emission
     * sites sit on cold paths and cost one empty() test when no
     * listener is registered (nothing at all under VCA_NTELEMETRY).
     */
    struct SimEvent
    {
        enum class Kind
        {
            WindowOverflow,  ///< commit-time trap on a call
            WindowUnderflow, ///< commit-time trap on a return
            Spill,           ///< store transfer issued to the cache
            Fill,            ///< load transfer issued to the cache
        };
        Kind kind;
        ThreadId tid;
        Cycle cycle;
        Addr addr; ///< transfer address (0 for window traps)
    };

    void addSimEventListener(std::function<void(const SimEvent &)> listener)
    {
        simEventListeners_.push_back(std::move(listener));
    }

    // Statistics (public; benches read them).
    stats::Scalar numCycles;
    stats::Scalar committedTotal;
    stats::Scalar committedLoads;
    stats::Scalar committedStores;
    stats::Scalar fetchedInsts;
    stats::Scalar squashedInsts;
    stats::Scalar branchesCommitted;
    stats::Scalar mispredicts;
    stats::Scalar loadForwards;
    stats::Scalar fetchIcacheStalls;
    stats::Scalar renameStallCycles;
    stats::Scalar robFullStalls;
    stats::Scalar iqFullStalls;
    stats::Scalar lsqFullStalls;
    stats::Distribution robOccupancyDist;
    stats::Distribution iqOccupancyDist;
    stats::Formula committedTotalAlias; ///< "committedTotal" for tools
    CycleAccounting cycleAccounting;

  private:
    struct FetchEntry
    {
        DynInst *inst;
        Cycle readyAt;
    };

    /** Why a thread's rename is blocked (renameBlockedUntil). */
    enum class RenameBlock : std::uint8_t
    {
        None,
        Recovery, ///< mispredict-recovery commit-table walk
        Trap,     ///< window overflow/underflow trap handler
    };

    struct ThreadState
    {
        const isa::Program *program = nullptr;
        std::unique_ptr<mem::SparseMemory> memory;
        Addr fetchPc = 0;
        Cycle fetchReadyAt = 0;
        bool fetchHalted = false;
        bool done = false;
        InstCount committed = 0;
        // Fixed-capacity rings (sized from CpuParams in the ctor); the
        // pipeline's own occupancy checks keep them within bounds, so
        // fetch/commit/squash never touch the allocator.
        RingBuffer<FetchEntry> fetchQueue;
        RingBuffer<DynInst *> rob;
        RingBuffer<DynInst *> lq; ///< loads in program order
        RingBuffer<DynInst *> sq; ///< stores in program order
        Cycle renameBlockedUntil = 0;
        // Taxonomy breadcrumbs: written on the (cold) stall paths,
        // read only by the gated accountTaxonomy() pass.
        RenameBlock renameBlockReason = RenameBlock::None;
        Cycle icacheStallUntil = 0;
        bool renameRefused = false;
        Renamer::StallCause renameRefusedCause =
            Renamer::StallCause::FreeList;
    };

    struct StoreBufferEntry
    {
        Addr addr;
        ThreadId tid;
    };

    // Pipeline stages (called in reverse order each tick).
    void processCompletions();
    void commitStage();
    void issueStage();
    void renameStage();
    void fetchStage();

    // Helpers.
    void accountCycle(double committedThisCycle);
    void accountTaxonomy(double committedThisCycle);
    TaxonomyBuckets::Leaf classifyHead(const DynInst *head) const;
    TaxonomyBuckets::Leaf classifyMachine(double committedThisCycle) const;
    TaxonomyBuckets::Leaf classifyThread(unsigned t) const;
    void executeInst(DynInst *inst);
    std::uint64_t readOperand(const DynInst *inst, unsigned s) const;
    void resolveControl(DynInst *inst);
    void scheduleCompletion(DynInst *inst, Cycle when);
    void completeInst(DynInst *inst);
    void wakeup(PhysRegIndex reg);
    void insertIq(DynInst *inst);
    bool loadReadyInLsq(DynInst *ld, DynInst **forwardFrom) const;
    void squashThread(ThreadId tid, std::uint64_t afterSeq);
    void releaseInst(DynInst *inst);
    unsigned robOccupancy() const;
    unsigned inflightCount(ThreadId tid) const;
    unsigned fuLimit(isa::FuClass fu) const;
    ThreadId pickFetchThread() const;

    CpuParams params_;
    Rng rng_;
    std::vector<ThreadState> threads_;

    mem::MemSystem memSys_;
    bpred::BranchPredictor bpred_;
    PhysRegFile regs_;
    std::unique_ptr<Renamer> renamer_;
    InstPool pool_;

    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 1;
    unsigned frontendDelay_ = 0; ///< decodeDelay + renamer extra stages
    unsigned robCount_ = 0; ///< sum of per-thread ROB sizes, maintained
                            ///< incrementally (robOccupancy() reads it)
    unsigned statSampleCountdown_ = 1; ///< cycles to the next
                                       ///< occupancy-distribution sample

    // Instruction queue: ready list plus per-register waiter lists.
    // Entries carry the sequence number at insertion so records that
    // outlive a squash (the pool recycles DynInsts) are ignored.
    std::vector<std::pair<DynInst *, std::uint64_t>> readyList_;
    std::vector<std::pair<DynInst *, std::uint64_t>> readyScratch_;
    std::vector<std::pair<DynInst *, std::uint64_t>> mergeScratch_;
    size_t readySortedLen_ = 0; ///< sorted-prefix length of readyList_
    std::vector<std::vector<std::pair<DynInst *, std::uint64_t>>>
        waiters_;
    unsigned iqCount_ = 0;

    // Completion events: (inst, seq-at-schedule), calendar-indexed by
    // cycle. The ring horizon covers the deepest schedulable latency
    // (full cache-miss chain plus FU latency); anything longer falls
    // into the queue's overflow bucket.
    CalendarQueue<std::pair<DynInst *, std::uint64_t>> events_;
    // Transfer (spill/fill) completion events.
    CalendarQueue<TransferOp> transferEvents_;
    // Per-cycle pop scratch, reused to avoid allocation in tick().
    std::vector<std::pair<DynInst *, std::uint64_t>> completionScratch_;
    std::vector<TransferOp> transferScratch_;
    bool pendingTransferValid_ = false;
    TransferOp pendingTransfer_{}; ///< rejected by MSHRs; retry first

    RingBuffer<StoreBufferEntry> storeBuffer_;

    unsigned commitRR_ = 0; ///< commit round-robin cursor
    unsigned renameRR_ = 0; ///< rename round-robin cursor
    bool renamerRefusedThisCycle_ = false; ///< for stall attribution
    // Per-thread committed counts captured at the top of tick() so the
    // taxonomy pass sees this cycle's per-thread commit deltas.
    std::vector<InstCount> commitSnapshot_;

    std::vector<std::function<void(const DynInst &)>> commitListeners_;
    std::vector<std::function<void(const SimEvent &)>> simEventListeners_;

    void
    emitSimEvent(SimEvent::Kind kind, ThreadId tid, Addr addr)
    {
#ifndef VCA_NTELEMETRY
        if (simEventListeners_.empty())
            return;
        const SimEvent ev{kind, tid, now_, addr};
        for (const auto &listener : simEventListeners_)
            listener(ev);
#else
        (void)kind;
        (void)tid;
        (void)addr;
#endif
    }
};

} // namespace vca::cpu

#endif // VCA_CPU_OOO_CPU_HH
