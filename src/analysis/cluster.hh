/**
 * @file
 * Agglomerative hierarchical clustering with average linkage, plus
 * medoid selection — the "linkage-based clustering algorithm" the paper
 * uses to pick representative SMT workloads (Section 3.2).
 */

#ifndef VCA_ANALYSIS_CLUSTER_HH
#define VCA_ANALYSIS_CLUSTER_HH

#include <cstddef>
#include <vector>

#include "analysis/pca.hh"

namespace vca::analysis {

/**
 * Cluster points into numClusters groups (average linkage, Euclidean).
 * @return cluster index per point
 */
std::vector<unsigned> averageLinkageCluster(const Matrix &points,
                                            unsigned numClusters);

/**
 * The member of each cluster nearest the cluster centroid.
 * @return point index per cluster (size == number of clusters)
 */
std::vector<std::size_t> clusterMedoids(const Matrix &points,
                                   const std::vector<unsigned> &assign);

} // namespace vca::analysis

#endif // VCA_ANALYSIS_CLUSTER_HH
