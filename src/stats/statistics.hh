/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Statistics are registered with a StatGroup by name and description and
 * can be dumped as formatted text. Supported kinds:
 *  - Scalar: a monotonically updated counter / value.
 *  - Average: running mean of samples.
 *  - Distribution: bucketed histogram with min/max/mean.
 *  - Formula: a derived value computed from other stats at dump time.
 */

#ifndef VCA_STATS_STATISTICS_HH
#define VCA_STATS_STATISTICS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace vca::stats {

class StatGroup;

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Write one or more formatted lines describing this stat. */
    virtual void print(std::ostream &os) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A plain accumulating counter. */
class Scalar : public StatBase
{
  public:
    Scalar(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc)) {}

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    void print(std::ostream &os) const override;
    void reset() override { value_ = 0; }

  private:
    double value_ = 0;
};

/** Running mean over explicit samples. */
class Average : public StatBase
{
  public:
    Average(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc)) {}

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }

    void print(std::ostream &os) const override;

    void
    reset() override
    {
        sum_ = 0;
        count_ = 0;
    }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [min, max). */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double min, double max, unsigned buckets);

    void sample(double v, std::uint64_t n = 1);

    std::uint64_t totalSamples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }
    double minSampled() const { return minSampled_; }
    double maxSampled() const { return maxSampled_; }
    std::uint64_t bucketCount(unsigned i) const { return counts_.at(i); }
    std::uint64_t underflows() const { return underflow_; }
    std::uint64_t overflows() const { return overflow_; }

    void print(std::ostream &os) const override;
    void reset() override;

  private:
    double min_;
    double max_;
    double bucketSize_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0;
    double minSampled_ = 0;
    double maxSampled_ = 0;
};

/** A value computed on demand from other statistics. */
class Formula : public StatBase
{
  public:
    using Func = std::function<double()>;

    Formula(StatGroup *parent, std::string name, std::string desc, Func f)
        : StatBase(parent, std::move(name), std::move(desc)),
          func_(std::move(f)) {}

    double value() const { return func_ ? func_() : 0.0; }

    void print(std::ostream &os) const override;
    void reset() override {}

  private:
    Func func_;
};

/**
 * A named collection of statistics. Groups may nest; names are dotted
 * paths at dump time (e.g. "cpu.dcache.accesses").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &groupName() const { return name_; }

    /** Dotted path from the root group. */
    std::string path() const;

    /** Print all stats in this group and children, sorted by name. */
    void dump(std::ostream &os) const;

    /** Reset all stats in this group and children. */
    void resetStats();

    /** Find a stat by name within this group only (nullptr if absent). */
    const StatBase *find(const std::string &name) const;

  private:
    friend class StatBase;
    void addStat(StatBase *stat);
    void addChild(StatGroup *child);
    void removeChild(StatGroup *child);

    std::string name_;
    StatGroup *parent_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace vca::stats

#endif // VCA_STATS_STATISTICS_HH
