/**
 * @file
 * Accuracy-oracle test tier (ctest label: accuracy).
 *
 * The sampled execution modes trade detailed-simulation coverage for
 * host speed; this tier pins down both sides of that trade on matched
 * detailed-vs-sampled pairs across all four renamer architectures:
 *
 *  - accuracy: sampled-mode IPC within epsilon (default 3%, override
 *    VCA_ACCURACY_EPS) of the detailed IPC for the same configuration,
 *    and simpoint mode within the same bound on these stationary
 *    synthetic workloads;
 *  - speed: the functional side must run at least 5x (override
 *    VCA_ACCURACY_SPEEDUP) the host-MIPS of the detailed side,
 *    measured from the HostStats func/sim split of the very same
 *    sampled runs;
 *  - stability: sampled numbers are golden (tests/golden/sampled.json,
 *    refresh with VCA_UPDATE_GOLDEN=1) and bit-identical across sweep
 *    job counts and across process isolation.
 *
 * scripts/accuracy_gate.py enforces the same epsilon/speedup contract
 * from the command line; scripts/check.sh runs both.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/runner.hh"
#include "stats/host_stats.hh"
#include "trace/json.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

using namespace vca;

namespace {

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? std::strtod(v, nullptr) : fallback;
}

double
epsilon()
{
    return envDouble("VCA_ACCURACY_EPS", 0.03);
}

double
minSpeedup()
{
    return envDouble("VCA_ACCURACY_SPEEDUP", 5.0);
}

const std::vector<cpu::RenamerKind> &
allArchs()
{
    static const std::vector<cpu::RenamerKind> archs = {
        cpu::RenamerKind::Baseline, cpu::RenamerKind::ConvWindow,
        cpu::RenamerKind::IdealWindow, cpu::RenamerKind::Vca};
    return archs;
}

/**
 * Matched spans: after a 240k-instruction warm-up that clears the
 * program's cold-start transient (functional warming sees no
 * wrong-path accesses, so the transient is the one region it cannot
 * reproduce faithfully), sampled mode takes 48k/2k = 24 quanta, one
 * every 10k instructions, covering instructions [250k, ~490k]; the
 * detailed reference measures exactly that region in one continuous
 * run. Comparing IPC over the *same dynamic instructions* is what
 * makes a 3% epsilon meaningful.
 */
analysis::RunOptions
detailedOpts()
{
    analysis::RunOptions opts;
    opts.warmupInsts = 250'000;
    opts.measureInsts = 240'000;
    return opts;
}

analysis::RunOptions
sampledOpts()
{
    analysis::RunOptions opts;
    opts.mode = analysis::SimMode::Sampled;
    opts.warmupInsts = 240'000;
    opts.samplePeriodInsts = 10'000;
    opts.sampleQuantumInsts = 2'000;
    // 3k of detailed warm-up per sample: enough for the conventional
    // window machine to rebuild its (microarchitectural, invisible to
    // functional warming) window stack and spill/fill working set.
    opts.sampleDetailWarmInsts = 3'000;
    opts.measureInsts = 48'000;
    return opts;
}

/**
 * SimPoint estimates the program from one representative interval
 * per phase, measured with continuously-warmed state — so what it
 * estimates is the program's *steady-state* behaviour. Its reference
 * is a detailed run from past the cold-start transient to program
 * end (the measure budget exceeds any profile's dynamic length; the
 * run ends at halt). The transient itself is invisible to BBV
 * clustering — transient and steady intervals execute the same
 * code — which is the classic SimPoint caveat at scaled-down
 * interval lengths.
 */
analysis::RunOptions
fullProgramOpts()
{
    analysis::RunOptions opts;
    opts.warmupInsts = 240'000;
    opts.measureInsts = 5'000'000;
    return opts;
}

analysis::RunOptions
simpointOpts()
{
    analysis::RunOptions opts;
    opts.mode = analysis::SimMode::SimPoint;
    opts.warmupInsts = 20'000;
    opts.measureInsts = 60'000; ///< BBV interval = measured interval
    return opts;
}

/** Physical registers each architecture is comfortable at. */
unsigned
regsFor(cpu::RenamerKind kind)
{
    return kind == cpu::RenamerKind::Vca ? 192 : 256;
}

analysis::Measurement
run(cpu::RenamerKind kind, const analysis::RunOptions &opts)
{
    return analysis::runBench(wload::profileByName("crafty"), kind,
                              regsFor(kind), opts);
}

std::string
goldenPath()
{
    return std::string(VCA_GOLDEN_DIR) + "/sampled.json";
}

} // namespace

TEST(Accuracy, SampledIpcWithinEpsilonOnAllArchs)
{
    setQuiet(true);
    for (cpu::RenamerKind kind : allArchs()) {
        const auto detailed = run(kind, detailedOpts());
        const auto sampled = run(kind, sampledOpts());
        ASSERT_TRUE(detailed.ok) << cpu::renamerKindName(kind) << ": "
                                 << detailed.error;
        ASSERT_TRUE(sampled.ok) << cpu::renamerKindName(kind) << ": "
                                << sampled.error;
        ASSERT_GT(detailed.ipc, 0.0);
        const double relErr =
            std::abs(sampled.ipc - detailed.ipc) / detailed.ipc;
        EXPECT_LE(relErr, epsilon())
            << cpu::renamerKindName(kind) << ": sampled ipc "
            << sampled.ipc << " vs detailed " << detailed.ipc
            << " (" << 100 * relErr << "% > " << 100 * epsilon()
            << "%)";
    }
}

TEST(Accuracy, SimPointIpcWithinEpsilonOnAllArchs)
{
    setQuiet(true);
    for (cpu::RenamerKind kind : allArchs()) {
        const auto detailed = run(kind, fullProgramOpts());
        const auto simpoint = run(kind, simpointOpts());
        ASSERT_TRUE(simpoint.ok) << cpu::renamerKindName(kind) << ": "
                                 << simpoint.error;
        ASSERT_GT(detailed.ipc, 0.0);
        const double relErr =
            std::abs(simpoint.ipc - detailed.ipc) / detailed.ipc;
        EXPECT_LE(relErr, epsilon())
            << cpu::renamerKindName(kind) << ": simpoint ipc "
            << simpoint.ipc << " vs detailed " << detailed.ipc;
    }
}

TEST(Accuracy, FunctionalSideAtLeastFiveTimesDetailedMips)
{
    setQuiet(true);
    // Deltas of the process-wide accumulator around sampled runs of
    // every architecture: the functional fast-forward engine must beat
    // the detailed core's host throughput by the contracted factor.
    const auto &host = stats::HostStats::global();
    const double simSec0 = host.simSeconds.value();
    const double simInsts0 = host.simInsts.value();
    const double funcSec0 = host.funcSeconds.value();
    const double funcInsts0 = host.funcInsts.value();

    for (cpu::RenamerKind kind : allArchs())
        ASSERT_TRUE(run(kind, sampledOpts()).ok);

    const double simSec = host.simSeconds.value() - simSec0;
    const double simInsts = host.simInsts.value() - simInsts0;
    const double funcSec = host.funcSeconds.value() - funcSec0;
    const double funcInsts = host.funcInsts.value() - funcInsts0;
    ASSERT_GT(simSec, 0.0);
    ASSERT_GT(funcSec, 0.0);
    ASSERT_GT(funcInsts, simInsts)
        << "sampling should fast-forward more than it simulates";
    const double simMips = simInsts / simSec / 1e6;
    const double funcMips = funcInsts / funcSec / 1e6;
    EXPECT_GE(funcMips, minSpeedup() * simMips)
        << "functional " << funcMips << " MIPS vs detailed " << simMips
        << " MIPS (need " << minSpeedup() << "x)";
}

namespace {

/** The golden sampled sweep: every architecture, fixed seed policy. */
std::vector<analysis::SweepPoint>
goldenSampledPoints()
{
    std::vector<analysis::SweepPoint> points;
    for (cpu::RenamerKind kind : allArchs())
        points.push_back(analysis::makePoint("crafty", kind,
                                             regsFor(kind),
                                             sampledOpts()));
    return points;
}

std::vector<analysis::Measurement>
runGoldenSampledSweep(unsigned jobs = 0, bool isolate = false)
{
    analysis::SweepConfig config;
    config.jobs = jobs;
    config.cacheDir.clear();
    analysis::SweepRunner runner(config);
    analysis::RobustConfig robust = runner.robust();
    robust.isolate = isolate;
    runner.setRobust(robust);
    return runner.run(goldenSampledPoints());
}

} // namespace

TEST(Accuracy, GoldenSampledNumbers)
{
    setQuiet(true);
    const auto points = goldenSampledPoints();
    const auto results = runGoldenSampledSweep();
    ASSERT_EQ(results.size(), points.size());

    if (const char *update = std::getenv("VCA_UPDATE_GOLDEN");
        update && *update) {
        std::ofstream os(goldenPath());
        ASSERT_TRUE(os) << "cannot write " << goldenPath();
        trace::JsonWriter w(os);
        w.beginObject();
        w.key("version").string(analysis::kSimVersionTag);
        w.key("points").beginArray();
        for (size_t i = 0; i < points.size(); ++i) {
            w.beginObject();
            w.key("arch").string(cpu::renamerKindName(points[i].kind));
            w.key("regs").number(std::uint64_t(points[i].physRegs));
            w.key("ok").boolean(results[i].ok);
            w.key("cycles").number(std::uint64_t(results[i].cycles));
            w.key("insts").number(std::uint64_t(results[i].insts));
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << '\n';
        GTEST_LOG_(INFO) << "updated " << goldenPath();
        return;
    }

    std::ifstream is(goldenPath());
    ASSERT_TRUE(is) << goldenPath()
                    << " missing - run VCA_UPDATE_GOLDEN=1 ctest -L "
                       "accuracy and commit the result";
    std::ostringstream buf;
    buf << is.rdbuf();
    const trace::JsonValue doc = trace::JsonValue::parse(buf.str());
    ASSERT_EQ(doc.find("version")->asString(), analysis::kSimVersionTag)
        << "golden file from a different simulator version - refresh "
           "with VCA_UPDATE_GOLDEN=1";
    const trace::JsonValue *golden = doc.find("points");
    ASSERT_TRUE(golden && golden->isArray());
    ASSERT_EQ(golden->size(), points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        const trace::JsonValue &g = golden->at(i);
        const std::string label = cpu::renamerKindName(points[i].kind);
        EXPECT_EQ(g.find("arch")->asString(), label);
        EXPECT_EQ(g.find("ok")->asBool(), results[i].ok) << label;
        EXPECT_EQ(static_cast<std::uint64_t>(
                      g.find("cycles")->asNumber()),
                  static_cast<std::uint64_t>(results[i].cycles))
            << label;
        EXPECT_EQ(static_cast<std::uint64_t>(
                      g.find("insts")->asNumber()),
                  static_cast<std::uint64_t>(results[i].insts))
            << label;
    }
}

TEST(Accuracy, SampledDeterministicAcrossJobCounts)
{
    // VCA_JOBS must stay a pure performance knob in sampled mode too.
    setQuiet(true);
    const auto serial = runGoldenSampledSweep(1);
    const auto parallel = runGoldenSampledSweep(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(analysis::measurementToJson(serial[i]),
                  analysis::measurementToJson(parallel[i]))
            << "point " << i << " differs between 1 and 8 workers";
        EXPECT_TRUE(serial[i] == parallel[i]);
        // The confidence interval is a pure function of the sample
        // set, so it must be bit-identical across worker counts.
        EXPECT_TRUE(serial[i].sampling == parallel[i].sampling)
            << "point " << i << " CI differs between 1 and 8 workers";
        EXPECT_GT(serial[i].sampling.samples, 0u);
        EXPECT_EQ(serial[i].sampling.ciLoCpi,
                  parallel[i].sampling.ciLoCpi);
        EXPECT_EQ(serial[i].sampling.ciHiCpi,
                  parallel[i].sampling.ciHiCpi);
    }
}

TEST(Accuracy, SampledDeterministicUnderIsolation)
{
    // Forked-worker isolation serializes sampled measurements (and the
    // new functional host-time deltas) through the result file; the
    // numbers must survive the round trip bit-identically.
    setQuiet(true);
    const auto inProcess = runGoldenSampledSweep(2, false);
    const auto isolated = runGoldenSampledSweep(2, true);
    ASSERT_EQ(inProcess.size(), isolated.size());
    for (size_t i = 0; i < inProcess.size(); ++i) {
        EXPECT_EQ(analysis::measurementToJson(inProcess[i]),
                  analysis::measurementToJson(isolated[i]))
            << "point " << i << " differs under --isolate";
        EXPECT_TRUE(inProcess[i] == isolated[i]);
        // The sampling summary (CI included) and the per-sample
        // records must survive the worker result-file round trip.
        EXPECT_TRUE(inProcess[i].sampling == isolated[i].sampling)
            << "point " << i << " CI differs under --isolate";
        EXPECT_EQ(inProcess[i].sampleRecords.size(),
                  isolated[i].sampleRecords.size());
        EXPECT_EQ(inProcess[i].sampling.ciLoCpi,
                  isolated[i].sampling.ciLoCpi);
        EXPECT_EQ(inProcess[i].sampling.ciHiCpi,
                  isolated[i].sampling.ciHiCpi);
    }
}

TEST(Accuracy, SampledModeRejectsTelemetry)
{
    // Guard the mode/observer contract at the harness level (vca-sim
    // additionally rejects the flag combination with exit code 2).
    setQuiet(true);
    analysis::RunOptions opts = sampledOpts();
    opts.regTelemetry = true;
    const auto m = run(cpu::RenamerKind::Vca, opts);
    EXPECT_FALSE(m.ok);
    EXPECT_NE(m.error.find("detailed"), std::string::npos);
}
