/**
 * @file
 * Functional VRISC-64 simulator.
 *
 * Executes a Program architecturally (no timing) under either ABI. Used
 * for: (1) measuring complete-program dynamic path lengths (paper
 * Table 2 and the execution-time methodology of Section 3.1), (2) as
 * the golden model the timing simulator's commit stream is checked
 * against in the integration tests.
 *
 * Windowed-ABI register state is held at its memory-mapped logical
 * register addresses (exactly the VCA model); a direct pointer to the
 * current window frame is cached for speed since frames are aligned and
 * never straddle pages.
 */

#ifndef VCA_FUNC_FUNC_SIM_HH
#define VCA_FUNC_FUNC_SIM_HH

#include <cstdint>
#include <limits>
#include <memory>

#include "isa/bb_cache.hh"
#include "isa/program.hh"
#include "isa/registers.hh"
#include "mem/sparse_memory.hh"
#include "sim/types.hh"

namespace vca::func {

/** Aggregate execution statistics. */
struct FuncSimStats
{
    InstCount insts = 0;
    InstCount loads = 0;
    InstCount stores = 0;
    InstCount calls = 0;
    InstCount condBranches = 0;
    InstCount takenCondBranches = 0;
    unsigned maxCallDepth = 0;
};

/** Record of the most recently executed instruction (for co-sim). */
struct StepRecord
{
    Addr pc = 0;
    Addr npc = 0;
    bool hasDest = false;
    isa::ArchReg dest{};
    std::uint64_t destValue = 0;
    bool isMem = false;
    Addr effAddr = 0;
    bool halted = false;
};

/**
 * Complete architectural register state at an instruction boundary, as
 * seen from the current register window (windowed ABI) or the flat
 * register file (conventional ABI). Together with the memory image
 * this is everything the detailed core needs to switch in.
 */
struct ArchState
{
    Addr pc = 0;
    bool windowedAbi = false;
    unsigned callDepth = 0;
    Addr windowBase = 0; ///< wbp at capture (windowed ABI only)
    std::uint64_t intRegs[isa::numIntRegs] = {};
    std::uint64_t fpRegs[isa::numFloatRegs] = {}; ///< raw IEEE bits
};

/** Load a program's data segments into a memory image. */
void loadProgramData(const isa::Program &prog, mem::SparseMemory &memory);

class FuncSim
{
  public:
    /**
     * @param prog   finalized program (determines the ABI)
     * @param memory architectural memory (caller may pre-share/populate;
     *               data segments are loaded by the constructor)
     */
    FuncSim(const isa::Program &prog, mem::SparseMemory &memory);

    /** Execute one instruction; fills rec. Returns false once halted. */
    bool step(StepRecord &rec);

    /**
     * Run until HALT or the instruction limit.
     * @return statistics for the executed span
     */
    FuncSimStats run(InstCount maxInsts =
                         std::numeric_limits<InstCount>::max());

    /**
     * Run until HALT or the instruction limit, dispatching once per
     * basic block through the lazily built decoded-BB cache instead of
     * once per instruction, and skipping per-step record upkeep.
     * Architecturally identical to run(); just faster.
     */
    FuncSimStats runFast(InstCount maxInsts =
                             std::numeric_limits<InstCount>::max());

    /** Snapshot of the architectural register state (switch-in). */
    ArchState captureState() const;

    /** Current call depth (calls minus returns, floored at 0). */
    unsigned callDepth() const { return depth_; }

    bool halted() const { return halted_; }
    Addr pc() const { return pc_; }
    const FuncSimStats &stats() const { return stats_; }

    /** Architectural register read (for tests). */
    std::uint64_t readIntReg(RegIndex idx) const;
    double readFloatReg(RegIndex idx) const;

    /** Architectural register write (for tests / setup). */
    void writeIntReg(RegIndex idx, std::uint64_t value);

    /** Current window base pointer (windowed ABI only). */
    Addr windowBase() const { return wbp_; }

  private:
    std::uint64_t readReg(isa::RegClass cls, RegIndex idx) const;
    void writeReg(isa::RegClass cls, RegIndex idx, std::uint64_t value);
    void refreshFrameCache();

    /**
     * Execute the instruction at pc_ (si must be prog_.inst(pc_)).
     * Record=false skips all StepRecord upkeep for the fast path.
     * Returns false once halted.
     */
    template <bool Record>
    bool execInst(const isa::StaticInst &si, StepRecord *rec);

    const isa::Program &prog_;
    mem::SparseMemory &mem_;
    Addr pc_ = 0;
    bool halted_ = false;
    unsigned depth_ = 0;

    // Non-windowed (and global) register state.
    std::uint64_t intRegs_[isa::numIntRegs] = {};
    std::uint64_t fpRegs_[isa::numFloatRegs] = {};

    // Windowed state.
    bool windowed_ = false;
    Addr wbp_ = 0;

    // Decoded-BB dispatch cache, built on first runFast().
    std::unique_ptr<isa::BbCache> bbCache_;

    FuncSimStats stats_;
};

} // namespace vca::func

#endif // VCA_FUNC_FUNC_SIM_HH
