/**
 * @file
 * The VCA tagged, set-associative rename table (paper §2.1.1, §2.2.1).
 *
 * Each entry maps one logical-register memory address to its newest
 * (front) and committed physical registers. The paper describes the
 * front-end table and the P4-style commit table as separate structures
 * with identical geometry; we model them as one structure with two
 * physical-register fields, which is functionally equivalent (see
 * DESIGN.md). The index is taken from the low address bits; the stored
 * tag is {RSID, remaining offset bits}, but for simulation we keep the
 * full address and account the tag width separately.
 *
 * An "unbounded" mode (sets == 0) backs the idealized register-window
 * model: no conflict or capacity constraints.
 */

#ifndef VCA_CORE_RENAME_TABLE_HH
#define VCA_CORE_RENAME_TABLE_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace vca::core {

struct TableEntry
{
    bool valid = false;
    Addr addr = invalidAddr;
    int rsid = -1;
    PhysRegIndex front = invalidPhysReg;
    PhysRegIndex commit = invalidPhysReg;
    /**
     * Renamed-but-uncommitted producers targeting this logical
     * register. The committed copy's PhysState::overwriters mirrors
     * this count so replacement can deprioritize registers that are
     * about to be overwritten (paper 2.1.2).
     */
    std::uint32_t specProducers = 0;
    std::uint64_t lru = 0;
};

class RenameTable
{
  public:
    /** sets == 0 selects the unbounded (ideal) table. */
    RenameTable(unsigned sets, unsigned assoc)
        : sets_(sets), assoc_(assoc)
    {
        if (sets_ > 0)
            entries_.resize(size_t(sets_) * assoc_);
    }

    bool unbounded() const { return sets_ == 0; }
    unsigned sets() const { return sets_; }
    unsigned assoc() const { return assoc_; }

    /** Set index for an address (low register-slot bits). */
    size_t
    setIndex(Addr addr) const
    {
        // sets_ is a power of two in every paper configuration; fall
        // back to modulo only for odd experimental geometries.
        const size_t slot = static_cast<size_t>(addr >> 3);
        return (sets_ & (sets_ - 1)) == 0 ? (slot & (sets_ - 1))
                                          : (slot % sets_);
    }

    /** Find the entry mapping addr, or nullptr. */
    TableEntry *
    lookup(Addr addr)
    {
        if (unbounded()) {
            auto it = map_.find(addr);
            if (it == map_.end() || !it->second.valid)
                return nullptr;
            it->second.lru = ++stamp_;
            return &it->second;
        }
        TableEntry *ways = &entries_[setIndex(addr) * assoc_];
        for (unsigned w = 0; w < assoc_; ++w) {
            if (ways[w].valid && ways[w].addr == addr) {
                ways[w].lru = ++stamp_;
                return &ways[w];
            }
        }
        return nullptr;
    }

    /** A free (invalid) way in addr's set, or nullptr. */
    TableEntry *
    freeWay(Addr addr)
    {
        if (unbounded())
            return &map_[addr]; // creates an invalid entry in place
        TableEntry *ways = &entries_[setIndex(addr) * assoc_];
        for (unsigned w = 0; w < assoc_; ++w) {
            if (!ways[w].valid)
                return &ways[w];
        }
        return nullptr;
    }

    /**
     * All valid ways in addr's set ordered by ascending LRU stamp
     * (replacement candidates; caller filters by evictability).
     */
    std::vector<TableEntry *>
    waysByLru(Addr addr)
    {
        std::vector<TableEntry *> out;
        if (unbounded())
            return out;
        TableEntry *ways = &entries_[setIndex(addr) * assoc_];
        for (unsigned w = 0; w < assoc_; ++w) {
            if (ways[w].valid)
                out.push_back(&ways[w]);
        }
        std::sort(out.begin(), out.end(),
                  [](const TableEntry *a, const TableEntry *b) {
                      return a->lru < b->lru;
                  });
        return out;
    }

    void
    install(TableEntry *entry, Addr addr, int rsid)
    {
        entry->valid = true;
        entry->addr = addr;
        entry->rsid = rsid;
        entry->front = invalidPhysReg;
        entry->commit = invalidPhysReg;
        entry->lru = ++stamp_;
    }

    void
    invalidate(TableEntry *entry)
    {
        if (unbounded()) {
            map_.erase(entry->addr);
            return;
        }
        *entry = TableEntry{};
    }

    /** Visit every valid entry (for RSID flushes and validation). */
    template <typename Fn>
    void
    forEach(Fn fn)
    {
        if (unbounded()) {
            for (auto &[addr, e] : map_) {
                if (e.valid)
                    fn(e);
            }
            return;
        }
        for (TableEntry &e : entries_) {
            if (e.valid)
                fn(e);
        }
    }

    /** Number of valid entries (stats / tests). */
    size_t
    validCount() const
    {
        size_t n = 0;
        for (const TableEntry &e : entries_)
            n += e.valid ? 1 : 0;
        if (unbounded()) {
            for (const auto &[addr, e] : map_)
                n += e.valid ? 1 : 0;
        }
        return n;
    }

  private:
    unsigned sets_;
    unsigned assoc_;
    std::vector<TableEntry> entries_;
    std::unordered_map<Addr, TableEntry> map_; ///< unbounded mode
    std::uint64_t stamp_ = 0;
};

} // namespace vca::core

#endif // VCA_CORE_RENAME_TABLE_HH
