/**
 * @file
 * Figure 5 reproduction: data-cache accesses for the register-window
 * study, normalized to the baseline with 256 physical registers.
 *
 * Expected shape (paper Section 4.1):
 *  - VCA and ideal cut data-cache accesses by roughly 20% at 256
 *    registers (the windowed binary eliminates explicit save/restore
 *    loads and stores);
 *  - the conventional window machine's traffic explodes as the file
 *    shrinks (whole-window saves/restores, dead registers included),
 *    while VCA's grows slowly (single-register spills and fills).
 */

#include "bench_common.hh"

using namespace vca;
using namespace vca::bench;

int
main()
{
    setQuiet(true);
    const std::vector<unsigned> sizes = {64, 128, 192, 256};
    const auto series =
        regWindowSweep(sizes, defaultOptions(), /*metricIsDcache=*/true);
    printSeries("Figure 5: Register window data cache accesses "
                "(normalized to baseline @ 256)",
                "norm. dcache accesses", sizes, series);
    printCycleAccounting(regWindowArchs(), 192, defaultOptions());
    return finishBench();
}
