/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "stats/statistics.hh"
#include "trace/json.hh"
#include "trace/stats_json.hh"

namespace {

using namespace vca::stats;

TEST(Stats, ScalarAccumulates)
{
    StatGroup root("root");
    Scalar s(&root, "count", "a counter");
    ++s;
    s += 4;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageMean)
{
    StatGroup root("root");
    Average a(&root, "avg", "an average");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    a.sample(6);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, DistributionBuckets)
{
    StatGroup root("root");
    Distribution d(&root, "dist", "a histogram", 0, 10, 5);
    d.sample(0.5);
    d.sample(9.9);
    d.sample(-1);   // underflow
    d.sample(100);  // overflow
    EXPECT_EQ(d.totalSamples(), 4u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(4), 1u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_DOUBLE_EQ(d.minSampled(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxSampled(), 100.0);
}

TEST(Stats, DistributionRejectsBadConfig)
{
    StatGroup root("root");
    EXPECT_THROW(Distribution(&root, "bad", "", 10, 0, 5),
                 vca::PanicError);
    EXPECT_THROW(Distribution(&root, "bad2", "", 0, 10, 0),
                 vca::PanicError);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup root("root");
    Scalar a(&root, "a", "");
    Scalar b(&root, "b", "");
    Formula f(&root, "ratio", "a/b", [&] {
        return b.value() ? a.value() / b.value() : 0.0;
    });
    a += 10;
    b += 4;
    EXPECT_DOUBLE_EQ(f.value(), 2.5);
    a += 10;
    EXPECT_DOUBLE_EQ(f.value(), 5.0);
}

TEST(Stats, GroupDumpContainsDottedPaths)
{
    StatGroup root("cpu");
    StatGroup child("dcache", &root);
    Scalar s(&child, "accesses", "dcache accesses");
    s += 7;
    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("cpu.dcache.accesses"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
}

TEST(Stats, GroupResetRecurses)
{
    StatGroup root("root");
    StatGroup child("c", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetStats();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, ResetAuditRestoresConstructedState)
{
    // Audit that a recursive resetStats() returns EVERY stat kind to
    // its just-constructed observable state. A straggler field that
    // survives reset (e.g. a histogram's min/max watermark) would leak
    // warm-up samples into the measured interval.
    StatGroup root("root");
    StatGroup child("child", &root);
    Scalar s(&root, "s", "");
    Average a(&child, "a", "");
    Distribution d(&child, "d", "", 0, 8, 4);
    Formula f(&root, "f", "", [&] { return s.value() + 7.0; });

    s += 3;
    a.sample(2);
    a.sample(10);
    d.sample(-5);  // underflow + min watermark
    d.sample(99);  // overflow + max watermark
    d.sample(3);
    EXPECT_DOUBLE_EQ(f.value(), 10.0);

    root.resetStats();

    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);

    EXPECT_EQ(d.totalSamples(), 0u);
    EXPECT_EQ(d.underflows(), 0u);
    EXPECT_EQ(d.overflows(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.minSampled(), 0.0);
    EXPECT_DOUBLE_EQ(d.maxSampled(), 0.0);
    for (unsigned i = 0; i < d.numBuckets(); ++i)
        EXPECT_EQ(d.bucketCount(i), 0u);
    // Bucket geometry is configuration, not data: reset keeps it.
    EXPECT_DOUBLE_EQ(d.bucketMin(), 0.0);
    EXPECT_DOUBLE_EQ(d.bucketMax(), 8.0);
    EXPECT_EQ(d.numBuckets(), 4u);

    // Formulas are derived, so reset leaves the function in place and
    // the value tracks its (now reset) inputs.
    EXPECT_DOUBLE_EQ(f.value(), 7.0);

    // The first sample after a reset re-seeds the watermarks instead
    // of min/maxing against stale zeros.
    d.sample(5);
    EXPECT_DOUBLE_EQ(d.minSampled(), 5.0);
    EXPECT_DOUBLE_EQ(d.maxSampled(), 5.0);
    EXPECT_EQ(d.bucketCount(2), 1u);
}

TEST(Stats, FindLocatesStat)
{
    StatGroup root("root");
    Scalar a(&root, "alpha", "");
    EXPECT_EQ(root.find("alpha"), &a);
    EXPECT_EQ(root.find("beta"), nullptr);
}

TEST(Stats, OrphanStatPanics)
{
    EXPECT_THROW(Scalar(nullptr, "x", ""), vca::PanicError);
}

TEST(Stats, FindPathResolvesNestedStats)
{
    StatGroup cpu("cpu");
    StatGroup mem("mem", &cpu);
    StatGroup dcache("dcache", &mem);
    Scalar accesses(&dcache, "accesses", "");
    Scalar cycles(&cpu, "cycles", "");
    accesses += 11;

    // Dump-style paths resolve with or without the root's own name.
    EXPECT_EQ(cpu.findPath("cpu.mem.dcache.accesses"), &accesses);
    EXPECT_EQ(cpu.findPath("mem.dcache.accesses"), &accesses);
    EXPECT_EQ(cpu.findPath("cycles"), &cycles);
    EXPECT_EQ(cpu.findPath("mem.icache.accesses"), nullptr);
    EXPECT_EQ(cpu.findPath("mem.dcache.nope"), nullptr);

    EXPECT_EQ(cpu.findGroup("mem.dcache"), &dcache);
    EXPECT_EQ(cpu.childGroup("mem"), &mem);
    EXPECT_EQ(cpu.childGroup("dcache"), nullptr);
}

/** Counts visitor callbacks, proving full-tree double dispatch. */
class CountingVisitor : public StatVisitor
{
  public:
    void beginGroup(const StatGroup &) override { ++groups; }
    void endGroup(const StatGroup &) override { ++groupEnds; }
    void visitScalar(const Scalar &) override { ++scalars; }
    void visitAverage(const Average &) override { ++averages; }
    void visitDistribution(const Distribution &) override { ++dists; }
    void visitFormula(const Formula &) override { ++formulas; }

    int groups = 0, groupEnds = 0;
    int scalars = 0, averages = 0, dists = 0, formulas = 0;
};

TEST(Stats, VisitWalksWholeTree)
{
    StatGroup root("root");
    StatGroup child("child", &root);
    Scalar s1(&root, "s1", "");
    Scalar s2(&child, "s2", "");
    Average a(&child, "a", "");
    Distribution d(&child, "d", "", 0, 10, 5);
    Formula f(&root, "f", "", [] { return 1.0; });

    CountingVisitor v;
    root.visit(v);
    EXPECT_EQ(v.groups, 2);
    EXPECT_EQ(v.groupEnds, 2);
    EXPECT_EQ(v.scalars, 2);
    EXPECT_EQ(v.averages, 1);
    EXPECT_EQ(v.dists, 1);
    EXPECT_EQ(v.formulas, 1);
}

TEST(Stats, JsonExportRoundTrips)
{
    StatGroup cpu("cpu");
    StatGroup dcache("dcache", &cpu);
    Scalar cycles(&cpu, "cycles", "");
    Scalar accesses(&dcache, "accesses", "");
    Average occ(&cpu, "occ", "");
    Distribution dist(&cpu, "dist", "", 0, 10, 5);
    Formula ipc(&cpu, "ipc", "", [&] { return 1.5; });
    cycles += 1000;
    accesses += 42;
    occ.sample(3);
    occ.sample(5);
    dist.sample(1);
    dist.sample(7);
    dist.sample(-4); // underflow

    const std::string text = vca::trace::dumpJsonString(cpu);
    const auto doc = vca::trace::JsonValue::parse(text);

    const auto *cyclesV = doc.findPath("cpu.cycles");
    ASSERT_NE(cyclesV, nullptr);
    EXPECT_DOUBLE_EQ(cyclesV->asNumber(), 1000.0);

    const auto *accV = doc.findPath("cpu.dcache.accesses");
    ASSERT_NE(accV, nullptr);
    EXPECT_DOUBLE_EQ(accV->asNumber(), 42.0);

    const auto *ipcV = doc.findPath("cpu.ipc");
    ASSERT_NE(ipcV, nullptr);
    EXPECT_DOUBLE_EQ(ipcV->asNumber(), 1.5);

    const auto *occV = doc.findPath("cpu.occ");
    ASSERT_NE(occV, nullptr);
    EXPECT_DOUBLE_EQ(occV->find("mean")->asNumber(), 4.0);
    EXPECT_DOUBLE_EQ(occV->find("count")->asNumber(), 2.0);

    const auto *distV = doc.findPath("cpu.dist");
    ASSERT_NE(distV, nullptr);
    EXPECT_DOUBLE_EQ(distV->find("samples")->asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(distV->find("underflow")->asNumber(), 1.0);
    const auto *buckets = distV->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_TRUE(buckets->isArray());
    // Sparse export: only the two occupied buckets appear.
    ASSERT_EQ(buckets->size(), 2u);
    double total = 0;
    for (size_t i = 0; i < buckets->size(); ++i)
        total += buckets->at(i).find("count")->asNumber();
    EXPECT_DOUBLE_EQ(total, 2.0);
}

TEST(Stats, JsonParserRejectsMalformedInput)
{
    EXPECT_THROW(vca::trace::JsonValue::parse("{\"a\": }"),
                 vca::FatalError);
    EXPECT_THROW(vca::trace::JsonValue::parse("{\"a\": 1} trailing"),
                 vca::FatalError);
    EXPECT_THROW(vca::trace::JsonValue::parse(""), vca::FatalError);
}

TEST(Stats, JsonNumberFormatting)
{
    EXPECT_EQ(vca::trace::jsonNumber(5.0), "5");
    EXPECT_EQ(vca::trace::jsonNumber(0.25), "0.25");
    EXPECT_EQ(vca::trace::jsonNumber(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
}

} // namespace
