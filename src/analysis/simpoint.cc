#include "analysis/simpoint.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "func/func_sim.hh"
#include "mem/sparse_memory.hh"
#include "sim/logging.hh"

namespace vca::analysis {

std::vector<Bbv>
collectBbvs(const isa::Program &prog, InstCount intervalInsts,
            unsigned maxIntervals)
{
    if (intervalInsts == 0)
        fatal("collectBbvs: interval length must be positive");

    mem::SparseMemory memory;
    func::FuncSim sim(prog, memory);

    std::vector<Bbv> bbvs;
    Bbv current;
    InstCount inInterval = 0;
    Addr blockLeader = prog.entry;
    InstCount blockLen = 0;

    func::StepRecord rec;
    while (sim.step(rec)) {
        ++blockLen;
        ++inInterval;
        const bool endsBlock = prog.inst(rec.pc).isControl() ||
                               rec.npc != rec.pc + 1;
        if (endsBlock) {
            current[blockLeader] += blockLen;
            blockLeader = rec.npc;
            blockLen = 0;
        }
        if (inInterval >= intervalInsts) {
            if (blockLen) {
                current[blockLeader] += blockLen;
                blockLen = 0;
                blockLeader = rec.npc;
            }
            bbvs.push_back(std::move(current));
            current.clear();
            inInterval = 0;
            if (maxIntervals && bbvs.size() >= maxIntervals)
                return bbvs;
        }
    }
    if (blockLen)
        current[blockLeader] += blockLen;
    if (!current.empty())
        bbvs.push_back(std::move(current));
    return bbvs;
}

Matrix
bbvsToMatrix(const std::vector<Bbv> &bbvs)
{
    std::set<Addr> leaders;
    for (const Bbv &b : bbvs) {
        for (const auto &[pc, count] : b)
            leaders.insert(pc);
    }
    std::vector<Addr> order(leaders.begin(), leaders.end());

    Matrix m(bbvs.size(), std::vector<double>(order.size(), 0.0));
    for (size_t i = 0; i < bbvs.size(); ++i) {
        double total = 0;
        for (const auto &[pc, count] : bbvs[i])
            total += static_cast<double>(count);
        if (total <= 0)
            continue;
        for (size_t j = 0; j < order.size(); ++j) {
            auto it = bbvs[i].find(order[j]);
            if (it != bbvs[i].end())
                m[i][j] = static_cast<double>(it->second) / total;
        }
    }
    return m;
}

namespace {

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0;
    for (size_t i = 0; i < a.size(); ++i)
        d += (a[i] - b[i]) * (a[i] - b[i]);
    return d;
}

} // namespace

KMeansResult
kmeans(const Matrix &points, unsigned k, unsigned iterations)
{
    KMeansResult res;
    const size_t n = points.size();
    if (n == 0)
        return res;
    k = std::max(1u, std::min<unsigned>(k, n));

    // Deterministic farthest-point initialization.
    std::vector<size_t> seeds = {0};
    while (seeds.size() < k) {
        size_t best = 0;
        double bestDist = -1;
        for (size_t i = 0; i < n; ++i) {
            double nearest = std::numeric_limits<double>::max();
            for (size_t s : seeds)
                nearest = std::min(nearest, sqDist(points[i], points[s]));
            if (nearest > bestDist) {
                bestDist = nearest;
                best = i;
            }
        }
        seeds.push_back(best);
    }
    res.centroids.clear();
    for (size_t s : seeds)
        res.centroids.push_back(points[s]);

    res.assign.assign(n, 0);
    for (unsigned iter = 0; iter < iterations; ++iter) {
        bool changed = false;
        for (size_t i = 0; i < n; ++i) {
            unsigned best = 0;
            double bestDist = std::numeric_limits<double>::max();
            for (unsigned c = 0; c < k; ++c) {
                const double d = sqDist(points[i], res.centroids[c]);
                if (d < bestDist) {
                    bestDist = d;
                    best = c;
                }
            }
            if (res.assign[i] != best) {
                res.assign[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        const size_t dims = points[0].size();
        Matrix sums(k, std::vector<double>(dims, 0.0));
        std::vector<unsigned> counts(k, 0);
        for (size_t i = 0; i < n; ++i) {
            for (size_t d = 0; d < dims; ++d)
                sums[res.assign[i]][d] += points[i][d];
            ++counts[res.assign[i]];
        }
        for (unsigned c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue; // keep the old centroid for empty clusters
            for (size_t d = 0; d < dims; ++d)
                sums[c][d] /= counts[c];
            res.centroids[c] = sums[c];
        }
        if (!changed)
            break;
    }

    res.distortion = 0;
    for (size_t i = 0; i < n; ++i)
        res.distortion += sqDist(points[i], res.centroids[res.assign[i]]);
    return res;
}

SimPointResult
pickSimPoint(const isa::Program &prog, InstCount intervalInsts,
             unsigned maxK, unsigned maxIntervals)
{
    const auto bbvs = collectBbvs(prog, intervalInsts, maxIntervals);
    SimPointResult result;
    if (bbvs.empty())
        return result;
    if (bbvs.size() == 1) {
        result.phaseOf = {0};
        result.phaseRep = {0};
        result.phaseWeight = {1.0};
        return result;
    }

    // Project (SimPoint uses random projection; centered PCA serves
    // the same dimensionality purpose deterministically without
    // amplifying noise blocks the way z-scoring would).
    const Matrix projected = pcaProjectCentered(bbvsToMatrix(bbvs),
                                                0.95);
    const size_t n = projected.size();

    // Score k by a BIC-like penalized distortion.
    double bestScore = std::numeric_limits<double>::max();
    KMeansResult best;
    unsigned bestK = 1;
    const double dims = static_cast<double>(projected[0].size());
    for (unsigned k = 1; k <= std::min<unsigned>(maxK, n); ++k) {
        KMeansResult r = kmeans(projected, k);
        const double penalty =
            0.5 * k * dims * std::log(static_cast<double>(n));
        const double score =
            static_cast<double>(n) *
                std::log(r.distortion / n + 1e-12) + penalty;
        if (score < bestScore) {
            bestScore = score;
            best = std::move(r);
            bestK = k;
        }
    }

    // Largest cluster, member nearest its centroid.
    std::vector<unsigned> sizes(bestK, 0);
    for (unsigned a : best.assign)
        ++sizes[a];
    const unsigned largest = static_cast<unsigned>(
        std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

    size_t pick = 0;
    double pickDist = std::numeric_limits<double>::max();
    for (size_t i = 0; i < n; ++i) {
        if (best.assign[i] != largest)
            continue;
        const double d = sqDist(projected[i], best.centroids[largest]);
        if (d < pickDist) {
            pickDist = d;
            pick = i;
        }
    }

    result.intervalIndex = pick;
    result.numPhases = bestK;
    result.phaseOf = best.assign;
    result.largestPhaseWeight =
        static_cast<double>(sizes[largest]) / static_cast<double>(n);

    // Per-phase representatives, ordered by interval so a caller can
    // visit them in one forward pass. Candidates are restricted to the
    // later half of each phase's occurrences: BBVs cannot see warm-up
    // state, so a phase's earliest occurrences look identical to its
    // steady ones while measuring under far less accumulated
    // microarchitectural history. Among the later half we still take
    // the member nearest the centroid.
    for (unsigned c = 0; c < bestK; ++c) {
        if (sizes[c] == 0)
            continue;
        std::vector<size_t> members;
        for (size_t i = 0; i < n; ++i) {
            if (best.assign[i] == c)
                members.push_back(i);
        }
        size_t rep = members.back();
        double repDist = std::numeric_limits<double>::max();
        for (size_t m = members.size() / 2; m < members.size(); ++m) {
            const size_t i = members[m];
            const double d = sqDist(projected[i], best.centroids[c]);
            if (d < repDist) {
                repDist = d;
                rep = i;
            }
        }
        result.phaseRep.push_back(rep);
        result.phaseWeight.push_back(static_cast<double>(sizes[c]) /
                                     static_cast<double>(n));
    }
    std::vector<size_t> order(result.phaseRep.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return result.phaseRep[a] < result.phaseRep[b];
    });
    std::vector<size_t> reps;
    std::vector<double> weights;
    for (size_t i : order) {
        reps.push_back(result.phaseRep[i]);
        weights.push_back(result.phaseWeight[i]);
    }
    result.phaseRep = std::move(reps);
    result.phaseWeight = std::move(weights);
    return result;
}

} // namespace vca::analysis
