#include "bench_common.hh"

#include <fstream>

#include "trace/json.hh"

namespace vca::bench {

using analysis::Measurement;
using cpu::RenamerKind;

std::map<std::string, std::vector<double>>
regWindowSweep(const std::vector<unsigned> &physRegs,
               const analysis::RunOptions &opts, bool metricIsDcache,
               unsigned normalizePorts)
{
    const auto benches = wload::regWindowProfiles();

    // Reference: dual-port baseline with 256 physical registers.
    std::map<std::string, double> reference;
    {
        analysis::RunOptions refOpts = opts;
        refOpts.dcachePorts = normalizePorts;
        for (const auto &prof : benches) {
            const Measurement m = analysis::runBench(
                prof, RenamerKind::Baseline, 256, refOpts);
            if (!m.ok)
                fatal("reference run failed for %s", prof.name.c_str());
            reference[prof.name] = metricIsDcache
                ? analysis::totalDcacheAccesses(prof,
                                                RenamerKind::Baseline, m)
                : analysis::executionTime(prof, RenamerKind::Baseline, m);
        }
    }

    std::map<std::string, std::vector<double>> series;
    for (RenamerKind kind : regWindowArchs()) {
        std::vector<double> row;
        for (unsigned p : physRegs) {
            std::vector<double> normalized;
            bool operable = true;
            for (const auto &prof : benches) {
                const Measurement m =
                    analysis::runBench(prof, kind, p, opts);
                if (!m.ok) {
                    operable = false;
                    break;
                }
                const double value = metricIsDcache
                    ? analysis::totalDcacheAccesses(prof, kind, m)
                    : analysis::executionTime(prof, kind, m);
                normalized.push_back(value / reference[prof.name]);
            }
            row.push_back(operable ? analysis::mean(normalized) : -1.0);
        }
        series[archLabel(kind)] = std::move(row);
    }
    return series;
}

} // namespace vca::bench

namespace vca::bench {

void
writeSeriesCsv(const std::string &slug,
               const std::vector<unsigned> &physRegs,
               const std::map<std::string, std::vector<double>> &series)
{
    const char *dir = std::getenv("VCA_CSV_DIR");
    if (!dir || !*dir)
        return;
    const std::string path = std::string(dir) + "/" + slug + ".csv";
    std::ofstream os(path);
    if (!os) {
        warn("cannot write CSV to %s", path.c_str());
        return;
    }
    os << "phys_regs";
    for (const auto &[name, values] : series)
        os << "," << name;
    os << "\n";
    for (size_t i = 0; i < physRegs.size(); ++i) {
        os << physRegs[i];
        for (const auto &[name, values] : series) {
            os << ",";
            if (i < values.size() && values[i] >= 0)
                os << values[i];
        }
        os << "\n";
    }
    inform("wrote %s", path.c_str());
}

void
writeSeriesJson(const std::string &slug,
                const std::vector<unsigned> &physRegs,
                const std::map<std::string, std::vector<double>> &series)
{
    const char *dir = std::getenv("VCA_BENCH_JSON_DIR");
    if (!dir || !*dir)
        return;
    const std::string path =
        std::string(dir) + "/BENCH_" + slug + ".json";
    std::ofstream os(path);
    if (!os) {
        warn("cannot write JSON to %s", path.c_str());
        return;
    }
    trace::JsonWriter w(os);
    w.beginObject();
    w.key("bench").string(slug);
    w.key("phys_regs").beginArray();
    for (unsigned p : physRegs)
        w.number(std::uint64_t(p));
    w.endArray();
    w.key("series").beginObject();
    for (const auto &[name, values] : series) {
        w.key(name).beginArray();
        for (double v : values) {
            if (v < 0)
                w.null(); // configuration cannot operate
            else
                w.number(v);
        }
        w.endArray();
    }
    w.endObject();
    w.endObject();
    os << '\n';
    inform("wrote %s", path.c_str());
}

void
printCycleAccounting(const std::vector<cpu::RenamerKind> &archs,
                     unsigned physRegs,
                     const analysis::RunOptions &opts,
                     const std::string &benchName)
{
    std::printf("\n== Cycle accounting: %s @ %u phys regs ==\n",
                benchName.c_str(), physRegs);
    bool header = false;
    for (RenamerKind kind : archs) {
        const Measurement m = analysis::runBench(
            wload::profileByName(benchName), kind, physRegs, opts);
        if (!header && m.ok) {
            std::printf("%-12s", "arch");
            for (const auto &[name, frac] : m.cycleBreakdown)
                std::printf(" %10s", name.c_str());
            std::printf("   (%% of cycles)\n");
            header = true;
        }
        std::printf("%-12s", archLabel(kind));
        if (!m.ok) {
            std::printf(" %9s\n", "n/a");
            continue;
        }
        for (const auto &[name, frac] : m.cycleBreakdown)
            std::printf("     %5.1f%%", 100 * frac);
        std::printf("\n");
    }
}

analysis::WorkloadSelection
benchWorkloads()
{
    analysis::SelectionOptions sel;
    sel.numTwoThread =
        static_cast<unsigned>(envU64("VCA_WORKLOADS_2T", 8));
    sel.numFourThread =
        static_cast<unsigned>(envU64("VCA_WORKLOADS_4T", 6));
    sel.statInsts = envU64("VCA_SELECT_INSTS", 25'000);
    return analysis::selectWorkloads(sel);
}

const std::map<std::string, double> &
singleThreadReference(const analysis::RunOptions &opts)
{
    static std::map<std::string, double> refs;
    if (refs.empty()) {
        analysis::RunOptions refOpts = opts;
        refOpts.stopOnFirstThread = false;
        refOpts.numThreads = 1;
        for (const auto &prof : wload::spec2000Profiles()) {
            const auto m = analysis::runBench(
                prof, cpu::RenamerKind::Baseline, 256, refOpts);
            if (!m.ok)
                fatal("single-thread reference failed for %s",
                      prof.name.c_str());
            refs[prof.name] = analysis::executionTime(
                prof, cpu::RenamerKind::Baseline, m);
        }
    }
    return refs;
}

namespace {

analysis::Measurement
runSmtWorkload(const std::vector<std::string> &benches,
               cpu::RenamerKind kind, unsigned physRegs,
               bool windowedBinaries, const analysis::RunOptions &base)
{
    std::vector<const isa::Program *> programs;
    for (const std::string &name : benches) {
        programs.push_back(wload::cachedProgram(
            wload::profileByName(name), windowedBinaries));
    }
    analysis::RunOptions opts = base;
    opts.stopOnFirstThread = true;
    return analysis::runTiming(programs, kind, physRegs, opts);
}

} // namespace

double
weightedSpeedup(const std::vector<std::string> &benches,
                cpu::RenamerKind kind, unsigned physRegs,
                bool windowedBinaries,
                const analysis::RunOptions &baseOpts)
{
    const auto m = runSmtWorkload(benches, kind, physRegs,
                                  windowedBinaries, baseOpts);
    if (!m.ok)
        return -1.0;
    const auto &refs = singleThreadReference(baseOpts);

    double speedup = 0;
    for (size_t t = 0; t < benches.size(); ++t) {
        const auto &prof = wload::profileByName(benches[t]);
        const double smtExec = m.threadCpi[t] *
            static_cast<double>(
                analysis::pathLength(prof, windowedBinaries));
        if (smtExec <= 0)
            return -1.0;
        speedup += refs.at(benches[t]) / smtExec;
    }
    return speedup;
}

double
cacheAccessMetric(const std::vector<std::string> &benches,
                  cpu::RenamerKind kind, unsigned physRegs,
                  bool windowedBinaries,
                  const analysis::RunOptions &baseOpts)
{
    const auto m = runSmtWorkload(benches, kind, physRegs,
                                  windowedBinaries, baseOpts);
    if (!m.ok)
        return -1.0;
    double work = 0;
    for (size_t t = 0; t < benches.size(); ++t) {
        const auto &prof = wload::profileByName(benches[t]);
        work += static_cast<double>(m.threadInsts[t]) /
                static_cast<double>(
                    analysis::pathLength(prof, windowedBinaries));
    }
    return work > 0 ? m.dcacheAccesses / work : -1.0;
}

} // namespace vca::bench
