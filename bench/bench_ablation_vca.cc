/**
 * @file
 * Ablation benches for the VCA design choices DESIGN.md calls out:
 *
 *  - rename-table associativity (paper Section 2.1.1 argues 4-way-like
 *    behaviour is enough; Section 3 sizes 3/5/6 ways by thread count);
 *  - ASTQ depth (Section 2.2.2: "only four entries are required");
 *  - RSID translation-table size (Section 2.2.1);
 *  - branch recovery scheme: P4-style commit-table walk vs (infeasible
 *    in hardware, but a useful bound) instant checkpointing.
 *
 * Each sweep runs the call-heavy windowed benchmarks on VCA at 192
 * physical registers and reports execution-time impact plus the stall
 * counters that explain it.
 */

#include "bench_common.hh"

using namespace vca;
using namespace vca::bench;

namespace {

struct AblationResult
{
    double ipc = 0;
    double stalls = 0;
    double extra = 0;
};

double
counterValue(const analysis::Measurement &m, const char *name)
{
    for (const auto &[counter, value] : m.counters)
        if (counter == name)
            return value;
    return 0;
}

/**
 * Run the windowed call-heavy set on VCA with one configuration
 * deviation, as a single parallel (and disk-memoized) runner batch.
 */
AblationResult
runConfig(unsigned physRegs, const analysis::ParamOverrides &overrides)
{
    analysis::RunOptions opts = defaultOptions();
    opts.overrides = overrides;
    std::vector<analysis::SweepPoint> points;
    for (const auto &prof : wload::regWindowProfiles()) {
        analysis::SweepPoint point;
        point.benches = {prof.name};
        point.windowed = true;
        point.kind = cpu::RenamerKind::Vca;
        point.physRegs = physRegs;
        point.opts = opts;
        points.push_back(std::move(point));
    }
    const auto results = analysis::SweepRunner::global().run(points);

    double cycles = 0, insts = 0, stalls = 0, extra = 0;
    for (const auto &m : results) {
        if (!m.ok)
            fatal("ablation configuration cannot operate: %s",
                  m.error.c_str());
        cycles += static_cast<double>(m.cycles);
        insts += static_cast<double>(m.insts);
        stalls += counterValue(m, "stalls_table_conflict");
        extra += counterValue(m, "stalls_astq");
    }
    return {insts / cycles, stalls / insts * 1000, extra / insts * 1000};
}

} // namespace

int
main()
{
    setQuiet(true);

    std::printf("== Ablation: VCA rename-table associativity "
                "(192 phys regs, 64 sets) ==\n");
    std::printf("%6s %8s %16s\n", "assoc", "IPC", "conflicts/kinst");
    for (unsigned assoc : {1u, 2u, 3u, 4u, 6u, 8u}) {
        analysis::ParamOverrides ov;
        ov.vcaTableAssoc = assoc;
        const auto r = runConfig(192, ov);
        std::printf("%6u %8.3f %16.2f\n", assoc, r.ipc, r.stalls);
    }

    std::printf("\n== Ablation: ASTQ depth ==\n");
    std::printf("%6s %8s %16s\n", "depth", "IPC", "astq-stalls/kinst");
    for (unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
        analysis::ParamOverrides ov;
        ov.astqEntries = depth;
        const auto r = runConfig(192, ov);
        std::printf("%6u %8.3f %16.2f\n", depth, r.ipc, r.extra);
    }

    std::printf("\n== Ablation: RSID table entries ==\n");
    std::printf("%6s %8s\n", "rsids", "IPC");
    for (unsigned rsids : {2u, 4u, 8u, 16u, 32u}) {
        analysis::ParamOverrides ov;
        ov.rsidEntries = rsids;
        const auto r = runConfig(192, ov);
        std::printf("%6u %8.3f\n", rsids, r.ipc);
    }

    std::printf("\n== Ablation: misprediction recovery scheme ==\n");
    for (bool checkpoint : {false, true}) {
        analysis::ParamOverrides ov;
        ov.vcaCheckpointRecovery = checkpoint ? 1 : 0;
        const auto r = runConfig(192, ov);
        std::printf("%-24s IPC %8.3f\n",
                    checkpoint ? "checkpoint (idealized)"
                               : "commit-table walk (P4)",
                    r.ipc);
    }

    std::printf("\n== Extension: dead-value hints "
                "(paper future work, Secs. 5-6) ==\n");
    for (bool hints : {false, true}) {
        analysis::ParamOverrides ov;
        ov.vcaDeadValueHints = hints ? 1 : 0;
        // Small register file: spills matter.
        const auto r = runConfig(112, ov);
        std::printf("%-24s IPC %8.3f\n",
                    hints ? "hints on" : "hints off", r.ipc);
    }

    std::printf("\n== Ablation: rename ports ==\n");
    std::printf("%6s %8s\n", "ports", "IPC");
    for (unsigned ports : {4u, 6u, 8u, 12u}) {
        analysis::ParamOverrides ov;
        ov.vcaRenamePorts = ports;
        const auto r = runConfig(192, ov);
        std::printf("%6u %8.3f\n", ports, r.ipc);
    }
    printCycleAccounting({cpu::RenamerKind::Vca}, 192, defaultOptions());
    return finishBench();
}
