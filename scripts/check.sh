#!/usr/bin/env bash
# Full verification sweep: build and test the Release configuration and
# an AddressSanitizer/UBSan configuration.
#
# The Release configuration runs every ctest label (unit + golden +
# observability, including the slow determinism sweep). The sanitizer
# configuration runs only -L unit: the golden suite asserts exact cycle
# counts that are identical across configurations anyway, and
# simulating the sweep twice more under ASan adds minutes for no extra
# signal.
#
# A third configuration builds with -DVCA_NTELEMETRY=ON (every
# telemetry hook compiled out) and gates the host-MIPS overhead of the
# compiled-in-but-disabled telemetry against it via perf_compare.py.
#
# A final robustness section exercises the fault-tolerant sweep layer
# end to end: a chaos smoke (a vca-sim sweep under injected worker
# crashes, corrupt cache reads and failed cache writes must print the
# same bytes as a clean sweep) and an isolate-overhead gate (the
# robustness layer enabled but idle must not slow a warm cached sweep
# beyond CHECK_ROBUST_THRESHOLD).
#
# Usage: scripts/check.sh [extra ctest args...]
#   CHECK_JOBS=N            parallelism (default: nproc)
#   CHECK_BUILD_DIR=dir     build-tree root (default: build-check)
#   CHECK_TELEM_GATE=0      skip the telemetry-overhead gate
#   CHECK_TELEM_THRESHOLD=F allowed fractional host-MIPS cost of the
#                           disabled telemetry hooks (default 0.05:
#                           the design target is 2%, the gate leaves
#                           headroom for host noise)
#   CHECK_ROBUST_GATE=0     skip the chaos smoke + isolate gate
#   CHECK_ROBUST_THRESHOLD=F allowed fractional wall-clock cost of the
#                           enabled-but-idle robustness layer on a
#                           warm cached sweep (default 0.02, plus a
#                           fixed 50 ms slack for host noise)
#   CHECK_ACCURACY_GATE=0   skip the sampled-mode accuracy gate
#   CHECK_ACCURACY_EPS=F    allowed fractional sampled-vs-detailed IPC
#                           error (default 0.03)
#   CHECK_ACCURACY_SPEEDUP=F required functional-vs-detailed host-MIPS
#                           factor of sampled runs (default 5.0)
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${CHECK_JOBS:-$(nproc)}"
root="${CHECK_BUILD_DIR:-build-check}"

run_config() {
    local name="$1"
    local label="$2"
    shift 2
    local dir="$root/$name"
    local -a label_args=()
    [[ -n "$label" ]] && label_args=(-L "$label")
    echo "== configure $name =="
    cmake -B "$dir" -S . "$@" >/dev/null
    echo "== build $name =="
    cmake --build "$dir" -j "$jobs"
    echo "== test $name =="
    (cd "$dir" &&
         ctest --output-on-failure -j "$jobs" "${label_args[@]}" \
               "${CTEST_ARGS[@]}")
}

CTEST_ARGS=("$@")

if command -v python3 >/dev/null; then
    echo "== perf_compare selftest =="
    python3 scripts/perf_compare.py --selftest
    echo "== check_stats_schema selftest =="
    python3 scripts/check_stats_schema.py --selftest
    echo "== accuracy_gate selftest =="
    python3 scripts/accuracy_gate.py --selftest
fi

run_config release "" -DCMAKE_BUILD_TYPE=Release
run_config asan-ubsan unit \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVCA_SANITIZE=address,undefined

# Telemetry-overhead gate: the probe hooks compiled in but *disabled*
# plus the always-on hierarchical cycle-taxonomy accounting must not
# cost measurable host throughput. Build a configuration with both
# removed entirely (-DVCA_NTELEMETRY=ON), run the same bench in both
# trees with the sweep cache disabled, and diff host MIPS.
if [[ "${CHECK_TELEM_GATE:-1}" != 0 ]] && command -v python3 >/dev/null
then
    echo "== configure notelemetry =="
    cmake -B "$root/notelemetry" -S . -DCMAKE_BUILD_TYPE=Release \
          -DVCA_NTELEMETRY=ON >/dev/null
    echo "== build notelemetry (telemetry-overhead gate) =="
    cmake --build "$root/notelemetry" -j "$jobs" --target \
          bench_fig6_single_port
    cmake --build "$root/release" -j "$jobs" --target \
          bench_fig6_single_port
    echo "== telemetry-overhead gate =="
    gate="$root/telem-gate"
    rm -rf "$gate"
    mkdir -p "$gate/base" "$gate/cand"
    telem_insts="${CHECK_TELEM_INSTS:-60000}"
    for side in base cand; do
        tree=release
        [[ "$side" == base ]] && tree=notelemetry
        VCA_CACHE_DIR= VCA_BENCH_JSON_DIR="$gate/$side" \
            VCA_WARMUP_INSTS=2000 VCA_MEASURE_INSTS="$telem_insts" \
            "$root/$tree/bench/bench_fig6_single_port" >/dev/null
    done
    python3 scripts/perf_compare.py "$gate/base" "$gate/cand" \
            --threshold "${CHECK_TELEM_THRESHOLD:-0.05}"
fi

# Accuracy gate: the sampled execution modes on the real CLI. For
# every renamer architecture, a --mode=sampled run must land within
# CHECK_ACCURACY_EPS of the detailed IPC and its functional
# fast-forward side must beat the detailed side's host-MIPS by
# CHECK_ACCURACY_SPEEDUP. The in-process twin of this gate is
# `ctest -L accuracy` (already covered by the release configuration
# above); this stage proves the vca-sim plumbing end to end.
if [[ "${CHECK_ACCURACY_GATE:-1}" != 0 ]] && command -v python3 >/dev/null
then
    echo "== accuracy gate =="
    python3 scripts/accuracy_gate.py \
            --sim "$root/release/tools/vca-sim" \
            --eps "${CHECK_ACCURACY_EPS:-0.03}" \
            --speedup "${CHECK_ACCURACY_SPEEDUP:-5.0}" \
            --simpoint
fi

# Robustness: prove the fault-tolerant execution layer on the real
# CLI. First the chaos smoke — the same sweep run clean and run under
# heavy deterministic fault injection (half of first worker attempts
# crash, every cache read corrupts, half of cache writes fail) must
# print byte-identical results, cold and warm; only the wall-clock
# "host:" line is stripped. Then the overhead gate — with isolation
# and checksums enabled but no fault firing, a warm (pure-cache-hit)
# sweep must cost no more than the stripped-down configuration.
if [[ "${CHECK_ROBUST_GATE:-1}" != 0 ]] && command -v python3 >/dev/null
then
    echo "== chaos smoke =="
    sim="$PWD/$root/release/tools/vca-sim"
    work="$PWD/$root/robust-gate"
    rm -rf "$work"
    mkdir -p "$work/clean" "$work/chaos"
    sweep_args=(--bench=crafty --arch=vca
                --sweep-regs=64,96,128,160,192,256
                --warmup=2000 --insts=20000)
    chaos_env=(
        VCA_FAULT_INJECT="seed=101,crash=0.5,corrupt=1,writefail=0.5,attempts=1"
        VCA_ISOLATE=1 VCA_RETRIES=3 VCA_RETRY_BACKOFF_MS=1
        VCA_POINT_TIMEOUT=120)
    (cd "$work/clean" &&
         env VCA_CACHE_DIR=cache VCA_FAULT_INJECT= VCA_ISOLATE=0 \
             "$sim" "${sweep_args[@]}") |
        grep -v '^host:' > "$work/clean.out"
    for pass in cold warm; do
        (cd "$work/chaos" &&
             env VCA_CACHE_DIR=cache "${chaos_env[@]}" \
                 "$sim" "${sweep_args[@]}" 2>"$work/chaos-$pass.err") |
            grep -v '^host:' > "$work/chaos-$pass.out"
        if ! diff -u "$work/clean.out" "$work/chaos-$pass.out"; then
            echo "chaos smoke: $pass chaos sweep diverged" >&2
            exit 1
        fi
    done

    echo "== isolate-overhead gate =="
    python3 - "$sim" "$work/overhead-cache" <<'EOF'
import os
import subprocess
import sys
import time

sim, cache = sys.argv[1], sys.argv[2]
args = [sim, "--bench=crafty", "--arch=all", "--warmup=2000",
        "--insts=20000", "--sweep-regs=" + ",".join(
            str(r) for r in range(64, 257, 16))]

def best_of(runs, extra):
    env = dict(os.environ, VCA_CACHE_DIR=cache, VCA_FAULT_INJECT="",
               **extra)
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        subprocess.run(args, env=env, check=True,
                       stdout=subprocess.DEVNULL)
        best = min(best, time.perf_counter() - start)
    return best

best_of(1, {})  # populate the cache; timed runs below are pure hits
base = best_of(5, {"VCA_CACHE_VERIFY": "0", "VCA_ISOLATE": "0"})
cand = best_of(5, {"VCA_ISOLATE": "1"})
threshold = float(os.environ.get("CHECK_ROBUST_THRESHOLD", "0.02"))
slack = 0.05
print("isolate-overhead gate: base %.1f ms, robust %.1f ms" %
      (base * 1e3, cand * 1e3))
if cand > base * (1 + threshold) + slack:
    sys.exit("robust clean path %.3fs exceeds base %.3fs by more "
             "than %.0f%% + %.0f ms slack" %
             (cand, base, threshold * 100, slack * 1e3))
EOF
fi

echo "== all configurations passed =="
