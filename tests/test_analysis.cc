/**
 * @file
 * Tests for the analysis substrate: PCA (normalization, covariance,
 * Jacobi eigensolver, projection), hierarchical clustering, the
 * experiment harness, and the workload-selection pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/cluster.hh"
#include "analysis/experiment.hh"
#include "analysis/pca.hh"
#include "analysis/runner.hh"
#include "analysis/simpoint.hh"
#include "analysis/workloads.hh"
#include "wload/asm_builder.hh"

namespace {

using namespace vca;
using namespace vca::analysis;

// ---------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------

TEST(Pca, ZscoreNormalization)
{
    Matrix m = {{1, 10}, {2, 10}, {3, 10}};
    zscoreNormalize(m);
    // Column 0: mean 2, sd sqrt(2/3).
    EXPECT_NEAR(m[0][0] + m[1][0] + m[2][0], 0.0, 1e-12);
    EXPECT_NEAR(m[2][0], -m[0][0], 1e-12);
    // Constant column becomes zero.
    for (const auto &r : m)
        EXPECT_DOUBLE_EQ(r[1], 0.0);
}

TEST(Pca, CovarianceOfIndependentColumns)
{
    Matrix m = {{1, 4}, {-1, -4}, {1, -4}, {-1, 4}};
    const Matrix cov = covariance(m);
    EXPECT_NEAR(cov[0][0], 1.0, 1e-12);
    EXPECT_NEAR(cov[1][1], 16.0, 1e-12);
    EXPECT_NEAR(cov[0][1], 0.0, 1e-12);
}

TEST(Pca, JacobiEigenDiagonal)
{
    const Matrix m = {{3, 0}, {0, 7}};
    const EigenResult e = jacobiEigen(m);
    EXPECT_NEAR(e.values[0], 7.0, 1e-9);
    EXPECT_NEAR(e.values[1], 3.0, 1e-9);
}

TEST(Pca, JacobiEigenSymmetric2x2)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1.
    const Matrix m = {{2, 1}, {1, 2}};
    const EigenResult e = jacobiEigen(m);
    EXPECT_NEAR(e.values[0], 3.0, 1e-9);
    EXPECT_NEAR(e.values[1], 1.0, 1e-9);
    // Leading eigenvector is (1,1)/sqrt(2) up to sign.
    EXPECT_NEAR(std::fabs(e.vectors[0][0]), 1 / std::sqrt(2.0), 1e-6);
    EXPECT_NEAR(std::fabs(e.vectors[0][1]), 1 / std::sqrt(2.0), 1e-6);
}

TEST(Pca, EigenvaluesSumToTrace)
{
    Matrix m = {{4, 1, 0.5}, {1, 3, 0.2}, {0.5, 0.2, 2}};
    const EigenResult e = jacobiEigen(m);
    double sum = 0;
    for (double v : e.values)
        sum += v;
    EXPECT_NEAR(sum, 9.0, 1e-9);
}

TEST(Pca, ProjectionReducesCorrelatedDimensions)
{
    // Points on a line in 3D: one principal component suffices.
    Matrix m;
    for (int i = 0; i < 16; ++i) {
        const double t = i;
        m.push_back({t, 2 * t + 0.001 * (i % 2), -t});
    }
    const Matrix p = pcaProject(m, 0.9);
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p[0].size(), 1u);
}

// ---------------------------------------------------------------------
// Clustering
// ---------------------------------------------------------------------

TEST(Cluster, SeparatesObviousGroups)
{
    Matrix pts;
    for (int i = 0; i < 5; ++i)
        pts.push_back({double(i) * 0.01, 0});
    for (int i = 0; i < 5; ++i)
        pts.push_back({100 + double(i) * 0.01, 0});
    const auto assign = averageLinkageCluster(pts, 2);
    for (int i = 1; i < 5; ++i)
        EXPECT_EQ(assign[i], assign[0]);
    for (int i = 6; i < 10; ++i)
        EXPECT_EQ(assign[i], assign[5]);
    EXPECT_NE(assign[0], assign[5]);
}

TEST(Cluster, MedoidsAreClusterMembers)
{
    Matrix pts = {{0, 0}, {1, 0}, {0.5, 0}, {50, 0}, {51, 0}};
    const auto assign = averageLinkageCluster(pts, 2);
    const auto medoids = clusterMedoids(pts, assign);
    ASSERT_EQ(medoids.size(), 2u);
    // The medoid of {0,1,0.5} is the middle point.
    bool sawMiddle = false;
    for (size_t m : medoids)
        sawMiddle = sawMiddle || m == 2;
    EXPECT_TRUE(sawMiddle);
}

TEST(Cluster, OneClusterPerPointIsIdentity)
{
    Matrix pts = {{0, 0}, {5, 0}, {9, 0}};
    const auto assign = averageLinkageCluster(pts, 3);
    EXPECT_NE(assign[0], assign[1]);
    EXPECT_NE(assign[1], assign[2]);
}

// ---------------------------------------------------------------------
// Experiment harness
// ---------------------------------------------------------------------

TEST(Experiment, PathLengthCachedAndConsistent)
{
    const auto &prof = wload::profileByName("crafty");
    const InstCount a = pathLength(prof, true);
    const InstCount b = pathLength(prof, true);
    EXPECT_EQ(a, b);
    EXPECT_LT(a, pathLength(prof, false));
    EXPECT_GT(memOpCount(prof, true), 0u);
}

TEST(Experiment, BaselineAbiSelection)
{
    EXPECT_FALSE(usesWindowedBinary(cpu::RenamerKind::Baseline));
    EXPECT_TRUE(usesWindowedBinary(cpu::RenamerKind::ConvWindow));
    EXPECT_TRUE(usesWindowedBinary(cpu::RenamerKind::IdealWindow));
    EXPECT_TRUE(usesWindowedBinary(cpu::RenamerKind::Vca));
}

TEST(Experiment, InoperableConfigReportsNotOk)
{
    RunOptions opts;
    opts.warmupInsts = 1000;
    opts.measureInsts = 2000;
    const auto m = runBench(wload::profileByName("crafty"),
                            cpu::RenamerKind::Baseline, 64, opts);
    EXPECT_FALSE(m.ok);
    EXPECT_FALSE(m.error.empty());
}

TEST(Experiment, MeasurementFieldsConsistent)
{
    RunOptions opts;
    opts.warmupInsts = 5'000;
    opts.measureInsts = 30'000;
    const auto m = runBench(wload::profileByName("crafty"),
                            cpu::RenamerKind::Vca, 192, opts);
    ASSERT_TRUE(m.ok);
    EXPECT_GE(m.insts, opts.measureInsts);
    EXPECT_NEAR(m.ipc * m.cpi, 1.0, 1e-9);
    EXPECT_GT(m.dcacheAccPerInst, 0.0);
    EXPECT_LT(m.dcacheAccPerInst, 1.0);
    ASSERT_EQ(m.threadCpi.size(), 1u);
    EXPECT_NEAR(m.threadCpi[0], m.cpi, 1e-9);
}

TEST(Experiment, ExecutionTimeScalesWithPathLength)
{
    RunOptions opts;
    opts.warmupInsts = 5'000;
    opts.measureInsts = 30'000;
    const auto &prof = wload::profileByName("crafty");
    const auto m = runBench(prof, cpu::RenamerKind::Baseline, 256, opts);
    ASSERT_TRUE(m.ok);
    const double t = executionTime(prof, cpu::RenamerKind::Baseline, m);
    EXPECT_NEAR(t, m.cpi * double(pathLength(prof, false)), 1e-6);
}

TEST(Experiment, MeanHelper)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

// ---------------------------------------------------------------------
// Sweep runner and result cache
// ---------------------------------------------------------------------

namespace {

/** Fresh, empty cache directory under the system temp dir. */
std::string
freshCacheDir(const char *name)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() /
                         (std::string("vca_test_cache_") + name);
    fs::remove_all(dir);
    return dir.string();
}

RunOptions
tinyOptions()
{
    RunOptions opts;
    opts.warmupInsts = 500;
    opts.measureInsts = 4'000;
    return opts;
}

} // namespace

TEST(Runner, PointKeyCoversConfigAndVersion)
{
    const RunOptions opts = tinyOptions();
    const auto a = makePoint("crafty", cpu::RenamerKind::Vca, 128, opts);
    auto b = a;
    EXPECT_EQ(pointKey(a), pointKey(b));
    EXPECT_EQ(pointHash(a), pointHash(b));
    EXPECT_NE(pointKey(a).find(kSimVersionTag), std::string::npos);
    EXPECT_NE(pointKey(a).find("crafty"), std::string::npos);

    b.physRegs = 129;
    EXPECT_NE(pointKey(a), pointKey(b));
    b = a;
    b.opts.overrides.astqEntries = 2;
    EXPECT_NE(pointKey(a), pointKey(b));

    // The derived seed is deterministic, never 0 (0 = library
    // default), and differs between distinct points.
    EXPECT_EQ(pointSeed(a), pointSeed(a));
    EXPECT_NE(pointSeed(a), 0u);
    EXPECT_NE(pointSeed(a), pointSeed(b));
}

TEST(Runner, WarmCacheRunsZeroSimulations)
{
    setQuiet(true);
    const std::string dir = freshCacheDir("warm");
    std::vector<SweepPoint> points;
    for (cpu::RenamerKind kind :
         {cpu::RenamerKind::Baseline, cpu::RenamerKind::Vca})
        for (unsigned regs : {64u, 128u})
            points.push_back(makePoint("crafty", kind, regs,
                                       tinyOptions()));

    SweepConfig config;
    config.jobs = 2;
    config.cacheDir = dir;
    SweepRunner cold(config);
    const auto first = cold.run(points);
    EXPECT_EQ(cold.cacheHits.value(), 0.0);
    EXPECT_EQ(cold.cacheMisses.value(), double(points.size()));

    // A second runner over the same directory must serve everything —
    // including the inoperable baseline @ 64 point — from disk.
    const std::uint64_t simsBefore = runTimingCallCount();
    SweepRunner warm(config);
    const auto second = warm.run(points);
    EXPECT_EQ(runTimingCallCount(), simsBefore)
        << "warm-cache sweep must not simulate";
    EXPECT_EQ(warm.cacheHits.value(), double(points.size()));
    EXPECT_EQ(warm.cacheMisses.value(), 0.0);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_TRUE(first[i] == second[i]) << "point " << i;
    EXPECT_FALSE(second[0].ok) << "baseline @ 64 stays inoperable";
    std::filesystem::remove_all(dir);
}

TEST(Runner, BatchDedupesIdenticalPoints)
{
    setQuiet(true);
    const auto point =
        makePoint("mesa", cpu::RenamerKind::Vca, 160, tinyOptions());
    SweepConfig config;
    config.jobs = 4;
    config.cacheDir.clear(); // no cache: dedupe must do the saving
    SweepRunner runner(config);
    const std::uint64_t simsBefore = runTimingCallCount();
    const auto results =
        runner.run({point, point, point, point});
    EXPECT_EQ(runTimingCallCount(), simsBefore + 1)
        << "identical points in one batch simulate once";
    ASSERT_EQ(results.size(), 4u);
    ASSERT_TRUE(results[0].ok);
    for (size_t i = 1; i < results.size(); ++i)
        EXPECT_TRUE(results[i] == results[0]);
}

TEST(Runner, CorruptAndStaleCacheEntriesReadAsMisses)
{
    setQuiet(true);
    const std::string dir = freshCacheDir("corrupt");
    const auto point =
        makePoint("gap", cpu::RenamerKind::Vca, 128, tinyOptions());

    // A corrupt entry at the point's location must be re-simulated,
    // not crash; the runner then repairs the entry.
    std::filesystem::create_directories(dir);
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.json",
                  static_cast<unsigned long long>(pointHash(point)));
    const std::string path = dir + "/" + name;
    {
        std::ofstream os(path);
        os << "{ not json";
    }
    SweepConfig config;
    config.cacheDir = dir;
    SweepRunner runner(config);
    const auto m = runner.runPoint(point);
    EXPECT_TRUE(m.ok);
    EXPECT_EQ(runner.cacheMisses.value(), 1.0);

    // ... and a mismatched key (hash collision / stale tag stand-in)
    // is also a miss rather than a wrong answer.
    {
        std::ofstream os(path);
        os << "{\"version\": \"" << kSimVersionTag
           << "\", \"key\": \"some other point\", "
              "\"measurement\": " << measurementToJson(m) << "}";
    }
    const auto again = runner.runPoint(point);
    EXPECT_TRUE(again.ok);
    EXPECT_EQ(runner.cacheMisses.value(), 2.0);
    EXPECT_TRUE(again == m) << "re-simulated point must reproduce";
    std::filesystem::remove_all(dir);
}

TEST(Runner, TruncatedCacheEntryIsAMiss)
{
    setQuiet(true);
    const std::string dir = freshCacheDir("truncated");
    const auto point =
        makePoint("gap", cpu::RenamerKind::Vca, 128, tinyOptions());
    SweepConfig config;
    config.cacheDir = dir;
    SweepRunner writer(config);
    const auto m = writer.runPoint(point);
    ASSERT_TRUE(m.ok);

    // A completed sweep leaves exactly the committed entry — no
    // in-flight ".tmp.*" files.
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.json",
                  static_cast<unsigned long long>(pointHash(point)));
    const std::string path = dir + "/" + name;
    size_t entries = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        ++entries;
        EXPECT_EQ(e.path().string(), path)
            << "unexpected leftover " << e.path();
    }
    EXPECT_EQ(entries, 1u);

    // Chop the entry mid-JSON, as an interrupted writer of the final
    // path would have. load() must report a miss (not a crash, not a
    // garbage measurement) and the runner must re-simulate.
    const auto size = std::filesystem::file_size(path);
    ASSERT_GT(size, 16u);
    std::filesystem::resize_file(path, size / 2);
    Measurement out;
    EXPECT_FALSE(writer.cache().load(point, out))
        << "truncated cache entry must read as a miss";
    SweepRunner reader(config);
    const auto again = reader.runPoint(point);
    EXPECT_EQ(reader.cacheMisses.value(), 1.0);
    EXPECT_TRUE(again == m) << "re-simulated point must reproduce";

    // The miss repaired the entry: a valid load now succeeds.
    EXPECT_TRUE(reader.cache().load(point, out));
    EXPECT_TRUE(out == m);
    std::filesystem::remove_all(dir);
}

TEST(Runner, DisabledCacheNeverTouchesDisk)
{
    setQuiet(true);
    SweepConfig config;
    config.cacheDir.clear();
    SweepRunner runner(config);
    EXPECT_FALSE(runner.cache().enabled());
    const auto point =
        makePoint("twolf", cpu::RenamerKind::IdealWindow, 96,
                  tinyOptions());
    const std::uint64_t simsBefore = runTimingCallCount();
    const auto a = runner.runPoint(point);
    const auto b = runner.runPoint(point);
    EXPECT_EQ(runTimingCallCount(), simsBefore + 2);
    EXPECT_TRUE(a == b) << "determinism without the cache";
}

// ---------------------------------------------------------------------
// Workload selection (scaled down: a 6-benchmark universe would take
// too long; we use the stats vector and pipeline pieces directly)
// ---------------------------------------------------------------------

TEST(Workloads, StatsVectorHasFourteenEntries)
{
    const auto v = workloadStats({"crafty", "gzip_graphic"}, 448,
                                 8'000);
    EXPECT_EQ(v.size(), 14u);
    EXPECT_GT(v[0], 0.0) << "IPC must be positive";
}

TEST(Workloads, StatsAreDeterministic)
{
    const auto a = workloadStats({"crafty", "mesa"}, 448, 6'000);
    const auto b = workloadStats({"crafty", "mesa"}, 448, 6'000);
    EXPECT_EQ(a, b);
}

} // namespace

// ---------------------------------------------------------------------
// SimPoint-style phase analysis
// ---------------------------------------------------------------------

namespace simpoint_tests {

using wload::AsmBuilder;

/** Two obvious phases: a long integer loop, then a long FP loop. */
isa::Program
twoPhaseProgram(unsigned tripsPerPhase)
{
    AsmBuilder b;
    b.addi(13, isa::regZero, 8000);
    auto phase1 = b.newLabel();
    b.bind(phase1);
    for (int i = 0; i < 10; ++i)
        b.emitR(isa::Opcode::Add, 10, 10, 11);
    b.addi(13, 13, -1);
    b.branch(isa::Opcode::Bne, 13, isa::regZero, phase1);

    b.addi(13, isa::regZero,
           static_cast<std::int32_t>(tripsPerPhase));
    auto phase2 = b.newLabel();
    b.bind(phase2);
    for (int i = 0; i < 10; ++i)
        b.emitR(isa::Opcode::Fadd, 8, 8, 9);
    b.addi(13, 13, -1);
    b.branch(isa::Opcode::Bne, 13, isa::regZero, phase2);
    b.halt();

    isa::Program p;
    p.name = "twophase";
    p.code = b.seal();
    p.finalize();
    return p;
}

} // namespace simpoint_tests

TEST(SimPoint, BbvsCoverAllInstructions)
{
    const isa::Program p = simpoint_tests::twoPhaseProgram(8000);
    const auto bbvs = collectBbvs(p, 10'000);
    ASSERT_GT(bbvs.size(), 2u);
    // Total attributed instructions == interval length for all full
    // intervals.
    for (size_t i = 0; i + 1 < bbvs.size(); ++i) {
        std::uint64_t total = 0;
        for (const auto &[pc, count] : bbvs[i])
            total += count;
        EXPECT_EQ(total, 10'000u) << "interval " << i;
    }
}

TEST(SimPoint, KmeansSeparatesPhases)
{
    Matrix pts = {{0, 0}, {0.1, 0}, {0, 0.1}, {9, 9}, {9.1, 9}};
    const auto r = kmeans(pts, 2);
    EXPECT_EQ(r.assign[0], r.assign[1]);
    EXPECT_EQ(r.assign[0], r.assign[2]);
    EXPECT_EQ(r.assign[3], r.assign[4]);
    EXPECT_NE(r.assign[0], r.assign[3]);
    EXPECT_LT(r.distortion, 0.1);
}

TEST(SimPoint, DetectsTwoPhaseProgram)
{
    const isa::Program p = simpoint_tests::twoPhaseProgram(8000);
    const auto r = pickSimPoint(p, 10'000, 4);
    EXPECT_GE(r.numPhases, 2u) << "phases must be distinguished";
    // The first and last intervals belong to different phases.
    ASSERT_GT(r.phaseOf.size(), 2u);
    EXPECT_NE(r.phaseOf.front(), r.phaseOf.back());
}

TEST(SimPoint, SyntheticBenchmarksAreStationary)
{
    // The bench harness's short measurement windows are justified by
    // the generated programs settling into one dominant phase.
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("crafty"), false);
    const auto r = pickSimPoint(*prog, 50'000, 5, 24);
    EXPECT_GE(r.largestPhaseWeight, 0.5)
        << "dominant phase must cover most intervals";
}

TEST(SimPoint, Deterministic)
{
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("gap"), false);
    const auto a = pickSimPoint(*prog, 40'000, 4, 16);
    const auto b = pickSimPoint(*prog, 40'000, 4, 16);
    EXPECT_EQ(a.intervalIndex, b.intervalIndex);
    EXPECT_EQ(a.numPhases, b.numPhases);
    EXPECT_EQ(a.phaseOf, b.phaseOf);
}
