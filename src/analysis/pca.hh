/**
 * @file
 * Small dense linear-algebra kit: z-score normalization, covariance,
 * and a cyclic Jacobi eigensolver for symmetric matrices. Used to
 * reproduce the paper's workload-selection methodology (Section 3.2):
 * statistics vectors are normalized, reduced with principal components
 * analysis, and clustered.
 */

#ifndef VCA_ANALYSIS_PCA_HH
#define VCA_ANALYSIS_PCA_HH

#include <vector>

namespace vca::analysis {

using Matrix = std::vector<std::vector<double>>; ///< row major

/** Normalize columns to zero mean / unit variance (in place).
 *  Constant columns become all-zero. */
void zscoreNormalize(Matrix &rows);

/** Covariance matrix of the rows (features in columns). */
Matrix covariance(const Matrix &rows);

/** Result of an eigendecomposition, sorted by descending eigenvalue. */
struct EigenResult
{
    std::vector<double> values;
    Matrix vectors; ///< vectors[i] is the eigenvector for values[i]
};

/** Cyclic Jacobi eigensolver for a symmetric matrix. */
EigenResult jacobiEigen(const Matrix &sym, unsigned maxSweeps = 64);

/**
 * Project rows onto the leading principal components that explain at
 * least varianceFraction of the total variance. Columns are z-score
 * normalized first (appropriate for heterogeneous statistics vectors).
 */
Matrix pcaProject(const Matrix &rows, double varianceFraction = 0.9);

/**
 * As pcaProject, but columns are only mean-centered, not rescaled.
 * Appropriate for homogeneous data such as basic-block frequency
 * vectors, where rescaling would amplify noise dimensions.
 */
Matrix pcaProjectCentered(const Matrix &rows,
                          double varianceFraction = 0.9);

} // namespace vca::analysis

#endif // VCA_ANALYSIS_PCA_HH
