#include "analysis/pca.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/logging.hh"

namespace vca::analysis {

void
zscoreNormalize(Matrix &rows)
{
    if (rows.empty())
        return;
    const size_t cols = rows[0].size();
    for (size_t c = 0; c < cols; ++c) {
        double sum = 0;
        for (const auto &r : rows)
            sum += r[c];
        const double mean = sum / rows.size();
        double var = 0;
        for (const auto &r : rows)
            var += (r[c] - mean) * (r[c] - mean);
        var /= rows.size();
        const double sd = std::sqrt(var);
        for (auto &r : rows)
            r[c] = sd > 1e-12 ? (r[c] - mean) / sd : 0.0;
    }
}

Matrix
covariance(const Matrix &rows)
{
    if (rows.empty())
        return {};
    const size_t n = rows.size();
    const size_t cols = rows[0].size();
    std::vector<double> mean(cols, 0.0);
    for (const auto &r : rows) {
        for (size_t c = 0; c < cols; ++c)
            mean[c] += r[c];
    }
    for (double &m : mean)
        m /= static_cast<double>(n);

    Matrix cov(cols, std::vector<double>(cols, 0.0));
    for (const auto &r : rows) {
        for (size_t i = 0; i < cols; ++i) {
            for (size_t j = i; j < cols; ++j)
                cov[i][j] += (r[i] - mean[i]) * (r[j] - mean[j]);
        }
    }
    for (size_t i = 0; i < cols; ++i) {
        for (size_t j = i; j < cols; ++j) {
            cov[i][j] /= static_cast<double>(n);
            cov[j][i] = cov[i][j];
        }
    }
    return cov;
}

EigenResult
jacobiEigen(const Matrix &sym, unsigned maxSweeps)
{
    const size_t n = sym.size();
    Matrix a = sym;
    Matrix v(n, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i)
        v[i][i] = 1.0;

    for (unsigned sweep = 0; sweep < maxSweeps; ++sweep) {
        double off = 0;
        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q)
                off += a[p][q] * a[p][q];
        }
        if (off < 1e-20)
            break;
        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                if (std::fabs(a[p][q]) < 1e-18)
                    continue;
                const double theta = (a[q][q] - a[p][p]) / (2 * a[p][q]);
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                                 (std::fabs(theta) +
                                  std::sqrt(theta * theta + 1));
                const double c = 1.0 / std::sqrt(t * t + 1);
                const double s = t * c;
                for (size_t k = 0; k < n; ++k) {
                    const double akp = a[k][p];
                    const double akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double apk = a[p][k];
                    const double aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double vkp = v[k][p];
                    const double vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    EigenResult res;
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return a[x][x] > a[y][y];
    });
    for (size_t i : order) {
        res.values.push_back(a[i][i]);
        std::vector<double> vec(n);
        for (size_t k = 0; k < n; ++k)
            vec[k] = v[k][i];
        res.vectors.push_back(std::move(vec));
    }
    return res;
}

namespace {

Matrix
projectPrepared(const Matrix &normalized, double varianceFraction)
{
    const Matrix cov = covariance(normalized);
    const EigenResult eig = jacobiEigen(cov);

    double total = 0;
    for (double v : eig.values)
        total += std::max(v, 0.0);
    unsigned dims = 0;
    double acc = 0;
    while (dims < eig.values.size() &&
           (total <= 0 || acc / total < varianceFraction)) {
        acc += std::max(eig.values[dims], 0.0);
        ++dims;
    }
    dims = std::max(dims, 1u);

    Matrix out(normalized.size(), std::vector<double>(dims, 0.0));
    for (size_t r = 0; r < normalized.size(); ++r) {
        for (unsigned d = 0; d < dims; ++d) {
            double dot = 0;
            for (size_t c = 0; c < normalized[r].size(); ++c)
                dot += normalized[r][c] * eig.vectors[d][c];
            out[r][d] = dot;
        }
    }
    return out;
}

} // namespace

Matrix
pcaProject(const Matrix &rows, double varianceFraction)
{
    if (rows.empty())
        return {};
    Matrix normalized = rows;
    zscoreNormalize(normalized);
    return projectPrepared(normalized, varianceFraction);
}

Matrix
pcaProjectCentered(const Matrix &rows, double varianceFraction)
{
    if (rows.empty())
        return {};
    Matrix centered = rows;
    const size_t cols = centered[0].size();
    for (size_t c = 0; c < cols; ++c) {
        double mean = 0;
        for (const auto &r : centered)
            mean += r[c];
        mean /= static_cast<double>(centered.size());
        for (auto &r : centered)
            r[c] -= mean;
    }
    return projectPrepared(centered, varianceFraction);
}

} // namespace vca::analysis
