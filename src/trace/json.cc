#include "trace/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace vca::trace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

void
JsonWriter::newline()
{
    os_ << "\n";
    for (size_t i = 0; i < stack_.size() * indentWidth_; ++i)
        os_ << ' ';
}

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (stack_.empty())
        return;
    Frame &top = stack_.back();
    if (top.isObject)
        panic("JsonWriter: value in object without a key");
    if (!top.first)
        os_ << ",";
    top.first = false;
    newline();
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (stack_.empty() || !stack_.back().isObject)
        panic("JsonWriter: key() outside an object");
    if (pendingKey_)
        panic("JsonWriter: key '%s' follows a dangling key", k.c_str());
    Frame &top = stack_.back();
    if (!top.first)
        os_ << ",";
    top.first = false;
    newline();
    os_ << '"' << jsonEscape(k) << "\": ";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os_ << "{";
    stack_.push_back({true, true});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || !stack_.back().isObject)
        panic("JsonWriter: endObject() without beginObject()");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << "}";
    if (stack_.empty())
        os_ << "\n";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os_ << "[";
    stack_.push_back({false, true});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back().isObject)
        panic("JsonWriter: endArray() without beginArray()");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << "]";
    if (stack_.empty())
        os_ << "\n";
    return *this;
}

JsonWriter &
JsonWriter::number(double v)
{
    beforeValue();
    os_ << jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::number(std::uint64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::string(const std::string &s)
{
    beforeValue();
    os_ << '"' << jsonEscape(s) << '"';
    return *this;
}

JsonWriter &
JsonWriter::boolean(bool b)
{
    beforeValue();
    os_ << (b ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    os_ << "null";
    return *this;
}

// ---------------------------------------------------------------------
// JsonValue / parser
// ---------------------------------------------------------------------

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        fatal("JSON parse error at offset %zu: %s", pos_, what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t len = 0;
        while (lit[len])
            ++len;
        if (text_.compare(pos_, len, lit) != 0)
            return false;
        pos_ += len;
        return true;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        JsonValue v;
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"':
            v.kind_ = JsonValue::Kind::String;
            v.string_ = parseString();
            return v;
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = true;
            return v;
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = false;
            return v;
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            v.kind_ = JsonValue::Kind::Null;
            return v;
          default:
            return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"':  out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/':  out += '/'; break;
                  case 'b':  out += '\b'; break;
                  case 'f':  out += '\f'; break;
                  case 'n':  out += '\n'; break;
                  case 'r':  out += '\r'; break;
                  case 't':  out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("bad \\u escape");
                    unsigned code = static_cast<unsigned>(std::strtoul(
                        text_.substr(pos_, 4).c_str(), nullptr, 16));
                    pos_ += 4;
                    // Keep it simple: store BMP code points as UTF-8.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default: fail("bad escape character");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    JsonValue
    parseNumber()
    {
        const size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool sawDigit = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                sawDigit = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                ++pos_;
            } else {
                break;
            }
        }
        if (!sawDigit)
            fail("expected a number");
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        v.number_ = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                nullptr);
        return v;
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            expect(':');
            v.members_.emplace_back(std::move(key), parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                break;
            }
            fail("expected ',' or '}' in object");
        }
        return v;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.elements_.push_back(parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                break;
            }
            fail("expected ',' or ']' in array");
        }
        return v;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        panic("JsonValue: asNumber() on a non-number");
    return number_;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        panic("JsonValue: asBool() on a non-bool");
    return bool_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        panic("JsonValue: asString() on a non-string");
    return string_;
}

size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return elements_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    return 0;
}

const JsonValue &
JsonValue::at(size_t i) const
{
    if (kind_ != Kind::Array || i >= elements_.size())
        panic("JsonValue: bad array access");
    return elements_[i];
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue *
JsonValue::findPath(const std::string &dotted) const
{
    const JsonValue *cur = this;
    size_t pos = 0;
    while (pos < dotted.size()) {
        size_t dot = dotted.find('.', pos);
        if (dot == std::string::npos)
            dot = dotted.size();
        cur = cur->find(dotted.substr(pos, dot - pos));
        if (!cur)
            return nullptr;
        pos = dot + 1;
    }
    return cur;
}

} // namespace vca::trace
