/**
 * @file
 * Figure 7 reproduction: SMT weighted speedup (no register windows)
 * for VCA and the conventional baseline with two and four threads,
 * over physical register file sizes 64..448, relative to
 * single-threaded execution on the baseline with 256 registers.
 *
 * Expected shape (paper Section 4.2):
 *  - the baseline cannot operate unless physRegs > 64 x threads
 *    ("Max 1T/2T/4T" markers in the figure);
 *  - VCA at 192 registers reaches ~97-99% of the baseline's best
 *    2T/4T speedups, which need 320/448 registers;
 *  - VCA runs (and speeds up) even with fewer physical registers than
 *    one thread's architectural state.
 */

#include "bench_common.hh"

using namespace vca;
using namespace vca::bench;

int
main()
{
    setQuiet(true);
    const std::vector<unsigned> sizes = {64, 128, 192, 256, 320,
                                         384, 448};
    const analysis::RunOptions opts = defaultOptions();
    const auto workloads = benchWorkloads();

    std::printf("workload selection: %zu 2T candidates -> %zu kept, "
                "%zu 4T candidates -> %zu kept\n",
                workloads.twoThreadCandidates, workloads.twoThread.size(),
                workloads.fourThreadCandidates,
                workloads.fourThread.size());
    for (const auto &w : workloads.twoThread) {
        std::printf("  2T: %s + %s\n", w[0].c_str(), w[1].c_str());
    }

    // Figure 7 is SMT without windows: both machines run the
    // non-windowed binaries (VCA still virtualizes the thread
    // contexts). The whole grid goes through the sweep runner as one
    // parallel, cache-memoized batch.
    const std::vector<SeriesSpec> specs = {
        {"baseline 2T", cpu::RenamerKind::Baseline, false, true,
         workloads.twoThread},
        {"baseline 4T", cpu::RenamerKind::Baseline, false, true,
         workloads.fourThread},
        {"vca 2T", cpu::RenamerKind::Vca, false, true,
         workloads.twoThread},
        {"vca 4T", cpu::RenamerKind::Vca, false, true,
         workloads.fourThread},
    };
    const auto series = sweepSeries(
        specs, sizes, opts,
        [&opts](const SeriesSpec &spec,
                const std::vector<std::string> &w,
                const analysis::Measurement &m) {
            return weightedSpeedupFrom(w, spec.windowed, m, opts);
        });

    printSeries("Figure 7: SMT weighted speedup "
                "(vs 1T baseline @ 256)",
                "weighted speedup", sizes, series);
    printCycleAccounting({cpu::RenamerKind::Baseline,
                          cpu::RenamerKind::Vca}, 192, opts);
    return finishBench();
}
