/**
 * @file
 * Calendar event queue for cycle-keyed completion events.
 *
 * The detailed core schedules every completion (FU latency, cache
 * miss, spill/fill transfer) a bounded number of cycles ahead, then
 * pops exactly the events due at the current cycle. A std::map keyed
 * by cycle pays a tree walk plus node allocation per schedule and per
 * pop; this calendar queue indexes a ring of buckets by `cycle &
 * mask`, so both operations are O(1) for any event within the horizon.
 *
 * Events beyond the horizon (longer than the deepest cache-miss plus
 * transfer latency the horizon is sized for) land in a std::map
 * overflow bucket — correctness never depends on the horizon, only
 * speed.
 *
 * Semantics are bit-identical to the `std::map<Cycle, std::vector<T>>`
 * it replaces:
 *  - popAt(c) removes and returns the events scheduled for EXACTLY
 *    cycle c, in schedule() order (a global insertion sequence number
 *    restores order across the bucket/overflow split);
 *  - events scheduled for a cycle that is never popped simply stay
 *    queued (the map behaved the same way: find(now) only matched the
 *    exact key).
 */

#ifndef VCA_SIM_EVENT_QUEUE_HH
#define VCA_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "sim/types.hh"

namespace vca {

template <typename T>
class CalendarQueue
{
  public:
    explicit CalendarQueue(Cycle horizon = 256) { reset(horizon); }

    /**
     * (Re)size the ring to cover at least `horizon` cycles ahead of
     * the last popped cycle and drop all queued events.
     */
    void
    reset(Cycle horizon)
    {
        Cycle pow2 = 1;
        while (pow2 < horizon)
            pow2 <<= 1;
        buckets_.assign(static_cast<size_t>(pow2), {});
        mask_ = pow2 - 1;
        overflow_.clear();
        base_ = 0;
        nextSeq_ = 0;
        size_ = 0;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    Cycle horizon() const { return mask_ + 1; }

    /** Number of events currently parked beyond the horizon. */
    size_t
    overflowSize() const
    {
        size_t n = 0;
        for (const auto &[when, list] : overflow_)
            n += list.size();
        return n;
    }

    void
    schedule(Cycle when, const T &item)
    {
        Entry e{when, nextSeq_++, item};
        if (when >= base_ && when - base_ < horizon())
            buckets_[when & mask_].push_back(std::move(e));
        else
            overflow_[when].push_back(std::move(e));
        ++size_;
    }

    /**
     * Remove every event scheduled exactly at `when` and append the
     * items to `out` in schedule() order. Advances the ring base, so
     * pop cycles must be monotonically non-decreasing.
     */
    void
    popAt(Cycle when, std::vector<T> &out)
    {
        if (when > base_)
            base_ = when;
        if (size_ == 0)
            return;

        scratch_.clear();
        auto &bucket = buckets_[when & mask_];
        if (!bucket.empty()) {
            // Extract this cycle's entries; keep anything parked in the
            // same slot for a different cycle (only possible for events
            // scheduled in the past and never popped).
            size_t keep = 0;
            for (Entry &e : bucket) {
                if (e.when == when)
                    scratch_.push_back(std::move(e));
                else
                    bucket[keep++] = std::move(e);
            }
            bucket.resize(keep);
        }
        auto it = overflow_.empty() ? overflow_.end()
                                    : overflow_.find(when);
        if (it != overflow_.end()) {
            // Restore global insertion order across the two stores:
            // both lists are seq-sorted, so a single merge suffices.
            const size_t mid = scratch_.size();
            for (Entry &e : it->second)
                scratch_.push_back(std::move(e));
            overflow_.erase(it);
            std::inplace_merge(scratch_.begin(), scratch_.begin() + mid,
                               scratch_.end(),
                               [](const Entry &a, const Entry &b) {
                                   return a.seq < b.seq;
                               });
        }
        size_ -= scratch_.size();
        for (Entry &e : scratch_)
            out.push_back(std::move(e.item));
    }

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        T item;
    };

    std::vector<std::vector<Entry>> buckets_;
    Cycle mask_ = 0;
    Cycle base_ = 0; ///< last popped cycle; ring covers [base_, base_+N)
    std::map<Cycle, std::vector<Entry>> overflow_;
    std::vector<Entry> scratch_;
    std::uint64_t nextSeq_ = 0;
    size_t size_ = 0;
};

} // namespace vca

#endif // VCA_SIM_EVENT_QUEUE_HH
