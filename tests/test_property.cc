/**
 * @file
 * Property-style tests.
 *
 *  - Random-profile co-simulation: freshly generated workloads (random
 *    structural parameters per seed) must commit exactly the golden
 *    model's instruction stream on the VCA machine.
 *  - Cross-architecture agreement: the same binary running on every
 *    architecture commits the same (pc, value) stream.
 *  - Configuration stress: extreme VCA geometries keep all internal
 *    invariants (validated after every run).
 *  - Sweep-runner infrastructure: random thread-pool submission and
 *    cancellation interleavings always drain without deadlock, and the
 *    Measurement JSON round-trip used by the on-disk result cache is
 *    lossless for arbitrary field values.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "analysis/runner.hh"
#include "cpu/ooo_cpu.hh"
#include "func/func_sim.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace {

using namespace vca;
using namespace vca::cpu;

wload::BenchProfile
randomProfile(std::uint64_t seed)
{
    Rng rng(seed * 77 + 5);
    wload::BenchProfile p;
    p.name = "prop_" + std::to_string(seed);
    p.numFuncs = static_cast<unsigned>(rng.range(6, 40));
    p.callFanout = static_cast<unsigned>(rng.range(1, 3));
    p.callSpan = static_cast<unsigned>(rng.range(2, 6));
    p.bodyOps = static_cast<unsigned>(rng.range(16, 200));
    p.avgLocals = static_cast<unsigned>(rng.range(4, 12));
    p.leafFrac = 0.2 + rng.uniform() * 0.4;
    p.loopTripMean = static_cast<unsigned>(rng.range(2, 20));
    p.randomBranchFrac = rng.uniform() * 0.4;
    p.footprintBytes = 4096u << rng.range(0, 10);
    p.memOpFrac = 0.1 + rng.uniform() * 0.3;
    p.pointerChaseFrac = rng.chance(0.3) ? rng.uniform() * 0.4 : 0.0;
    p.fpFrac = rng.chance(0.4) ? rng.uniform() * 0.6 : 0.0;
    p.targetDynInsts = 400'000;
    p.seed = seed * 1000 + 7;
    return p;
}

/** Run prog on the architecture and co-simulate against FuncSim. */
void
checkCosim(const isa::Program &prog, RenamerKind kind, unsigned physRegs,
           InstCount maxInsts)
{
    CpuParams params = CpuParams::preset(kind, physRegs);
    OooCpu cpu(params, {&prog});
    mem::SparseMemory refMem;
    func::FuncSim ref(prog, refMem);

    bool mismatch = false;
    InstCount checked = 0;
    cpu.addCommitListener([&](const DynInst &inst) {
        if (mismatch)
            return;
        func::StepRecord rec;
        ref.step(rec);
        ++checked;
        if (rec.pc != inst.pc ||
            (inst.si->hasDest && !inst.si->isCall &&
             rec.destValue != inst.result)) {
            ADD_FAILURE() << prog.name << ": divergence at commit "
                          << checked << " (pc " << inst.pc << " vs ref "
                          << rec.pc << ")";
            mismatch = true;
        }
    });
    cpu.run(maxInsts, maxInsts * 60 + 200'000);
    EXPECT_FALSE(mismatch);
    EXPECT_GT(checked, maxInsts / 4);
    cpu.renamer().validate();
}

class RandomProfileCosim : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProfileCosim, VcaMatchesGoldenModel)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const wload::BenchProfile prof = randomProfile(seed);
    const isa::Program prog = wload::generateProgram(prof, true);
    // Register count varies with the seed: exercises plentiful and
    // starved regimes.
    const unsigned physRegs = 72 + 32 * (seed % 5);
    checkCosim(prog, RenamerKind::Vca, physRegs, 25'000);
}

TEST_P(RandomProfileCosim, ConvWindowMatchesGoldenModel)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const wload::BenchProfile prof = randomProfile(seed);
    const isa::Program prog = wload::generateProgram(prof, true);
    const unsigned physRegs = 160 + 32 * (seed % 3);
    checkCosim(prog, RenamerKind::ConvWindow, physRegs, 25'000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProfileCosim,
                         ::testing::Range(1, 9));

TEST(CrossArch, AllArchitecturesCommitTheSameStream)
{
    // Hash the first N committed (pc, result) pairs per architecture;
    // the windowed machines share a stream, the baseline has its own
    // binary (different ABI), so compare within ABI groups.
    const auto &prof = wload::profileByName("gap");
    const InstCount n = 30'000;

    auto streamHash = [&](RenamerKind kind, unsigned physRegs) {
        const isa::Program *prog = wload::cachedProgram(
            prof, kind != RenamerKind::Baseline);
        CpuParams params = CpuParams::preset(kind, physRegs);
        OooCpu cpu(params, {prog});
        std::uint64_t h = 1469598103934665603ULL;
        InstCount count = 0;
        cpu.addCommitListener([&](const DynInst &inst) {
            if (count >= n)
                return;
            ++count;
            h ^= inst.pc;
            h *= 1099511628211ULL;
            if (inst.si->hasDest) {
                h ^= inst.result;
                h *= 1099511628211ULL;
            }
        });
        cpu.run(n, n * 60 + 100'000);
        EXPECT_GE(count, n) << renamerKindName(kind);
        return h;
    };

    const std::uint64_t ideal = streamHash(RenamerKind::IdealWindow, 128);
    const std::uint64_t conv = streamHash(RenamerKind::ConvWindow, 256);
    const std::uint64_t vcaBig = streamHash(RenamerKind::Vca, 256);
    const std::uint64_t vcaTiny = streamHash(RenamerKind::Vca, 72);
    EXPECT_EQ(ideal, conv);
    EXPECT_EQ(ideal, vcaBig);
    EXPECT_EQ(ideal, vcaTiny)
        << "register starvation must never change results";
}

TEST(VcaStress, ExtremeGeometriesKeepInvariants)
{
    const auto &prof = wload::profileByName("perlbmk_535");
    const isa::Program *prog = wload::cachedProgram(prof, true);

    struct Geometry
    {
        unsigned physRegs, sets, assoc, astq, rsids, ports;
    };
    const Geometry configs[] = {
        {64, 16, 2, 1, 2, 4},
        {80, 64, 1, 2, 4, 6},
        {96, 32, 8, 8, 16, 8},
        {200, 128, 2, 4, 8, 8},
        {448, 64, 6, 16, 32, 12},
    };
    for (const Geometry &g : configs) {
        CpuParams params = CpuParams::preset(RenamerKind::Vca,
                                             g.physRegs);
        params.vcaTableSets = g.sets;
        params.vcaTableAssoc = g.assoc;
        params.astqEntries = g.astq;
        params.rsidEntries = g.rsids;
        params.vcaRenamePorts = g.ports;
        OooCpu cpu(params, {prog});
        auto res = cpu.run(15'000, 3'000'000);
        EXPECT_GT(res.totalInsts, 1000u)
            << "regs=" << g.physRegs << " sets=" << g.sets;
        EXPECT_NO_THROW(cpu.renamer().validate())
            << "regs=" << g.physRegs << " sets=" << g.sets;
    }
}

TEST(VcaStress, TinyRsidTableStillCorrect)
{
    // With only 2 RSIDs and deep windows the translation table must
    // flush and reuse identifiers; correctness must be unaffected.
    const auto &prof = wload::profileByName("perlbmk_535");
    const isa::Program prog = *wload::cachedProgram(prof, true);
    CpuParams params = CpuParams::preset(RenamerKind::Vca, 128);
    params.rsidEntries = 2;
    params.rsidOffsetBits = 10; // 1 KiB regions: ~3 frames per RSID
    OooCpu cpu(params, {&prog});

    mem::SparseMemory refMem;
    func::FuncSim ref(prog, refMem);
    bool mismatch = false;
    cpu.addCommitListener([&](const DynInst &inst) {
        func::StepRecord rec;
        ref.step(rec);
        mismatch = mismatch || rec.pc != inst.pc;
    });
    cpu.run(20'000, 4'000'000);
    EXPECT_FALSE(mismatch);
    cpu.renamer().validate();
}

TEST(Determinism, TimingRunsAreExactlyRepeatable)
{
    const auto &prof = wload::profileByName("twolf");
    const isa::Program *prog = wload::cachedProgram(prof, true);
    auto runOnce = [&] {
        CpuParams params = CpuParams::preset(RenamerKind::Vca, 160);
        OooCpu cpu(params, {prog});
        auto r = cpu.run(40'000, 4'000'000);
        return std::make_pair(r.cycles, r.dcacheAccesses);
    };
    const auto a = runOnce();
    const auto b = runOnce();
    EXPECT_EQ(a.first, b.first);
    EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(ThreadPoolProperty, RandomCancellationInterleavingsAlwaysDrain)
{
    // Random mixes of submission and cancellation against pools of
    // every size: wait() must always return (no deadlock, no lost
    // wakeup), every job not successfully cancelled runs exactly once,
    // and every successfully cancelled job runs never.
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        for (const std::uint64_t seed : {1u, 2u, 3u}) {
            Rng rng(seed * 0x9e37 + threads);
            ThreadPool pool(threads);
            constexpr size_t n = 400;
            std::vector<std::atomic<unsigned>> runs(n);
            std::vector<ThreadPool::JobId> ids(n);
            std::vector<bool> cancelled(n, false);

            for (size_t i = 0; i < n; ++i) {
                ids[i] = pool.submit([&runs, i] {
                    runs[i].fetch_add(1, std::memory_order_relaxed);
                });
                // Occasionally cancel a random earlier job; cancel()
                // itself reports whether it won the race.
                if (rng.chance(0.4)) {
                    const size_t victim = rng.below(i + 1);
                    if (!cancelled[victim] &&
                        pool.cancel(ids[victim]))
                        cancelled[victim] = true;
                }
            }
            pool.wait();

            size_t executed = 0, skipped = 0;
            for (size_t i = 0; i < n; ++i) {
                const unsigned r =
                    runs[i].load(std::memory_order_relaxed);
                ASSERT_LE(r, 1u) << "job " << i << " ran " << r
                                 << " times";
                if (cancelled[i]) {
                    EXPECT_EQ(r, 0u)
                        << "cancelled job " << i << " still ran";
                    ++skipped;
                } else {
                    EXPECT_EQ(r, 1u) << "job " << i << " lost";
                    ++executed;
                }
            }
            EXPECT_EQ(executed + skipped, n);
        }
    }
}

TEST(ThreadPoolProperty, RecursiveSubmissionDrainsBeforeWaitReturns)
{
    // Jobs submitted from inside pool workers land on the submitting
    // worker's own queue; wait() must still cover them.
    for (const unsigned threads : {1u, 3u}) {
        ThreadPool pool(threads);
        std::atomic<unsigned> leaves{0};
        constexpr unsigned fanout = 5;
        for (unsigned i = 0; i < 20; ++i) {
            pool.submit([&pool, &leaves] {
                for (unsigned c = 0; c < fanout; ++c)
                    pool.submit([&leaves] {
                        leaves.fetch_add(1,
                                         std::memory_order_relaxed);
                    });
            });
        }
        pool.wait();
        EXPECT_EQ(leaves.load(), 20 * fanout);
    }
}

TEST(CacheProperty, MeasurementJsonRoundTripIsLossless)
{
    // The on-disk cache stores Measurements through measurementToJson;
    // a cache hit must be indistinguishable from a fresh simulation,
    // so the round trip has to preserve every bit of every double
    // (including the awkward ones) and every dynamic field.
    const double awkward[] = {1.0 / 3.0,    0.1,   1e-300, 1e300,
                              123456789.25, 0.0,   -0.0,   42.0,
                              5e-324 /* min denormal */};
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
        Rng rng(seed * 131 + 9);
        analysis::Measurement m;
        m.ok = rng.chance(0.8);
        if (!m.ok)
            m.error = "needs \"quotes\", back\\slashes\nand newlines";
        m.cycles = rng.below(1'000'000'000);
        m.insts = rng.below(1'000'000'000);
        m.ipc = rng.uniform() * 8;
        m.cpi = m.ipc > 0 ? 1 / m.ipc : 0;
        m.dcacheAccesses = awkward[rng.below(std::size(awkward))];
        m.dcacheAccPerInst = rng.uniform();
        const size_t nThreads = 1 + rng.below(4);
        for (size_t t = 0; t < nThreads; ++t) {
            m.threadCpi.push_back(rng.uniform() * 10);
            m.threadDcachePerInst.push_back(
                awkward[rng.below(std::size(awkward))]);
            m.threadInsts.push_back(rng.below(1'000'000));
        }
        const size_t nBuckets = rng.below(6);
        for (size_t b = 0; b < nBuckets; ++b)
            m.cycleBreakdown.emplace_back(
                "bucket_" + std::to_string(b),
                awkward[rng.below(std::size(awkward))]);
        m.counters.emplace_back("stalls_table_conflict",
                                rng.uniform() * 1e6);
        m.counters.emplace_back("stalls_astq",
                                awkward[rng.below(std::size(awkward))]);

        const std::string json = analysis::measurementToJson(m);
        const analysis::Measurement back =
            analysis::measurementFromJson(json);
        EXPECT_TRUE(m == back) << "seed " << seed << ": " << json;
        // And the round trip is a fixed point: serializing again
        // yields byte-identical JSON (what the determinism test
        // compares across worker counts).
        EXPECT_EQ(json, analysis::measurementToJson(back));
    }
}

} // namespace
