/**
 * @file
 * The Virtual Context Architecture renamer (paper Section 2).
 *
 * Renaming is a two-stage process: (1) each architectural register
 * index is combined with the thread's context base pointer(s) to form
 * a logical-register memory address; (2) the address is looked up in a
 * tagged set-associative rename table backed by the RSID translation
 * table. Source misses allocate a physical register and enqueue a fill
 * through the ASTQ; replacement of dirty committed registers enqueues
 * spills. The physical register file acts as a cache of the
 * memory-mapped logical register space.
 *
 * Per-thread state is only the two base pointers (windowed + global);
 * a call or return changes context by moving the windowed base pointer
 * one frame, with no table flush (Sections 2.1.4-2.1.5).
 *
 * With `ideal` set, the same renamer models the paper's idealized
 * register-window machine: spills and fills are instantaneous and free
 * (no ASTQ, no cache traffic, no table-capacity or port limits, no
 * extra rename stage) - a lower bound for any windowed implementation.
 */

#ifndef VCA_CORE_VCA_RENAMER_HH
#define VCA_CORE_VCA_RENAMER_HH

#include <vector>

#include "core/astq.hh"
#include "core/reg_cache_probe.hh"
#include "core/rename_table.hh"
#include "core/rsid_table.hh"
#include "core/reg_state.hh"
#include "cpu/params.hh"
#include "cpu/phys_regfile.hh"
#include "cpu/renamer.hh"
#include "stats/statistics.hh"

namespace vca::core {

class VcaRenamer : public cpu::Renamer
{
  public:
    VcaRenamer(const cpu::CpuParams &params, cpu::PhysRegFile &regs,
               std::vector<mem::SparseMemory *> memories, bool ideal,
               stats::StatGroup *parent);

    void setThreadContext(ThreadId tid, bool windowedAbi) override;
    void beginCycle(Cycle now) override;
    bool rename(cpu::DynInst &inst, Cycle now) override;
    cpu::CommitAction commitInst(cpu::DynInst &inst) override;
    void squashInst(cpu::DynInst &inst) override;
    unsigned recoveryCycles(unsigned instsBeforeBranch) const override;
    unsigned extraFrontendCycles() const override;

    bool hasTransferOp() const override { return !ideal_ && !astq_.empty(); }
    cpu::TransferOp popTransferOp() override;
    void transferDone(const cpu::TransferOp &op) override;
    StallCause lastStallCause() const override { return lastStall_; }

    void validate() const override;

    void switchIn(ThreadId tid, const func::ArchState &state) override;
    std::uint64_t readArchReg(ThreadId tid, isa::RegClass cls,
                              RegIndex idx) override;
    Addr relocateRegSpace(ThreadId tid, Addr addr) const override;

    /** Logical-register memory address for a register of a thread. */
    Addr regAddress(ThreadId tid, isa::RegClass cls, RegIndex idx) const;

    /** Current windowed base pointer (tests). */
    Addr windowBase(ThreadId tid) const { return threads_.at(tid).wbp; }

    const RenameTable &table() const { return table_; }
    const RegStateArray &regState() const { return regState_; }
    const cpu::CpuParams &params() const { return params_; }
    bool ideal() const { return ideal_; }

    /**
     * Attach (or detach, with nullptr) a telemetry probe observing the
     * register-cache access stream. Not owned. Compiled out entirely
     * under VCA_NTELEMETRY; when compiled in but detached the cost is
     * one predictable branch per observed event.
     */
    void
    attachProbe(RegCacheProbe *probe)
    {
#ifndef VCA_NTELEMETRY
        probe_ = probe;
#else
        (void)probe;
#endif
    }

    // Statistics.
    stats::Scalar fills;
    stats::Scalar spills;
    stats::Scalar tableMisses;
    stats::Scalar tableHits;
    stats::Scalar stallsNoFreeReg;
    stats::Scalar stallsTableConflict;
    stats::Scalar stallsPorts;
    stats::Scalar stallsAstq;
    stats::Scalar stallsRsid;
    stats::Scalar overwriteFrees; ///< registers freed without spill
    stats::Scalar deadValueHints; ///< frame registers marked dead (ext.)

  private:
    struct ThreadCtx
    {
        bool windowedAbi = false;
        Addr gbp = 0; ///< global (non-windowed) base pointer
        Addr wbp = 0; ///< windowed base pointer (speculative)
    };

    /**
     * Ensure addr has a table entry; may evict another entry (spilling
     * its dirty committed register). Returns nullptr on stall.
     */
    TableEntry *getEntry(Addr addr, bool &stalled);

    /** Allocate a physical register (free list or replacement). */
    PhysRegIndex allocPhys(bool &stalled);

    /** Spill a committed dirty register (value captured now). */
    bool enqueueSpill(PhysRegIndex reg);

    /** Free a physical register (must be unpinned). */
    void freePhys(PhysRegIndex reg);

    /** RSID reference counting (no-ops in ideal mode). */
    void addEntryRsidRef(const TableEntry *entry);
    void dropEntryRsidRef(const TableEntry *entry);

    /** Flush every register tagged with an RSID; false if any pinned. */
    bool flushRsid(int rsid);

    /** Dead-value extension: kill the departing frame's cached values. */
    void applyDeadFrameHint(Addr frameBase);

    mem::SparseMemory &memoryFor(Addr addr, ThreadId tid);

    const cpu::CpuParams &params_;
    cpu::PhysRegFile &regs_;
    std::vector<mem::SparseMemory *> memories_;
    bool ideal_;

    RenameTable table_;
    RsidTable rsid_;
    Astq astq_;
    RegStateArray regState_;
    std::vector<ThreadCtx> threads_;

    // Per-cycle rename-port accounting (reads of the same address are
    // combined and use a single port, Section 3).
    std::vector<Addr> cycleReadAddrs_;
    unsigned portsUsed_ = 0;

    // Stall-taxonomy breadcrumb: updated wherever a stall counter
    // increments (ASTQ sites are transfer backpressure, the rest are
    // free-list-class pressure); read by the pipeline on refusal.
    StallCause lastStall_ = StallCause::FreeList;

#ifndef VCA_NTELEMETRY
    RegCacheProbe *probe_ = nullptr;
#endif
};

} // namespace vca::core

#endif // VCA_CORE_VCA_RENAMER_HH
