#include "analysis/experiment.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <numeric>

#include "analysis/sampling.hh"
#include "func/func_sim.hh"
#include "sim/logging.hh"
#include "stats/host_stats.hh"
#include "telemetry/reg_cache_analyzer.hh"

namespace vca::analysis {

using cpu::RenamerKind;

namespace {

std::atomic<std::uint64_t> runTimingCalls{0};

void
applyOverrides(cpu::CpuParams &params, const ParamOverrides &ov)
{
    if (ov.vcaTableAssoc)
        params.vcaTableAssoc = ov.vcaTableAssoc;
    if (ov.astqEntries)
        params.astqEntries = ov.astqEntries;
    if (ov.rsidEntries)
        params.rsidEntries = ov.rsidEntries;
    if (ov.vcaRenamePorts)
        params.vcaRenamePorts = ov.vcaRenamePorts;
    if (ov.vcaCheckpointRecovery >= 0)
        params.vcaCheckpointRecovery = ov.vcaCheckpointRecovery != 0;
    if (ov.vcaDeadValueHints >= 0)
        params.vcaDeadValueHints = ov.vcaDeadValueHints != 0;
}

} // namespace

std::uint64_t
runTimingCallCount()
{
    return runTimingCalls.load();
}

bool
usesWindowedBinary(RenamerKind kind)
{
    return kind != RenamerKind::Baseline;
}

Measurement
runTiming(const std::vector<const isa::Program *> &programs,
          RenamerKind kind, unsigned physRegs, const RunOptions &opts)
{
    runTimingCalls.fetch_add(1, std::memory_order_relaxed);
    Measurement m;
    cpu::CpuParams params = cpu::CpuParams::preset(
        kind, physRegs, static_cast<unsigned>(programs.size()));
    params.dcachePorts = opts.dcachePorts;
    applyOverrides(params, opts.overrides);
    if (opts.seed)
        params.rngSeed = opts.seed;

    // Non-detailed modes share the exact same parameter construction
    // (preset, ports, ablation overrides, seeding) and hand off here.
    if (opts.mode != SimMode::Detailed)
        return runSampledTiming(programs, kind, physRegs, opts, params);

    try {
        // Host-throughput accounting covers the whole detailed
        // simulation (warmup + measured interval): that is the wall
        // time a sweep point actually costs.
        const auto hostStart = std::chrono::steady_clock::now();
        cpu::OooCpu cpu(params, programs);
        std::unique_ptr<telemetry::RegCacheAnalyzer> analyzer;
        if (opts.regTelemetry)
            analyzer = telemetry::attachRegCacheAnalyzer(cpu);
        cpu.run(opts.warmupInsts, opts.warmupInsts * 200 + 100'000,
                opts.stopOnFirstThread);
        const InstCount warmupInsts = cpu.committedTotal.value();
        const Cycle warmupCycles = cpu.currentCycle();
        cpu.resetStats();
        auto res = cpu.run(opts.measureInsts,
                           opts.measureInsts * 200 + 100'000,
                           opts.stopOnFirstThread);
        const std::chrono::duration<double> hostElapsed =
            std::chrono::steady_clock::now() - hostStart;
        // Telemetry runs carry observer overhead by design; keep them
        // out of the host-throughput trajectory.
        if (!opts.regTelemetry) {
            stats::HostStats::global().record(
                hostElapsed.count(),
                static_cast<double>(warmupInsts + res.totalInsts),
                static_cast<double>(warmupCycles + res.cycles));
        }
        m.ok = true;
        m.cycles = res.cycles;
        m.insts = res.totalInsts;
        m.ipc = res.ipc;
        m.cpi = res.totalInsts
            ? static_cast<double>(res.cycles) / res.totalInsts : 0.0;
        m.dcacheAccesses = res.dcacheAccesses;
        m.dcacheAccPerInst = res.totalInsts
            ? res.dcacheAccesses / res.totalInsts : 0.0;
        m.threadInsts = res.threadInsts;
        for (InstCount ti : res.threadInsts) {
            m.threadCpi.push_back(
                ti ? static_cast<double>(res.cycles) / ti : 0.0);
            m.threadDcachePerInst.push_back(m.dcacheAccPerInst);
        }
        const double cycles = std::max(1.0, double(res.cycles));
        const auto &ca = cpu.cycleAccounting;
        m.cycleBreakdown = {
            {"commit", ca.commitActive.value() / cycles},
            {"mem", ca.memStall.value() / cycles},
            {"exec", ca.execStall.value() / cycles},
            {"rename", ca.renameFreeList.value() / cycles},
            {"window", ca.windowShift.value() / cycles},
            {"frontend", ca.frontendStall.value() / cycles},
        };
        // Raw counters the ablation benches drill into. Only present
        // on configurations that register them (the VCA renamer).
        const auto *group = static_cast<const stats::StatGroup *>(&cpu);
        for (const char *name :
             {"stalls_table_conflict", "stalls_astq"}) {
            if (const auto *s = dynamic_cast<const stats::Scalar *>(
                    group->find(name)))
                m.counters.emplace_back(name, s->value());
        }
        if (analyzer) {
            m.counters.emplace_back("fills_compulsory",
                                    analyzer->fillsCompulsory.value());
            m.counters.emplace_back("fills_capacity",
                                    analyzer->fillsCapacity.value());
            m.counters.emplace_back("fills_conflict",
                                    analyzer->fillsConflict.value());
            m.counters.emplace_back("shadow_hits",
                                    analyzer->shadowHits.value());
        }
    } catch (const FatalError &e) {
        m.ok = false;
        m.error = e.what();
    }
    return m;
}

Measurement
runBench(const wload::BenchProfile &profile, RenamerKind kind,
         unsigned physRegs, const RunOptions &opts)
{
    const isa::Program *prog =
        wload::cachedProgram(profile, usesWindowedBinary(kind));
    return runTiming({prog}, kind, physRegs, opts);
}

namespace {

struct PathInfo
{
    InstCount insts;
    InstCount memOps;
};

PathInfo
pathInfo(const wload::BenchProfile &profile, bool windowed)
{
    static std::mutex mutex;
    static std::map<std::pair<std::string, bool>, PathInfo> cache;
    std::lock_guard<std::mutex> lock(mutex);
    const auto key = std::make_pair(profile.name, windowed);
    auto it = cache.find(key);
    if (it == cache.end()) {
        mem::SparseMemory memory;
        func::FuncSim sim(*wload::cachedProgram(profile, windowed),
                          memory);
        const auto stats = sim.run(2'000'000'000ULL);
        if (!sim.halted())
            fatal("benchmark '%s' did not run to completion",
                  profile.name.c_str());
        it = cache.emplace(key,
                           PathInfo{stats.insts,
                                    stats.loads + stats.stores}).first;
    }
    return it->second;
}

} // namespace

InstCount
pathLength(const wload::BenchProfile &profile, bool windowed)
{
    return pathInfo(profile, windowed).insts;
}

InstCount
memOpCount(const wload::BenchProfile &profile, bool windowed)
{
    return pathInfo(profile, windowed).memOps;
}

double
executionTime(const wload::BenchProfile &profile, RenamerKind kind,
              const Measurement &m)
{
    return m.cpi * static_cast<double>(
        pathLength(profile, usesWindowedBinary(kind)));
}

double
totalDcacheAccesses(const wload::BenchProfile &profile, RenamerKind kind,
                    const Measurement &m)
{
    return m.dcacheAccPerInst * static_cast<double>(
        pathLength(profile, usesWindowedBinary(kind)));
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

} // namespace vca::analysis
