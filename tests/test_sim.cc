/**
 * @file
 * Tests for the sim substrate (options parsing, RNG determinism,
 * logging behaviour) and the commit tracer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/ooo_cpu.hh"
#include "cpu/tracer.hh"
#include "sim/logging.hh"
#include "sim/options.hh"
#include "sim/rng.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace {

using namespace vca;

// ---------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------

TEST(Options, DefaultsAndOverrides)
{
    Options o;
    o.add("regs", "256", "registers");
    o.add("arch", "vca", "architecture");
    o.add("fast", "false", "a flag");
    const char *argv[] = {"prog", "--regs=128", "--fast", "pos1"};
    ASSERT_TRUE(o.parse(4, argv));
    EXPECT_EQ(o.getU64("regs"), 128u);
    EXPECT_EQ(o.get("arch"), "vca");
    EXPECT_TRUE(o.getBool("fast"));
    ASSERT_EQ(o.positional().size(), 1u);
    EXPECT_EQ(o.positional()[0], "pos1");
}

TEST(Options, SpaceSeparatedValue)
{
    Options o;
    o.add("bench", "crafty", "");
    const char *argv[] = {"prog", "--bench", "mesa"};
    ASSERT_TRUE(o.parse(3, argv));
    EXPECT_EQ(o.get("bench"), "mesa");
}

TEST(Options, NoPrefixDisablesFlag)
{
    Options o;
    o.add("stats", "true", "");
    const char *argv[] = {"prog", "--no-stats"};
    ASSERT_TRUE(o.parse(2, argv));
    EXPECT_FALSE(o.getBool("stats"));
}

TEST(Options, UnknownOptionFails)
{
    Options o;
    o.add("regs", "256", "");
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_FALSE(o.parse(2, argv));
    EXPECT_NE(o.error().find("bogus"), std::string::npos);
}

TEST(Options, MissingValueFails)
{
    Options o;
    o.add("bench", "crafty", "");
    const char *argv[] = {"prog", "--bench"};
    EXPECT_FALSE(o.parse(2, argv));
}

TEST(Options, UsageListsEverything)
{
    Options o;
    o.add("alpha", "1", "the alpha knob");
    o.add("beta", "x", "the beta knob");
    const std::string u = o.usage("tool");
    EXPECT_NE(u.find("--alpha"), std::string::npos);
    EXPECT_NE(u.find("the beta knob"), std::string::npos);
}

TEST(Options, UnregisteredGetPanics)
{
    Options o;
    EXPECT_THROW(o.get("nope"), PanicError);
}

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto x = a.next();
        EXPECT_EQ(x, b.next());
    }
    // Different seed diverges immediately with overwhelming likelihood.
    Rng a2(42);
    EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, BelowIsUnbiasedEnough)
{
    Rng r(7);
    unsigned counts[10] = {};
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        ++counts[r.below(10)];
    for (unsigned c : counts) {
        EXPECT_GT(c, n / 10 - n / 50);
        EXPECT_LT(c, n / 10 + n / 50);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10'000; ++i) {
        const auto v = r.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo = sawLo || v == -3;
        sawHi = sawHi || v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10'000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, GeometricRespectsCap)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(r.geometric(0.9, 5), 5u);
}

// ---------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------

TEST(Logging, PanicThrowsWithMessage)
{
    try {
        panic("bad thing %d", 7);
        FAIL() << "panic must throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("bad thing 7"),
                  std::string::npos);
    }
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error"), FatalError);
}

// ---------------------------------------------------------------------
// Commit tracer
// ---------------------------------------------------------------------

TEST(Tracer, EmitsBoundedReadableLines)
{
    setQuiet(true);
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("crafty"), true);
    cpu::CpuParams params =
        cpu::CpuParams::preset(cpu::RenamerKind::Vca, 192);
    cpu::OooCpu cpu(params, {prog});

    std::ostringstream os;
    cpu::TraceOptions topts;
    topts.maxInsts = 25;
    cpu::attachCommitTracer(cpu, os, topts);
    cpu.run(1000, 500'000);

    const std::string text = os.str();
    unsigned lines = 0;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        ++lines;
    EXPECT_EQ(lines, 25u) << "tracing must stop at maxInsts";
    EXPECT_NE(text.find("T0"), std::string::npos);
    EXPECT_NE(text.find("D=0x"), std::string::npos);
}

} // namespace
