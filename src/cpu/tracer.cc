#include "cpu/tracer.hh"

#include <iomanip>
#include <memory>
#include <sstream>

namespace vca::cpu {

std::string
formatTraceLine(const OooCpu &cpu, const DynInst &inst,
                const TraceOptions &opts)
{
    std::ostringstream os;
    os << std::setw(10) << cpu.currentCycle() << ": T" << int(inst.tid)
       << " " << std::setw(7) << inst.pc << ": "
       << std::left << std::setw(24) << isa::disassemble(*inst.si)
       << std::right;
    if (opts.values && inst.si->hasDest) {
        os << " D=0x" << std::hex << inst.result << std::dec;
    }
    if (opts.memAddrs && inst.si->isMem() && inst.effAddrValid) {
        os << " A=0x" << std::hex << inst.effAddr << std::dec;
    }
    if (inst.mispredicted)
        os << " [mispredicted]";
    return os.str();
}

void
attachCommitTracer(OooCpu &cpu, std::ostream &os, TraceOptions opts)
{
    auto count = std::make_shared<InstCount>(0);
    cpu.addCommitListener([&cpu, &os, opts, count](const DynInst &inst) {
        if (opts.maxInsts && *count >= opts.maxInsts)
            return;
        ++*count;
        os << formatTraceLine(cpu, inst, opts) << '\n';
    });
}

trace::PipeRecord
makePipeRecord(const OooCpu &cpu, const DynInst &inst)
{
    trace::PipeRecord rec;
    rec.seq = inst.seq;
    rec.tid = inst.tid;
    rec.pc = inst.pc;
    rec.fetch = inst.fetchTick;
    rec.decode = inst.decodeTick;
    rec.rename = inst.renameTick;
    rec.dispatch = inst.dispatchTick;
    rec.issue = inst.issueTick;
    rec.complete = inst.completeTick;
    rec.commit = cpu.currentCycle();
    rec.isStore = inst.isStore();
    // The store buffer drains after the instruction is released, so
    // the writeback tick is approximated by the retire tick.
    rec.storeComplete = rec.isStore ? rec.commit : 0;
    rec.disasm = isa::disassemble(*inst.si);
    return rec;
}

void
attachPipeTracer(OooCpu &cpu, std::ostream &os, InstCount maxInsts,
                 bool instants)
{
    auto writer = std::make_shared<trace::PipeTraceWriter>(os);
    cpu.addCommitListener(
        [&cpu, writer, maxInsts](const DynInst &inst) {
            if (maxInsts && writer->recordsWritten() >= maxInsts)
                return;
            writer->write(makePipeRecord(cpu, inst));
        });
    if (!instants)
        return;
    // Telemetry marks share the writer so instants land between (never
    // inside) instruction records in commit order. Spill/fill issues
    // are too frequent to mark individually; aggregate per window.
    struct TransferWindow
    {
        Cycle start = 0;
        Cycle end = 0;
        unsigned spills = 0;
        unsigned fills = 0;
    };
    auto window = std::make_shared<TransferWindow>();
    constexpr Cycle kWindowCycles = 64;
    cpu.addSimEventListener(
        [writer, window, maxInsts](const OooCpu::SimEvent &ev) {
            using Kind = OooCpu::SimEvent::Kind;
            if (maxInsts && writer->recordsWritten() >= maxInsts)
                return;
            switch (ev.kind) {
              case Kind::WindowOverflow:
                writer->instant("window_overflow", ev.cycle);
                return;
              case Kind::WindowUnderflow:
                writer->instant("window_underflow", ev.cycle);
                return;
              case Kind::Spill:
              case Kind::Fill:
                break;
            }
            if (window->end == 0) {
                window->start = ev.cycle;
                window->end = ev.cycle + kWindowCycles;
            }
            while (ev.cycle >= window->end) {
                if (window->spills + window->fills) {
                    writer->instant(
                        "transfers spills=" +
                            std::to_string(window->spills) +
                            " fills=" + std::to_string(window->fills),
                        window->start);
                }
                window->spills = 0;
                window->fills = 0;
                window->start = window->end;
                window->end += kWindowCycles;
            }
            if (ev.kind == Kind::Spill)
                ++window->spills;
            else
                ++window->fills;
        });
}

} // namespace vca::cpu
