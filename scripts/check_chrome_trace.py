#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by vca-sim.

Checks the structural invariants any trace-event consumer (Perfetto,
chrome://tracing) relies on:

  - the file is valid JSON with a non-empty "traceEvents" array;
  - every event has name/ph/pid/tid (and ts for non-metadata events);
  - per (pid, tid) track, timestamps are non-decreasing;
  - B/E duration events balance on every track;
  - metadata (ph == "M") precedes all timeline events.

Usage: check_chrome_trace.py TRACE.json [--min-events N]
Exit status: 0 valid, 1 invalid, 2 usage error.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_chrome_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def check(path, min_events):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{path}: no traceEvents array")
    if len(events) < min_events:
        return fail(f"{path}: only {len(events)} events "
                    f"(expected >= {min_events})")

    last_ts = {}
    depth = {}
    saw_timeline = False
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i}: not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                return fail(f"event {i}: missing {field!r}")
        ph = ev["ph"]
        if ph == "M":
            if saw_timeline:
                return fail(f"event {i}: metadata after timeline events")
            continue
        saw_timeline = True
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            return fail(f"event {i}: missing numeric ts")
        track = (ev["pid"], ev["tid"])
        if track in last_ts and ts < last_ts[track]:
            return fail(f"event {i}: ts {ts} < {last_ts[track]} "
                        f"on track {track}")
        last_ts[track] = ts
        if ph == "B":
            depth[track] = depth.get(track, 0) + 1
        elif ph == "E":
            depth[track] = depth.get(track, 0) - 1
            if depth[track] < 0:
                return fail(f"event {i}: E without matching B "
                            f"on track {track}")
    unbalanced = {t: d for t, d in depth.items() if d != 0}
    if unbalanced:
        return fail(f"unbalanced B/E on tracks: {unbalanced}")

    print(f"check_chrome_trace: OK: {path}: {len(events)} events, "
          f"{len(last_ts)} tracks")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Validate a Chrome trace-event JSON file")
    ap.add_argument("trace", help="trace JSON file to validate")
    ap.add_argument("--min-events", type=int, default=1, metavar="N",
                    help="minimum number of events (default 1)")
    args = ap.parse_args()
    return check(args.trace, args.min_events)


if __name__ == "__main__":
    sys.exit(main())
