/**
 * @file
 * Sparse paged functional memory.
 *
 * Holds the architectural memory contents of one simulated address
 * space. Pages are allocated on first touch and zero-filled, so reads of
 * untouched memory (e.g. down a mispredicted path) return 0 instead of
 * faulting.
 */

#ifndef VCA_MEM_SPARSE_MEMORY_HH
#define VCA_MEM_SPARSE_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace vca::mem {

class SparseMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageBytes = Addr(1) << pageShift;
    static constexpr unsigned wordsPerPage = pageBytes / 8;

    /** Read an aligned 64-bit word (unaligned addresses are rounded). */
    std::uint64_t
    read(Addr addr) const
    {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        return (*page)[wordIndex(addr)];
    }

    /** Write an aligned 64-bit word. */
    void
    write(Addr addr, std::uint64_t value)
    {
        Page &page = getPage(addr);
        page[wordIndex(addr)] = value;
    }

    /** Read as IEEE double (bit pattern reinterpretation). */
    double
    readDouble(Addr addr) const
    {
        std::uint64_t bits = read(addr);
        double d;
        static_assert(sizeof(d) == sizeof(bits));
        __builtin_memcpy(&d, &bits, sizeof(d));
        return d;
    }

    void
    writeDouble(Addr addr, double value)
    {
        std::uint64_t bits;
        __builtin_memcpy(&bits, &value, sizeof(bits));
        write(addr, bits);
    }

    /** Number of pages currently allocated (for tests / footprint). */
    size_t allocatedPages() const { return pages_.size(); }

    /** Drop all contents. */
    void clear() { pages_.clear(); }

  private:
    using Page = std::vector<std::uint64_t>;

    static Addr pageNumber(Addr addr) { return addr >> pageShift; }

    static unsigned
    wordIndex(Addr addr)
    {
        return static_cast<unsigned>((addr & (pageBytes - 1)) >> 3);
    }

    const Page *
    findPage(Addr addr) const
    {
        auto it = pages_.find(pageNumber(addr));
        return it == pages_.end() ? nullptr : &it->second;
    }

    Page &
    getPage(Addr addr)
    {
        auto [it, inserted] = pages_.try_emplace(pageNumber(addr));
        if (inserted)
            it->second.assign(wordsPerPage, 0);
        return it->second;
    }

    std::unordered_map<Addr, Page> pages_;
};

} // namespace vca::mem

#endif // VCA_MEM_SPARSE_MEMORY_HH
