#!/usr/bin/env python3
"""Gate the sampled execution modes against the detailed reference.

Runs matched vca-sim pairs -- one detailed, one sampled (and optionally
one simpoint) -- for every renamer architecture and enforces the two
halves of the sampling contract that tests/test_accuracy.cc pins down
in-process:

  accuracy  |ipc_sampled - ipc_detailed| <= eps * ipc_detailed
            (default eps 0.03; --eps), AND the detailed IPC must fall
            inside the 95% confidence interval the sampled run reports
            on its "sampling:" output line (unbounded n=1 intervals
            pass trivially)
  speed     the functional fast-forward side of each sampled run must
            reach at least --speedup (default 5.0) times the host-MIPS
            of its detailed side, read from the run's own "func:" and
            "host:" output lines

The per-architecture table also reports the CI width and the worst
sample index (the sample whose CPI deviates most from the sampled
mean).

scripts/check.sh calls this after building Release; skip it there with
CHECK_ACCURACY_GATE=0.

Usage:
  accuracy_gate.py --sim PATH/TO/vca-sim [options]

  --sim PATH        the vca-sim binary to drive (required)
  --bench NAME      benchmark to measure (default crafty)
  --archs LIST      comma-separated architectures
                    (default baseline,regwindow,ideal,vca)
  --eps FRAC        allowed fractional IPC error (default 0.03)
  --speedup FACTOR  required functional-vs-detailed host-MIPS ratio
                    (default 5.0)
  --simpoint        also gate --mode=simpoint IPC (same eps)
  --selftest        exercise the output parser on synthetic text; used
                    by scripts/check.sh as a smoke test

Exit status: 0 when every architecture meets both contracts, 1 on a
violation, 2 on usage errors or unparseable simulator output.
"""

import argparse
import os
import re
import subprocess
import sys


class ParseError(Exception):
    """vca-sim output missing a line the gate depends on."""


def parse_run(text):
    """Extract the gate's inputs from one vca-sim run.

    Detailed runs have no "func:" line (func_mips is None) and no
    "sampling:" line (the CI keys are None).
    """
    out = {}
    m = re.search(r"^cycles=\d+ insts=\d+ ipc=([0-9.]+)", text,
                  re.MULTILINE)
    if not m:
        raise ParseError("no 'cycles=... ipc=...' line in output")
    out["ipc"] = float(m.group(1))
    m = re.search(r"^func: seconds=[0-9.]+ insts=[0-9.]+ mips=([0-9.]+)",
                  text, re.MULTILINE)
    out["func_mips"] = float(m.group(1)) if m else None
    m = re.search(r"^host: seconds=[0-9.]+ mips=([0-9.]+)", text,
                  re.MULTILINE)
    if not m:
        raise ParseError("no 'host: ... mips=...' line in output")
    out["host_mips"] = float(m.group(1))
    m = re.search(
        r"^sampling: samples=(\d+) mean_cpi=[0-9.]+ cpi_var=[0-9.]+ "
        r"ci95_cpi=\[[0-9.]+,[0-9.]+\] "
        r"ipc_ci95=\[([0-9.]+),([0-9.]+)\] ci_unbounded=(\d) "
        r"worst_sample=(-?\d+)", text, re.MULTILINE)
    out["samples"] = int(m.group(1)) if m else None
    out["ipc_ci_lo"] = float(m.group(2)) if m else None
    out["ipc_ci_hi"] = float(m.group(3)) if m else None
    out["ci_unbounded"] = bool(int(m.group(4))) if m else None
    out["worst_sample"] = int(m.group(5)) if m else None
    return out


def run_sim(sim, bench, arch, mode, extra=()):
    args = [sim, f"--bench={bench}", f"--arch={arch}"]
    if mode != "detailed":
        args.append(f"--mode={mode}")
    args += list(extra)
    env = dict(os.environ, VCA_CACHE_DIR="")
    proc = subprocess.run(args, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise ParseError(
            f"{' '.join(args)} exited {proc.returncode}: "
            f"{proc.stderr.strip()}")
    return parse_run(proc.stdout)


# Matched budgets (mirroring tests/test_accuracy.cc): after a 240k
# warm-up past the cold-start transient, the sampled run takes
# 48k/2k = 24 quanta, one every 10k instructions, covering
# instructions [250k, ~490k]; the detailed reference measures exactly
# that span in one continuous run. SimPoint estimates steady-state
# whole-program behaviour, so its reference runs detailed from past
# the transient to program end.
DETAILED_ARGS = ("--warmup=250000", "--insts=240000")
SAMPLED_ARGS = ("--warmup=240000", "--sample-period=10000",
                "--sample-quantum=2000", "--sample-detail-warm=3000",
                "--insts=48000")
FULL_ARGS = ("--warmup=240000", "--insts=5000000")
SIMPOINT_ARGS = ("--warmup=20000", "--insts=60000")


def ci_check(arch, detailed_ipc, sampled):
    """CI-containment flag list for one sampled run (empty = pass)."""
    if sampled["ipc_ci_lo"] is None:
        return [f"no 'sampling: ...' line in sampled output"]
    if sampled["ci_unbounded"]:
        return []  # n=1: the interval is unbounded by construction
    if not sampled["ipc_ci_lo"] <= detailed_ipc \
            <= sampled["ipc_ci_hi"]:
        return [f"detailed ipc {detailed_ipc:.4f} outside sampled "
                f"95% CI [{sampled['ipc_ci_lo']:.4f}, "
                f"{sampled['ipc_ci_hi']:.4f}]"]
    return []


def gate(sim, bench, archs, eps, speedup, simpoint):
    failures = []
    print(f"{'arch':<14} {'detailed':>9} {'sampled':>9} {'err':>7} "
          f"{'CI width':>9} {'worst':>6} "
          f"{'func MIPS':>10} {'sim MIPS':>9} {'ratio':>7}")
    for arch in archs:
        detailed = run_sim(sim, bench, arch, "detailed", DETAILED_ARGS)
        sampled = run_sim(sim, bench, arch, "sampled", SAMPLED_ARGS)
        if detailed["ipc"] <= 0:
            raise ParseError(f"{arch}: detailed ipc is zero")
        err = abs(sampled["ipc"] - detailed["ipc"]) / detailed["ipc"]
        if sampled["func_mips"] is None:
            raise ParseError(f"{arch}: sampled run printed no func: "
                             f"line (functional side never ran?)")
        ratio = (sampled["func_mips"] / sampled["host_mips"]
                 if sampled["host_mips"] > 0 else float("inf"))
        flags = []
        if err > eps:
            flags.append(f"ipc error {err:.1%} > {eps:.1%}")
        if ratio < speedup:
            flags.append(f"speedup {ratio:.1f}x < {speedup:.1f}x")
        flags += ci_check(arch, detailed["ipc"], sampled)
        if sampled["ipc_ci_lo"] is not None:
            width = sampled["ipc_ci_hi"] - sampled["ipc_ci_lo"]
            ci_col = ("unbnd" if sampled["ci_unbounded"]
                      else f"{width:.4f}")
            worst_col = str(sampled["worst_sample"])
        else:
            ci_col, worst_col = "n/a", "n/a"
        print(f"{arch:<14} {detailed['ipc']:>9.4f} "
              f"{sampled['ipc']:>9.4f} {err:>6.1%} "
              f"{ci_col:>9} {worst_col:>6} "
              f"{sampled['func_mips']:>10.3f} "
              f"{sampled['host_mips']:>9.3f} {ratio:>6.1f}x"
              + ("  FAIL: " + "; ".join(flags) if flags else ""))
        failures += [f"{arch}: {f}" for f in flags]
        if simpoint:
            full = run_sim(sim, bench, arch, "detailed", FULL_ARGS)
            sp = run_sim(sim, bench, arch, "simpoint", SIMPOINT_ARGS)
            sperr = abs(sp["ipc"] - full["ipc"]) / full["ipc"]
            sp_flags = []
            if sperr > eps:
                sp_flags.append(
                    f"simpoint ipc error {sperr:.1%} > {eps:.1%}")
            sp_flags += [f"simpoint {f}"
                         for f in ci_check(arch, full["ipc"], sp)]
            if sp["ipc_ci_lo"] is not None:
                width = sp["ipc_ci_hi"] - sp["ipc_ci_lo"]
                ci_col = ("unbnd" if sp["ci_unbounded"]
                          else f"{width:.4f}")
                worst_col = str(sp["worst_sample"])
            else:
                ci_col, worst_col = "n/a", "n/a"
            line = (f"{arch + ' (simpoint)':<14} "
                    f"{full['ipc']:>9.4f} {sp['ipc']:>9.4f} "
                    f"{sperr:>6.1%} {ci_col:>9} {worst_col:>6}")
            if sp_flags:
                line += "  FAIL: " + "; ".join(sp_flags)
            print(line)
            failures += [f"{arch}: {f}" for f in sp_flags]
    return failures


def selftest():
    sampled_out = """\
arch=vca regs=192 threads=1 windowed=1 mode=sampled
cycles=12000 insts=24000 ipc=2.0000 cpi=0.5000
thread 0 (crafty): insts=24000
cycle accounting: commit=61.0% mem=20.0%
sampling: samples=12 mean_cpi=0.500000 cpi_var=0.000400 \
ci95_cpi=[0.487000,0.513000] ipc_ci95=[1.949318,2.053388] \
ci_unbounded=0 worst_sample=7
transplant: tag_valid=0.4012 bpred_occupancy=0.1200
func: seconds=0.050 insts=160000 mips=3.200
host: seconds=0.200 mips=0.150 cycles_per_sec=60000
"""
    detailed_out = """\
arch=vca regs=192 threads=1 windowed=1
cycles=30000 insts=60000 ipc=2.0100 cpi=0.4975
thread 0 (crafty): insts=60000
cycle accounting: commit=61.0% mem=20.0%
host: seconds=0.400 mips=0.150 cycles_per_sec=75000
"""
    s = parse_run(sampled_out)
    d = parse_run(detailed_out)
    if s != {"ipc": 2.0, "func_mips": 3.2, "host_mips": 0.15,
             "samples": 12, "ipc_ci_lo": 1.949318,
             "ipc_ci_hi": 2.053388, "ci_unbounded": False,
             "worst_sample": 7}:
        print(f"selftest: FAILED (sampled parse: {s})", file=sys.stderr)
        return 1
    if d["ipc"] != 2.01 or d["func_mips"] is not None \
            or d["ipc_ci_lo"] is not None:
        print(f"selftest: FAILED (detailed parse: {d})", file=sys.stderr)
        return 1
    if ci_check("vca", d["ipc"], s):
        print("selftest: FAILED (CI containment rejected a "
              "contained detailed ipc)", file=sys.stderr)
        return 1
    if not ci_check("vca", 2.10, s):
        print("selftest: FAILED (CI containment accepted an "
              "outside detailed ipc)", file=sys.stderr)
        return 1
    unbounded = dict(s, ci_unbounded=True)
    if ci_check("vca", 2.10, unbounded):
        print("selftest: FAILED (unbounded CI must pass trivially)",
              file=sys.stderr)
        return 1
    if not ci_check("vca", d["ipc"], parse_run(detailed_out)):
        print("selftest: FAILED (missing sampling line must flag)",
              file=sys.stderr)
        return 1
    err = abs(s["ipc"] - d["ipc"]) / d["ipc"]
    if not err <= 0.03:
        print("selftest: FAILED (synthetic pair outside eps)",
              file=sys.stderr)
        return 1
    if s["func_mips"] / s["host_mips"] < 5.0:
        print("selftest: FAILED (synthetic pair under speedup)",
              file=sys.stderr)
        return 1
    try:
        parse_run("no machine-readable lines here\n")
    except ParseError:
        pass
    else:
        print("selftest: FAILED (garbage input not rejected)",
              file=sys.stderr)
        return 1
    print("selftest: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Gate sampled-mode accuracy and speedup")
    ap.add_argument("--sim", help="path to the vca-sim binary")
    ap.add_argument("--bench", default="crafty")
    ap.add_argument("--archs",
                    default="baseline,regwindow,ideal,vca")
    ap.add_argument("--eps", type=float, default=0.03, metavar="FRAC")
    ap.add_argument("--speedup", type=float, default=5.0,
                    metavar="FACTOR")
    ap.add_argument("--simpoint", action="store_true")
    ap.add_argument("--selftest", action="store_true")
    args = ap.parse_args()

    if args.selftest:
        return selftest()
    if not args.sim:
        ap.error("--sim is required")
    if not os.access(args.sim, os.X_OK):
        print(f"error: {args.sim} is not executable", file=sys.stderr)
        return 2
    if not 0.0 < args.eps < 1.0:
        ap.error("--eps must be in (0, 1)")

    try:
        failures = gate(args.sim, args.bench,
                        [a for a in args.archs.split(",") if a],
                        args.eps, args.speedup, args.simpoint)
    except ParseError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if failures:
        print(f"FAIL: {len(failures)} accuracy-contract violation(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("accuracy gate: all architectures within "
          f"{args.eps:.0%} ipc error and >= {args.speedup:.1f}x "
          "functional speedup")
    return 0


if __name__ == "__main__":
    sys.exit(main())
