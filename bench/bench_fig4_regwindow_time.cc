/**
 * @file
 * Figure 4 reproduction: register-window execution time over physical
 * register file sizes {64, 128, 192, 256}, for the baseline, ideal,
 * conventional-register-window and VCA machines, normalized to the
 * baseline with 256 physical registers.
 *
 * Expected shape (paper Section 4.1):
 *  - VCA within ~1% of ideal at 256 registers;
 *  - VCA faster than the baseline at every size, by more at smaller
 *    sizes (4% at 256 -> ~9% at 128);
 *  - conventional windows much slower at small register files;
 *  - the baseline cannot operate at 64 registers.
 */

#include "bench_common.hh"

using namespace vca;
using namespace vca::bench;

int
main()
{
    setQuiet(true);
    const std::vector<unsigned> sizes = {64, 128, 192, 256};
    const auto series =
        regWindowSweep(sizes, defaultOptions(), /*metricIsDcache=*/false);
    printSeries("Figure 4: Register window execution time "
                "(normalized to baseline @ 256)",
                "norm. execution time", sizes, series);
    printCycleAccounting(regWindowArchs(), 192, defaultOptions());
    return finishBench();
}
