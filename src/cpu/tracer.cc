#include "cpu/tracer.hh"

#include <iomanip>
#include <memory>
#include <sstream>

namespace vca::cpu {

std::string
formatTraceLine(const OooCpu &cpu, const DynInst &inst,
                const TraceOptions &opts)
{
    std::ostringstream os;
    os << std::setw(10) << cpu.currentCycle() << ": T" << int(inst.tid)
       << " " << std::setw(7) << inst.pc << ": "
       << std::left << std::setw(24) << isa::disassemble(*inst.si)
       << std::right;
    if (opts.values && inst.si->hasDest) {
        os << " D=0x" << std::hex << inst.result << std::dec;
    }
    if (opts.memAddrs && inst.si->isMem() && inst.effAddrValid) {
        os << " A=0x" << std::hex << inst.effAddr << std::dec;
    }
    if (inst.mispredicted)
        os << " [mispredicted]";
    return os.str();
}

void
attachCommitTracer(OooCpu &cpu, std::ostream &os, TraceOptions opts)
{
    auto count = std::make_shared<InstCount>(0);
    cpu.addCommitListener([&cpu, &os, opts, count](const DynInst &inst) {
        if (opts.maxInsts && *count >= opts.maxInsts)
            return;
        ++*count;
        os << formatTraceLine(cpu, inst, opts) << '\n';
    });
}

trace::PipeRecord
makePipeRecord(const OooCpu &cpu, const DynInst &inst)
{
    trace::PipeRecord rec;
    rec.seq = inst.seq;
    rec.tid = inst.tid;
    rec.pc = inst.pc;
    rec.fetch = inst.fetchTick;
    rec.decode = inst.decodeTick;
    rec.rename = inst.renameTick;
    rec.dispatch = inst.dispatchTick;
    rec.issue = inst.issueTick;
    rec.complete = inst.completeTick;
    rec.commit = cpu.currentCycle();
    rec.isStore = inst.isStore();
    // The store buffer drains after the instruction is released, so
    // the writeback tick is approximated by the retire tick.
    rec.storeComplete = rec.isStore ? rec.commit : 0;
    rec.disasm = isa::disassemble(*inst.si);
    return rec;
}

void
attachPipeTracer(OooCpu &cpu, std::ostream &os, InstCount maxInsts)
{
    auto writer = std::make_shared<trace::PipeTraceWriter>(os);
    cpu.addCommitListener(
        [&cpu, writer, maxInsts](const DynInst &inst) {
            if (maxInsts && writer->recordsWritten() >= maxInsts)
                return;
            writer->write(makePipeRecord(cpu, inst));
        });
}

} // namespace vca::cpu
