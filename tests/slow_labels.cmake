# Included by ctest after the gtest discovery scripts (see
# TEST_INCLUDE_FILES in CMakeLists.txt). Adds the `slow` label to the
# long-running tests; gtest_discover_tests cannot pass list-valued
# properties through its PROPERTIES argument.
set_tests_properties(Determinism.SameNumbersAtAnyJobCount
    PROPERTIES LABELS "golden;slow")
