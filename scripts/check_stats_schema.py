#!/usr/bin/env python3
"""Validate a vca-sim --stats-json document against the current schema.

The document schema is versioned by the "schemaVersion" root key
(src/trace/stats_json.hh, kStatsJsonSchemaVersion). This validator
checks the structural contract the downstream tools (vca-explain,
plot scripts, regression tracking) rely on:

  - schemaVersion == 2 and the config/summary/cpu root blocks exist
    with the right field types;
  - the flat six-bucket cycle accounting partitions cpu.cycles
    exactly (commit_active + mem_stall + exec_stall + rename_freelist
    + window_shift + frontend == cycles);
  - the hierarchical taxonomy partitions cpu.cycles exactly, at the
    machine level and independently per hardware-thread subtree; an
    all-zero taxonomy is tolerated (VCA_NTELEMETRY build) because the
    group is registered either way to keep the schema stable;
  - intervals (when present) have strictly increasing committed_cum,
    non-negative cycle spans, and a "partial" flag that may only be
    set on the final record.

Usage:
  check_stats_schema.py FILE.json [FILE2.json ...]
  check_stats_schema.py --selftest

Exit status: 0 when every file validates, 1 on a validation failure,
2 on usage/input errors.
"""

import json
import sys

EXPECTED_VERSION = 2

FLAT_BUCKETS = ("commit_active", "mem_stall", "exec_stall",
                "rename_freelist", "window_shift", "frontend")


def fail(errors, msg):
    errors.append(msg)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def taxonomy_leaf_sum(group, skip_threads=True):
    """Sum every scalar under a taxonomy (sub)group, recursively."""
    total = 0.0
    for name, value in group.items():
        if skip_threads and name.startswith("thread"):
            continue
        if is_num(value):
            total += value
        elif isinstance(value, dict):
            total += taxonomy_leaf_sum(value, skip_threads=False)
    return total


def validate(doc, where):
    """Return a list of error strings (empty when the doc is valid)."""
    errors = []
    if not isinstance(doc, dict):
        return [f"{where}: document is not a JSON object"]

    version = doc.get("schemaVersion")
    if version != EXPECTED_VERSION:
        fail(errors, f"{where}: schemaVersion is {version!r}, "
                     f"expected {EXPECTED_VERSION}")

    config = doc.get("config")
    if not isinstance(config, dict):
        fail(errors, f"{where}: missing config object")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        fail(errors, f"{where}: missing summary object")
    else:
        for key in ("cycles", "insts", "ipc"):
            if not is_num(summary.get(key)):
                fail(errors, f"{where}: summary.{key} is not a number")

    cpu = doc.get("cpu")
    if not isinstance(cpu, dict):
        fail(errors, f"{where}: missing cpu stats group")
        return errors
    cycles = cpu.get("cycles")
    if not is_num(cycles):
        fail(errors, f"{where}: cpu.cycles is not a number")
        return errors
    if isinstance(summary, dict) and summary.get("cycles") != cycles:
        fail(errors, f"{where}: summary.cycles ({summary.get('cycles')})"
                     f" != cpu.cycles ({cycles})")

    accounting = cpu.get("cycle_accounting")
    if not isinstance(accounting, dict):
        fail(errors, f"{where}: missing cpu.cycle_accounting group")
        return errors
    flat_sum = 0.0
    for bucket in FLAT_BUCKETS:
        value = accounting.get(bucket)
        if not is_num(value):
            fail(errors, f"{where}: cycle_accounting.{bucket} is not "
                         f"a number")
            return errors
        flat_sum += value
    if flat_sum != cycles:
        fail(errors, f"{where}: flat cycle accounting sums to "
                     f"{flat_sum}, expected cpu.cycles == {cycles}")

    taxonomy = accounting.get("taxonomy")
    if not isinstance(taxonomy, dict):
        fail(errors, f"{where}: missing cycle_accounting.taxonomy "
                     f"group")
    else:
        machine = taxonomy_leaf_sum(taxonomy)
        if machine != 0 and machine != cycles:
            fail(errors, f"{where}: taxonomy leaves sum to {machine}, "
                         f"expected 0 (VCA_NTELEMETRY) or cpu.cycles "
                         f"== {cycles}")
        for name, sub in taxonomy.items():
            if not name.startswith("thread"):
                continue
            if not isinstance(sub, dict):
                fail(errors, f"{where}: taxonomy.{name} is not a "
                             f"group")
                continue
            tsum = taxonomy_leaf_sum(sub, skip_threads=False)
            if tsum != 0 and tsum != cycles:
                fail(errors, f"{where}: taxonomy.{name} leaves sum "
                             f"to {tsum}, expected 0 or cpu.cycles "
                             f"== {cycles}")

    intervals = doc.get("intervals")
    if intervals is not None:
        if not isinstance(intervals, list):
            fail(errors, f"{where}: intervals is not an array")
            return errors
        prev_cum = 0
        for i, rec in enumerate(intervals):
            tag = f"{where}: intervals[{i}]"
            if not isinstance(rec, dict):
                fail(errors, f"{tag}: not an object")
                continue
            for key in ("start_cycle", "end_cycle", "committed",
                        "committed_cum"):
                if not is_num(rec.get(key)):
                    fail(errors, f"{tag}: {key} is not a number")
            cum = rec.get("committed_cum")
            if is_num(cum):
                if cum <= prev_cum:
                    fail(errors, f"{tag}: committed_cum {cum} does "
                                 f"not increase (previous {prev_cum})")
                prev_cum = cum
            if (is_num(rec.get("start_cycle")) and
                    is_num(rec.get("end_cycle")) and
                    rec["end_cycle"] < rec["start_cycle"]):
                fail(errors, f"{tag}: end_cycle precedes start_cycle")
            partial = rec.get("partial")
            if not isinstance(partial, bool):
                fail(errors, f"{tag}: partial flag is not a boolean")
            elif partial and i != len(intervals) - 1:
                fail(errors, f"{tag}: partial on a non-final record")
    return errors


def check_file(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        return 2
    errors = validate(doc, path)
    for msg in errors:
        print(f"error: {msg}", file=sys.stderr)
    if not errors:
        print(f"{path}: OK (schemaVersion {EXPECTED_VERSION})")
    return 1 if errors else 0


def make_valid_doc():
    leaves = {
        "retiring": 60, "idle": 0,
        "frontend_bound": {"icache": 5, "fetch": 10},
        "bad_speculation": {"recovery": 0},
        "backend_core": {"exec": 10, "rename_freelist": 0},
        "backend_memory": {"dcache": 10, "store_drain": 0,
                           "fill_latency": 0, "spill_stall": 5,
                           "window_trap": 0},
    }
    thread0 = json.loads(json.dumps(leaves))
    return {
        "schemaVersion": 2,
        "config": {"arch": "vca", "regs": 192, "threads": 1},
        "summary": {"cycles": 100, "insts": 60, "ipc": 0.6},
        "cpu": {
            "cycles": 100,
            "cycle_accounting": {
                "commit_active": 60, "mem_stall": 10, "exec_stall": 10,
                "rename_freelist": 5, "window_shift": 0,
                "frontend": 15,
                "taxonomy": dict(leaves, thread0=thread0),
            },
        },
        "intervals": [
            {"interval": 0, "start_cycle": 0, "end_cycle": 50,
             "committed": 30, "committed_cum": 30, "ipc": 0.6,
             "partial": False},
            {"interval": 1, "start_cycle": 50, "end_cycle": 100,
             "committed": 30, "committed_cum": 60, "ipc": 0.6,
             "partial": True},
        ],
    }


def selftest():
    failures = []

    def expect(doc, ok, what):
        errors = validate(doc, what)
        if bool(errors) == ok:
            failures.append(f"{what}: expected "
                            f"{'OK' if ok else 'errors'}, got "
                            f"{errors or 'OK'}")

    expect(make_valid_doc(), True, "valid document")

    doc = make_valid_doc()
    doc["schemaVersion"] = 1
    expect(doc, False, "wrong schemaVersion")

    doc = make_valid_doc()
    doc["cpu"]["cycle_accounting"]["mem_stall"] += 1
    expect(doc, False, "broken flat partition")

    doc = make_valid_doc()
    doc["cpu"]["cycle_accounting"]["taxonomy"]["retiring"] -= 1
    expect(doc, False, "broken taxonomy partition")

    doc = make_valid_doc()
    doc["cpu"]["cycle_accounting"]["taxonomy"]["thread0"]["retiring"] \
        += 3
    expect(doc, False, "broken per-thread taxonomy partition")

    # All-zero taxonomy (VCA_NTELEMETRY build) is legal.
    doc = make_valid_doc()
    tax = doc["cpu"]["cycle_accounting"]["taxonomy"]

    def zero(group):
        for key, value in group.items():
            if isinstance(value, dict):
                zero(value)
            else:
                group[key] = 0
    zero(tax)
    expect(doc, True, "all-zero taxonomy (VCA_NTELEMETRY)")

    doc = make_valid_doc()
    doc["intervals"][1]["committed_cum"] = 30
    expect(doc, False, "non-increasing committed_cum")

    doc = make_valid_doc()
    doc["intervals"][0]["partial"] = True
    expect(doc, False, "partial flag on a non-final interval")

    doc = make_valid_doc()
    del doc["intervals"]
    expect(doc, True, "document without intervals")

    for msg in failures:
        print(f"selftest: FAILED: {msg}", file=sys.stderr)
    print("selftest: " + ("FAILED" if failures else "OK"))
    return 1 if failures else 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[1] == "--selftest":
        return selftest()
    status = 0
    for path in argv[1:]:
        status = max(status, check_file(path))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
