/**
 * @file
 * google-benchmark microbenchmarks for the simulator's own hot paths:
 * decode, functional execution, cache access, branch prediction, and
 * whole-pipeline throughput per architecture. These guard the
 * simulator's performance (the figure sweeps run hundreds of detailed
 * simulations) rather than reproducing a paper result.
 *
 * The microbenchmark loops deliberately bypass the sweep runner and
 * its result cache: they measure the simulator's wall-clock speed, so
 * memoization would measure nothing. The cycle-accounting epilogue
 * does go through the runner like every other bench.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.hh"
#include "bpred/bpred.hh"
#include "cpu/ooo_cpu.hh"
#include "func/func_sim.hh"
#include "mem/cache.hh"
#include "sim/rng.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

using namespace vca;

namespace {

void
BM_Decode(benchmark::State &state)
{
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("crafty"), false);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(isa::decode(prog->code[i]));
        i = (i + 1) % prog->code.size();
    }
}
BENCHMARK(BM_Decode);

void
BM_FunctionalSim(benchmark::State &state)
{
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("crafty"), false);
    auto memory = std::make_unique<mem::SparseMemory>();
    auto sim = std::make_unique<func::FuncSim>(*prog, *memory);
    func::StepRecord rec;
    for (auto _ : state) {
        if (!sim->step(rec)) {
            state.PauseTiming();
            sim.reset();
            memory = std::make_unique<mem::SparseMemory>();
            sim = std::make_unique<func::FuncSim>(*prog, *memory);
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalSim);

void
BM_CacheAccess(benchmark::State &state)
{
    stats::StatGroup root("bench");
    mem::MemSystem ms(mem::MemSystemParams{}, &root);
    Rng rng(42);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr addr = rng.below(1 << 22);
        benchmark::DoNotOptimize(ms.dataAccess(addr, false, now));
        now += 1;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    stats::StatGroup root("bench");
    bpred::BranchPredictor bp(bpred::BPredParams{}, 1, &root);
    bpred::BPredCheckpoint ckpt;
    Rng rng(7);
    for (auto _ : state) {
        const Addr pc = rng.below(4096);
        const bool pred = bp.predict(0, pc, ckpt);
        const bool actual = (pc & 3) != 0;
        bp.update(0, pc, actual, ckpt.history);
        if (pred != actual)
            bp.repairHistory(0, ckpt, actual);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredict);

void
BM_PipelineThroughput(benchmark::State &state)
{
    setQuiet(true);
    const auto kind = static_cast<cpu::RenamerKind>(state.range(0));
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("crafty"),
        kind != cpu::RenamerKind::Baseline);
    cpu::CpuParams params = cpu::CpuParams::preset(kind, 256);
    cpu::OooCpu cpu(params, {prog});
    InstCount committed = 0;
    for (auto _ : state) {
        cpu.tick();
        benchmark::DoNotOptimize(cpu.currentCycle());
    }
    committed = cpu.committedInsts(0);
    state.SetItemsProcessed(static_cast<std::int64_t>(committed));
    state.counters["ipc"] = benchmark::Counter(
        static_cast<double>(committed) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_PipelineThroughput)
    ->Arg(static_cast<int>(cpu::RenamerKind::Baseline))
    ->Arg(static_cast<int>(cpu::RenamerKind::ConvWindow))
    ->Arg(static_cast<int>(cpu::RenamerKind::IdealWindow))
    ->Arg(static_cast<int>(cpu::RenamerKind::Vca));

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::printCycleAccounting(bench::regWindowArchs(), 192,
                                bench::defaultOptions());
    return bench::finishBench();
}
