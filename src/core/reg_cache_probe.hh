/**
 * @file
 * Telemetry probe interface for the VCA register cache.
 *
 * The renamer treats the physical register file as a cache of the
 * memory-mapped logical-register space; a probe observes that cache's
 * access stream (hits, fills, spills) plus a once-per-rename-cycle
 * tick, without the renamer knowing anything about what the observer
 * does with it (shadow miss-classification models, occupancy
 * sampling, burst histograms live in src/telemetry/).
 *
 * Cost discipline: every call site in the renamer is guarded by the
 * VCA_TELEMETRY_PROBE macro — a single null-pointer test when
 * telemetry is compiled in and nothing at all under -DVCA_NTELEMETRY
 * (mirroring VCA_NTRACE for DPRINTF).
 */

#ifndef VCA_CORE_REG_CACHE_PROBE_HH
#define VCA_CORE_REG_CACHE_PROBE_HH

#include "sim/types.hh"

namespace vca::core {

class RegCacheProbe
{
  public:
    virtual ~RegCacheProbe() = default;

    /** A logical-register access that found its value resident
     *  (source hit, or a destination allocation). */
    virtual void onAccess(Addr addr) = 0;

    /** A source miss that committed to a fill through the ASTQ.
     *  Called exactly once per `fills` increment, before the access
     *  itself is folded into any shadow model. */
    virtual void onFill(Addr addr) = 0;

    /** A dirty committed register written back (spill enqueued). */
    virtual void onSpill(Addr addr) = 0;

    /** Start of a rename cycle (drives time-series sampling). */
    virtual void onCycle(Cycle now) = 0;
};

} // namespace vca::core

#ifndef VCA_NTELEMETRY
#define VCA_TELEMETRY_PROBE(probe, call)                                \
    do {                                                                \
        if (probe)                                                      \
            (probe)->call;                                              \
    } while (0)
#else
#define VCA_TELEMETRY_PROBE(probe, call)                                \
    do {                                                                \
    } while (0)
#endif

#endif // VCA_CORE_REG_CACHE_PROBE_HH
