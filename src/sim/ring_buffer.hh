/**
 * @file
 * Fixed-capacity ring buffer for the pipeline's in-order queues.
 *
 * The detailed core's fetch queue, ROB, load/store queues and store
 * buffer are all bounded deques whose bounds come from CpuParams and
 * are enforced by the pipeline before every push. std::deque pays for
 * that generality with chunked heap allocation on the fetch/commit/
 * squash hot paths; this ring buffer allocates its (power-of-two
 * rounded) capacity once and never touches the allocator again.
 *
 * Indices grow monotonically and are masked on access, so size() is a
 * plain subtraction and push/pop are a store and an increment. The
 * structure deliberately mirrors the std::deque surface the pipeline
 * used (push_back/pop_front/pop_back/front/back/clear/iteration) so
 * the call sites read unchanged.
 */

#ifndef VCA_SIM_RING_BUFFER_HH
#define VCA_SIM_RING_BUFFER_HH

#include <cstddef>
#include <vector>

#include "sim/logging.hh"

namespace vca {

template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    explicit RingBuffer(size_t capacity) { reset(capacity); }

    /**
     * (Re)allocate for at least `capacity` elements and clear. The
     * backing store rounds up to a power of two so masking replaces
     * modulo on every access.
     */
    void
    reset(size_t capacity)
    {
        size_t pow2 = 1;
        while (pow2 < capacity)
            pow2 <<= 1;
        slots_.assign(pow2, T{});
        mask_ = pow2 - 1;
        head_ = tail_ = 0;
    }

    size_t size() const { return tail_ - head_; }
    bool empty() const { return head_ == tail_; }
    size_t capacity() const { return slots_.size(); }
    bool full() const { return size() == slots_.size(); }

    void clear() { head_ = tail_ = 0; }

    void
    push_back(const T &v)
    {
        if (full())
            panic("RingBuffer: push_back on a full buffer (cap %zu)",
                  capacity());
        slots_[tail_++ & mask_] = v;
    }

    void
    pop_front()
    {
        if (empty())
            panic("RingBuffer: pop_front on an empty buffer");
        ++head_;
    }

    void
    pop_back()
    {
        if (empty())
            panic("RingBuffer: pop_back on an empty buffer");
        --tail_;
    }

    T &front() { return slots_[head_ & mask_]; }
    const T &front() const { return slots_[head_ & mask_]; }
    T &back() { return slots_[(tail_ - 1) & mask_]; }
    const T &back() const { return slots_[(tail_ - 1) & mask_]; }

    /** Logical index: 0 is the front (oldest) element. */
    T &operator[](size_t i) { return slots_[(head_ + i) & mask_]; }
    const T &
    operator[](size_t i) const
    {
        return slots_[(head_ + i) & mask_];
    }

    /** Forward iteration, oldest to youngest (enough for range-for). */
    class const_iterator
    {
      public:
        const_iterator(const RingBuffer *rb, size_t pos)
            : rb_(rb), pos_(pos) {}

        const T &operator*() const { return (*rb_)[pos_]; }
        const T *operator->() const { return &(*rb_)[pos_]; }
        const_iterator &operator++() { ++pos_; return *this; }
        bool
        operator!=(const const_iterator &o) const
        {
            return pos_ != o.pos_;
        }
        bool
        operator==(const const_iterator &o) const
        {
            return pos_ == o.pos_;
        }

      private:
        const RingBuffer *rb_;
        size_t pos_;
    };

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size()); }

  private:
    std::vector<T> slots_;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t tail_ = 0;
};

} // namespace vca

#endif // VCA_SIM_RING_BUFFER_HH
