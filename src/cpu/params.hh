/**
 * @file
 * Processor configuration. Defaults reproduce paper Table 1:
 *
 *   Machine width       4
 *   Instruction queue   128
 *   Reorder buffer      192
 *   Pipeline depth      8 cycles fetch-to-exec (9 for VCA: Figure 1's
 *                       extra rename stage)
 *   DL1 ports           2 R/W
 *   DL1                 64K 4-way, 3-cycle hit
 *   IL1                 64K 4-way, 1-cycle hit
 *   L2                  1M 4-way, 15-cycle hit
 *   Memory              250 cycles
 *   Branch predictor    hybrid (bimodal + gshare + chooser)
 */

#ifndef VCA_CPU_PARAMS_HH
#define VCA_CPU_PARAMS_HH

#include <cstdint>

#include "bpred/bpred.hh"
#include "mem/cache.hh"

namespace vca::cpu {

/** Which register-management architecture the core uses. */
enum class RenamerKind
{
    Baseline,    ///< conventional rename, non-windowed binaries
    ConvWindow,  ///< conventional register windows (trap on over/underflow)
    IdealWindow, ///< idealized windows: free, instantaneous spill/fill
    Vca,         ///< the paper's virtual context architecture
};

const char *renamerKindName(RenamerKind kind);

struct CpuParams
{
    // Core (Table 1).
    unsigned width = 4;          ///< fetch/rename width
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    unsigned iqSize = 128;
    unsigned robSize = 192;
    unsigned decodeDelay = 3;    ///< cycles between fetch and rename
    unsigned physRegs = 256;     ///< merged int/FP physical register file
    unsigned numThreads = 1;
    RenamerKind renamer = RenamerKind::Baseline;

    // Load/store machinery (per thread).
    unsigned lqSize = 48;
    unsigned sqSize = 32;
    unsigned storeBufferSize = 32;

    // Functional units.
    unsigned fuIntAlu = 4;
    unsigned fuIntMul = 2;
    unsigned fuIntDiv = 1;
    unsigned fuFpAlu = 2;
    unsigned fuFpMul = 2;
    unsigned fuFpDiv = 1;

    // Data cache ports, shared by loads, stores, and spill/fill traffic.
    unsigned dcachePorts = 2;

    // Conventional register windows (Section 4.1): rename registers
    // that must remain after carving logical windows out of the
    // physical file, and the trap overhead.
    unsigned windowMinRenameRegs = 64;
    unsigned windowTrapCycles = 10;

    // VCA (Section 2.2 / 3): rename-table geometry, ports, ASTQ, RSIDs.
    unsigned vcaTableSets = 64;
    unsigned vcaTableAssoc = 3;      ///< 3/5/6 for 1/2/4 threads
    unsigned vcaRenamePorts = 8;     ///< vs 12 on the baseline
    unsigned astqEntries = 4;
    unsigned astqWritesPerCycle = 2;
    unsigned rsidEntries = 16;
    unsigned rsidOffsetBits = 16;    ///< register-space offset width
    unsigned recoveryWalkWidth = 8;  ///< commit-table rebuild rate
    bool vcaCheckpointRecovery = false; ///< ablation: checkpoint instead
                                        ///< of the P4-style ROB walk

    /**
     * The paper's future-work extension (Sections 5-6): when a return
     * commits, every register of the departing window frame is dead;
     * mark the cached copies clean (no spill on eviction) and make
     * them preferred victims. Requires the windowed ABI's guarantee
     * that fresh frames are written before they are read.
     */
    bool vcaDeadValueHints = false;

    /**
     * Seed for the core's tie-break RNG (see OooCpu::rng()). The
     * timing model itself is deterministic — all randomness lives in
     * the pre-seeded workloads — but any future stochastic component
     * must draw from that per-core generator, seeded here, so that
     * parallel sweep execution order can never leak into results.
     */
    std::uint64_t rngSeed = 0x9e3779b97f4a7c15ULL;

    /**
     * Sample the ROB/IQ occupancy distributions every N cycles
     * (0 is clamped to 1). At the default of 1 the distributions are
     * exact; larger intervals trade histogram resolution for speed and
     * must never be used for golden-number runs.
     */
    unsigned statSampleInterval = 1;

    mem::MemSystemParams memParams;
    bpred::BPredParams bpredParams;

    /** Associativity the paper uses for a given thread count. */
    static unsigned
    vcaAssocForThreads(unsigned threads)
    {
        if (threads <= 1)
            return 3;
        if (threads == 2)
            return 5;
        return 6;
    }

    /** Convenience preset: Table 1 baseline with a renamer choice. */
    static CpuParams
    preset(RenamerKind kind, unsigned physRegs, unsigned threads = 1)
    {
        CpuParams p;
        p.renamer = kind;
        p.physRegs = physRegs;
        p.numThreads = threads;
        p.vcaTableAssoc = vcaAssocForThreads(threads);
        return p;
    }
};

} // namespace vca::cpu

#endif // VCA_CPU_PARAMS_HH
