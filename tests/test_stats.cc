/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/statistics.hh"

namespace {

using namespace vca::stats;

TEST(Stats, ScalarAccumulates)
{
    StatGroup root("root");
    Scalar s(&root, "count", "a counter");
    ++s;
    s += 4;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageMean)
{
    StatGroup root("root");
    Average a(&root, "avg", "an average");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    a.sample(6);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, DistributionBuckets)
{
    StatGroup root("root");
    Distribution d(&root, "dist", "a histogram", 0, 10, 5);
    d.sample(0.5);
    d.sample(9.9);
    d.sample(-1);   // underflow
    d.sample(100);  // overflow
    EXPECT_EQ(d.totalSamples(), 4u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(4), 1u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_DOUBLE_EQ(d.minSampled(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxSampled(), 100.0);
}

TEST(Stats, DistributionRejectsBadConfig)
{
    StatGroup root("root");
    EXPECT_THROW(Distribution(&root, "bad", "", 10, 0, 5),
                 vca::PanicError);
    EXPECT_THROW(Distribution(&root, "bad2", "", 0, 10, 0),
                 vca::PanicError);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup root("root");
    Scalar a(&root, "a", "");
    Scalar b(&root, "b", "");
    Formula f(&root, "ratio", "a/b", [&] {
        return b.value() ? a.value() / b.value() : 0.0;
    });
    a += 10;
    b += 4;
    EXPECT_DOUBLE_EQ(f.value(), 2.5);
    a += 10;
    EXPECT_DOUBLE_EQ(f.value(), 5.0);
}

TEST(Stats, GroupDumpContainsDottedPaths)
{
    StatGroup root("cpu");
    StatGroup child("dcache", &root);
    Scalar s(&child, "accesses", "dcache accesses");
    s += 7;
    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("cpu.dcache.accesses"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
}

TEST(Stats, GroupResetRecurses)
{
    StatGroup root("root");
    StatGroup child("c", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetStats();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, FindLocatesStat)
{
    StatGroup root("root");
    Scalar a(&root, "alpha", "");
    EXPECT_EQ(root.find("alpha"), &a);
    EXPECT_EQ(root.find("beta"), nullptr);
}

TEST(Stats, OrphanStatPanics)
{
    EXPECT_THROW(Scalar(nullptr, "x", ""), vca::PanicError);
}

} // namespace
