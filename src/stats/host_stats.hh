/**
 * @file
 * Host-throughput statistics: how fast the simulator itself runs.
 *
 * Every figure and table is a sweep of detailed simulations, so
 * simulated MIPS on the host is the budget that bounds how many
 * (arch x regs x workload) points are affordable. This group tracks
 * the wall-clock spent inside detailed simulation and the simulated
 * instructions/cycles covered, and derives simulated MIPS and
 * cycles-per-second. runTiming() accumulates into a process-wide
 * instance (the benches export it into BENCH_*.json for the perf
 * trajectory; scripts/perf_compare.py diffs two exports); vca-sim
 * keeps a local instance for its single-run report.
 *
 * record() is thread-safe: sweep points run concurrently on the
 * worker pool and each contributes its own simulation interval. The
 * per-point wall times sum across workers, so sim_seconds counts
 * CPU-seconds of detailed simulation, not elapsed time — simulated
 * MIPS is therefore per-core and comparable across VCA_JOBS settings.
 */

#ifndef VCA_STATS_HOST_STATS_HH
#define VCA_STATS_HOST_STATS_HH

#include <mutex>

#include "stats/statistics.hh"

namespace vca::stats {

class HostStats : public StatGroup
{
  public:
    explicit HostStats(StatGroup *parent = nullptr);

    /** Accumulate one detailed-simulation interval (thread-safe). */
    void record(double seconds, double insts, double cycles);

    /** Accumulate one functional (fast-forward/warming) interval. */
    void recordFunctional(double seconds, double insts);

    stats::Scalar simSeconds; ///< wall-clock inside detailed simulation
    stats::Scalar simInsts;   ///< instructions committed in that time
    stats::Scalar simCycles;  ///< cycles simulated in that time
    stats::Scalar simRuns;    ///< detailed simulations contributing
    stats::Formula simMips;   ///< simulated million insts / host second
    stats::Formula cyclesPerSec; ///< simulated cycles / host second

    // Functional-core throughput (fast-forward + warming in the
    // sampled/simpoint modes). Kept separate from the sim_* detailed
    // trajectory: the accuracy gate's >=5x speedup contract is
    // func_mips vs sim_mips.
    stats::Scalar funcSeconds; ///< wall-clock inside functional sim
    stats::Scalar funcInsts;   ///< instructions executed functionally
    stats::Scalar funcRuns;    ///< functional intervals contributing
    stats::Formula funcMips;   ///< functional million insts / host sec

    /** Process-wide accumulator shared by runTiming() callers. */
    static HostStats &global();

  private:
    std::mutex mutex_;
};

} // namespace vca::stats

#endif // VCA_STATS_HOST_STATS_HH
