/**
 * @file
 * VRISC-64 instruction set: opcodes, decoded-instruction record,
 * encode/decode and disassembly.
 *
 * Encoding formats (32-bit words):
 *   R:  op[31:24] rd[23:19] rs1[18:14] rs2[13:9]  unused[8:0]
 *   I:  op[31:24] rd[23:19] rs1[18:14] imm14[13:0] (sign extended)
 *   B:  op[31:24] rs1[23:19] rs2[18:14] imm14[13:0] (instruction offset)
 *   J:  op[31:24] imm24[23:0] (absolute instruction index)
 *
 * PCs count instructions (a PC of n refers to code word n); byte
 * addresses for the I-cache are pc * 4 within the code segment.
 */

#ifndef VCA_ISA_INST_HH
#define VCA_ISA_INST_HH

#include <cstdint>
#include <string>

#include "isa/registers.hh"
#include "sim/types.hh"

namespace vca::isa {

/** Every VRISC-64 operation. */
enum class Opcode : std::uint8_t
{
    Nop = 0,
    Halt,

    // Integer register-register.
    Add, Sub, Mul, Div, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,

    // Integer immediate.
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
    Lui, ///< rd = imm14 << 18 (build large constants with Lui+Ori chains)

    // Memory (8-byte).
    Ld,  ///< rd  = mem[rs1 + imm]
    St,  ///< mem[rs1 + imm] = rs2  (encoded in B format: rs1 base, rs2 data)
    Fld, ///< fd  = mem[rs1 + imm]
    Fst, ///< mem[rs1 + imm] = fs2

    // Floating point (operate on f registers, IEEE double).
    Fadd, Fsub, Fmul, Fdiv,
    Fneg,        ///< fd = -fs1
    Fmov,        ///< fd = fs1
    Fcvtif,      ///< fd = double(int rs1)
    Fcvtfi,      ///< rd = int64(fs1)
    Feq, Flt,    ///< int rd = compare(fs1, fs2)

    // Control.
    Beq, Bne, Blt, Bge, ///< compare rs1, rs2; target = pc + 1 + imm14
    Jmp,   ///< unconditional, J format, absolute target
    Call,  ///< J format: ra = pc + 1 (into the new window when windowed),
           ///< jump to target; windowed ABI shifts the register window
    Ret,   ///< jump to ra; windowed ABI shifts the window back

    NumOpcodes
};

/** Functional-unit class an instruction executes on. */
enum class FuClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    MemRead,
    MemWrite,
    None, ///< Nop / Halt / direct jumps resolved at decode
};

/** A fully decoded instruction (the static part; no dynamic state). */
struct StaticInst
{
    Opcode op = Opcode::Nop;

    /** Destination (valid iff hasDest). */
    ArchReg dest{};
    bool hasDest = false;

    /**
     * Positional sources. numSrcs is fixed by the opcode; srcValid[i]
     * is false when the operand is the integer zero register (reads as
     * constant 0 and needs no rename).
     */
    ArchReg src[2]{};
    bool srcValid[2] = {false, false};
    unsigned numSrcs = 0;

    std::int64_t imm = 0;

    // Classification flags.
    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;    ///< conditional branch
    bool isJump = false;      ///< unconditional direct jump
    bool isCall = false;
    bool isRet = false;
    bool isHalt = false;
    bool isNop = false;
    bool isFloat = false;     ///< executes on an FP unit

    FuClass fu = FuClass::None;

    /** True for any instruction that can redirect the PC. */
    bool isControl() const { return isBranch || isJump || isCall || isRet; }
    bool isMem() const { return isLoad || isStore; }
};

/** Encode helpers (used by the assembler / workload generator). */
std::uint32_t encodeR(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2);
std::uint32_t encodeI(Opcode op, RegIndex rd, RegIndex rs1,
                      std::int32_t imm14);
std::uint32_t encodeB(Opcode op, RegIndex rs1, RegIndex rs2,
                      std::int32_t imm14);
std::uint32_t encodeJ(Opcode op, std::uint32_t target24);

/**
 * Decode one 32-bit code word.
 * Unknown opcodes decode to Halt (defensive: running off the end of a
 * program stops it rather than executing garbage).
 */
StaticInst decode(std::uint32_t word);

/** Human-readable disassembly (for tests and debug traces). */
std::string disassemble(const StaticInst &inst);
std::string disassemble(std::uint32_t word);

/** Execution latency (cycles in a functional unit) for an opcode class. */
unsigned fuLatency(FuClass fu);

/** Immediate field limits. */
constexpr std::int32_t imm14Min = -(1 << 13);
constexpr std::int32_t imm14Max = (1 << 13) - 1;
constexpr std::uint32_t imm24Max = (1u << 24) - 1;

} // namespace vca::isa

#endif // VCA_ISA_INST_HH
