#include "core/vca_renamer.hh"

#include "isa/program.hh"
#include "sim/logging.hh"
#include "trace/debug_flags.hh"

namespace vca::core {

using cpu::DynInst;
using cpu::TransferOp;
using isa::RegClass;
namespace layout = isa::layout;

VcaRenamer::VcaRenamer(const cpu::CpuParams &params,
                       cpu::PhysRegFile &regs,
                       std::vector<mem::SparseMemory *> memories,
                       bool ideal, stats::StatGroup *parent)
    : fills(parent, "fills", "fill operations generated"),
      spills(parent, "spills", "spill operations generated"),
      tableMisses(parent, "table_misses", "rename table source misses"),
      tableHits(parent, "table_hits", "rename table source hits"),
      stallsNoFreeReg(parent, "stalls_no_free_reg",
                      "rename stalls: no free/evictable register"),
      stallsTableConflict(parent, "stalls_table_conflict",
                          "rename stalls: rename-table set conflict"),
      stallsPorts(parent, "stalls_ports",
                  "rename stalls: rename ports exhausted"),
      stallsAstq(parent, "stalls_astq", "rename stalls: ASTQ limits"),
      stallsRsid(parent, "stalls_rsid",
                 "rename stalls: RSID flush blocked by pinned regs"),
      overwriteFrees(parent, "overwrite_frees",
                     "registers freed by overwrite (no spill needed)"),
      deadValueHints(parent, "dead_value_hints",
                     "registers marked dead by returning frames"),
      params_(params), regs_(regs), memories_(std::move(memories)),
      ideal_(ideal),
      table_(ideal ? 0 : params.vcaTableSets,
             ideal ? 0 : params.vcaTableAssoc),
      rsid_(params.rsidEntries, params.rsidOffsetBits, parent),
      astq_(params.astqEntries, params.astqWritesPerCycle, parent),
      regState_(params.physRegs)
{
    threads_.resize(params.numThreads);
    for (unsigned t = 0; t < params.numThreads; ++t) {
        threads_[t].gbp = layout::globalBasePointer(t);
        threads_[t].wbp = layout::initialWindowPointer(t);
    }
}

void
VcaRenamer::setThreadContext(ThreadId tid, bool windowedAbi)
{
    threads_.at(tid).windowedAbi = windowedAbi;
}

Addr
VcaRenamer::regAddress(ThreadId tid, RegClass cls, RegIndex idx) const
{
    const ThreadCtx &ctx = threads_[tid];
    if (!ctx.windowedAbi)
        return ctx.gbp + Addr(isa::flatIndex(cls, idx)) * 8;
    if (isa::isWindowed(cls, idx))
        return ctx.wbp + Addr(isa::windowSlot(cls, idx)) * 8;
    return ctx.gbp + Addr(isa::globalSlot(cls, idx)) * 8;
}

mem::SparseMemory &
VcaRenamer::memoryFor(Addr addr, ThreadId tid)
{
    (void)tid;
    return *memories_.at(layout::regSpaceThread(addr));
}

void
VcaRenamer::beginCycle(Cycle now)
{
    (void)now;
    cycleReadAddrs_.clear();
    portsUsed_ = 0;
    astq_.beginCycle();
    VCA_TELEMETRY_PROBE(probe_, onCycle(now));
}

void
VcaRenamer::addEntryRsidRef(const TableEntry *entry)
{
    if (!ideal_)
        rsid_.addRef(entry->rsid);
}

void
VcaRenamer::dropEntryRsidRef(const TableEntry *entry)
{
    if (!ideal_)
        rsid_.dropRef(entry->rsid);
}

void
VcaRenamer::freePhys(PhysRegIndex reg)
{
    PhysState &s = regState_[reg];
    if (s.pinned())
        panic("freeing pinned physical register %d (refCount %u)",
              int(reg), s.refCount);
    if (s.fillPending)
        panic("freeing physical register %d with a fill in flight",
              int(reg));
    regState_.pushFree(reg);
}

bool
VcaRenamer::enqueueSpill(PhysRegIndex reg)
{
    PhysState &s = regState_[reg];
    if (!s.committed)
        panic("spilling uncommitted register %d", int(reg));
    // The committed value can no longer change, so it is captured into
    // backing memory at enqueue time; the ASTQ op carries the timing
    // (cache access through a spare port).
    memoryFor(s.addr, 0).write(s.addr, regs_.read(reg));
    s.dirty = false;
    ++spills;
    VCA_TELEMETRY_PROBE(probe_, onSpill(s.addr));
    DPRINTF(VcaCache, "spill p%d -> addr 0x%llx", int(reg),
            (unsigned long long)s.addr);
    if (!ideal_) {
        astq_.enqueue({true, s.addr, invalidPhysReg,
                       static_cast<ThreadId>(
                           layout::regSpaceThread(s.addr))});
    }
    return true;
}

bool
VcaRenamer::flushRsid(int rsidVictim)
{
    // All entries tagged with the victim RSID must be evictable.
    bool blocked = false;
    std::vector<TableEntry *> toEvict;
    table_.forEach([&](TableEntry &e) {
        if (e.rsid != rsidVictim)
            return;
        const bool evictable = e.front == e.commit &&
                               e.front != invalidPhysReg &&
                               regState_[e.front].evictable();
        if (!evictable)
            blocked = true;
        else
            toEvict.push_back(&e);
    });
    if (blocked)
        return false;
    for (TableEntry *e : toEvict) {
        PhysState &s = regState_[e->front];
        if (s.dirty) {
            // RSID flushes are rare (stats confirm); their spills bypass
            // the ASTQ capacity check but still drain through ports.
            memoryFor(s.addr, 0).write(s.addr, regs_.read(e->front));
            s.dirty = false;
            ++spills;
            VCA_TELEMETRY_PROBE(probe_, onSpill(s.addr));
            if (!ideal_) {
                astq_.enqueueForce(
                    {true, s.addr, invalidPhysReg,
                     static_cast<ThreadId>(
                         layout::regSpaceThread(s.addr))});
            }
        }
        rsid_.dropRef(e->rsid);
        freePhys(e->front);
        table_.invalidate(e);
    }
    return true;
}

TableEntry *
VcaRenamer::getEntry(Addr addr, bool &stalled)
{
    if (TableEntry *e = table_.lookup(addr))
        return e;

    int rsid = 0;
    if (!ideal_) {
        rsid = rsid_.lookup(addr);
        if (rsid == RsidTable::noRsid) {
            rsid = rsid_.allocate(addr);
            if (rsid == RsidTable::noRsid) {
                const int victim = rsid_.victim();
                if (victim < 0 || !flushRsid(victim)) {
                    ++stallsRsid;
                    lastStall_ = StallCause::FreeList;
                    DPRINTF(VcaRename,
                            "stall: RSID flush blocked (addr 0x%llx)",
                            (unsigned long long)addr);
                    stalled = true;
                    return nullptr;
                }
                DPRINTF(VcaRename, "RSID %d flushed for addr 0x%llx",
                        victim, (unsigned long long)addr);
                rsid_.invalidate(victim);
                rsid = rsid_.allocate(addr);
                if (rsid == RsidTable::noRsid)
                    panic("RSID allocation failed after flush");
            }
        }
    }

    if (TableEntry *way = table_.freeWay(addr)) {
        table_.install(way, addr, rsid);
        addEntryRsidRef(way);
        return way;
    }

    // Evict a way: prefer clean LRU victims; dirty ones need a spill.
    const bool canSpill = astq_.canEnqueue(1);
    TableEntry *choice = nullptr;
    TableEntry *dirtyChoice = nullptr;
    for (TableEntry *cand : table_.waysByLru(addr)) {
        if (cand->front != cand->commit ||
            cand->front == invalidPhysReg ||
            !regState_[cand->front].evictable()) {
            continue;
        }
        if (!regState_[cand->front].dirty) {
            choice = cand;
            break;
        }
        if (!dirtyChoice)
            dirtyChoice = cand;
    }
    if (!choice && dirtyChoice && canSpill)
        choice = dirtyChoice;
    if (!choice) {
        if (dirtyChoice && !canSpill) {
            astq_.noteRejected(1);
            ++stallsAstq;
            lastStall_ = StallCause::TransferBackpressure;
            DPRINTF(VcaRename,
                    "stall: ASTQ full, dirty victim for addr 0x%llx",
                    (unsigned long long)addr);
        } else {
            ++stallsTableConflict;
            lastStall_ = StallCause::FreeList;
            DPRINTF(VcaRename,
                    "stall: table set conflict for addr 0x%llx",
                    (unsigned long long)addr);
        }
        stalled = true;
        return nullptr;
    }

    DPRINTF(VcaRename, "evict table entry addr 0x%llx (%s) for 0x%llx",
            (unsigned long long)choice->addr,
            regState_[choice->front].dirty ? "dirty" : "clean",
            (unsigned long long)addr);
    if (regState_[choice->front].dirty)
        enqueueSpill(choice->front);
    dropEntryRsidRef(choice);
    freePhys(choice->front);
    // Reuse the way in place.
    table_.install(choice, addr, rsid);
    addEntryRsidRef(choice);
    return choice;
}

PhysRegIndex
VcaRenamer::allocPhys(bool &stalled)
{
    if (regState_.hasFree())
        return regState_.popFree();

    const bool canSpill = ideal_ || astq_.canEnqueue(1);
    const PhysRegIndex victim = regState_.findVictim(!canSpill);
    if (victim == invalidPhysReg) {
        if (!canSpill) {
            astq_.noteRejected(1);
            ++stallsAstq;
            lastStall_ = StallCause::TransferBackpressure;
            DPRINTF(VcaRename, "stall: ASTQ full, no clean victim reg");
        } else {
            ++stallsNoFreeReg;
            lastStall_ = StallCause::FreeList;
            DPRINTF(VcaRename, "stall: no free/evictable register");
        }
        stalled = true;
        return invalidPhysReg;
    }

    PhysState &s = regState_[victim];
    TableEntry *entry = table_.lookup(s.addr);
    if (!entry)
        panic("victim register %d has no rename-table entry", int(victim));

    DPRINTF(VcaRename, "reclaim p%d (addr 0x%llx, %s)", int(victim),
            (unsigned long long)s.addr, s.dirty ? "dirty" : "clean");

    if (s.dirty)
        enqueueSpill(victim);

    if (entry->front == victim && entry->commit == victim) {
        dropEntryRsidRef(entry);
        table_.invalidate(entry);
    } else if (entry->commit == victim) {
        // The committed value is replaced while a speculative producer
        // is in flight; the spill above preserved the value in memory.
        entry->commit = invalidPhysReg;
    } else {
        panic("victim register %d in inconsistent table state",
              int(victim));
    }
    s.clear();
    return victim;
}

bool
VcaRenamer::rename(DynInst &inst, Cycle now)
{
    (void)now;
    const isa::StaticInst &si = *inst.si;
    ThreadCtx &ctx = threads_[inst.tid];
    const Addr frame = layout::windowFrameBytes;

    // Stage 1: address generation (base pointer + register index).
    const bool shiftsWindow = ctx.windowedAbi &&
                              (si.isCall || si.isRet);
    Addr srcAddr[2] = {invalidAddr, invalidAddr};
    for (unsigned s = 0; s < si.numSrcs; ++s) {
        if (si.srcValid[s])
            srcAddr[s] = regAddress(inst.tid, si.src[s].cls,
                                    si.src[s].idx);
    }
    Addr destAddr = invalidAddr;
    if (si.hasDest) {
        if (si.isCall && ctx.windowedAbi) {
            // ra is written in the callee's (new) window.
            ctx.wbp -= frame;
            destAddr = regAddress(inst.tid, si.dest.cls, si.dest.idx);
            ctx.wbp += frame;
        } else {
            destAddr = regAddress(inst.tid, si.dest.cls, si.dest.idx);
        }
    }

    // Rename-port accounting (reads of the same address combine).
    if (!ideal_) {
        unsigned needed = si.hasDest ? 1 : 0;
        for (unsigned s = 0; s < si.numSrcs; ++s) {
            if (srcAddr[s] == invalidAddr)
                continue;
            bool seen = srcAddr[s] == (s == 1 ? srcAddr[0] : invalidAddr);
            for (Addr a : cycleReadAddrs_)
                seen = seen || a == srcAddr[s];
            if (!seen)
                ++needed;
        }
        if (portsUsed_ + needed > params_.vcaRenamePorts) {
            ++stallsPorts;
            lastStall_ = StallCause::FreeList;
            return false;
        }
    }

    // Stage 2: table lookups, transactionally. At most one pin per
    // source operand needs rolling back, so a fixed array avoids a
    // heap allocation on every rename.
    PhysRegIndex refBumped[2];
    unsigned numRefBumped = 0;
    TableEntry *createdEmptyEntry = nullptr;
    auto rollback = [&]() {
        for (unsigned i = 0; i < numRefBumped; ++i) {
            PhysState &s = regState_[refBumped[i]];
            if (s.refCount == 0)
                panic("rename rollback refcount underflow");
            --s.refCount;
        }
        if (createdEmptyEntry) {
            dropEntryRsidRef(createdEmptyEntry);
            table_.invalidate(createdEmptyEntry);
        }
    };

    for (unsigned s = 0; s < si.numSrcs; ++s) {
        if (srcAddr[s] == invalidAddr)
            continue;
        TableEntry *entry = table_.lookup(srcAddr[s]);
        PhysRegIndex phys = invalidPhysReg;
        if (entry) {
            ++tableHits;
            VCA_TELEMETRY_PROBE(probe_, onAccess(srcAddr[s]));
            phys = entry->front;
            if (phys == invalidPhysReg)
                panic("valid rename-table entry with no front register");
            DPRINTFT(VcaRename, inst.tid,
                     "src hit addr 0x%llx -> p%d",
                     (unsigned long long)srcAddr[s], int(phys));
        } else {
            ++tableMisses;
            DPRINTFT(VcaRename, inst.tid, "src miss addr 0x%llx",
                     (unsigned long long)srcAddr[s]);
            // Fill path.
            if (!ideal_ && !astq_.canEnqueue(1)) {
                astq_.noteRejected(1);
                ++stallsAstq;
                lastStall_ = StallCause::TransferBackpressure;
                rollback();
                return false;
            }
            bool stalled = false;
            entry = getEntry(srcAddr[s], stalled);
            if (!entry) {
                rollback();
                return false;
            }
            phys = allocPhys(stalled);
            if (phys == invalidPhysReg) {
                // The freshly installed entry would dangle: remove it.
                dropEntryRsidRef(entry);
                table_.invalidate(entry);
                rollback();
                return false;
            }
            if (!ideal_ && !astq_.canEnqueue(1)) {
                // Evictions inside getEntry/allocPhys consumed the ASTQ
                // slot this fill was going to use: undo and stall.
                regState_.pushFree(phys);
                dropEntryRsidRef(entry);
                table_.invalidate(entry);
                astq_.noteRejected(1);
                ++stallsAstq;
                lastStall_ = StallCause::TransferBackpressure;
                rollback();
                return false;
            }
            PhysState &ps = regState_[phys];
            ps.addr = srcAddr[s];
            ps.committed = true;
            ps.dirty = false;
            entry->front = phys;
            entry->commit = phys;
            ++fills;
            VCA_TELEMETRY_PROBE(probe_, onFill(srcAddr[s]));
            DPRINTFT(VcaCache, inst.tid, "fill p%d <- addr 0x%llx",
                     int(phys), (unsigned long long)srcAddr[s]);
            if (ideal_) {
                regs_.write(phys,
                            memoryFor(srcAddr[s], inst.tid)
                                .read(srcAddr[s]));
                regs_.setReady(phys, true);
            } else {
                ps.fillPending = true;
                ps.refCount += 1; // fill's own hold until completion
                regs_.setReady(phys, false);
                astq_.enqueue({false, srcAddr[s], phys, inst.tid});
            }
        }
        PhysState &ps = regState_[phys];
        ps.refCount += 1; // consumer pin
        refBumped[numRefBumped++] = phys;
        regState_.touch(phys);
        inst.srcPhys[s] = phys;
        inst.srcAddr[s] = srcAddr[s];
        if (!ideal_) {
            bool seen = false;
            for (Addr a : cycleReadAddrs_)
                seen = seen || a == srcAddr[s];
            if (!seen) {
                cycleReadAddrs_.push_back(srcAddr[s]);
                ++portsUsed_;
            }
        }
    }

    if (si.hasDest) {
        // Allocate the register BEFORE resolving the table entry:
        // replacement inside allocPhys may evict the destination's own
        // current mapping (it is unpinned if no consumer holds it), and
        // an entry pointer taken earlier would dangle.
        bool stalled = false;
        const PhysRegIndex phys = allocPhys(stalled);
        if (phys == invalidPhysReg) {
            rollback();
            return false;
        }
        TableEntry *entry = table_.lookup(destAddr);
        if (!entry) {
            entry = getEntry(destAddr, stalled);
            if (!entry) {
                regState_.pushFree(phys);
                rollback();
                return false;
            }
            createdEmptyEntry = entry;
        }
        if (createdEmptyEntry)
            inst.vcaCreatedEntry = true;

        inst.destAddr = destAddr;
        inst.destPhys = phys;
        inst.vcaPrevFront = entry->front;

        ++entry->specProducers;
        if (entry->commit != invalidPhysReg)
            regState_[entry->commit].overwriters = entry->specProducers;

        PhysState &ps = regState_[phys];
        ps.addr = destAddr;
        ps.refCount = 1; // destination hold until commit
        ps.committed = false;
        ps.dirty = false;
        regState_.touch(phys);
        regs_.setReady(phys, false);
        entry->front = phys;
        VCA_TELEMETRY_PROBE(probe_, onAccess(destAddr));
        if (!ideal_)
            ++portsUsed_;
    }

    // Window base pointer update (speculative; undone on squash).
    if (shiftsWindow) {
        inst.prevWbp = ctx.wbp;
        ctx.wbp += si.isCall ? -frame : frame;
    }

    inst.renamed = true;
    return true;
}

cpu::CommitAction
VcaRenamer::commitInst(DynInst &inst)
{
    const isa::StaticInst &si = *inst.si;
    for (unsigned s = 0; s < si.numSrcs; ++s) {
        if (inst.srcPhys[s] == invalidPhysReg)
            continue;
        PhysState &ps = regState_[inst.srcPhys[s]];
        if (ps.refCount == 0)
            panic("source refcount underflow at commit");
        --ps.refCount;
        regState_.touch(inst.srcPhys[s]);
    }

    if (si.hasDest) {
        TableEntry *entry = table_.lookup(inst.destAddr);
        if (!entry)
            panic("committing destination with no rename-table entry");
        if (entry->specProducers == 0)
            panic("producer count underflow at commit");
        --entry->specProducers;
        const PhysRegIndex old = entry->commit;
        if (old != invalidPhysReg) {
            PhysState &os = regState_[old];
            if (os.fillPending) {
                // The old value is overwritten while an orphaned fill
                // (its consumers were squashed) is still bringing it
                // in. Only the fill's own hold may remain: detach the
                // register and free it when the fill completes.
                if (os.refCount != 1)
                    panic("overwritten fill-pending register has "
                          "consumer pins");
                os.zombie = true;
            } else {
                if (os.pinned())
                    panic("overwritten committed register still pinned");
                // Overwrite-free: the old committed value dies without
                // a spill, even if dirty (Figure 2's "overwrite" arc).
                ++overwriteFrees;
                freePhys(old);
            }
        }
        entry->commit = inst.destPhys;
        PhysState &ps = regState_[inst.destPhys];
        if (ps.refCount == 0)
            panic("destination hold refcount underflow");
        --ps.refCount;
        ps.committed = true;
        ps.dirty = true;
        ps.overwriters = entry->specProducers;
        regState_.touch(inst.destPhys);
    }

    if (params_.vcaDeadValueHints && si.isRet &&
        threads_[inst.tid].windowedAbi &&
        inst.srcAddr[0] != invalidAddr) {
        // ra occupies window slot 0, so its address is the departing
        // frame's base; everything in that frame is dead after the
        // return commits.
        applyDeadFrameHint(inst.srcAddr[0]);
    }
    return {};
}

void
VcaRenamer::applyDeadFrameHint(Addr frameBase)
{
    const Addr frameEnd = frameBase + layout::windowFrameBytes;
    table_.forEach([&](TableEntry &e) {
        if (e.addr < frameBase || e.addr >= frameEnd)
            return;
        if (e.front != e.commit || e.front == invalidPhysReg)
            return; // a speculative producer is in flight: leave it
        PhysState &s = regState_[e.front];
        if (!s.committed || s.fillPending)
            return;
        if (s.dirty) {
            s.dirty = false; // dead: never write it back
            ++deadValueHints;
        }
        s.lru = 0; // preferred victim
    });
}

void
VcaRenamer::squashInst(DynInst &inst)
{
    const isa::StaticInst &si = *inst.si;
    for (unsigned s = 0; s < si.numSrcs; ++s) {
        if (inst.srcPhys[s] == invalidPhysReg)
            continue;
        PhysState &ps = regState_[inst.srcPhys[s]];
        if (ps.refCount == 0)
            panic("source refcount underflow at squash");
        --ps.refCount;
    }

    if (si.hasDest && inst.destPhys != invalidPhysReg) {
        TableEntry *entry = table_.lookup(inst.destAddr);
        if (!entry)
            panic("squashing destination with no rename-table entry");
        if (entry->specProducers == 0)
            panic("producer count underflow at squash");
        --entry->specProducers;
        if (entry->commit != invalidPhysReg)
            regState_[entry->commit].overwriters = entry->specProducers;
        if (entry->front != inst.destPhys)
            panic("squash undo out of order: front is not this dest");
        const PhysRegIndex pf = inst.vcaPrevFront;
        if (pf != invalidPhysReg &&
            regState_[pf].addr == inst.destAddr) {
            entry->front = pf;
        } else if (entry->commit != invalidPhysReg) {
            entry->front = entry->commit;
        } else {
            dropEntryRsidRef(entry);
            table_.invalidate(entry);
        }
        PhysState &ps = regState_[inst.destPhys];
        if (ps.refCount == 0)
            panic("destination hold underflow at squash");
        --ps.refCount;
        freePhys(inst.destPhys);
    }

    if (inst.prevWbp != invalidAddr)
        threads_[inst.tid].wbp = inst.prevWbp;
}

unsigned
VcaRenamer::recoveryCycles(unsigned instsBeforeBranch) const
{
    if (ideal_ || params_.vcaCheckpointRecovery)
        return 0;
    return (instsBeforeBranch + params_.recoveryWalkWidth - 1) /
           params_.recoveryWalkWidth;
}

unsigned
VcaRenamer::extraFrontendCycles() const
{
    return ideal_ ? 0 : 1;
}

TransferOp
VcaRenamer::popTransferOp()
{
    return astq_.pop();
}

void
VcaRenamer::transferDone(const TransferOp &op)
{
    if (op.isStore)
        return; // spill value was captured at enqueue
    if (op.reg == invalidPhysReg)
        panic("fill completion without a target register");
    PhysState &ps = regState_[op.reg];
    if (!ps.fillPending)
        panic("fill completion for register %d with no pending fill",
              int(op.reg));
    ps.fillPending = false;
    if (ps.refCount == 0)
        panic("fill hold refcount underflow");
    --ps.refCount;
    if (ps.zombie) {
        // Orphaned fill whose value was overwritten while in flight.
        ++overwriteFrees;
        freePhys(op.reg);
        return;
    }
    regs_.write(op.reg, memoryFor(op.addr, op.tid).read(op.addr));
    regs_.setReady(op.reg, true);
}

void
VcaRenamer::validate() const
{
    auto &self = const_cast<VcaRenamer &>(*this);
    std::vector<int> owners(regState_.numRegs(), 0);
    self.table_.forEach([&](TableEntry &e) {
        if (e.front == invalidPhysReg)
            panic("valid entry with invalid front register");
        if (regState_[e.front].addr != e.addr)
            panic("front register address mismatch");
        ++owners[e.front];
        if (e.commit != invalidPhysReg && e.commit != e.front) {
            if (regState_[e.commit].addr != e.addr)
                panic("commit register address mismatch");
            if (!regState_[e.commit].committed)
                panic("commit register not marked committed");
            ++owners[e.commit];
        }
    });
    for (unsigned p = 0; p < regState_.numRegs(); ++p) {
        const PhysState &s = regState_[PhysRegIndex(p)];
        if (s.free()) {
            if (owners[p] != 0)
                panic("free register %u referenced by the table", p);
            continue;
        }
        if (owners[p] > 1)
            panic("mapped register %u has %d table references", p,
                  owners[p]);
        if (s.zombie) {
            if (owners[p] != 0 || !s.fillPending)
                panic("zombie register %u in invalid state", p);
            continue;
        }
        if (s.committed && owners[p] != 1)
            panic("committed register %u not referenced by the table", p);
        if (!s.committed && !s.pinned()) {
            // Intermediate speculative producers (older in-flight
            // writes overtaken by newer ones) have no table reference
            // but must stay pinned by their destination hold.
            panic("uncommitted register %u is unpinned", p);
        }
    }
}

void
VcaRenamer::switchIn(ThreadId tid, const func::ArchState &state)
{
    // Pre-run only: the rename table is empty, so every architectural
    // value can live at its logical-register memory address and the
    // first use of each register simply misses and fills from there.
    ThreadCtx &ctx = threads_.at(tid);
    if (ctx.windowedAbi != state.windowedAbi)
        panic("switch-in ABI mismatch (renamer %d, state %d)",
              int(ctx.windowedAbi), int(state.windowedAbi));

    if (ctx.windowedAbi) {
        ctx.wbp = layout::initialWindowPointer(tid) -
                  Addr(state.callDepth) * layout::windowFrameBytes;
    }

    // Windowed registers already arrived with the relocated memory
    // image (the functional core keeps them in memory); globals and
    // flat-ABI registers live in the functional core's register arrays
    // and must be materialized here.
    for (unsigned f = 0; f < isa::numArchRegs; ++f) {
        const isa::ArchReg r = isa::fromFlatIndex(f);
        const std::uint64_t v = r.cls == RegClass::Int
            ? state.intRegs[r.idx] : state.fpRegs[r.idx];
        const Addr a = regAddress(tid, r.cls, r.idx);
        memoryFor(a, tid).write(a, v);
    }
}

std::uint64_t
VcaRenamer::readArchReg(ThreadId tid, RegClass cls, RegIndex idx)
{
    // Valid while the register cache holds no dirty committed state
    // (e.g. right after switchIn): memory is then authoritative.
    if (cls == RegClass::Int && idx == isa::regZero)
        return 0;
    const Addr a = regAddress(tid, cls, idx);
    return memoryFor(a, tid).read(a);
}

Addr
VcaRenamer::relocateRegSpace(ThreadId tid, Addr addr) const
{
    // The functional core always uses thread 0's register-space layout;
    // this renamer gives each thread a disjoint, page-aligned region.
    if (addr < layout::regSpaceBase)
        return addr;
    return addr + Addr(tid) * layout::threadRegionBytes;
}

} // namespace vca::core
