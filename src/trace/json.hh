/**
 * @file
 * A minimal JSON document model: enough to write the statistics
 * export, parse it back in tests/tools, and emit bench results.
 *
 * Writing goes through JsonWriter (streaming, no intermediate tree);
 * reading goes through JsonValue::parse(), a strict recursive-descent
 * parser that throws FatalError on malformed input. Object member
 * order is preserved.
 */

#ifndef VCA_TRACE_JSON_HH
#define VCA_TRACE_JSON_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace vca::trace {

/** Escape a string for inclusion in a JSON document (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Format a double the way the exporter writes numbers: integral
 * values print without a fractional part, non-finite values print as
 * null (JSON has no NaN/Inf).
 */
std::string jsonNumber(double v);

/**
 * Streaming JSON writer with automatic comma placement and
 * indentation. Usage:
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("ipc").number(1.5);
 *   w.key("threads").beginArray().number(0).number(1).endArray();
 *   w.endObject();
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, unsigned indentWidth = 2)
        : os_(os), indentWidth_(indentWidth) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &number(double v);
    JsonWriter &number(std::uint64_t v);
    JsonWriter &string(const std::string &s);
    JsonWriter &boolean(bool b);
    JsonWriter &null();

  private:
    void beforeValue();
    void newline();

    struct Frame
    {
        bool isObject = false;
        bool first = true;
    };

    std::ostream &os_;
    unsigned indentWidth_;
    std::vector<Frame> stack_;
    bool pendingKey_ = false;
};

/** A parsed JSON document node. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    /** Parse a complete document; throws FatalError on bad JSON. */
    static JsonValue parse(const std::string &text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    double asNumber() const;
    bool asBool() const;
    const std::string &asString() const;

    /** Array element count / object member count. */
    size_t size() const;

    /** Array element access (panics on out-of-range / non-array). */
    const JsonValue &at(size_t i) const;

    /** Object member lookup (nullptr when absent / non-object). */
    const JsonValue *find(const std::string &key) const;

    /**
     * Nested lookup through objects by dotted path
     * ("cpu.dcache.accesses"). nullptr when any hop is missing.
     */
    const JsonValue *findPath(const std::string &dotted) const;

    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<JsonValue> elements_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace vca::trace

#endif // VCA_TRACE_JSON_HH
