#include "telemetry/reg_cache_analyzer.hh"

#include <algorithm>

#include "core/vca_renamer.hh"
#include "cpu/ooo_cpu.hh"
#include "isa/program.hh"

namespace vca::telemetry {

namespace {

// Splits a thread-region offset into "global/flat frame" (low
// addresses, growing up from the global base pointer) versus "window
// frames" (growing down from windowStackTop, 16 MiB into the region).
// Half-way between the two regions is an unambiguous boundary for
// both the windowed and the flat ABI.
constexpr Addr kWindowedBoundary = isa::layout::threadRegionBytes / 4;

unsigned
occupancyBuckets(unsigned physRegs)
{
    return std::min(16u, physRegs + 1);
}

} // namespace

RegCacheAnalyzer::RegCacheAnalyzer(const Config &cfg,
                                   const core::RegStateArray *regState,
                                   stats::StatGroup *parent)
    : stats::StatGroup("reg_cache", parent),
      fillsCompulsory(this, "fills_compulsory",
                      "fills whose address was never seen before"),
      fillsCapacity(this, "fills_capacity",
                    "fills a fully-associative register file of equal "
                    "capacity would also have missed"),
      fillsConflict(this, "fills_conflict",
                    "fills caused by limited rename-table associativity"),
      shadowHits(this, "shadow_hits",
                 "accesses hitting the fully-associative LRU shadow"),
      accesses(this, "accesses",
               "logical-register cache accesses observed (hits + fills)"),
      occupancyWindowed(this, "occupancy_windowed",
                        "sampled physical registers holding window-frame "
                        "addresses",
                        0, cfg.physRegs + 1, occupancyBuckets(cfg.physRegs)),
      occupancyGlobal(this, "occupancy_global",
                      "sampled physical registers holding global/flat "
                      "frame addresses",
                      0, cfg.physRegs + 1, occupancyBuckets(cfg.physRegs)),
      fillBurst(this, "fill_burst",
                "fills per burst window (bandwidth histogram)",
                0, cfg.burstWindowCycles + 1, 16),
      spillBurst(this, "spill_burst",
                 "spills per burst window (bandwidth histogram)",
                 0, cfg.burstWindowCycles + 1, 16),
      cfg_(cfg), regState_(regState)
{
    occupancyPerThread.reserve(cfg_.numThreads);
    for (unsigned t = 0; t < cfg_.numThreads; ++t) {
        occupancyPerThread.push_back(std::make_unique<stats::Distribution>(
            this, "occupancy_t" + std::to_string(t),
            "sampled physical registers owned by thread " +
                std::to_string(t),
            0, cfg_.physRegs + 1, occupancyBuckets(cfg_.physRegs)));
    }
}

RegCacheAnalyzer::~RegCacheAnalyzer()
{
    if (detach_)
        detach_();
}

void
RegCacheAnalyzer::setDetach(std::function<void()> detach)
{
    detach_ = std::move(detach);
}

void
RegCacheAnalyzer::touch(Addr addr)
{
    seen_.insert(addr);
    auto it = lruMap_.find(addr);
    if (it != lruMap_.end()) {
        ++shadowHits;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(addr);
    lruMap_[addr] = lru_.begin();
    if (cfg_.shadowCapacity && lru_.size() > cfg_.shadowCapacity) {
        lruMap_.erase(lru_.back());
        lru_.pop_back();
    }
}

void
RegCacheAnalyzer::onAccess(Addr addr)
{
    ++accesses;
    touch(addr);
}

void
RegCacheAnalyzer::onFill(Addr addr)
{
    // Classify before folding the access into the shadows: the
    // question is what the shadows held at the moment the real table
    // missed.
    if (!seen_.count(addr))
        ++fillsCompulsory;
    else if (lruMap_.count(addr))
        ++fillsConflict;
    else
        ++fillsCapacity;
    ++fillsInWindow_;
    ++accesses;
    touch(addr);
}

void
RegCacheAnalyzer::onSpill(Addr addr)
{
    // A spill is a writeback, not an access: it does not change what
    // either shadow model holds.
    (void)addr;
    ++spillsInWindow_;
}

void
RegCacheAnalyzer::onCycle(Cycle now)
{
    if (burstEnd_ == 0) {
        burstEnd_ = now + cfg_.burstWindowCycles;
    } else {
        while (now >= burstEnd_) {
            fillBurst.sample(fillsInWindow_);
            spillBurst.sample(spillsInWindow_);
            fillsInWindow_ = 0;
            spillsInWindow_ = 0;
            burstEnd_ += cfg_.burstWindowCycles;
        }
    }
    if (regState_ && now >= nextOccupancySample_) {
        sampleOccupancy();
        nextOccupancySample_ = now + cfg_.occupancySampleInterval;
    }
}

void
RegCacheAnalyzer::sampleOccupancy()
{
    std::vector<unsigned> perThread(occupancyPerThread.size(), 0);
    unsigned windowed = 0;
    unsigned global = 0;
    for (unsigned i = 0; i < regState_->numRegs(); ++i) {
        const core::PhysState &ps = (*regState_)[i];
        if (ps.free())
            continue;
        const unsigned t = isa::layout::regSpaceThread(ps.addr);
        if (t < perThread.size())
            ++perThread[t];
        const Addr offset = ps.addr - isa::layout::globalBasePointer(t);
        if (offset >= kWindowedBoundary)
            ++windowed;
        else
            ++global;
    }
    for (unsigned t = 0; t < perThread.size(); ++t)
        occupancyPerThread[t]->sample(perThread[t]);
    occupancyWindowed.sample(windowed);
    occupancyGlobal.sample(global);
}

std::unique_ptr<RegCacheAnalyzer>
attachRegCacheAnalyzer(cpu::OooCpu &cpu)
{
    auto *vca = dynamic_cast<core::VcaRenamer *>(&cpu.renamer());
    if (!vca)
        return nullptr;

    const cpu::CpuParams &p = vca->params();
    RegCacheAnalyzer::Config cfg;
    cfg.physRegs = p.physRegs;
    cfg.numThreads = p.numThreads;
    // Effective capacity of the real register cache: the table can
    // name at most sets*assoc addresses, the register file can hold
    // at most physRegs values; the ideal (unbounded-table) variant is
    // limited by registers alone.
    cfg.shadowCapacity =
        vca->ideal() ? p.physRegs
                     : std::min<unsigned>(p.physRegs,
                                          p.vcaTableSets * p.vcaTableAssoc);

    auto analyzer = std::make_unique<RegCacheAnalyzer>(
        cfg, &vca->regState(), &cpu);
    vca->attachProbe(analyzer.get());
    analyzer->setDetach([vca] { vca->attachProbe(nullptr); });
    return analyzer;
}

} // namespace vca::telemetry
