/**
 * @file
 * Deterministic fault-injection harness for the sweep execution layer.
 *
 * Chaos testing only proves anything if the chaos is reproducible: a
 * sweep that survives injected worker crashes must produce the same
 * bytes every time the same spec is injected, or a CI failure cannot
 * be replayed. Every injection decision here is therefore a pure
 * function of (spec seed, fault site, caller-supplied id, attempt
 * number) — never of wall-clock time, thread scheduling, or a shared
 * generator — so decisions are identical across runs, worker counts,
 * and forked child processes.
 *
 * Spec grammar (VCA_FAULT_INJECT):
 *
 *   seed=K,crash=P,hang=P,corrupt=P,writefail=P[,attempts=N]
 *
 *   crash      probability a forked sweep worker dies mid-point
 *              (isolate mode only; in-process workers cannot survive
 *              a real crash, so none is injected there)
 *   hang       probability a forked sweep worker stops making
 *              progress (the per-point deadline must reap it)
 *   corrupt    probability a successfully read cache entry has its
 *              bytes flipped before parsing
 *   writefail  probability a cache store behaves like ENOSPC
 *   attempts   crash/hang fire only on attempts < N (default 1), so
 *              a point with retries > N is guaranteed to converge and
 *              a chaos sweep terminates with byte-identical results
 *
 * Probabilities are in [0, 1]; omitted sites never fire. The global
 * instance parses VCA_FAULT_INJECT once on first use; tests override
 * it with installGlobal(). The injection sites double as the chaos
 * hooks a future vca-sweepd daemon reuses.
 */

#ifndef VCA_SIM_FAULT_INJECT_HH
#define VCA_SIM_FAULT_INJECT_HH

#include <cstdint>
#include <string>

namespace vca {

enum class FaultSite : unsigned {
    WorkerCrash = 0,  ///< forked worker exits abnormally mid-point
    WorkerHang,       ///< forked worker stops making progress
    CacheCorruptRead, ///< cache entry bytes flip on the read path
    CacheWriteFail,   ///< cache store behaves like a full/bad disk
};

inline constexpr unsigned kNumFaultSites = 4;

/** Short stable name ("crash", "hang", ...) for reports and specs. */
const char *faultSiteName(FaultSite site);

class FaultInjector
{
  public:
    /** Disabled injector: no site ever fires. */
    FaultInjector() = default;

    /** Parse a spec string; throws FatalError on malformed input. */
    static FaultInjector parse(const std::string &spec);

    bool enabled() const { return enabled_; }
    double probability(FaultSite site) const;
    unsigned maxAttempts() const { return maxAttempts_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Deterministic injection decision for one (site, id, attempt).
     * The id names the victim — sweep code passes the point's content
     * hash, so a decision is stable across runs, processes, and
     * worker schedules. Bumps the process-wide fired counter.
     */
    bool shouldFire(FaultSite site, std::uint64_t id,
                    unsigned attempt = 0) const;

    /** Process-wide count of fired injections per site. */
    static std::uint64_t firedCount(FaultSite site);
    static void resetFiredCounts();

    /** Shared instance, parsed from VCA_FAULT_INJECT on first use. */
    static const FaultInjector &global();

    /** Replace the global instance ("" disables); for tests/tools. */
    static void installGlobal(const std::string &spec);

  private:
    bool enabled_ = false;
    std::uint64_t seed_ = 1;
    unsigned maxAttempts_ = 1;
    double prob_[kNumFaultSites] = {0, 0, 0, 0};
};

} // namespace vca

#endif // VCA_SIM_FAULT_INJECT_HH
