#include "bench_common.hh"

#include <algorithm>
#include <fstream>

#include "analysis/explain.hh"
#include "stats/host_stats.hh"
#include "trace/json.hh"
#include "trace/stats_json.hh"
#include "wload/profile.hh"

namespace vca::bench {

using analysis::Measurement;
using analysis::SweepPoint;
using cpu::RenamerKind;

namespace {

/**
 * Per-point sampling statistics collected by sweepSeries() on
 * non-detailed runs, pending until the figure prints its `IPC ± CI`
 * table and exports the BENCH_*.json sampling block. Always empty on
 * detailed runs, so detailed stdout and JSON are untouched.
 */
struct SampledCiEntry
{
    std::string label;    ///< curve (SeriesSpec) label
    std::string workload; ///< "+"-joined benchmark names
    unsigned physRegs = 0;
    double ipc = 0; ///< sampled point estimate (1 / mean CPI)
    analysis::SamplingSummary summary;
};

std::vector<SampledCiEntry> &
sampledCiPending()
{
    static std::vector<SampledCiEntry> pending;
    return pending;
}

} // namespace

std::map<std::string, std::vector<double>>
sweepSeries(const std::vector<SeriesSpec> &specs,
            const std::vector<unsigned> &physRegs,
            const analysis::RunOptions &opts,
            const WorkloadMetric &metric)
{
    // One flat batch over the whole grid: the runner parallelizes and
    // memoizes; duplicate points across curves simulate once.
    std::vector<SweepPoint> points;
    for (const SeriesSpec &spec : specs) {
        analysis::RunOptions specOpts = opts;
        specOpts.stopOnFirstThread = spec.stopOnFirstThread;
        for (unsigned p : physRegs) {
            for (const auto &w : spec.workloads) {
                SweepPoint point;
                point.benches = w;
                point.windowed = spec.windowed;
                point.kind = spec.kind;
                point.physRegs = p;
                point.opts = specOpts;
                points.push_back(std::move(point));
            }
        }
    }
    const std::vector<Measurement> results =
        analysis::SweepRunner::global().run(points);

    std::map<std::string, std::vector<double>> series;
    size_t idx = 0;
    for (const SeriesSpec &spec : specs) {
        std::vector<double> row;
        for (size_t s = 0; s < physRegs.size(); ++s) {
            std::vector<double> values;
            bool operable = true;
            for (const auto &w : spec.workloads) {
                const Measurement &m = results[idx++];
                if (m.ok && m.sampling.samples > 0) {
                    SampledCiEntry e;
                    e.label = spec.label;
                    for (const std::string &b : w)
                        e.workload +=
                            (e.workload.empty() ? "" : "+") + b;
                    e.physRegs = physRegs[s];
                    e.ipc = m.sampling.meanCpi > 0
                        ? 1.0 / m.sampling.meanCpi : 0.0;
                    e.summary = m.sampling;
                    sampledCiPending().push_back(std::move(e));
                }
                const double v = m.ok ? metric(spec, w, m) : -1.0;
                if (v < 0) {
                    operable = false;
                    continue;
                }
                values.push_back(v);
            }
            row.push_back(operable ? analysis::mean(values) : -1.0);
        }
        series[spec.label] = std::move(row);
    }
    return series;
}

void
printSampledCi(const std::vector<unsigned> &physRegs)
{
    const auto &pending = sampledCiPending();
    if (pending.empty())
        return;
    // Cell = workload-mean sampled IPC ± workload-mean 95% half-width
    // for one (curve, register-file size); the per-workload records go
    // to BENCH_*.json in full.
    std::printf("sampled IPC ± 95%% CI:\n");
    std::vector<std::string> labels;
    for (const SampledCiEntry &e : pending)
        if (std::find(labels.begin(), labels.end(), e.label) ==
            labels.end())
            labels.push_back(e.label);
    for (const std::string &label : labels) {
        std::printf("%-12s", label.c_str());
        for (unsigned regs : physRegs) {
            double ipc = 0, hw = 0;
            unsigned n = 0;
            bool unbounded = false;
            for (const SampledCiEntry &e : pending) {
                if (e.label != label || e.physRegs != regs)
                    continue;
                ipc += e.ipc;
                hw += (e.summary.ipcCiHi() -
                       e.summary.ipcCiLo()) / 2;
                unbounded = unbounded || e.summary.ciUnbounded;
                ++n;
            }
            if (!n) {
                std::printf(" %15s", "n/a");
                continue;
            }
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.3f±%s%.3f",
                          ipc / n, unbounded ? "inf:" : "",
                          hw / n);
            std::printf(" %15s", cell);
        }
        std::printf("\n");
    }
}

void
clearSampledCi()
{
    sampledCiPending().clear();
}

std::map<std::string, std::vector<double>>
regWindowSweep(const std::vector<unsigned> &physRegs,
               const analysis::RunOptions &opts, bool metricIsDcache,
               unsigned normalizePorts)
{
    const auto benches = wload::regWindowProfiles();

    // Reference: dual-port baseline with 256 physical registers.
    std::map<std::string, double> reference;
    {
        analysis::RunOptions refOpts = opts;
        refOpts.dcachePorts = normalizePorts;
        std::vector<SweepPoint> refPoints;
        for (const auto &prof : benches) {
            refPoints.push_back(analysis::makePoint(
                prof.name, RenamerKind::Baseline, 256, refOpts));
        }
        const auto refResults =
            analysis::SweepRunner::global().run(refPoints);
        for (size_t i = 0; i < benches.size(); ++i) {
            const auto &prof = benches[i];
            const Measurement &m = refResults[i];
            if (!m.ok) {
                // An infrastructure failure (worker crash, deadline)
                // after retries degrades this benchmark's cells to
                // n/a — finishBench() reports it and exits nonzero.
                // A deterministic simulator failure stays fatal: the
                // baseline reference configuration must always run.
                if (m.infra)
                    continue;
                fatal("reference run failed for %s", prof.name.c_str());
            }
            reference[prof.name] = metricIsDcache
                ? analysis::totalDcacheAccesses(prof,
                                                RenamerKind::Baseline, m)
                : analysis::executionTime(prof, RenamerKind::Baseline, m);
        }
    }

    std::vector<SeriesSpec> specs;
    for (RenamerKind kind : regWindowArchs()) {
        SeriesSpec spec;
        spec.label = archLabel(kind);
        spec.kind = kind;
        spec.windowed = analysis::usesWindowedBinary(kind);
        spec.stopOnFirstThread = false;
        for (const auto &prof : benches)
            spec.workloads.push_back({prof.name});
        specs.push_back(std::move(spec));
    }
    return sweepSeries(
        specs, physRegs, opts,
        [&](const SeriesSpec &spec,
            const std::vector<std::string> &benchNames,
            const Measurement &m) {
            const auto &prof = wload::profileByName(benchNames.front());
            const auto ref = reference.find(prof.name);
            if (ref == reference.end())
                return -1.0; // reference infra-failed: cell is n/a
            const double value = metricIsDcache
                ? analysis::totalDcacheAccesses(prof, spec.kind, m)
                : analysis::executionTime(prof, spec.kind, m);
            return value / ref->second;
        });
}

} // namespace vca::bench

namespace vca::bench {

namespace {

/**
 * Register-cache fill classification for the reference VCA
 * configuration (crafty @ 192 physical registers), exported into every
 * BENCH_*.json. Measured once per process with the telemetry analyzer
 * attached; the run goes straight to runBench (never through the sweep
 * cache) and telemetry runs skip host-MIPS accounting, so neither the
 * memoized sweep results nor the perf trajectory see it.
 */
struct RegCacheSummary
{
    bool ok = false;
    double fillsCompulsory = 0;
    double fillsCapacity = 0;
    double fillsConflict = 0;
    double shadowHits = 0;
};

const RegCacheSummary &
regCacheSummary()
{
    static const RegCacheSummary summary = [] {
        RegCacheSummary s;
        analysis::RunOptions opts = defaultOptions();
        opts.regTelemetry = true;
        // The telemetry analyzer observes a single detailed core;
        // keep this reference measurement detailed even when the
        // bench sweep itself runs sampled.
        opts.mode = analysis::SimMode::Detailed;
        const analysis::Measurement m =
            analysis::runBench(wload::profileByName("crafty"),
                               cpu::RenamerKind::Vca, 192, opts);
        if (!m.ok)
            return s;
        for (const auto &[name, value] : m.counters) {
            if (name == "fills_compulsory")
                s.fillsCompulsory = value;
            else if (name == "fills_capacity")
                s.fillsCapacity = value;
            else if (name == "fills_conflict")
                s.fillsConflict = value;
            else if (name == "shadow_hits")
                s.shadowHits = value;
        }
        s.ok = true;
        return s;
    }();
    return summary;
}

/**
 * Commit-stall attribution of the reference VCA configuration
 * (crafty @ 192 physical registers), exported into every
 * BENCH_*.json as absolute per-bucket cycles. Runs through the
 * shared sweep cache — the same point the figure benches already
 * measure — so it is normally a pure cache hit. perf_compare.py
 * diffs the block across base/candidate runs and a regression
 * report names the buckets whose cycles moved (its top-3 causes).
 */
const analysis::ExplainInput &
cycleTaxonomySummary()
{
    static const analysis::ExplainInput input = [] {
        const analysis::Measurement m =
            analysis::SweepRunner::global().runPoint(
                analysis::makePoint("crafty", cpu::RenamerKind::Vca,
                                    192, defaultOptions()));
        return analysis::explainInputFromMeasurement(
            "reference", "bench=crafty arch=vca regs=192", m);
    }();
    return input;
}

} // namespace

void
writeSeriesCsv(const std::string &slug,
               const std::vector<unsigned> &physRegs,
               const std::map<std::string, std::vector<double>> &series)
{
    const char *dir = std::getenv("VCA_CSV_DIR");
    if (!dir || !*dir)
        return;
    const std::string path = std::string(dir) + "/" + slug + ".csv";
    std::ofstream os(path);
    if (!os) {
        warn("cannot write CSV to %s", path.c_str());
        return;
    }
    os << "phys_regs";
    for (const auto &[name, values] : series)
        os << "," << name;
    os << "\n";
    for (size_t i = 0; i < physRegs.size(); ++i) {
        os << physRegs[i];
        for (const auto &[name, values] : series) {
            os << ",";
            if (i < values.size() && values[i] >= 0)
                os << values[i];
        }
        os << "\n";
    }
    inform("wrote %s", path.c_str());
}

void
writeSeriesJson(const std::string &slug,
                const std::vector<unsigned> &physRegs,
                const std::map<std::string, std::vector<double>> &series)
{
    const char *dir = std::getenv("VCA_BENCH_JSON_DIR");
    if (!dir || !*dir)
        return;
    const std::string path =
        std::string(dir) + "/BENCH_" + slug + ".json";
    std::ofstream os(path);
    if (!os) {
        warn("cannot write JSON to %s", path.c_str());
        return;
    }
    trace::JsonWriter w(os);
    w.beginObject();
    w.key("bench").string(slug);
    // Written only for non-detailed runs so detailed exports keep
    // their historical shape; readers default a missing field to
    // "detailed" (perf_compare.py keys host-MIPS blocks by mode).
    if (const analysis::RunOptions opts = defaultOptions();
        opts.mode != analysis::SimMode::Detailed)
        w.key("mode").string(analysis::simModeName(opts.mode));
    w.key("phys_regs").beginArray();
    for (unsigned p : physRegs)
        w.number(std::uint64_t(p));
    w.endArray();
    w.key("series").beginObject();
    for (const auto &[name, values] : series) {
        w.key(name).beginArray();
        for (double v : values) {
            if (v < 0)
                w.null(); // configuration cannot operate
            else
                w.number(v);
        }
        w.endArray();
    }
    w.endObject();
    // Sampled-run confidence intervals: one entry per measured
    // (curve, workload, size) point. Empty (and absent) on detailed
    // runs, so detailed exports keep their historical shape.
    if (const auto &pending = sampledCiPending(); !pending.empty()) {
        w.key("sampling").beginArray();
        for (const SampledCiEntry &e : pending) {
            w.beginObject();
            w.key("label").string(e.label);
            w.key("workload").string(e.workload);
            w.key("phys_regs").number(std::uint64_t(e.physRegs));
            w.key("samples").number(std::uint64_t(e.summary.samples));
            w.key("ipc").number(e.ipc);
            w.key("ipc_ci_lo").number(e.summary.ipcCiLo());
            w.key("ipc_ci_hi").number(e.summary.ipcCiHi());
            w.key("ci_unbounded").boolean(e.summary.ciUnbounded);
            w.key("mean_cpi").number(e.summary.meanCpi);
            w.key("cpi_variance").number(e.summary.cpiVariance);
            w.key("mean_tag_valid_fraction")
                .number(e.summary.meanTagValidFraction);
            w.key("mean_bpred_table_occupancy")
                .number(e.summary.meanBpredTableOccupancy);
            w.endObject();
        }
        w.endArray();
    }
    // 3C register-cache fill classification of the reference VCA
    // configuration, for regression tracking of the shadow models.
    if (const RegCacheSummary &rc = regCacheSummary(); rc.ok) {
        w.key("reg_cache").beginObject();
        w.key("arch").string("vca");
        w.key("bench").string("crafty");
        w.key("phys_regs").number(std::uint64_t(192));
        w.key("fills_compulsory").number(rc.fillsCompulsory);
        w.key("fills_capacity").number(rc.fillsCapacity);
        w.key("fills_conflict").number(rc.fillsConflict);
        w.key("shadow_hits").number(rc.shadowHits);
        w.endObject();
    }
    // Commit-stall attribution of the reference VCA configuration,
    // in absolute cycles, for differential regression explanation.
    if (const analysis::ExplainInput &tax = cycleTaxonomySummary();
        tax.cycles > 0) {
        w.key("cycle_taxonomy").beginObject();
        w.key("arch").string("vca");
        w.key("bench").string("crafty");
        w.key("phys_regs").number(std::uint64_t(192));
        w.key("cycles").number(tax.cycles);
        w.key("insts").number(tax.insts);
        w.key("leaves").beginObject();
        for (const auto &[name, cycles] : tax.leaves)
            w.key(name).number(cycles);
        w.endObject();
        w.endObject();
    }
    // Per-point infrastructure failures accumulated by this process —
    // present only on degraded runs, so a clean export stays
    // byte-identical. perf_compare.py refuses to draw performance
    // conclusions from a document carrying failures.
    if (const auto failures =
            analysis::SweepRunner::global().allFailures();
        !failures.empty()) {
        w.key("failures").beginArray();
        for (const auto &f : failures) {
            w.beginObject();
            w.key("label").string(f.label);
            w.key("error").string(f.error);
            w.key("attempts").number(std::uint64_t(f.attempts));
            w.endObject();
        }
        w.endArray();
    }
    // Host-throughput trajectory: cumulative detailed-simulation cost
    // at the moment this bench's JSON is written (perf_compare.py
    // diffs the sim_mips field across runs).
    trace::writeJsonGroup(stats::HostStats::global(), w);
    w.endObject();
    os << '\n';
    inform("wrote %s", path.c_str());
}

int
finishBench()
{
    const auto failures = analysis::SweepRunner::global().allFailures();
    if (failures.empty())
        return 0;
    std::fprintf(stderr,
                 "bench: %zu sweep point(s) failed after retries; the "
                 "affected cells read n/a:\n",
                 failures.size());
    for (const auto &f : failures) {
        std::fprintf(stderr, "  %s: %s (%u attempt%s)\n",
                     f.label.c_str(), f.error.c_str(), f.attempts,
                     f.attempts == 1 ? "" : "s");
    }
    return 3;
}

void
printCycleAccounting(const std::vector<cpu::RenamerKind> &archs,
                     unsigned physRegs,
                     const analysis::RunOptions &opts,
                     const std::string &benchName)
{
    std::printf("\n== Cycle accounting: %s @ %u phys regs ==\n",
                benchName.c_str(), physRegs);
    std::vector<SweepPoint> points;
    for (RenamerKind kind : archs)
        points.push_back(
            analysis::makePoint(benchName, kind, physRegs, opts));
    const auto results = analysis::SweepRunner::global().run(points);
    bool header = false;
    for (size_t i = 0; i < archs.size(); ++i) {
        const Measurement &m = results[i];
        if (!header && m.ok) {
            std::printf("%-12s", "arch");
            for (const auto &[name, frac] : m.cycleBreakdown)
                std::printf(" %10s", name.c_str());
            std::printf("   (%% of cycles)\n");
            header = true;
        }
        std::printf("%-12s", archLabel(archs[i]));
        if (!m.ok) {
            std::printf(" %9s\n", "n/a");
            continue;
        }
        for (const auto &[name, frac] : m.cycleBreakdown)
            std::printf("     %5.1f%%", 100 * frac);
        std::printf("\n");
    }
}

analysis::WorkloadSelection
benchWorkloads()
{
    analysis::SelectionOptions sel;
    sel.numTwoThread =
        static_cast<unsigned>(envU64("VCA_WORKLOADS_2T", 8));
    sel.numFourThread =
        static_cast<unsigned>(envU64("VCA_WORKLOADS_4T", 6));
    sel.statInsts = envU64("VCA_SELECT_INSTS", 25'000);
    return analysis::selectWorkloads(sel);
}

const std::map<std::string, double> &
singleThreadReference(const analysis::RunOptions &opts)
{
    static std::map<std::string, double> refs;
    if (refs.empty()) {
        analysis::RunOptions refOpts = opts;
        refOpts.stopOnFirstThread = false;
        refOpts.numThreads = 1;
        const auto &profiles = wload::spec2000Profiles();
        std::vector<SweepPoint> points;
        for (const auto &prof : profiles) {
            points.push_back(analysis::makePoint(
                prof.name, cpu::RenamerKind::Baseline, 256, refOpts));
        }
        const auto results = analysis::SweepRunner::global().run(points);
        for (size_t i = 0; i < profiles.size(); ++i) {
            const auto &prof = profiles[i];
            if (!results[i].ok) {
                // Same degradation policy as regWindowSweep: infra
                // failures drop the benchmark (its workloads read
                // n/a), deterministic failures stay fatal.
                if (results[i].infra)
                    continue;
                fatal("single-thread reference failed for %s",
                      prof.name.c_str());
            }
            refs[prof.name] = analysis::executionTime(
                prof, cpu::RenamerKind::Baseline, results[i]);
        }
    }
    return refs;
}

analysis::SweepPoint
smtPoint(const std::vector<std::string> &benches, RenamerKind kind,
         unsigned physRegs, bool windowedBinaries,
         const analysis::RunOptions &baseOpts)
{
    SweepPoint point;
    point.benches = benches;
    point.windowed = windowedBinaries;
    point.kind = kind;
    point.physRegs = physRegs;
    point.opts = baseOpts;
    point.opts.stopOnFirstThread = true;
    return point;
}

double
weightedSpeedupFrom(const std::vector<std::string> &benches,
                    bool windowedBinaries, const Measurement &m,
                    const analysis::RunOptions &baseOpts)
{
    if (!m.ok)
        return -1.0;
    const auto &refs = singleThreadReference(baseOpts);

    double speedup = 0;
    for (size_t t = 0; t < benches.size(); ++t) {
        const auto &prof = wload::profileByName(benches[t]);
        const double smtExec = m.threadCpi[t] *
            static_cast<double>(
                analysis::pathLength(prof, windowedBinaries));
        if (smtExec <= 0)
            return -1.0;
        const auto ref = refs.find(benches[t]);
        if (ref == refs.end())
            return -1.0; // reference infra-failed: workload is n/a
        speedup += ref->second / smtExec;
    }
    return speedup;
}

double
weightedSpeedup(const std::vector<std::string> &benches,
                RenamerKind kind, unsigned physRegs,
                bool windowedBinaries,
                const analysis::RunOptions &baseOpts)
{
    const Measurement m = analysis::SweepRunner::global().runPoint(
        smtPoint(benches, kind, physRegs, windowedBinaries, baseOpts));
    return weightedSpeedupFrom(benches, windowedBinaries, m, baseOpts);
}

double
cacheAccessMetricFrom(const std::vector<std::string> &benches,
                      bool windowedBinaries, const Measurement &m)
{
    if (!m.ok)
        return -1.0;
    double work = 0;
    for (size_t t = 0; t < benches.size(); ++t) {
        const auto &prof = wload::profileByName(benches[t]);
        work += static_cast<double>(m.threadInsts[t]) /
                static_cast<double>(
                    analysis::pathLength(prof, windowedBinaries));
    }
    return work > 0 ? m.dcacheAccesses / work : -1.0;
}

double
cacheAccessMetric(const std::vector<std::string> &benches,
                  RenamerKind kind, unsigned physRegs,
                  bool windowedBinaries,
                  const analysis::RunOptions &baseOpts)
{
    const Measurement m = analysis::SweepRunner::global().runPoint(
        smtPoint(benches, kind, physRegs, windowedBinaries, baseOpts));
    return cacheAccessMetricFrom(benches, windowedBinaries, m);
}

} // namespace vca::bench
