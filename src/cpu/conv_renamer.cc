#include "cpu/conv_renamer.hh"

#include "sim/logging.hh"
#include "trace/debug_flags.hh"

namespace vca::cpu {

using isa::RegClass;
namespace layout = isa::layout;

TransferOp
Renamer::popTransferOp()
{
    panic("popTransferOp called on a renamer with no transfer queue");
}

void
Renamer::switchIn(ThreadId tid, const func::ArchState &state)
{
    (void)tid;
    (void)state;
    panic("switch-in not supported by this renamer");
}

std::uint64_t
Renamer::readArchReg(ThreadId tid, isa::RegClass cls, RegIndex idx)
{
    (void)tid;
    (void)cls;
    (void)idx;
    panic("readArchReg not supported by this renamer");
}

// ---------------------------------------------------------------------
// ConvRenamer
// ---------------------------------------------------------------------

ConvRenamer::ConvRenamer(const CpuParams &params, PhysRegFile &regs,
                         unsigned logicalPerThread,
                         stats::StatGroup *parent)
    : renameStallsFreeList(parent, "rename_stalls_freelist",
                           "rename stalls: no free physical register"),
      params_(params), regs_(regs), logicalPerThread_(logicalPerThread)
{
    const unsigned needed = logicalPerThread_ * params.numThreads;
    if (params.physRegs <= needed) {
        fatal("conventional renamer needs more physical registers (%u) "
              "than logical registers (%u)", params.physRegs, needed);
    }

    // Initial state: every logical register owns a physical register
    // holding its initial (zero) value; the rest form the free list.
    rat_.assign(params.numThreads, {});
    PhysRegIndex next = 0;
    for (unsigned t = 0; t < params.numThreads; ++t) {
        rat_[t].resize(logicalPerThread_);
        for (unsigned l = 0; l < logicalPerThread_; ++l) {
            rat_[t][l] = next;
            regs_.write(next, 0);
            regs_.setReady(next, true);
            ++next;
        }
    }
    for (unsigned p = next; p < params.physRegs; ++p)
        freeList_.push_back(static_cast<PhysRegIndex>(p));
}

std::int32_t
ConvRenamer::logicalIndex(ThreadId tid, RegClass cls, RegIndex idx) const
{
    (void)tid;
    return static_cast<std::int32_t>(isa::flatIndex(cls, idx));
}

void
ConvRenamer::freePhys(PhysRegIndex phys)
{
    freeList_.push_back(phys);
}

bool
ConvRenamer::rename(DynInst &inst, Cycle now)
{
    // Only reached when the dynamic type is ConvRenamer itself;
    // WindowConvRenamer overrides rename() with its own instantiation.
    return renameImpl<ConvRenamer>(inst, now);
}

CommitAction
ConvRenamer::commitInst(DynInst &inst)
{
    if (inst.si->hasDest)
        freePhys(inst.prevDestPhys);
    return {};
}

void
ConvRenamer::squashInst(DynInst &inst)
{
    if (inst.si->hasDest) {
        ratWrite(inst.tid, inst.destLogical, inst.prevDestPhys);
        freePhys(inst.destPhys);
    }
    undoControl(inst);
}

void
ConvRenamer::validate() const
{
    // Every physical register is either mapped by exactly one RAT entry,
    // on the free list, or held as a previous mapping by an in-flight
    // instruction. We can check the disjointness of RAT and free list.
    std::vector<bool> mapped(regs_.numRegs(), false);
    for (const auto &rat : rat_) {
        for (PhysRegIndex p : rat) {
            if (mapped.at(p))
                panic("physical register %d mapped twice", int(p));
            mapped[p] = true;
        }
    }
    for (PhysRegIndex p : freeList_) {
        if (mapped.at(p))
            panic("physical register %d both mapped and free", int(p));
    }
}

void
ConvRenamer::switchIn(ThreadId tid, const func::ArchState &state)
{
    if (state.windowedAbi)
        panic("flat renamer cannot switch in windowed-ABI state");
    for (unsigned f = 0; f < isa::numArchRegs; ++f) {
        const isa::ArchReg r = isa::fromFlatIndex(f);
        const std::uint64_t v = r.cls == RegClass::Int
            ? state.intRegs[r.idx] : state.fpRegs[r.idx];
        const PhysRegIndex phys =
            ratLookup(tid, logicalIndex(tid, r.cls, r.idx));
        regs_.write(phys, v);
        regs_.setReady(phys, true);
    }
}

std::uint64_t
ConvRenamer::readArchReg(ThreadId tid, RegClass cls, RegIndex idx)
{
    if (cls == RegClass::Int && idx == isa::regZero)
        return 0;
    return regs_.read(ratLookup(tid, logicalIndex(tid, cls, idx)));
}

// ---------------------------------------------------------------------
// WindowConvRenamer
// ---------------------------------------------------------------------

unsigned
WindowConvRenamer::windowsForConfig(const CpuParams &params)
{
    const unsigned g = isa::globalSlots;
    const unsigned w = isa::windowSlots;
    if (params.physRegs <= g + w + params.windowMinRenameRegs) {
        // Cannot satisfy the rename-register reservation: fall back to
        // the single window required for operation (Section 4.1 carves
        // out "the maximum number of windows ... while leaving at least
        // 64 rename registers"; below that we still need one window).
        return 1;
    }
    return (params.physRegs - g - params.windowMinRenameRegs) / w;
}

WindowConvRenamer::WindowConvRenamer(const CpuParams &params,
                                     PhysRegFile &regs,
                                     std::vector<mem::SparseMemory *>
                                         memories,
                                     stats::StatGroup *parent)
    : ConvRenamer(params, regs,
                  isa::globalSlots +
                      windowsForConfig(params) * isa::windowSlots,
                  parent),
      overflowTraps(parent, "overflow_traps", "window overflow traps"),
      underflowTraps(parent, "underflow_traps", "window underflow traps"),
      windowSaves(parent, "window_saves",
                  "registers stored by overflow handling"),
      windowRestores(parent, "window_restores",
                     "registers loaded by underflow handling"),
      numWindows_(windowsForConfig(params)),
      memories_(std::move(memories))
{
    threads_.resize(params.numThreads);
    for (auto &t : threads_) {
        t.dirty.assign(numWindows_,
                       std::vector<bool>(isa::windowSlots, false));
        setRenameDepth(t, 0);
    }
}

Addr
WindowConvRenamer::frameAddr(unsigned depth, unsigned slot)
{
    // One frame per call depth, growing down like the VCA register
    // stack; the save area is thread-private memory either way.
    return layout::windowStackTop -
           Addr(depth + 1) * layout::windowFrameBytes + Addr(slot) * 8;
}

std::int32_t
WindowConvRenamer::logicalIndex(ThreadId tid, RegClass cls,
                                RegIndex idx) const
{
    if (!isa::isWindowed(cls, idx))
        return static_cast<std::int32_t>(isa::globalSlot(cls, idx));
    // threads_[tid].windowBase caches the depth-derived window offset
    // (see setRenameDepth), keeping the per-operand path modulo-free.
    return threads_[tid].windowBase +
           static_cast<std::int32_t>(isa::windowSlot(cls, idx));
}

void
WindowConvRenamer::preRename(DynInst &inst)
{
    auto &tw = threads_[inst.tid];
    if (inst.si->isCall) {
        // The destination (ra) is renamed in the callee's window.
        inst.prevDepth = tw.renameDepth;
        setRenameDepth(tw, tw.renameDepth + 1);
    }
}

void
WindowConvRenamer::postRename(DynInst &inst)
{
    auto &tw = threads_[inst.tid];
    if (inst.si->isRet) {
        // Sources (ra) were read in the callee's window; the decrement
        // takes effect for younger instructions.
        inst.prevDepth = tw.renameDepth;
        if (tw.renameDepth > 0)
            setRenameDepth(tw, tw.renameDepth - 1);
    }
}

void
WindowConvRenamer::undoControl(DynInst &inst)
{
    if (inst.prevDepth >= 0)
        setRenameDepth(threads_[inst.tid], inst.prevDepth);
}

CommitAction
WindowConvRenamer::commitInst(DynInst &inst)
{
    CommitAction action = ConvRenamer::commitInst(inst);
    auto &tw = threads_[inst.tid];
    const isa::StaticInst &si = *inst.si;

    if (si.hasDest && !si.isCall &&
        isa::isWindowed(si.dest.cls, si.dest.idx)) {
        const unsigned window =
            static_cast<unsigned>(tw.commitDepth) % numWindows_;
        tw.dirty[window][isa::windowSlot(si.dest.cls, si.dest.idx)] =
            true;
    }

    if (si.isCall) {
        ++tw.commitDepth;
        if (tw.commitDepth - tw.oldestResident + 1 >
            static_cast<std::int32_t>(numWindows_)) {
            tw.pendingTrap = ThreadWindows::Trap::Overflow;
            // The call's ra commit overwrote the victim window's ra RAT
            // slot (same window copy); the victim's value survives in
            // the call's previous-mapping register until rename resumes.
            tw.trapOldRaPhys = inst.prevDestPhys;
            action.windowTrap = true;
            action.stallCycles = params_.windowTrapCycles;
        } else {
            // Fresh frame reuses a dead window copy: it starts clean,
            // except for the ra the call just wrote.
            const unsigned w =
                static_cast<unsigned>(tw.commitDepth) % numWindows_;
            std::fill(tw.dirty[w].begin(), tw.dirty[w].end(), false);
            tw.dirty[w][isa::windowSlot(RegClass::Int, isa::regRa)] = true;
        }
    } else if (si.isRet) {
        --tw.commitDepth;
        if (tw.commitDepth < 0)
            panic("window machine: return below depth 0");
        if (tw.commitDepth < tw.oldestResident) {
            tw.pendingTrap = ThreadWindows::Trap::Underflow;
            action.windowTrap = true;
            action.stallCycles = params_.windowTrapCycles;
        }
    }
    return action;
}

void
WindowConvRenamer::performTrap(ThreadId tid)
{
    auto &tw = threads_.at(tid);
    mem::SparseMemory &memory = *memories_.at(tid);

    if (tw.pendingTrap == ThreadWindows::Trap::Overflow) {
        ++overflowTraps;
        DPRINTFT(WindowTrap, tid,
                 "overflow trap: spilling window %d (depth %d)",
                 int(tw.oldestResident), int(tw.commitDepth));
        // Spill the oldest resident window's dirty registers. The
        // pipeline is flushed, so the RAT is architectural.
        const std::int32_t victim = tw.oldestResident;
        const unsigned w = static_cast<unsigned>(victim) % numWindows_;
        for (unsigned f = 0; f < isa::numArchRegs; ++f) {
            const isa::ArchReg r = isa::fromFlatIndex(f);
            if (!isa::isWindowed(r.cls, r.idx))
                continue;
            const unsigned slot = isa::windowSlot(r.cls, r.idx);
            if (!tw.dirty[w][slot])
                continue;
            const std::int32_t l = static_cast<std::int32_t>(
                isa::globalSlots + w * isa::windowSlots + slot);
            PhysRegIndex phys = ratLookup(tid, l);
            if (slot == isa::windowSlot(RegClass::Int, isa::regRa) &&
                tw.trapOldRaPhys != invalidPhysReg) {
                phys = tw.trapOldRaPhys;
            }
            memory.write(frameAddr(victim, slot), regs_.read(phys));
            transferQueue_.push_back(
                {true, frameAddr(victim, slot), invalidPhysReg, tid});
            ++outstandingTransfers_;
            ++windowSaves;
        }
        ++tw.oldestResident;
        // The victim window copy now hosts the new frame: clean, except
        // for the freshly written ra.
        std::fill(tw.dirty[w].begin(), tw.dirty[w].end(), false);
        tw.dirty[w][isa::windowSlot(RegClass::Int, isa::regRa)] = true;
    } else if (tw.pendingTrap == ThreadWindows::Trap::Underflow) {
        ++underflowTraps;
        DPRINTFT(WindowTrap, tid,
                 "underflow trap: restoring window %d",
                 int(tw.commitDepth));
        // Restore the whole departing-to window from memory -- "fill a
        // new window on an underflow" including dead registers.
        const std::int32_t restored = tw.commitDepth;
        const unsigned w = static_cast<unsigned>(restored) % numWindows_;
        for (unsigned f = 0; f < isa::numArchRegs; ++f) {
            const isa::ArchReg r = isa::fromFlatIndex(f);
            if (!isa::isWindowed(r.cls, r.idx))
                continue;
            const unsigned slot = isa::windowSlot(r.cls, r.idx);
            const std::int32_t l = static_cast<std::int32_t>(
                isa::globalSlots + w * isa::windowSlots + slot);
            const PhysRegIndex phys = ratLookup(tid, l);
            regs_.write(phys, memory.read(frameAddr(restored, slot)));
            regs_.setReady(phys, true);
            transferQueue_.push_back(
                {false, frameAddr(restored, slot), invalidPhysReg, tid});
            ++outstandingTransfers_;
            ++windowRestores;
        }
        --tw.oldestResident;
        std::fill(tw.dirty[w].begin(), tw.dirty[w].end(), false);
    }
    tw.pendingTrap = ThreadWindows::Trap::None;
    tw.trapOldRaPhys = invalidPhysReg;
}

void
WindowConvRenamer::switchIn(ThreadId tid, const func::ArchState &state)
{
    if (!state.windowedAbi)
        panic("window renamer expects windowed-ABI state");
    auto &tw = threads_.at(tid);
    mem::SparseMemory &memory = *memories_.at(tid);

    tw.commitDepth = static_cast<std::int32_t>(state.callDepth);
    setRenameDepth(tw, tw.commitDepth);
    tw.oldestResident = std::max<std::int32_t>(
        0, tw.commitDepth - static_cast<std::int32_t>(numWindows_) + 1);
    tw.pendingTrap = ThreadWindows::Trap::None;
    tw.trapOldRaPhys = invalidPhysReg;

    // Globals come straight from the captured register state.
    for (unsigned f = 0; f < isa::numArchRegs; ++f) {
        const isa::ArchReg r = isa::fromFlatIndex(f);
        if (isa::isWindowed(r.cls, r.idx))
            continue;
        const std::uint64_t v = r.cls == RegClass::Int
            ? state.intRegs[r.idx] : state.fpRegs[r.idx];
        const PhysRegIndex phys = ratLookup(
            tid,
            static_cast<std::int32_t>(isa::globalSlot(r.cls, r.idx)));
        regs_.write(phys, v);
        regs_.setReady(phys, true);
    }

    // Resident windows load from the functional memory image: the
    // functional core keeps windowed registers in memory at exactly
    // frameAddr's addresses, so frames at every call depth — resident
    // or spilled — are already where traps expect them.
    for (std::int32_t d = tw.oldestResident; d <= tw.commitDepth; ++d) {
        const unsigned w = static_cast<unsigned>(d) % numWindows_;
        for (unsigned f = 0; f < isa::numArchRegs; ++f) {
            const isa::ArchReg r = isa::fromFlatIndex(f);
            if (!isa::isWindowed(r.cls, r.idx))
                continue;
            const unsigned slot = isa::windowSlot(r.cls, r.idx);
            const std::int32_t l = static_cast<std::int32_t>(
                isa::globalSlots + w * isa::windowSlots + slot);
            const PhysRegIndex phys = ratLookup(tid, l);
            regs_.write(phys, memory.read(frameAddr(d, slot)));
            regs_.setReady(phys, true);
        }
        // Register values equal their memory frames, so every slot
        // starts clean: an overflow spill would be redundant.
        std::fill(tw.dirty[w].begin(), tw.dirty[w].end(), false);
    }
}

std::uint64_t
WindowConvRenamer::readArchReg(ThreadId tid, RegClass cls, RegIndex idx)
{
    if (cls == RegClass::Int && idx == isa::regZero)
        return 0;
    const auto &tw = threads_.at(tid);
    std::int32_t l;
    if (isa::isWindowed(cls, idx)) {
        const unsigned w =
            static_cast<unsigned>(tw.commitDepth) % numWindows_;
        l = static_cast<std::int32_t>(isa::globalSlots +
                                      w * isa::windowSlots +
                                      isa::windowSlot(cls, idx));
    } else {
        l = static_cast<std::int32_t>(isa::globalSlot(cls, idx));
    }
    return regs_.read(ratLookup(tid, l));
}

TransferOp
WindowConvRenamer::popTransferOp()
{
    if (transferQueue_.empty())
        panic("popTransferOp on empty window transfer queue");
    TransferOp op = transferQueue_.front();
    transferQueue_.pop_front();
    return op;
}

void
WindowConvRenamer::transferDone(const TransferOp &op)
{
    (void)op;
    if (outstandingTransfers_ == 0)
        panic("transferDone without outstanding transfers");
    --outstandingTransfers_;
}

} // namespace vca::cpu
