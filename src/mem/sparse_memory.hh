/**
 * @file
 * Sparse paged functional memory.
 *
 * Holds the architectural memory contents of one simulated address
 * space. Pages are allocated on first touch and zero-filled, so reads of
 * untouched memory (e.g. down a mispredicted path) return 0 instead of
 * faulting.
 *
 * A small direct-mapped page-pointer cache sits in front of the page
 * hash map: the functional interpreter, loadProgramData, and the VCA
 * renamer's spill/fill traffic hit the same handful of pages over and
 * over, and the cache turns the per-word unordered_map lookup into an
 * index-compare-load. The cache holds raw word pointers, which is safe
 * because pages are node-stored in the map (pointers survive rehash)
 * and their backing vectors are sized once and never resized. clear()
 * invalidates every cached pointer by bumping a generation counter.
 */

#ifndef VCA_MEM_SPARSE_MEMORY_HH
#define VCA_MEM_SPARSE_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace vca::mem {

class SparseMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageBytes = Addr(1) << pageShift;
    static constexpr unsigned wordsPerPage = pageBytes / 8;

    /** Read an aligned 64-bit word (unaligned addresses are rounded). */
    std::uint64_t
    read(Addr addr) const
    {
        if (const std::uint64_t *words = cachedWords(addr))
            return words[wordIndex(addr)];
        const Page *page = findPage(addr);
        if (!page)
            return 0; // never cache absence: a write may create the page
        cacheWords(addr, *page);
        return (*page)[wordIndex(addr)];
    }

    /** Write an aligned 64-bit word. */
    void
    write(Addr addr, std::uint64_t value)
    {
        if (std::uint64_t *words = cachedWords(addr)) {
            words[wordIndex(addr)] = value;
            return;
        }
        Page &page = getPage(addr);
        cacheWords(addr, page);
        page[wordIndex(addr)] = value;
    }

    /** Read as IEEE double (bit pattern reinterpretation). */
    double
    readDouble(Addr addr) const
    {
        std::uint64_t bits = read(addr);
        double d;
        static_assert(sizeof(d) == sizeof(bits));
        __builtin_memcpy(&d, &bits, sizeof(d));
        return d;
    }

    void
    writeDouble(Addr addr, double value)
    {
        std::uint64_t bits;
        __builtin_memcpy(&bits, &value, sizeof(bits));
        write(addr, bits);
    }

    /** Number of pages currently allocated (for tests / footprint). */
    size_t allocatedPages() const { return pages_.size(); }

    /**
     * Visit every allocated page (unspecified order) as
     * fn(pageBaseAddr, words) with words pointing at wordsPerPage
     * uint64s. Used by the switch-in protocol to copy a whole
     * functional image — including zero words, so stale nonzero
     * destination contents cannot survive the transfer.
     */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (const auto &[pageNum, page] : pages_)
            fn(pageNum << pageShift, page.data());
    }

    /** Drop all contents (invalidates every cached page pointer). */
    void
    clear()
    {
        pages_.clear();
        ++generation_;
    }

  private:
    using Page = std::vector<std::uint64_t>;

    /** Direct-mapped page-pointer cache slots (power of two). */
    static constexpr unsigned cacheSlots = 16;

    struct CacheSlot
    {
        Addr pageNum = 0;
        std::uint64_t generation = 0; ///< valid iff == generation_
        std::uint64_t *words = nullptr;
    };

    static Addr pageNumber(Addr addr) { return addr >> pageShift; }

    static unsigned
    wordIndex(Addr addr)
    {
        return static_cast<unsigned>((addr & (pageBytes - 1)) >> 3);
    }

    const Page *
    findPage(Addr addr) const
    {
        auto it = pages_.find(pageNumber(addr));
        return it == pages_.end() ? nullptr : &it->second;
    }

    Page &
    getPage(Addr addr)
    {
        auto [it, inserted] = pages_.try_emplace(pageNumber(addr));
        if (inserted)
            it->second.assign(wordsPerPage, 0);
        return it->second;
    }

    std::uint64_t *
    cachedWords(Addr addr) const
    {
        const Addr pn = pageNumber(addr);
        const CacheSlot &slot = cache_[pn & (cacheSlots - 1)];
        if (slot.generation == generation_ && slot.pageNum == pn)
            return slot.words;
        return nullptr;
    }

    void
    cacheWords(Addr addr, const Page &page) const
    {
        const Addr pn = pageNumber(addr);
        CacheSlot &slot = cache_[pn & (cacheSlots - 1)];
        slot.pageNum = pn;
        slot.generation = generation_;
        slot.words = const_cast<std::uint64_t *>(page.data());
    }

    std::unordered_map<Addr, Page> pages_;
    mutable CacheSlot cache_[cacheSlots];
    std::uint64_t generation_ = 1;
};

} // namespace vca::mem

#endif // VCA_MEM_SPARSE_MEMORY_HH
