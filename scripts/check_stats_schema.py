#!/usr/bin/env python3
"""Validate a vca-sim --stats-json document against the current schema.

The document schema is versioned by the "schemaVersion" root key
(src/trace/stats_json.hh, kStatsJsonSchemaVersion). This validator
checks the structural contract the downstream tools (vca-explain,
plot scripts, regression tracking) rely on:

  - schemaVersion == 3 and the config/summary root blocks exist with
    the right field types; config.mode names the execution mode;
  - detailed documents (config.mode == "detailed" or absent) carry the
    cpu tree: the flat six-bucket cycle accounting partitions
    cpu.cycles exactly (commit_active + mem_stall + exec_stall +
    rename_freelist + window_shift + frontend == cycles);
  - the hierarchical taxonomy partitions cpu.cycles exactly, at the
    machine level and independently per hardware-thread subtree; an
    all-zero taxonomy is tolerated (VCA_NTELEMETRY build) because the
    group is registered either way to keep the schema stable;
  - intervals (when present) have strictly increasing committed_cum,
    non-negative cycle spans, and a "partial" flag that may only be
    set on the final record;
  - non-detailed documents (config.mode == "sampled" or "simpoint")
    carry a "sampling" block instead of the cpu tree: a well-ordered
    95% CI around mean_cpi, warmth fractions in [0, 1], and exactly
    `samples` per-sample records.

Usage:
  check_stats_schema.py FILE.json [FILE2.json ...]
  check_stats_schema.py --selftest

Exit status: 0 when every file validates, 1 on a validation failure,
2 on usage/input errors.
"""

import json
import sys

EXPECTED_VERSION = 3

FLAT_BUCKETS = ("commit_active", "mem_stall", "exec_stall",
                "rename_freelist", "window_shift", "frontend")

MODES = ("detailed", "sampled", "simpoint")

SAMPLING_SUMMARY_FIELDS = ("samples", "mean_cpi", "cpi_variance",
                           "ci_lo_cpi", "ci_hi_cpi",
                           "mean_tag_valid_fraction",
                           "mean_bpred_table_occupancy")

SAMPLE_RECORD_FIELDS = ("start_inst", "warm_cycles", "warm_insts",
                        "cycles", "insts", "cpi",
                        "tag_valid_fraction",
                        "bpred_table_occupancy", "phase", "weight")


def fail(errors, msg):
    errors.append(msg)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def taxonomy_leaf_sum(group, skip_threads=True):
    """Sum every scalar under a taxonomy (sub)group, recursively."""
    total = 0.0
    for name, value in group.items():
        if skip_threads and name.startswith("thread"):
            continue
        if is_num(value):
            total += value
        elif isinstance(value, dict):
            total += taxonomy_leaf_sum(value, skip_threads=False)
    return total


def validate_sampling(doc, where):
    """Validate the non-detailed "sampling" block."""
    errors = []
    sampling = doc.get("sampling")
    if not isinstance(sampling, dict):
        return [f"{where}: non-detailed document is missing the "
                f"sampling block"]
    for key in SAMPLING_SUMMARY_FIELDS:
        if not is_num(sampling.get(key)):
            fail(errors, f"{where}: sampling.{key} is not a number")
    if not isinstance(sampling.get("ci_unbounded"), bool):
        fail(errors, f"{where}: sampling.ci_unbounded is not a "
                     f"boolean")
    if errors:
        return errors
    lo, hi = sampling["ci_lo_cpi"], sampling["ci_hi_cpi"]
    mean = sampling["mean_cpi"]
    if not lo <= mean <= hi:
        fail(errors, f"{where}: CI [{lo}, {hi}] does not bracket "
                     f"mean_cpi {mean}")
    if sampling["cpi_variance"] < 0:
        fail(errors, f"{where}: sampling.cpi_variance is negative")
    for key in ("mean_tag_valid_fraction",
                "mean_bpred_table_occupancy"):
        if not 0 <= sampling[key] <= 1:
            fail(errors, f"{where}: sampling.{key} outside [0, 1]")
    if sampling["samples"] == 1 and not sampling["ci_unbounded"]:
        fail(errors, f"{where}: one sample must flag ci_unbounded")
    records = sampling.get("records")
    if not isinstance(records, list):
        fail(errors, f"{where}: sampling.records is not an array")
        return errors
    if len(records) != sampling["samples"]:
        fail(errors, f"{where}: sampling.samples is "
                     f"{sampling['samples']} but records has "
                     f"{len(records)} entries")
    for i, rec in enumerate(records):
        tag = f"{where}: sampling.records[{i}]"
        if not isinstance(rec, dict):
            fail(errors, f"{tag}: not an object")
            continue
        for key in SAMPLE_RECORD_FIELDS:
            if not is_num(rec.get(key)):
                fail(errors, f"{tag}: {key} is not a number")
    return errors


def validate(doc, where):
    """Return a list of error strings (empty when the doc is valid)."""
    errors = []
    if not isinstance(doc, dict):
        return [f"{where}: document is not a JSON object"]

    version = doc.get("schemaVersion")
    if version != EXPECTED_VERSION:
        fail(errors, f"{where}: schemaVersion is {version!r}, "
                     f"expected {EXPECTED_VERSION}")

    config = doc.get("config")
    mode = "detailed"
    if not isinstance(config, dict):
        fail(errors, f"{where}: missing config object")
    else:
        mode = config.get("mode", "detailed")
        if mode not in MODES:
            fail(errors, f"{where}: config.mode is {mode!r}, "
                         f"expected one of {MODES}")
            mode = "detailed"
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        fail(errors, f"{where}: missing summary object")
    else:
        for key in ("cycles", "insts", "ipc"):
            if not is_num(summary.get(key)):
                fail(errors, f"{where}: summary.{key} is not a number")

    if mode != "detailed":
        errors += validate_sampling(doc, where)
        if "cpu" in doc and not isinstance(doc.get("cpu"), dict):
            fail(errors, f"{where}: cpu is not a group")
        return errors

    cpu = doc.get("cpu")
    if not isinstance(cpu, dict):
        fail(errors, f"{where}: missing cpu stats group")
        return errors
    cycles = cpu.get("cycles")
    if not is_num(cycles):
        fail(errors, f"{where}: cpu.cycles is not a number")
        return errors
    if isinstance(summary, dict) and summary.get("cycles") != cycles:
        fail(errors, f"{where}: summary.cycles ({summary.get('cycles')})"
                     f" != cpu.cycles ({cycles})")

    accounting = cpu.get("cycle_accounting")
    if not isinstance(accounting, dict):
        fail(errors, f"{where}: missing cpu.cycle_accounting group")
        return errors
    flat_sum = 0.0
    for bucket in FLAT_BUCKETS:
        value = accounting.get(bucket)
        if not is_num(value):
            fail(errors, f"{where}: cycle_accounting.{bucket} is not "
                         f"a number")
            return errors
        flat_sum += value
    if flat_sum != cycles:
        fail(errors, f"{where}: flat cycle accounting sums to "
                     f"{flat_sum}, expected cpu.cycles == {cycles}")

    taxonomy = accounting.get("taxonomy")
    if not isinstance(taxonomy, dict):
        fail(errors, f"{where}: missing cycle_accounting.taxonomy "
                     f"group")
    else:
        machine = taxonomy_leaf_sum(taxonomy)
        if machine != 0 and machine != cycles:
            fail(errors, f"{where}: taxonomy leaves sum to {machine}, "
                         f"expected 0 (VCA_NTELEMETRY) or cpu.cycles "
                         f"== {cycles}")
        for name, sub in taxonomy.items():
            if not name.startswith("thread"):
                continue
            if not isinstance(sub, dict):
                fail(errors, f"{where}: taxonomy.{name} is not a "
                             f"group")
                continue
            tsum = taxonomy_leaf_sum(sub, skip_threads=False)
            if tsum != 0 and tsum != cycles:
                fail(errors, f"{where}: taxonomy.{name} leaves sum "
                             f"to {tsum}, expected 0 or cpu.cycles "
                             f"== {cycles}")

    intervals = doc.get("intervals")
    if intervals is not None:
        if not isinstance(intervals, list):
            fail(errors, f"{where}: intervals is not an array")
            return errors
        prev_cum = 0
        for i, rec in enumerate(intervals):
            tag = f"{where}: intervals[{i}]"
            if not isinstance(rec, dict):
                fail(errors, f"{tag}: not an object")
                continue
            for key in ("start_cycle", "end_cycle", "committed",
                        "committed_cum"):
                if not is_num(rec.get(key)):
                    fail(errors, f"{tag}: {key} is not a number")
            cum = rec.get("committed_cum")
            if is_num(cum):
                if cum <= prev_cum:
                    fail(errors, f"{tag}: committed_cum {cum} does "
                                 f"not increase (previous {prev_cum})")
                prev_cum = cum
            if (is_num(rec.get("start_cycle")) and
                    is_num(rec.get("end_cycle")) and
                    rec["end_cycle"] < rec["start_cycle"]):
                fail(errors, f"{tag}: end_cycle precedes start_cycle")
            partial = rec.get("partial")
            if not isinstance(partial, bool):
                fail(errors, f"{tag}: partial flag is not a boolean")
            elif partial and i != len(intervals) - 1:
                fail(errors, f"{tag}: partial on a non-final record")
    return errors


def check_file(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        return 2
    errors = validate(doc, path)
    for msg in errors:
        print(f"error: {msg}", file=sys.stderr)
    if not errors:
        print(f"{path}: OK (schemaVersion {EXPECTED_VERSION})")
    return 1 if errors else 0


def make_valid_doc():
    leaves = {
        "retiring": 60, "idle": 0,
        "frontend_bound": {"icache": 5, "fetch": 10},
        "bad_speculation": {"recovery": 0},
        "backend_core": {"exec": 10, "rename_freelist": 0},
        "backend_memory": {"dcache": 10, "store_drain": 0,
                           "fill_latency": 0, "spill_stall": 5,
                           "window_trap": 0},
    }
    thread0 = json.loads(json.dumps(leaves))
    return {
        "schemaVersion": 3,
        "config": {"arch": "vca", "regs": 192, "threads": 1,
                   "mode": "detailed"},
        "summary": {"cycles": 100, "insts": 60, "ipc": 0.6},
        "cpu": {
            "cycles": 100,
            "cycle_accounting": {
                "commit_active": 60, "mem_stall": 10, "exec_stall": 10,
                "rename_freelist": 5, "window_shift": 0,
                "frontend": 15,
                "taxonomy": dict(leaves, thread0=thread0),
            },
        },
        "intervals": [
            {"interval": 0, "start_cycle": 0, "end_cycle": 50,
             "committed": 30, "committed_cum": 30, "ipc": 0.6,
             "partial": False},
            {"interval": 1, "start_cycle": 50, "end_cycle": 100,
             "committed": 30, "committed_cum": 60, "ipc": 0.6,
             "partial": True},
        ],
    }


def make_sampled_doc():
    def rec(i, cpi):
        return {"start_inst": 10000 + 10000 * i, "warm_cycles": 3200,
                "warm_insts": 3000, "cycles": int(cpi * 2000),
                "insts": 2000, "cpi": cpi,
                "tag_valid_fraction": 0.4 + 0.1 * i,
                "bpred_table_occupancy": 0.1 + 0.05 * i,
                "phase": -1, "weight": 1.0}
    return {
        "schemaVersion": 3,
        "config": {"arch": "vca", "regs": 192, "threads": 1,
                   "mode": "sampled", "sample_period": 10000,
                   "sample_quantum": 2000},
        "summary": {"cycles": 6100, "insts": 6000, "ipc": 0.9836,
                    "cpi": 1.0167},
        "sampling": {
            "samples": 3, "mean_cpi": 1.0167,
            "cpi_variance": 0.000433,
            "ci_lo_cpi": 0.965, "ci_hi_cpi": 1.068,
            "ci_unbounded": False,
            "mean_tag_valid_fraction": 0.5,
            "mean_bpred_table_occupancy": 0.15,
            "records": [rec(0, 1.0), rec(1, 1.01), rec(2, 1.04)],
        },
    }


def selftest():
    failures = []

    def expect(doc, ok, what):
        errors = validate(doc, what)
        if bool(errors) == ok:
            failures.append(f"{what}: expected "
                            f"{'OK' if ok else 'errors'}, got "
                            f"{errors or 'OK'}")

    expect(make_valid_doc(), True, "valid document")

    doc = make_valid_doc()
    doc["schemaVersion"] = 1
    expect(doc, False, "wrong schemaVersion")

    doc = make_valid_doc()
    doc["cpu"]["cycle_accounting"]["mem_stall"] += 1
    expect(doc, False, "broken flat partition")

    doc = make_valid_doc()
    doc["cpu"]["cycle_accounting"]["taxonomy"]["retiring"] -= 1
    expect(doc, False, "broken taxonomy partition")

    doc = make_valid_doc()
    doc["cpu"]["cycle_accounting"]["taxonomy"]["thread0"]["retiring"] \
        += 3
    expect(doc, False, "broken per-thread taxonomy partition")

    # All-zero taxonomy (VCA_NTELEMETRY build) is legal.
    doc = make_valid_doc()
    tax = doc["cpu"]["cycle_accounting"]["taxonomy"]

    def zero(group):
        for key, value in group.items():
            if isinstance(value, dict):
                zero(value)
            else:
                group[key] = 0
    zero(tax)
    expect(doc, True, "all-zero taxonomy (VCA_NTELEMETRY)")

    doc = make_valid_doc()
    doc["intervals"][1]["committed_cum"] = 30
    expect(doc, False, "non-increasing committed_cum")

    doc = make_valid_doc()
    doc["intervals"][0]["partial"] = True
    expect(doc, False, "partial flag on a non-final interval")

    doc = make_valid_doc()
    del doc["intervals"]
    expect(doc, True, "document without intervals")

    expect(make_sampled_doc(), True, "valid sampled document")

    doc = make_sampled_doc()
    doc["config"]["mode"] = "simpoint"
    expect(doc, True, "valid simpoint document")

    doc = make_sampled_doc()
    doc["config"]["mode"] = "interleaved"
    expect(doc, False, "unknown config.mode")

    doc = make_sampled_doc()
    del doc["sampling"]
    expect(doc, False, "non-detailed document without sampling")

    doc = make_sampled_doc()
    doc["sampling"]["ci_lo_cpi"] = 1.5
    expect(doc, False, "CI that does not bracket the mean")

    doc = make_sampled_doc()
    doc["sampling"]["records"].pop()
    expect(doc, False, "records/samples count mismatch")

    doc = make_sampled_doc()
    del doc["sampling"]["records"][0]["cpi"]
    expect(doc, False, "record missing a field")

    doc = make_sampled_doc()
    doc["sampling"]["mean_tag_valid_fraction"] = 1.5
    expect(doc, False, "warmth fraction outside [0, 1]")

    doc = make_sampled_doc()
    doc["sampling"]["samples"] = 1
    doc["sampling"]["records"] = doc["sampling"]["records"][:1]
    expect(doc, False, "n=1 without the ci_unbounded flag")

    doc = make_sampled_doc()
    doc["sampling"]["samples"] = 1
    doc["sampling"]["records"] = doc["sampling"]["records"][:1]
    doc["sampling"]["ci_unbounded"] = True
    doc["sampling"]["ci_lo_cpi"] = doc["sampling"]["mean_cpi"] = 1.0
    doc["sampling"]["ci_hi_cpi"] = 1.0
    expect(doc, True, "n=1 flagged unbounded")

    for msg in failures:
        print(f"selftest: FAILED: {msg}", file=sys.stderr)
    print("selftest: " + ("FAILED" if failures else "OK"))
    return 1 if failures else 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[1] == "--selftest":
        return selftest()
    status = 0
    for path in argv[1:]:
        status = max(status, check_file(path))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
