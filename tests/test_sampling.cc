/**
 * @file
 * Unit tests for the sampling confidence-interval estimator
 * (src/analysis/sampling.hh): the weighted mean/variance, the
 * effective (Kish) sample count, the t critical values, and
 * computeSamplingSummary() including the degenerate cases the stats
 * contract documents (n=1 flags an unbounded CI; identical samples
 * collapse to a zero-width CI).
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/sampling.hh"

namespace {

using namespace vca;
using analysis::SampleRecord;
using analysis::SamplingSummary;

SampleRecord
rec(double cpi, double weight = 1.0, int phase = -1)
{
    SampleRecord r;
    r.startInst = 10'000;
    r.cycles = static_cast<Cycle>(cpi * 1000);
    r.insts = 1000;
    r.cpi = cpi;
    r.tagValidFraction = 0.5;
    r.bpredTableOccupancy = 0.25;
    r.phase = phase;
    r.weight = weight;
    return r;
}

TEST(SamplingMath, WeightedMeanEqualWeights)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> w = {1.0, 1.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(analysis::weightedMean(xs, w), 2.5);
}

TEST(SamplingMath, WeightedMeanRespectsWeights)
{
    const std::vector<double> xs = {1.0, 3.0};
    const std::vector<double> w = {3.0, 1.0};
    EXPECT_DOUBLE_EQ(analysis::weightedMean(xs, w), 1.5);
}

TEST(SamplingMath, WeightedVarianceEqualWeightsMatchesBessel)
{
    // With equal weights the reliability-weighted estimator reduces to
    // the classic unbiased sample variance (n-1 denominator).
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> w = {1.0, 1.0, 1.0, 1.0};
    double mean = 2.5, ss = 0;
    for (double x : xs)
        ss += (x - mean) * (x - mean);
    EXPECT_NEAR(analysis::weightedVariance(xs, w), ss / 3.0, 1e-12);
}

TEST(SamplingMath, WeightedVarianceScaleInvariantWeights)
{
    // Reliability weights are defined up to a scale factor.
    const std::vector<double> xs = {1.0, 2.0, 5.0};
    const std::vector<double> w1 = {0.2, 0.5, 0.3};
    std::vector<double> w2;
    for (double w : w1)
        w2.push_back(1000 * w);
    EXPECT_NEAR(analysis::weightedVariance(xs, w1),
                analysis::weightedVariance(xs, w2), 1e-9);
}

TEST(SamplingMath, WeightedVarianceDegenerate)
{
    EXPECT_DOUBLE_EQ(analysis::weightedVariance({1.0}, {1.0}), 0.0);
    EXPECT_DOUBLE_EQ(
        analysis::weightedVariance({2.0, 2.0, 2.0}, {1.0, 1.0, 1.0}),
        0.0);
}

TEST(SamplingMath, EffectiveSampleCount)
{
    // Equal weights: n_eff == n. Concentrated weight: n_eff -> 1.
    EXPECT_NEAR(analysis::effectiveSampleCount({1, 1, 1, 1}), 4.0,
                1e-12);
    EXPECT_NEAR(analysis::effectiveSampleCount({100, 1e-6, 1e-6}), 1.0,
                1e-3);
    const double mixed =
        analysis::effectiveSampleCount({0.5, 0.3, 0.2});
    EXPECT_GT(mixed, 1.0);
    EXPECT_LT(mixed, 3.0);
}

TEST(SamplingMath, TCriticalValues)
{
    // Spot values from the standard t table (two-sided, 95%).
    EXPECT_NEAR(analysis::tCritical95(1), 12.706, 1e-3);
    EXPECT_NEAR(analysis::tCritical95(10), 2.228, 1e-3);
    EXPECT_NEAR(analysis::tCritical95(30), 2.042, 1e-3);
    // Beyond the table the tail approximation must stay monotone
    // decreasing toward the normal quantile 1.96.
    const double t60 = analysis::tCritical95(60);
    const double t1000 = analysis::tCritical95(1000);
    EXPECT_GT(analysis::tCritical95(31), t60);
    EXPECT_GT(t60, t1000);
    EXPECT_NEAR(t1000, 1.96, 5e-3);
    // Fractional dof floor conservatively (wider interval).
    EXPECT_GE(analysis::tCritical95(2.7), analysis::tCritical95(3));
}

TEST(SamplingSummaryTest, SingleSampleFlagsUnboundedCi)
{
    const SamplingSummary s =
        analysis::computeSamplingSummary({rec(1.25)});
    EXPECT_EQ(s.samples, 1u);
    EXPECT_TRUE(s.ciUnbounded);
    EXPECT_DOUBLE_EQ(s.meanCpi, 1.25);
    EXPECT_DOUBLE_EQ(s.cpiVariance, 0.0);
    // The bounds collapse to the mean (JSON carries no infinities);
    // the flag is the signal that the interval is unusable.
    EXPECT_DOUBLE_EQ(s.ciLoCpi, 1.25);
    EXPECT_DOUBLE_EQ(s.ciHiCpi, 1.25);
}

TEST(SamplingSummaryTest, IdenticalSamplesZeroWidthCi)
{
    const SamplingSummary s = analysis::computeSamplingSummary(
        {rec(0.8), rec(0.8), rec(0.8), rec(0.8)});
    EXPECT_EQ(s.samples, 4u);
    EXPECT_FALSE(s.ciUnbounded);
    EXPECT_DOUBLE_EQ(s.meanCpi, 0.8);
    EXPECT_DOUBLE_EQ(s.cpiVariance, 0.0);
    EXPECT_DOUBLE_EQ(s.ciLoCpi, 0.8);
    EXPECT_DOUBLE_EQ(s.ciHiCpi, 0.8);
}

TEST(SamplingSummaryTest, TwoSampleIntervalMatchesHandComputation)
{
    // n=2, x = {1.0, 1.2}: mean 1.1, s^2 = 0.02, half-width
    // t(1) * sqrt(s^2 / 2) = 12.706 * 0.1.
    const SamplingSummary s =
        analysis::computeSamplingSummary({rec(1.0), rec(1.2)});
    EXPECT_FALSE(s.ciUnbounded);
    EXPECT_NEAR(s.meanCpi, 1.1, 1e-12);
    EXPECT_NEAR(s.cpiVariance, 0.02, 1e-12);
    const double hw = 12.706 * std::sqrt(0.02 / 2.0);
    EXPECT_NEAR(s.ciHiCpi - s.meanCpi, hw, 1e-3);
    // The analytic lower bound 1.1 - 1.27 is negative; CPI clamps
    // at zero rather than reporting an impossible bound.
    EXPECT_DOUBLE_EQ(s.ciLoCpi, 0.0);
}

TEST(SamplingSummaryTest, CiLowerBoundClampedToZero)
{
    // A huge spread around a small mean would put the analytic lower
    // bound below zero; CPI is nonnegative, so it clamps.
    const SamplingSummary s =
        analysis::computeSamplingSummary({rec(0.01), rec(2.0)});
    EXPECT_GE(s.ciLoCpi, 0.0);
    EXPECT_LE(s.ciLoCpi, s.meanCpi);
    EXPECT_GE(s.ciHiCpi, s.meanCpi);
}

TEST(SamplingSummaryTest, WeightedMeanMatchesSimPointHeadline)
{
    // SimPoint phases carry weights; the summary mean must be the
    // weight-combined CPI the headline number reports.
    const SamplingSummary s = analysis::computeSamplingSummary(
        {rec(1.0, 0.6, 0), rec(2.0, 0.3, 1), rec(4.0, 0.1, 2)});
    EXPECT_EQ(s.samples, 3u);
    EXPECT_NEAR(s.meanCpi, 0.6 * 1.0 + 0.3 * 2.0 + 0.1 * 4.0, 1e-12);
    EXPECT_FALSE(s.ciUnbounded);
    EXPECT_LT(s.ciLoCpi, s.meanCpi);
    EXPECT_GT(s.ciHiCpi, s.meanCpi);
}

TEST(SamplingSummaryTest, WarmthMetricsAverage)
{
    std::vector<SampleRecord> rs = {rec(1.0), rec(1.0)};
    rs[0].tagValidFraction = 0.2;
    rs[1].tagValidFraction = 0.6;
    rs[0].bpredTableOccupancy = 0.1;
    rs[1].bpredTableOccupancy = 0.5;
    const SamplingSummary s = analysis::computeSamplingSummary(rs);
    EXPECT_NEAR(s.meanTagValidFraction, 0.4, 1e-12);
    EXPECT_NEAR(s.meanBpredTableOccupancy, 0.3, 1e-12);
}

TEST(SamplingSummaryTest, EmptyRecordSet)
{
    const SamplingSummary s = analysis::computeSamplingSummary({});
    EXPECT_EQ(s.samples, 0u);
    EXPECT_FALSE(s.ciUnbounded);
    EXPECT_DOUBLE_EQ(s.meanCpi, 0.0);
}

TEST(SamplingSummaryTest, IpcAccessorsAreReciprocals)
{
    const SamplingSummary s =
        analysis::computeSamplingSummary({rec(1.0), rec(1.2)});
    EXPECT_NEAR(s.ipcCiLo(), 1.0 / s.ciHiCpi, 1e-12);
    EXPECT_NEAR(s.ipcCiHi(), s.ciLoCpi > 0 ? 1.0 / s.ciLoCpi : 0.0,
                1e-12);
    EXPECT_LE(s.ipcCiLo(), 1.0 / s.meanCpi);
}

TEST(SamplingSummaryTest, CiIsPureFunctionOfRecords)
{
    // The property the cross-worker determinism tests rely on: the
    // summary depends only on the record list, not on evaluation
    // order or repetition.
    const std::vector<SampleRecord> rs = {rec(0.9), rec(1.1),
                                          rec(1.05), rec(0.95)};
    const SamplingSummary a = analysis::computeSamplingSummary(rs);
    const SamplingSummary b = analysis::computeSamplingSummary(rs);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.ciLoCpi, b.ciLoCpi);
    EXPECT_EQ(a.ciHiCpi, b.ciHiCpi);
}

} // namespace
