#include "wload/generator.hh"

#include <algorithm>
#include <map>
#include <mutex>
#include <string>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "wload/asm_builder.hh"

namespace vca::wload {

using isa::Opcode;
using isa::RegClass;

namespace {

// ---------------------------------------------------------------------
// Register roster (windowed names; identical in both ABIs).
// ---------------------------------------------------------------------
constexpr RegIndex rSp = isa::regSp;
constexpr RegIndex rGp = isa::regGp;
constexpr RegIndex rA0 = isa::regArg0;
constexpr RegIndex rRng = isa::regArg5; // global xorshift state (r9)

constexpr RegIndex rBase = 10; // array base pointer
constexpr RegIndex rMask = 11; // footprint mask
constexpr RegIndex rPtr = 12;  // pointer-chase cursor
constexpr RegIndex rIdx = 13;  // loop induction variable
constexpr RegIndex rTmp = 14;  // scratch
constexpr RegIndex firstAccum = 15;
constexpr RegIndex maxAccums = 32 - firstAccum; // 17

constexpr RegIndex firstFpAccum = 8;

// ---------------------------------------------------------------------
// Plan representation
// ---------------------------------------------------------------------

enum class MKind : std::uint8_t
{
    IntOp,    ///< acc[d] = acc[a] op acc[b]
    IntImm,   ///< acc[d] = acc[a] op imm
    FpOp,     ///< facc[d] = facc[a] op facc[b]
    LoadSeq, LoadRand, LoadChase,
    StoreSeq, StoreRand,
    FLoadSeq, FLoadRand,
    FStoreSeq,
    RngStep,  ///< advance the global xorshift register
};

struct MicroOp
{
    MKind kind;
    Opcode opc = Opcode::Add;
    std::uint8_t d = 0, a = 0, b = 0;
    std::uint8_t shift = 0;   ///< r9 bit-extract shift for *Rand
    std::int32_t off = 0;     ///< small load/store displacement
    std::int32_t imm = 0;
};

struct Segment
{
    enum Kind { Ops, Diamond, Loop, CallSite } kind = Ops;
    std::vector<MicroOp> ops;     // Ops body / loop body / diamond then
    std::vector<MicroOp> elseOps; // diamond else
    bool hardCond = false;
    unsigned trip = 0;
    unsigned callee = 0;
};

struct FuncPlan
{
    unsigned id = 0;
    bool leaf = true;
    unsigned accums = 1;
    unsigned fpAccums = 0;
    bool usesChase = false;
    std::uint64_t arrayBase = 0;
    std::uint64_t mask = 0;
    std::uint64_t chaseCursorCell = 0;
    std::vector<Segment> body;
    double dynCost = 0; ///< per-invocation dynamic instructions (approx)
};

struct ProgramPlan
{
    std::vector<FuncPlan> funcs;
    std::vector<isa::DataSegment> data;
    unsigned mainIterations = 1;
    std::uint64_t rngSeed = 1;
};

// Cost of one micro-op in emitted dynamic instructions.
double
opCost(const MicroOp &op)
{
    switch (op.kind) {
      case MKind::IntOp: case MKind::IntImm: case MKind::FpOp:
        return 1;
      case MKind::LoadChase:
        return 2;
      case MKind::RngStep:
        return 6;
      default:
        return 4; // shift/and/add + memory op
    }
}

double
segmentCost(const Segment &seg, const std::vector<FuncPlan> &funcs)
{
    double ops = 0;
    for (const MicroOp &op : seg.ops)
        ops += opCost(op);
    switch (seg.kind) {
      case Segment::Ops:
        return ops;
      case Segment::Diamond: {
        double elseCost = 0;
        for (const MicroOp &op : seg.elseOps)
            elseCost += opCost(op);
        const double cond = seg.hardCond ? 9 : 3;
        return cond + (ops + elseCost) / 2 + 1;
      }
      case Segment::Loop:
        return 1 + seg.trip * (ops + 2);
      case Segment::CallSite:
        return 4 + funcs.at(seg.callee).dynCost;
    }
    return ops;
}

// ---------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------

class Planner
{
  public:
    Planner(const BenchProfile &profile)
        : profile_(profile), rng_(profile.seed * 0x9e3779b97f4a7c15ULL + 1)
    {
    }

    ProgramPlan
    plan()
    {
        ProgramPlan pp;
        pp.rngSeed = profile_.seed | 1;

        footprint_ = roundDownPow2(
            std::max<std::uint64_t>(profile_.footprintBytes, 4096));
        pp.funcs.resize(profile_.numFuncs);

        // Data layout: cursor cells in the first page, then the
        // pointer-chase chain, then the (footprint-aligned) array
        // region. Keeping the chain outside the array region means
        // random stores can never corrupt chain pointers, so the chase
        // access pattern is identical under both ABIs.
        cursorArea_ = 0; // byte offset from dataBase for cursor cells
        chaseBytes_ = profile_.pointerChaseFrac > 0
            ? std::min<std::uint64_t>(footprint_, 2 * 1024 * 1024) : 0;
        chaseBase_ = isa::layout::dataBase + 4096;
        const std::uint64_t arraysAt = chaseBase_ + chaseBytes_;
        arrayBase_ = (arraysAt + footprint_ - 1) & ~(footprint_ - 1);

        // Plan from the highest id down so subtree costs are known when
        // lower functions choose their children.
        for (int id = static_cast<int>(profile_.numFuncs) - 1; id >= 0;
             --id) {
            pp.funcs[id] = planFunction(static_cast<unsigned>(id),
                                        pp.funcs);
        }

        // Size the outer loop from the (approximate) per-iteration cost
        // so every benchmark reaches its target dynamic length.
        const double iterCost = std::max(1.0, pp.funcs[0].dynCost);
        pp.mainIterations = static_cast<unsigned>(std::clamp(
            static_cast<double>(profile_.targetDynInsts) / iterCost,
            8.0, 8000.0));

        buildDataSegments(pp);
        return pp;
    }

  private:
    static std::uint64_t
    roundDownPow2(std::uint64_t v)
    {
        std::uint64_t p = 1;
        while (p * 2 <= v)
            p *= 2;
        return p;
    }

    /** Per-iteration dynamic budget for the subtree rooted at id. */
    double
    budget(unsigned id) const
    {
        const double iterBudget =
            profile_.callHeavy ? 18000.0 : 30000.0;
        return iterBudget / (1.0 + 0.9 * id);
    }

    /**
     * Pick an accumulator index with a quadratic bias toward low
     * indices: real code concentrates most accesses on a few hot
     * registers, and the register working set size drives VCA's
     * spill/fill traffic.
     */
    std::uint8_t
    pickAccum(unsigned count)
    {
        const double r = rng_.uniform();
        return static_cast<std::uint8_t>(
            std::min<unsigned>(count - 1,
                               static_cast<unsigned>(r * r * count)));
    }

    MicroOp
    randomComputeOp(FuncPlan &f, bool allowFp)
    {
        MicroOp op;
        const bool fp = allowFp && profile_.fpFrac > 0 &&
                        rng_.chance(profile_.fpFrac);
        if (fp) {
            op.kind = MKind::FpOp;
            static const Opcode fpOps[] = {Opcode::Fadd, Opcode::Fsub,
                                           Opcode::Fmul, Opcode::Fadd,
                                           Opcode::Fmul, Opcode::Fdiv};
            op.opc = fpOps[rng_.below(6)];
            // Avoid frequent divides (realistic mix).
            if (op.opc == Opcode::Fdiv && !rng_.chance(0.15))
                op.opc = Opcode::Fmul;
            op.d = pickAccum(f.fpAccums);
            op.a = pickAccum(f.fpAccums);
            op.b = pickAccum(f.fpAccums);
            return op;
        }
        if (rng_.chance(0.3)) {
            op.kind = MKind::IntImm;
            static const Opcode immOps[] = {Opcode::Addi, Opcode::Xori,
                                            Opcode::Ori, Opcode::Andi};
            op.opc = immOps[rng_.below(4)];
            op.imm = static_cast<std::int32_t>(rng_.range(1, 255));
        } else {
            op.kind = MKind::IntOp;
            static const Opcode aluOps[] = {Opcode::Add, Opcode::Sub,
                                            Opcode::Xor, Opcode::Or,
                                            Opcode::And, Opcode::Add,
                                            Opcode::Mul};
            op.opc = aluOps[rng_.below(7)];
        }
        op.d = pickAccum(f.accums);
        op.a = pickAccum(f.accums);
        op.b = pickAccum(f.accums);
        return op;
    }

    MicroOp
    randomMemOp(FuncPlan &f)
    {
        MicroOp op;
        const bool isStore = rng_.chance(0.35);
        const bool isRand = rng_.chance(0.4);
        const bool isFp = profile_.fpFrac > 0 && f.fpAccums > 0 &&
                          rng_.chance(profile_.fpFrac * 0.8);
        if (!isStore && f.usesChase &&
            rng_.chance(profile_.pointerChaseFrac)) {
            op.kind = MKind::LoadChase;
            op.d = pickAccum(f.accums);
            return op;
        }
        if (isStore) {
            op.kind = isFp ? MKind::FStoreSeq
                           : (isRand ? MKind::StoreRand : MKind::StoreSeq);
        } else {
            if (isFp)
                op.kind = isRand ? MKind::FLoadRand : MKind::FLoadSeq;
            else
                op.kind = isRand ? MKind::LoadRand : MKind::LoadSeq;
        }
        op.d = pickAccum(isFp ? f.fpAccums : f.accums);
        op.a = op.d;
        op.shift = static_cast<std::uint8_t>(rng_.range(3, 34));
        op.off = static_cast<std::int32_t>(rng_.below(8)) * 8;
        return op;
    }

    std::vector<MicroOp>
    planOpRun(FuncPlan &f, unsigned n, bool allowFp)
    {
        std::vector<MicroOp> ops;
        ops.reserve(n);
        for (unsigned i = 0; i < n; ++i) {
            if (rng_.chance(profile_.memOpFrac))
                ops.push_back(randomMemOp(f));
            else
                ops.push_back(randomComputeOp(f, allowFp));
        }
        return ops;
    }

    FuncPlan
    planFunction(unsigned id, const std::vector<FuncPlan> &funcs)
    {
        FuncPlan f;
        f.id = id;
        f.accums = static_cast<unsigned>(std::clamp<std::int64_t>(
            static_cast<std::int64_t>(profile_.avgLocals) - 3 +
                rng_.range(-1, 1),
            1, maxAccums));
        f.fpAccums = profile_.fpFrac > 0
            ? static_cast<unsigned>(rng_.range(3, 6)) : 0;
        f.usesChase = profile_.pointerChaseFrac > 0;
        f.arrayBase = arrayBase_;
        f.mask = footprint_ - 1;
        if (f.usesChase) {
            f.chaseCursorCell = isa::layout::dataBase + cursorArea_;
            cursorArea_ += 8;
        }

        const bool isMain = (id == 0);
        // Functions in the lower third of the DAG are always interior:
        // this guarantees call chains with real depth regardless of the
        // leaf-fraction rolls (leaves cluster at high ids, as in real
        // call graphs where utility routines are leaves).
        const bool forcedInterior = id < profile_.numFuncs / 3 &&
                                    id + 1 < profile_.numFuncs;
        const bool mayHaveChildren = isMain
            ? (profile_.numFuncs > 1)
            : (id + 1 < profile_.numFuncs &&
               (forcedInterior || !rng_.chance(profile_.leafFrac)));
        f.leaf = !mayHaveChildren;

        // Choose children (greedy, budget-capped).
        std::vector<unsigned> children;
        if (mayHaveChildren) {
            double spent = 0;
            const double cap = budget(id);
            const unsigned fanout = isMain
                ? std::max(3u, profile_.callFanout)
                : profile_.callFanout;
            for (unsigned k = 0; k < fanout; ++k) {
                const unsigned lo = id + 1;
                const unsigned hi = std::min<unsigned>(
                    id + profile_.callSpan,
                    profile_.numFuncs - 1);
                if (lo > hi)
                    break;
                const auto child = static_cast<unsigned>(
                    rng_.range(lo, hi));
                if (spent + funcs.at(child).dynCost > cap && k > 0)
                    continue;
                children.push_back(child);
                spent += funcs.at(child).dynCost;
            }
            f.leaf = children.empty();
        }

        // Body structure: interleave compute/diamond/loop segments with
        // the call sites.
        const unsigned nSegments =
            std::max<unsigned>(2, profile_.bodyOps / 16);
        const unsigned opsPerSeg =
            std::max<unsigned>(2, profile_.bodyOps / nSegments);
        std::vector<Segment> body;
        for (unsigned s = 0; s < nSegments; ++s) {
            const double roll = rng_.uniform();
            Segment seg;
            if (!isMain && roll < 0.25) {
                seg.kind = Segment::Loop;
                seg.trip = std::max<unsigned>(1, static_cast<unsigned>(
                    rng_.range(static_cast<std::int64_t>(
                                   profile_.loopTripMean / 2) + 1,
                               static_cast<std::int64_t>(
                                   profile_.loopTripMean * 3 / 2) + 1)));
                seg.ops = planOpRun(f, opsPerSeg, true);
            } else if (!isMain && roll < 0.55) {
                seg.kind = Segment::Diamond;
                seg.hardCond = rng_.chance(profile_.randomBranchFrac);
                seg.ops = planOpRun(f, opsPerSeg / 2 + 1, true);
                seg.elseOps = planOpRun(f, opsPerSeg / 2 + 1, true);
            } else {
                seg.kind = Segment::Ops;
                seg.ops = planOpRun(f, opsPerSeg, true);
            }
            body.push_back(std::move(seg));
        }

        // Insert call sites at random top-level positions.
        for (unsigned child : children) {
            Segment call;
            call.kind = Segment::CallSite;
            call.callee = child;
            const auto pos = static_cast<size_t>(
                rng_.below(body.size() + 1));
            body.insert(body.begin() + pos, std::move(call));
        }
        f.body = std::move(body);

        // Cost accounting (per invocation).
        double cost = 8; // prologue-ish setup
        for (const Segment &seg : f.body)
            cost += segmentCost(seg, funcs);
        f.dynCost = cost;
        return f;
    }

    void
    buildDataSegments(ProgramPlan &pp)
    {
        // Pointer-chase chain: a shuffled cycle of 64-byte-spaced nodes
        // covering min(footprint, 2 MiB), shared by all chasing
        // functions. Node i holds the address of its successor.
        if (chaseBytes_ > 0) {
            const size_t nodes = chaseBytes_ / 64;
            std::vector<std::uint32_t> order(nodes);
            for (size_t i = 0; i < nodes; ++i)
                order[i] = static_cast<std::uint32_t>(i);
            for (size_t i = nodes - 1; i > 0; --i) {
                const size_t j = rng_.below(i + 1);
                std::swap(order[i], order[j]);
            }
            const Addr chaseBase = chaseBase_;
            isa::DataSegment seg;
            seg.base = chaseBase;
            seg.words.assign(chaseBytes_ / 8, 0);
            for (size_t i = 0; i < nodes; ++i) {
                const std::uint32_t cur = order[i];
                const std::uint32_t nxt = order[(i + 1) % nodes];
                seg.words[cur * 8] = chaseBase + Addr(nxt) * 64;
            }
            pp.data.push_back(std::move(seg));

            // Cursor cells: every chasing function starts somewhere on
            // the cycle.
            isa::DataSegment cursors;
            cursors.base = isa::layout::dataBase;
            cursors.words.assign(std::max<std::uint64_t>(cursorArea_ / 8,
                                                         1), 0);
            for (FuncPlan &f : pp.funcs) {
                if (!f.usesChase)
                    continue;
                const size_t cell =
                    (f.chaseCursorCell - isa::layout::dataBase) / 8;
                const std::uint32_t start = order[rng_.below(nodes)];
                cursors.words[cell] = chaseBase + Addr(start) * 64;
            }
            pp.data.push_back(std::move(cursors));
        }

        // Seed a slice of the array region with nonzero values so loads
        // feed interesting data into the accumulators.
        isa::DataSegment vals;
        vals.base = arrayBase_;
        const size_t seedWords =
            static_cast<size_t>(std::min<std::uint64_t>(footprint_ / 8,
                                                        8192));
        vals.words.resize(seedWords);
        for (size_t i = 0; i < seedWords; ++i)
            vals.words[i] = rng_.next() | 1;
        pp.data.push_back(std::move(vals));
    }

    const BenchProfile &profile_;
    Rng rng_;
    std::uint64_t footprint_ = 0;
    std::uint64_t cursorArea_ = 0;
    std::uint64_t chaseBytes_ = 0;
    std::uint64_t chaseBase_ = 0;
    std::uint64_t arrayBase_ = 0;
};

// ---------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------

class Emitter
{
  public:
    Emitter(const ProgramPlan &pp, bool windowed)
        : pp_(pp), windowed_(windowed)
    {
    }

    isa::Program
    emit(const std::string &name)
    {
        for (size_t i = 0; i < pp_.funcs.size(); ++i)
            funcLabels_.push_back(asmb_.newLabel());

        for (const FuncPlan &f : pp_.funcs)
            emitFunction(f);

        isa::Program prog;
        prog.name = name;
        prog.windowedAbi = windowed_;
        prog.entry = 0;
        prog.code = asmb_.seal();
        prog.data = pp_.data;
        prog.finalize();
        return prog;
    }

  private:
    /** Windowed integer registers this function writes (for saving). */
    std::vector<RegIndex>
    savedIntRegs(const FuncPlan &f) const
    {
        std::vector<RegIndex> regs = {rBase, rMask, rIdx, rTmp};
        if (f.usesChase)
            regs.push_back(rPtr);
        for (unsigned a = 0; a < f.accums; ++a)
            regs.push_back(static_cast<RegIndex>(firstAccum + a));
        if (!f.leaf)
            regs.push_back(isa::regRa);
        return regs;
    }

    std::vector<RegIndex>
    savedFpRegs(const FuncPlan &f) const
    {
        std::vector<RegIndex> regs;
        for (unsigned a = 0; a < f.fpAccums; ++a)
            regs.push_back(static_cast<RegIndex>(firstFpAccum + a));
        return regs;
    }

    void
    emitFunction(const FuncPlan &f)
    {
        asmb_.bind(funcLabels_.at(f.id));
        const bool isMain = (f.id == 0);

        const std::vector<RegIndex> ints = savedIntRegs(f);
        const std::vector<RegIndex> fps = savedFpRegs(f);
        const auto frame =
            static_cast<std::int32_t>(8 * (ints.size() + fps.size()));

        if (isMain) {
            // Runtime setup: stack, global pointer, RNG register.
            asmb_.li(rSp, isa::layout::stackTop);
            asmb_.li(rGp, isa::layout::dataBase);
            asmb_.li(rRng, pp_.rngSeed);
        } else if (!windowed_) {
            // Callee-save prologue.
            asmb_.addi(rSp, rSp, -frame);
            std::int32_t off = 0;
            for (RegIndex r : ints) {
                asmb_.st(rSp, r, off);
                off += 8;
            }
            for (RegIndex r : fps) {
                asmb_.fst(rSp, r, off);
                off += 8;
            }
        }

        emitSetup(f);

        if (isMain) {
            // Outer loop: rIdx counts down mainIterations.
            asmb_.addi(rIdx, isa::regZero,
                       static_cast<std::int32_t>(
                           std::min<unsigned>(pp_.mainIterations, 8000)));
            const auto top = asmb_.newLabel();
            asmb_.bind(top);
            for (const Segment &seg : f.body)
                emitSegment(f, seg, /*inMainLoop=*/true);
            asmb_.addi(rIdx, rIdx, -1);
            asmb_.branch(Opcode::Bne, rIdx, isa::regZero, top);
            asmb_.halt();
            return;
        }

        // Seed the first accumulator from the argument register.
        asmb_.mov(static_cast<RegIndex>(firstAccum), rA0);

        for (const Segment &seg : f.body)
            emitSegment(f, seg, false);

        // Chase cursor write-back.
        if (f.usesChase) {
            asmb_.li(rTmp, f.chaseCursorCell);
            asmb_.st(rTmp, rPtr, 0);
        }

        // Return value.
        asmb_.mov(rA0, static_cast<RegIndex>(firstAccum));

        if (!windowed_) {
            std::int32_t off = 0;
            for (RegIndex r : ints) {
                asmb_.ld(r, rSp, off);
                off += 8;
            }
            for (RegIndex r : fps) {
                asmb_.fld(r, rSp, off);
                off += 8;
            }
            asmb_.addi(rSp, rSp, frame);
        }
        asmb_.ret();
    }

    void
    emitSetup(const FuncPlan &f)
    {
        asmb_.li(rBase, f.arrayBase);
        asmb_.li(rMask, f.mask & ~Addr(7));
        if (f.usesChase) {
            asmb_.li(rTmp, f.chaseCursorCell);
            asmb_.ld(rPtr, rTmp, 0);
        }
        // Initialize every register the body may read before writing it;
        // otherwise the two ABIs would observe different leftover values
        // (caller's registers vs. stale window contents) and could take
        // different dynamic paths.
        asmb_.addi(rIdx, isa::regZero,
                   static_cast<std::int32_t>(f.id + 1));
        for (unsigned a = 0; a < f.accums; ++a)
            asmb_.addi(static_cast<RegIndex>(firstAccum + a),
                       isa::regZero,
                       static_cast<std::int32_t>(17 * (a + f.id) + 3));
        for (unsigned a = 0; a < f.fpAccums; ++a)
            asmb_.emitR(isa::Opcode::Fcvtif,
                        static_cast<RegIndex>(firstFpAccum + a),
                        static_cast<RegIndex>(
                            firstAccum + (a % f.accums)),
                        isa::regZero);
    }

    void
    emitSegment(const FuncPlan &f, const Segment &seg, bool inMainLoop)
    {
        switch (seg.kind) {
          case Segment::Ops:
            for (const MicroOp &op : seg.ops)
                emitOp(f, op);
            break;

          case Segment::Diamond: {
            const auto elseL = asmb_.newLabel();
            const auto done = asmb_.newLabel();
            if (seg.hardCond) {
                emitRngStep();
                asmb_.emitI(Opcode::Srli, rTmp, rRng, 13);
                asmb_.emitI(Opcode::Andi, rTmp, rTmp, 1);
            } else {
                asmb_.emitI(Opcode::Andi, rTmp, rIdx, 1);
            }
            asmb_.branch(Opcode::Beq, rTmp, isa::regZero, elseL);
            for (const MicroOp &op : seg.ops)
                emitOp(f, op);
            asmb_.jmp(done);
            asmb_.bind(elseL);
            for (const MicroOp &op : seg.elseOps)
                emitOp(f, op);
            asmb_.bind(done);
            break;
          }

          case Segment::Loop: {
            // Nested loops would clobber rIdx in main; planner never
            // emits Loop segments in main.
            asmb_.addi(rTmp, isa::regZero,
                       static_cast<std::int32_t>(seg.trip));
            asmb_.mov(rIdx, rTmp);
            const auto top = asmb_.newLabel();
            asmb_.bind(top);
            for (const MicroOp &op : seg.ops)
                emitOp(f, op);
            asmb_.addi(rIdx, rIdx, -1);
            asmb_.branch(Opcode::Bne, rIdx, isa::regZero, top);
            break;
          }

          case Segment::CallSite: {
            (void)inMainLoop;
            asmb_.mov(rA0, static_cast<RegIndex>(firstAccum));
            asmb_.call(funcLabels_.at(seg.callee));
            asmb_.emitR(Opcode::Add, static_cast<RegIndex>(firstAccum),
                        static_cast<RegIndex>(firstAccum), rA0);
            break;
          }
        }
    }

    void
    emitRngStep()
    {
        // xorshift64: x ^= x<<13; x ^= x>>7; x ^= x<<17
        asmb_.emitI(Opcode::Slli, rTmp, rRng, 13);
        asmb_.emitR(Opcode::Xor, rRng, rRng, rTmp);
        asmb_.emitI(Opcode::Srli, rTmp, rRng, 7);
        asmb_.emitR(Opcode::Xor, rRng, rRng, rTmp);
        asmb_.emitI(Opcode::Slli, rTmp, rRng, 17);
        asmb_.emitR(Opcode::Xor, rRng, rRng, rTmp);
    }

    void
    emitAddress(const MicroOp &op, bool sequential)
    {
        if (sequential) {
            asmb_.emitI(Opcode::Slli, rTmp, rIdx, 6);
        } else {
            asmb_.emitI(Opcode::Srli, rTmp, rRng,
                        static_cast<std::int32_t>(op.shift));
            asmb_.emitI(Opcode::Slli, rTmp, rTmp, 3);
        }
        asmb_.emitR(Opcode::And, rTmp, rTmp, rMask);
        asmb_.emitR(Opcode::Add, rTmp, rTmp, rBase);
    }

    void
    emitOp(const FuncPlan &f, const MicroOp &op)
    {
        (void)f;
        const auto acc = [&](std::uint8_t i) {
            return static_cast<RegIndex>(firstAccum + i);
        };
        const auto facc = [&](std::uint8_t i) {
            return static_cast<RegIndex>(firstFpAccum + i);
        };
        switch (op.kind) {
          case MKind::IntOp:
            asmb_.emitR(op.opc, acc(op.d), acc(op.a), acc(op.b));
            break;
          case MKind::IntImm:
            asmb_.emitI(op.opc, acc(op.d), acc(op.a), op.imm);
            break;
          case MKind::FpOp:
            asmb_.emitR(op.opc, facc(op.d), facc(op.a), facc(op.b));
            break;
          case MKind::LoadSeq:
            emitAddress(op, true);
            asmb_.ld(acc(op.d), rTmp, op.off);
            break;
          case MKind::LoadRand:
            emitAddress(op, false);
            asmb_.ld(acc(op.d), rTmp, op.off);
            break;
          case MKind::LoadChase:
            asmb_.ld(rPtr, rPtr, 0);
            asmb_.emitR(Opcode::Add, acc(op.d), acc(op.d), rPtr);
            break;
          case MKind::StoreSeq:
            emitAddress(op, true);
            asmb_.st(rTmp, acc(op.a), op.off);
            break;
          case MKind::StoreRand:
            emitAddress(op, false);
            asmb_.st(rTmp, acc(op.a), op.off);
            break;
          case MKind::FLoadSeq:
            emitAddress(op, true);
            asmb_.fld(facc(op.d), rTmp, op.off);
            break;
          case MKind::FLoadRand:
            emitAddress(op, false);
            asmb_.fld(facc(op.d), rTmp, op.off);
            break;
          case MKind::FStoreSeq:
            emitAddress(op, true);
            asmb_.fst(rTmp, facc(op.a), op.off);
            break;
          case MKind::RngStep:
            emitRngStep();
            break;
        }
    }

    const ProgramPlan &pp_;
    bool windowed_;
    AsmBuilder asmb_;
    std::vector<AsmBuilder::Label> funcLabels_;
};

} // namespace

isa::Program
generateProgram(const BenchProfile &profile, bool windowedAbi)
{
    Planner planner(profile);
    const ProgramPlan pp = planner.plan();
    Emitter emitter(pp, windowedAbi);
    return emitter.emit(profile.name);
}

const isa::Program *
cachedProgram(const BenchProfile &profile, bool windowedAbi)
{
    static std::mutex mutex;
    static std::map<std::pair<std::string, bool>,
                    std::unique_ptr<isa::Program>> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_pair(profile.name, windowedAbi);
    auto it = cache.find(key);
    if (it == cache.end()) {
        auto prog = std::make_unique<isa::Program>(
            generateProgram(profile, windowedAbi));
        it = cache.emplace(key, std::move(prog)).first;
    }
    return it->second.get();
}

} // namespace vca::wload
