/**
 * @file
 * The renamer abstraction the out-of-order core is built against.
 *
 * All four architectures the paper compares (baseline, conventional
 * register windows, idealized windows, VCA) differ *only* in register
 * management, which mirrors the paper's claim that VCA has "minimal
 * impact outside of the rename stage" (Section 2.1). The pipeline asks
 * the renamer to map instructions, notifies it of commits and
 * squashes, and services its architectural-state transfer operations
 * (VCA spills/fills, conventional-window trap saves/restores) through
 * spare data-cache ports.
 */

#ifndef VCA_CPU_RENAMER_HH
#define VCA_CPU_RENAMER_HH

#include <cstdint>

#include "cpu/dyn_inst.hh"
#include "func/func_sim.hh"
#include "mem/sparse_memory.hh"
#include "sim/types.hh"

namespace vca::cpu {

/** One architectural-state transfer memory operation. */
struct TransferOp
{
    bool isStore = false;              ///< spill/save vs fill/restore
    Addr addr = invalidAddr;           ///< memory address accessed
    PhysRegIndex reg = invalidPhysReg; ///< fill target (VCA fills only)
    ThreadId tid = 0;
};

/** What the pipeline must do after committing an instruction. */
struct CommitAction
{
    bool windowTrap = false; ///< flush younger, stall, run performTrap()
    unsigned stallCycles = 0;
};

class Renamer
{
  public:
    virtual ~Renamer() = default;

    /**
     * Coarse cause of the most recent rename() refusal, for the cycle
     * taxonomy: transfer backpressure (the spill/fill ASTQ is full, so
     * the stall is really memory-system pressure) versus everything
     * else (free list, table conflicts, rename ports).
     */
    enum class StallCause : std::uint8_t
    {
        FreeList,            ///< registers / table / ports exhausted
        TransferBackpressure ///< spill-fill queue (ASTQ) full
    };

    /** Cause of the last rename() that returned false. Only meaningful
     *  immediately after a refusal; defaults to FreeList. */
    virtual StallCause
    lastStallCause() const
    {
        return StallCause::FreeList;
    }

    /** Per-thread execution context (ABI flag for address generation). */
    virtual void
    setThreadContext(ThreadId tid, bool windowedAbi)
    {
        (void)tid;
        (void)windowedAbi;
    }

    /** Called once at the top of each rename cycle (resets port use). */
    virtual void beginCycle(Cycle now) { (void)now; }

    /**
     * Rename one instruction in program order. On success fills the
     * inst's physical register fields and returns true. Returns false
     * to stall (no free registers, table conflict, port/ASTQ limits);
     * the caller retries the same instruction next cycle with no state
     * to undo.
     */
    virtual bool rename(DynInst &inst, Cycle now) = 0;

    /** In-order commit notification. */
    virtual CommitAction commitInst(DynInst &inst) = 0;

    /**
     * Undo one squashed instruction's rename effects. Called
     * youngest-first for every renamed instruction being flushed.
     */
    virtual void squashInst(DynInst &inst) = 0;

    /**
     * Execute a window trap requested by commitInst (the pipeline has
     * already been flushed). Moves architectural values and enqueues
     * the timing transfer ops.
     */
    virtual void performTrap(ThreadId tid) { (void)tid; }

    /**
     * Rename-stage stall cycles to rebuild the map after a mispredict
     * (the P4-style commit-table walk of Section 2.1.3).
     * @param instsBeforeBranch ROB entries between head and the branch
     */
    virtual unsigned
    recoveryCycles(unsigned instsBeforeBranch) const
    {
        (void)instsBeforeBranch;
        return 0;
    }

    /** Extra front-end stages (VCA's second rename stage, Figure 1). */
    virtual unsigned extraFrontendCycles() const { return 0; }

    // ---- Transfer-op service (driven by the LSU) ----

    /** True if a transfer op is waiting to issue. */
    virtual bool hasTransferOp() const { return false; }

    /** Pop the head transfer op (only when hasTransferOp()). */
    virtual TransferOp popTransferOp();

    /** Notification that a popped transfer op's cache access finished. */
    virtual void transferDone(const TransferOp &op) { (void)op; }

    /**
     * True while rename must stay blocked until transfers drain
     * (conventional window traps serialize the pipeline; VCA transfers
     * do not block).
     */
    virtual bool transfersBlockRename() const { return false; }

    // ---- Switch-in protocol (functional fast-forward → detailed) ----

    /**
     * Install a functional core's architectural register state as this
     * renamer's committed state for @p tid. Only legal before the
     * first simulated cycle, while the pipeline is empty; the thread's
     * memory image must already hold the (relocated) functional image
     * so renamers that keep registers in memory find their values.
     */
    virtual void switchIn(ThreadId tid, const func::ArchState &state);

    /**
     * Committed architectural value of one register, read through
     * whatever structure this renamer keeps it in (RAT + physical
     * file, window frames, memory-mapped register space). Used to
     * check the switch-in transfer invariant against the functional
     * golden model.
     */
    virtual std::uint64_t readArchReg(ThreadId tid, isa::RegClass cls,
                                      RegIndex idx);

    /**
     * Map an address from the functional core's register space (which
     * always uses thread 0's layout) into this renamer's register
     * space for @p tid. Identity unless the renamer places each
     * thread's memory-mapped registers in a distinct region.
     */
    virtual Addr
    relocateRegSpace(ThreadId tid, Addr addr) const
    {
        (void)tid;
        return addr;
    }

    /** Internal-consistency check for tests (panics on violation). */
    virtual void validate() const {}
};

} // namespace vca::cpu

#endif // VCA_CPU_RENAMER_HH
