# Smoke test: vca-sim --stats-json on a tiny workload must produce a
# document that passes scripts/check_stats_schema.py (schemaVersion,
# exact flat and hierarchical cycle partitions, interval monotonicity
# and partial-flag placement).
#
# Invoked by ctest (see CMakeLists.txt) with:
#   VCA_SIM   path to the vca-sim binary
#   PYTHON3   python3 interpreter
#   CHECKER   scripts/check_stats_schema.py
#   OUT       scratch path for the stats JSON

execute_process(
    COMMAND "${VCA_SIM}" --bench=crafty --arch=vca --regs=192
            --warmup=2000 --insts=20000 --interval=3000 --stats=false
            "--stats-json=${OUT}"
    RESULT_VARIABLE sim_rc)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR "vca-sim --stats-json failed (rc=${sim_rc})")
endif()

execute_process(
    COMMAND "${PYTHON3}" "${CHECKER}" "${OUT}"
    RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
            "stats JSON failed schema validation (rc=${check_rc})")
endif()

file(REMOVE "${OUT}")
