/**
 * @file
 * Unit tests for the VRISC-64 ISA: register partition invariants,
 * encode/decode round trips, and decode classification.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "isa/inst.hh"
#include "isa/program.hh"
#include "isa/registers.hh"

namespace {

using namespace vca;
using namespace vca::isa;

// ---------------------------------------------------------------------
// Register partition
// ---------------------------------------------------------------------

TEST(Registers, PartitionCounts)
{
    unsigned windowed = 0, global = 0;
    for (unsigned f = 0; f < numArchRegs; ++f) {
        const ArchReg r = fromFlatIndex(f);
        if (isWindowed(r.cls, r.idx))
            ++windowed;
        else
            ++global;
    }
    EXPECT_EQ(windowed, windowSlots);
    EXPECT_EQ(global, globalSlots);
    EXPECT_EQ(windowed + global, numArchRegs);
}

TEST(Registers, AbiRoles)
{
    EXPECT_FALSE(isWindowed(RegClass::Int, regZero));
    EXPECT_TRUE(isWindowed(RegClass::Int, regRa));
    EXPECT_FALSE(isWindowed(RegClass::Int, regSp));
    EXPECT_FALSE(isWindowed(RegClass::Int, regGp));
    for (RegIndex a = regArg0; a <= regArg5; ++a)
        EXPECT_FALSE(isWindowed(RegClass::Int, a)) << "arg r" << a;
    for (RegIndex t = firstIntTemp; t < numIntRegs; ++t)
        EXPECT_TRUE(isWindowed(RegClass::Int, t)) << "temp r" << t;
    for (RegIndex f = 0; f < 8; ++f)
        EXPECT_FALSE(isWindowed(RegClass::Float, f));
    for (RegIndex f = 8; f < numFloatRegs; ++f)
        EXPECT_TRUE(isWindowed(RegClass::Float, f));
}

TEST(Registers, WindowSlotIsBijective)
{
    std::vector<bool> seen(windowSlots, false);
    for (unsigned f = 0; f < numArchRegs; ++f) {
        const ArchReg r = fromFlatIndex(f);
        if (!isWindowed(r.cls, r.idx))
            continue;
        const unsigned slot = windowSlot(r.cls, r.idx);
        ASSERT_LT(slot, windowSlots);
        EXPECT_FALSE(seen[slot]) << "slot " << slot << " duplicated";
        seen[slot] = true;
    }
}

TEST(Registers, GlobalSlotIsBijective)
{
    std::vector<bool> seen(globalSlots, false);
    for (unsigned f = 0; f < numArchRegs; ++f) {
        const ArchReg r = fromFlatIndex(f);
        if (isWindowed(r.cls, r.idx))
            continue;
        const unsigned slot = globalSlot(r.cls, r.idx);
        ASSERT_LT(slot, globalSlots);
        EXPECT_FALSE(seen[slot]) << "slot " << slot << " duplicated";
        seen[slot] = true;
    }
}

TEST(Registers, FlatIndexRoundTrip)
{
    for (unsigned f = 0; f < numArchRegs; ++f) {
        const ArchReg r = fromFlatIndex(f);
        EXPECT_EQ(flatIndex(r.cls, r.idx), f);
    }
}

// ---------------------------------------------------------------------
// Encode / decode
// ---------------------------------------------------------------------

TEST(Decode, RFormatRoundTrip)
{
    const auto w = encodeR(Opcode::Sub, 5, 7, 9);
    const StaticInst si = decode(w);
    EXPECT_EQ(si.op, Opcode::Sub);
    ASSERT_TRUE(si.hasDest);
    EXPECT_EQ(si.dest.cls, RegClass::Int);
    EXPECT_EQ(si.dest.idx, 5);
    ASSERT_EQ(si.numSrcs, 2u);
    EXPECT_EQ(si.src[0].idx, 7);
    EXPECT_EQ(si.src[1].idx, 9);
    EXPECT_TRUE(si.srcValid[0]);
    EXPECT_TRUE(si.srcValid[1]);
}

TEST(Decode, ZeroRegisterSourcesAreInvalidButPositional)
{
    // sub r5, r0, r3: src[0] must stay positional (constant 0).
    const StaticInst si = decode(encodeR(Opcode::Sub, 5, 0, 3));
    ASSERT_EQ(si.numSrcs, 2u);
    EXPECT_FALSE(si.srcValid[0]);
    EXPECT_TRUE(si.srcValid[1]);
    EXPECT_EQ(si.src[1].idx, 3);
}

TEST(Decode, ZeroRegisterDestIsDropped)
{
    const StaticInst si = decode(encodeR(Opcode::Add, 0, 1, 2));
    EXPECT_FALSE(si.hasDest);
}

TEST(Decode, IFormatNegativeImmediate)
{
    const StaticInst si = decode(encodeI(Opcode::Addi, 4, 4, -128));
    EXPECT_EQ(si.imm, -128);
    EXPECT_EQ(si.op, Opcode::Addi);
}

TEST(Decode, ImmediateExtremes)
{
    EXPECT_EQ(decode(encodeI(Opcode::Addi, 1, 1, imm14Max)).imm, imm14Max);
    EXPECT_EQ(decode(encodeI(Opcode::Addi, 1, 1, imm14Min)).imm, imm14Min);
}

TEST(Decode, LoadStoreClassification)
{
    const StaticInst ld = decode(encodeI(Opcode::Ld, 10, 2, 16));
    EXPECT_TRUE(ld.isLoad);
    EXPECT_FALSE(ld.isStore);
    EXPECT_EQ(ld.fu, FuClass::MemRead);
    EXPECT_TRUE(ld.isMem());

    const StaticInst st = decode(encodeB(Opcode::St, 2, 10, 24));
    EXPECT_TRUE(st.isStore);
    ASSERT_EQ(st.numSrcs, 2u);
    EXPECT_EQ(st.src[0].idx, 2);  // base
    EXPECT_EQ(st.src[1].idx, 10); // data
    EXPECT_EQ(st.imm, 24);
}

TEST(Decode, FloatLoadUsesIntBase)
{
    const StaticInst fld = decode(encodeI(Opcode::Fld, 9, 2, 0));
    EXPECT_EQ(fld.dest.cls, RegClass::Float);
    EXPECT_EQ(fld.src[0].cls, RegClass::Int);
    EXPECT_TRUE(fld.isFloat);
}

TEST(Decode, FloatStoreSources)
{
    const StaticInst fst = decode(encodeB(Opcode::Fst, 2, 9, 8));
    ASSERT_EQ(fst.numSrcs, 2u);
    EXPECT_EQ(fst.src[0].cls, RegClass::Int);
    EXPECT_EQ(fst.src[1].cls, RegClass::Float);
}

TEST(Decode, BranchClassification)
{
    const StaticInst b = decode(encodeB(Opcode::Bne, 13, 0, -5));
    EXPECT_TRUE(b.isBranch);
    EXPECT_TRUE(b.isControl());
    EXPECT_FALSE(b.hasDest);
    EXPECT_EQ(b.imm, -5);
}

TEST(Decode, CallWritesRa)
{
    const StaticInst c = decode(encodeJ(Opcode::Call, 1234));
    EXPECT_TRUE(c.isCall);
    ASSERT_TRUE(c.hasDest);
    EXPECT_EQ(c.dest.idx, regRa);
    EXPECT_EQ(c.imm, 1234);
}

TEST(Decode, RetReadsRa)
{
    const StaticInst r = decode(encodeJ(Opcode::Ret, 0));
    EXPECT_TRUE(r.isRet);
    ASSERT_EQ(r.numSrcs, 1u);
    EXPECT_EQ(r.src[0].idx, regRa);
}

TEST(Decode, UnknownOpcodeDecodesToHalt)
{
    const StaticInst si = decode(0xffu << 24);
    EXPECT_TRUE(si.isHalt);
}

TEST(Decode, AllOpcodesDecodeWithoutPanic)
{
    for (unsigned op = 0; op < unsigned(Opcode::NumOpcodes); ++op) {
        const std::uint32_t w = (op << 24) | (3u << 19) | (4u << 14) |
                                (5u << 9);
        EXPECT_NO_THROW({
            const StaticInst si = decode(w);
            EXPECT_FALSE(disassemble(si).empty());
        }) << "opcode " << op;
    }
}

TEST(Disassemble, ReadableOutput)
{
    EXPECT_EQ(disassemble(encodeR(Opcode::Add, 5, 6, 7)).substr(0, 3),
              "add");
    EXPECT_NE(disassemble(encodeI(Opcode::Ld, 10, 2, 16)).find("r10"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Program container
// ---------------------------------------------------------------------

TEST(Program, OutOfRangePcDecodesToHalt)
{
    Program p;
    p.name = "tiny";
    p.code = {encodeR(Opcode::Add, 1, 2, 3)};
    p.finalize();
    EXPECT_TRUE(p.inst(100).isHalt);
    EXPECT_EQ(p.inst(0).op, Opcode::Add);
}

TEST(Program, LayoutInvariants)
{
    using namespace layout;
    EXPECT_EQ(windowFrameBytes % 8, 0u);
    EXPECT_GE(windowFrameBytes, windowSlots * 8);
    // Dense frames spread across the 64 rename-table sets: the frame
    // stride in slots must be coprime with the set count.
    EXPECT_EQ(std::gcd<unsigned>(windowFrameBytes / 8, 64), 1u);
    EXPECT_EQ(initialWindowPointer() % 8, 0u);
    // The register space must not collide with code/data/stack.
    EXPECT_GT(regSpaceBase, stackTop);
}

} // namespace
