#include "sim/fault_inject.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "sim/logging.hh"

namespace vca {

namespace {

/** splitmix64 finalizer: the same mixer the sweep seeds use. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::atomic<std::uint64_t> gFired[kNumFaultSites];

FaultInjector &
globalMutable()
{
    static FaultInjector inst = [] {
        const char *env = std::getenv("VCA_FAULT_INJECT");
        return env && *env ? FaultInjector::parse(env) : FaultInjector();
    }();
    return inst;
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::WorkerCrash:     return "crash";
      case FaultSite::WorkerHang:      return "hang";
      case FaultSite::CacheCorruptRead: return "corrupt";
      case FaultSite::CacheWriteFail:  return "writefail";
    }
    return "?";
}

FaultInjector
FaultInjector::parse(const std::string &spec)
{
    FaultInjector fi;
    fi.enabled_ = true;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatal("VCA_FAULT_INJECT: expected key=value, got '%s'",
                  item.c_str());
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        char *rest = nullptr;
        if (key == "seed") {
            fi.seed_ = std::strtoull(value.c_str(), &rest, 10);
            if (!rest || *rest)
                fatal("VCA_FAULT_INJECT: bad seed '%s'", value.c_str());
            if (fi.seed_ == 0)
                fi.seed_ = 1;
            continue;
        }
        if (key == "attempts") {
            const unsigned long n =
                std::strtoul(value.c_str(), &rest, 10);
            if (!rest || *rest || n == 0)
                fatal("VCA_FAULT_INJECT: bad attempts '%s'",
                      value.c_str());
            fi.maxAttempts_ = static_cast<unsigned>(n);
            continue;
        }
        int site = -1;
        for (unsigned s = 0; s < kNumFaultSites; ++s)
            if (key == faultSiteName(static_cast<FaultSite>(s)))
                site = static_cast<int>(s);
        if (site < 0)
            fatal("VCA_FAULT_INJECT: unknown key '%s' (seed, attempts, "
                  "crash, hang, corrupt, writefail)", key.c_str());
        const double p = std::strtod(value.c_str(), &rest);
        if (!rest || *rest || !(p >= 0.0 && p <= 1.0))
            fatal("VCA_FAULT_INJECT: %s probability '%s' not in [0,1]",
                  key.c_str(), value.c_str());
        fi.prob_[site] = p;
    }
    return fi;
}

double
FaultInjector::probability(FaultSite site) const
{
    return prob_[static_cast<unsigned>(site)];
}

bool
FaultInjector::shouldFire(FaultSite site, std::uint64_t id,
                          unsigned attempt) const
{
    const unsigned idx = static_cast<unsigned>(site);
    const double p = prob_[idx];
    if (p <= 0.0 || attempt >= maxAttempts_)
        return false;
    // Independent per-site streams: chain the finalizer over the salt,
    // the id and the attempt so nearby ids decorrelate fully.
    std::uint64_t z = mix64(seed_ ^ (0xa24baed4963ee407ULL * (idx + 1)));
    z = mix64(z ^ id);
    z = mix64(z ^ attempt);
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    if (u >= p)
        return false;
    gFired[idx].fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::uint64_t
FaultInjector::firedCount(FaultSite site)
{
    return gFired[static_cast<unsigned>(site)].load(
        std::memory_order_relaxed);
}

void
FaultInjector::resetFiredCounts()
{
    for (auto &c : gFired)
        c.store(0, std::memory_order_relaxed);
}

const FaultInjector &
FaultInjector::global()
{
    return globalMutable();
}

void
FaultInjector::installGlobal(const std::string &spec)
{
    globalMutable() = spec.empty() ? FaultInjector()
                                   : FaultInjector::parse(spec);
}

} // namespace vca
