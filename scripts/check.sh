#!/usr/bin/env bash
# Full verification sweep: build and test the Release configuration and
# an AddressSanitizer/UBSan configuration.
#
# The Release configuration runs every ctest label (unit + golden,
# including the slow determinism sweep). The sanitizer configuration
# runs only -L unit: the golden suite asserts exact cycle counts that
# are identical across configurations anyway, and simulating the sweep
# twice more under ASan adds minutes for no extra signal.
#
# Usage: scripts/check.sh [extra ctest args...]
#   CHECK_JOBS=N        parallelism (default: nproc)
#   CHECK_BUILD_DIR=dir build-tree root (default: build-check)
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${CHECK_JOBS:-$(nproc)}"
root="${CHECK_BUILD_DIR:-build-check}"

run_config() {
    local name="$1"
    local label="$2"
    shift 2
    local dir="$root/$name"
    local -a label_args=()
    [[ -n "$label" ]] && label_args=(-L "$label")
    echo "== configure $name =="
    cmake -B "$dir" -S . "$@" >/dev/null
    echo "== build $name =="
    cmake --build "$dir" -j "$jobs"
    echo "== test $name =="
    (cd "$dir" &&
         ctest --output-on-failure -j "$jobs" "${label_args[@]}" \
               "${CTEST_ARGS[@]}")
}

CTEST_ARGS=("$@")

if command -v python3 >/dev/null; then
    echo "== perf_compare selftest =="
    python3 scripts/perf_compare.py --selftest
fi

run_config release "" -DCMAKE_BUILD_TYPE=Release
run_config asan-ubsan unit \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVCA_SANITIZE=address,undefined

echo "== all configurations passed =="
