#!/usr/bin/env bash
# Full verification sweep: build and test the Release configuration and
# an AddressSanitizer/UBSan configuration.
#
# Usage: scripts/check.sh [extra ctest args...]
#   CHECK_JOBS=N        parallelism (default: nproc)
#   CHECK_BUILD_DIR=dir build-tree root (default: build-check)
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${CHECK_JOBS:-$(nproc)}"
root="${CHECK_BUILD_DIR:-build-check}"

run_config() {
    local name="$1"
    shift
    local dir="$root/$name"
    echo "== configure $name =="
    cmake -B "$dir" -S . "$@" >/dev/null
    echo "== build $name =="
    cmake --build "$dir" -j "$jobs"
    echo "== test $name =="
    (cd "$dir" && ctest --output-on-failure -j "$jobs" "${CTEST_ARGS[@]}")
}

CTEST_ARGS=("$@")

run_config release -DCMAKE_BUILD_TYPE=Release
run_config asan-ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVCA_SANITIZE=address,undefined

echo "== all configurations passed =="
