#include "isa/program.hh"

#include "sim/logging.hh"

namespace vca::isa {

void
Program::finalize()
{
    decoded_.clear();
    decoded_.reserve(code.size());
    for (std::uint32_t word : code)
        decoded_.push_back(decode(word));
    haltInst_ = decode(encodeJ(Opcode::Halt, 0));
    if (entry >= code.size() && !code.empty())
        panic("program '%s': entry %llu outside code (%zu words)",
              name.c_str(), static_cast<unsigned long long>(entry),
              code.size());
}

} // namespace vca::isa
