/**
 * @file
 * Fault-tolerance tests: the deterministic fault-injection harness,
 * cache integrity (every corruption variant quarantines and
 * re-simulates bit-identically), process-isolated workers with
 * deadlines and retries, crash-safe journaling with --resume, and
 * the chaos property the whole layer exists for — a sweep under
 * injected crashes, hangs, corrupt reads and failed writes produces
 * exactly the same Measurements as a clean run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "analysis/experiment.hh"
#include "analysis/runner.hh"
#include "sim/fault_inject.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"

using namespace vca;
using namespace vca::analysis;
namespace fs = std::filesystem;

namespace {

/** Fresh, empty cache directory under the system temp dir. */
std::string
freshCacheDir(const char *name)
{
    const fs::path dir = fs::temp_directory_path() /
                         (std::string("vca_test_robust_") + name);
    fs::remove_all(dir);
    return dir.string();
}

RunOptions
tinyOptions()
{
    RunOptions opts;
    opts.warmupInsts = 500;
    opts.measureInsts = 4'000;
    return opts;
}

/** Restores the clean (disabled) global injector on scope exit. */
struct InjectorGuard
{
    ~InjectorGuard()
    {
        FaultInjector::installGlobal("");
        FaultInjector::resetFiredCounts();
    }
};

/** The one cache entry file ("<16 hex>.json") in dir, or empty. */
fs::path
soleEntryPath(const std::string &dir)
{
    if (!fs::is_directory(dir))
        return {};
    for (const auto &e : fs::directory_iterator(dir)) {
        if (!e.is_regular_file())
            continue;
        const std::string name = e.path().filename().string();
        if (name.size() == 21 && name.ends_with(".json"))
            return e.path();
    }
    return {};
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return text;
}

void
spew(const fs::path &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
}

/** Cacheless reference measurement for a point. */
Measurement
referenceFor(const SweepPoint &point)
{
    SweepConfig cfg;
    cfg.cacheDir.clear();
    cfg.jobs = 1;
    SweepRunner runner(cfg);
    return runner.runPoint(point);
}

/**
 * Corrupt-then-repair scaffold shared by the cache-integrity tests:
 * seed a cache with one entry, let `corrupt` damage it, and check the
 * damaged entry reads as a miss, lands in quarantine, and a re-run
 * reproduces the reference measurement bit-identically.
 */
void
expectQuarantineAndRepair(
    const char *dirName,
    const std::function<void(const fs::path &entry)> &corrupt,
    bool expectSchemaMiss = false)
{
    const std::string dir = freshCacheDir(dirName);
    const auto point =
        makePoint("gap", cpu::RenamerKind::Vca, 128, tinyOptions());
    const Measurement ref = referenceFor(point);

    SweepConfig cfg;
    cfg.cacheDir = dir;
    cfg.jobs = 1;
    {
        SweepRunner seeder(cfg);
        ASSERT_EQ(seeder.runPoint(point), ref);
    }
    const fs::path entry = soleEntryPath(dir);
    ASSERT_FALSE(entry.empty());

    corrupt(entry);

    SweepRunner reader(cfg);
    Measurement loaded;
    EXPECT_FALSE(reader.cache().load(point, loaded))
        << "a damaged entry must read as a miss, never as data";
    EXPECT_EQ(reader.cache().quarantined(), 1u);
    if (expectSchemaMiss)
        EXPECT_EQ(reader.cache().schemaMisses(), 1u);

    // The damaged bytes moved aside for post-mortem...
    EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine"));
    EXPECT_FALSE(fs::exists(entry));

    // ...and the point re-simulates to the exact same bytes.
    const std::uint64_t simsBefore = runTimingCallCount();
    EXPECT_EQ(reader.runPoint(point), ref);
    EXPECT_EQ(runTimingCallCount(), simsBefore + 1);

    // The repaired entry is a normal hit again.
    Measurement again;
    EXPECT_TRUE(reader.cache().load(point, again));
    EXPECT_EQ(again, ref);
}

} // namespace

// ---------------------------------------------------------------------
// Fault injector
// ---------------------------------------------------------------------

TEST(FaultInject, ParseFieldsAndDefaults)
{
    const FaultInjector off;
    EXPECT_FALSE(off.enabled());
    EXPECT_EQ(off.probability(FaultSite::WorkerCrash), 0.0);
    EXPECT_FALSE(off.shouldFire(FaultSite::WorkerCrash, 42));

    const auto fi = FaultInjector::parse(
        "seed=42,crash=0.5,hang=0.25,corrupt=1,writefail=0.125,"
        "attempts=3");
    EXPECT_TRUE(fi.enabled());
    EXPECT_EQ(fi.seed(), 42u);
    EXPECT_EQ(fi.maxAttempts(), 3u);
    EXPECT_DOUBLE_EQ(fi.probability(FaultSite::WorkerCrash), 0.5);
    EXPECT_DOUBLE_EQ(fi.probability(FaultSite::WorkerHang), 0.25);
    EXPECT_DOUBLE_EQ(fi.probability(FaultSite::CacheCorruptRead), 1.0);
    EXPECT_DOUBLE_EQ(fi.probability(FaultSite::CacheWriteFail), 0.125);
}

TEST(FaultInject, MalformedSpecsAreFatal)
{
    EXPECT_THROW(FaultInjector::parse("bogus=1"), FatalError);
    EXPECT_THROW(FaultInjector::parse("crash=1.5"), FatalError);
    EXPECT_THROW(FaultInjector::parse("crash=nope"), FatalError);
    EXPECT_THROW(FaultInjector::parse("crash"), FatalError);
}

TEST(FaultInject, DecisionsAreDeterministic)
{
    const auto a = FaultInjector::parse("seed=7,crash=0.5");
    const auto b = FaultInjector::parse("seed=7,crash=0.5");
    const auto other = FaultInjector::parse("seed=8,crash=0.5");
    bool seedMatters = false;
    for (std::uint64_t id = 0; id < 512; ++id) {
        const bool fa = a.shouldFire(FaultSite::WorkerCrash, id);
        EXPECT_EQ(fa, b.shouldFire(FaultSite::WorkerCrash, id))
            << "same spec, same id, different decision at id " << id;
        if (fa != other.shouldFire(FaultSite::WorkerCrash, id))
            seedMatters = true;
    }
    EXPECT_TRUE(seedMatters);
}

TEST(FaultInject, FiringFrequencyTracksProbability)
{
    const auto fi = FaultInjector::parse("seed=1,corrupt=0.25");
    unsigned fired = 0;
    for (std::uint64_t id = 1; id <= 4000; ++id)
        fired += fi.shouldFire(FaultSite::CacheCorruptRead, id);
    EXPECT_GT(fired, 4000 * 0.19);
    EXPECT_LT(fired, 4000 * 0.31);
}

TEST(FaultInject, AttemptGatingBoundsTheChaos)
{
    // crash=1 with attempts=2: every id fires on attempts 0 and 1,
    // never on attempt >= 2 — the property that guarantees a chaos
    // sweep with retries >= attempts converges.
    const auto fi = FaultInjector::parse("seed=3,crash=1,attempts=2");
    for (std::uint64_t id = 1; id <= 64; ++id) {
        EXPECT_TRUE(fi.shouldFire(FaultSite::WorkerCrash, id, 0));
        EXPECT_TRUE(fi.shouldFire(FaultSite::WorkerCrash, id, 1));
        EXPECT_FALSE(fi.shouldFire(FaultSite::WorkerCrash, id, 2));
        EXPECT_FALSE(fi.shouldFire(FaultSite::WorkerCrash, id, 7));
    }
}

TEST(FaultInject, FiredCountersTrackInjections)
{
    InjectorGuard guard;
    FaultInjector::resetFiredCounts();
    const auto fi = FaultInjector::parse("seed=5,writefail=1");
    EXPECT_EQ(FaultInjector::firedCount(FaultSite::CacheWriteFail), 0u);
    fi.shouldFire(FaultSite::CacheWriteFail, 1);
    fi.shouldFire(FaultSite::CacheWriteFail, 2);
    EXPECT_EQ(FaultInjector::firedCount(FaultSite::CacheWriteFail), 2u);
    EXPECT_EQ(FaultInjector::firedCount(FaultSite::WorkerCrash), 0u);
    FaultInjector::resetFiredCounts();
    EXPECT_EQ(FaultInjector::firedCount(FaultSite::CacheWriteFail), 0u);
}

// ---------------------------------------------------------------------
// Cache integrity: every corruption variant quarantines and repairs
// ---------------------------------------------------------------------

TEST(RobustCache, TruncatedEntryQuarantinesAndRepairs)
{
    expectQuarantineAndRepair("truncated", [](const fs::path &entry) {
        const std::string text = slurp(entry);
        spew(entry, text.substr(0, text.size() / 2));
    });
}

TEST(RobustCache, WrongSchemaValidJsonIsACountedMiss)
{
    // A well-formed JSON object from a hypothetical older tool version
    // (no "schema" revision): must count as a schema miss, not crash.
    expectQuarantineAndRepair(
        "schema",
        [](const fs::path &entry) {
            spew(entry, "{\"version\":\"vca-sim-v0\","
                        "\"measurement\":{\"ok\":true}}");
        },
        /*expectSchemaMiss=*/true);
}

TEST(RobustCache, ChecksumMismatchQuarantines)
{
    // Keep the JSON valid and the schema right; damage one byte of the
    // stored checksum so only end-to-end verification can notice.
    expectQuarantineAndRepair("checksum", [](const fs::path &entry) {
        std::string text = slurp(entry);
        const auto key = text.find("\"sum\"");
        ASSERT_NE(key, std::string::npos);
        const auto quote = text.find('"', text.find(':', key));
        ASSERT_NE(quote, std::string::npos);
        char &digit = text[quote + 1];
        digit = (digit == '0') ? '1' : '0';
        spew(entry, text);
    });
}

TEST(RobustCache, ZeroByteEntryQuarantines)
{
    expectQuarantineAndRepair("zerobyte", [](const fs::path &entry) {
        spew(entry, "");
    });
}

TEST(RobustCache, TornDirectWriteQuarantines)
{
    // A non-atomic writer (or a crash mid-write on a filesystem that
    // exposes partial renames) leaves a syntactically torn prefix.
    expectQuarantineAndRepair("torn", [](const fs::path &entry) {
        const std::string text = slurp(entry);
        spew(entry, text.substr(0, text.find("\"measurement\"") + 14));
    });
}

TEST(RobustCache, ConcurrentTornReadsNeverCrash)
{
    // One writer rewrites an entry with alternating garbage/valid
    // bytes while readers hammer load(): integrity checking must
    // always answer hit-or-miss, never throw or crash.
    const std::string dir = freshCacheDir("race");
    const auto point =
        makePoint("crafty", cpu::RenamerKind::Vca, 144, tinyOptions());
    SweepConfig cfg;
    cfg.cacheDir = dir;
    cfg.jobs = 1;
    SweepRunner runner(cfg);
    const Measurement ref = runner.runPoint(point);
    const fs::path entry = soleEntryPath(dir);
    ASSERT_FALSE(entry.empty());
    const std::string good = slurp(entry);

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        bool garbage = false;
        while (!stop.load()) {
            spew(entry, garbage ? good.substr(0, good.size() / 3)
                                : good);
            garbage = !garbage;
        }
        spew(entry, good);
    });
    for (int i = 0; i < 200; ++i) {
        Measurement out;
        if (runner.cache().load(point, out))
            EXPECT_EQ(out, ref);
    }
    stop.store(true);
    writer.join();
}

TEST(RobustCache, InjectedWriteFailureDowngradesToUncached)
{
    InjectorGuard guard;
    const std::string dir = freshCacheDir("writefail");
    const auto point =
        makePoint("mesa", cpu::RenamerKind::Vca, 160, tinyOptions());
    const Measurement ref = referenceFor(point);

    FaultInjector::installGlobal("seed=11,writefail=1");
    SweepConfig cfg;
    cfg.cacheDir = dir;
    cfg.jobs = 1;
    SweepRunner runner(cfg);
    EXPECT_EQ(runner.runPoint(point), ref)
        << "a failed store must not change the measurement";
    EXPECT_GE(runner.cache().writeErrors(), 1u);
    EXPECT_TRUE(soleEntryPath(dir).empty())
        << "the store failed, so no entry may exist";

    // Every rerun stays correct, just uncached.
    const std::uint64_t simsBefore = runTimingCallCount();
    EXPECT_EQ(runner.runPoint(point), ref);
    EXPECT_EQ(runTimingCallCount(), simsBefore + 1);

    // Once the disk "recovers", caching resumes transparently.
    FaultInjector::installGlobal("");
    EXPECT_EQ(runner.runPoint(point), ref);
    EXPECT_FALSE(soleEntryPath(dir).empty());
}

TEST(RobustCache, InjectedCorruptReadsAlwaysRepair)
{
    InjectorGuard guard;
    const std::string dir = freshCacheDir("corrupt");
    const auto point =
        makePoint("gap", cpu::RenamerKind::Vca, 112, tinyOptions());
    SweepConfig cfg;
    cfg.cacheDir = dir;
    cfg.jobs = 1;
    SweepRunner runner(cfg);
    const Measurement ref = runner.runPoint(point);

    FaultInjector::installGlobal("seed=13,corrupt=1");
    for (int round = 0; round < 3; ++round)
        EXPECT_EQ(runner.runPoint(point), ref)
            << "corrupted read must re-simulate to identical bytes";
    EXPECT_GE(runner.cache().quarantined(), 3u);

    FaultInjector::installGlobal("");
    const std::uint64_t simsBefore = runTimingCallCount();
    EXPECT_EQ(runner.runPoint(point), ref);
    EXPECT_EQ(runTimingCallCount(), simsBefore)
        << "the repaired entry must be a clean hit again";
}

// ---------------------------------------------------------------------
// Thread pool: an escaped exception never takes down the batch
// ---------------------------------------------------------------------

TEST(RobustPool, JobExceptionIsContained)
{
    ThreadPool pool(2);
    const std::uint64_t before = ThreadPool::jobExceptions();
    std::atomic<int> ran{0};
    setQuiet(true);
    pool.submit([] { throw std::runtime_error("injected job crash"); });
    pool.submit([] { throw 42; }); // not even a std::exception
    for (int i = 0; i < 16; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    setQuiet(false);
    EXPECT_EQ(ThreadPool::jobExceptions(), before + 2);
    EXPECT_EQ(ran.load(), 16)
        << "workers must survive a throwing job and keep draining";
}

// ---------------------------------------------------------------------
// Process-isolated workers: crashes, hangs, deadlines, retries
// ---------------------------------------------------------------------

namespace {

std::vector<SweepPoint>
smallSweep()
{
    std::vector<SweepPoint> points;
    for (unsigned regs : {96u, 128u, 160u})
        points.push_back(makePoint("gap", cpu::RenamerKind::Vca, regs,
                                   tinyOptions()));
    return points;
}

std::vector<Measurement>
referenceSweep(const std::vector<SweepPoint> &points)
{
    SweepConfig cfg;
    cfg.cacheDir.clear();
    cfg.jobs = 1;
    SweepRunner runner(cfg);
    return runner.run(points);
}

} // namespace

TEST(RobustRunner, IsolatedSweepMatchesInProcess)
{
    const auto points = smallSweep();
    const auto ref = referenceSweep(points);

    SweepConfig cfg;
    cfg.cacheDir.clear();
    cfg.jobs = 1;
    cfg.robust.isolate = true;
    cfg.robust.backoffMs = 1;
    SweepRunner runner(cfg);
    EXPECT_EQ(runner.run(points), ref)
        << "forked execution must be bit-identical to in-process";
    EXPECT_EQ(runner.lastFailures().size(), 0u);
}

TEST(RobustRunner, CrashedWorkersRetryToSuccess)
{
    InjectorGuard guard;
    const auto points = smallSweep();
    const auto ref = referenceSweep(points);

    // Every point's first attempt dies; attempts=1 guarantees the
    // retry (attempt 1) runs clean.
    FaultInjector::installGlobal("seed=17,crash=1,attempts=1");
    SweepConfig cfg;
    cfg.cacheDir.clear();
    cfg.jobs = 1;
    cfg.robust.isolate = true;
    cfg.robust.retries = 2;
    cfg.robust.backoffMs = 1;
    SweepRunner runner(cfg);
    EXPECT_EQ(runner.run(points), ref);
    EXPECT_EQ(runner.lastFailures().size(), 0u);
    EXPECT_GE(runner.pointsRetried.value(), 3.0);
    EXPECT_EQ(runner.pointsInfraFailed.value(), 0.0);
}

TEST(RobustRunner, HungWorkerIsReapedByTheDeadline)
{
    InjectorGuard guard;
    const auto point =
        makePoint("gap", cpu::RenamerKind::Vca, 128, tinyOptions());
    const Measurement ref = referenceFor(point);

    FaultInjector::installGlobal("seed=19,hang=1,attempts=1");
    SweepConfig cfg;
    cfg.cacheDir.clear();
    cfg.jobs = 1;
    cfg.robust.isolate = true;
    cfg.robust.pointTimeoutSec = 1.0;
    cfg.robust.retries = 2;
    cfg.robust.backoffMs = 1;
    SweepRunner runner(cfg);
    setQuiet(true);
    const Measurement m = runner.runPoint(point);
    setQuiet(false);
    EXPECT_EQ(m, ref);
    EXPECT_GE(runner.pointsTimedOut.value(), 1.0);
    EXPECT_GE(runner.pointsRetried.value(), 1.0);
}

TEST(RobustRunner, ExhaustedRetriesBecomeStructuredFailures)
{
    InjectorGuard guard;
    const std::string dir = freshCacheDir("failures");
    const auto points = smallSweep();
    const auto ref = referenceSweep(points);
    const std::uint64_t batch = batchHash(points);

    // attempts=10 > retries: every attempt dies, the point fails.
    FaultInjector::installGlobal("seed=23,crash=1,attempts=10");
    SweepConfig cfg;
    cfg.cacheDir = dir;
    cfg.jobs = 1;
    cfg.robust.isolate = true;
    cfg.robust.retries = 1;
    cfg.robust.backoffMs = 1;
    setQuiet(true);
    {
        SweepRunner runner(cfg);
        const auto results = runner.run(points);
        ASSERT_EQ(results.size(), points.size());
        for (const auto &m : results) {
            EXPECT_FALSE(m.ok);
            EXPECT_TRUE(m.infra);
            EXPECT_FALSE(m.error.empty());
        }
        const auto failures = runner.lastFailures();
        ASSERT_EQ(failures.size(), points.size());
        for (const auto &f : failures) {
            EXPECT_EQ(f.attempts, 2u);
            EXPECT_NE(f.error.find("worker"), std::string::npos);
        }
        EXPECT_EQ(runner.pointsInfraFailed.value(),
                  double(points.size()));
        // Infra failures are never cached, and the batch leaves both
        // a manifest and a journal for post-mortem and resume.
        EXPECT_TRUE(soleEntryPath(dir).empty());
        EXPECT_TRUE(fs::exists(manifestPath(dir, batch)));
        EXPECT_TRUE(fs::exists(journalPath(dir, batch)));
    }

    // A resume run replays the journaled failures without burning
    // another retry budget: zero simulations, zero forked children.
    {
        cfg.robust.resume = true;
        SweepRunner resumer(cfg);
        const std::uint64_t simsBefore = runTimingCallCount();
        const auto results = resumer.run(points);
        EXPECT_EQ(runTimingCallCount(), simsBefore);
        for (const auto &m : results) {
            EXPECT_FALSE(m.ok);
            EXPECT_TRUE(m.infra);
        }
        EXPECT_EQ(resumer.lastFailures().size(), points.size());
        // Replayed, not re-attempted: a re-run under crash=1 would
        // burn a retry per point.
        EXPECT_EQ(resumer.pointsRetried.value(), 0.0);
    }
    setQuiet(false);

    // With the fault gone, the same sweep heals: identical to the
    // reference, and the journal/manifest are cleaned up.
    FaultInjector::installGlobal("");
    cfg.robust.resume = false;
    SweepRunner healed(cfg);
    EXPECT_EQ(healed.run(points), ref);
    EXPECT_EQ(healed.lastFailures().size(), 0u);
    EXPECT_FALSE(fs::exists(manifestPath(dir, batch)));
    EXPECT_FALSE(fs::exists(journalPath(dir, batch)));
}

// ---------------------------------------------------------------------
// The headline chaos property
// ---------------------------------------------------------------------

TEST(RobustRunner, ChaosSweepIsByteIdenticalToClean)
{
    InjectorGuard guard;
    std::vector<SweepPoint> points;
    for (const char *bench : {"gap", "crafty", "mesa"})
        for (unsigned regs : {112u, 144u})
            points.push_back(makePoint(bench, cpu::RenamerKind::Vca,
                                       regs, tinyOptions()));
    const auto ref = referenceSweep(points);

    // Well above the acceptance bar: half of first attempts crash,
    // every read corrupts, half of writes fail.
    FaultInjector::installGlobal(
        "seed=29,crash=0.5,corrupt=1,writefail=0.5,attempts=1");
    const std::string dir = freshCacheDir("chaos");
    SweepConfig cfg;
    cfg.cacheDir = dir;
    cfg.jobs = 1;
    cfg.robust.isolate = true;
    cfg.robust.retries = 3;
    cfg.robust.backoffMs = 1;
    SweepRunner runner(cfg);
    setQuiet(true);
    EXPECT_EQ(runner.run(points), ref)
        << "cold chaos sweep diverged from the clean sweep";
    EXPECT_EQ(runner.run(points), ref)
        << "warm chaos sweep (every cached read corrupted) diverged";
    setQuiet(false);
    EXPECT_EQ(runner.lastFailures().size(), 0u);
}

// ---------------------------------------------------------------------
// Crash-safe resume after a SIGKILL mid-sweep
// ---------------------------------------------------------------------

TEST(RobustResume, KilledSweepResumesOnlyMissingPoints)
{
    const std::string dir = freshCacheDir("sigkill");
    std::vector<SweepPoint> points;
    for (unsigned regs : {96u, 112u, 128u, 144u, 160u})
        points.push_back(makePoint("gap", cpu::RenamerKind::Vca, regs,
                                   tinyOptions()));
    const auto ref = referenceSweep(points);

    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        // Child: run the sweep serially; the parent SIGKILLs us
        // mid-batch, exactly like a scheduler preemption.
        SweepConfig cfg;
        cfg.cacheDir = dir;
        cfg.jobs = 1;
        SweepRunner child(cfg);
        child.run(points);
        std::_Exit(0);
    }

    const auto countEntries = [&dir] {
        std::size_t n = 0;
        if (!fs::exists(dir))
            return n;
        for (const auto &e : fs::directory_iterator(dir)) {
            if (!e.is_regular_file())
                continue;
            const std::string name = e.path().filename().string();
            if (name.size() == 21 && name.ends_with(".json"))
                ++n;
        }
        return n;
    };

    // Kill once at least two points committed (or the child finished).
    for (int i = 0; i < 30'000 && countEntries() < 2; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);

    const std::size_t committed = countEntries();
    ASSERT_GE(committed, 1u) << "child never committed a point";

    // Resume: only the missing points may simulate, and the merged
    // results must be bit-identical to an uninterrupted sweep.
    SweepConfig cfg;
    cfg.cacheDir = dir;
    cfg.jobs = 1;
    cfg.robust.resume = true;
    SweepRunner resumer(cfg);
    const std::uint64_t simsBefore = runTimingCallCount();
    EXPECT_EQ(resumer.run(points), ref);
    EXPECT_EQ(runTimingCallCount() - simsBefore,
              points.size() - committed);
    EXPECT_EQ(resumer.lastFailures().size(), 0u);

    // The clean finish cleans up the batch journal.
    EXPECT_FALSE(fs::exists(journalPath(dir, batchHash(points))));
}
